examples/quickstart.ml: Array Client Cluster Config Pbft Printf Replica Service
