(** The paper's headline integration (§3.2, Figure 3): the relational
    engine runs *inside* a PBFT replica, with its database file mapped
    onto the replica's paged state region through the VFS seam.

    - Main-file page writes notify the state manager before modifying
      memory, so copy-on-write checkpointing and Merkle digests see every
      change;
    - the rollback journal lives on the replica's (simulated) local disk
      and is synced on commit, giving ACID semantics the PBFT state
      abstraction lacks;
    - the non-deterministic SQL functions NOW() and RANDOM() are rerouted
      to the agreed-upon pre-prepare values (§2.5), so all replicas
      evaluate them identically;
    - the database file is declared "large enough" up front — the sparse
      region trick the authors used to reconcile SQLite's growth with
      PBFT's fixed-size state.

    The service's operations are SQL strings; replies are rendered result
    sets or error text. *)

val is_readonly_sql : string -> bool
(** Planner-proven read-only classification: true iff the text parses and
    every statement is a SELECT whose expressions are free of the
    non-deterministic functions NOW() and RANDOM(). Such a batch is safe
    on the PBFT read-only fast path (each replica executes it against its
    current state without ordering); anything else — DML, DDL,
    transactions, non-determinism, parse errors — must be ordered. The
    built service installs this as its [classify_readonly]. *)

val service :
  ?acid:bool ->
  ?app_pages:int ->
  ?sync_latency:float ->
  ?schema:string ->
  ?init:string list ->
  unit ->
  Pbft.Service.t
(** [service ~acid ~schema ()] builds a replicated-SQL service.
    [schema] is executed when each replica instantiates the service (all
    replicas run it identically at boot), followed by the [init]
    statements — deterministic pre-population that lands in the genesis
    checkpoint (used by the large-state checkpoint benchmark).
    [acid:false] disables the rollback journal and the commit syncs — the
    No-ACID configuration of §4.2. [sync_latency] calibrates the
    per-fsync virtual cost (default 0.4 ms: a 2011 SATA disk with its
    write cache on). *)

val vote_schema : string
(** The e-voting style schema used by the Figure 5 experiments: a votes
    table keyed by an integer primary key with voter/choice text columns,
    a timestamp and a random value (the paper adds the last two to check
    reply identity across replicas). *)

val insert_vote_sql : voter:string -> choice:string -> string
(** The benchmark operation of §4.2: insert one vote row whose timestamp
    and nonce come from NOW() and RANDOM(). *)

val lookup_schema : string
(** Read-mostly benchmark table: integer primary key, an indexable
    integer key column [k], and a text pad. *)

val lookup_index_sql : string
(** [CREATE INDEX IF NOT EXISTS lookup_k ON lookup(k)] — run it (or
    don't) before filling to compare indexed probes against full scans
    on the identical operation stream. *)

val point_select_sql : key:int -> string
(** Aggregate point probe: count and sum the rows with [k = key]. *)

val range_select_sql : lo:int -> hi:int -> string
(** Small-range aggregate: count rows with [lo <= k < hi]. *)
