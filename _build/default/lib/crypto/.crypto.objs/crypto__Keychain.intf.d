lib/crypto/keychain.mli: Util
