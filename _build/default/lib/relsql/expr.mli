(** Expression evaluation over row bindings. *)

exception Eval_error of string

type binding = {
  b_table : string;  (** lowercase table name or alias *)
  b_cols : string list;  (** lowercase column names *)
  b_row : Value.t array;
}

type env = {
  bindings : binding list;
  env_time : unit -> float;  (** NOW() — routed through the VFS (§2.5) *)
  env_random : unit -> int64;  (** RANDOM() *)
}

val eval : env -> Ast.expr -> Value.t
(** Raises {!Eval_error} on unknown columns/functions or aggregate calls
    (aggregates are handled by the select executor, not here). *)

val is_aggregate : Ast.expr -> bool
(** Does the expression contain an aggregate function call? *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE with % and _ wildcards. *)
