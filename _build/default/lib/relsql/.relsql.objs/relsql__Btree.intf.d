lib/relsql/btree.mli: Pager
