lib/util/codec.mli:
