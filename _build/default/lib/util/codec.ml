module W = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let u64 t v = Buffer.add_int64_le t v
  let int_as_u64 t v = u64 t (Int64.of_int v)
  let f64 t v = u64 t (Int64.bits_of_float v)

  let rec varint t v =
    if v < 0 then invalid_arg "Codec.W.varint: negative"
    else if v < 0x80 then u8 t v
    else begin
      u8 t (0x80 lor (v land 0x7f));
      varint t (v lsr 7)
    end

  let bool t v = u8 t (if v then 1 else 0)
  let bytes t b = Buffer.add_bytes t b
  let string t s = Buffer.add_string t s

  let lbytes t b =
    varint t (Bytes.length b);
    bytes t b

  let lstring t s =
    varint t (String.length s);
    string t s

  let list t enc l =
    varint t (List.length l);
    List.iter (enc t) l

  let option t enc = function
    | None -> bool t false
    | Some v ->
      bool t true;
      enc t v

  let contents = Buffer.contents
end

module R = struct
  type t = { src : string; mutable pos : int }

  exception Truncated

  let of_string src = { src; pos = 0 }
  let remaining t = String.length t.src - t.pos

  let u8 t =
    if t.pos >= String.length t.src then raise Truncated;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let a = u8 t in
    let b = u8 t in
    a lor (b lsl 8)

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let u64 t =
    if remaining t < 8 then raise Truncated;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int_of_u64 t = Int64.to_int (u64 t)
  let f64 t = Int64.float_of_bits (u64 t)

  let varint t =
    let rec go shift acc =
      if shift > 56 then raise Truncated;
      let b = u8 t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool t = u8 t <> 0

  let string t n =
    if n < 0 || remaining t < n then raise Truncated;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t n = Bytes.of_string (string t n)
  let lbytes t = bytes t (varint t)
  let lstring t = string t (varint t)

  let list t dec =
    let n = varint t in
    List.init n (fun _ -> dec t)

  let option t dec = if bool t then Some (dec t) else None
  let expect_end t = if remaining t <> 0 then raise Truncated
end

let encode enc v =
  let w = W.create () in
  enc w v;
  W.contents w

let decode dec s =
  let r = R.of_string s in
  let v = dec r in
  R.expect_end r;
  v
