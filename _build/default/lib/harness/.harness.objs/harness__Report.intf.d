lib/harness/report.mli:
