test/test_util.mli:
