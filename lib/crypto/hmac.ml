let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 b 0 (String.length key);
  Bytes.to_string b

let xor_with s c = String.map (fun x -> Char.chr (Char.code x lxor c)) s

(* HMAC's first compression block on each side depends only on the key.
   Session keys are long-lived (they authenticate every message of a
   connection), so cache the two midstates per key and branch each
   message off a copy — no pad allocation, no key xor, no message
   concatenation per call. *)
type midstate = { inner : Sha256.ctx; outer : Sha256.ctx }

let midstates : (string, midstate) Hashtbl.t = Hashtbl.create 64

let midstate_for key =
  match Hashtbl.find_opt midstates key with
  | Some m -> m
  | None ->
    if Hashtbl.length midstates > 4096 then Hashtbl.reset midstates;
    let nk = normalize_key key in
    let inner = Sha256.init () in
    Sha256.feed inner (xor_with nk 0x36);
    let outer = Sha256.init () in
    Sha256.feed outer (xor_with nk 0x5c);
    let m = { inner; outer } in
    Hashtbl.add midstates key m;
    m

let mac ~key msg =
  let m = midstate_for key in
  let c = Sha256.copy m.inner in
  Sha256.feed c msg;
  let inner = Sha256.finalize c in
  let c = Sha256.copy m.outer in
  Sha256.feed c inner;
  Sha256.finalize c

let verify ~key msg ~tag =
  let expected = mac ~key msg in
  (* Fold over all bytes rather than early-exit, mirroring constant-time
     comparison discipline. *)
  String.length expected = String.length tag
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
  !diff = 0
