lib/pbft/session_state.mli: Statemgr Types
