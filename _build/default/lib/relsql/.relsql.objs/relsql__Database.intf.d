lib/relsql/database.mli: Stdlib Value Vfs
