(** Long-horizon churn scenarios: rolling crash/repair plans on the
    virtual clock, measuring availability, recovery time and the
    Merkle-diff transfer cost of each rejoin (§2.3).

    One replica at a time is crashed (losing all volatile state), left
    down for a repair window, then restarted: the revived instance
    reloads its latest stable checkpoint from disk, re-keys via
    [rejoin_key_refresh], and rejoins through a Merkle-diff state
    transfer. Victims rotate over the backups, with every
    [primary_every]-th crash taking the current primary so failover
    under churn is exercised too. Live replicas proactively roll their
    MAC session keys every [key_refresh_period] virtual seconds
    throughout. All runs are seeded and deterministic. *)

type spec = {
  cfg : Pbft.Config.t;
  seed : int;
  num_clients : int;
  think_time : float;  (** per-client delay between requests *)
  op_bytes : int;  (** kv value size; ops are rotating "put" writes *)
  warmup : float;
  horizon : float;  (** measured virtual seconds *)
  crash_period : float;  (** virtual seconds between crash events *)
  downtime : float;  (** repair time before the victim restarts *)
  primary_every : int;  (** every k-th crash targets the current primary *)
  bucket : float;  (** availability sampling bucket, seconds *)
}

val default_spec : unit -> spec
(** f=1, 4 closed-loop clients with 20 ms think time, 180 s horizon,
    a crash every 15 s with 1 s repair, every 4th crash on the primary,
    [rejoin_key_refresh] on and a 5 s proactive key-refresh period. *)

type outcome = {
  ch_horizon : float;
  ch_events : int;  (** simulation events processed over the whole run *)
  ch_crashes : int;
  ch_restarts : int;
  ch_availability : float;
      (** fraction of [bucket]-sized windows in which at least one
          client request completed *)
  ch_mean_recovery : float;
      (** mean seconds from crash to the incarnation's rejoin-transfer
          completion *)
  ch_max_recovery : float;
  ch_unrecovered : int;  (** incidents whose rejoin never completed *)
  ch_completed : int;
  ch_tps : float;
  ch_demotion_transfers : int;
  ch_rejoin_transfers : int;
  ch_pages_fetched : int;  (** pages actually moved (Merkle diff) *)
  ch_pages_full : int;  (** pages a full transfer would have moved *)
  ch_view_changes : int;
  ch_key_epoch : int;  (** max proactive-refresh epoch reached *)
  ch_final_view : int;
  ch_failures : string list;
      (** safety violations (journal/state disagreement) plus liveness
          expectations that did not hold; empty on a clean run *)
}

val run : spec -> outcome

val render : outcome -> string
(** One status line, with failure reasons appended. *)
