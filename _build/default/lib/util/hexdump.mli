(** Hexadecimal rendering helpers for digests and wire dumps. *)

val of_string : string -> string
(** Lowercase hex of every byte. *)

val to_string : string -> string
(** Inverse of [of_string]. Raises [Invalid_argument] on malformed input. *)

val short : ?len:int -> string -> string
(** Abbreviated hex prefix (default 8 hex chars) for log lines. *)
