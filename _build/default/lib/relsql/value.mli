(** SQL values and their comparison / coercion semantics. *)

type t =
  | Null
  | Int of int
  | Real of float
  | Text of string

val compare_sql : t -> t -> int
(** SQLite-style ordering: Null < numbers < text; Int and Real compare
    numerically with each other. *)

val equal : t -> t -> bool
val is_null : t -> bool
val to_string : t -> string
(** Rendering for result rows ("NULL" for Null). *)

val as_number : t -> float option
val as_int : t -> int option

val truthy : t -> bool
(** SQL boolean interpretation: nonzero number; Null and text are false. *)

val encode : Util.Codec.W.t -> t -> unit
val decode : Util.Codec.R.t -> t

val key_encode : t -> string
(** Order-preserving (within a type class) encoding used as B-tree index
    key material. *)
