(** Online and batch descriptive statistics for experiment metrics. *)

type t
(** Mutable accumulator retaining all samples (experiments are small enough
    that percentiles over the full sample set are affordable). *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val stdev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100], by nearest-rank on the sorted
    samples. Raises [Invalid_argument] on an empty accumulator. *)

val median : t -> float

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float
(** Nearest-rank percentile conveniences for benchmark reporting; unlike
    {!percentile} they return [0.0] on an empty accumulator. *)

val summary : t -> string
(** One-line rendering: count, mean, stdev, min/median/max. *)
