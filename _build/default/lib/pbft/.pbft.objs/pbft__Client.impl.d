lib/pbft/client.ml: Array Bytes Certificate Config Costmodel Crypto Hashtbl List Message Option Replica Simnet String Types Util
