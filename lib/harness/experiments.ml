let null_op = String.make 1024 'q'

let base_cfg () = Pbft.Config.default ~f:1

let with_flags ~dynamic ~macs ~allbig ~batching cfg =
  {
    cfg with
    Pbft.Config.dynamic_clients = dynamic;
    use_macs = macs;
    all_requests_big = allbig;
    big_request_threshold = (if allbig then 0 else 8192);
    batching;
  }

(* The ten rows of Table 1 with the paper's TPS numbers. *)
let table1_rows =
  [
    ("sta_mac_allbig_batch", 17014.0, (false, true, true, true));
    ("sta_mac_allbig_nobatch", 1051.0, (false, true, true, false));
    ("sta_mac_noallbig_batch", 3030.0, (false, true, false, true));
    ("sta_mac_noallbig_nobatch", 1109.0, (false, true, false, false));
    ("sta_nomac_allbig_batch", 1291.0, (false, false, true, true));
    ("sta_nomac_allbig_nobatch", 1199.0, (false, false, true, false));
    ("sta_nomac_noallbig_batch", 992.0, (false, false, false, true));
    ("sta_nomac_noallbig_nobatch", 1186.0, (false, false, false, false));
    ("nosta_nomac_noallbig_batch", 988.0, (true, false, false, true));
    ("nosta_nomac_noallbig_nobatch", 1205.0, (true, false, false, false));
  ]

let measure_null ?(seed = 1) ?(duration = 2.0) cfg =
  let spec = { (Scenario.default_spec cfg) with Scenario.seed; duration } in
  Scenario.run spec

let table1 ?(seed = 1) ?(duration = 2.0) () =
  let rows =
    List.map
      (fun (name, paper, (dynamic, macs, allbig, batching)) ->
        let cfg = with_flags ~dynamic ~macs ~allbig ~batching (base_cfg ()) in
        let o = measure_null ~seed ~duration cfg in
        Report.row ~paper name o.Scenario.tps)
      table1_rows
  in
  {
    Report.title = "Table 1 — null-operation throughput per library configuration (1024 B)";
    rows;
    commentary =
      [
        "12 clients / 4 replicas; request and response bodies of 1024 bytes.";
        "Shape targets: the default configuration (MACs + all-big + batching) is";
        "roughly an order of magnitude above every other configuration; with";
        "signatures, batching stops mattering; dynamic client management costs";
        "well under 1%. See EXPERIMENTS.md for the per-row discussion.";
      ];
  }

let figure4 ?seed ?duration () =
  let r = table1 ?seed ?duration () in
  { r with Report.title = "Figure 4 — PBFT tests (same series as Table 1, 1024-byte payloads)" }

(* Figure 5: SQL inserts, batching on, ACID. The paper plots these; the
   text pins only two values (the best configuration, and the most robust
   + dynamic one at 43% / 534 TPS). *)
let figure5_rows =
  [
    ("sta_mac_allbig", None, (false, true, true));
    ("sta_mac_noallbig", Some 1242.0, (false, true, false));
    ("sta_nomac_allbig", None, (false, false, true));
    ("sta_nomac_noallbig", None, (false, false, false));
    ("nosta_nomac_noallbig", Some 534.0, (true, false, false));
  ]

let sql_spec ?(seed = 1) ?(duration = 2.0) ~acid cfg =
  {
    (Scenario.default_spec cfg) with
    Scenario.seed;
    duration;
    service = Relsql.Pbft_service.service ~acid ();
    op =
      (fun ~client ~seq ->
        Relsql.Pbft_service.insert_vote_sql
          ~voter:(Printf.sprintf "voter-%d-%d" client seq)
          ~choice:(if (client + seq) mod 2 = 0 then "alice" else "bob"));
  }

(* Large-state checkpoint workload: the database is pre-populated with
   bulky filler rows so the allocated page count is roughly 16x the pages
   an INSERT workload dirties per checkpoint interval. A deep-copy
   checkpointer pays for every allocated page at each snapshot; the
   copy-on-write one pays only for the working set. *)

let large_state_fill_sql ?(rows = 1600) ?(row_bytes = 1500) () =
  let batch = 40 in
  let rec mk i acc =
    if i >= rows then List.rev acc
    else begin
      let hi = min rows (i + batch) in
      let values =
        String.concat ", "
          (List.init (hi - i) (fun k ->
               let id = i + k + 1 in
               Printf.sprintf "(%d, '%s')" id
                 (String.make row_bytes (Char.chr (Char.code 'a' + (id mod 26))))))
      in
      mk hi (("INSERT INTO fill (id, pad) VALUES " ^ values) :: acc)
    end
  in
  "CREATE TABLE IF NOT EXISTS fill (id INTEGER PRIMARY KEY, pad TEXT)" :: mk 0 []

let sql_large_state_spec ?(seed = 1) ?(duration = 2.0) ?(app_pages = 2048) cfg =
  {
    (Scenario.default_spec cfg) with
    Scenario.seed;
    duration;
    service =
      Relsql.Pbft_service.service ~acid:true ~app_pages ~init:(large_state_fill_sql ()) ();
    op =
      (fun ~client ~seq ->
        Relsql.Pbft_service.insert_vote_sql
          ~voter:(Printf.sprintf "voter-%d-%d" client seq)
          ~choice:(if (client + seq) mod 2 = 0 then "alice" else "bob"));
  }

(* Read-mostly lookup workload for the access-path comparison: 6400 rows
   (4x the large-state scale) whose key column cycles through 256 distinct
   values, so an equality probe selects 25 rows out of 6400. The indexed
   and forced-scan variants run the *identical* operation stream; the only
   difference is whether the init creates the secondary index. The row
   count is chosen so a full scan clearly dominates an operation's cost
   (milliseconds against the consensus round's ~1.5 ms) while an indexed
   probe stays far below it. *)

let lookup_fill_sql ?(rows = 6400) ?(row_bytes = 64) () =
  let batch = 40 in
  let rec mk i acc =
    if i >= rows then List.rev acc
    else begin
      let hi = min rows (i + batch) in
      let values =
        String.concat ", "
          (List.init (hi - i) (fun j ->
               let id = i + j + 1 in
               Printf.sprintf "(%d, %d, '%s')" id (id mod 256)
                 (String.make row_bytes (Char.chr (Char.code 'a' + (id mod 26))))))
      in
      mk hi (("INSERT INTO lookup (id, k, pad) VALUES " ^ values) :: acc)
    end
  in
  mk 0 []

let indexed_sql_spec ?(seed = 1) ?(duration = 2.0) ?(app_pages = 512) ~indexed ~range cfg =
  let init =
    (* Index first, so the boot-time fill exercises per-INSERT index
       maintenance rather than the backfill path. *)
    (if indexed then [ Relsql.Pbft_service.lookup_index_sql ] else []) @ lookup_fill_sql ()
  in
  {
    (Scenario.default_spec cfg) with
    Scenario.seed;
    duration;
    service =
      Relsql.Pbft_service.service ~acid:true ~app_pages
        ~schema:Relsql.Pbft_service.lookup_schema ~init ();
    op =
      (fun ~client ~seq ->
        if range then begin
          let lo = seq * 13 mod 240 in
          Relsql.Pbft_service.range_select_sql ~lo ~hi:(lo + 8)
        end
        else Relsql.Pbft_service.point_select_sql ~key:(((seq * 31) + (client * 7)) mod 256));
  }

(* Pipelined speculation (PR 6): the Table-1 default configuration with
   the agreement pipeline and the multi-core CPU model opened up. The
   serial baseline (depth 1, one core) is bit-identical to the historical
   replica; deepening the pipeline overlaps consecutive batches across
   the three phases and speculative execution, and extra cores let the
   per-message MAC fan-out and per-batch digests overlap. *)

let pipeline_cfg ~depth ~cores () =
  {
    (with_flags ~dynamic:false ~macs:true ~allbig:true ~batching:true (base_cfg ())) with
    Pbft.Config.pipeline_depth = depth;
    cores;
  }

let pipeline_spec ?(seed = 1) ?(duration = 1.5) ?(num_clients = 64) cfg =
  { (Scenario.default_spec cfg) with Scenario.seed; duration; num_clients }

let pipeline_sweep ?(seed = 1) ?(duration = 1.5) () =
  let rows =
    List.concat_map
      (fun depth ->
        List.map
          (fun cores ->
            let o = Scenario.run (pipeline_spec ~seed ~duration (pipeline_cfg ~depth ~cores ())) in
            Report.row
              ~note:(Printf.sprintf "%d spec execs, %d rollbacks" o.Scenario.speculative_execs
                       o.Scenario.rollbacks)
              (Printf.sprintf "depth=%d cores=%d" depth cores)
              o.Scenario.tps)
          [ 1; 2; 4 ])
      [ 1; 2; 4; 8 ]
  in
  {
    Report.title = "Pipelining — vTPS vs pipeline depth x cores (Table-1 default, 64 clients)";
    rows;
    commentary =
      [
        "depth=1 cores=1 is the serial baseline (pinned trace digest).";
        "Depth overlaps consecutive batches across pre-prepare/prepare/commit";
        "and executes prepared batches speculatively; cores overlap the MAC";
        "fan-out and digest work of a single node. Speculation never reaches";
        "client replies or checkpoints before the commit certificate lands.";
      ];
  }

(* 95/5 read/write mix over the indexed lookup table: the planner proves
   the SELECTs deterministic and read-only (Relsql.Pbft_service.
   is_readonly_sql), so the harness submits them on the read-only fast
   path without per-call opt-in; the INSERTs order normally. *)
let read_mix_spec ?(seed = 1) ?(duration = 1.5) ?(app_pages = 512) cfg =
  let init = Relsql.Pbft_service.lookup_index_sql :: lookup_fill_sql () in
  {
    (Scenario.default_spec cfg) with
    Scenario.seed;
    duration;
    service =
      Relsql.Pbft_service.service ~acid:true ~app_pages
        ~schema:Relsql.Pbft_service.lookup_schema ~init ();
    op =
      (fun ~client ~seq ->
        if seq mod 20 = 0 then
          Printf.sprintf "INSERT INTO lookup (id, k, pad) VALUES (%d, %d, 'w')"
            (1_000_000 + (client * 100_000) + seq)
            ((client + seq) mod 256)
        else Relsql.Pbft_service.point_select_sql ~key:(((seq * 31) + (client * 7)) mod 256));
  }

let figure5 ?(seed = 1) ?(duration = 2.0) () =
  let rows =
    List.map
      (fun (name, paper, (dynamic, macs, allbig)) ->
        let cfg = with_flags ~dynamic ~macs ~allbig ~batching:true (base_cfg ()) in
        let o = Scenario.run (sql_spec ~seed ~duration ~acid:true cfg) in
        Report.row ?paper name o.Scenario.tps)
      figure5_rows
  in
  {
    Report.title = "Figure 5 — PBFT + SQL single-row INSERT throughput (ACID, batching on)";
    rows;
    commentary =
      [
        "A real operation (database insert with journal + fsync) replaces the null";
        "op: throughput collapses by roughly two orders of magnitude versus the";
        "default null-op configuration, and the big-request optimization pays no";
        "dividends because disk time dominates (§4.2).";
        "Paper values: best configuration ≈1242 TPS (derived from the 43% figure),";
        "most robust + dynamic = 534 TPS.";
      ];
  }

let acid_comparison ?(seed = 1) ?(duration = 2.0) () =
  let cfg = with_flags ~dynamic:true ~macs:false ~allbig:false ~batching:true (base_cfg ()) in
  let acid = Scenario.run (sql_spec ~seed ~duration ~acid:true cfg) in
  let noacid = Scenario.run (sql_spec ~seed ~duration ~acid:false cfg) in
  {
    Report.title = "§4.2 — ACID versus No-ACID (most robust configuration, dynamic clients)";
    rows =
      [
        Report.row ~paper:534.0 "ACID (rollback journal + fsync)" acid.Scenario.tps;
        Report.row ~paper:1155.0 "No-ACID (no journal, no flush)" noacid.Scenario.tps;
        Report.row ~paper:2.16 ~unit_:"x"
          ~note:"No-ACID / ACID throughput ratio" "speedup"
          (if acid.Scenario.tps > 0.0 then noacid.Scenario.tps /. acid.Scenario.tps else 0.0);
      ];
    commentary = [ "Durability costs about half the throughput, exactly as the paper reports." ];
  }

(* --- trace figures --- *)

let trace_figure ~seed ~cfg ~service ~interesting ~setup =
  let cluster = Pbft.Cluster.create ~seed ~num_clients:2 ~service cfg in
  let trace = Pbft.Cluster.trace cluster in
  Simnet.Trace.set_enabled trace true;
  setup cluster;
  Simnet.Trace.render ~limit:120 trace interesting

let figure1 ?(seed = 1) () =
  let cfg = base_cfg () in
  let labels = [ "request"; "pre-prepare"; "prepare"; "commit"; "reply" ] in
  trace_figure ~seed ~cfg ~service:(Pbft.Service.null ())
    ~interesting:(fun e -> List.mem e.Simnet.Trace.label labels)
    ~setup:(fun cluster ->
      let done_ = ref false in
      Pbft.Client.invoke (Pbft.Cluster.client cluster 0) null_op (fun _ -> done_ := true);
      Pbft.Cluster.run cluster ~seconds:1.0;
      if not !done_ then failwith "figure1: request did not complete")

let figure2 ?(seed = 1) () =
  let cfg = { (base_cfg ()) with Pbft.Config.dynamic_clients = true } in
  let labels =
    [ "join-request"; "join-challenge"; "join-response"; "request"; "pre-prepare"; "prepare";
      "commit"; "join-reply"; "session-key" ]
  in
  trace_figure ~seed ~cfg ~service:(Pbft.Service.null ())
    ~interesting:(fun e -> List.mem e.Simnet.Trace.label labels)
    ~setup:(fun cluster ->
      let got = ref None in
      Pbft.Client.join (Pbft.Cluster.client cluster 0) ~idbuf:"alice:secret" (fun c -> got := c);
      Pbft.Cluster.run cluster ~seconds:5.0;
      match !got with
      | Some _ -> ()
      | None -> failwith "figure2: join did not complete")

let figure3 ?(seed = 1) () =
  (* Part 1: the VFS call sequence of one ACID insert, standalone. *)
  let calls = Buffer.create 512 in
  let log fmt = Printf.ksprintf (fun s -> Buffer.add_string calls ("  " ^ s ^ "\n")) fmt in
  let wrap name (f : Relsql.Vfs.file) =
    {
      Relsql.Vfs.read =
        (fun ~pos ~len ->
          log "xRead  %-7s pos=%-6d len=%d" name pos len;
          f.Relsql.Vfs.read ~pos ~len);
      write =
        (fun ~pos s ->
          log "xWrite %-7s pos=%-6d len=%d" name pos (String.length s);
          f.Relsql.Vfs.write ~pos s);
      sync =
        (fun () ->
          log "xSync  %-7s (durability barrier)" name;
          f.Relsql.Vfs.sync ());
      size = f.Relsql.Vfs.size;
      truncate =
        (fun n ->
          log "xTruncate %-7s to %d" name n;
          f.Relsql.Vfs.truncate n);
    }
  in
  let inner = Relsql.Vfs.in_memory ~seed () in
  let vfs =
    {
      inner with
      Relsql.Vfs.main = wrap "main" inner.Relsql.Vfs.main;
      journal = Option.map (wrap "journal") inner.Relsql.Vfs.journal;
      time =
        (fun () ->
          log "xCurrentTime  -> agreed pre-prepare timestamp (§2.5)";
          inner.Relsql.Vfs.time ());
      random =
        (fun () ->
          log "xRandomness   -> agreed pre-prepare randomness (§2.5)";
          inner.Relsql.Vfs.random ());
    }
  in
  let db = Relsql.Database.open_db vfs in
  ignore (Relsql.Database.exec_exn db Relsql.Pbft_service.vote_schema);
  Buffer.add_string calls "  --- INSERT begins ---\n";
  ignore
    (Relsql.Database.exec_exn db (Relsql.Pbft_service.insert_vote_sql ~voter:"v1" ~choice:"alice"));
  (* Part 2: the same operation replicated. *)
  let cfg = base_cfg () in
  let replicated =
    trace_figure ~seed ~cfg ~service:(Relsql.Pbft_service.service ())
      ~interesting:(fun e ->
        List.mem e.Simnet.Trace.label [ "request"; "pre-prepare"; "prepare"; "commit"; "reply" ])
      ~setup:(fun cluster ->
        let done_ = ref false in
        Pbft.Client.invoke (Pbft.Cluster.client cluster 0)
          (Relsql.Pbft_service.insert_vote_sql ~voter:"v1" ~choice:"alice") (fun _ ->
            done_ := true);
        Pbft.Cluster.run cluster ~seconds:1.0;
        if not !done_ then failwith "figure3: insert did not complete")
  in
  "VFS call sequence for one ACID INSERT (engine -> VFS, Figure 3 seam):\n"
  ^ Buffer.contents calls
  ^ "\nThe same INSERT through the replicated service (message trace):\n" ^ replicated

(* --- §2.3 recovery / authenticator rebroadcast --- *)

let recovery ?(seed = 1) ?(periods = [ 0.5; 1.0; 2.0; 4.0 ]) () =
  let restart_at = 1.2 in
  let rows =
    List.map
      (fun period ->
        let cfg = { (base_cfg ()) with Pbft.Config.authenticator_rebroadcast = period } in
        let spec =
          { (Scenario.default_spec cfg) with Scenario.seed; warmup = 0.4; duration = 2.0 +. (2.0 *. period) }
        in
        let _, cluster =
          Scenario.run_cluster
            ~hook:(fun cluster ->
              Simnet.Engine.schedule (Pbft.Cluster.engine cluster) ~delay:restart_at (fun () ->
                  Pbft.Cluster.restart_replica cluster 2))
            spec
        in
        let r2 = Pbft.Cluster.replica cluster 2 in
        let stall =
          match Pbft.Replica.recovery_completed_at r2 with
          | Some t -> t -. restart_at
          | None -> nan
        in
        (* Blind rebroadcast load: every node refreshes its keys with every
           replica each period. *)
        let n = cfg.Pbft.Config.n and clients = spec.Scenario.num_clients in
        let msg_rate = float_of_int ((clients * n) + (n * (n - 1))) /. period in
        Report.row
          ~note:
            (Printf.sprintf "rebroadcast load %.0f msg/s; auth failures %d" msg_rate
               (Pbft.Replica.auth_failures r2))
          ~unit_:"s"
          (Printf.sprintf "rebroadcast period %.1fs" period)
          stall)
      periods
  in
  {
    Report.title =
      "§2.3 — replica restart: recovery stalls until the blind session-key rebroadcast";
    rows;
    commentary =
      [
        "The restarted replica cannot validate clients' MAC authenticators (its";
        "session-key table is transient state); it recovers only after the next";
        "periodic rebroadcast. Shortening the period shortens the stall but";
        "multiplies the standing message load — the §2.3 trade-off.";
      ];
  }

(* --- §2.4 packet loss --- *)

let packet_loss ?(seed = 1) () =
  let drop_at = 1.0 in
  let victim = 3 in
  let run_case ~cfg ~case =
    let spec = { (Scenario.default_spec cfg) with Scenario.seed; warmup = 0.4; duration = 3.0 } in
    Scenario.run_cluster
      ~hook:(fun cluster ->
        Simnet.Engine.schedule (Pbft.Cluster.engine cluster) ~delay:drop_at (fun () ->
            match case with
            | `Body_to_replica ->
              ignore
                (Simnet.Net.drop_next_matching (Pbft.Cluster.net cluster)
                   (fun ~src ~dst ~label ->
                     src >= Pbft.Types.client_addr_base && dst = victim && label = "request"))
            | `Request_to_primary ->
              ignore
                (Simnet.Net.drop_next_matching (Pbft.Cluster.net cluster)
                   (fun ~src ~dst ~label ->
                     src >= Pbft.Types.client_addr_base && dst = 0 && label = "request"))))
      spec
  in
  let cfg_a = base_cfg () in
  let oa, ca = run_case ~cfg:cfg_a ~case:`Body_to_replica in
  let ra = Pbft.Cluster.replica ca victim in
  let cfg_b = { (base_cfg ()) with Pbft.Config.all_requests_big = false; big_request_threshold = 8192 } in
  let ob, cb = run_case ~cfg:cfg_b ~case:`Request_to_primary in
  let rb = Pbft.Cluster.replica cb victim in
  let cfg_c = { cfg_a with Pbft.Config.fetch_missing_bodies = true } in
  let oc_, cc = run_case ~cfg:cfg_c ~case:`Body_to_replica in
  let rc = Pbft.Cluster.replica cc victim in
  {
    Report.title = "§2.4 — a single lost UDP datagram";
    rows =
      [
        Report.row ~unit_:"transfers"
          ~note:
            (Printf.sprintf "replica %d stalls; recovers by checkpoint state transfer (retrans %d)"
               victim oa.Scenario.retransmissions)
          "A: big-request body lost -> state transfers at victim"
          (float_of_int (Pbft.Replica.state_transfers ra));
        Report.row ~unit_:"transfers"
          ~note:
            (Printf.sprintf "client retransmits after %.0f ms; no replica stalls (retrans %d)"
               (cfg_b.Pbft.Config.client_timeout *. 1000.0)
               ob.Scenario.retransmissions)
          "B: non-big request to primary lost -> state transfers at victim"
          (float_of_int (Pbft.Replica.state_transfers rb));
        Report.row ~unit_:"transfers"
          ~note:
            (Printf.sprintf "remedy: victim fetches the body from peers (retrans %d)"
               oc_.Scenario.retransmissions)
          "C: case A with fetch_missing_bodies remedy"
          (float_of_int (Pbft.Replica.state_transfers rc));
      ];
    commentary =
      [
        "Case A reproduces the paper's finding: under the big-request optimization";
        "a replica that misses one client datagram cannot execute and is lost to";
        "the service until the next checkpoint's state transfer. Case B shows the";
        "non-big path degrading gracefully via client retransmission. Case C is";
        "the engineering remedy the optimization forecloses by default.";
      ];
  }

(* --- §2.5 non-determinism validation --- *)

let nondet_validation ?(seed = 1) () =
  let restart_at = 3.0 in
  let run_policy policy =
    let cfg =
      {
        (base_cfg ()) with
        Pbft.Config.use_macs = false;
        all_requests_big = false;
        big_request_threshold = 1 lsl 20;
        fetch_missing_entries = true;
        checkpoint_interval = 50_000;
        log_window = 100_000;
        nondet = policy;
      }
    in
    let spec =
      {
        (Scenario.default_spec cfg) with
        Scenario.seed;
        num_clients = 3;
        think_time = 0.02;
        warmup = 0.4;
        duration = 6.0;
      }
    in
    let _, cluster =
      Scenario.run_cluster
        ~hook:(fun cluster ->
          Simnet.Engine.schedule (Pbft.Cluster.engine cluster) ~delay:restart_at (fun () ->
              Pbft.Cluster.restart_replica cluster 2))
        spec
    in
    let r2 = Pbft.Cluster.replica cluster 2 in
    let caught_up =
      Pbft.Replica.last_executed r2
      >= Pbft.Replica.last_executed (Pbft.Cluster.replica cluster 0) - 5
    in
    (Pbft.Replica.nondet_rejects r2, caught_up)
  in
  let rej_none, ok_none = run_policy Pbft.Config.No_validation in
  let rej_delta, ok_delta = run_policy (Pbft.Config.Delta 1.0) in
  let rej_skip, ok_skip = run_policy (Pbft.Config.Delta_skip_on_recovery 1.0) in
  let row name rejects ok =
    Report.row ~unit_:"rejects"
      ~note:(if ok then "replica caught up" else "RECOVERY IMPEDED: replica left behind")
      name (float_of_int rejects)
  in
  {
    Report.title = "§2.5 — non-determinism validation versus log replay during recovery";
    rows =
      [
        row "no validation" rej_none ok_none;
        row "delta validation (1 s)" rej_delta ok_delta;
        row "delta validation, skipped during recovery" rej_skip ok_skip;
      ];
    commentary =
      [
        "A restarted replica replays logged requests from its peers. Their";
        "pre-prepare timestamps are up to several seconds old, so plain";
        "delta validation rejects them and the replica can never catch up —";
        "the subtle issue §2.5 identifies. Skipping validation for replayed";
        "requests (the paper's proposed fix) restores recovery.";
      ];
  }

(* --- §3.3.3 WAN --- *)

let wan ?(seed = 1) ?(duration = 3.0) () =
  let run_f f profile =
    let cfg = { (Pbft.Config.default ~f) with Pbft.Config.client_timeout = 2.0 } in
    let spec =
      { (Scenario.default_spec cfg) with Scenario.seed; profile; duration; warmup = 1.0 }
    in
    Scenario.run spec
  in
  let lan1 = run_f 1 Simnet.Net.lan_profile in
  let wan1 = run_f 1 Simnet.Net.wan_profile in
  let wan2 = run_f 2 Simnet.Net.wan_profile in
  {
    Report.title = "§3.3.3 — wide-area deployment (replicas in different physical locations)";
    rows =
      [
        Report.row ~unit_:"ms" "LAN f=1 mean latency" (lan1.Scenario.mean_latency *. 1000.0);
        Report.row ~unit_:"ms" "WAN f=1 mean latency" (wan1.Scenario.mean_latency *. 1000.0);
        Report.row ~unit_:"ms" "WAN f=2 (n=7) mean latency" (wan2.Scenario.mean_latency *. 1000.0);
        Report.row "WAN f=1 throughput" wan1.Scenario.tps;
        Report.row "WAN f=2 (n=7) throughput" wan2.Scenario.tps;
      ];
    commentary =
      [
        "Three agreement legs at WAN latencies put request latency in the";
        "hundreds of milliseconds, and the quadratic message complexity grows";
        "the load with n — the deployment concern of §3.3.3. (BFTsim could not";
        "scale to interesting sizes; this simulator sweeps n directly.)";
      ];
  }

let payload_sweep ?(seed = 1) ?(duration = 1.5) () =
  let rows =
    List.map
      (fun size ->
        let spec =
          {
            (Scenario.default_spec (base_cfg ())) with
            Scenario.seed;
            duration;
            op = (fun ~client:_ ~seq:_ -> String.make size 'q');
            service = Pbft.Service.null ~reply_size:size ();
          }
        in
        let o = Scenario.run spec in
        Report.row (Printf.sprintf "%d-byte request/response" size) o.Scenario.tps)
      [ 256; 1024; 2048; 4096 ]
  in
  {
    Report.title = "§4.1 — payload size sweep (default configuration)";
    rows;
    commentary =
      [ "The paper: \"The results for varying request and response sizes are";
        "similar\" — throughput is dominated by per-request fixed work, not bytes." ];
  }

let loss_sweep ?(seed = 1) ?(duration = 3.0) () =
  let run_with_loss cfg loss =
    let spec =
      { (Scenario.default_spec cfg) with Scenario.seed; duration; warmup = 0.5 }
    in
    let o, cluster =
      Scenario.run_cluster
        ~hook:(fun cluster -> Simnet.Net.set_loss (Pbft.Cluster.net cluster) loss)
        spec
    in
    let transfers =
      Array.fold_left
        (fun acc r -> acc + Pbft.Replica.state_transfers r)
        0 (Pbft.Cluster.replicas cluster)
    in
    (o.Scenario.tps, transfers)
  in
  let default = base_cfg () in
  let robust =
    { (base_cfg ()) with Pbft.Config.all_requests_big = false; big_request_threshold = 8192 }
  in
  let rows =
    List.concat_map
      (fun loss ->
        let tps_d, tr_d = run_with_loss default loss in
        let tps_r, tr_r = run_with_loss robust loss in
        [
          Report.row
            ~note:(Printf.sprintf "%d checkpoint recoveries" tr_d)
            (Printf.sprintf "optimized (allbig), %.1f%% loss" (loss *. 100.0))
            tps_d;
          Report.row
            ~note:(Printf.sprintf "%d checkpoint recoveries" tr_r)
            (Printf.sprintf "robust (noallbig), %.1f%% loss" (loss *. 100.0))
            tps_r;
        ])
      [ 0.0; 0.001; 0.01; 0.05 ]
  in
  {
    Report.title =
      "Loss sweep — the optimization/robustness trade-off of §2.4/§4.1, quantified";
    rows;
    commentary =
      [
        "Under the default big-request optimization a lost client->replica body";
        "stalls a replica until checkpoint recovery; the robust configuration";
        "retries through the client instead. The optimized configuration's";
        "advantage shrinks (and its recovery churn grows) as loss rises.";
      ];
  }

let batching_ablation ?(seed = 1) ?(duration = 1.5) () =
  let rows =
    List.concat_map
      (fun window ->
        List.map
          (fun delay ->
            let cfg =
              { (base_cfg ()) with Pbft.Config.congestion_window = window; batch_delay = delay }
            in
            let o = measure_null ~seed ~duration cfg in
            Report.row
              (Printf.sprintf "window=%d delay=%.0fus" window (delay *. 1e6))
              o.Scenario.tps)
          [ 0.0; 80e-6; 200e-6 ])
      [ 1; 2; 4 ]
  in
  {
    Report.title = "Ablation — congestion window and aggregation delay (default config)";
    rows;
    commentary =
      [ "Sensitivity of the headline number to the two batching knobs (DESIGN.md)." ];
  }
