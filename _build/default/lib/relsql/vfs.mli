(** The Virtual File System seam (Figure 3).

    Everything the engine knows about the outside world goes through this
    record: byte-level file access for the database file and journal, the
    durability barrier, and the environment functions (time, randomness)
    whose non-determinism must be centralized so a replicated deployment
    can substitute the primary's agreed values (§2.5). A cost accumulator
    collects the virtual price of the I/O so callers can charge it to a
    simulated CPU. *)

type file = {
  read : pos:int -> len:int -> string;
  write : pos:int -> string -> unit;
  sync : unit -> unit;
  size : unit -> int;
  truncate : int -> unit;
}

type t = {
  main : file;  (** the database file *)
  journal : file option;  (** rollback journal; [None] disables ACID *)
  time : unit -> float;
  random : unit -> int64;
  cost : float ref;  (** accumulated virtual seconds of I/O *)
}

val take_cost : t -> float
(** Read and reset the accumulator. *)

val in_memory : ?acid:bool -> seed:int -> unit -> t
(** Self-contained heap-backed VFS (costless, deterministic env) for
    standalone use and tests. *)

val on_disk : ?acid:bool -> Simdisk.Disk.t -> name:string -> seed:int -> t
(** Files on a simulated disk; write and sync costs are accumulated. *)
