(* Tests for the discrete-event engine, virtual CPUs, the lossy network
   and the simulated disk. *)

(* --- engine --- *)

let test_engine_ordering () =
  let e = Simnet.Engine.create ~seed:1 in
  let log = ref [] in
  Simnet.Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log);
  Simnet.Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log);
  Simnet.Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log);
  Simnet.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 0.3 (Simnet.Engine.now e)

let test_engine_same_time_fifo () =
  let e = Simnet.Engine.create ~seed:1 in
  let log = ref [] in
  for i = 1 to 5 do
    Simnet.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  Simnet.Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Simnet.Engine.create ~seed:1 in
  let fired = ref 0 in
  Simnet.Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Simnet.Engine.schedule e ~delay:3.0 (fun () -> incr fired);
  Simnet.Engine.run ~until:2.0 e;
  Alcotest.(check int) "only first" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.0 (Simnet.Engine.now e);
  Simnet.Engine.run e;
  Alcotest.(check int) "rest run later" 2 !fired

let test_engine_cancel () =
  let e = Simnet.Engine.create ~seed:1 in
  let fired = ref false in
  let timer = Simnet.Engine.timer e ~delay:1.0 (fun () -> fired := true) in
  Simnet.Engine.cancel timer;
  Simnet.Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_periodic () =
  let e = Simnet.Engine.create ~seed:1 in
  let count = ref 0 in
  let timer =
    Simnet.Engine.periodic e ~interval:0.5 (fun () ->
        incr count)
  in
  Simnet.Engine.run ~until:2.6 e;
  Simnet.Engine.cancel timer;
  Simnet.Engine.run ~until:5.0 e;
  Alcotest.(check int) "five tickets then cancelled" 5 !count

let test_engine_nested_schedule () =
  let e = Simnet.Engine.create ~seed:1 in
  let log = ref [] in
  Simnet.Engine.schedule e ~delay:0.1 (fun () ->
      log := "outer" :: !log;
      Simnet.Engine.schedule e ~delay:0.1 (fun () -> log := "inner" :: !log));
  Simnet.Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "time advanced" 0.2 (Simnet.Engine.now e)

(* --- cpu --- *)

let test_cpu_fifo_and_busy () =
  let e = Simnet.Engine.create ~seed:1 in
  let cpu = Simnet.Cpu.create e in
  let log = ref [] in
  Simnet.Cpu.execute cpu ~cost:1.0 (fun () -> log := ("a", Simnet.Engine.now e) :: !log);
  Simnet.Cpu.execute cpu ~cost:0.5 (fun () -> log := ("b", Simnet.Engine.now e) :: !log);
  Alcotest.(check int) "queued" 2 (Simnet.Cpu.queue_length cpu);
  Simnet.Engine.run e;
  (match List.rev !log with
  | [ ("a", ta); ("b", tb) ] ->
    Alcotest.(check (float 1e-9)) "a at 1.0" 1.0 ta;
    Alcotest.(check (float 1e-9)) "b after a" 1.5 tb
  | _ -> Alcotest.fail "wrong order");
  Alcotest.(check (float 1e-9)) "busy accum" 1.5 (Simnet.Cpu.total_busy cpu);
  Alcotest.(check int) "drained" 0 (Simnet.Cpu.queue_length cpu)

let test_cpu_idle_gap () =
  let e = Simnet.Engine.create ~seed:1 in
  let cpu = Simnet.Cpu.create e in
  let t_done = ref 0.0 in
  Simnet.Engine.schedule e ~delay:2.0 (fun () ->
      Simnet.Cpu.execute cpu ~cost:0.5 (fun () -> t_done := Simnet.Engine.now e));
  Simnet.Engine.run e;
  Alcotest.(check (float 1e-9)) "starts when scheduled" 2.5 !t_done

(* Multi-core dispatch: earliest-free core, lowest index on ties — the
   deterministic generalization of the single-core FIFO. *)
let test_cpu_multicore_overlap () =
  let e = Simnet.Engine.create ~seed:1 in
  let cpu = Simnet.Cpu.create ~cores:2 e in
  let t = Hashtbl.create 4 in
  let item name cost = Simnet.Cpu.execute cpu ~cost (fun () -> Hashtbl.replace t name (Simnet.Engine.now e)) in
  item "a" 1.0;
  item "b" 1.0;
  item "c" 0.5;
  Simnet.Engine.run e;
  (* a and b run concurrently on cores 0 and 1; c waits for the earliest
     free core and finishes at 1.5 — not 2.5 as a single core would. *)
  Alcotest.(check (float 1e-9)) "a overlaps" 1.0 (Hashtbl.find t "a");
  Alcotest.(check (float 1e-9)) "b overlaps" 1.0 (Hashtbl.find t "b");
  Alcotest.(check (float 1e-9)) "c queued behind earliest-free" 1.5 (Hashtbl.find t "c");
  Alcotest.(check (float 1e-9)) "busy sums over cores" 2.5 (Simnet.Cpu.total_busy cpu);
  Alcotest.(check (float 1e-9)) "utilization = busy / (elapsed x cores)"
    (2.5 /. (1.5 *. 2.0))
    (Simnet.Cpu.utilization cpu ~since:0.0)

let test_cpu_split_serial_vs_parallel () =
  let run cores =
    let e = Simnet.Engine.create ~seed:1 in
    let cpu = Simnet.Cpu.create ~cores e in
    let t_done = ref 0.0 in
    Simnet.Cpu.execute_split cpu ~costs:[ 0.5; 0.5; 0.5; 0.5 ] (fun () ->
        t_done := Simnet.Engine.now e);
    Simnet.Engine.run e;
    !t_done
  in
  (* The same split work is the serial sum on one core and fully
     overlapped on four. *)
  Alcotest.(check (float 1e-9)) "1 core = serial sum" 2.0 (run 1);
  Alcotest.(check (float 1e-9)) "4 cores overlap" 0.5 (run 4);
  Alcotest.(check (float 1e-9)) "2 cores: two rounds" 1.0 (run 2)

let test_cpu_multicore_deterministic () =
  let once () =
    let e = Simnet.Engine.create ~seed:7 in
    let cpu = Simnet.Cpu.create ~cores:3 e in
    let log = ref [] in
    List.iteri
      (fun i cost ->
        Simnet.Cpu.execute cpu ~cost (fun () -> log := (i, Simnet.Engine.now e) :: !log))
      [ 0.3; 0.1; 0.4; 0.1; 0.5; 0.9; 0.2; 0.6 ];
    Simnet.Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "same schedule twice" (once ()) (once ());
  Alcotest.check_raises "cores must be positive"
    (Invalid_argument "Cpu.create: cores must be at least 1")
    (fun () -> ignore (Simnet.Cpu.create ~cores:0 (Simnet.Engine.create ~seed:1)))

(* --- net --- *)

let quiet_profile =
  { Simnet.Net.latency = 0.01; jitter = 0.0; bandwidth = 1e9; loss = 0.0; recv_buffer = 0 }

let test_net_delivery () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref [] in
  Simnet.Net.register net 1 (fun ~src payload -> got := (src, payload) :: !got);
  Simnet.Net.send net ~src:0 ~dst:1 "hello";
  Simnet.Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got;
  Alcotest.(check int) "sent" 1 (Simnet.Net.sent_count net);
  Alcotest.(check int) "delivered count" 1 (Simnet.Net.delivered_count net)

let test_net_unregistered_dropped () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  Simnet.Net.send net ~src:0 ~dst:9 "void";
  Simnet.Engine.run e;
  Alcotest.(check int) "dropped" 1 (Simnet.Net.dropped_count net)

let test_net_full_loss () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e { quiet_profile with Simnet.Net.loss = 1.0 } in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 50 do
    Simnet.Net.send net ~src:0 ~dst:1 "x"
  done;
  Simnet.Engine.run e;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "counted" 50 (Simnet.Net.dropped_count net)

let test_net_statistical_loss () =
  let e = Simnet.Engine.create ~seed:3 in
  let net = Simnet.Net.create e { quiet_profile with Simnet.Net.loss = 0.25 } in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 10_000 do
    Simnet.Net.send net ~src:0 ~dst:1 "x"
  done;
  Simnet.Engine.run e;
  let rate = float_of_int !got /. 10_000.0 in
  if Float.abs (rate -. 0.75) > 0.02 then Alcotest.failf "delivery rate %f" rate

let test_net_targeted_drop () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref [] in
  Simnet.Net.register net 1 (fun ~src:_ payload -> got := payload :: !got);
  ignore (Simnet.Net.drop_next_matching net (fun ~src:_ ~dst:_ ~label -> label = "kill-me"));
  Simnet.Net.send net ~label:"kill-me" ~src:0 ~dst:1 "a";
  Simnet.Net.send net ~label:"kill-me" ~src:0 ~dst:1 "b";
  Simnet.Net.send net ~label:"other" ~src:0 ~dst:1 "c";
  Simnet.Engine.run e;
  (* One-shot: only the first matching datagram dies. *)
  Alcotest.(check (list string)) "one-shot drop" [ "b"; "c" ] (List.sort compare !got)

let test_net_partition_heal () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  Simnet.Net.partition net [ 0 ] [ 1 ];
  Simnet.Net.send net ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "partitioned" 0 !got;
  Simnet.Net.heal net;
  Simnet.Net.send net ~src:0 ~dst:1 "y";
  Simnet.Engine.run e;
  Alcotest.(check int) "healed" 1 !got

let test_net_backlog_overflow () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e { quiet_profile with Simnet.Net.recv_buffer = 2 } in
  let backlog = ref 0 in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  Simnet.Net.set_backlog_probe net 1 (fun () -> !backlog);
  backlog := 5;
  Simnet.Net.send net ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "overflow drop" 0 !got;
  backlog := 0;
  Simnet.Net.send net ~src:0 ~dst:1 "y";
  Simnet.Engine.run e;
  Alcotest.(check int) "accepted when drained" 1 !got

let test_net_bandwidth_serialization () =
  let e = Simnet.Engine.create ~seed:1 in
  let prof = { quiet_profile with Simnet.Net.bandwidth = 1000.0; latency = 0.0 } in
  (* jitter 0, latency 0 (clamped to 1us) -> arrival dominated by tx time *)
  let net = Simnet.Net.create e prof in
  let arrivals = ref [] in
  Simnet.Net.register net 1 (fun ~src:_ _ -> arrivals := Simnet.Engine.now e :: !arrivals);
  (* Two 500-byte datagrams at 1000 B/s: 0.5 s each, serialized. *)
  Simnet.Net.send net ~src:0 ~dst:1 (String.make 500 'x');
  Simnet.Net.send net ~src:0 ~dst:1 (String.make 500 'y');
  Simnet.Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-3)) "first tx" 0.5 t1;
    Alcotest.(check (float 1e-3)) "second queued behind first" 1.0 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_trace_capture () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  Simnet.Net.register net 1 (fun ~src:_ _ -> ());
  Simnet.Net.send net ~label:"ping" ~detail:(fun () -> "d") ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  let tr = Simnet.Net.trace net in
  let entries = Simnet.Trace.filter tr (fun en -> en.Simnet.Trace.label = "ping") in
  Alcotest.(check int) "captured" 1 (List.length entries);
  Simnet.Trace.set_enabled tr false;
  Simnet.Net.send net ~label:"ping" ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "disabled" 1
    (List.length (Simnet.Trace.filter tr (fun en -> en.Simnet.Trace.label = "ping")))

(* --- scripted fault plans --- *)

let test_drop_expiry () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  let h =
    Simnet.Net.drop_next_matching net ~expires_at:0.1 (fun ~src:_ ~dst:_ ~label:_ -> true)
  in
  Alcotest.(check int) "pending while live" 1 (Simnet.Net.pending_drops net);
  (* Sent after the expiry time: the predicate must not eat it. *)
  Simnet.Engine.schedule e ~delay:0.2 (fun () -> Simnet.Net.send net ~src:0 ~dst:1 "late");
  Simnet.Engine.run e;
  Alcotest.(check int) "expired drop lets it through" 1 !got;
  Alcotest.(check bool) "handle never matched" true (Simnet.Net.drop_armed h);
  Alcotest.(check int) "expired not pending" 0 (Simnet.Net.pending_drops net)

let test_drop_cancel () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  let h = Simnet.Net.drop_next_matching net (fun ~src:_ ~dst:_ ~label:_ -> true) in
  Simnet.Net.cancel_drop h;
  Alcotest.(check bool) "disarmed" false (Simnet.Net.drop_armed h);
  Simnet.Net.send net ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "cancelled drop lets it through" 1 !got

let test_drain_drops () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  ignore (Simnet.Net.drop_next_matching net (fun ~src:_ ~dst:_ ~label -> label = "a"));
  ignore (Simnet.Net.drop_next_matching net (fun ~src:_ ~dst:_ ~label -> label = "b"));
  Alcotest.(check int) "drained both" 2 (Simnet.Net.drain_drops net);
  Alcotest.(check int) "none pending" 0 (Simnet.Net.pending_drops net);
  Simnet.Net.send net ~label:"a" ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "drained drop lets it through" 1 !got

let test_loss_window () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref [] in
  Simnet.Net.register net 1 (fun ~src:_ p -> got := p :: !got);
  Simnet.Net.schedule_loss_window net ~start:0.1 ~duration:0.1 1.0;
  List.iter
    (fun (at, p) -> Simnet.Engine.schedule e ~delay:at (fun () -> Simnet.Net.send net ~src:0 ~dst:1 p))
    [ (0.05, "before"); (0.15, "inside"); (0.25, "after") ];
  Simnet.Engine.run e;
  Alcotest.(check (list string)) "only the windowed send lost" [ "after"; "before" ]
    (List.sort compare !got);
  Alcotest.(check (float 1e-9)) "ambient loss restored" 0.0 (Simnet.Net.loss net)

let test_scheduled_partition () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref [] in
  Simnet.Net.register net 1 (fun ~src:_ p -> got := p :: !got);
  Simnet.Net.schedule_partition net ~start:0.1 ~duration:0.1 [ 0 ] [ 1 ];
  List.iter
    (fun (at, p) -> Simnet.Engine.schedule e ~delay:at (fun () -> Simnet.Net.send net ~src:0 ~dst:1 p))
    [ (0.05, "before"); (0.15, "inside"); (0.25, "after") ];
  Simnet.Engine.run e;
  Alcotest.(check (list string)) "auto-heal" [ "after"; "before" ] (List.sort compare !got)

let test_link_corrupt_hook () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref [] in
  Simnet.Net.register net 1 (fun ~src:_ p -> got := p :: !got);
  Simnet.Net.set_link_corrupt net ~src:0 ~dst:1 (fun ~dst:_ ~label:_ p ->
      String.uppercase_ascii p);
  Simnet.Net.send net ~src:0 ~dst:1 "abc";
  Simnet.Engine.run e;
  Simnet.Net.clear_link net ~src:0 ~dst:1;
  Simnet.Net.send net ~src:0 ~dst:1 "abc";
  Simnet.Engine.run e;
  Alcotest.(check (list string)) "corrupted then clean" [ "abc"; "ABC" ] !got

let test_link_duplicate () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr got);
  Simnet.Net.set_link_duplicate net ~src:0 ~dst:1 1;
  Simnet.Net.send net ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "delivered twice" 2 !got;
  Alcotest.(check int) "one logical send" 1 (Simnet.Net.sent_count net)

let test_reregister_replaces_handler () =
  let e = Simnet.Engine.create ~seed:1 in
  let net = Simnet.Net.create e quiet_profile in
  let old_got = ref 0 and new_got = ref 0 in
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr old_got);
  (* Node restart: the fresh incarnation re-binds the same address. *)
  Simnet.Net.register net 1 (fun ~src:_ _ -> incr new_got);
  Simnet.Net.send net ~src:0 ~dst:1 "x";
  Simnet.Engine.run e;
  Alcotest.(check int) "old handler silent" 0 !old_got;
  Alcotest.(check int) "new handler receives" 1 !new_got

(* --- disk --- *)

let test_disk_rw () =
  let d = Simdisk.Disk.create () in
  let f = Simdisk.Disk.open_file d "file" in
  Simdisk.Disk.write f ~pos:0 "hello";
  Simdisk.Disk.write f ~pos:5 " world";
  Alcotest.(check string) "read" "hello world" (Simdisk.Disk.read f ~pos:0 ~len:11);
  Alcotest.(check int) "size" 11 (Simdisk.Disk.size f);
  Simdisk.Disk.write f ~pos:20 "sparse";
  Alcotest.(check string) "gap zero-filled" "\000\000\000" (Simdisk.Disk.read f ~pos:15 ~len:3);
  Alcotest.check_raises "oob" (Invalid_argument "Disk.read: out of bounds") (fun () ->
      ignore (Simdisk.Disk.read f ~pos:100 ~len:1))

let test_disk_crash_semantics () =
  let d = Simdisk.Disk.create () in
  let f = Simdisk.Disk.open_file d "file" in
  Simdisk.Disk.write f ~pos:0 "durable";
  Simdisk.Disk.sync f;
  Simdisk.Disk.write f ~pos:0 "VOLATIL";
  Simdisk.Disk.crash d;
  let f = Simdisk.Disk.open_file d "file" in
  Alcotest.(check string) "unsynced writes lost" "durable" (Simdisk.Disk.read f ~pos:0 ~len:7)

let test_disk_crash_loses_everything_unsynced () =
  let d = Simdisk.Disk.create () in
  let f = Simdisk.Disk.open_file d "f2" in
  Simdisk.Disk.write f ~pos:0 "gone";
  Simdisk.Disk.crash d;
  Alcotest.(check int) "file empty" 0 (Simdisk.Disk.size (Simdisk.Disk.open_file d "f2"))

let test_disk_truncate_and_costs () =
  let d = Simdisk.Disk.create ~sync_latency:0.002 () in
  let f = Simdisk.Disk.open_file d "f" in
  Simdisk.Disk.write f ~pos:0 "0123456789";
  Simdisk.Disk.truncate f 4;
  Alcotest.(check int) "truncated" 4 (Simdisk.Disk.size f);
  Alcotest.(check (float 1e-9)) "sync cost" 0.002 (Simdisk.Disk.sync_cost d);
  Alcotest.(check bool) "write cost positive" true (Simdisk.Disk.write_cost d 1000 > 0.0);
  Simdisk.Disk.sync f;
  Alcotest.(check int) "sync counted" 1 (Simdisk.Disk.sync_count d)

let () =
  Alcotest.run "simnet"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "fifo & busy accounting" `Quick test_cpu_fifo_and_busy;
          Alcotest.test_case "idle gap" `Quick test_cpu_idle_gap;
          Alcotest.test_case "multi-core overlap & utilization" `Quick test_cpu_multicore_overlap;
          Alcotest.test_case "split work: serial vs parallel" `Quick
            test_cpu_split_serial_vs_parallel;
          Alcotest.test_case "multi-core determinism & validation" `Quick
            test_cpu_multicore_deterministic;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "unregistered dropped" `Quick test_net_unregistered_dropped;
          Alcotest.test_case "loss=1" `Quick test_net_full_loss;
          Alcotest.test_case "loss=0.25 statistics" `Quick test_net_statistical_loss;
          Alcotest.test_case "targeted one-shot drop" `Quick test_net_targeted_drop;
          Alcotest.test_case "partition & heal" `Quick test_net_partition_heal;
          Alcotest.test_case "receive-buffer overflow" `Quick test_net_backlog_overflow;
          Alcotest.test_case "NIC serialization" `Quick test_net_bandwidth_serialization;
          Alcotest.test_case "trace capture" `Quick test_trace_capture;
        ] );
      ( "fault plans",
        [
          Alcotest.test_case "one-shot drop expiry" `Quick test_drop_expiry;
          Alcotest.test_case "one-shot drop cancel" `Quick test_drop_cancel;
          Alcotest.test_case "drain pending drops" `Quick test_drain_drops;
          Alcotest.test_case "scheduled loss window" `Quick test_loss_window;
          Alcotest.test_case "scheduled partition auto-heals" `Quick test_scheduled_partition;
          Alcotest.test_case "link corruption hook" `Quick test_link_corrupt_hook;
          Alcotest.test_case "link duplication" `Quick test_link_duplicate;
          Alcotest.test_case "re-register replaces handler" `Quick test_reregister_replaces_handler;
        ] );
      ( "disk",
        [
          Alcotest.test_case "read/write/sparse" `Quick test_disk_rw;
          Alcotest.test_case "crash keeps only synced" `Quick test_disk_crash_semantics;
          Alcotest.test_case "crash loses unsynced file" `Quick test_disk_crash_loses_everything_unsynced;
          Alcotest.test_case "truncate & costs" `Quick test_disk_truncate_and_costs;
        ] );
    ]
