(** BFT-safe two-phase commit hooks for a sharded service, in the style
    of Basil ("Breaking up BFT with ACID"): the coordinator — an
    untrusted front-door router — drives prepare/commit/abort as
    ordinary *ordered* PBFT operations against each participant group,
    so every phase transition is itself agreed by the shard's replicas.

    A shard protects itself, never trusting the coordinator:

    - {b Prepare} snapshots the service's page region (the PR 2
      copy-on-write snapshots make this near-free), executes the shard's
      script, and votes. A vote is the shard's agreed reply; when the
      deployment deals threshold keys, the f+1-combined reply
      certificate (§3.3.1) makes the vote verifiable by third parties —
      including the *other* shards.
    - {b Commit} carries every participant's vote (shard, client, rq_id,
      result, certificate). The wrapper accepts only if each vote is a
      well-formed prepared vote for this transaction and passes the
      deployment's [verify] check, so a Byzantine coordinator cannot
      commit a transaction some shard never prepared.
    - {b Abort} restores the snapshot page-by-page
      ({!Statemgr.Pages.restore_page}) and is idempotent; aborted ids
      are remembered so a prepare ordered *after* its abort (reordered
      retransmission, Byzantine delay) votes abort instead of wedging
      the shard.
    - {b Expiry}: the prepare carries an agreed deadline. Replicas never
      consult local clocks — the deadline is checked against the agreed
      timestamps of subsequent ordered operations, so a crashed or
      malicious coordinator cannot hold a shard's lock forever, and all
      replicas of the group abort at the same sequence number.

    While a transaction is prepared the shard is single-occupancy:
    other operations get a deterministic ["error:shard-busy"] reply
    (the router quiesces a shard's lanes before involving it in a
    transaction, so this surfaces only under races or misbehavior).
    The wrapper requires serial execution (pipeline depth 1): its
    prepared-transaction state lives outside the page region, so it
    must not be replayed speculatively. *)

type vote = {
  v_shard : int;
  v_client : int;  (** client id of the coordinator's connection into that shard *)
  v_rq_id : int;
  v_result : string;  (** the shard's prepared-vote reply, verbatim *)
  v_cert : string;  (** combined §3.3.1 reply certificate; "" when certs are off *)
}

type op =
  | Prepare of { tx : int; deadline : float; shards : int list; script : string }
  | Commit of { tx : int; votes : vote list }
  | Abort of { tx : int; reason : string }

val encode_op : op -> string

val decode_op : string -> op option
[@@trust.source "2PC operation decoded from an ordered op authored by the untrusted coordinator"]
(** [None] when the string does not carry the 2PC magic or is malformed. *)

val is_twopc_op : string -> bool

val prepared_prefix : int -> string
(** ["2pc-prepared:<tx>:"] — a successful vote is this prefix followed
    by the script's results. *)

val wrap :
  verify:(shard:int -> client:int -> rq_id:int -> result:string -> cert:string -> bool) ->
  ?vote_verify_cost:float ->
  ?max_recent_aborts:int ->
  Pbft.Service.t ->
  Pbft.Service.t
(** Interpose the 2PC protocol in front of [inner]; non-2PC operations
    pass through untouched whenever no transaction is prepared.
    [verify] validates one vote's certificate (the harness closes over
    the per-group threshold publics); [vote_verify_cost] is the virtual
    CPU charge per vote checked at commit. *)

(** {2 Process-wide instrumentation} (the {!Statemgr.Pages.bytes_copied}
    idiom: sample before/after a run and subtract) *)

val prepares : unit -> int
val commits : unit -> int
val aborts : unit -> int
(** Abort events that rolled state back via snapshot restore. *)

val expired : unit -> int
(** Of {!aborts}, those triggered by the agreed deadline passing. *)

val vote_rejections : unit -> int
(** Commit attempts refused because a vote failed verification. *)
