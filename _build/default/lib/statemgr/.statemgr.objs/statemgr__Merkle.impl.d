lib/statemgr/merkle.ml: Array Crypto Hashtbl List Pages String
