(** Deterministic, splittable pseudo-random number generator.

    Every stochastic decision in the simulation (packet loss, latency
    jitter, key generation, workload contents) draws from an explicit
    generator so that a whole experiment is a pure function of its seed.
    The core is the SplitMix64 sequence, which has a cheap, well-understood
    [split] operation for handing independent streams to sub-components. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val gaussian : t -> mean:float -> stdev:float -> float
(** Normally distributed sample (Box–Muller). *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
