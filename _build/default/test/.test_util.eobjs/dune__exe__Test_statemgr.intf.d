test/test_statemgr.mli:
