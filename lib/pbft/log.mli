(** The agreement log: per-sequence-number protocol state between the low
    and high watermarks, plus the per-client reply cache (§2.1). *)

open Types

type entry = {
  seq : seqno;
  mutable pp_view : view;  (** view of the accepted pre-prepare *)
  mutable batch : Message.batch_item list option;  (** None until pre-prepared *)
  mutable nondet : string;
  mutable batch_digest : digest;
  mutable prepares : (replica_id, unit) Hashtbl.t;
  mutable commits : (replica_id, unit) Hashtbl.t;
  mutable prepared : bool;
  mutable committed : bool;
  mutable executed : bool;
  mutable tentatively_executed : bool;
  mutable missing_bodies : digest list;
      (** big-request digests in the batch whose bodies this replica does
          not hold — the §2.4 stall condition *)
  mutable pending_replies : (Message.request * string * float) list;
      (** pipelined speculation: (request, result, exec timestamp) buffered
          until the commit certificate lands, then flushed to clients;
          always [] in serial mode and cleared on rollback *)
}

type t

val create : unit -> t

val low_watermark : t -> seqno
val set_low_watermark : t -> seqno -> unit
(** Garbage-collects entries at or below the new mark. *)

val entry : t -> seqno -> entry
(** Get-or-create the log slot. *)

val find : t -> seqno -> entry option

val record_prepare : entry -> replica_id -> unit
[@@trust.sink "agreement-log prepare-vote increment"]

val record_commit : entry -> replica_id -> unit
[@@trust.sink "agreement-log commit-vote increment"]

val reset_votes : entry -> unit
(** Clear the prepare/commit vote sets and certificates — used when a
    later view's pre-prepare supersedes a batch that was accepted but
    never prepared (the old votes certified the old digest). *)

val prepare_count : entry -> int
val commit_count : entry -> int

val entries_between : t -> lo:seqno -> hi:seqno -> entry list
(** Existing entries with [lo < seq <= hi], ascending. *)

val prepared_above : t -> seqno -> entry list
(** Entries above the given sequence number that reached prepared status
    (for view-change messages). *)

(** {2 Reply cache} *)

type cached_reply = {
  cr_id : int;  (** request id the reply answers *)
  cr_result : string;
  cr_view : view;
  cr_tentative : bool;
  cr_timestamp : float;  (** primary-clock execution time (§3.1 staleness) *)
  cr_speculative : bool;
      (** cached by a speculative execution that has not committed; such a
          reply is never resent on retransmission until the commit flush
          clears the flag (speculation must not leak to clients) *)
}

val cached_reply : t -> client_id -> cached_reply option

val cache_reply : t -> client_id -> cached_reply -> unit
[@@trust.sink "per-client reply-cache insert"]

val drop_client : t -> client_id -> unit
[@@trust.sink "reply-cache removal"]
