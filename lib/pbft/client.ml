open Types

type outstanding = {
  o_rq : Message.request;
  o_multicast : bool;
  o_start : float;
  o_replies : (replica_id, string * bool) Hashtbl.t;
  o_counts : (string * bool, int) Hashtbl.t;
      (** vote count per (result, tentative) key, maintained incrementally
          so each incoming reply checks its own key in O(1) instead of
          recounting every recorded reply *)
  o_partials : (replica_id, string * string) Hashtbl.t;
      (** replica -> (result it reported, its wire partial) *)
  o_callback : string -> string option -> unit;
  mutable o_timer : Simnet.Engine.timer option;
}

type join_state = {
  j_nonce : string;
  j_idbuf : string;
  j_challenges : (replica_id, string) Hashtbl.t;
  j_replies : (replica_id, client_id) Hashtbl.t;
  j_callback : client_id option -> unit;
  mutable j_responded : bool;
  mutable j_timer : Simnet.Engine.timer option;
}

type t = {
  cfg : Config.t;
  costs : Costmodel.t;
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  cpu : Simnet.Cpu.t;
  rng : Util.Rng.t;
  caddr : int;
  signer : Crypto.Keychain.signer;
  registry : Replica.registry;
  threshold_public : Crypto.Threshold.public option;
  keys : (replica_id, Crypto.Mac.key) Hashtbl.t;
  mutable cid : client_id option;
  mutable next_rq_id : int;
  mutable view_guess : view;
  mutable out : outstanding option;
  mutable joining : join_state option;
  mutable rebroadcast : Simnet.Engine.timer option;
  mutable n_completed : int;
  mutable n_tentative : int;
  mutable n_retrans : int;
  latencies : Util.Stats.t;
  mutable alive : bool;
}

let addr t = t.caddr
let client_id t = t.cid
let verifier_string t = Crypto.Keychain.verifier_to_string (Crypto.Keychain.verifier_of t.signer)
let completed t = t.n_completed
let tentative_completed t = t.n_tentative
let retransmissions t = t.n_retrans
let latency_stats t = t.latencies
let now t = Simnet.Engine.now t.engine

let send_cost t bytes = Costmodel.send t.costs bytes
let recv_cost t bytes = Costmodel.recv t.costs bytes

let charge t cost k = Simnet.Cpu.execute t.cpu ~cost k

let session_key_for t replica =
  match Hashtbl.find_opt t.keys replica with
  | Some k -> k
  | None ->
    let k = Crypto.Mac.fresh_key t.rng in
    Hashtbl.replace t.keys replica k;
    k

let replica_ids t = List.init t.cfg.n (fun i -> i)

let send_payload t ~dst payload ~signed =
  let pb = Message.payload_bytes payload in
  let auth, auth_cost =
    if signed || not t.cfg.use_macs then
      (Message.Signed (Crypto.Keychain.sign t.signer pb), t.costs.sign)
    else begin
      let key = session_key_for t dst in
      ( Message.Authenticated (Crypto.Authenticator.compute ~keys:[ (dst, key) ] pb),
        t.costs.mac_gen )
    end
  in
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  charge t
    (auth_cost +. send_cost t (String.length wire))
    (fun () ->
      Simnet.Net.send t.net ~label:(Message.label payload)
        ~detail:(fun () -> Message.describe payload)
        ~src:t.caddr ~dst wire)

(* Multicast with a shared authenticator: authentication generated once,
   one datagram per replica. *)
let multicast_payload t payload ~signed =
  let pb = Message.payload_bytes payload in
  let auth, auth_cost =
    if signed || not t.cfg.use_macs then
      (Message.Signed (Crypto.Keychain.sign t.signer pb), t.costs.sign)
    else begin
      let keys = List.map (fun r -> (r, session_key_for t r)) (replica_ids t) in
      ( Message.Authenticated (Crypto.Authenticator.compute ~keys pb),
        float_of_int t.cfg.n *. t.costs.mac_gen )
    end
  in
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  let label = Message.label payload in
  let detail () = Message.describe payload in
  charge t
    (auth_cost +. (float_of_int t.cfg.n *. send_cost t (String.length wire)))
    (fun () ->
      List.iter
        (fun dst -> Simnet.Net.send t.net ~label ~detail ~src:t.caddr ~dst wire)
        (replica_ids t))

let announce_session_keys t =
  List.iter
    (fun replica ->
      let key = session_key_for t replica in
      send_payload t ~dst:replica ~signed:true
        (Message.Session_key { sk_sender = t.caddr; sk_target = replica; sk_key_box = key }))
    (replica_ids t)

(* ------------------------------------------------------------------ *)
(* Requests.                                                            *)

let is_big t op = t.cfg.all_requests_big || String.length op > t.cfg.big_request_threshold

let transmit t o ~to_all =
  let payload = Message.Request_msg o.o_rq in
  if to_all then multicast_payload t payload ~signed:false
  else send_payload t ~dst:(primary_of_view ~n:t.cfg.n t.view_guess) payload ~signed:false

let rec arm_retransmit t o =
  o.o_timer <-
    Some
      (Simnet.Engine.timer t.engine ~delay:t.cfg.client_timeout (fun () ->
           (* Identity check on purpose: is this the same in-flight operation? *)
           let[@detlint.allow physical_eq] still_out =
             match t.out with Some o' -> o' == o | None -> false
           in
           if t.alive && still_out then begin
             t.n_retrans <- t.n_retrans + 1;
             (* On timeout PBFT clients multicast to all replicas, which
                both reaches a correct primary and triggers the backups'
                view-change watchdogs. *)
             transmit t o ~to_all:true;
             arm_retransmit t o
           end))

let invoke_certified t ?(readonly = false) op callback =
  (match t.out with Some _ -> failwith "Client.invoke: request already outstanding" | None -> ());
  let cid = match t.cid with Some c -> c | None -> failwith "Client.invoke: no identity" in
  t.next_rq_id <- t.next_rq_id + 1;
  let rq =
    {
      Message.rq_client = cid;
      rq_id = t.next_rq_id;
      rq_op = op;
      rq_readonly = readonly;
      rq_timestamp = now t;
    }
  in
  let multicast = readonly || is_big t op in
  let o =
    {
      o_rq = rq;
      o_multicast = multicast;
      o_start = now t;
      o_replies = Hashtbl.create 8;
      o_counts = Hashtbl.create 8;
      o_partials = Hashtbl.create 8;
      o_callback = callback;
      o_timer = None;
    }
  in
  t.out <- Some o;
  transmit t o ~to_all:multicast;
  arm_retransmit t o

let invoke t ?readonly op callback = invoke_certified t ?readonly op (fun r _ -> callback r)

(* The request id a 2PC coordinator needs to let third parties check the
   certificate: [invoke_certified] assigns ids densely, so the id this
   call will use is known before it runs. *)
let invoke_attested t ?readonly op callback =
  let rq_id = t.next_rq_id + 1 in
  invoke_certified t ?readonly op (fun result cert -> callback ~rq_id result cert)

(* Quorum rules (§2.1): f+1 matching stable replies, or 2f+1 matching
   tentative replies; read-only requests always need 2f+1.

   A stable reply is strictly stronger evidence than a tentative one for
   the same result (committed implies prepared), so it votes in both
   tallies: without this, a client facing f mute replicas can sit on
   2f tentative + 1 stable matching replies — enough honest agreement,
   yet neither tally alone reaches its threshold — and wedge forever.

   The counts are maintained incrementally as replies land, so only the
   keys the newest reply voted for need checking — O(1) per reply where
   the old recount was O(replies). No other key can cross its threshold
   at this instant: a key that qualified on an earlier reply would have
   completed the request then. *)
let bump o key delta =
  match Option.value ~default:0 (Hashtbl.find_opt o.o_counts key) + delta with
  | 0 -> Hashtbl.remove o.o_counts key
  | n -> Hashtbl.replace o.o_counts key n

let record_vote o ((result, tentative) as key) =
  bump o key 1;
  if not tentative then bump o (result, true) 1

let retract_vote o ((result, tentative) as key) =
  bump o key (-1);
  if not tentative then bump o (result, true) (-1)

let count o key = Option.value ~default:0 (Hashtbl.find_opt o.o_counts key)

let check_quorum t o ~key:(result, tentative) =
  if (not tentative) && count o (result, false) >= quorum_f1 ~f:t.cfg.f then
    Some (result, false)
  else if count o (result, true) >= quorum_2f1 ~f:t.cfg.f then Some (result, true)
  else None

(* Combine the partials from replicas that reported the accepted result
   into one service certificate (§3.3.1). *)
let build_certificate t o result =
  match t.threshold_public with
  | None -> None
  | Some pk ->
    let wires =
      Util.Sorted_tbl.fold
        (fun _ (res, wire) acc -> if String.equal res result then wire :: acc else acc)
        o.o_partials []
    in
    Certificate.combine pk ~client:o.o_rq.Message.rq_client ~rq_id:o.o_rq.Message.rq_id ~result
      wires

let handle_reply t ~src ~r_view ~r_id ~r_replica ~r_result ~r_tentative ~r_partial =
  match t.out with
  | None -> ()
  | Some o ->
    if r_id = o.o_rq.rq_id && r_replica = src then begin
      t.view_guess <- Int.max t.view_guess r_view;
      (* Tentative and stable replies are tracked together; a stable reply
         from the same replica supersedes its tentative one. *)
      (match Hashtbl.find_opt o.o_replies src with
      | Some (_, false) -> ()
      | Some ((_, true) as old) ->
        retract_vote o old;
        Hashtbl.replace o.o_replies src (r_result, r_tentative);
        record_vote o (r_result, r_tentative)
      | None ->
        Hashtbl.replace o.o_replies src (r_result, r_tentative);
        record_vote o (r_result, r_tentative));
      (match r_partial with
      | Some wire -> Hashtbl.replace o.o_partials src (r_result, wire)
      | None -> ());
      match check_quorum t o ~key:(r_result, r_tentative) with
      | None -> ()
      | Some (result, tentative) ->
        (match o.o_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
        t.out <- None;
        t.n_completed <- t.n_completed + 1;
        if tentative then t.n_tentative <- t.n_tentative + 1;
        Util.Stats.add t.latencies (now t -. o.o_start);
        let cert = build_certificate t o result in
        (* Combining is a handful of modular exponentiations. *)
        let cost = match cert with Some _ -> t.costs.sign | None -> 0.0 in
        charge t cost (fun () -> o.o_callback result cert)
    end

(* ------------------------------------------------------------------ *)
(* Join / leave (§3.1).                                                 *)

let rec send_join_phase1 t js =
  multicast_payload t ~signed:true
    (Message.Join_request
       { j_addr = t.caddr; j_pubkey = verifier_string t; j_nonce = js.j_nonce });
  js.j_timer <-
    Some
      (Simnet.Engine.timer t.engine ~delay:t.cfg.join_request_timeout (fun () ->
           let[@detlint.allow physical_eq] active =
             match t.joining with Some js' -> js' == js | None -> false
           in
           if t.alive && active && t.cid = None then
             if js.j_responded then send_join_phase2 t js else send_join_phase1 t js))

and send_join_phase2 t js =
  match Util.Sorted_tbl.fold (fun _ c _acc -> Some c) js.j_challenges None with
  | None -> send_join_phase1 t js
  | Some challenge ->
    js.j_responded <- true;
    multicast_payload t ~signed:true
      (Message.Join_response
         {
           jr_addr = t.caddr;
           jr_proof = js.j_nonce ^ "|" ^ challenge;
           jr_pubkey = verifier_string t;
           jr_idbuf = js.j_idbuf;
         });
    js.j_timer <-
      Some
        (Simnet.Engine.timer t.engine ~delay:t.cfg.join_request_timeout (fun () ->
             let[@detlint.allow physical_eq] active =
             match t.joining with Some js' -> js' == js | None -> false
           in
             if t.alive && active && t.cid = None then send_join_phase2 t js))

let join t ~idbuf callback =
  if not t.cfg.dynamic_clients then failwith "Client.join: static configuration";
  let js =
    {
      (* Hex-encoded so the nonce|challenge proof framing stays parseable. *)
      j_nonce = Util.Hexdump.of_string (Bytes.to_string (Util.Rng.bytes t.rng 16));
      j_idbuf = idbuf;
      j_challenges = Hashtbl.create 8;
      j_replies = Hashtbl.create 8;
      j_callback = callback;
      j_responded = false;
      j_timer = None;
    }
  in
  t.joining <- Some js;
  send_join_phase1 t js

let handle_join_challenge t ~src (jc : string) =
  match t.joining with
  | None -> ()
  | Some js ->
    Hashtbl.replace js.j_challenges src jc;
    (* Challenges are deterministic, so matching values from f+1 replicas
       prove the group issued them. *)
    (* Counting and the boolean-or fold are both order-free. *)
    let counts = Hashtbl.create 4 in
    (Hashtbl.iter
       (fun _ c ->
         Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
       js.j_challenges
     [@detlint.allow hashtbl_order]);
    let[@detlint.allow hashtbl_order] confirmed =
      Hashtbl.fold (fun _ c acc -> acc || c >= quorum_f1 ~f:t.cfg.f) counts false
    in
    if confirmed && not js.j_responded then send_join_phase2 t js

let handle_join_reply t ~src (client, ok) =
  match t.joining with
  | None -> ()
  | Some js ->
    if not ok then begin
      (match js.j_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
      t.joining <- None;
      js.j_callback None
    end
    else begin
      Hashtbl.replace js.j_replies src client;
      (* Counting is order-free; the winner pick is not (two ids could
         both reach f+1), so it traverses keys in sorted order. *)
      let counts = Hashtbl.create 4 in
      (Hashtbl.iter
         (fun _ c ->
           Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
         js.j_replies
       [@detlint.allow hashtbl_order]);
      let winner =
        Util.Sorted_tbl.fold
          (fun c n acc -> if n >= quorum_f1 ~f:t.cfg.f then Some c else acc)
          counts None
      in
      match winner with
      | None -> ()
      | Some client ->
        (match js.j_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
        t.joining <- None;
        t.cid <- Some client;
        if t.cfg.use_macs then announce_session_keys t;
        js.j_callback (Some client)
    end

let leave t =
  match t.cid with
  | None -> ()
  | Some c ->
    multicast_payload t ~signed:true (Message.Leave_msg { lv_client = c });
    t.cid <- None

(* ------------------------------------------------------------------ *)
(* Receive path.                                                        *)

let verify_reply_auth t ~src (msg : Message.t) =
  let pb = Message.payload_bytes msg.payload in
  match msg.auth with
  | Message.No_auth -> (0.0, false)
  | Message.Signed s -> begin
    if src < Array.length t.registry.reg_verifiers then
      ( t.costs.sig_verify,
        Crypto.Keychain.verify t.registry.reg_verifiers.(src) pb ~signature:s )
    else (0.0, false)
  end
  | Message.Authenticated a -> begin
    match Hashtbl.find_opt t.keys src with
    | None -> (0.0, false)
    | Some key -> (t.costs.mac_verify, Crypto.Authenticator.check ~key ~replica:t.caddr pb a)
  end

let on_datagram t ~src wire =
  if t.alive then begin
    charge t (recv_cost t (String.length wire)) (fun () ->
        match Message.decode wire with
        | None -> ()
        | Some msg ->
          let cost, ok = verify_reply_auth t ~src msg in
          charge t cost (fun () ->
              if ok then begin
                match msg.payload with
                | Message.Reply r ->
                  handle_reply t ~src ~r_view:r.r_view ~r_id:r.r_id ~r_replica:r.r_replica
                    ~r_result:r.r_result ~r_tentative:r.r_tentative ~r_partial:r.r_partial
                | Message.Join_challenge jc ->
                  if jc.jc_addr = t.caddr then handle_join_challenge t ~src jc.jc_nonce
                | Message.Join_reply jl -> handle_join_reply t ~src (jl.jl_client, jl.jl_ok)
                (* Replica-to-replica traffic; a client is never a valid
                   destination. Enumerated so that a new message kind fails
                   to compile until someone decides whether clients see it. *)
                | Message.Request_msg _ | Message.Pre_prepare _ | Message.Prepare _
                | Message.Commit _ | Message.Checkpoint_msg _ | Message.View_change _
                | Message.New_view _ | Message.Session_key _ | Message.Join_request _
                | Message.Join_response _ | Message.Leave_msg _ | Message.Fetch_meta _
                | Message.State_meta _ | Message.Fetch_pages _ | Message.State_pages _
                | Message.Fetch_body _ | Message.Body _ | Message.Fetch_entry _
                | Message.Entry _ | Message.Status _ | Message.Key_request _ -> ()
              end))
  end

let create ~cfg ~costs ~engine ~net ~addr ~signer ~registry ?threshold_public ?client_id () =
  let t =
    {
      cfg;
      costs;
      engine;
      net;
      cpu = Simnet.Cpu.create engine;
      rng = Util.Rng.split (Simnet.Engine.rng engine);
      caddr = addr;
      signer;
      registry;
      threshold_public;
      keys = Hashtbl.create 8;
      cid = client_id;
      next_rq_id = 0;
      view_guess = 0;
      out = None;
      joining = None;
      rebroadcast = None;
      n_completed = 0;
      n_tentative = 0;
      n_retrans = 0;
      latencies = Util.Stats.create ();
      alive = true;
    }
  in
  Simnet.Net.register net addr (fun ~src wire -> on_datagram t ~src wire);
  Simnet.Net.set_backlog_probe net addr (fun () -> Simnet.Cpu.queue_length t.cpu);
  if cfg.use_macs then
    t.rebroadcast <-
      Some
        (Simnet.Engine.periodic engine ~interval:cfg.authenticator_rebroadcast (fun () ->
             if t.alive && t.cid <> None then announce_session_keys t));
  t

let shutdown t =
  t.alive <- false;
  Simnet.Net.unregister t.net t.caddr;
  (match t.rebroadcast with Some timer -> Simnet.Engine.cancel timer | None -> ());
  match t.out with
  | Some o -> ( match o.o_timer with Some timer -> Simnet.Engine.cancel timer | None -> ())
  | None -> ()
