(* Nodes are serialized whole into single pages; a split is triggered by
   encoded size, so fill factor adapts to entry sizes. *)

type node =
  | Leaf of { entries : (string * string) list; next : int }
  | Interior of { seps : string list; children : int list }

type t = { pager : Pager.t; mutable root_page : int }

let max_node_bytes = Pager.page_size - 256
let max_entry_bytes = max_node_bytes / 2

let encode_node node =
  let w = Util.Codec.W.create () in
  (match node with
  | Leaf { entries; next } ->
    Util.Codec.W.u8 w 0;
    Util.Codec.W.u32 w next;
    Util.Codec.W.list w
      (fun w (k, v) ->
        Util.Codec.W.lstring w k;
        Util.Codec.W.lstring w v)
      entries
  | Interior { seps; children } ->
    Util.Codec.W.u8 w 1;
    Util.Codec.W.list w Util.Codec.W.lstring seps;
    Util.Codec.W.list w Util.Codec.W.varint children);
  Util.Codec.W.contents w

let node_size node = String.length (encode_node node)

let decode_node image =
  let r = Util.Codec.R.of_string image in
  match Util.Codec.R.u8 r with
  | 0 ->
    let next = Util.Codec.R.u32 r in
    let entries =
      Util.Codec.R.list r (fun r ->
          let k = Util.Codec.R.lstring r in
          let v = Util.Codec.R.lstring r in
          (k, v))
    in
    Leaf { entries; next }
  | 1 ->
    let seps = Util.Codec.R.list r Util.Codec.R.lstring in
    let children = Util.Codec.R.list r Util.Codec.R.varint in
    Interior { seps; children }
  | _ -> raise (Pager.Corrupt "btree node tag")

let load t page =
  let img = Pager.read_page t.pager page in
  decode_node img

let store t page node =
  let s = encode_node node in
  if String.length s > Pager.page_size then raise (Pager.Corrupt "btree node overflow");
  Pager.write_page t.pager page (s ^ String.make (Pager.page_size - String.length s) '\000')

let create pager =
  let page = Pager.allocate_page pager in
  let t = { pager; root_page = page } in
  store t page (Leaf { entries = []; next = 0 });
  t

let open_tree pager ~root = { pager; root_page = root }
let root t = t.root_page

(* Child index for a key in an interior node: first separator > key goes
   left of it; equal keys descend right (separators are copied-up leaf
   keys, the right child holds keys >= sep). *)
let child_index seps key =
  let rec go i = function
    | [] -> i
    | sep :: rest -> if String.compare key sep < 0 then i else go (i + 1) rest
  in
  go 0 seps

let rec find_in t page key =
  match load t page with
  | Leaf { entries; _ } -> List.assoc_opt key entries
  | Interior { seps; children } -> find_in t (List.nth children (child_index seps key)) key

let find t key = find_in t t.root_page key

(* Insert; returns Some (separator, right page) if the node split. *)
let rec insert_in t page key value =
  match load t page with
  | Leaf { entries; next } ->
    let entries =
      let rec place = function
        | [] -> [ (key, value) ]
        | (k, v) :: rest ->
          let c = String.compare key k in
          if c = 0 then (key, value) :: rest
          else if c < 0 then (key, value) :: (k, v) :: rest
          else (k, v) :: place rest
      in
      place entries
    in
    let node = Leaf { entries; next } in
    if node_size node <= max_node_bytes then begin
      store t page node;
      None
    end
    else begin
      (* Split in half by entry count. *)
      let arr = Array.of_list entries in
      let mid = Array.length arr / 2 in
      let left = Array.to_list (Array.sub arr 0 mid) in
      let right = Array.to_list (Array.sub arr mid (Array.length arr - mid)) in
      let right_page = Pager.allocate_page t.pager in
      store t right_page (Leaf { entries = right; next });
      store t page (Leaf { entries = left; next = right_page });
      Some (fst (List.hd right), right_page)
    end
  | Interior { seps; children } ->
    let idx = child_index seps key in
    let child = List.nth children idx in
    (match insert_in t child key value with
    | None -> None
    | Some (sep, right_page) ->
      let seps = List.filteri (fun i _ -> i < idx) seps @ (sep :: List.filteri (fun i _ -> i >= idx) seps) in
      let children =
        List.filteri (fun i _ -> i <= idx) children
        @ (right_page :: List.filteri (fun i _ -> i > idx) children)
      in
      let node = Interior { seps; children } in
      if node_size node <= max_node_bytes then begin
        store t page node;
        None
      end
      else begin
        let sarr = Array.of_list seps and carr = Array.of_list children in
        let mid = Array.length sarr / 2 in
        let promoted = sarr.(mid) in
        let left_seps = Array.to_list (Array.sub sarr 0 mid) in
        let right_seps = Array.to_list (Array.sub sarr (mid + 1) (Array.length sarr - mid - 1)) in
        let left_children = Array.to_list (Array.sub carr 0 (mid + 1)) in
        let right_children = Array.to_list (Array.sub carr (mid + 1) (Array.length carr - mid - 1)) in
        let right_pg = Pager.allocate_page t.pager in
        store t right_pg (Interior { seps = right_seps; children = right_children });
        store t page (Interior { seps = left_seps; children = left_children });
        Some (promoted, right_pg)
      end)

let insert t ~key ~value =
  if String.length key + String.length value > max_entry_bytes then
    invalid_arg "Btree.insert: entry too large (no overflow pages)";
  match insert_in t t.root_page key value with
  | None -> ()
  | Some (sep, right_page) ->
    let new_root = Pager.allocate_page t.pager in
    store t new_root (Interior { seps = [ sep ]; children = [ t.root_page; right_page ] });
    t.root_page <- new_root

let rec delete_in t page key =
  match load t page with
  | Leaf { entries; next } ->
    if List.mem_assoc key entries then begin
      store t page (Leaf { entries = List.remove_assoc key entries; next });
      true
    end
    else false
  | Interior { seps; children } -> delete_in t (List.nth children (child_index seps key)) key

let delete t key = delete_in t t.root_page key

(* Descend to the leaf that would hold [key] (or the leftmost). Interior
   pages are genuine traversal work and count as touches; the leaf itself
   is charged by the caller only if it yields entries — deletion is lazy,
   so long-lived trees accumulate empty leaves that a range scan must
   step over but should not be billed for. *)
let load_quiet t page = decode_node (Pager.read_page_quiet t.pager page)

let rec descend_leaf t page key =
  match load_quiet t page with
  | Leaf _ -> page
  | Interior { seps; children } ->
    Pager.touch_page t.pager page;
    let child =
      match key with
      | None -> List.hd children
      | Some k -> List.nth children (child_index seps k)
    in
    descend_leaf t child key

let iter t ?from ?upto f =
  let start = descend_leaf t t.root_page from in
  let rec walk page =
    if page <> 0 then begin
      match load_quiet t page with
      | Interior _ -> raise (Pager.Corrupt "leaf chain reached interior node")
      | Leaf { entries; next } ->
        if entries <> [] then Pager.touch_page t.pager page;
        let continue =
          List.for_all
            (fun (k, v) ->
              match (from, upto) with
              | Some lo, _ when String.compare k lo < 0 -> true
              | _, Some hi when String.compare k hi > 0 -> false
              | _ -> f k v)
            entries
        in
        (* A leaf ending above [upto] already returned false above; only
           chains still inside the bound keep walking. *)
        if continue then walk next
    end
  in
  walk start

let count t =
  let n = ref 0 in
  iter t (fun _ _ ->
      incr n;
      true);
  !n

let rec free_subtree t page =
  (match load t page with
  | Leaf _ -> ()
  | Interior { children; _ } -> List.iter (free_subtree t) children);
  Pager.free_page t.pager page

let drop t = free_subtree t t.root_page
