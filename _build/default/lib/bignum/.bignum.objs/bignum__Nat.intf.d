lib/bignum/nat.mli: Format Util
