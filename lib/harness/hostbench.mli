(** Host wall-clock benchmark harness.

    Every regenerator in {!Experiments} reports *virtual*-time results; the
    binding constraint on how large an experiment we can afford is the
    *host* CPU cost of replaying simulated messages through the
    encode → MAC → digest → decode hot path. This module measures that
    cost: host seconds, simulator events/sec and SHA-256 bytes/sec for the
    Table-1 workloads and the SQL INSERT workload, next to the virtual TPS
    they produce. [to_json] renders the BENCH.json perf-trajectory
    artifact that later optimization PRs are judged against. *)

type measurement = {
  name : string;  (** workload identifier, e.g. ["table1:sta_mac_allbig_batch"] *)
  host_seconds : float;  (** host wall-clock for the whole run (incl. warmup) *)
  events : int;  (** simulator events executed *)
  events_per_sec : float;  (** events / host_seconds *)
  bytes_hashed : int;  (** SHA-256 input bytes consumed by the run *)
  hashed_mb_per_sec : float;  (** bytes_hashed / host_seconds, in MB/s *)
  virtual_tps : float;  (** virtual-time requests/sec from the scenario *)
  completed : int;  (** requests completed in the measured window *)
  checkpoint_count : int;  (** stable/tentative checkpoints taken, summed over replicas *)
  undo_snapshots : int;  (** tentative-execution undo snapshots, summed over replicas *)
  bytes_copied : int;  (** page bytes duplicated by copy-on-write during the run *)
  bytes_copied_per_checkpoint : float;
      (** bytes_copied / (checkpoint_count + undo_snapshots); 0 if no snapshots *)
  deep_copy_bytes_per_checkpoint : float;
      (** what a deep-copy checkpointer would move per snapshot: one replica's
          allocated pages x page size, averaged over replicas at run end *)
  pages_read : int;  (** B-tree pages touched by the relational engine during the run *)
  rows_scanned : int;  (** candidate rows the engine materialized and evaluated *)
  speculative_executions : int;
      (** batches executed before their commit certificate landed, summed
          over replicas — serial tentative execution and pipelined
          speculation both count *)
  rollbacks : int;  (** view changes that undid speculative executions, summed over replicas *)
  tentative_completed : int;
      (** requests the clients accepted on a 2f+1 tentative-reply quorum
          (read-only fast path and tentative execution) *)
  core_utilization : float;
      (** run-average busy fraction of the replicas' virtual CPU cores *)
  p50_latency : float;  (** request latency percentiles, virtual seconds *)
  p95_latency : float;
  p99_latency : float;
  shed : int;  (** gateway admission-control rejections (0 closed-loop) *)
  gw_evictions : int;  (** gateway session-LRU evictions *)
  gw_queue_peak : int;  (** gateway pending-queue high-water mark *)
  replica_queue_peak : int;  (** max replica CPU dispatch-queue high-water mark *)
  ro_cache_evictions : int;  (** replica read-only reply-cache LRU evictions *)
  sessions : int;  (** open-loop sessions simulated (0 closed-loop) *)
  arrivals : int;  (** open-loop arrivals in the measured window *)
  offered_load : float;  (** mean offered arrival rate, requests/s *)
  flushes_size : int;  (** gateway batches flushed by the size trigger *)
  flushes_deadline : int;  (** gateway batches flushed by the deadline trigger *)
  reply_cache_hits : int;  (** retransmissions answered from the gateway reply cache *)
  events_per_request : float;  (** simulation events per completed request *)
  alloc_per_request : float;  (** host heap bytes allocated per completed request *)
  shards : int;  (** replica groups serving the workload (1 single-group) *)
  shard_tps : float array;  (** per-shard completed ops per virtual second *)
  shard_queue_peak : int array;  (** per-shard front-door queue high-water marks *)
  cross_commits : int;  (** 2PC transactions committed on every participant *)
  cross_aborts : int;  (** 2PC transactions aborted (vote or timeout) *)
  cross_timeouts : int;  (** of [cross_aborts], coordinator-timeout triggered *)
  demotion_transfers : int;  (** §2.4 fell-behind transfers, summed over replicas *)
  rejoin_transfers : int;  (** crash/restart rejoin transfers, summed over replicas *)
  transfer_pages_fetched : int;
      (** pages actually moved by completed transfers — the Merkle-diff cost *)
  transfer_pages_full : int;
      (** pages the same transfers would move without the diff (every leaf) *)
  crashes : int;  (** replica crashes scheduled (churn workload only) *)
  restarts : int;  (** replica restarts completed (churn workload only) *)
  availability : float;
      (** fraction of sampling buckets with client progress (churn only) *)
  mean_recovery : float;  (** mean crash-to-rejoin seconds (churn only) *)
  max_recovery : float;  (** worst crash-to-rejoin seconds (churn only) *)
}

val measure : name:string -> Scenario.spec -> measurement
(** Run the scenario once, sampling host clock, engine event count and the
    process-wide SHA-256 byte counter around it. *)

val measure_openloop : name:string -> Openloop.spec -> measurement
(** Like {!measure} for an open-loop front-door workload: the latency
    percentiles are the generator's enqueue-to-reply distribution and the
    gateway telemetry block is live. *)

val measure_shards : name:string -> Shards.spec -> measurement
(** Like {!measure} for a sharded deployment driven by closed-loop edge
    sessions through the {!Webgate.Router}: the per-shard telemetry block
    ([shards], [shard_tps], [shard_queue_peak], cross-shard counters) is
    live. *)

val measure_churn : name:string -> Churn.spec -> measurement * Churn.outcome
(** Like {!measure} for a long-horizon {!Churn} run: the transfer and
    churn telemetry blocks are live; latency/gateway blocks are zero
    (the light closed-loop load is not a latency experiment). The raw
    churn outcome rides along for its safety-failure list. *)

val table1_workloads : ?seed:int -> ?duration:float -> unit -> measurement list
(** One measurement per Table-1 row (the ten library configurations,
    1024-byte null operations). *)

val table1_default : ?seed:int -> ?duration:float -> unit -> measurement
(** Just the default configuration (MACs + all-big + batching) — the
    headline row used for before/after speedup comparisons. *)

val sql_workload : ?seed:int -> ?duration:float -> unit -> measurement
(** The Figure-5 SQL INSERT workload (ACID, batching on, default flags). *)

val ckpt_sql_large : ?seed:int -> ?duration:float -> unit -> measurement
(** The checkpoint-cost workload ["ckpt:sql_large_state"]: the SQL INSERT
    stream over a database pre-populated to ~16x the per-interval working
    set, so [bytes_copied_per_checkpoint] versus
    [deep_copy_bytes_per_checkpoint] exposes the win from copy-on-write
    snapshots. *)

val sql_indexed_point : ?seed:int -> ?duration:float -> unit -> measurement
(** ["sql:indexed_point"]: aggregate point SELECTs over the 1600-row
    lookup table with a secondary index on the probed column. *)

val sql_indexed_range : ?seed:int -> ?duration:float -> unit -> measurement
(** ["sql:indexed_range"]: small-range aggregate SELECTs over the same
    indexed table. *)

val sql_forced_scan : ?seed:int -> ?duration:float -> unit -> measurement
(** ["sql:forced_scan"]: the identical point-SELECT stream with no index
    — every probe full-scans, the baseline the indexed workloads are
    compared against. *)

val pipeline_serial : ?seed:int -> ?duration:float -> unit -> measurement
(** ["pipeline:serial"]: the pipelining workload (64 closed-loop clients,
    1024-byte null ops) at depth 1 on one core — the serial baseline the
    pipelined row must beat. *)

val pipeline_deep : ?seed:int -> ?duration:float -> unit -> measurement
(** ["pipeline:depth8_cores4"]: the same workload with an 8-deep
    agreement pipeline and 4 virtual cores per replica; bench/main.exe
    gates this at >= 2x the serial row's virtual TPS. *)

val sql_read_mix : ?seed:int -> ?duration:float -> unit -> measurement
(** ["sql:read_mix"]: 95% planner-proven read-only SELECTs (fast path,
    tentative replies) / 5% INSERTs over the indexed lookup table;
    [tentative_completed] versus [completed] records the split. *)

val trace_digest : ?seed:int -> ?seconds:float -> unit -> string
(** Hex SHA-256 over the full message trace (time, src, dst, label, size,
    detail of every datagram) plus the completed-request count of a short
    seeded default-configuration run. Any behavioural change to the
    simulation — event ordering, message bytes, timing — changes this
    digest; pure host-time optimizations must not. *)

val to_json : ?now:string -> measurement list -> string
(** Render the BENCH.json document (see README.md for the schema). [now]
    is an ISO-8601 timestamp recorded verbatim; omitted → ["unknown"]. *)
