lib/relsql/catalog.mli: Ast Pager
