open Pbft

(* Long-horizon churn driver: a rolling crash/repair plan over virtual
   hours-to-days, the regime the paper's §2.3 recovery discussion is
   really about. One replica at a time is crashed, left down for a
   repair window, and restarted to rejoin via its disk checkpoint plus
   Merkle-diff transfer, while closed-loop clients keep the service
   under continuous light load. Availability is measured the way an
   operator would: the fraction of fixed-size time buckets in which at
   least one client request completed. *)

type spec = {
  cfg : Config.t;
  seed : int;
  num_clients : int;
  think_time : float;  (** per-client delay between requests *)
  op_bytes : int;
  warmup : float;
  horizon : float;  (** measured virtual seconds *)
  crash_period : float;  (** virtual seconds between crash events *)
  downtime : float;  (** repair time before the victim restarts *)
  primary_every : int;  (** every k-th crash targets the current primary *)
  bucket : float;  (** availability sampling bucket *)
}

let default_spec () =
  let cfg = Config.default ~f:1 in
  let cfg =
    {
      cfg with
      Config.view_change_timeout = 0.25;
      (* Rejoin re-keys immediately (Key_request) instead of stalling on
         the 2 s rebroadcast, and live replicas proactively roll their
         session keys on the virtual clock. *)
      rejoin_key_refresh = true;
      key_refresh_period = 5.0;
      (* §2.4 remedy, required under churn: every request is big, and a
         crash window plus a view change can leave a healthy replica
         holding committed batches whose bodies it never saw (the
         clients were answered and will not retransmit). Without peer
         fetch it wedges on the first such entry; once two replicas
         straggle, checkpoints can never reach 2f+1 votes, the log
         window fills, and the whole service halts. *)
      fetch_missing_bodies = true;
    }
  in
  {
    cfg;
    seed = 7;
    num_clients = 4;
    think_time = 0.02;
    op_bytes = 64;
    warmup = 0.5;
    horizon = 180.0;
    crash_period = 15.0;
    downtime = 1.0;
    primary_every = 4;
    bucket = 0.25;
  }

type outcome = {
  ch_horizon : float;
  ch_events : int;  (** simulation events processed over the whole run *)
  ch_crashes : int;
  ch_restarts : int;
  ch_availability : float;  (** fraction of buckets with client progress *)
  ch_mean_recovery : float;  (** crash to rejoin-complete, mean seconds *)
  ch_max_recovery : float;
  ch_unrecovered : int;  (** incidents whose rejoin never completed *)
  ch_completed : int;
  ch_tps : float;
  ch_demotion_transfers : int;
  ch_rejoin_transfers : int;
  ch_pages_fetched : int;
  ch_pages_full : int;
  ch_view_changes : int;
  ch_key_epoch : int;  (** max proactive-refresh epoch reached *)
  ch_final_view : int;
  ch_failures : string list;  (** safety violations found at end of run *)
}

let run spec =
  let cfg = spec.cfg in
  let n = cfg.Config.n in
  (* A state-writing workload: rotating puts keep dirtying pages, so
     every rejoin's Merkle diff has a real suffix to fetch. *)
  let cluster =
    Cluster.create ~seed:spec.seed ~num_clients:spec.num_clients
      ~service:(Service.kv_store ()) cfg
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  let engine = Cluster.engine cluster in
  let stop = ref false in
  Array.iteri
    (fun i cl ->
      let seq = ref 0 in
      let rec loop _ =
        if not !stop then begin
          incr seq;
          (* Values carry the write sequence so every put changes page
             bytes — a constant value would leave nothing for the
             Merkle diff to move once all keys exist. *)
          Client.invoke cl
            (Printf.sprintf "put c%d-%d v%d.%s" i (!seq mod 128) !seq
               (String.make spec.op_bytes 'v'))
            (fun _ ->
              if spec.think_time > 0.0 then
                Simnet.Engine.schedule engine ~delay:spec.think_time (fun () -> loop "")
              else loop "")
        end
      in
      loop "")
    (Cluster.clients cluster);
  (* Availability sampler: one bucket per tick, available iff at least
     one request completed since the previous tick. *)
  let buckets_total = ref 0 and buckets_ok = ref 0 in
  let last_completed = ref 0 in
  ignore
    (Simnet.Engine.periodic engine ~interval:spec.bucket (fun () ->
         let now = Simnet.Engine.now engine in
         let completed = Cluster.total_completed cluster in
         if now > spec.warmup && now <= spec.warmup +. spec.horizon then begin
           incr buckets_total;
           if completed > !last_completed then incr buckets_ok
         end;
         last_completed := completed));
  (* The crash plan. Victims rotate over the backups so the service
     keeps its primary most of the time, with every [primary_every]-th
     crash deliberately taking the current primary down to exercise
     failover under churn. One replica is down at a time (f = 1). *)
  let crashes = ref 0 and restarts = ref 0 in
  let retired = ref [] in
  (* (crash_time, rejoining incarnation) per incident *)
  let incidents = ref [] in
  let live_view () =
    Array.fold_left
      (fun acc r -> if Replica.view r > acc then Replica.view r else acc)
      0 (Cluster.replicas cluster)
  in
  let crash_k k =
    let primary = live_view () mod n in
    let victim =
      if spec.primary_every > 0 && (k + 1) mod spec.primary_every = 0 then primary
      else (primary + 1 + (k mod (n - 1))) mod n
    in
    let t_crash = Simnet.Engine.now engine in
    Cluster.crash_replica cluster victim;
    incr crashes;
    Simnet.Engine.schedule engine ~delay:spec.downtime (fun () ->
        (* The dead incarnation's counters freeze at restart (the array
           entry is replaced); bank them for the end-of-run totals. *)
        retired := Cluster.replica cluster victim :: !retired;
        Cluster.restart_replica cluster victim;
        let fresh = Cluster.replica cluster victim in
        Replica.set_record_journal fresh true;
        incidents := (t_crash, fresh) :: !incidents;
        incr restarts)
  in
  let rec plan k =
    let t_k = spec.warmup +. (spec.crash_period *. float_of_int (k + 1)) in
    (* Leave the tail of the horizon crash-free so the last incident can
       finish rejoining before the safety checks run. *)
    if t_k +. spec.downtime +. (3.0 *. spec.crash_period /. 4.0) <= spec.warmup +. spec.horizon
    then begin
      Simnet.Engine.schedule engine ~delay:(t_k -. Simnet.Engine.now engine) (fun () ->
          crash_k k);
      plan (k + 1)
    end
  in
  Cluster.run cluster ~seconds:spec.warmup;
  let base_completed = Cluster.total_completed cluster in
  plan 0;
  Cluster.run cluster ~seconds:spec.horizon;
  let completed = Cluster.total_completed cluster - base_completed in
  stop := true;
  Cluster.run cluster ~seconds:0.3;
  let live = Array.to_list (Cluster.replicas cluster) in
  let everyone = live @ !retired in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 everyone in
  let final_view = List.fold_left (fun acc r -> Int.max acc (Replica.view r)) 0 live in
  let recoveries, unrecovered =
    List.fold_left
      (fun (ds, bad) (t_crash, rep) ->
        match Replica.recovery_completed_at rep with
        | Some t -> ((t -. t_crash) :: ds, bad)
        | None -> (ds, bad + 1))
      ([], 0) !incidents
  in
  let failures = ref (Faults.journals_agree live @ Faults.states_agree live) in
  let expect what cond = if not cond then failures := what :: !failures in
  expect "no client progress over the horizon" (completed > 0);
  expect "crash plan never fired" (!crashes > 0);
  expect "an incident never completed its rejoin" (unrecovered = 0);
  expect "restarts did not match crashes" (!restarts = !crashes);
  expect "no rejoin used the Merkle-diff transfer" (sum Replica.rejoin_transfers > 0);
  {
    ch_horizon = spec.horizon;
    ch_events = Simnet.Engine.events engine;
    ch_crashes = !crashes;
    ch_restarts = !restarts;
    ch_availability =
      (if !buckets_total > 0 then float_of_int !buckets_ok /. float_of_int !buckets_total
       else 0.0);
    ch_mean_recovery =
      (match recoveries with
      | [] -> 0.0
      | ds -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds));
    ch_max_recovery = List.fold_left Float.max 0.0 recoveries;
    ch_unrecovered = unrecovered;
    ch_completed = completed;
    ch_tps = (if spec.horizon > 0.0 then float_of_int completed /. spec.horizon else 0.0);
    ch_demotion_transfers = sum Replica.demotion_transfers;
    ch_rejoin_transfers = sum Replica.rejoin_transfers;
    ch_pages_fetched = sum Replica.transfer_pages_fetched;
    ch_pages_full = sum Replica.transfer_pages_full;
    ch_view_changes = sum Replica.view_changes;
    ch_key_epoch = List.fold_left (fun acc r -> Int.max acc (Replica.key_epoch r)) 0 live;
    ch_final_view = final_view;
    ch_failures = List.rev !failures;
  }

let render o =
  Printf.sprintf
    "churn %.0fs: avail=%.4f crashes=%d restarts=%d mean_rec=%.3fs max_rec=%.3fs \
     rejoin_tr=%d pages=%d/%d vc=%d view=%d epoch=%d tps=%.0f%s"
    o.ch_horizon o.ch_availability o.ch_crashes o.ch_restarts o.ch_mean_recovery
    o.ch_max_recovery o.ch_rejoin_transfers o.ch_pages_fetched o.ch_pages_full
    o.ch_view_changes o.ch_final_view o.ch_key_epoch o.ch_tps
    (match o.ch_failures with
    | [] -> ""
    | fs -> "\n    " ^ String.concat "\n    " fs)
