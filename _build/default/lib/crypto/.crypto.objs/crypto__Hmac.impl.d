lib/crypto/hmac.ml: Bytes Char Sha256 String
