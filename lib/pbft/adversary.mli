(** Byzantine replica wrapper for fault injection.

    An adversary wraps one *running, otherwise-correct* replica and makes
    it lie on the wire: its outbound datagrams are rewritten, dropped, or
    supplemented through the {!Simnet.Net} per-link fault hooks, and
    forged messages are injected carrying the replica's legitimate
    credentials (its signing key and MAC session keys — a Byzantine group
    member authenticates its lies perfectly). The wrapped replica keeps
    processing inbound traffic, so it also models the duplicitous member
    that follows the protocol just enough to stay inside the group.

    Everything here is deterministic: mutations are fixed byte rewrites,
    the injector runs on the engine clock, and no RNG is drawn, so
    adversarial runs replay bit-for-bit like benign ones. *)

open Types

type behavior =
  | Equivocate
      (** Conflicting pre-prepares for the same sequence number: odd
          peers receive a batch whose digest differs from what even peers
          got. Neither cohort can reach a 2f+1 prepare certificate, so
          agreement stalls until a view change replaces the liar. *)
  | Mute  (** Silent primary: every outbound datagram is dropped. *)
  | Selective_mute of replica_id list
      (** Drop all traffic to the listed peers only — the partial mute
          that starves a subset of backups while the rest make progress,
          demoting the starved replicas into state transfer (§2.4). *)
  | Corrupt_macs
      (** Flip a byte in the authenticator trailer of every outbound
          wire: peers count authentication failures and treat the replica
          as mute — the paper's §2.3 recovery-stall pathology induced by
          malice instead of lost session keys. *)
  | Garbage_view_change
      (** Periodically inject well-authenticated view-change votes whose
          prepared entries are fabricated (digest matches no batch, view
          numbers out of range). Correct replicas must reject them before
          they can poison a new primary's re-proposal set. *)
  | Mutate_nondet
      (** Rewrite the non-determinism payload of every pre-prepare to a
          syntactically valid blob with an absurd timestamp — the §2.5
          pathology; only a validation policy ({!Config.nondet}) stops
          backups from executing with the primary's lie. *)

type t

val install : net:Simnet.Net.t -> cfg:Config.t -> Replica.t -> behavior -> t
(** Arm the behavior against the given replica. The replica itself is
    not modified; all mutation happens on its network links (plus a
    periodic injector for {!Garbage_view_change}). *)

val uninstall : t -> unit
(** Remove the link hooks and stop the injector; the replica reverts to
    correct behavior. *)

val replica : t -> Replica.t
val replica_id : t -> replica_id

val mutations : t -> int
(** Datagrams dropped/rewritten or votes injected so far — scenario
    assertions use this to prove the fault actually fired. *)

val behavior_name : behavior -> string
