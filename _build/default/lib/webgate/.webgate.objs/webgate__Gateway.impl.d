lib/webgate/gateway.ml: Bytes Crypto Hashtbl Json List Option Pbft Simnet String Util
