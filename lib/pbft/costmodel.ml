type t = {
  mac_gen : float;
  mac_verify : float;
  sign : float;
  sig_verify : float;
  digest_base : float;
  digest_per_byte : float;
  msg_fixed : float;
  msg_per_byte : float;
  exec_null : float;
  log_bookkeeping : float;
  merkle_leaf : float;
  spec_overhead : float;
  rollback_fixed : float;
  rollback_per_page : float;
}

let default =
  {
    mac_gen = 1.2e-6;
    mac_verify = 1.2e-6;
    sign = 400e-6;
    sig_verify = 20e-6;
    digest_base = 0.4e-6;
    digest_per_byte = 2.4e-9;
    msg_fixed = 6e-6;
    msg_per_byte = 4e-9;
    exec_null = 0.5e-6;
    log_bookkeeping = 1.0e-6;
    merkle_leaf = 10.0e-6;
    spec_overhead = 2.0e-6;
    rollback_fixed = 20.0e-6;
    rollback_per_page = 1.0e-6;
  }

(* SQL execution costs live here too so every virtual-time knob is in one
   place; the relational engine charges them per statement. *)
type sql = {
  stmt_fixed : float;
  parse_per_byte : float;
  cache_lookup : float;
  page_io : float;
  row_eval : float;
}

let sql_default =
  {
    stmt_fixed = 20e-6;
    parse_per_byte = 50e-9;
    cache_lookup = 2e-6;
    page_io = 6e-6;
    row_eval = 1.5e-6;
  }

let auth_gen t (cfg : Config.t) =
  if cfg.use_macs then float_of_int (cfg.n - 1) *. t.mac_gen else t.sign

let auth_verify t (cfg : Config.t) = if cfg.use_macs then t.mac_verify else t.sig_verify

(* Per-piece decomposition of [auth_gen] for multi-core fan-out: one MAC
   tag per peer (or the single signature), chargeable as independent work
   items via [Simnet.Cpu.execute_split]. Only meaningful when cores > 1 —
   single-core callers must keep the lump-sum [auth_gen] expression so
   historical float arithmetic (and trace digests) are preserved. *)
let auth_gen_costs t (cfg : Config.t) =
  if cfg.use_macs then List.init (Int.max 0 (cfg.n - 1)) (fun _ -> t.mac_gen) else [ t.sign ]
let digest t n = t.digest_base +. (t.digest_per_byte *. float_of_int n)

(* Datagrams above the Ethernet MTU fragment; each fragment costs a fixed
   stack traversal. Sends are DMA-assisted (no per-byte CPU charge; the
   NIC serialization delay lives in the network model); receives pay the
   interrupt plus a per-byte copy. *)
let mtu_payload = 1472
let fragments n = Int.max 1 ((n + 28 + mtu_payload - 1) / mtu_payload)
let send t n = float_of_int (fragments n) *. t.msg_fixed
let recv t n = (float_of_int (fragments n) *. t.msg_fixed) +. (t.msg_per_byte *. float_of_int n)
