lib/bignum/prime.mli: Nat Util
