(* Tests for the PBFT middleware: wire formats, membership, the
   non-determinism upcalls, and whole-cluster protocol behaviour. *)

open Pbft

let qcheck = QCheck_alcotest.to_alcotest

(* --- message codecs --- *)

let sample_request =
  {
    Message.rq_client = 3;
    rq_id = 17;
    rq_op = "operation-bytes";
    rq_readonly = false;
    rq_timestamp = 12.5;
  }

let sample_payloads : Message.payload list =
  [
    Message.Request_msg sample_request;
    Message.Pre_prepare
      {
        pp_view = 2;
        pp_seq = 99;
        pp_batch =
          [
            Message.Full sample_request;
            Message.Digest_of
              { bd_client = 4; bd_id = 9; bd_digest = String.make 32 'd'; bd_readonly = true };
          ];
        pp_nondet = "nd";
      };
    Message.Prepare { p_view = 1; p_seq = 5; p_digest = String.make 32 'x'; p_replica = 2 };
    Message.Commit { c_view = 1; c_seq = 5; c_digest = String.make 32 'x'; c_replica = 0 };
    Message.Reply
      { r_view = 0; r_client = 1; r_id = 2; r_replica = 3; r_result = "res"; r_tentative = true;
        r_partial = Some "partial-bytes" };
    Message.Checkpoint_msg { ck_seq = 128; ck_digest = String.make 32 'c'; ck_replica = 1 };
    Message.View_change
      {
        vc_new_view = 3;
        vc_stable_seq = 128;
        vc_stable_digest = String.make 32 's';
        vc_prepared =
          [ { Message.pi_view = 2; pi_seq = 129; pi_digest = String.make 32 'p'; pi_batch = [] } ];
        vc_replica = 2;
      };
    Message.New_view
      {
        nv_view = 3;
        nv_view_change_digests = [ (0, String.make 32 'v'); (2, String.make 32 'w') ];
        nv_pre_prepares = [ (129, [ Message.Full sample_request ]) ];
      };
    Message.Session_key { sk_sender = 1001; sk_target = 2; sk_key_box = "keybytes" };
    Message.Join_request { j_addr = 1005; j_pubkey = "pk"; j_nonce = "nonce" };
    Message.Join_challenge { jc_replica = 0; jc_addr = 1005; jc_nonce = "ch" };
    Message.Join_response { jr_addr = 1005; jr_proof = "n|p"; jr_pubkey = "pk"; jr_idbuf = "u:p" };
    Message.Join_reply { jl_replica = 1; jl_client = 9; jl_ok = true };
    Message.Leave_msg { lv_client = 9 };
    Message.Fetch_meta { fm_seq = 128; fm_replica = 3 };
    Message.State_meta { sm_seq = 128; sm_replica = 0; sm_leaves = [ String.make 32 'l' ] };
    Message.Fetch_pages { fp_seq = 128; fp_pages = [ 1; 5; 9 ]; fp_replica = 3 };
    Message.State_pages { sp_seq = 128; sp_replica = 0; sp_pages = [ (1, String.make 64 'q') ] };
    Message.Fetch_body { fb_digest = String.make 32 'b'; fb_replica = 2 };
    Message.Body { b_request = sample_request };
    Message.Fetch_entry { fe_seq = 42; fe_replica = 1 };
    Message.Entry { en_seq = 42; en_view = 0; en_batch = [ Message.Full sample_request ]; en_nondet = "nd" };
  ]

let test_message_roundtrips () =
  List.iter
    (fun payload ->
      List.iter
        (fun auth ->
          let msg = { Message.payload; auth } in
          match Message.decode (Message.encode msg) with
          | Some back ->
            Alcotest.(check string)
              ("payload " ^ Message.label payload)
              (Message.payload_bytes payload)
              (Message.payload_bytes back.Message.payload)
          | None -> Alcotest.failf "decode failed for %s" (Message.label payload))
        [
          Message.No_auth;
          Message.Signed "sig-bytes";
          Message.Authenticated (Crypto.Authenticator.compute ~keys:[ (0, "k") ] "pb");
        ])
    sample_payloads

let test_message_garbage () =
  Alcotest.(check (option pass)) "empty" None (Option.map ignore (Message.decode ""));
  Alcotest.(check (option pass)) "garbage" None (Option.map ignore (Message.decode "\xff\xfe\x99"))

let test_request_digest_stable () =
  let d1 = Message.request_digest sample_request in
  let d2 = Message.request_digest { sample_request with Message.rq_id = 17 } in
  Alcotest.(check string) "deterministic" d1 d2;
  let d3 = Message.request_digest { sample_request with Message.rq_id = 18 } in
  Alcotest.(check bool) "sensitive" false (String.equal d1 d3)

let test_batch_digest () =
  let b1 = [ Message.Full sample_request ] in
  let b2 =
    [
      Message.Digest_of
        {
          bd_client = sample_request.Message.rq_client;
          bd_id = sample_request.Message.rq_id;
          bd_digest = Message.request_digest sample_request;
          bd_readonly = false;
        };
    ]
  in
  (* A digest-only item and its full form describe the same batch. *)
  Alcotest.(check string) "full = digest form" (Message.batch_digest b1) (Message.batch_digest b2)

(* --- config --- *)

let test_config_validation () =
  let ok = Config.default ~f:1 in
  Alcotest.(check bool) "default valid" true (Config.validate ok = Ok ());
  Alcotest.(check bool) "n mismatch" true (Config.validate { ok with Config.n = 5 } <> Ok ());
  Alcotest.(check bool) "window" true
    (Config.validate { ok with Config.log_window = 1 } <> Ok ());
  Alcotest.(check string) "naming" "sta_mac_allbig_batch" (Config.name ok);
  Alcotest.(check string) "robust naming" "sta_nomac_noallbig_batch" (Config.name (Config.robust ~f:1))

(* --- nondet --- *)

let test_nondet_produce_validate () =
  let rng = Util.Rng.create 1 in
  let data = Nondet.produce ~now:100.0 rng in
  Alcotest.(check (option (float 1e-9))) "timestamp" (Some 100.0) (Nondet.timestamp data);
  Alcotest.(check bool) "no validation" true
    (Nondet.validate Config.No_validation ~now:500.0 ~recovering:false data);
  Alcotest.(check bool) "delta accepts fresh" true
    (Nondet.validate (Config.Delta 1.0) ~now:100.5 ~recovering:false data);
  Alcotest.(check bool) "delta rejects stale" false
    (Nondet.validate (Config.Delta 1.0) ~now:105.0 ~recovering:false data);
  Alcotest.(check bool) "skip accepts stale during recovery" true
    (Nondet.validate (Config.Delta_skip_on_recovery 1.0) ~now:105.0 ~recovering:true data);
  Alcotest.(check bool) "skip still rejects in normal operation" false
    (Nondet.validate (Config.Delta_skip_on_recovery 1.0) ~now:105.0 ~recovering:false data);
  Alcotest.(check bool) "malformed rejected" false
    (Nondet.validate Config.No_validation ~now:0.0 ~recovering:false "junk")

(* --- membership --- *)

let test_membership_static () =
  let m = Membership.create ~max_clients:10 ~dynamic:false in
  Membership.populate_static m [ (1, 1001, "pk1"); (2, 1002, "pk2") ];
  Alcotest.(check int) "count" 2 (Membership.count m);
  Alcotest.(check bool) "lookup" true (Membership.lookup m 1 <> None);
  Alcotest.(check (option int)) "by addr" (Some 2) (Membership.lookup_addr m 1002);
  Alcotest.(check (option int)) "unknown addr" None (Membership.lookup_addr m 9999)

let test_membership_join_assigns_ids () =
  let m = Membership.create ~max_clients:10 ~dynamic:true in
  (match Membership.join m ~addr:1001 ~pubkey:"p" ~identity:"u1" ~now:0.0 ~stale_threshold:10.0 with
  | Membership.Joined { client; _ } -> Alcotest.(check int) "first id" 1 client
  | Membership.Table_full -> Alcotest.fail "full");
  match Membership.join m ~addr:1002 ~pubkey:"p" ~identity:"u2" ~now:0.0 ~stale_threshold:10.0 with
  | Membership.Joined { client; _ } -> Alcotest.(check int) "second id" 2 client
  | Membership.Table_full -> Alcotest.fail "full"

let test_membership_single_session_per_identity () =
  let m = Membership.create ~max_clients:10 ~dynamic:true in
  let j addr = Membership.join m ~addr ~pubkey:"p" ~identity:"alice" ~now:0.0 ~stale_threshold:10.0 in
  (match j 1001 with Membership.Joined _ -> () | Membership.Table_full -> Alcotest.fail "full");
  match j 1002 with
  | Membership.Joined { terminated; _ } ->
    Alcotest.(check (list int)) "old session terminated" [ 1 ] terminated;
    Alcotest.(check int) "one session" 1 (Membership.count m)
  | Membership.Table_full -> Alcotest.fail "full"

let test_membership_full_and_cleanup () =
  let m = Membership.create ~max_clients:2 ~dynamic:true in
  let j addr identity now =
    Membership.join m ~addr ~pubkey:"p" ~identity ~now ~stale_threshold:5.0
  in
  ignore (j 1001 "a" 0.0);
  ignore (j 1002 "b" 0.0);
  (* Fresh sessions: a third join is denied. *)
  (match j 1003 "c" 1.0 with
  | Membership.Table_full -> ()
  | Membership.Joined _ -> Alcotest.fail "should be full");
  Membership.touch m 1 4.0;
  (* Session 2 ("b") is now stale relative to now=8: cleanup makes room. *)
  match j 1003 "c" 8.0 with
  | Membership.Joined { terminated; _ } ->
    Alcotest.(check bool) "stale session cleaned" true (List.mem 2 terminated)
  | Membership.Table_full -> Alcotest.fail "cleanup failed"

let test_membership_leave () =
  let m = Membership.create ~max_clients:2 ~dynamic:true in
  (match Membership.join m ~addr:1001 ~pubkey:"p" ~identity:"a" ~now:0.0 ~stale_threshold:5.0 with
  | Membership.Joined { client; _ } ->
    Alcotest.(check bool) "leave" true (Membership.leave m client);
    Alcotest.(check bool) "gone" true (Membership.lookup m client = None);
    Alcotest.(check bool) "idempotent" false (Membership.leave m client)
  | Membership.Table_full -> Alcotest.fail "full")

let test_membership_serialize_roundtrip () =
  let m = Membership.create ~max_clients:8 ~dynamic:true in
  ignore (Membership.join m ~addr:1001 ~pubkey:"pk1" ~identity:"a" ~now:1.0 ~stale_threshold:5.0);
  ignore (Membership.join m ~addr:1002 ~pubkey:"pk2" ~identity:"b" ~now:2.0 ~stale_threshold:5.0);
  Membership.touch m 1 3.5;
  let image = Membership.serialize m in
  let m2 = Membership.create ~max_clients:8 ~dynamic:true in
  Membership.load m2 image;
  Alcotest.(check (list int)) "clients" (Membership.clients m) (Membership.clients m2);
  Alcotest.(check string) "identical re-serialization" image (Membership.serialize m2);
  (* next_id survives, so ids never collide after a state transfer. *)
  match Membership.join m2 ~addr:1003 ~pubkey:"p" ~identity:"c" ~now:3.0 ~stale_threshold:5.0 with
  | Membership.Joined { client; _ } -> Alcotest.(check int) "next id preserved" 3 client
  | Membership.Table_full -> Alcotest.fail "full"

let test_membership_stale_cleanup_order () =
  (* The last-active agenda must pop the entire stale set in one join,
     in a canonical deterministic order (Join replies carry the list on
     the wire), and touch must reposition entries so a recently active
     session survives the sweep. *)
  let m = Membership.create ~max_clients:4 ~dynamic:true in
  let j addr identity now =
    Membership.join m ~addr ~pubkey:"p" ~identity ~now ~stale_threshold:5.0
  in
  ignore (j 1001 "a" 0.0);
  ignore (j 1002 "b" 1.0);
  ignore (j 1003 "c" 2.0);
  ignore (j 1004 "d" 3.0);
  (* Client 1 was the oldest but a touch makes it the freshest. *)
  Membership.touch m 1 9.0;
  (* now=10: clients 2,3,4 (last active 1,2,3) are stale; 1 is not. *)
  match j 1005 "e" 10.0 with
  | Membership.Joined { client; terminated } ->
    Alcotest.(check (list int)) "whole stale set, canonical order" [ 4; 3; 2 ] terminated;
    Alcotest.(check int) "new id" 5 client;
    Alcotest.(check bool) "touched session survives" true (Membership.lookup m 1 <> None)
  | Membership.Table_full -> Alcotest.fail "cleanup should have made room"

(* --- log --- *)

let test_log_transitions () =
  let log = Log.create () in
  let e = Log.entry log 5 in
  Log.record_prepare e 0;
  Log.record_prepare e 1;
  Log.record_prepare e 1;
  Alcotest.(check int) "distinct prepares" 2 (Log.prepare_count e);
  Log.record_commit e 2;
  Alcotest.(check int) "commits" 1 (Log.commit_count e);
  Alcotest.(check bool) "same slot" true (Log.entry log 5 == e)

let test_log_watermark_gc () =
  let log = Log.create () in
  for i = 1 to 10 do
    ignore (Log.entry log i)
  done;
  Log.set_low_watermark log 5;
  Alcotest.(check bool) "gc'd" true (Log.find log 3 = None);
  Alcotest.(check bool) "kept" true (Log.find log 6 <> None);
  Alcotest.(check int) "low" 5 (Log.low_watermark log)

let test_log_reply_cache () =
  let log = Log.create () in
  Log.cache_reply log 7
    { Log.cr_id = 3; cr_result = "r"; cr_view = 0; cr_tentative = false; cr_timestamp = 1.0;
      cr_speculative = false };
  (match Log.cached_reply log 7 with
  | Some cr -> Alcotest.(check int) "id" 3 cr.Log.cr_id
  | None -> Alcotest.fail "missing");
  Log.drop_client log 7;
  Alcotest.(check bool) "dropped" true (Log.cached_reply log 7 = None)

(* --- cluster protocol behaviour --- *)

let run_requests ?(cfg = Config.default ~f:1) ?(num_clients = 4) ?(service = Service.null ()) ~per_client () =
  let cluster = Cluster.create ~seed:33 ~num_clients ~service cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let results = Array.make num_clients [] in
  Array.iteri
    (fun i cl ->
      let rec go n =
        if n <= per_client then
          Client.invoke cl (Printf.sprintf "op-%d-%d" i n) (fun r ->
              results.(i) <- r :: results.(i);
              go (n + 1))
      in
      go 1)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:30.0;
  (cluster, results)

let test_cluster_basic_agreement () =
  let cluster, results = run_requests ~per_client:5 () in
  Array.iter (fun rs -> Alcotest.(check int) "all replies" 5 (List.length rs)) results;
  Array.iter
    (fun r ->
      Alcotest.(check int) "each replica executed all" 20 (Replica.executed_requests r);
      Alcotest.(check int) "no view change" 0 (Replica.view_changes r))
    (Cluster.replicas cluster)

let state_digest r =
  let tree = Statemgr.Merkle.build (Replica.pages r) in
  Statemgr.Merkle.root tree

let test_cluster_replicas_identical () =
  let cluster, _ = run_requests ~service:(Service.kv_store ()) ~per_client:8 () in
  let digests = Array.map state_digest (Cluster.replicas cluster) in
  Array.iter (fun d -> Alcotest.(check string) "state convergence" digests.(0) d) digests

let test_cluster_deterministic_across_runs () =
  let digest_of_run () =
    let cluster, _ = run_requests ~service:(Service.counter ()) ~per_client:5 () in
    ( state_digest (Cluster.replica cluster 0),
      Replica.executed_requests (Cluster.replica cluster 0) )
  in
  let d1 = digest_of_run () and d2 = digest_of_run () in
  Alcotest.(check bool) "bit-for-bit reproducible" true (d1 = d2)

let test_cluster_counter_semantics () =
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:1 ~num_clients:1 ~service:(Service.counter ()) cfg in
  let c = Cluster.client cluster 0 in
  let last = ref "" in
  let rec go n =
    if n <= 10 then Client.invoke c "incr" (fun r -> last := r; go (n + 1))
  in
  go 1;
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check string) "sequential increments" "10" !last

let test_cluster_readonly () =
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:2 ~num_clients:1 ~service:(Service.counter ()) cfg in
  let c = Cluster.client cluster 0 in
  let got = ref "" in
  Client.invoke c "incr" (fun _ ->
      Client.invoke c ~readonly:true "get" (fun r -> got := r));
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check string) "read-only sees committed state" "1" !got

let test_cluster_nobatch_mode () =
  let cfg = { (Config.default ~f:1) with Config.batching = false } in
  let cluster, results = run_requests ~cfg ~per_client:3 () in
  Array.iter (fun rs -> Alcotest.(check int) "replies" 3 (List.length rs)) results;
  Alcotest.(check int) "executed" 12 (Replica.executed_requests (Cluster.replica cluster 0))

let test_cluster_signatures_mode () =
  let cfg = Config.robust ~f:1 in
  let cluster, results = run_requests ~cfg ~per_client:3 () in
  Array.iter (fun rs -> Alcotest.(check int) "replies" 3 (List.length rs)) results;
  Alcotest.(check int) "no auth failures" 0
    (Array.fold_left (fun a r -> a + Replica.auth_failures r) 0 (Cluster.replicas cluster))

let test_cluster_f2 () =
  let cfg = Config.default ~f:2 in
  let cluster, results = run_requests ~cfg ~per_client:3 () in
  Alcotest.(check int) "n = 7" 7 (Array.length (Cluster.replicas cluster));
  Array.iter (fun rs -> Alcotest.(check int) "replies" 3 (List.length rs)) results

let test_cluster_checkpoint_gc () =
  let cfg = { (Config.default ~f:1) with Config.checkpoint_interval = 16; log_window = 64 } in
  let cluster, _ = run_requests ~cfg ~per_client:30 () in
  Array.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d advanced stable checkpoint" (Replica.id r))
        true
        (Replica.stable_checkpoint r > 0))
    (Cluster.replicas cluster)

let test_cluster_view_change_on_primary_failure () =
  let cfg = { (Config.default ~f:1) with Config.view_change_timeout = 0.3 } in
  let cluster = Cluster.create ~seed:44 ~num_clients:4 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl "work" loop in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:0.3;
  let before = Cluster.total_completed cluster in
  Replica.shutdown (Cluster.replica cluster 0);
  Cluster.run cluster ~seconds:5.0;
  stop := true;
  let after = Cluster.total_completed cluster in
  Array.iter
    (fun r ->
      if Replica.id r <> 0 then begin
        Alcotest.(check bool) "left view 0" true (Replica.view r > 0);
        Alcotest.(check int) "primary consistent" (Replica.view (Cluster.replica cluster 1))
          (Replica.view r)
      end)
    (Cluster.replicas cluster);
  Alcotest.(check bool) "progress resumed in new view" true (after > before)

let test_cluster_retransmission_duplicate_suppression () =
  (* A very lossy network: clients retransmit aggressively, yet each
     request executes exactly once (reply cache + in-flight dedup). *)
  let cfg = { (Config.default ~f:1) with Config.client_timeout = 0.05 } in
  let cluster = Cluster.create ~seed:55 ~num_clients:2 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  Simnet.Net.set_loss (Cluster.net cluster) 0.15;
  let done_ = ref 0 in
  Array.iter
    (fun cl ->
      let rec go n =
        if n <= 5 then
          Client.invoke cl "incr" (fun _ ->
              incr done_;
              go (n + 1))
      in
      go 1)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:60.0;
  Simnet.Net.set_loss (Cluster.net cluster) 0.0;
  Cluster.run cluster ~seconds:30.0;
  Alcotest.(check int) "all eventually complete" 10 !done_;
  (* The counter must equal exactly the number of requests: duplicates
     were suppressed despite retransmissions. *)
  let c = Cluster.client cluster 0 in
  let final = ref "" in
  Client.invoke c ~readonly:true "get" (fun r -> final := r);
  Cluster.run cluster ~seconds:10.0;
  Alcotest.(check string) "exactly-once execution" "10" !final

let test_cluster_body_loss_state_transfer () =
  let cluster = Cluster.create ~seed:66 ~num_clients:4 (Config.default ~f:1) in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 256 'b') loop in
      loop "")
    (Cluster.clients cluster);
  Simnet.Engine.schedule (Cluster.engine cluster) ~delay:0.2 (fun () ->
      ignore
        (Simnet.Net.drop_next_matching (Cluster.net cluster) (fun ~src ~dst ~label ->
             src >= Types.client_addr_base && dst = 3 && label = "request")));
  Cluster.run cluster ~seconds:5.0;
  stop := true;
  let r3 = Cluster.replica cluster 3 in
  Alcotest.(check bool) "victim recovered by state transfer" true (Replica.state_transfers r3 >= 1);
  (* After recovery the victim keeps executing. *)
  Alcotest.(check bool) "victim caught up" true
    (Replica.last_executed r3 > 0
    && Replica.last_executed (Cluster.replica cluster 0) - Replica.last_executed r3 < 300)

let test_view_change_backoff_consecutive_mute_primaries () =
  (* Regression for the view-change timer backoff: the view-0 primary is
     dead and the primaries of views 1 and 2 are muted for leadership
     traffic (they vote but never emit a new-view), so the cluster must
     burn through two failed view changes before view 3 elects a live
     primary. Without the per-attempt doubling, replicas restart the
     view change on the base timeout faster than the dead views can be
     ruled out and never accumulate the escalation. *)
  let cfg = { (Config.default ~f:1) with Config.view_change_timeout = 0.2 } in
  let cluster = Cluster.create ~seed:47 ~num_clients:4 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl "work" loop in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:0.3;
  let net = Cluster.net cluster in
  let leadership ~label = String.equal label "pre-prepare" || String.equal label "new-view" in
  Replica.shutdown (Cluster.replica cluster 0);
  Simnet.Net.set_link_drop net ~src:1 ~dst:Simnet.Net.any_addr leadership;
  Simnet.Net.set_link_drop net ~src:2 ~dst:Simnet.Net.any_addr leadership;
  (* Sample the watchdog's escalation: it must climb while the dead views
     burn, and rewind to the base timeout once view 3 starts executing. *)
  let r3 = Cluster.replica cluster 3 in
  let before = Cluster.total_completed cluster in
  let max_attempts = ref 0 in
  let min_attempts_after_progress = ref max_int in
  let probe =
    Simnet.Engine.periodic (Cluster.engine cluster) ~interval:0.05 (fun () ->
        let a = Replica.view_change_attempts r3 in
        max_attempts := Int.max !max_attempts a;
        if Cluster.total_completed cluster > before then
          min_attempts_after_progress := Int.min !min_attempts_after_progress a)
  in
  Cluster.run cluster ~seconds:8.0;
  Simnet.Engine.cancel probe;
  stop := true;
  Cluster.run cluster ~seconds:0.5;
  Alcotest.(check bool) "reached view 3" true (Replica.view r3 >= 3);
  Alcotest.(check bool) "watchdog backed off across attempts" true (!max_attempts >= 2);
  Alcotest.(check bool) "progress under the live primary" true
    (Cluster.total_completed cluster > before);
  Alcotest.(check int) "attempts reset once executing again" 0 !min_attempts_after_progress

let test_cluster_partition_heal_catchup () =
  (* A scheduled partition isolates one backup mid-agreement: the
     remaining 2f+1 must keep committing through the window, and the
     victim must catch back up after the auto-heal. *)
  let cfg = { (Config.default ~f:1) with Config.view_change_timeout = 3.0 } in
  let cluster = Cluster.create ~seed:67 ~num_clients:4 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 256 'p') loop in
      loop "")
    (Cluster.clients cluster);
  Simnet.Net.schedule_partition (Cluster.net cluster) ~start:0.3 ~duration:1.0 [ 3 ] [ 0; 1; 2 ];
  let during = ref 0 and at_heal = ref 0 in
  Simnet.Engine.schedule (Cluster.engine cluster) ~delay:1.3 (fun () ->
      during := Cluster.total_completed cluster;
      at_heal := Replica.last_executed (Cluster.replica cluster 3));
  Cluster.run cluster ~seconds:5.0;
  stop := true;
  Cluster.run cluster ~seconds:0.5;
  let r3 = Cluster.replica cluster 3 in
  Alcotest.(check bool) "quorum progressed during the partition" true (!during > 0);
  Alcotest.(check bool) "victim was behind at heal time" true
    (!at_heal < Replica.last_executed (Cluster.replica cluster 0));
  Alcotest.(check bool) "victim caught up after heal" true (Replica.last_executed r3 > !at_heal)

let test_cluster_overload_recv_buffer_drops () =
  (* §2.4 loop-back congestion: a tiny receive buffer under a closed-loop
     burst sheds datagrams at the NIC, and the protocol absorbs the loss
     through retransmission rather than stalling. *)
  let profile = { Simnet.Net.lan_profile with Simnet.Net.recv_buffer = 16 } in
  let cfg = { (Config.default ~f:1) with Config.client_timeout = 0.2 } in
  let cluster = Cluster.create ~seed:68 ~profile ~num_clients:12 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 512 'o') loop in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:3.0;
  stop := true;
  Cluster.run cluster ~seconds:0.5;
  Alcotest.(check bool) "overflow drops occurred" true
    (Simnet.Net.dropped_count (Cluster.net cluster) > 0);
  Alcotest.(check bool) "progress despite overflow" true (Cluster.total_completed cluster > 0)

let test_cluster_restart_recovery () =
  let cfg = { (Config.default ~f:1) with Config.authenticator_rebroadcast = 0.5 } in
  let cluster = Cluster.create ~seed:77 ~num_clients:4 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl "op" loop in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:1.0;
  Cluster.restart_replica cluster 2;
  Cluster.run cluster ~seconds:3.0;
  stop := true;
  let r2 = Cluster.replica cluster 2 in
  (* Recovery mode is a window, not a permanent mark: [restart] raises
     the flag and a 2f+1 checkpoint quorum covering self-executed state
     lowers it. Three virtual seconds is ample to catch up here, so the
     flag must be down again — a replica stuck recovering would abstain
     from every future view change. *)
  Alcotest.(check bool) "recovering flag lowered" false (Replica.is_recovering r2);
  (match Replica.recovery_completed_at r2 with
  | Some t ->
    Alcotest.(check bool) "recovered within two rebroadcast periods" true (t -. 1.0 < 1.2)
  | None -> Alcotest.fail "replica never recovered");
  Alcotest.(check bool) "auth failures observed during stall" true (Replica.auth_failures r2 > 0)

let test_dynamic_join_and_request () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:88 ~num_clients:2 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c = Cluster.client cluster 0 in
  let result = ref "" in
  Client.join c ~idbuf:"alice:pw" (function
    | Some _ -> Client.invoke c "incr" (fun r -> result := r)
    | None -> Alcotest.fail "join denied");
  Cluster.run cluster ~seconds:10.0;
  Alcotest.(check string) "joined client can execute" "1" !result;
  (* Unknown clients are rejected at the redirection table. *)
  Alcotest.(check bool) "membership holds one client" true
    (Membership.count (Replica.membership (Cluster.replica cluster 0)) = 1)

let test_dynamic_join_denied_bad_credentials () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:89 ~num_clients:1 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let denied = ref false in
  (* The null service's authorize_join requires "user:password". *)
  Client.join (Cluster.client cluster 0) ~idbuf:"no-colon-here" (function
    | Some _ -> Alcotest.fail "should be denied"
    | None -> denied := true);
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check bool) "denied" true !denied

let test_dynamic_leave () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:90 ~num_clients:1 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c = Cluster.client cluster 0 in
  let joined = ref false in
  Client.join c ~idbuf:"a:b" (function Some _ -> joined := true | None -> ());
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check bool) "joined" true !joined;
  Client.leave c;
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "membership empty after leave" 0
    (Membership.count (Replica.membership (Cluster.replica cluster 0)))

let test_nondet_delta_blocks_replay () =
  (* Condensed version of the §2.5 experiment: with plain delta
     validation a restarted replica rejects replayed entries; with the
     skip-on-recovery policy it accepts them. *)
  let run policy =
    let cfg =
      {
        (Config.default ~f:1) with
        Config.use_macs = false;
        all_requests_big = false;
        big_request_threshold = 1 lsl 20;
        fetch_missing_entries = true;
        checkpoint_interval = 50_000;
        log_window = 100_000;
        nondet = policy;
      }
    in
    let cluster = Cluster.create ~seed:91 ~num_clients:2 cfg in
    Simnet.Trace.set_enabled (Cluster.trace cluster) false;
    let stop = ref false in
    Array.iter
      (fun cl ->
        let rec loop _ =
          if not !stop then
            Simnet.Engine.schedule (Cluster.engine cluster) ~delay:0.05 (fun () ->
                if not !stop then Client.invoke cl "x" loop)
        in
        loop "")
      (Cluster.clients cluster);
    Cluster.run cluster ~seconds:3.0;
    Cluster.restart_replica cluster 2;
    Cluster.run cluster ~seconds:4.0;
    stop := true;
    let r2 = Cluster.replica cluster 2 in
    (Replica.nondet_rejects r2, Replica.last_executed r2, Replica.last_executed (Cluster.replica cluster 0))
  in
  let rejects_delta, behind_delta, head_delta = run (Config.Delta 1.0) in
  Alcotest.(check bool) "delta rejects replays" true (rejects_delta > 0);
  Alcotest.(check bool) "delta impedes recovery" true (head_delta - behind_delta > 10);
  let rejects_skip, behind_skip, head_skip = run (Config.Delta_skip_on_recovery 1.0) in
  Alcotest.(check int) "skip accepts replays" 0 rejects_skip;
  Alcotest.(check bool) "skip recovers" true (head_skip - behind_skip <= 10)

(* --- crash / restart / Merkle-diff rejoin (PR 10) --- *)

(* Shared driver: a single closed-loop client keeps the committed batch
   sequence independent of message interleavings (one request in flight
   at a time, batches of one), so runs with and without a crash commit
   the exact same batches and the final store is byte-identical. The
   kv values embed the write counter so every put changes page bytes. *)
let crash_cfg () =
  {
    (Config.default ~f:1) with
    (* Short enough that stable checkpoints form under a ~120-op
       workload (the rejoin needs one on disk), roomy enough that
       healthy backups never hit the §2.4 lag demotion — a demotion
       transfer skips execution, which would leave journal gaps. *)
    Config.checkpoint_interval = 16;
    log_window = 64;
    view_change_timeout = 0.25;
    rejoin_key_refresh = true;
  }

(* [total] is a multiple of the checkpoint interval on purpose: the
   final checkpoint then sits exactly at the head of history, so however
   late the victim rejoins there is always a stable checkpoint quorum
   covering everything it missed. (A replica stranded between the last
   checkpoint and the head after traffic stops has nothing to pull it
   forward — the §2.4 demotion only triggers on checkpoint gossip.) *)
let run_single_client_workload ?(total = 160) ?(crash = None) cfg =
  let cluster = Cluster.create ~seed:123 ~num_clients:1 ~service:(Service.kv_store ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  let engine = Cluster.engine cluster in
  let cl = Cluster.client cluster 0 in
  let seq = ref 0 in
  let rec loop _ =
    if !seq < total then begin
      incr seq;
      Client.invoke cl
        (Printf.sprintf "put k%d v%d.%s" (!seq mod 8) !seq (String.make 24 'v'))
        (fun _ -> Simnet.Engine.schedule engine ~delay:0.01 (fun () -> loop ""))
    end
  in
  loop "";
  (match crash with
  | Some (victim, crash_at, downtime) ->
    Simnet.Engine.schedule engine ~delay:crash_at (fun () -> Cluster.crash_replica cluster victim);
    Simnet.Engine.schedule engine ~delay:(crash_at +. downtime) (fun () ->
        Cluster.restart_replica cluster victim;
        Replica.set_record_journal (Cluster.replica cluster victim) true)
  | None -> ());
  Cluster.run cluster ~seconds:20.0;
  Alcotest.(check int) "workload drained" total !seq;
  cluster

let test_restart_merkle_diff_fewer_pages () =
  (* The acceptance property: a crashed replica rejoins by fetching only
     the pages that diverged from its reloaded disk checkpoint —
     strictly fewer than the full page set. *)
  let cluster = run_single_client_workload ~crash:(Some (2, 0.6, 0.2)) (crash_cfg ()) in
  let r2 = Cluster.replica cluster 2 in
  Alcotest.(check int) "one rejoin transfer" 1 (Replica.rejoin_transfers r2);
  (match Replica.recovery_completed_at r2 with
  | None -> Alcotest.fail "rejoin never completed"
  | Some _ -> ());
  let fetched = Replica.transfer_pages_fetched r2 and full = Replica.transfer_pages_full r2 in
  Alcotest.(check bool) "diff moved pages" true (fetched > 0);
  Alcotest.(check bool)
    (Printf.sprintf "diff beats full transfer (%d < %d)" fetched full)
    true
    (fetched < full);
  (* PR 6 regression extended to the restart path: the rejoin resets the
     view-change watchdog backoff. *)
  Alcotest.(check int) "watchdog backoff reset" 0 (Replica.view_change_attempts r2)

let prop_crash_restart_equivalent =
  (* Crash one backup at an arbitrary point in the three-phase/checkpoint
     flow, restart it after an arbitrary repair window, and the final
     Merkle root and exec journal must be bit-identical to a run that
     never crashed. *)
  (* The store is compared bit-for-bit across runs. The journals are
     compared bit-for-bit against the never-crashed peers of the same
     run: batch digests cover the client-side request timestamps, and a
     crash changes how much verification work every peer does, which
     shifts the virtual clock under the CPU cost model — so two separate
     runs legitimately commit different bytes while agreeing on every
     operation and on the final state. *)
  let baseline =
    lazy
      (let cluster = run_single_client_workload (crash_cfg ()) in
       let r0 = Cluster.replica cluster 0 in
       ( Replica.last_executed r0,
         Statemgr.Merkle.root (Statemgr.Merkle.build (Replica.pages r0)) ))
  in
  let gen =
    QCheck.Gen.(
      triple (int_range 1 3) (float_range 0.05 1.2) (float_range 0.05 0.5))
  in
  QCheck.Test.make ~name:"crash at an arbitrary phase is invisible after rejoin" ~count:10
    (QCheck.make ~print:QCheck.Print.(triple int float float) gen)
    (fun (victim, crash_at, downtime) ->
      let base_exec, base_root = Lazy.force baseline in
      let cluster =
        run_single_client_workload ~crash:(Some (victim, crash_at, downtime)) (crash_cfg ())
      in
      let rv = Cluster.replica cluster victim in
      let live = Array.to_list (Cluster.replicas cluster) in
      let root r = Statemgr.Merkle.root (Statemgr.Merkle.build (Replica.pages r)) in
      (* No replica — restarted one included — may have committed a
         different batch at any sequence the others also journaled, nor
         diverged in state at equal execution points. *)
      (match Harness.Faults.journals_agree live @ Harness.Faults.states_agree live with
      | [] -> ()
      | fs -> QCheck.Test.fail_reportf "%s" (String.concat "; " fs));
      (* Every replica converges to the exact bytes of the run that
         never crashed: same number of committed batches, same Merkle
         root — so the crash left no trace in the replicated state. *)
      List.iter
        (fun r ->
          if Replica.last_executed r <> base_exec then
            QCheck.Test.fail_reportf
              "replica %d executed %d batches, baseline %d (view=%d recovering=%b recovered=%s \
               rejoin=%d dem=%d auth=%d nondet_rej=%d vc=%d)"
              (Replica.id r) (Replica.last_executed r) base_exec (Replica.view r)
              (Replica.is_recovering r)
              (match Replica.recovery_completed_at r with
              | None -> "no"
              | Some t -> Printf.sprintf "%.3f" t)
              (Replica.rejoin_transfers r) (Replica.demotion_transfers r)
              (Replica.auth_failures r) (Replica.nondet_rejects r)
              (Replica.view_change_attempts r);
          if not (String.equal (root r) base_root) then
            QCheck.Test.fail_reportf "replica %d Merkle root diverged from never-crashed run"
              (Replica.id r))
        live;
      (match Replica.recovery_completed_at rv with
      | None -> QCheck.Test.fail_reportf "victim never completed its rejoin"
      | Some _ -> ());
      true)

let test_restart_client_keys_reinstalled () =
  (* Regression: a restarted replica loses the statically-configured
     client session keys with the rest of its volatile state. Unless the
     cluster re-installs them out of band on restart, every client
     request authenticates against a missing key forever — silent until
     the replica becomes primary. After rejoin, continued client traffic
     must produce zero new auth failures on the restarted replica. *)
  let cfg = crash_cfg () in
  let cluster = Cluster.create ~seed:31 ~num_clients:2 ~service:(Service.kv_store ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let engine = Cluster.engine cluster in
  let stop = ref false in
  Array.iteri
    (fun i cl ->
      let seq = ref 0 in
      let rec loop _ =
        if not !stop then begin
          incr seq;
          Client.invoke cl
            (Printf.sprintf "put c%d-%d v%d" i (!seq mod 8) !seq)
            (fun _ -> Simnet.Engine.schedule engine ~delay:0.01 (fun () -> loop ""))
        end
      in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:0.5;
  Cluster.crash_replica cluster 1;
  Cluster.run cluster ~seconds:0.2;
  Cluster.restart_replica cluster 1;
  Cluster.run cluster ~seconds:1.0;
  let r1 = Cluster.replica cluster 1 in
  (match Replica.recovery_completed_at r1 with
  | None -> Alcotest.fail "rejoin never completed"
  | Some _ -> ());
  (* Quiesce past the rejoin's transient in-flight window, then continued
     traffic must verify cleanly. *)
  let before = Replica.auth_failures r1 in
  Cluster.run cluster ~seconds:1.5;
  stop := true;
  Cluster.run cluster ~seconds:0.5;
  Alcotest.(check int) "no auth failures on post-rejoin client traffic" before
    (Replica.auth_failures r1);
  Alcotest.(check int) "caught up with peers" (Replica.last_executed (Cluster.replica cluster 0))
    (Replica.last_executed r1)

let test_restart_exactly_once_counter () =
  (* Regression for the reply cache: requests executed before the crash
     must not re-execute after the restart (the restarted replica's
     counter state comes from its disk checkpoint + transfer, and client
     retransmissions are absorbed). The counter's final value equals the
     number of completed invocations exactly. *)
  let cfg = crash_cfg () in
  let cluster = Cluster.create ~seed:32 ~num_clients:2 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let engine = Cluster.engine cluster in
  let stop = ref false in
  let completed = ref 0 and last = ref "" in
  Array.iter
    (fun cl ->
      let rec loop r =
        if not (String.equal r "") then begin
          incr completed;
          last := r
        end;
        if not !stop then
          Simnet.Engine.schedule engine ~delay:0.01 (fun () ->
              if not !stop then Client.invoke cl "incr" loop)
      in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:0.7;
  Cluster.crash_replica cluster 2;
  Cluster.run cluster ~seconds:0.3;
  Cluster.restart_replica cluster 2;
  Cluster.run cluster ~seconds:1.5;
  stop := true;
  Cluster.run cluster ~seconds:1.0;
  Alcotest.(check bool) "made progress" true (!completed > 20);
  Alcotest.(check string) "counter equals completions (exactly-once)"
    (string_of_int !completed) !last;
  let r2 = Cluster.replica cluster 2 in
  Alcotest.(check int) "restarted replica caught up"
    (Replica.last_executed (Cluster.replica cluster 0))
    (Replica.last_executed r2)

let test_restart_dynamic_membership_reload () =
  (* Regression: the membership/redirection table is volatile, decoded
     from the state region. A restarted replica must rebuild it from the
     reloaded checkpoint (and the transfer), or it drops every request
     from clients that joined before the crash. *)
  let cfg = { (crash_cfg ()) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:33 ~num_clients:1 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c = Cluster.client cluster 0 in
  let results = ref [] in
  let invoke_n n k =
    let rec go i =
      if i < n then Client.invoke c "incr" (fun r -> results := r :: !results; go (i + 1))
      else k ()
    in
    go 0
  in
  Client.join c ~idbuf:"alice:pw" (function
    | Some _ -> invoke_n 20 (fun () -> ())
    | None -> Alcotest.fail "join denied");
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "pre-crash ops executed" 20 (List.length !results);
  Cluster.crash_replica cluster 2;
  Cluster.run cluster ~seconds:0.3;
  Cluster.restart_replica cluster 2;
  Cluster.run cluster ~seconds:2.0;
  let r2 = Cluster.replica cluster 2 in
  Alcotest.(check int) "membership reloaded from checkpoint" 1
    (Membership.count (Replica.membership r2));
  invoke_n 20 (fun () -> ());
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "post-restart ops executed" 40 (List.length !results);
  Alcotest.(check string) "counter continued exactly-once" "40" (List.hd !results);
  Alcotest.(check int) "restarted replica executed them too"
    (Replica.last_executed (Cluster.replica cluster 0))
    (Replica.last_executed r2)

let test_restart_mid_speculation_safe () =
  (* Regression: pending speculative state (executed-but-uncommitted
     batches) dies with the crash; the restarted replica must come back
     through the committed checkpoint + transfer without tentative state
     leaking into its store. *)
  let cfg =
    { (crash_cfg ()) with Config.pipeline_depth = 4; cores = 2 }
  in
  let cluster = run_single_client_workload ~crash:(Some (2, 0.6, 0.2)) cfg in
  let live = Array.to_list (Cluster.replicas cluster) in
  (match Harness.Faults.journals_agree live @ Harness.Faults.states_agree live with
  | [] -> ()
  | fs -> Alcotest.failf "%s" (String.concat "; " fs));
  let r2 = Cluster.replica cluster 2 in
  Alcotest.(check int) "caught up after speculative crash"
    (Replica.last_executed (Cluster.replica cluster 0))
    (Replica.last_executed r2)

let test_restart_recovery_mode_ends () =
  (* Regression (stale volatile flag): [restart] sets [recovering] and
     nothing ever cleared it, so a rejoined replica stayed in recovery
     mode forever — permanently lenient §2.5 replay validation and a
     watchdog that could never escalate. Recovery must end once a
     checkpoint quorum certifies state the replica executed itself. *)
  let cluster = run_single_client_workload ~crash:(Some (2, 0.6, 0.2)) (crash_cfg ()) in
  let r2 = Cluster.replica cluster 2 in
  (match Replica.recovery_completed_at r2 with
  | None -> Alcotest.fail "rejoin never completed"
  | Some _ -> ());
  Alcotest.(check bool) "recovery mode ended" false (Replica.is_recovering r2)

let test_restart_replays_lost_bodies () =
  (* Regression (§2.4 wedge on the rejoin path): every request is big by
     default, and the bodies table dies with the crash. The batches the
     victim must replay between its rejoin checkpoint and the live head
     reference bodies whose client multicasts it slept through — and
     those clients were answered long ago, so nothing retransmits. A
     recovering replica must fetch the bodies from its peers; before it
     did, it sat wedged on the first missing body until a checkpoint
     quorum demoted it into a full state transfer (a journal hole), and
     at low checkpoint rates it wedged for good, escalating view
     changes the whole time. A clean rejoin replays everything itself:
     one rejoin transfer, no demotion rescue, no view changes. *)
  let cluster = run_single_client_workload ~crash:(Some (2, 0.6, 0.2)) (crash_cfg ()) in
  let r2 = Cluster.replica cluster 2 in
  (* At most one demotion: a checkpoint quorum can race past the victim
     while it replays (a §2.4 lag, repaired by transfer). Pre-fix the
     victim could not execute the replay region at all — every batch
     stalled on a body it had no way to obtain — and lurched from
     demotion to demotion without ever replaying an entry itself. *)
  Alcotest.(check bool)
    (Printf.sprintf "at most one demotion (%d)" (Replica.demotion_transfers r2))
    true
    (Replica.demotion_transfers r2 <= 1);
  Alcotest.(check int) "one rejoin transfer" 1 (Replica.rejoin_transfers r2);
  Alcotest.(check int) "replayed to the head"
    (Replica.last_executed (Cluster.replica cluster 0))
    (Replica.last_executed r2);
  Alcotest.(check int) "no view changes anywhere" 0
    (Array.fold_left (fun acc r -> acc + Replica.view_changes r) 0 (Cluster.replicas cluster))

let test_restart_no_view_thrash_two_incidents () =
  (* Regression (stale view-change votes): a rejoining replica's solo
     View_change votes used to linger in every peer's per-view tables;
     the next incident's first fresh vote then combined with them into a
     fake f+1 join quorum and the group cascaded through every view the
     first victim had named. Two sequential backup incidents must leave
     the view untouched. *)
  let cfg = crash_cfg () in
  let cluster = Cluster.create ~seed:123 ~num_clients:1 ~service:(Service.kv_store ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let engine = Cluster.engine cluster in
  let cl = Cluster.client cluster 0 in
  let seq = ref 0 in
  let rec loop _ =
    if !seq < 160 then begin
      incr seq;
      Client.invoke cl
        (Printf.sprintf "put k%d v%d.%s" (!seq mod 8) !seq (String.make 24 'v'))
        (fun _ -> Simnet.Engine.schedule engine ~delay:0.02 (fun () -> loop ""))
    end
  in
  loop "";
  List.iter
    (fun (victim, crash_at, downtime) ->
      Simnet.Engine.schedule engine ~delay:crash_at (fun () -> Cluster.crash_replica cluster victim);
      Simnet.Engine.schedule engine ~delay:(crash_at +. downtime) (fun () ->
          Cluster.restart_replica cluster victim))
    [ (2, 0.5, 0.3); (3, 1.6, 0.3) ];
  Cluster.run cluster ~seconds:20.0;
  Alcotest.(check int) "workload drained" 160 !seq;
  Array.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d stayed in view 0" (Replica.id r))
        0 (Replica.view r))
    (Cluster.replicas cluster);
  let r0 = Cluster.replica cluster 0 in
  Array.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d at head" (Replica.id r))
        (Replica.last_executed r0) (Replica.last_executed r))
    (Cluster.replicas cluster)

let test_restart_primary_relearns_its_view () =
  (* Regression (stale view at rejoin): a restarted replica comes back
     in view 0 and must relearn the cluster's view. The old path — the
     installing primary replays its New_view — is itself volatile: here
     the current view's installer is the replica that restarts, so
     nobody holds the certificate and only the f+1 status-gossip
     adoption can teach it. Without adoption the group wedges (its
     primary leads a view it does not know it leads) until watchdogs
     force yet another view change. *)
  let cfg = crash_cfg () in
  let cluster = Cluster.create ~seed:123 ~num_clients:1 ~service:(Service.kv_store ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let engine = Cluster.engine cluster in
  let cl = Cluster.client cluster 0 in
  let phase2 = ref 0 and phase1 = ref 0 in
  let invoke_n counter n k =
    let rec go _ =
      if !counter < n then begin
        incr counter;
        Client.invoke cl
          (Printf.sprintf "put p%d v%d.%s" (!counter mod 8) !counter (String.make 24 'v'))
          (fun _ -> Simnet.Engine.schedule engine ~delay:0.01 (fun () -> go ""))
      end
      else k ()
    in
    go ""
  in
  (* Phase 1: crash the view-0 primary mid-traffic; the group fails over
     to view 1 (primary = replica 1) and the old primary rejoins. *)
  Simnet.Engine.schedule engine ~delay:0.2 (fun () -> Cluster.crash_replica cluster 0);
  Simnet.Engine.schedule engine ~delay:0.6 (fun () -> Cluster.restart_replica cluster 0);
  invoke_n phase1 48 (fun () -> ());
  Cluster.run cluster ~seconds:8.0;
  Alcotest.(check int) "phase 1 drained" 48 !phase1;
  Alcotest.(check int) "failed over to view 1" 1 (Replica.view (Cluster.replica cluster 2));
  (* Phase 2: with traffic quiescent, bounce the view-1 primary itself.
     No view change happens (nothing is starved), so when it returns the
     cluster is still in view 1 — a view only status gossip can teach
     it, its own New_view certificate having died with the crash. *)
  Cluster.crash_replica cluster 1;
  Cluster.run cluster ~seconds:0.3;
  Cluster.restart_replica cluster 1;
  Cluster.run cluster ~seconds:2.0;
  Alcotest.(check int) "restarted primary adopted view 1" 1 (Replica.view (Cluster.replica cluster 1));
  (* It must now actually lead: traffic flows without a further view
     change. *)
  invoke_n phase2 32 (fun () -> ());
  Cluster.run cluster ~seconds:8.0;
  Alcotest.(check int) "phase 2 drained under the rejoined primary" 32 !phase2;
  Array.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d still in view 1" (Replica.id r))
        1 (Replica.view r))
    (Cluster.replicas cluster);
  let r0 = Cluster.replica cluster 0 in
  Array.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "replica %d at head" (Replica.id r))
        (Replica.last_executed r0) (Replica.last_executed r))
    (Cluster.replicas cluster)

(* --- session state (§3.3.2) --- *)

let test_session_state_unit () =
  let pages = Statemgr.Pages.create ~page_size:4096 ~num_pages:8 () in
  let store = Session_state.create pages ~first_page:0 ~pages:8 in
  Session_state.set store ~client:1 ~key:"cart" "apples";
  Session_state.set store ~client:1 ~key:"step" "2";
  Session_state.set store ~client:2 ~key:"cart" "pears";
  Alcotest.(check (option string)) "get own" (Some "apples")
    (Session_state.get store ~client:1 ~key:"cart");
  Alcotest.(check (option string)) "isolated per session" (Some "pears")
    (Session_state.get store ~client:2 ~key:"cart");
  Alcotest.(check (list string)) "keys" [ "cart"; "step" ] (Session_state.session_keys store ~client:1);
  Session_state.set store ~client:1 ~key:"cart" "bananas";
  Alcotest.(check (option string)) "overwrite" (Some "bananas")
    (Session_state.get store ~client:1 ~key:"cart");
  Session_state.remove store ~client:1 ~key:"step";
  Alcotest.(check (option string)) "removed" None (Session_state.get store ~client:1 ~key:"step");
  Session_state.end_session store ~client:1;
  Alcotest.(check (list string)) "session wiped" [] (Session_state.session_keys store ~client:1);
  Alcotest.(check (list int)) "other survives" [ 2 ] (Session_state.sessions store);
  (* The image lives in the region: a fresh handle over the same pages
     sees the same contents (restart / state transfer). *)
  let store2 = Session_state.create pages ~first_page:0 ~pages:8 in
  Alcotest.(check (option string)) "persistent in region" (Some "pears")
    (Session_state.get store2 ~client:2 ~key:"cart")

let test_session_state_cache_follows_generation () =
  (* The store memoizes the decoded image keyed on [Pages.generation]:
     out-of-band page replacement (state transfer via [load_page],
     rollback via [restore_page]) bumps the generation, so a stale
     decode must never be served afterwards. *)
  let pages = Statemgr.Pages.create ~page_size:4096 ~num_pages:8 () in
  let store = Session_state.create pages ~first_page:0 ~pages:8 in
  Session_state.set store ~client:1 ~key:"k" "old";
  Alcotest.(check (option string)) "warm cache" (Some "old")
    (Session_state.get store ~client:1 ~key:"k");
  let snap = Statemgr.Pages.snapshot pages in
  (* A state transfer lands a different image over the same handle. *)
  let pages2 = Statemgr.Pages.create ~page_size:4096 ~num_pages:8 () in
  let store2 = Session_state.create pages2 ~first_page:0 ~pages:8 in
  Session_state.set store2 ~client:1 ~key:"k" "transferred";
  for i = 0 to 7 do
    Statemgr.Pages.load_page pages i (Statemgr.Pages.page pages2 i)
  done;
  Alcotest.(check (option string)) "sees transferred image" (Some "transferred")
    (Session_state.get store ~client:1 ~key:"k");
  (* A rollback restores the snapshot: the cache must follow again. *)
  for i = 0 to 7 do
    Statemgr.Pages.restore_page pages snap i
  done;
  Alcotest.(check (option string)) "sees rolled-back image" (Some "old")
    (Session_state.get store ~client:1 ~key:"k")

let test_session_state_cleared_on_takeover () =
  (* A re-join under the same identity terminates the old session; the
     middleware must wipe its session-mapped state (§3.3.2). *)
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:105 ~num_clients:2 ~service:(Service.session_kv ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c0 = Cluster.client cluster 0 and c1 = Cluster.client cluster 1 in
  let phase = ref "start" in
  Client.join c0 ~idbuf:"alice:pw" (function
    | Some _ ->
      Client.invoke c0 "sput secret ballot-draft" (fun _ ->
          phase := "stored";
          (* Same identity joins from another address: takeover. *)
          Client.join c1 ~idbuf:"alice:pw" (function
            | Some _ ->
              Client.invoke c1 "skeys" (fun keys -> phase := "keys:" ^ keys)
            | None -> phase := "takeover-denied"))
    | None -> phase := "join-denied");
  Cluster.run cluster ~seconds:20.0;
  (* The new session starts empty: the old session's data is gone. *)
  Alcotest.(check string) "old session state wiped on takeover" "keys:" !phase

let test_session_state_survives_transfer () =
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:106 ~num_clients:2 ~service:(Service.session_kv ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c0 = Cluster.client cluster 0 in
  let stop = ref false in
  (* background load so checkpoints advance *)
  let cl1 = Cluster.client cluster 1 in
  let rec churn _ = if not !stop then Client.invoke cl1 "sput noise x" churn in
  churn "";
  let got = ref "" in
  Client.invoke c0 "sput sticky value-123" (fun _ -> ());
  Simnet.Engine.schedule (Cluster.engine cluster) ~delay:0.2 (fun () ->
      ignore
        (Simnet.Net.drop_next_matching (Cluster.net cluster) (fun ~src ~dst ~label ->
             src >= Types.client_addr_base && dst = 2 && label = "request")));
  Cluster.run cluster ~seconds:4.0;
  stop := true;
  Client.invoke c0 "sget sticky" (fun r -> got := r);
  Cluster.run cluster ~seconds:3.0;
  Alcotest.(check string) "session data after state transfer" "value-123" !got;
  Alcotest.(check bool) "a transfer actually happened" true
    (Replica.state_transfers (Cluster.replica cluster 2) >= 1)

(* Randomized wire-format fuzzing: arbitrary payloads roundtrip, and
   arbitrary byte strings never crash the decoder. *)
let gen_request =
  let open QCheck.Gen in
  map
    (fun (client, id, op, ro) ->
      { Message.rq_client = client; rq_id = id; rq_op = op; rq_readonly = ro; rq_timestamp = 1.5 })
    (quad (int_bound 5000) (int_bound 100000) (string_size (int_bound 64)) bool)

let gen_batch_item =
  let open QCheck.Gen in
  oneof
    [
      map (fun r -> Message.Full r) gen_request;
      map
        (fun (c, i, ro) ->
          Message.Digest_of
            { bd_client = c; bd_id = i; bd_digest = String.make 32 'd'; bd_readonly = ro })
        (triple (int_bound 5000) (int_bound 1000) bool);
    ]

let gen_payload =
  let open QCheck.Gen in
  oneof
    [
      map (fun r -> Message.Request_msg r) gen_request;
      map
        (fun (v, n, batch, nd) ->
          Message.Pre_prepare { pp_view = v; pp_seq = n; pp_batch = batch; pp_nondet = nd })
        (quad (int_bound 10) (int_bound 100000) (list_size (int_bound 8) gen_batch_item)
           (string_size (int_bound 24)));
      map
        (fun (v, n, r) ->
          Message.Prepare { p_view = v; p_seq = n; p_digest = String.make 32 'x'; p_replica = r })
        (triple (int_bound 10) (int_bound 100000) (int_bound 6));
      map
        (fun (v, c, id, res) ->
          Message.Reply
            { r_view = v; r_client = c; r_id = id; r_replica = 0; r_result = res;
              r_tentative = false; r_partial = None })
        (quad (int_bound 10) (int_bound 5000) (int_bound 100000) (string_size (int_bound 128)));
      map
        (fun (n, pages) -> Message.State_pages { sp_seq = n; sp_replica = 1; sp_pages = pages })
        (pair (int_bound 1000)
           (list_size (int_bound 4)
              (map (fun (i, p) -> (i, p)) (pair (int_bound 64) (string_size (int_bound 200))))));
    ]

let prop_payload_roundtrip =
  QCheck.Test.make ~name:"random payloads roundtrip" ~count:500 (QCheck.make gen_payload)
    (fun payload ->
      match Message.decode (Message.encode { Message.payload; auth = Message.No_auth }) with
      | Some back -> Message.payload_bytes back.Message.payload = Message.payload_bytes payload
      | None -> false)

let prop_decoder_never_crashes =
  QCheck.Test.make ~name:"arbitrary bytes never crash the decoder" ~count:2000 QCheck.string
    (fun bytes ->
      match Message.decode bytes with Some _ -> true | None -> true)

(* --- adversarial inputs --- *)

(* Inject raw forged datagrams: without the real sender's keys they must
   be dropped by authentication and leave safety untouched. *)
let test_spoofed_messages_ignored () =
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:101 ~num_clients:2 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let net = Cluster.net cluster in
  let engine = Cluster.engine cluster in
  (* A "Byzantine" node spoofing replica 3: unsigned and garbage-signed
     protocol messages, plus a forged client request. *)
  let forged_commit =
    Message.encode
      {
        Message.payload =
          Message.Commit { c_view = 0; c_seq = 1; c_digest = String.make 32 'e'; c_replica = 3 };
        auth = Message.Signed "not-a-real-signature";
      }
  in
  let forged_request =
    Message.encode
      {
        Message.payload =
          Message.Request_msg
            { rq_client = 1; rq_id = 999; rq_op = "incr"; rq_readonly = false; rq_timestamp = 0.0 };
        auth = Message.No_auth;
      }
  in
  let inject () =
    for dst = 0 to 3 do
      Simnet.Net.send net ~src:3 ~dst forged_commit;
      Simnet.Net.send net ~src:1001 ~dst forged_request
    done
  in
  ignore (Simnet.Engine.periodic engine ~interval:0.05 inject);
  let done_ = ref 0 in
  Array.iter
    (fun cl ->
      let rec go n = if n <= 5 then Client.invoke cl "incr" (fun _ -> incr done_; go (n + 1)) in
      go 1)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "all real requests complete" 10 !done_;
  (* No forged execution: the counter advanced exactly once per request. *)
  let final = ref "" in
  Client.invoke (Cluster.client cluster 0) ~readonly:true "get" (fun r -> final := r);
  Cluster.run cluster ~seconds:2.0;
  Alcotest.(check string) "no forged executions" "10" !final;
  Alcotest.(check bool) "forgeries counted as auth failures" true
    (Array.exists (fun r -> Replica.auth_failures r > 0) (Cluster.replicas cluster))

let test_tampered_wire_dropped () =
  (* Bit-flip every 7th datagram in flight by wrapping... simpler: verify
     decode-or-auth failure on truncated/garbled wires at the message
     level, then that a cluster under such noise still progresses. *)
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:103 ~num_clients:2 ~service:(Service.counter ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let net = Cluster.net cluster in
  let engine = Cluster.engine cluster in
  ignore
    (Simnet.Engine.periodic engine ~interval:0.03 (fun () ->
         for dst = 0 to 3 do
           Simnet.Net.send net ~src:2 ~dst "\xde\xad\xbe\xef garbage bytes"
         done));
  let done_ = ref 0 in
  Array.iter
    (fun cl ->
      let rec go n = if n <= 4 then Client.invoke cl "incr" (fun _ -> incr done_; go (n + 1)) in
      go 1)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "progress despite garbage datagrams" 8 !done_

let () =
  Alcotest.run "pbft"
    [
      ( "messages",
        [
          Alcotest.test_case "all payloads roundtrip" `Quick test_message_roundtrips;
          Alcotest.test_case "garbage rejected" `Quick test_message_garbage;
          Alcotest.test_case "request digest" `Quick test_request_digest_stable;
          Alcotest.test_case "batch digest" `Quick test_batch_digest;
        ] );
      ("config", [ Alcotest.test_case "validation & naming" `Quick test_config_validation ]);
      ("nondet", [ Alcotest.test_case "policies" `Quick test_nondet_produce_validate ]);
      ( "membership",
        [
          Alcotest.test_case "static table" `Quick test_membership_static;
          Alcotest.test_case "join ids" `Quick test_membership_join_assigns_ids;
          Alcotest.test_case "single session per identity" `Quick
            test_membership_single_session_per_identity;
          Alcotest.test_case "table full & stale cleanup" `Quick test_membership_full_and_cleanup;
          Alcotest.test_case "leave" `Quick test_membership_leave;
          Alcotest.test_case "serialize roundtrip" `Quick test_membership_serialize_roundtrip;
          Alcotest.test_case "stale cleanup order & touch" `Quick
            test_membership_stale_cleanup_order;
        ] );
      ( "log",
        [
          Alcotest.test_case "transitions" `Quick test_log_transitions;
          Alcotest.test_case "watermark gc" `Quick test_log_watermark_gc;
          Alcotest.test_case "reply cache" `Quick test_log_reply_cache;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "basic agreement" `Quick test_cluster_basic_agreement;
          Alcotest.test_case "replicas identical" `Quick test_cluster_replicas_identical;
          Alcotest.test_case "deterministic runs" `Quick test_cluster_deterministic_across_runs;
          Alcotest.test_case "counter semantics" `Quick test_cluster_counter_semantics;
          Alcotest.test_case "read-only optimization" `Quick test_cluster_readonly;
          Alcotest.test_case "no batching" `Quick test_cluster_nobatch_mode;
          Alcotest.test_case "signature mode" `Quick test_cluster_signatures_mode;
          Alcotest.test_case "f=2 cluster" `Quick test_cluster_f2;
          Alcotest.test_case "checkpoint stability" `Quick test_cluster_checkpoint_gc;
          Alcotest.test_case "view change on primary failure" `Slow
            test_cluster_view_change_on_primary_failure;
          Alcotest.test_case "lossy network exactly-once" `Slow
            test_cluster_retransmission_duplicate_suppression;
          Alcotest.test_case "body loss -> state transfer (§2.4)" `Slow
            test_cluster_body_loss_state_transfer;
          Alcotest.test_case "view-change backoff past two mute primaries" `Slow
            test_view_change_backoff_consecutive_mute_primaries;
          Alcotest.test_case "partition & auto-heal catch-up" `Slow
            test_cluster_partition_heal_catchup;
          Alcotest.test_case "receive-buffer overload (§2.4)" `Slow
            test_cluster_overload_recv_buffer_drops;
          Alcotest.test_case "restart recovery (§2.3)" `Slow test_cluster_restart_recovery;
          Alcotest.test_case "nondet replay policies (§2.5)" `Slow test_nondet_delta_blocks_replay;
        ] );
      ( "crash-restart",
        [
          Alcotest.test_case "Merkle-diff rejoin fetches fewer pages" `Slow
            test_restart_merkle_diff_fewer_pages;
          qcheck prop_crash_restart_equivalent;
          Alcotest.test_case "client session keys reinstalled" `Slow
            test_restart_client_keys_reinstalled;
          Alcotest.test_case "exactly-once across restart" `Slow
            test_restart_exactly_once_counter;
          Alcotest.test_case "membership reloaded on restart" `Slow
            test_restart_dynamic_membership_reload;
          Alcotest.test_case "crash mid-speculation stays safe" `Slow
            test_restart_mid_speculation_safe;
          Alcotest.test_case "recovery mode ends after catch-up" `Slow
            test_restart_recovery_mode_ends;
          Alcotest.test_case "lost bodies refetched on rejoin (§2.4)" `Slow
            test_restart_replays_lost_bodies;
          Alcotest.test_case "no view thrash across two incidents" `Slow
            test_restart_no_view_thrash_two_incidents;
          Alcotest.test_case "restarted primary relearns its view" `Slow
            test_restart_primary_relearns_its_view;
        ] );
      ( "session-state",
        [
          Alcotest.test_case "store semantics (§3.3.2)" `Quick test_session_state_unit;
          Alcotest.test_case "cache follows page generation" `Quick
            test_session_state_cache_follows_generation;
          Alcotest.test_case "wiped on identity takeover" `Slow
            test_session_state_cleared_on_takeover;
          Alcotest.test_case "survives state transfer" `Slow test_session_state_survives_transfer;
        ] );
      ( "fuzz",
        [ qcheck prop_payload_roundtrip; qcheck prop_decoder_never_crashes ] );
      ( "adversarial",
        [
          Alcotest.test_case "spoofed messages ignored" `Slow test_spoofed_messages_ignored;
          Alcotest.test_case "garbage datagrams dropped" `Slow test_tampered_wire_dropped;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "join then request" `Quick test_dynamic_join_and_request;
          Alcotest.test_case "join denied" `Quick test_dynamic_join_denied_bad_credentials;
          Alcotest.test_case "leave" `Quick test_dynamic_leave;
        ] );
    ]

