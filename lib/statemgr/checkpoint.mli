(** Checkpoint snapshots of the state region.

    Every [checkpoint_interval] executed requests a replica snapshots its
    state and exchanges the root digest with its peers; a quorum of
    matching digests makes the checkpoint *stable* and lets the log be
    garbage-collected (§2.1). A snapshot retains full page images so a
    lagging replica can fetch exactly the divergent pages.

    Snapshots are copy-on-write ({!Pages.snapshot}): taking one is
    O(pages dirtied since the last snapshot) rather than O(total state),
    which is what keeps checkpointing — and the undo snapshot guarding
    tentative execution — off the critical path. *)

type t

val take : seqno:int -> Pages.t -> Merkle.t -> t
(** Snapshot the region as of executed sequence number [seqno]. Near-free:
    no page bytes are copied until the live region writes again. *)

val seqno : t -> int
val root : t -> string
(** The Merkle root digest carried in checkpoint messages. *)

val page : t -> int -> string
val merkle : t -> Merkle.t

val divergent_pages : local:Merkle.t -> t -> int list * int
(** Pages where the local tree disagrees with the snapshot, plus tree
    nodes visited (the efficient top-down walk of §2.1). *)

val restore : t -> Pages.t -> Merkle.t -> unit
(** Overwrite the local region and tree with the snapshot's contents
    (full state transfer). *)
