lib/harness/scenario.ml: Array Pbft Printf Simnet String Util
