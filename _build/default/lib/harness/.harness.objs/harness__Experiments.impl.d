lib/harness/experiments.ml: Array Buffer List Option Pbft Printf Relsql Report Scenario Simnet String
