let hex_digit n = "0123456789abcdef".[n]

let of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter
    (fun c ->
      let v = Char.code c in
      Buffer.add_char b (hex_digit (v lsr 4));
      Buffer.add_char b (hex_digit (v land 0xf)))
    s;
  Buffer.contents b

let digit_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hexdump.to_string: bad digit"

let to_string s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hexdump.to_string: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit_value s.[2 * i] lsl 4) lor digit_value s.[(2 * i) + 1]))

let short ?(len = 8) s =
  let h = of_string s in
  if String.length h <= len then h else String.sub h 0 len
