(** Merkle hash tree over the state pages (§2.1).

    Leaves are page digests; inner nodes hash their children; the root
    digest uniquely identifies the whole region and is what checkpoint
    messages carry. After execution only dirty pages' leaves and their
    root paths are recomputed. An out-of-sync replica walks the tree
    top-down against a peer's to locate the (hopefully few) divergent
    pages for retransmission.

    Page bytes are hashed in place through the streaming SHA-256
    interface (no per-page string copies), and the all-zero page digest
    of a sparse region is computed once per page size — the preimages,
    and therefore every digest, are unchanged. *)

type t

val build : Pages.t -> t
(** Hash every page. *)

val update : t -> Pages.t -> int list -> unit
(** [update t pages dirty] recomputes the given leaves and all affected
    inner nodes. *)

val root : t -> string
val leaf : t -> int -> string
val num_leaves : t -> int

val diff : t -> t -> int list * int
(** [diff a b] walks both trees top-down and returns the divergent leaf
    indices plus the number of tree nodes visited — the message-count
    metric for the state-transfer experiments. The trees must have the
    same shape. *)

val root_of_leaves : string list -> string
(** Recompute the root a tree with exactly these leaf digests would have —
    used to check a peer's claimed page digests against a
    quorum-certified checkpoint digest before trusting any page. *)

val page_digest : string -> string
(** The leaf digest of one page's contents. *)

val copy : t -> t
