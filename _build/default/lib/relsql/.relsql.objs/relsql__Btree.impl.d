lib/relsql/btree.ml: Array List Pager String Util
