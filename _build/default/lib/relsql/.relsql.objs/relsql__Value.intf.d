lib/relsql/value.mli: Util
