test/test_webgate.mli:
