let signed_payload ~client ~rq_id ~result =
  Printf.sprintf "reply-cert|%d|%d|%s" client rq_id (Crypto.Sha256.digest result)

let partial pk share ~client ~rq_id ~result =
  Crypto.Threshold.partial_to_string
    (Crypto.Threshold.partial_sign pk share (signed_payload ~client ~rq_id ~result))

let combine pk ~client ~rq_id ~result wires =
  let partials = List.filter_map Crypto.Threshold.partial_of_string wires in
  match Crypto.Threshold.combine pk (signed_payload ~client ~rq_id ~result) partials with
  | Some s -> Some (Crypto.Threshold.signature_to_string s)
  | None -> None

let verify pk ~client ~rq_id ~result wire =
  match Crypto.Threshold.signature_of_string wire with
  | None -> false
  | Some s -> Crypto.Threshold.verify pk (signed_payload ~client ~rq_id ~result) s
