(** Source / sanitizer / sink declarations for the trustlint pass.

    A {!spec} names a function (by identifier-path suffix) and the role
    it plays at a verification boundary. Specs come from [@@trust.source],
    [@@trust.sanitizer], and [@@trust.sink] attributes harvested off the
    repo's [.mli] files ({!harvest_interface}), plus the {!conventions}
    table for names with no interface to annotate (local helpers, closure
    parameters, file-scoped stdlib calls). *)

type role = Source | Sanitizer | Sink

val role_name : role -> string

type spec = {
  sp_path : string list;
      (** suffix of the flattened applied identifier; [["Mac"; "verify"]]
          matches [Mac.verify] and [Crypto.Mac.verify] *)
  sp_role : role;
  sp_scope : string list;
      (** repo-relative files (or directory prefixes ending in ['/']) the
          spec applies in; [[]] means everywhere *)
  sp_desc : string;  (** what the boundary is, for finding messages *)
}

val in_scope : spec -> rel:string -> bool
val path_matches : spec -> string list -> bool
val find_spec : spec list -> rel:string -> role:role -> string list -> spec option
(** First spec of [role] whose scope covers [rel] and whose path is a
    suffix of the flattened identifier. *)

val conventions : spec list
(** The checked-in convention table: wire-codec reads scoped to the
    files that really consume wire bytes, locally-defined sanitizers
    ([check_auth], [view_change_well_formed], the [Twopc] [verify]
    closure), and the generic [Hashtbl.replace]/[add] insert sinks. *)

val harvest_interface : rel:string -> Parsetree.signature -> spec list
(** Specs declared by [@@trust.*] attributes on [val] declarations and
    record labels in one parsed [.mli]. An attribute's string payload, if
    any, becomes the spec description. *)

val parse_interface : filename:string -> string -> Parsetree.signature
