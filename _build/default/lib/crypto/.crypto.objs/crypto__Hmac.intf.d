lib/crypto/hmac.mli:
