(* Bounded LRU map: hash lookup + intrusive doubly-linked recency list,
   so find/put/remove are O(1) and eviction pops the cold end without a
   scan. Iteration is deliberately not offered — callers that need
   ordered traversal should keep a canonical structure of their own. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards LRU end *)
  mutable next : ('k, 'v) node option;  (* towards MRU end *)
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* least recently used *)
  mutable tail : ('k, 'v) node option;  (* most recently used *)
  mutable n_evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  { capacity; tbl = Hashtbl.create 64; head = None; tail = None; n_evictions = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let evictions t = t.n_evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.prev <- t.tail;
  n.next <- None;
  (match t.tail with Some old -> old.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n

let touch t n =
  let[@detlint.allow physical_eq] at_tail =
    match t.tail with Some m -> m == n | None -> false
  in
  if not at_tail then begin
    unlink t n;
    push_mru t n
  end

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    touch t n;
    Some n.value

let peek t k =
  match Hashtbl.find_opt t.tbl k with None -> None | Some n -> Some n.value

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    Hashtbl.remove t.tbl k;
    unlink t n

let evict_lru t =
  match t.head with
  | None -> None
  | Some n ->
    Hashtbl.remove t.tbl n.key;
    unlink t n;
    t.n_evictions <- t.n_evictions + 1;
    Some (n.key, n.value)

let put ?(on_evict = fun _ _ -> ()) t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    n.value <- v;
    touch t n
  | None ->
    if Hashtbl.length t.tbl >= t.capacity then begin
      match evict_lru t with
      | Some (ek, ev) -> on_evict ek ev
      | None -> ()
    end;
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.tbl k n;
    push_mru t n

let lru t = Option.map (fun n -> n.key) t.head
let mru t = Option.map (fun n -> n.key) t.tail
let mem t k = Hashtbl.mem t.tbl k
