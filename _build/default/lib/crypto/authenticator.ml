type t = { tags : (int * string) list }

let compute ~keys msg = { tags = List.map (fun (id, key) -> (id, Mac.compute ~key msg)) keys }

let check ~key ~replica msg t =
  match List.assoc_opt replica t.tags with
  | None -> false
  | Some tag -> Mac.verify ~key msg ~tag

let encode w t =
  Util.Codec.W.list w
    (fun w (id, tag) ->
      Util.Codec.W.u16 w id;
      Util.Codec.W.lstring w tag)
    t.tags

let wire_size t = String.length (Util.Codec.encode encode t)

let decode r =
  let tags =
    Util.Codec.R.list r (fun r ->
        let id = Util.Codec.R.u16 r in
        let tag = Util.Codec.R.lstring r in
        (id, tag))
  in
  { tags }
