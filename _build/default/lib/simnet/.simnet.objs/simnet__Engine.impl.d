lib/simnet/engine.ml: Float Util
