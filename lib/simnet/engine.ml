type timer = { mutable cancelled : bool }

type event = { fire : unit -> unit; guard : timer option }

type t = {
  mutable clock : float;
  queue : event Util.Heap.t;
  root_rng : Util.Rng.t;
  mutable events : int;
}

let create ~seed =
  { clock = 0.0; queue = Util.Heap.create (); root_rng = Util.Rng.create seed; events = 0 }

let now t = t.clock
let rng t = t.root_rng
let events t = t.events

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Util.Heap.push t.queue time { fire = f; guard = None }

let schedule t ~delay f = schedule_at t ~time:(t.clock +. Float.max 0.0 delay)  f

let timer t ~delay f =
  let guard = { cancelled = false } in
  Util.Heap.push t.queue
    (t.clock +. Float.max 0.0 delay)
    { fire = f; guard = Some guard };
  guard

let cancel guard = guard.cancelled <- true

let periodic t ~interval f =
  let guard = { cancelled = false } in
  let rec arm delay =
    Util.Heap.push t.queue (t.clock +. delay)
      {
        fire =
          (fun () ->
            f ();
            if not guard.cancelled then arm interval);
        guard = Some guard;
      }
  in
  arm interval;
  guard

let live ev = match ev.guard with None -> true | Some g -> not g.cancelled

let step t =
  match Util.Heap.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.clock <- Float.max t.clock time;
    t.events <- t.events + 1;
    if live ev then ev.fire ();
    true

let run ?until ?max_events t =
  let stop_time = match until with None -> infinity | Some u -> u in
  let budget = ref (match max_events with None -> max_int | Some m -> m) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Util.Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _) ->
      if time > stop_time then begin
        (* Leave future events queued; advance the clock to the horizon. *)
        t.clock <- Float.max t.clock stop_time;
        continue := false
      end
      else begin
        ignore (step t);
        decr budget
      end
  done

let pending t = Util.Heap.size t.queue
