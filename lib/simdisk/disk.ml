(* Each file keeps a durable image and a volatile overlay; sync folds the
   overlay into the image, crash discards it. Contents are grown buffers. *)

type file_state = { mutable durable : Bytes.t; mutable volatile : Bytes.t }

type t = {
  files : (string, file_state) Hashtbl.t;
  write_latency_per_byte : float;
  sync_latency : float;
  mutable syncs : int;
  mutable written : int;
}

type file = { disk : t; state : file_state }

let create ?(write_latency_per_byte = 2e-9) ?(sync_latency = 1.3e-3) () =
  {
    files = Hashtbl.create 16;
    write_latency_per_byte;
    sync_latency;
    syncs = 0;
    written = 0;
  }

let open_file t name =
  let state =
    match Hashtbl.find_opt t.files name with
    | Some st -> st
    | None ->
      let st = { durable = Bytes.create 0; volatile = Bytes.create 0 } in
      Hashtbl.add t.files name st;
      st
  in
  { disk = t; state }

let exists t name = Hashtbl.mem t.files name
let delete t name = Hashtbl.remove t.files name
let size f = Bytes.length f.state.volatile

let read f ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length f.state.volatile then
    invalid_arg "Disk.read: out of bounds";
  Bytes.sub_string f.state.volatile pos len

let ensure_capacity f n =
  let cur = Bytes.length f.state.volatile in
  if n > cur then begin
    let grown = Bytes.make n '\000' in
    Bytes.blit f.state.volatile 0 grown 0 cur;
    f.state.volatile <- grown
  end

let write f ~pos s =
  if pos < 0 then invalid_arg "Disk.write: negative position";
  ensure_capacity f (pos + String.length s);
  Bytes.blit_string s 0 f.state.volatile pos (String.length s);
  f.disk.written <- f.disk.written + String.length s

let truncate f n =
  if n < 0 then invalid_arg "Disk.truncate";
  if n < Bytes.length f.state.volatile then f.state.volatile <- Bytes.sub f.state.volatile 0 n
  else ensure_capacity f n

let sync f =
  f.disk.syncs <- f.disk.syncs + 1;
  f.state.durable <- Bytes.copy f.state.volatile

let sync_cost t = t.sync_latency
let write_cost t n = t.write_latency_per_byte *. float_of_int n

(* Order-free: each file's volatile image is reset independently. *)
let[@detlint.allow hashtbl_order] crash t =
  Hashtbl.iter (fun _ st -> st.volatile <- Bytes.copy st.durable) t.files
let sync_count t = t.syncs
let bytes_written t = t.written
