type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixing (Steele, Lea, Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value is nonnegative on 63-bit native ints. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -. mean *. log u

let gaussian t ~mean ~stdev =
  let u1 = 1.0 -. float t 1.0 and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stdev *. z)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
