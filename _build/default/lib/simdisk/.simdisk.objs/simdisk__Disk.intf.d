lib/simdisk/disk.mli:
