lib/crypto/authenticator.ml: List Mac String Util
