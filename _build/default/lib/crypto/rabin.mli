(** Rabin signature scheme over our bignum substrate.

    The PBFT code base ships an implementation of the Rabin cryptosystem
    for its asymmetric operations; we reproduce the scheme: the public key
    is a modulus [n = p·q] with [p ≡ q ≡ 3 (mod 4)], signing computes a
    modular square root of a hash of the message (retrying a counter until
    the hash is a quadratic residue), and verification squares the root.
    Verification is roughly the cost of one modular multiplication while
    signing costs two modular exponentiations — the same asymmetry that
    makes MAC authenticators so attractive in the paper's Table 1. *)

type keypair
type public_key

type signature = { counter : int; root : Bignum.Nat.t }

val generate : Util.Rng.t -> bits:int -> keypair
(** [generate rng ~bits] makes a key whose primes have [bits/2] bits each.
    512-bit keys are ample for the simulation and keep tests fast. *)

val public : keypair -> public_key
val modulus : public_key -> Bignum.Nat.t

val sign : keypair -> string -> signature
(** Sign an arbitrary message (it is hashed internally). *)

val verify : public_key -> string -> signature -> bool

val signature_to_string : signature -> string
(** Wire encoding; the byte length feeds the network size model. *)

val signature_of_string : string -> signature option

val public_to_string : public_key -> string
val public_of_string : string -> public_key option
