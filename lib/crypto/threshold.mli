(** (k, n) threshold RSA signatures with a trusted dealer, in the style of
    Shoup's "Practical Threshold Signatures".

    §3.3.1 of the paper proposes an (f+1, 3f+1) threshold signature
    scheme so that no single replica (even a Byzantine primary) ever
    holds the service's signing key. This module implements the signing
    arithmetic for real: safe-prime RSA modulus, the secret exponent
    Shamir-shared modulo m = p'q', partial signatures x^{2Δs_i}, integer
    Lagrange combination, and the Bezout extraction of a standard RSA
    signature. The dealer is trusted (no distributed key generation) and
    partial signatures carry no correctness proofs — the two
    simplifications relative to Shoup are documented in DESIGN.md. *)

type public
(** Public key: modulus, public exponent, group size and threshold. *)

type share
(** One party's secret share of the signing exponent. *)

type partial = { party : int; value : Bignum.Nat.t }
(** A partial signature contributed by one party. *)

val deal : Util.Rng.t -> bits:int -> threshold:int -> parties:int -> public * share list
(** [deal rng ~bits ~threshold ~parties] generates a fresh key whose safe
    primes have [bits/2] bits, and deals one share per party. Any
    [threshold] partial signatures combine into a full signature. *)

val share_index : share -> int

val partial_sign : public -> share -> string -> partial
(** Deterministic partial signature on (the hash of) a message. *)

val combine : public -> string -> partial list -> Bignum.Nat.t option
(** Combine at least [threshold] partials (distinct parties) into a full
    signature; [None] if too few or if the result fails verification
    (which reveals that some partial was corrupt). *)

val verify : public -> string -> Bignum.Nat.t -> bool
[@@trust.sanitizer
  "threshold RSA verification: true vouches that f+1 shareholders signed the message"]
(** Standard RSA verification: [s^e = H(msg)² (mod n)]. *)

val threshold_of : public -> int
val parties_of : public -> int

(** {2 Wire encodings} (for embedding in protocol messages) *)

val partial_to_string : partial -> string

val partial_of_string : string -> partial option
[@@trust.source "threshold partial signature parsed from wire bytes"]

val signature_to_string : Bignum.Nat.t -> string

val signature_of_string : string -> Bignum.Nat.t option
[@@trust.source "threshold signature parsed from wire bytes"]

val public_to_string : public -> string
val public_of_string : string -> public option
