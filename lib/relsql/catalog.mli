(** System catalog: table and index metadata, stored in its own B-tree
    whose root lives in the pager header — so schema is part of the
    database file and therefore of the replicated state. *)

type index_def = { idx_name : string; idx_col : string; idx_root : int }

type table = {
  tbl_name : string;
  tbl_cols : Ast.column_def list;
  tbl_root : int;  (** row B-tree root *)
  tbl_next_rowid : int;
  tbl_indexes : index_def list;
}

type t

val attach : Pager.t -> t
(** Open the catalog, creating it in a transaction of its own if the
    database is fresh. *)

val find_table : t -> string -> table option
(** Case-insensitive. *)

val create_table : t -> table -> unit
val update_table : t -> table -> unit
val drop_table : t -> string -> unit
val table_names : t -> string list
val tables : t -> table list

val find_index : t -> string -> (table * index_def) option
(** Look an index up by name (case-insensitive) across every table;
    returns the owning table alongside the definition. *)
