test/test_crypto.mli:
