type measurement = {
  name : string;
  host_seconds : float;
  events : int;
  events_per_sec : float;
  bytes_hashed : int;
  hashed_mb_per_sec : float;
  virtual_tps : float;
  completed : int;
  checkpoint_count : int;
  undo_snapshots : int;
  bytes_copied : int;
  bytes_copied_per_checkpoint : float;
  deep_copy_bytes_per_checkpoint : float;
  pages_read : int;
  rows_scanned : int;
  speculative_executions : int;
  rollbacks : int;
  tentative_completed : int;
  core_utilization : float;
  (* v5: latency distribution and overload/gateway telemetry. Closed-loop
     workloads leave the gateway block zero. *)
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  shed : int;
  gw_evictions : int;
  gw_queue_peak : int;
  replica_queue_peak : int;
  ro_cache_evictions : int;
  sessions : int;
  arrivals : int;
  offered_load : float;
  flushes_size : int;
  flushes_deadline : int;
  reply_cache_hits : int;
  events_per_request : float;
  alloc_per_request : float;
  (* v6: sharded-deployment telemetry. Single-group workloads report one
     shard and no cross-shard traffic. *)
  shards : int;
  shard_tps : float array;
  shard_queue_peak : int array;
  cross_commits : int;
  cross_aborts : int;
  cross_timeouts : int;
  (* v7: crash/restart and state-transfer telemetry. The transfer block
     splits §2.4 demotions from crash/restart rejoins and exposes the
     Merkle-diff page savings; the churn block is zero everywhere except
     the churn workload. *)
  demotion_transfers : int;
  rejoin_transfers : int;
  transfer_pages_fetched : int;
  transfer_pages_full : int;
  crashes : int;
  restarts : int;
  availability : float;
  mean_recovery : float;
  max_recovery : float;
}

let measure ~name spec =
  (* Host wall-clock on purpose: this measures the benchmark harness
     itself and never feeds simulation state or the trace digest. *)
  let[@detlint.allow wall_clock] t0 = Unix.gettimeofday () in
  let h0 = Crypto.Sha256.bytes_hashed () in
  let c0 = Statemgr.Pages.bytes_copied () in
  let p0 = Relsql.Database.pages_read_total () in
  let r0 = Relsql.Database.rows_scanned_total () in
  let a0 = Gc.allocated_bytes () in
  let outcome, cluster = Scenario.run_cluster spec in
  let alloc = Gc.allocated_bytes () -. a0 in
  let[@detlint.allow wall_clock] host_seconds = Unix.gettimeofday () -. t0 in
  let bytes_hashed = Crypto.Sha256.bytes_hashed () - h0 in
  let bytes_copied = Statemgr.Pages.bytes_copied () - c0 in
  let pages_read = Relsql.Database.pages_read_total () - p0 in
  let rows_scanned = Relsql.Database.rows_scanned_total () - r0 in
  let events = Simnet.Engine.events (Pbft.Cluster.engine cluster) in
  let reps = Pbft.Cluster.replicas cluster in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let checkpoint_count = sum Pbft.Replica.checkpoints_taken in
  let undo_snapshots = sum Pbft.Replica.undo_snapshots in
  let snapshots = checkpoint_count + undo_snapshots in
  (* What a deep-copy checkpointer would move per snapshot: every
     allocated page of one replica's region (sampled at run end). *)
  let deep_copy_bytes_per_checkpoint =
    let total =
      sum (fun r ->
          let pages = Pbft.Replica.pages r in
          Statemgr.Pages.allocated_pages pages * Statemgr.Pages.page_size pages)
    in
    if Array.length reps > 0 then float_of_int total /. float_of_int (Array.length reps) else 0.0
  in
  let per_sec n = if host_seconds > 0.0 then float_of_int n /. host_seconds else 0.0 in
  (* Run-average busy fraction of the replicas' virtual cores — the
     utilization the pipeline's extra cores actually achieve. *)
  let core_utilization =
    if Array.length reps = 0 then 0.0
    else
      Array.fold_left
        (fun acc r -> acc +. Simnet.Cpu.utilization (Pbft.Replica.cpu r) ~since:0.0)
        0.0 reps
      /. float_of_int (Array.length reps)
  in
  {
    name;
    host_seconds;
    events;
    events_per_sec = per_sec events;
    bytes_hashed;
    hashed_mb_per_sec = per_sec bytes_hashed /. 1e6;
    virtual_tps = outcome.Scenario.tps;
    completed = outcome.Scenario.completed;
    checkpoint_count;
    undo_snapshots;
    bytes_copied;
    bytes_copied_per_checkpoint =
      (if snapshots > 0 then float_of_int bytes_copied /. float_of_int snapshots else 0.0);
    deep_copy_bytes_per_checkpoint;
    pages_read;
    rows_scanned;
    speculative_executions = outcome.Scenario.speculative_execs;
    rollbacks = outcome.Scenario.rollbacks;
    tentative_completed = outcome.Scenario.tentative_completed;
    core_utilization;
    p50_latency = outcome.Scenario.p50_latency;
    p95_latency = outcome.Scenario.p95_latency;
    p99_latency = outcome.Scenario.p99_latency;
    shed = outcome.Scenario.shed;
    gw_evictions = outcome.Scenario.gw_evictions;
    gw_queue_peak = outcome.Scenario.gw_queue_peak;
    replica_queue_peak = outcome.Scenario.replica_queue_peak;
    ro_cache_evictions = outcome.Scenario.ro_cache_evictions;
    sessions = 0;
    arrivals = 0;
    offered_load = 0.0;
    flushes_size = 0;
    flushes_deadline = 0;
    reply_cache_hits = 0;
    events_per_request =
      (if outcome.Scenario.completed > 0 then
         float_of_int events /. float_of_int outcome.Scenario.completed
       else 0.0);
    alloc_per_request =
      (if outcome.Scenario.completed > 0 then alloc /. float_of_int outcome.Scenario.completed
       else 0.0);
    shards = outcome.Scenario.shards;
    shard_tps = outcome.Scenario.shard_tps;
    shard_queue_peak = outcome.Scenario.shard_queue_peak;
    cross_commits = outcome.Scenario.cross_shard_commits;
    cross_aborts = outcome.Scenario.cross_shard_aborts;
    cross_timeouts = 0;
    demotion_transfers = outcome.Scenario.demotion_transfers;
    rejoin_transfers = outcome.Scenario.rejoin_transfers;
    transfer_pages_fetched = outcome.Scenario.transfer_pages_fetched;
    transfer_pages_full = outcome.Scenario.transfer_pages_full;
    crashes = 0;
    restarts = 0;
    availability = 0.0;
    mean_recovery = 0.0;
    max_recovery = 0.0;
  }

(* Open-loop front-door workload: same host-cost envelope, but driven by
   the arrival-process generator through the gateway, so the latency
   distribution and the gateway telemetry are the generator's view. *)
let measure_openloop ~name spec =
  let[@detlint.allow wall_clock] t0 = Unix.gettimeofday () in
  let h0 = Crypto.Sha256.bytes_hashed () in
  let c0 = Statemgr.Pages.bytes_copied () in
  let outcome, cluster, _door, _gen = Openloop.run spec in
  let[@detlint.allow wall_clock] host_seconds = Unix.gettimeofday () -. t0 in
  let bytes_hashed = Crypto.Sha256.bytes_hashed () - h0 in
  let bytes_copied = Statemgr.Pages.bytes_copied () - c0 in
  let events = Simnet.Engine.events (Pbft.Cluster.engine cluster) in
  let reps = Pbft.Cluster.replicas cluster in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let checkpoint_count = sum Pbft.Replica.checkpoints_taken in
  let undo_snapshots = sum Pbft.Replica.undo_snapshots in
  let snapshots = checkpoint_count + undo_snapshots in
  let per_sec n = if host_seconds > 0.0 then float_of_int n /. host_seconds else 0.0 in
  let base = outcome.Openloop.base in
  let core_utilization =
    if Array.length reps = 0 then 0.0
    else
      Array.fold_left
        (fun acc r -> acc +. Simnet.Cpu.utilization (Pbft.Replica.cpu r) ~since:0.0)
        0.0 reps
      /. float_of_int (Array.length reps)
  in
  {
    name;
    host_seconds;
    events;
    events_per_sec = per_sec events;
    bytes_hashed;
    hashed_mb_per_sec = per_sec bytes_hashed /. 1e6;
    virtual_tps = base.Scenario.tps;
    completed = base.Scenario.completed;
    checkpoint_count;
    undo_snapshots;
    bytes_copied;
    bytes_copied_per_checkpoint =
      (if snapshots > 0 then float_of_int bytes_copied /. float_of_int snapshots else 0.0);
    deep_copy_bytes_per_checkpoint = 0.0;
    pages_read = 0;
    rows_scanned = 0;
    speculative_executions = base.Scenario.speculative_execs;
    rollbacks = base.Scenario.rollbacks;
    tentative_completed = base.Scenario.tentative_completed;
    core_utilization;
    p50_latency = base.Scenario.p50_latency;
    p95_latency = base.Scenario.p95_latency;
    p99_latency = base.Scenario.p99_latency;
    shed = base.Scenario.shed;
    gw_evictions = base.Scenario.gw_evictions;
    gw_queue_peak = base.Scenario.gw_queue_peak;
    replica_queue_peak = base.Scenario.replica_queue_peak;
    ro_cache_evictions = base.Scenario.ro_cache_evictions;
    sessions = outcome.Openloop.sessions;
    arrivals = outcome.Openloop.arrivals;
    offered_load = outcome.Openloop.offered;
    flushes_size = outcome.Openloop.flushes_size;
    flushes_deadline = outcome.Openloop.flushes_deadline;
    reply_cache_hits = outcome.Openloop.reply_cache_hits;
    events_per_request = outcome.Openloop.events_per_request;
    alloc_per_request = outcome.Openloop.alloc_per_request;
    shards = base.Scenario.shards;
    shard_tps = base.Scenario.shard_tps;
    shard_queue_peak = base.Scenario.shard_queue_peak;
    cross_commits = base.Scenario.cross_shard_commits;
    cross_aborts = base.Scenario.cross_shard_aborts;
    cross_timeouts = 0;
    demotion_transfers = base.Scenario.demotion_transfers;
    rejoin_transfers = base.Scenario.rejoin_transfers;
    transfer_pages_fetched = base.Scenario.transfer_pages_fetched;
    transfer_pages_full = base.Scenario.transfer_pages_full;
    crashes = 0;
    restarts = 0;
    availability = 0.0;
    mean_recovery = 0.0;
    max_recovery = 0.0;
  }

(* Sharded deployment (PR 8): the host-cost envelope around a
   Shards.run, with the per-shard telemetry block live. *)
let measure_shards ~name spec =
  let[@detlint.allow wall_clock] t0 = Unix.gettimeofday () in
  let h0 = Crypto.Sha256.bytes_hashed () in
  let c0 = Statemgr.Pages.bytes_copied () in
  let a0 = Gc.allocated_bytes () in
  let outcome, d = Shards.run spec in
  let alloc = Gc.allocated_bytes () -. a0 in
  let[@detlint.allow wall_clock] host_seconds = Unix.gettimeofday () -. t0 in
  let bytes_hashed = Crypto.Sha256.bytes_hashed () - h0 in
  let bytes_copied = Statemgr.Pages.bytes_copied () - c0 in
  let events = Simnet.Engine.events (Shards.engine d) in
  let all_reps =
    Array.to_list
      (Array.init spec.Shards.shards (fun s -> Pbft.Cluster.replicas (Shards.cluster d s)))
    |> Array.concat
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 all_reps in
  let checkpoint_count = sum Pbft.Replica.checkpoints_taken in
  let undo_snapshots = sum Pbft.Replica.undo_snapshots in
  let snapshots = checkpoint_count + undo_snapshots in
  let per_sec n = if host_seconds > 0.0 then float_of_int n /. host_seconds else 0.0 in
  let core_utilization =
    if Array.length all_reps = 0 then 0.0
    else
      Array.fold_left
        (fun acc r -> acc +. Simnet.Cpu.utilization (Pbft.Replica.cpu r) ~since:0.0)
        0.0 all_reps
      /. float_of_int (Array.length all_reps)
  in
  {
    name;
    host_seconds;
    events;
    events_per_sec = per_sec events;
    bytes_hashed;
    hashed_mb_per_sec = per_sec bytes_hashed /. 1e6;
    virtual_tps = outcome.Shards.so_vtps;
    completed = outcome.Shards.so_completed;
    checkpoint_count;
    undo_snapshots;
    bytes_copied;
    bytes_copied_per_checkpoint =
      (if snapshots > 0 then float_of_int bytes_copied /. float_of_int snapshots else 0.0);
    deep_copy_bytes_per_checkpoint = 0.0;
    pages_read = 0;
    rows_scanned = 0;
    speculative_executions = sum Pbft.Replica.speculative_execs;
    rollbacks = sum Pbft.Replica.rollbacks;
    tentative_completed = 0;
    core_utilization;
    p50_latency = outcome.Shards.so_p50;
    p95_latency = outcome.Shards.so_p95;
    p99_latency = outcome.Shards.so_p99;
    shed = outcome.Shards.so_shed;
    gw_evictions = Webgate.Router.session_evictions (Shards.router d);
    gw_queue_peak = Array.fold_left Int.max 0 outcome.Shards.so_shard_queue_peak;
    replica_queue_peak =
      Array.fold_left
        (fun acc r -> Int.max acc (Simnet.Cpu.peak_queue_length (Pbft.Replica.cpu r)))
        0 all_reps;
    ro_cache_evictions = sum Pbft.Replica.ro_reply_evictions;
    sessions = spec.Shards.sessions;
    arrivals = 0;
    offered_load = 0.0;
    flushes_size = 0;
    flushes_deadline = 0;
    reply_cache_hits = outcome.Shards.so_cache_hits;
    events_per_request =
      (if outcome.Shards.so_completed > 0 then
         float_of_int events /. float_of_int outcome.Shards.so_completed
       else 0.0);
    alloc_per_request =
      (if outcome.Shards.so_completed > 0 then
         alloc /. float_of_int outcome.Shards.so_completed
       else 0.0);
    shards = spec.Shards.shards;
    shard_tps = outcome.Shards.so_shard_tps;
    shard_queue_peak = outcome.Shards.so_shard_queue_peak;
    cross_commits = outcome.Shards.so_cross_commits;
    cross_aborts = outcome.Shards.so_cross_aborts;
    cross_timeouts = outcome.Shards.so_cross_timeouts;
    demotion_transfers = sum Pbft.Replica.demotion_transfers;
    rejoin_transfers = sum Pbft.Replica.rejoin_transfers;
    transfer_pages_fetched = sum Pbft.Replica.transfer_pages_fetched;
    transfer_pages_full = sum Pbft.Replica.transfer_pages_full;
    crashes = 0;
    restarts = 0;
    availability = 0.0;
    mean_recovery = 0.0;
    max_recovery = 0.0;
  }

(* Churn workload (PR 10): the host-cost envelope around a long-horizon
   crash/repair plan. Latency and gateway telemetry are not meaningful
   here (closed-loop light load); the transfer and churn blocks are. *)
let measure_churn ~name spec =
  let[@detlint.allow wall_clock] t0 = Unix.gettimeofday () in
  let h0 = Crypto.Sha256.bytes_hashed () in
  let c0 = Statemgr.Pages.bytes_copied () in
  let o = Churn.run spec in
  let[@detlint.allow wall_clock] host_seconds = Unix.gettimeofday () -. t0 in
  let bytes_hashed = Crypto.Sha256.bytes_hashed () - h0 in
  let bytes_copied = Statemgr.Pages.bytes_copied () - c0 in
  let per_sec n = if host_seconds > 0.0 then float_of_int n /. host_seconds else 0.0 in
  {
    name;
    host_seconds;
    events = o.Churn.ch_events;
    events_per_sec = per_sec o.Churn.ch_events;
    bytes_hashed;
    hashed_mb_per_sec = per_sec bytes_hashed /. 1e6;
    virtual_tps = o.Churn.ch_tps;
    completed = o.Churn.ch_completed;
    checkpoint_count = 0;
    undo_snapshots = 0;
    bytes_copied;
    bytes_copied_per_checkpoint = 0.0;
    deep_copy_bytes_per_checkpoint = 0.0;
    pages_read = 0;
    rows_scanned = 0;
    speculative_executions = 0;
    rollbacks = 0;
    tentative_completed = 0;
    core_utilization = 0.0;
    p50_latency = 0.0;
    p95_latency = 0.0;
    p99_latency = 0.0;
    shed = 0;
    gw_evictions = 0;
    gw_queue_peak = 0;
    replica_queue_peak = 0;
    ro_cache_evictions = 0;
    sessions = 0;
    arrivals = 0;
    offered_load = 0.0;
    flushes_size = 0;
    flushes_deadline = 0;
    reply_cache_hits = 0;
    events_per_request =
      (if o.Churn.ch_completed > 0 then
         float_of_int o.Churn.ch_events /. float_of_int o.Churn.ch_completed
       else 0.0);
    alloc_per_request = 0.0;
    shards = 1;
    shard_tps = [| o.Churn.ch_tps |];
    shard_queue_peak = [| 0 |];
    cross_commits = 0;
    cross_aborts = 0;
    cross_timeouts = 0;
    demotion_transfers = o.Churn.ch_demotion_transfers;
    rejoin_transfers = o.Churn.ch_rejoin_transfers;
    transfer_pages_fetched = o.Churn.ch_pages_fetched;
    transfer_pages_full = o.Churn.ch_pages_full;
    crashes = o.Churn.ch_crashes;
    restarts = o.Churn.ch_restarts;
    availability = o.Churn.ch_availability;
    mean_recovery = o.Churn.ch_mean_recovery;
    max_recovery = o.Churn.ch_max_recovery;
  },
  o

let base_cfg () = Pbft.Config.default ~f:1

let null_spec ~seed ~duration cfg =
  { (Scenario.default_spec cfg) with Scenario.seed; duration }

let row_spec ~seed ~duration (dynamic, macs, allbig, batching) =
  Experiments.with_flags ~dynamic ~macs ~allbig ~batching (base_cfg ())
  |> null_spec ~seed ~duration

let table1_workloads ?(seed = 1) ?(duration = 1.5) () =
  List.map
    (fun (name, _paper, flags) ->
      measure ~name:("table1:" ^ name) (row_spec ~seed ~duration flags))
    Experiments.table1_rows

let default_flags = (false, true, true, true)

let table1_default ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"table1:sta_mac_allbig_batch" (row_spec ~seed ~duration default_flags)

let sql_workload ?(seed = 1) ?(duration = 1.5) () =
  let cfg =
    Experiments.with_flags ~dynamic:false ~macs:true ~allbig:true ~batching:true (base_cfg ())
  in
  measure ~name:"sql:insert_acid" (Experiments.sql_spec ~seed ~duration ~acid:true cfg)

let ckpt_sql_large ?(seed = 1) ?(duration = 1.5) () =
  let cfg =
    Experiments.with_flags ~dynamic:false ~macs:true ~allbig:true ~batching:true (base_cfg ())
  in
  measure ~name:"ckpt:sql_large_state" (Experiments.sql_large_state_spec ~seed ~duration cfg)

(* Access-path workloads: the same SELECT stream over the same 1600-row
   table, with and without the secondary index. [pages_read] is the
   number the paper's "real operations" argument turns on: a point probe
   should touch O(log n) pages, a forced scan O(n). *)

let default_cfg () =
  Experiments.with_flags ~dynamic:false ~macs:true ~allbig:true ~batching:true (base_cfg ())

let sql_indexed_point ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"sql:indexed_point"
    (Experiments.indexed_sql_spec ~seed ~duration ~indexed:true ~range:false (default_cfg ()))

let sql_indexed_range ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"sql:indexed_range"
    (Experiments.indexed_sql_spec ~seed ~duration ~indexed:true ~range:true (default_cfg ()))

let sql_forced_scan ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"sql:forced_scan"
    (Experiments.indexed_sql_spec ~seed ~duration ~indexed:false ~range:false (default_cfg ()))

(* Pipelining (PR 6): the same null workload serial and deeply pipelined.
   The serial row doubles as the regression anchor — its config is the
   pinned-digest default — and the deep row carries the >=2x gate
   bench/main.exe enforces. *)

let pipeline_serial ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"pipeline:serial"
    (Experiments.pipeline_spec ~seed ~duration (Experiments.pipeline_cfg ~depth:1 ~cores:1 ()))

let pipeline_deep ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"pipeline:depth8_cores4"
    (Experiments.pipeline_spec ~seed ~duration (Experiments.pipeline_cfg ~depth:8 ~cores:4 ()))

let sql_read_mix ?(seed = 1) ?(duration = 1.5) () =
  measure ~name:"sql:read_mix" (Experiments.read_mix_spec ~seed ~duration (default_cfg ()))

let trace_digest ?(seed = 1) ?(seconds = 0.3) () =
  let dynamic, macs, allbig, batching = default_flags in
  let cfg = Experiments.with_flags ~dynamic ~macs ~allbig ~batching (base_cfg ()) in
  let spec =
    { (Scenario.default_spec cfg) with Scenario.seed; warmup = 0.1; duration = seconds }
  in
  let trace_ref = ref None in
  let outcome, _cluster =
    Scenario.run_cluster
      ~hook:(fun cluster ->
        let tr = Pbft.Cluster.trace cluster in
        (* run_cluster disables tracing for speed; the digest needs the
           full message log back on. *)
        Simnet.Trace.set_enabled tr true;
        trace_ref := Some tr)
      spec
  in
  let tr = Option.get !trace_ref in
  let ctx = Crypto.Sha256.init () in
  List.iter
    (fun (e : Simnet.Trace.entry) ->
      Crypto.Sha256.feed ctx
        (* %.9f is the digest's pinned preimage format; changing it would
           change every recorded trace digest. *)
        (Printf.sprintf "%.9f|%d|%d|%s|%d|%s\n" e.time e.src e.dst e.label e.size e.detail
         [@detlint.allow float_format]))
    (Simnet.Trace.entries tr);
  Crypto.Sha256.feed ctx (Printf.sprintf "completed=%d" outcome.Scenario.completed);
  Util.Hexdump.of_string (Crypto.Sha256.finalize ctx)

let to_json ?(now = "unknown") ms =
  let open Webgate.Json in
  let workload m =
    Obj
      [
        ("name", Str m.name);
        ("host_seconds", Num m.host_seconds);
        ("events", Num (float_of_int m.events));
        ("events_per_sec", Num m.events_per_sec);
        ("bytes_hashed", Num (float_of_int m.bytes_hashed));
        ("hashed_mb_per_sec", Num m.hashed_mb_per_sec);
        ("virtual_tps", Num m.virtual_tps);
        ("completed", Num (float_of_int m.completed));
        ("checkpoint_count", Num (float_of_int m.checkpoint_count));
        ("undo_snapshots", Num (float_of_int m.undo_snapshots));
        ("bytes_copied", Num (float_of_int m.bytes_copied));
        ("bytes_copied_per_checkpoint", Num m.bytes_copied_per_checkpoint);
        ("deep_copy_bytes_per_checkpoint", Num m.deep_copy_bytes_per_checkpoint);
        ("pages_read", Num (float_of_int m.pages_read));
        ("rows_scanned", Num (float_of_int m.rows_scanned));
        ("speculative_executions", Num (float_of_int m.speculative_executions));
        ("rollbacks", Num (float_of_int m.rollbacks));
        ("tentative_completed", Num (float_of_int m.tentative_completed));
        ("stable_completed", Num (float_of_int (m.completed - m.tentative_completed)));
        ("core_utilization", Num m.core_utilization);
        ("p50_latency", Num m.p50_latency);
        ("p95_latency", Num m.p95_latency);
        ("p99_latency", Num m.p99_latency);
        ("shed", Num (float_of_int m.shed));
        ("gw_evictions", Num (float_of_int m.gw_evictions));
        ("gw_queue_peak", Num (float_of_int m.gw_queue_peak));
        ("replica_queue_peak", Num (float_of_int m.replica_queue_peak));
        ("ro_cache_evictions", Num (float_of_int m.ro_cache_evictions));
        ("sessions", Num (float_of_int m.sessions));
        ("arrivals", Num (float_of_int m.arrivals));
        ("offered_load", Num m.offered_load);
        ("flushes_size", Num (float_of_int m.flushes_size));
        ("flushes_deadline", Num (float_of_int m.flushes_deadline));
        ("reply_cache_hits", Num (float_of_int m.reply_cache_hits));
        ("events_per_request", Num m.events_per_request);
        ("alloc_per_request", Num m.alloc_per_request);
        ("shards", Num (float_of_int m.shards));
        ("shard_tps", Arr (Array.to_list (Array.map (fun t -> Num t) m.shard_tps)));
        ( "shard_queue_peak",
          Arr (Array.to_list (Array.map (fun q -> Num (float_of_int q)) m.shard_queue_peak)) );
        ("cross_commits", Num (float_of_int m.cross_commits));
        ("cross_aborts", Num (float_of_int m.cross_aborts));
        ("cross_timeouts", Num (float_of_int m.cross_timeouts));
        ("demotion_transfers", Num (float_of_int m.demotion_transfers));
        ("rejoin_transfers", Num (float_of_int m.rejoin_transfers));
        ("transfer_pages_fetched", Num (float_of_int m.transfer_pages_fetched));
        ("transfer_pages_full", Num (float_of_int m.transfer_pages_full));
        ("crashes", Num (float_of_int m.crashes));
        ("restarts", Num (float_of_int m.restarts));
        ("availability", Num m.availability);
        ("mean_recovery", Num m.mean_recovery);
        ("max_recovery", Num m.max_recovery);
      ]
  in
  pretty
    (Obj
       [
         ("schema", Str "pbft-repro/bench/v7");
         ("generated", Str now);
         ("trace_digest", Str (trace_digest ()));
         ("workloads", Arr (List.map workload ms));
       ])
