test/test_relsql.ml: Alcotest Array Ast Btree Database Float Gen Hashtbl Lexer List Pager Parser Pbft_service Printf QCheck QCheck_alcotest Relsql Simdisk String Util Value Vfs
