type rule = { sr_table : string; sr_column : string }

type topology = { t_shards : int; t_rules : rule list }

let topology ~shards rules =
  if shards < 1 then invalid_arg "Shard.topology: shards must be >= 1";
  { t_shards = shards; t_rules = rules }

let shards t = t.t_shards
let rules t = t.t_rules

let name_eq a b = String.equal (String.lowercase_ascii a) (String.lowercase_ascii b)

let rule_for t table = List.find_opt (fun r -> name_eq r.sr_table table) t.t_rules

(* FNV-1a 64-bit over the value's canonical key bytes. Deliberately not
   [Hashtbl.hash]: row placement is part of the replicated state's
   definition, so it must be pinned to an explicit algorithm, not a
   runtime's polymorphic hash. *)
let fnv_offset = -3750763034362895579L (* 0xcbf29ce484222325 *)
let fnv_prime = 1099511628211L

let fnv1a s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let shard_of_value t v =
  (* SQL compares Int 5 and Real 5.0 equal, so they must hash alike. *)
  let v =
    match v with
    | Value.Real r when Float.is_integer r && Float.abs r < 4.611686018427387904e18 ->
      Value.Int (int_of_float r)
    | v -> v
  in
  let h = Int64.logand (fnv1a (Value.key_encode v)) 0x3FFFFFFFFFFFFFFFL in
  Int64.to_int (Int64.rem h (Int64.of_int t.t_shards))

let shard_of_int t k = shard_of_value t (Value.Int k)

(* --- statement splitting --- *)

let split_statements sql =
  let n = String.length sql in
  let pieces = ref [] in
  let start = ref 0 in
  let flush stop =
    let piece = String.trim (String.sub sql !start (stop - !start)) in
    if String.length piece > 0 then pieces := piece :: !pieces;
    start := stop + 1
  in
  let i = ref 0 in
  while !i < n do
    (match sql.[!i] with
    | '\'' ->
      (* Quoted string with '' escaping: scan to the closing quote. *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        if Char.equal sql.[!i] '\'' then
          if !i + 1 < n && Char.equal sql.[!i + 1] '\'' then i := !i + 2 else fin := true
        else incr i
      done
    | '-' when !i + 1 < n && Char.equal sql.[!i + 1] '-' ->
      while !i < n && not (Char.equal sql.[!i] '\n') do
        incr i
      done;
      decr i
    | '/' when !i + 1 < n && Char.equal sql.[!i + 1] '*' ->
      i := !i + 2;
      while !i + 1 < n && not (Char.equal sql.[!i] '*' && Char.equal sql.[!i + 1] '/') do
        incr i
      done;
      incr i
    | ';' -> flush !i
    | _ -> ());
    incr i
  done;
  if !start < n then flush n;
  List.rev !pieces

(* --- routing --- *)

type route = Single of int | Cross of int list

let all_shards t = List.init t.t_shards Fun.id

let rec conjuncts e acc =
  match e with
  | Ast.Binop ("AND", a, b) -> conjuncts a (conjuncts b acc)
  | e -> e :: acc

(* Equality pins on the partition column among the top-level AND
   conjuncts. [names] are the spellings that may qualify the column
   (table name and alias); an unqualified column always matches — at
   routing time there is no catalog to resolve ambiguity, and a wrong
   guess only widens the route to a still-correct scatter. *)
let where_pins ~names ~column w =
  let qualifier_ok = function
    | None -> true
    | Some q -> List.exists (name_eq q) names
  in
  let pin = function
    | Ast.Binop ("=", Ast.Col (q, c), Ast.Lit v) | Ast.Binop ("=", Ast.Lit v, Ast.Col (q, c))
      when name_eq c column && qualifier_ok q ->
      Some v
    | _ -> None
  in
  match w with None -> [] | Some w -> List.filter_map pin (conjuncts w [])

let table_route t ~table ~names where =
  match rule_for t table with
  | None -> [ 0 ]
  | Some r -> (
    match where_pins ~names ~column:r.sr_column where with
    | [] -> all_shards t
    | pins -> List.map (shard_of_value t) pins)

let insert_route t ~table ~cols ~rows =
  match rule_for t table with
  | None -> [ 0 ]
  | Some r ->
    let col_index = ref (-1) in
    List.iteri (fun i c -> if name_eq c r.sr_column then col_index := i) cols;
    let row_shard row =
      let v =
        if !col_index >= 0 then
          match List.nth_opt row !col_index with Some (Ast.Lit v) -> v | Some _ | None -> Value.Null
        else Value.Null
      in
      shard_of_value t v
    in
    List.map row_shard rows

let statement_shards t stmt =
  let raw =
    match stmt with
    | Ast.Create_table _ | Ast.Drop_table _ | Ast.Create_index _ | Ast.Drop_index _
    | Ast.Begin_txn | Ast.Commit_txn | Ast.Rollback_txn ->
      all_shards t
    | Ast.Insert { ins_table; ins_cols; ins_rows } ->
      insert_route t ~table:ins_table ~cols:ins_cols ~rows:ins_rows
    | Ast.Select s -> (
      match s.Ast.sel_from with
      | [] -> [ 0 ]
      | from ->
        List.concat_map
          (fun (table, alias) ->
            let names = table :: (match alias with Some a -> [ a ] | None -> []) in
            table_route t ~table ~names s.Ast.sel_where)
          from)
    | Ast.Update { upd_table; upd_where; _ } ->
      table_route t ~table:upd_table ~names:[ upd_table ] upd_where
    | Ast.Delete { del_table; del_where } ->
      table_route t ~table:del_table ~names:[ del_table ] del_where
  in
  List.sort_uniq Int.compare raw

let parse_pieces pieces =
  match List.map Parser.parse_one pieces with
  | stmts -> Some stmts
  | exception (Parser.Error _ | Lexer.Error _) -> None

let classify t sql =
  match split_statements sql with
  | [] -> Single 0
  | pieces -> (
    match parse_pieces pieces with
    | None -> Single 0
    | Some stmts -> (
      match List.sort_uniq Int.compare (List.concat_map (statement_shards t) stmts) with
      | [ s ] -> Single s
      | [] -> Single 0
      | l -> Cross l))

let plan t sql =
  let pieces = split_statements sql in
  match parse_pieces pieces with
  | None -> [ (0, sql) ]
  | Some stmts ->
    let routed = List.map2 (fun piece stmt -> (piece, statement_shards t stmt)) pieces stmts in
    let involved =
      List.sort_uniq Int.compare (List.concat_map (fun (_, shards) -> shards) routed)
    in
    List.map
      (fun s ->
        let script =
          String.concat "; "
            (List.filter_map
               (fun (piece, shards) -> if List.mem s shards then Some piece else None)
               routed)
        in
        (s, script))
      involved

let route_key = function
  | Single s -> string_of_int s
  | Cross l -> String.concat "," (List.map string_of_int l)
