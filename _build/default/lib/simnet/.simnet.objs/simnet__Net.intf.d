lib/simnet/net.mli: Engine Trace
