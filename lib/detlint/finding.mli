(** A determinism/replay-safety violation reported by the analyzer. *)

type rule =
  | Hashtbl_order  (** unordered [Hashtbl] traversal in a replay-critical library *)
  | Poly_compare  (** polymorphic [compare]/[=]/[min]/[max]/[Hashtbl.hash] where an abstract or float-bearing type can flow *)
  | Physical_eq  (** [==]/[!=] outside the allowlist *)
  | Wall_clock  (** ambient host time ([Unix.gettimeofday], [Sys.time], ...) *)
  | Ambient_rng  (** global-state randomness ([Random.self_init], [Random.int], ...) *)
  | Marshal_obj  (** [Marshal.*] / [Obj.*] *)
  | Float_format  (** float-to-text formatting inside digest/trace/wire code *)
  | Catch_all  (** [try ... with _ ->] that can swallow nondet-validation failures *)
  | Dispatch_catch_all
      (** unguarded [_] case in a protocol-message dispatch match, where a
          newly added constructor would be silently dropped *)
  | Tainted_sink
      (** wire-decoded data reaches a state-mutation sink without crossing a
          cryptographic sanitizer (the trustlint pass, see {!Taint}) *)

val rule_name : rule -> string
val rule_of_name : string -> rule option
val all_rules : rule list

type t = {
  rule : rule;
  file : string;  (** repo-root-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  snippet : string;  (** the offending source line, trimmed *)
  message : string;
  origin : (int * int) option;
      (** for [Tainted_sink]: (line, col) of the source call the taint
          originates from; [None] for the syntactic rules *)
}

val compare : t -> t -> int
(** Order by file, then line, then column, then rule name. *)

val to_json : t -> string
(** One self-contained JSON object, no trailing newline. *)

val to_human : t -> string
