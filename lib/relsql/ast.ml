type column_type =
  | T_integer
  | T_real
  | T_text

type column_def = { col_name : string; col_type : column_type; col_pk : bool }

type expr =
  | Lit of Value.t
  | Col of string option * string  (** optional table qualifier *)
  | Binop of string * expr * expr  (** = <> < <= > >= + - * / % || AND OR *)
  | Unop of string * expr  (** NOT, - *)
  | Is_null of expr * bool  (** IS NULL / IS NOT NULL *)
  | Like of expr * expr
  | Call of string * expr list  (** COUNT-star, SUM, RANDOM, NOW, ... *)
  | Star  (** only inside [COUNT] star *)

type order_item = { ord_expr : expr; ord_desc : bool }

type select = {
  sel_exprs : (expr * string option) list;  (** projection with optional aliases *)
  sel_from : (string * string option) list;  (** tables with optional aliases; empty for expression selects *)
  sel_where : expr option;
  sel_group : expr list;
  sel_order : order_item list;
  sel_limit : int option;
}

type stmt =
  | Create_table of { ct_name : string; ct_cols : column_def list; ct_if_not_exists : bool }
  | Drop_table of { dt_name : string; dt_if_exists : bool }
  | Create_index of {
      ci_name : string;
      ci_table : string;
      ci_col : string;
      ci_if_not_exists : bool;
    }
  | Drop_index of { di_name : string; di_if_exists : bool }
  | Insert of { ins_table : string; ins_cols : string list; ins_rows : expr list list }
  | Select of select
  | Update of { upd_table : string; upd_set : (string * expr) list; upd_where : expr option }
  | Delete of { del_table : string; del_where : expr option }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
