(* A replicated SQL store: the §3.2 state abstraction from the
   application developer's seat. The app speaks SQL; the middleware keeps
   the database file inside the replicated state region, journals it for
   ACID, and feeds NOW()/RANDOM() from the agreed pre-prepare data.

   Run with:  dune exec examples/sql_kvstore.exe *)

open Pbft

let schema =
  "CREATE TABLE kv (id INTEGER PRIMARY KEY, k TEXT, v TEXT, updated REAL);\n\
   CREATE INDEX kv_k ON kv(k)"

let () =
  let cfg = Config.default ~f:1 in
  let service = Relsql.Pbft_service.service ~schema () in
  let cluster = Cluster.create ~seed:3 ~num_clients:3 ~service cfg in
  let c = Cluster.client cluster 0 in
  let show label r = Printf.printf "%s:\n%s" label r in

  let steps =
    [
      "INSERT INTO kv (k, v, updated) VALUES ('lang', 'ocaml', NOW())";
      "INSERT INTO kv (k, v, updated) VALUES ('paper', 'pbft-practicality', NOW())";
      "INSERT INTO kv (k, v, updated) VALUES ('venue', 'middleware-2012', NOW())";
      "UPDATE kv SET v = 'OCaml 5', updated = NOW() WHERE k = 'lang'";
      "SELECT k, v FROM kv ORDER BY k";
      "SELECT COUNT(*) entries, MAX(updated) last_write FROM kv";
      "DELETE FROM kv WHERE k = 'venue'";
      "SELECT k FROM kv WHERE k LIKE 'p%'";
    ]
  in
  let rec run_steps = function
    | [] -> ()
    | sql :: rest ->
      Client.invoke c sql (fun r ->
          show sql (if String.length r > 0 && r.[0] = 'o' then r ^ "\n" else r);
          run_steps rest)
  in
  run_steps steps;
  Cluster.run cluster ~seconds:2.0;

  (* All four replicas hold byte-identical state: compare their state
     region digests. *)
  let digests =
    Array.map
      (fun r ->
        let pages = Replica.pages r in
        let tree = Statemgr.Merkle.build pages in
        Util.Hexdump.short ~len:16 (Statemgr.Merkle.root tree))
      (Cluster.replicas cluster)
  in
  Array.iteri (fun i d -> Printf.printf "replica %d state digest: %s\n" i d) digests;
  assert (Array.for_all (String.equal digests.(0)) digests);
  print_endline "replicas agree bit-for-bit"
