(** PBFT protocol messages and their wire encodings.

    The set covers the original protocol (request, the three agreement
    phases, reply, checkpoint, view-change/new-view), state transfer, the
    session-key establishment that underlies MAC authenticators, and the
    paper's §3.1 dynamic-membership extension (two-phase Join with
    challenge–response, Leave). Encoded sizes are what the network model
    charges, so every field that exists on the PBFT wire exists here. *)

open Types

(** How a message is authenticated (§2.1): a public-key signature, or a
    vector of per-replica MACs (an authenticator). *)
type auth =
  | No_auth
  | Signed of string
  | Authenticated of Crypto.Authenticator.t

type request = {
  rq_client : client_id;
  rq_id : int;  (** per-client monotonically increasing request number *)
  rq_op : string;  (** opaque operation for the service upcall *)
  rq_readonly : bool;
  rq_timestamp : float;  (** primary-clock timestamp recorded per session (§3.1) *)
}

(** A pre-prepare entry: the full request inline, or — for big requests,
    whose body travelled client→replicas directly — just its digest. *)
type batch_item =
  | Full of request
  | Digest_of of { bd_client : client_id; bd_id : int; bd_digest : digest; bd_readonly : bool }

type prepared_info = {
  pi_view : view;
  pi_seq : seqno;
  pi_digest : digest;
  pi_batch : batch_item list;
}

type payload =
  | Request_msg of request
  | Pre_prepare of { pp_view : view; pp_seq : seqno; pp_batch : batch_item list; pp_nondet : string }
  | Prepare of { p_view : view; p_seq : seqno; p_digest : digest; p_replica : replica_id }
  | Commit of { c_view : view; c_seq : seqno; c_digest : digest; c_replica : replica_id }
  | Reply of {
      r_view : view;
      r_client : client_id;
      r_id : int;
      r_replica : replica_id;
      r_result : string;
      r_tentative : bool;
      r_partial : string option;
          (** §3.3.1 extension: this replica's threshold partial signature
              over the reply, combinable by the client into a service
              signature no single replica could forge *)
    }
  | Checkpoint_msg of { ck_seq : seqno; ck_digest : digest; ck_replica : replica_id }
  | View_change of {
      vc_new_view : view;
      vc_stable_seq : seqno;
      vc_stable_digest : digest;
      vc_prepared : prepared_info list;
      vc_replica : replica_id;
    }
  | New_view of {
      nv_view : view;
      nv_view_change_digests : (replica_id * digest) list;
      nv_pre_prepares : (seqno * batch_item list) list;
    }
  | Session_key of { sk_sender : int; sk_target : replica_id; sk_key_box : string }
      (** sender (client or replica address) refreshes the MAC session key
          it shares with [sk_target]; the key travels "encrypted" under
          the target's public key (boxed). Periodic blind rebroadcast of
          these is what eventually unblocks a recovering replica (§2.3). *)
  | Join_request of { j_addr : int; j_pubkey : string; j_nonce : string }
  | Join_challenge of { jc_replica : replica_id; jc_addr : int; jc_nonce : string }
  | Join_response of { jr_addr : int; jr_proof : string; jr_pubkey : string; jr_idbuf : string }
  | Join_reply of { jl_replica : replica_id; jl_client : client_id; jl_ok : bool }
  | Leave_msg of { lv_client : client_id }
  | Fetch_meta of { fm_seq : seqno; fm_replica : replica_id }
      (** lagging replica asks for the page digests of a checkpoint *)
  | State_meta of { sm_seq : seqno; sm_replica : replica_id; sm_leaves : digest list }
  | Fetch_pages of { fp_seq : seqno; fp_pages : int list; fp_replica : replica_id }
  | State_pages of { sp_seq : seqno; sp_replica : replica_id; sp_pages : (int * string) list }
  | Fetch_body of { fb_digest : digest; fb_replica : replica_id }
      (** ask a peer for a big-request body known only by digest *)
  | Body of { b_request : request }
  | Fetch_entry of { fe_seq : seqno; fe_replica : replica_id }
      (** ask a peer to replay a logged pre-prepare (gap fill) *)
  | Entry of { en_seq : seqno; en_view : view; en_batch : batch_item list; en_nondet : string }
  | Status of { st_replica : replica_id; st_view : view; st_last_exec : seqno }
      (** periodic liveness gossip: peers that are ahead respond by
          retransmitting the protocol messages the sender is missing —
          the lost-message recovery of the PBFT implementation *)
  | Key_request of { kq_replica : replica_id }
      (** a restarted replica lost the session keys its peers chose for it
          (§2.3); this signed request asks each peer to re-send its
          {!Session_key} immediately instead of stalling until the next
          periodic rebroadcast *)

type t = { payload : payload; auth : auth }

val encode : t -> string

val decode : string -> t option
[@@trust.source "protocol message decoded off the wire"]
(** [None] on malformed input (treated as an authentication failure).
    A decoded message is *untrusted* until {!auth} has been verified —
    the trustlint source annotation enforces that no replica/client
    state is touched before the MAC/signature check. *)

val payload_bytes : payload -> string
(** Canonical encoding of the payload alone — the byte string that is
    signed / MACed and digested. Memoized by physical equality over the
    most recently encoded/decoded payloads. *)

val encode_wire : payload_bytes:string -> auth -> string
(** Assemble the wire form from already-encoded payload bytes plus the
    authenticator — the encode-once multicast path: serialize the payload
    once, then call this per wire (the bytes themselves can be reused
    across destinations when the auth is shared too). *)

val digest_of_payload : payload -> digest
val request_digest : request -> digest
(** Digest identifying a request (used in pre-prepares for big requests). *)

val batch_item_digest : batch_item -> digest
val batch_item_client_id : batch_item -> client_id * int
val batch_digest : batch_item list -> digest
(** Digest over the whole batch — what prepares and commits certify. *)

val label : payload -> string
(** Short kind name for traces ("pre-prepare", "join-request", ...). *)

val describe : payload -> string
(** One-line detail (view/seq numbers) for traces. *)
