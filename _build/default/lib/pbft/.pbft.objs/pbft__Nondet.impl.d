lib/pbft/nondet.ml: Config Float Option Util
