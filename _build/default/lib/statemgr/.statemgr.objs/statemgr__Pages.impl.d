lib/statemgr/pages.ml: Array Bytes Hashtbl List Option String
