type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printer --- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.0f / %.17g are deterministic functions of the double's bit pattern;
   %.17g round-trips every finite IEEE double exactly. *)
let print_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f [@detlint.allow float_format])
  else Buffer.add_string buf (Printf.sprintf "%.17g" f [@detlint.allow float_format])

let print v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> print_num buf f
    | Str s -> escape_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let pretty v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Num _ | Str _) as leaf -> Buffer.add_string buf (print leaf)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (depth + 1);
          go (depth + 1) item)
        items;
      Buffer.add_char buf '\n';
      indent depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          indent (depth + 1);
          escape_string buf k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char buf '\n';
      indent depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* --- parser --- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st ("expected " ^ word)

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> begin
      st.pos <- st.pos + 1;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if st.pos + 4 >= String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src (st.pos + 1) 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code ->
          utf8_of_code buf code;
          st.pos <- st.pos + 4
        | None -> fail st "bad \\u escape")
      | Some c -> fail st (Printf.sprintf "bad escape \\%C" c)
      | None -> fail st "truncated escape");
      st.pos <- st.pos + 1;
      go ()
    end
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields (f :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev (f :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing content";
  v

(* --- accessors --- *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> raise Not_found)
  | _ -> raise (Parse_error ("not an object looking up " ^ key))

let member_opt key v = match member key v with v -> Some v | exception Not_found -> None

let to_string_exn = function Str s -> s | _ -> raise (Parse_error "expected string")
let to_float_exn = function Num f -> f | _ -> raise (Parse_error "expected number")
let to_int_exn v = int_of_float (to_float_exn v)
let to_bool_exn = function Bool b -> b | _ -> raise (Parse_error "expected bool")

let of_bytes b = Str (Util.Hexdump.of_string b)

let bytes_exn v =
  match Util.Hexdump.to_string (to_string_exn v) with
  | b -> b
  | exception Invalid_argument _ -> raise (Parse_error "expected hex-armoured bytes")
