open Types

(* The whole store serializes as one canonical sorted structure re-written
   on every mutation: small, simple, and exactly as deterministic as the
   rest of the execution path. The image lives behind a fixed-width
   length header, mirroring the membership partition. *)

type t = {
  pages : Statemgr.Pages.t;
  base : int;
  capacity : int;
  mutable table : (client_id * string * string) list;  (** sorted *)
}

let pages_needed = 8

let encode table =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.list w
        (fun w (c, k, v) ->
          Util.Codec.W.varint w c;
          Util.Codec.W.lstring w k;
          Util.Codec.W.lstring w v)
        table)
    ()

let decode image =
  Util.Codec.decode
    (fun r ->
      Util.Codec.R.list r (fun r ->
          let c = Util.Codec.R.varint r in
          let k = Util.Codec.R.lstring r in
          let v = Util.Codec.R.lstring r in
          (c, k, v)))
    image

let load t =
  let hdr = Statemgr.Pages.read t.pages ~pos:t.base ~len:8 in
  match int_of_string_opt (String.trim hdr) with
  | Some len when len > 0 -> begin
    match decode (Statemgr.Pages.read t.pages ~pos:(t.base + 8) ~len) with
    | table -> t.table <- table
    | exception Util.Codec.R.Truncated -> t.table <- []
  end
  | Some _ | None -> t.table <- []

let store t =
  let image = encode t.table in
  let total = 8 + String.length image in
  if total > t.capacity then failwith "Session_state: partition full";
  Statemgr.Pages.notify_modify t.pages ~pos:t.base ~len:total;
  Statemgr.Pages.write t.pages ~pos:t.base (Printf.sprintf "%07d " (String.length image));
  Statemgr.Pages.write t.pages ~pos:(t.base + 8) image

let create pages ~first_page ~pages:npages =
  let page_size = Statemgr.Pages.page_size pages in
  let t =
    { pages; base = first_page * page_size; capacity = npages * page_size; table = [] }
  in
  load t;
  t

let get t ~client ~key =
  (* Re-read through the region so external rewrites (state transfer)
     are always visible. *)
  load t;
  List.find_map
    (fun (c, k, v) -> if c = client && String.equal k key then Some v else None)
    t.table

(* Same order polymorphic compare produced on (int, string, string):
   client id first, then key, then value. *)
let cmp_entry (c1, k1, v1) (c2, k2, v2) =
  let c = Int.compare c1 c2 in
  if c <> 0 then c
  else
    let c = String.compare k1 k2 in
    if c <> 0 then c else String.compare v1 v2

let set t ~client ~key value =
  load t;
  let rest = List.filter (fun (c, k, _) -> not (c = client && String.equal k key)) t.table in
  t.table <- List.sort cmp_entry ((client, key, value) :: rest);
  store t

let remove t ~client ~key =
  load t;
  t.table <- List.filter (fun (c, k, _) -> not (c = client && String.equal k key)) t.table;
  store t

let end_session t ~client =
  load t;
  t.table <- List.filter (fun (c, _, _) -> c <> client) t.table;
  store t

let session_keys t ~client =
  load t;
  List.filter_map (fun (c, k, _) -> if c = client then Some k else None) t.table

let sessions t =
  load t;
  List.sort_uniq Int.compare (List.map (fun (c, _, _) -> c) t.table)
