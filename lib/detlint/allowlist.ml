type entry = {
  al_rule : string;
  al_path : string;
  al_why : string;
  al_line : int;
  mutable al_used : bool;
}

type t = entry list

exception Malformed of string

let empty = []

let is_space c = c = ' ' || c = '\t'

let split_fields line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let rec word i = if i < n && not (is_space line.[i]) then word (i + 1) else i in
  let s0 = skip 0 in
  let e0 = word s0 in
  let s1 = skip e0 in
  let e1 = word s1 in
  let s2 = skip e1 in
  if e0 = s0 || e1 = s1 then None
  else Some (String.sub line s0 (e0 - s0), String.sub line s1 (e1 - s1), String.sub line s2 (n - s2))

let parse_line ~line_no line =
  let body =
    match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line
  in
  if String.trim body = "" then None
  else
    match split_fields body with
    | None ->
      raise
        (Malformed
           (Printf.sprintf "detlint.allow:%d: expected '<rule> <path> <justification>'" line_no))
    | Some (rule, path, why) ->
      if Finding.rule_of_name rule = None then
        raise (Malformed (Printf.sprintf "detlint.allow:%d: unknown rule %S" line_no rule));
      if String.trim why = "" then
        raise
          (Malformed
             (Printf.sprintf "detlint.allow:%d: entry for %s %s has no justification" line_no
                rule path));
      Some { al_rule = rule; al_path = path; al_why = String.trim why; al_line = line_no; al_used = false }

let of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> parse_line ~line_no:(i + 1) line)
  |> List.filter_map Fun.id

let load path = of_string (In_channel.with_open_bin path In_channel.input_all)

let suppresses t (f : Finding.t) =
  match
    List.find_opt
      (fun e -> String.equal e.al_rule (Finding.rule_name f.rule) && String.equal e.al_path f.file)
      t
  with
  | Some e ->
    e.al_used <- true;
    true
  | None -> false

let stale t = List.filter (fun e -> not e.al_used) t
