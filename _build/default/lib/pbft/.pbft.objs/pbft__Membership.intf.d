lib/pbft/membership.mli: Types
