(** A PBFT client.

    Implements the client side of the protocol: request transmission to
    the primary (or multicast for big and read-only requests), reply
    quorum collection — f+1 matching stable replies, or 2f+1 matching
    tentative replies when the tentative-execution optimization is in
    play — retransmission to all replicas on timeout, MAC session-key
    establishment with periodic blind rebroadcast (§2.3), and the
    two-phase dynamic Join / Leave of §3.1.

    A client has at most one outstanding request (the PBFT rule that
    makes batching capture cross-client parallelism). *)

open Types

type t

val create :
  cfg:Config.t ->
  costs:Costmodel.t ->
  engine:Simnet.Engine.t ->
  net:Simnet.Net.t ->
  addr:int ->
  signer:Crypto.Keychain.signer ->
  registry:Replica.registry ->
  ?threshold_public:Crypto.Threshold.public ->
  ?client_id:client_id ->
  unit ->
  t
(** [client_id] is required for static-membership deployments; dynamic
    clients acquire one by {!join}. *)

val addr : t -> int
val client_id : t -> client_id option
val verifier_string : t -> string
(** Wire form of this client's public key (for the static table). *)

val session_key_for : t -> replica_id -> Crypto.Mac.key
(** The MAC key this client chose for the given replica (created on
    demand); static-mode setup installs these into replicas directly. *)

val announce_session_keys : t -> unit
(** Send Session_key messages to every replica now (also runs
    periodically in MAC mode). *)

val join : t -> idbuf:string -> (client_id option -> unit) -> unit
(** Dynamic two-phase join; the callback receives the assigned client id,
    or [None] if the service denied or timed out the join. *)

val leave : t -> unit

val invoke : t -> ?readonly:bool -> string -> (string -> unit) -> unit
(** Submit one operation; the callback fires with the accepted result.
    Raises [Failure] if a request is already outstanding or the client
    has no identity yet. *)

val invoke_certified : t -> ?readonly:bool -> string -> (string -> string option -> unit) -> unit
(** Like {!invoke}, but when the deployment carries a threshold service
    key (§3.3.1) the callback also receives the combined reply
    certificate — verifiable offline with {!Certificate.verify}. *)

val invoke_attested :
  t -> ?readonly:bool -> string -> (rq_id:int -> string -> string option -> unit) -> unit
(** {!invoke_certified} plus the request id the call was assigned —
    everything a cross-shard coordinator must forward for another
    replica group to verify the vote ({!Certificate.verify} binds
    (client, rq_id, result)). *)

val completed : t -> int

val tentative_completed : t -> int
(** Of {!completed}, how many were accepted on a 2f+1 tentative-reply
    quorum rather than an f+1 stable one — the read-mix benchmark's
    tentative-vs-stable split. *)

val retransmissions : t -> int
val latency_stats : t -> Util.Stats.t
val shutdown : t -> unit
