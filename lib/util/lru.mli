(** Bounded least-recently-used map with O(1) find/put/remove/evict.

    Built for per-client caches that must survive 100k churning sessions
    without growing without bound: the reply caches in the replica and
    the webgate front door, and any other hot-path structure where a
    linear scan would show up at open-loop load. No iteration is exposed
    (a traversal order over a hash table is not deterministic); callers
    needing canonical order keep their own sorted structure. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup that refreshes the entry's recency. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Lookup without touching recency. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ?on_evict:('k -> 'v -> unit) -> ('k, 'v) t -> 'k -> 'v -> unit
[@@trust.sink "bounded-cache insert (reply caches, session records)"]
(** Insert or replace, refreshing recency. When the table is full and
    the key is new, the least-recently-used entry is evicted first and
    [on_evict] (default: ignore) observes it. *)

val remove : ('k, 'v) t -> 'k -> unit

val evict_lru : ('k, 'v) t -> ('k * 'v) option
(** Force out the coldest entry (counted as an eviction). *)

val evictions : ('k, 'v) t -> int
(** Entries displaced by capacity pressure since creation — the counter
    overload reports surface. [remove] does not count. *)

val lru : ('k, 'v) t -> 'k option
(** Coldest key, if any (for tests and debugging). *)

val mru : ('k, 'v) t -> 'k option
