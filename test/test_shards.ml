(* Tests for the sharded deployment: partitioning, statement routing,
   the BFT 2PC wrapper, the shard-aware router, and the qcheck
   serial-equivalence property. *)

let qcheck = QCheck_alcotest.to_alcotest

module Shard = Relsql.Shard
module Twopc = Relsql.Twopc
module Shards = Harness.Shards

let topo2 = Shard.topology ~shards:2 [ { Shard.sr_table = "accounts"; sr_column = "id" } ]
let topo4 = Shard.topology ~shards:4 [ { Shard.sr_table = "accounts"; sr_column = "id" } ]

(* --- partitioning --- *)

let test_hash_determinism () =
  let topo2' = Shard.topology ~shards:2 [ { Shard.sr_table = "accounts"; sr_column = "id" } ] in
  for id = 1 to 200 do
    Alcotest.(check int) "stable across topologies" (Shard.shard_of_int topo2 id)
      (Shard.shard_of_int topo2' id);
    let s = Shard.shard_of_int topo4 id in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4)
  done;
  (* Integral reals coerce to the integer hash: `id = 5` ≡ `id = 5.0`. *)
  Alcotest.(check int) "real/int coercion"
    (Shard.shard_of_value topo4 (Relsql.Value.Int 5))
    (Shard.shard_of_value topo4 (Relsql.Value.Real 5.0))

let test_hash_distribution () =
  let counts = Array.make 4 0 in
  for id = 1 to 512 do
    let s = Shard.shard_of_int topo4 id in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      if c < 64 then Alcotest.failf "shard %d owns only %d of 512 rows" s c)
    counts

(* --- statement splitting --- *)

let test_split_statements () =
  Alcotest.(check int) "two pieces" 2 (List.length (Shard.split_statements "SELECT 1; SELECT 2"));
  Alcotest.(check int) "trailing semicolon" 1 (List.length (Shard.split_statements "SELECT 1;"));
  Alcotest.(check int) "semicolon in string" 1
    (List.length (Shard.split_statements "INSERT INTO t (a) VALUES ('x;y')"));
  Alcotest.(check int) "escaped quote" 1
    (List.length (Shard.split_statements "INSERT INTO t (a) VALUES ('it''s; fine')"));
  Alcotest.(check int) "line comment hides semicolon" 1
    (List.length (Shard.split_statements "SELECT 1 -- not; split\n"));
  Alcotest.(check int) "block comment hides semicolon" 1
    (List.length (Shard.split_statements "SELECT /* a;b */ 1"))

(* --- routing --- *)

let shard_of k = Shard.shard_of_int topo2 k

let key_for topo2 shard =
  let rec find id = if Shard.shard_of_int topo2 id = shard then id else find (id + 1) in
  find 1

let test_classify () =
  let k0 = key_for topo2 0 and k1 = key_for topo2 1 in
  (match Shard.classify topo2 (Printf.sprintf "SELECT bal FROM accounts WHERE id = %d" k0) with
  | Shard.Single s -> Alcotest.(check int) "pinned select" (shard_of k0) s
  | Shard.Cross _ -> Alcotest.fail "pinned select classified cross");
  (match
     Shard.classify topo2
       (Printf.sprintf
          "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE accounts SET bal = bal + 1 \
           WHERE id = %d"
          k0 k1)
   with
  | Shard.Cross [ 0; 1 ] -> ()
  | r -> Alcotest.failf "transfer route: %s" (Shard.route_key r));
  (match Shard.classify topo2 "SELECT id FROM accounts" with
  | Shard.Cross [ 0; 1 ] -> ()
  | r -> Alcotest.failf "scatter select route: %s" (Shard.route_key r));
  (match Shard.classify topo2 "CREATE TABLE t (a INTEGER)" with
  | Shard.Cross [ 0; 1 ] -> ()
  | r -> Alcotest.failf "ddl route: %s" (Shard.route_key r));
  (match Shard.classify topo2 "not sql at all" with
  | Shard.Single 0 -> ()
  | r -> Alcotest.failf "unparseable route: %s" (Shard.route_key r));
  Alcotest.(check string) "route_key single" "1" (Shard.route_key (Shard.Single 1));
  Alcotest.(check string) "route_key cross" "0,3" (Shard.route_key (Shard.Cross [ 0; 3 ]))

let test_plan () =
  let k0 = key_for topo2 0 and k1 = key_for topo2 1 in
  let sql =
    Printf.sprintf
      "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE accounts SET bal = bal + 1 WHERE \
       id = %d"
      k0 k1
  in
  match Shard.plan topo2 sql with
  | [ (0, s0); (1, s1) ] ->
    Alcotest.(check bool) "shard 0 piece mentions its key" true
      (Shard.classify topo2 s0 = Shard.Single 0);
    Alcotest.(check bool) "shard 1 piece mentions its key" true
      (Shard.classify topo2 s1 = Shard.Single 1)
  | l -> Alcotest.failf "plan shape: %d entries" (List.length l)

(* --- 2PC op codec --- *)

let test_twopc_codec () =
  let ops =
    [
      Twopc.Prepare { tx = 42; deadline = 17.5; shards = [ 0; 2; 3 ]; script = "SELECT 1" };
      Twopc.Commit
        {
          tx = 42;
          votes =
            [
              { Twopc.v_shard = 0; v_client = 3; v_rq_id = 9; v_result = "2pc-prepared:42:ok:1";
                v_cert = "CERT" };
              { Twopc.v_shard = 2; v_client = 1; v_rq_id = 4; v_result = "2pc-prepared:42:ok:2";
                v_cert = "" };
            ];
        };
      Twopc.Abort { tx = 7; reason = "timeout" };
    ]
  in
  List.iter
    (fun op ->
      let wire = Twopc.encode_op op in
      Alcotest.(check bool) "magic recognized" true (Twopc.is_twopc_op wire);
      match Twopc.decode_op wire with
      | Some op' -> Alcotest.(check bool) "roundtrip" true (op = op')
      | None -> Alcotest.fail "decode failed")
    ops;
  Alcotest.(check bool) "garbage not 2pc" false (Twopc.is_twopc_op "SELECT 1");
  Alcotest.(check bool) "garbage decode" true (Twopc.decode_op "X2P1garbage" = None);
  Alcotest.(check bool) "truncated decode" true
    (Twopc.decode_op (String.sub (Twopc.encode_op (List.hd ops)) 0 8) = None)

(* --- deployment helpers --- *)

let small_spec ?(shards = 2) ?(certs = false) () =
  {
    (Shards.default_spec ~shards ()) with
    rows = 32;
    sessions = 8;
    certs;
    warmup = 0.2;
    duration = 0.5;
  }

(* --- 2PC abort restores state via COW undo --- *)

let test_abort_restores_state () =
  let d = Shards.build (small_spec ()) in
  Shards.run_for d 0.2;
  let k1 = Shards.key_on_shard d 1 in
  let bal () = Shards.rpc d (Printf.sprintf "SELECT bal FROM accounts WHERE id = %d" k1) in
  let before = bal () in
  let aborts0 = Twopc.aborts () in
  let r = Shards.router d in
  let xa0 = Webgate.Router.cross_aborts r in
  (* Shard 1's piece succeeds and prepares; shard 0's piece (unlisted
     table routes to shard 0) errors and votes abort — shard 1 must roll
     back its applied update. *)
  let doomed =
    Shards.rpc d
      (Printf.sprintf
         "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE nosuch SET a = 1" k1)
  in
  Alcotest.(check bool) "doomed reply is an abort" true
    (String.length doomed >= 17 && String.equal (String.sub doomed 0 17) "error:2pc-aborted");
  Shards.run_for d 0.5;
  Alcotest.(check string) "balance restored" before (bal ());
  Alcotest.(check bool) "undo restore counted" true (Twopc.aborts () > aborts0);
  Alcotest.(check bool) "router abort counted" true (Webgate.Router.cross_aborts r > xa0);
  (* The shard is fully released: a fresh cross-shard transfer commits. *)
  let k0 = Shards.key_on_shard d 0 in
  let recovery =
    Shards.rpc d
      (Printf.sprintf
         "UPDATE accounts SET bal = bal - 2 WHERE id = %d; UPDATE accounts SET bal = bal + 2 \
          WHERE id = %d"
         k0 k1)
  in
  Alcotest.(check bool) "recovery commits" true
    (String.length recovery >= 3 && String.equal (String.sub recovery 0 3) "s0=")

(* --- reply cache keyed on (route, id) --- *)

let test_reply_cache_route_keyed () =
  let d = Shards.build (small_spec ()) in
  Shards.run_for d 0.2;
  let engine = Shards.engine d in
  let net = Shards.edge d in
  let r = Shards.router d in
  let k0 = Shards.key_on_shard d 0 and k1 = Shards.key_on_shard d 1 in
  let addr = 98_765 in
  let last = ref None in
  Simnet.Net.register net addr (fun ~src:_ wire ->
      match Webgate.Frontdoor.decode_reply wire with
      | Some (Webgate.Frontdoor.Done, _, _, res) -> last := Some res
      | Some _ | None -> ());
  let ask op =
    last := None;
    let frame = Webgate.Frontdoor.encode_request ~session:7 ~req_id:1 ~op in
    Simnet.Net.send net ~label:"t" ~src:addr ~dst:Webgate.Frontdoor.frontdoor_addr frame;
    let deadline = Simnet.Engine.now engine +. 5.0 in
    while Option.is_none !last && Simnet.Engine.now engine < deadline do
      Shards.run_for d 0.05
    done;
    match !last with Some x -> x | None -> Alcotest.fail "no reply"
  in
  let single = Printf.sprintf "UPDATE accounts SET bal = bal + 1 WHERE id = %d" k0 in
  let first = ask single in
  let hits0 = Webgate.Router.reply_cache_hits r in
  (* Identical retransmission: served from the cache, not re-executed. *)
  let again = ask single in
  Alcotest.(check string) "retransmit replayed" first again;
  Alcotest.(check bool) "cache hit counted" true (Webgate.Router.reply_cache_hits r > hits0);
  (* Same request id, different route: the stale single-shard reply must
     NOT satisfy a cross-shard request. *)
  let cross =
    Printf.sprintf
      "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE accounts SET bal = bal + 1 WHERE \
       id = %d"
      k0 k1
  in
  let crossed = ask cross in
  Alcotest.(check bool) "route change bypasses cache" false (String.equal crossed first);
  Alcotest.(check bool) "cross reply committed" true
    (String.length crossed >= 3 && String.equal (String.sub crossed 0 3) "s0=")

(* --- serial-equivalence property ---

   Any interleaving of single- and cross-shard transactions accepted by
   the deployment yields per-shard Merkle roots identical to a serial
   reference execution of the same stream against bare wrapped service
   instances (one per shard, no PBFT, no router). *)

let ref_verify ~shard:_ ~client:_ ~rq_id:_ ~result:_ ~cert:_ = true

type refshard = { rs_exec : op:string -> string; rs_pages : Statemgr.Pages.t }

let make_reference topo rows =
  let svc shard =
    Twopc.wrap ~verify:ref_verify
      (Relsql.Pbft_service.service ~app_pages:Shards.service_app_pages
         ~schema:Shards.accounts_schema
         ~init:(Shards.init_sql topo ~shard ~rows) ())
  in
  let ts = ref 0.0 in
  Array.init (Shard.shards topo) (fun shard ->
      let s = svc shard in
      let pages =
        Statemgr.Pages.create ~page_size:s.Pbft.Service.page_size
          ~num_pages:(Shards.service_first_page + s.Pbft.Service.app_pages) ()
      in
      let inst = s.Pbft.Service.make pages ~first_page:Shards.service_first_page in
      let exec ~op =
        ts := !ts +. 1.0;
        fst (inst.Pbft.Service.execute ~op ~client:0 ~timestamp:!ts ~nondet:"" ~readonly:false)
      in
      { rs_exec = exec; rs_pages = pages })

(* Drive one op through the reference exactly as the router would:
   single-shard ops pass through; cross-shard ops prepare every involved
   shard, then commit iff every vote carries the prepared prefix, else
   abort everywhere. *)
let reference_apply topo refs tx op =
  match Shard.classify topo op with
  | Shard.Single s -> ignore (refs.(s).rs_exec ~op : string)
  | Shard.Cross shards ->
    incr tx;
    let plan = Shard.plan topo op in
    let votes =
      List.map
        (fun (shard, script) ->
          let reply =
            refs.(shard).rs_exec
              ~op:(Twopc.encode_op (Twopc.Prepare { tx = !tx; deadline = 1e18; shards; script }))
          in
          (shard, reply))
        plan
    in
    let prefix = Twopc.prepared_prefix !tx in
    let all_prepared =
      List.for_all
        (fun (_, reply) ->
          String.length reply >= String.length prefix
          && String.equal (String.sub reply 0 (String.length prefix)) prefix)
        votes
    in
    if all_prepared then
      let vs =
        List.map
          (fun (shard, reply) ->
            { Twopc.v_shard = shard; v_client = 0; v_rq_id = 0; v_result = reply; v_cert = "" })
          votes
      in
      List.iter
        (fun (shard, _) ->
          ignore (refs.(shard).rs_exec ~op:(Twopc.encode_op (Twopc.Commit { tx = !tx; votes = vs }))
                  : string))
        votes
    else
      List.iter
        (fun (shard, _) ->
          ignore
            (refs.(shard).rs_exec ~op:(Twopc.encode_op (Twopc.Abort { tx = !tx; reason = "vote" }))
             : string))
        votes

let op_gen rows =
  let open QCheck.Gen in
  let key = map (fun k -> 1 + (abs k mod rows)) small_int in
  frequency
    [
      (4, map (fun k -> Printf.sprintf "SELECT bal FROM accounts WHERE id = %d" k) key);
      (4, map (fun k -> Printf.sprintf "UPDATE accounts SET bal = bal + 1 WHERE id = %d" k) key);
      ( 3,
        map2
          (fun k1 k2 ->
            Printf.sprintf
              "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE accounts SET bal = bal + \
               1 WHERE id = %d"
              k1 k2)
          key key );
      (1, return "SELECT id FROM accounts");
      ( 1,
        map
          (fun k ->
            Printf.sprintf "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE nosuch SET a \
                            = 1" k)
          key );
      ( 1,
        map
          (fun k -> Printf.sprintf "INSERT INTO accounts (id, bal, pad) VALUES (%d, 1, 'n')" (100 + k))
          key );
    ]

let prop_serial_equivalence =
  QCheck.Test.make ~name:"interleavings match serial reference roots" ~count:8
    (QCheck.make
       ~print:(fun ops -> String.concat "\n" ops)
       QCheck.Gen.(list_size (int_range 1 20) (op_gen 32)))
    (fun ops ->
      let spec = small_spec () in
      let d = Shards.build spec in
      Shards.run_for d 0.2;
      List.iter (fun op -> ignore (Shards.rpc d op : string)) ops;
      Shards.run_for d 1.0;
      let topo = Shards.topology d in
      let refs = make_reference topo spec.Shards.rows in
      let tx = ref 0 in
      List.iter (fun op -> reference_apply topo refs tx op) ops;
      let ok = ref true in
      for shard = 0 to 1 do
        let deployed = Shards.region_root d ~shard ~replica:0 in
        let reference = Shards.pages_region_root refs.(shard).rs_pages in
        if not (String.equal deployed reference) then ok := false
      done;
      !ok)

(* --- scaling smoke + Byzantine coordinator --- *)

let test_two_shard_smoke () =
  let outcome, _d = Shards.run { (small_spec ()) with sessions = 16; duration = 1.0 } in
  Alcotest.(check bool) "completed work" true (outcome.Shards.so_completed > 0);
  Alcotest.(check int) "no errors" 0 outcome.Shards.so_errors;
  Array.iter
    (fun tps -> Alcotest.(check bool) "both shards active" true (tps > 0.0))
    outcome.Shards.so_shard_tps

let test_cross_shard_commits () =
  let outcome, _d =
    Shards.run { (small_spec ()) with sessions = 8; duration = 1.0; cross_fraction = 0.3 }
  in
  Alcotest.(check bool) "cross commits happened" true (outcome.Shards.so_cross_commits > 0);
  Alcotest.(check int) "no errors" 0 outcome.Shards.so_errors

let test_byzantine_coordinator () =
  let r = Shards.byzantine_coordinator () in
  (match r.Shards.bz_failures with
  | [] -> ()
  | fs -> Alcotest.failf "scenario failures:\n%s" (String.concat "\n" fs));
  Alcotest.(check int) "no commit during fault" 0 r.Shards.bz_cross_commits;
  Alcotest.(check bool) "balances held" true r.Shards.bz_balances_held;
  Alcotest.(check bool) "states agree" true r.Shards.bz_states_agree

let () =
  Alcotest.run "shards"
    [
      ( "partitioning",
        [
          Alcotest.test_case "hash determinism" `Quick test_hash_determinism;
          Alcotest.test_case "hash distribution" `Quick test_hash_distribution;
          Alcotest.test_case "statement splitting" `Quick test_split_statements;
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "per-shard plan" `Quick test_plan;
        ] );
      ("twopc", [ Alcotest.test_case "op codec roundtrip" `Quick test_twopc_codec ]);
      ( "router",
        [
          Alcotest.test_case "abort restores state (COW undo)" `Slow test_abort_restores_state;
          Alcotest.test_case "reply cache keyed on (route, id)" `Slow
            test_reply_cache_route_keyed;
          Alcotest.test_case "two-shard smoke" `Slow test_two_shard_smoke;
          Alcotest.test_case "cross-shard commits" `Slow test_cross_shard_commits;
          qcheck prop_serial_equivalence;
        ] );
      ( "faults",
        [
          Alcotest.test_case "Byzantine coordinator mid-2PC" `Slow test_byzantine_coordinator;
        ] );
    ]
