(* Unit and property tests for the foundation utilities. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- Codec --- *)

let roundtrip enc dec v = Util.Codec.decode dec (Util.Codec.encode enc v)

let test_codec_primitives () =
  let module W = Util.Codec.W in
  let module R = Util.Codec.R in
  Alcotest.(check int) "u8" 255 (roundtrip W.u8 R.u8 255);
  Alcotest.(check int) "u16" 65535 (roundtrip W.u16 R.u16 65535);
  Alcotest.(check int) "u32" 0xDEADBEEF (roundtrip W.u32 R.u32 0xDEADBEEF);
  Alcotest.(check int64) "u64" Int64.min_int (roundtrip W.u64 R.u64 Int64.min_int);
  Alcotest.(check (float 1e-12)) "f64" 3.14159 (roundtrip W.f64 R.f64 3.14159);
  Alcotest.(check bool) "bool true" true (roundtrip W.bool R.bool true);
  Alcotest.(check bool) "bool false" false (roundtrip W.bool R.bool false);
  Alcotest.(check string) "lstring" "hello" (roundtrip W.lstring R.lstring "hello");
  Alcotest.(check string) "lstring empty" "" (roundtrip W.lstring R.lstring "")

let test_codec_varint_boundaries () =
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "varint %d" v)
        v
        (roundtrip Util.Codec.W.varint Util.Codec.R.varint v))
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 20; 1 lsl 35; max_int ]

let test_codec_varint_negative () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Codec.W.varint: negative")
    (fun () -> ignore (Util.Codec.encode Util.Codec.W.varint (-1)))

let test_codec_list_option () =
  let enc w l = Util.Codec.W.list w Util.Codec.W.varint l in
  let dec r = Util.Codec.R.list r Util.Codec.R.varint in
  Alcotest.(check (list int)) "list" [ 1; 2; 3; 500 ] (roundtrip enc dec [ 1; 2; 3; 500 ]);
  Alcotest.(check (list int)) "empty list" [] (roundtrip enc dec []);
  let enco w o = Util.Codec.W.option w Util.Codec.W.lstring o in
  let deco r = Util.Codec.R.option r Util.Codec.R.lstring in
  Alcotest.(check (option string)) "some" (Some "x") (roundtrip enco deco (Some "x"));
  Alcotest.(check (option string)) "none" None (roundtrip enco deco None)

let test_codec_truncation () =
  let full = Util.Codec.encode Util.Codec.W.lstring "hello world" in
  let cut = String.sub full 0 (String.length full - 3) in
  Alcotest.check_raises "truncated" Util.Codec.R.Truncated (fun () ->
      ignore (Util.Codec.decode Util.Codec.R.lstring cut))

let test_codec_trailing_garbage () =
  let full = Util.Codec.encode Util.Codec.W.varint 7 ^ "garbage" in
  Alcotest.check_raises "trailing" Util.Codec.R.Truncated (fun () ->
      ignore (Util.Codec.decode Util.Codec.R.varint full))

(* The Bytes writer must be byte-for-byte compatible with the original
   Buffer-based writer it replaced; the reference implementation lives
   here, frozen. *)
module RefW = struct
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u16 b v =
    u8 b v;
    u8 b (v lsr 8)

  let u32 b v =
    u16 b v;
    u16 b (v lsr 16)

  let u64 b v = Buffer.add_int64_le b v
  let f64 b v = u64 b (Int64.bits_of_float v)

  let rec varint b v =
    if v < 0x80 then u8 b v
    else begin
      u8 b (0x80 lor (v land 0x7f));
      varint b (v lsr 7)
    end

  let bool b v = u8 b (if v then 1 else 0)

  let lstring b s =
    varint b (String.length s);
    Buffer.add_string b s
end

type wop =
  | OU8 of int
  | OU16 of int
  | OU32 of int
  | OU64 of int64
  | OF64 of float
  | OVarint of int
  | OBool of bool
  | OStr of string
  | OLStr of string

let apply_w w = function
  | OU8 v -> Util.Codec.W.u8 w v
  | OU16 v -> Util.Codec.W.u16 w v
  | OU32 v -> Util.Codec.W.u32 w v
  | OU64 v -> Util.Codec.W.u64 w v
  | OF64 v -> Util.Codec.W.f64 w v
  | OVarint v -> Util.Codec.W.varint w v
  | OBool v -> Util.Codec.W.bool w v
  | OStr s -> Util.Codec.W.string w s
  | OLStr s -> Util.Codec.W.lstring w s

let apply_ref b = function
  | OU8 v -> RefW.u8 b v
  | OU16 v -> RefW.u16 b v
  | OU32 v -> RefW.u32 b v
  | OU64 v -> RefW.u64 b v
  | OF64 v -> RefW.f64 b v
  | OVarint v -> RefW.varint b v
  | OBool v -> RefW.bool b v
  | OStr s -> Buffer.add_string b s
  | OLStr s -> RefW.lstring b s

let gen_wop =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> OU8 v) (int_bound 255);
        map (fun v -> OU16 v) (int_bound 65535);
        map (fun v -> OU32 v) (int_bound 0xffffff);
        map (fun v -> OU64 v) ui64;
        map (fun v -> OF64 v) float;
        map (fun v -> OVarint (v land max_int)) int;
        map (fun v -> OBool v) bool;
        map (fun s -> OStr s) string;
        map (fun s -> OLStr s) string;
      ])

let prop_writer_matches_reference =
  QCheck.Test.make ~name:"Bytes writer = reference Buffer writer" ~count:1000
    (QCheck.make QCheck.Gen.(list_size (int_bound 40) gen_wop))
    (fun ops ->
      let w = Util.Codec.W.create ~capacity:1 () in
      let b = Buffer.create 16 in
      List.iter (apply_w w) ops;
      List.iter (apply_ref b) ops;
      String.equal (Util.Codec.W.contents w) (Buffer.contents b)
      && Util.Codec.W.length w = Buffer.length b)

let test_codec_varint_overflow_guard () =
  let dec s = Util.Codec.R.varint (Util.Codec.R.of_string s) in
  (* max_int is the longest legal varint: 8 continuation bytes + 0x3f. *)
  Alcotest.(check int) "max_int decodes" max_int (dec "\xff\xff\xff\xff\xff\xff\xff\xff\x3f");
  (* 9th byte above 0x3f would wrap into the sign bit. *)
  Alcotest.check_raises "9th byte too large" Util.Codec.R.Truncated (fun () ->
      ignore (dec "\xff\xff\xff\xff\xff\xff\xff\xff\x40"));
  (* Overlong encodings can neither loop nor go negative. *)
  Alcotest.check_raises "10-byte varint" Util.Codec.R.Truncated (fun () ->
      ignore (dec "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01"));
  Alcotest.check_raises "all continuations" Util.Codec.R.Truncated (fun () ->
      ignore (dec (String.make 12 '\xff')))

let prop_varint_decode_never_negative =
  QCheck.Test.make ~name:"varint decode never returns negative" ~count:1000
    QCheck.(string_of_size (QCheck.Gen.int_bound 12))
    (fun s ->
      match Util.Codec.R.varint (Util.Codec.R.of_string s) with
      | v -> v >= 0
      | exception Util.Codec.R.Truncated -> true)

let prop_codec_string_roundtrip =
  QCheck.Test.make ~name:"codec lstring roundtrip" ~count:500 QCheck.string (fun s ->
      roundtrip Util.Codec.W.lstring Util.Codec.R.lstring s = s)

let prop_codec_varint_roundtrip =
  QCheck.Test.make ~name:"codec varint roundtrip" ~count:500
    QCheck.(map abs int)
    (fun v -> roundtrip Util.Codec.W.varint Util.Codec.R.varint v = v)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next_int64 a) (Util.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Util.Rng.create 7 in
  let child = Util.Rng.split a in
  let differs = ref false in
  for _ = 1 to 20 do
    if Util.Rng.next_int64 a <> Util.Rng.next_int64 child then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_int_bounds () =
  let rng = Util.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_in () =
  let rng = Util.Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_rng_float_bounds () =
  let rng = Util.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Util.Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_bernoulli () =
  let rng = Util.Rng.create 4 in
  Alcotest.(check bool) "p=0 never" false
    (List.exists (fun _ -> Util.Rng.bernoulli rng 0.0) (List.init 100 Fun.id));
  Alcotest.(check bool) "p=1 always" true
    (List.for_all (fun _ -> Util.Rng.bernoulli rng 1.0) (List.init 100 Fun.id));
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Util.Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. 100_000.0 in
  if Float.abs (freq -. 0.3) > 0.02 then Alcotest.failf "bernoulli biased: %f" freq

let test_rng_exponential_mean () =
  let rng = Util.Rng.create 5 in
  let s = Util.Stats.create () in
  for _ = 1 to 50_000 do
    Util.Stats.add s (Util.Rng.exponential rng ~mean:3.0)
  done;
  if Float.abs (Util.Stats.mean s -. 3.0) > 0.1 then
    Alcotest.failf "exponential mean off: %f" (Util.Stats.mean s)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 6 in
  let s = Util.Stats.create () in
  for _ = 1 to 50_000 do
    Util.Stats.add s (Util.Rng.gaussian rng ~mean:10.0 ~stdev:2.0)
  done;
  if Float.abs (Util.Stats.mean s -. 10.0) > 0.1 then Alcotest.fail "gaussian mean off";
  if Float.abs (Util.Stats.stdev s -. 2.0) > 0.1 then Alcotest.fail "gaussian stdev off"

let test_rng_shuffle_permutation () =
  let rng = Util.Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Heap --- *)

let test_heap_sorted_drain () =
  let h = Util.Heap.create () in
  let rng = Util.Rng.create 9 in
  let n = 500 in
  for i = 1 to n do
    Util.Heap.push h (Util.Rng.float rng 100.0) i
  done;
  let prev = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Util.Heap.pop h with
    | None -> ()
    | Some (p, _) ->
      if p < !prev then Alcotest.fail "heap order violated";
      prev := p;
      incr count;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all drained" n !count

let test_heap_fifo_ties () =
  let h = Util.Heap.create () in
  for i = 1 to 10 do
    Util.Heap.push h 1.0 i
  done;
  for i = 1 to 10 do
    match Util.Heap.pop h with
    | Some (_, v) -> Alcotest.(check int) "tie order" i v
    | None -> Alcotest.fail "empty"
  done

let test_heap_peek () =
  let h = Util.Heap.create () in
  Alcotest.(check bool) "empty" true (Util.Heap.peek h = None);
  Util.Heap.push h 5.0 "b";
  Util.Heap.push h 1.0 "a";
  (match Util.Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "peek prio" 1.0 p;
    Alcotest.(check string) "peek val" "a" v
  | None -> Alcotest.fail "nonempty");
  Alcotest.(check int) "size" 2 (Util.Heap.size h)

(* --- Stats --- *)

let test_stats_known_values () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Util.Stats.mean s);
  Alcotest.(check (float 1e-3)) "stdev" 2.138 (Util.Stats.stdev s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Util.Stats.min s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Util.Stats.max s);
  Alcotest.(check int) "count" 8 (Util.Stats.count s)

let test_stats_percentiles () =
  let s = Util.Stats.create () in
  for i = 1 to 100 do
    Util.Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "p50" 50.0 (Util.Stats.percentile s 50.0);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Util.Stats.percentile s 99.0);
  Alcotest.(check (float 0.0)) "p100" 100.0 (Util.Stats.percentile s 100.0)

let test_stats_empty () =
  let s = Util.Stats.create () in
  Alcotest.(check (float 0.0)) "mean 0" 0.0 (Util.Stats.mean s);
  Alcotest.(check (float 0.0)) "stdev 0" 0.0 (Util.Stats.stdev s);
  Alcotest.check_raises "percentile raises" (Invalid_argument "Stats.percentile: empty")
    (fun () -> ignore (Util.Stats.percentile s 50.0))

let test_stats_latency_percentiles () =
  let s = Util.Stats.create () in
  for i = 1 to 100 do
    Util.Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "p50" 50.0 (Util.Stats.p50 s);
  Alcotest.(check (float 0.0)) "p95" 95.0 (Util.Stats.p95 s);
  Alcotest.(check (float 0.0)) "p99" 99.0 (Util.Stats.p99 s);
  (* Unlike [percentile], the shorthands are total: empty stats read 0. *)
  let e = Util.Stats.create () in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 (Util.Stats.p50 e);
  Alcotest.(check (float 0.0)) "empty p95" 0.0 (Util.Stats.p95 e);
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Util.Stats.p99 e)

(* --- Hexdump --- *)

let test_hex_known () =
  Alcotest.(check string) "encode" "00ff10" (Util.Hexdump.of_string "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Util.Hexdump.to_string "00ff10");
  Alcotest.(check string) "decode upper" "\xab" (Util.Hexdump.to_string "AB")

let test_hex_errors () =
  Alcotest.check_raises "odd" (Invalid_argument "Hexdump.to_string: odd length") (fun () ->
      ignore (Util.Hexdump.to_string "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexdump.to_string: bad digit") (fun () ->
      ignore (Util.Hexdump.to_string "zz"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:500 QCheck.string (fun s ->
      Util.Hexdump.to_string (Util.Hexdump.of_string s) = s)

(* --- Lru --- *)

let test_lru_basic () =
  let l = Util.Lru.create ~capacity:2 in
  Util.Lru.put l "a" 1;
  Util.Lru.put l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Util.Lru.find l "a");
  Alcotest.(check int) "length" 2 (Util.Lru.length l);
  Alcotest.(check int) "capacity" 2 (Util.Lru.capacity l);
  Alcotest.(check bool) "mem" true (Util.Lru.mem l "b");
  Util.Lru.put l "a" 10;
  Alcotest.(check (option int)) "replace" (Some 10) (Util.Lru.peek l "a");
  Alcotest.(check int) "replace keeps length" 2 (Util.Lru.length l);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Lru.create: capacity must be at least 1") (fun () ->
      ignore (Util.Lru.create ~capacity:0 : (int, int) Util.Lru.t))

let test_lru_eviction_order () =
  let l = Util.Lru.create ~capacity:3 in
  Util.Lru.put l 1 "one";
  Util.Lru.put l 2 "two";
  Util.Lru.put l 3 "three";
  (* Touch 1 so 2 becomes the coldest entry. *)
  ignore (Util.Lru.find l 1);
  Alcotest.(check (option int)) "lru" (Some 2) (Util.Lru.lru l);
  Alcotest.(check (option int)) "mru" (Some 1) (Util.Lru.mru l);
  let evicted = ref [] in
  Util.Lru.put l 4 "four" ~on_evict:(fun k v -> evicted := (k, v) :: !evicted);
  Alcotest.(check (list (pair int string))) "2 displaced" [ (2, "two") ] !evicted;
  Alcotest.(check bool) "2 gone" false (Util.Lru.mem l 2);
  Alcotest.(check int) "one eviction" 1 (Util.Lru.evictions l)

let test_lru_peek_does_not_refresh () =
  let l = Util.Lru.create ~capacity:2 in
  Util.Lru.put l 1 ();
  Util.Lru.put l 2 ();
  (* peek must not promote 1, so it is still the one displaced. *)
  ignore (Util.Lru.peek l 1);
  Util.Lru.put l 3 ();
  Alcotest.(check bool) "1 evicted despite peek" false (Util.Lru.mem l 1);
  Alcotest.(check bool) "2 kept" true (Util.Lru.mem l 2)

let test_lru_remove_and_evict () =
  let l = Util.Lru.create ~capacity:4 in
  List.iter (fun k -> Util.Lru.put l k (k * k)) [ 1; 2; 3 ];
  Util.Lru.remove l 2;
  Alcotest.(check int) "length after remove" 2 (Util.Lru.length l);
  Alcotest.(check int) "remove does not count" 0 (Util.Lru.evictions l);
  Alcotest.(check (option (pair int int))) "forced evict" (Some (1, 1)) (Util.Lru.evict_lru l);
  Alcotest.(check int) "forced evict counts" 1 (Util.Lru.evictions l);
  Alcotest.(check (option (pair int int))) "last" (Some (3, 9)) (Util.Lru.evict_lru l);
  Alcotest.(check (option (pair int int))) "empty" None (Util.Lru.evict_lru l)

let () =
  Alcotest.run "util"
    [
      ( "codec",
        [
          Alcotest.test_case "primitives" `Quick test_codec_primitives;
          Alcotest.test_case "varint boundaries" `Quick test_codec_varint_boundaries;
          Alcotest.test_case "varint negative" `Quick test_codec_varint_negative;
          Alcotest.test_case "list & option" `Quick test_codec_list_option;
          Alcotest.test_case "truncation" `Quick test_codec_truncation;
          Alcotest.test_case "trailing garbage" `Quick test_codec_trailing_garbage;
          Alcotest.test_case "varint overflow guard" `Quick test_codec_varint_overflow_guard;
          qcheck prop_codec_string_roundtrip;
          qcheck prop_codec_varint_roundtrip;
          qcheck prop_writer_matches_reference;
          qcheck prop_varint_decode_never_negative;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorted drain" `Quick test_heap_sorted_drain;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek & size" `Quick test_heap_peek;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "latency shorthands" `Quick test_stats_latency_percentiles;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "known vectors" `Quick test_hex_known;
          Alcotest.test_case "errors" `Quick test_hex_errors;
          qcheck prop_hex_roundtrip;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "peek does not refresh" `Quick test_lru_peek_does_not_refresh;
          Alcotest.test_case "remove & forced evict" `Quick test_lru_remove_and_evict;
        ] );
    ]
