open Parsetree

(* ------------------------------------------------------------------ *)
(* Path classification.                                                 *)

let replay_critical_dirs = [ "pbft"; "simnet"; "simdisk"; "statemgr"; "relsql"; "crypto" ]

let is_replay_critical rel =
  match String.split_on_char '/' rel with
  | "lib" :: d :: _ -> List.mem d replay_critical_dirs
  | _ -> false

(* Modules where bare polymorphic compare/min/max is flagged even if the
   float/bytes/arrow type heuristic below does not trip: they handle
   digests, MACs, and sequence bookkeeping whose comparisons must stay
   monomorphic. *)
let strict_poly_modules =
  [
    "lib/pbft/replica.ml";
    "lib/pbft/client.ml";
    "lib/pbft/log.ml";
    "lib/pbft/membership.ml";
    "lib/pbft/message.ml";
    "lib/pbft/session_state.ml";
    "lib/crypto/sha256.ml";
    "lib/crypto/hmac.ml";
    "lib/crypto/mac.ml";
    "lib/crypto/authenticator.ml";
    "lib/crypto/keychain.ml";
  ]

(* Digest/trace/wire code paths: float-to-text formatting here feeds
   hashes, the simulation trace, or bytes on the (simulated) wire, where
   textual float representation choices become protocol. *)
let float_format_modules =
  [
    "lib/pbft/message.ml";
    "lib/util/codec.ml";
    "lib/util/hexdump.ml";
    "lib/simnet/trace.ml";
    "lib/statemgr/merkle.ml";
    "lib/statemgr/checkpoint.ml";
    "lib/crypto/sha256.ml";
    "lib/crypto/hmac.ml";
    "lib/crypto/mac.ml";
    "lib/crypto/authenticator.ml";
    "lib/crypto/keychain.ml";
    "lib/relsql/value.ml";
    "lib/webgate/json.ml";
    "lib/harness/hostbench.ml";
  ]

(* Protocol-dispatch constructor names: the [Pbft.Message] payload
   constructors plus the [Relsql.Twopc] operation constructors. A match
   that handles three or more of these is a message-dispatch match; an
   unguarded [_] case there silently drops any constructor added later
   (dispatch_catch_all). *)
let dispatch_constructors =
  [
    "Request_msg"; "Pre_prepare"; "Prepare"; "Commit"; "Reply"; "Checkpoint_msg"; "View_change";
    "New_view"; "Session_key"; "Join_request"; "Join_challenge"; "Join_response"; "Join_reply";
    "Leave_msg"; "Fetch_meta"; "State_meta"; "Fetch_pages"; "State_pages"; "Fetch_body"; "Body";
    "Fetch_entry"; "Entry"; "Status"; "Abort";
  ]

(* The rule is scoped to the libraries that dispatch protocol messages;
   elsewhere a trailing wildcard over a Message value is how
   uninterested consumers (harness reporting, the gateway's
   frame filter) are *supposed* to look. *)
let dispatch_dirs = [ "pbft"; "relsql" ]

let in_dispatch_scope rel =
  match String.split_on_char '/' rel with
  | "lib" :: d :: _ -> List.mem d dispatch_dirs
  | _ -> false

(* Identifier components that suggest a digest/key/MAC-like value flows
   through a polymorphic [=]: "batch_digest" splits to {batch, digest}. *)
let hazard_components =
  [
    "digest";
    "mac";
    "hmac";
    "tag";
    "auth";
    "root";
    "hash";
    "key";
    "pubkey";
    "nonce";
    "challenge";
    "proof";
    "sig";
    "signature";
  ]

(* ------------------------------------------------------------------ *)
(* Small syntactic helpers.                                             *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

(* Does a core type mention float, bytes, or an arrow anywhere? Used to
   decide whether a module's own data is unsafe under polymorphic
   comparison (floats: NaN; bytes: mutation-dependent; arrows: raises). *)
let rec type_mentions_hazard (t : core_type) =
  match t.ptyp_desc with
  | Ptyp_arrow _ -> true
  | Ptyp_constr (lid, args) -> (
    match flatten_lid lid.txt with
    | [ "float" ] | [ "bytes" ] | [ "Bytes"; "t" ] -> true
    | _ -> List.exists type_mentions_hazard args)
  | Ptyp_tuple ts -> List.exists type_mentions_hazard ts
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> type_mentions_hazard t
  | _ -> false

let declaration_is_hazardous (d : type_declaration) =
  match d.ptype_kind with
  | Ptype_record labels -> List.exists (fun l -> type_mentions_hazard l.pld_type) labels
  | Ptype_variant ctors ->
    List.exists
      (fun c ->
        match c.pcd_args with
        | Pcstr_tuple ts -> List.exists type_mentions_hazard ts
        | Pcstr_record labels -> List.exists (fun l -> type_mentions_hazard l.pld_type) labels)
      ctors
  | _ -> false

let declares_hazardous_type (str : structure) =
  let found = ref false in
  let type_declaration it (d : type_declaration) =
    if declaration_is_hazardous d then found := true;
    Ast_iterator.default_iterator.type_declaration it d
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  it.structure it str;
  !found

(* Format-string scanner: a '%' conversion ending in a float specifier.
   Conservative and purely lexical; only consulted in float_format
   modules, where any float conversion deserves a look. *)
let has_float_conversion s =
  let n = String.length s in
  let rec scan i = if i >= n then false else if s.[i] = '%' then skip (i + 1) else scan (i + 1)
  and skip i =
    if i >= n then false
    else
      match s.[i] with
      | '%' -> scan (i + 1)
      | '-' | '+' | ' ' | '#' | '.' | '*' | '0' .. '9' -> skip (i + 1)
      | 'f' | 'e' | 'E' | 'g' | 'G' | 'h' | 'H' | 'F' -> true
      | _ -> scan (i + 1)
  in
  scan 0

let mentions_hazard_component name =
  List.exists (fun c -> List.mem c hazard_components) (String.split_on_char '_' (String.lowercase_ascii name))

(* Collect identifier-ish names appearing in an operand of [=]. *)
let rec expr_names (e : expression) acc =
  match e.pexp_desc with
  | Pexp_ident lid -> flatten_lid lid.txt @ acc
  | Pexp_field (e, lid) -> expr_names e (flatten_lid lid.txt @ acc)
  | Pexp_apply (f, args) ->
    expr_names f (List.fold_left (fun acc (_, a) -> expr_names a acc) acc args)
  | Pexp_tuple es | Pexp_array es -> List.fold_left (fun acc e -> expr_names e acc) acc es
  | Pexp_construct (_, Some e) | Pexp_constraint (e, _) -> expr_names e acc
  | _ -> acc

let is_string_literal (e : expression) =
  match e.pexp_desc with Pexp_constant (Pconst_string _) -> true | _ -> false

(* [String.length x = 8] style comparisons are int comparisons even when
   [x] is named like a digest; exempt [*.length] applications. *)
let is_length_application (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) -> (
    match List.rev (flatten_lid lid.txt) with "length" :: _ -> true | _ -> false)
  | _ -> false

let operand_suspicious e =
  is_string_literal e || List.exists mentions_hazard_component (expr_names e [])

(* ------------------------------------------------------------------ *)
(* Suppression attributes.                                              *)

let allow_attr_rules (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      if not (String.equal a.attr_name.txt "detlint.allow") then []
      else
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
          let rec names e =
            match e.pexp_desc with
            | Pexp_ident { txt = Longident.Lident s; _ } -> [ s ]
            | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
            | Pexp_apply (f, args) ->
              names f @ List.concat_map (fun (_, a) -> names a) args
            | Pexp_tuple es -> List.concat_map names es
            | _ -> []
          in
          names e
        | _ -> [])
    attrs

(* ------------------------------------------------------------------ *)
(* The pass.                                                            *)

type ctx = {
  rel : string;
  lines : string array;
  replay : bool;
  strict_poly : bool;
  float_fmt : bool;
  dispatch : bool;
  mutable allows : string list list;  (* stack of active allow-sets *)
  mutable out : Finding.t list;
}

let snippet_at ctx line =
  if line >= 1 && line <= Array.length ctx.lines then String.trim ctx.lines.(line - 1) else ""

let emit ctx rule (loc : Location.t) message =
  let name = Finding.rule_name rule in
  let suppressed = List.exists (List.mem name) ctx.allows in
  if not suppressed then begin
    let p = loc.loc_start in
    let line = p.pos_lnum and col = p.pos_cnum - p.pos_bol in
    ctx.out <-
      { Finding.rule; file = ctx.rel; line; col; snippet = snippet_at ctx line; message;
        origin = None }
      :: ctx.out
  end

let with_allows ctx rules f =
  if rules = [] then f ()
  else begin
    ctx.allows <- rules :: ctx.allows;
    Fun.protect ~finally:(fun () -> ctx.allows <- List.tl ctx.allows) f
  end

let hashtbl_traversals = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let check_ident ctx (lid : Longident.t) (loc : Location.t) =
  match flatten_lid lid with
  | ([ "Hashtbl"; f ] | [ "Stdlib"; "Hashtbl"; f ]) when List.mem f hashtbl_traversals ->
    if ctx.replay then
      emit ctx Finding.Hashtbl_order loc
        (Printf.sprintf
           "Hashtbl.%s visits bindings in bucket order; use Util.Sorted_tbl (or annotate an \
            order-insensitive site with [@detlint.allow hashtbl_order])"
           f)
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
    if ctx.replay then
      emit ctx Finding.Poly_compare loc
        "Hashtbl.hash on an abstract value depends on representation; hash a canonical encoding \
         instead"
  | ([ "compare" ] | [ "min" ] | [ "max" ] | [ "Stdlib"; "compare" ] | [ "Stdlib"; "min" ]
    | [ "Stdlib"; "max" ])
    when ctx.replay && ctx.strict_poly ->
    emit ctx Finding.Poly_compare loc
      "polymorphic compare/min/max in a module with float/bytes/function-bearing types; use \
       Int.compare, Float.compare, String.compare, ... or an explicit comparator"
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime" | "mktime") ] | [ "Sys"; "time" ]
    ->
    emit ctx Finding.Wall_clock loc
      "ambient host time breaks replay; thread virtual time in, or annotate host-side \
       measurement code with [@detlint.allow wall_clock]"
  | [ "Random"; ("State" | "Seed") ] -> ()
  | [ "Random"; "State"; "make_self_init" ] ->
    emit ctx Finding.Ambient_rng loc "Random.State.make_self_init seeds from the environment"
  | "Random" :: [ _ ] ->
    emit ctx Finding.Ambient_rng loc
      "global Random state is shared and unseedable per-run; use Util.Rng (or Random.State \
       threaded explicitly)"
  | ("Marshal" | "Obj") :: _ :: _ ->
    emit ctx Finding.Marshal_obj loc
      "Marshal/Obj bypass abstraction and make byte layout protocol; use Util.Codec"
  | [ "string_of_float" ] when ctx.float_fmt ->
    emit ctx Finding.Float_format loc
      "float-to-text in a digest/trace/wire path; format decimals explicitly or keep floats \
       binary (Util.Codec.W.f64)"
  | _ -> ()

let check_expr ctx (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> check_ident ctx lid.txt lid.loc
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ }; _ }, [ _; _ ])
    ->
    emit ctx Finding.Physical_eq e.pexp_loc
      (Printf.sprintf
         "physical equality (%s) depends on sharing, not value; use a structural or monomorphic \
          equality, or annotate an intentional identity check with [@detlint.allow physical_eq]"
         op)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
        [ (_, a); (_, b) ] )
    when ctx.replay
         && (not (is_length_application a || is_length_application b))
         && (operand_suspicious a || operand_suspicious b) ->
    emit ctx Finding.Poly_compare e.pexp_loc
      (Printf.sprintf
         "polymorphic %s on a digest/key/MAC-like value; use String.equal / Bytes.equal / \
          Int.equal" op)
  | Pexp_constant (Pconst_string (s, _, _)) when ctx.float_fmt && has_float_conversion s ->
    emit ctx Finding.Float_format e.pexp_loc
      "float conversion in a format string inside a digest/trace/wire path; decimal rendering \
       choices here become protocol — annotate deliberate, pinned formats with [@detlint.allow \
       float_format]"
  | (Pexp_match (_, cases) | Pexp_function cases) when ctx.dispatch ->
    (* Message-dispatch exhaustiveness: a match (or [function]) handling
       >= 3 protocol constructors must enumerate what it ignores instead
       of hiding it behind [_], so adding a constructor is a compile
       error here, not a silently dropped message. *)
    let rec heads (p : pattern) acc =
      match p.ppat_desc with
      | Ppat_construct (lid, _) -> (
        match List.rev (flatten_lid lid.txt) with h :: _ -> h :: acc | [] -> acc)
      | Ppat_or (a, b) -> heads a (heads b acc)
      | Ppat_alias (p, _) | Ppat_constraint (p, _) -> heads p acc
      | _ -> acc
    in
    let rec wild (p : pattern) =
      match p.ppat_desc with
      | Ppat_any -> true
      | Ppat_or (a, b) -> wild a || wild b
      | Ppat_alias (p, _) | Ppat_constraint (p, _) -> wild p
      | _ -> false
    in
    let dispatch_heads =
      List.concat_map (fun (c : case) -> heads c.pc_lhs []) cases
      |> List.filter (fun h -> List.mem h dispatch_constructors)
      |> List.sort_uniq String.compare
    in
    if List.length dispatch_heads >= 3 then
      List.iter
        (fun (c : case) ->
          let handler_allows = allow_attr_rules c.pc_rhs.pexp_attributes in
          if
            c.pc_guard = None && wild c.pc_lhs
            && not
                 (List.mem (Finding.rule_name Finding.Dispatch_catch_all) handler_allows)
          then
            emit ctx Finding.Dispatch_catch_all c.pc_lhs.ppat_loc
              "unguarded _ in a protocol-message dispatch match silently drops any constructor \
               added later; enumerate the ignored constructors (| A _ | B _ -> ()) so new \
               messages fail to compile until routed")
        cases
  | Pexp_try (_, cases) ->
    List.iter
      (fun (c : case) ->
        let rec wild (p : pattern) =
          match p.ppat_desc with
          | Ppat_any -> true
          | Ppat_or (a, b) -> wild a || wild b
          | Ppat_alias (p, _) -> wild p
          | _ -> false
        in
        let handler_allows = allow_attr_rules c.pc_rhs.pexp_attributes in
        if wild c.pc_lhs && not (List.mem (Finding.rule_name Finding.Catch_all) handler_allows)
        then
          emit ctx Finding.Catch_all c.pc_lhs.ppat_loc
            "catch-all exception handler can swallow non-determinism validation failures; match \
             the specific exceptions this site expects")
      cases
  | _ -> ()

let lint_structure ~rel ~lines (str : structure) =
  let ctx =
    {
      rel;
      lines;
      replay = is_replay_critical rel;
      strict_poly = List.mem rel strict_poly_modules || declares_hazardous_type str;
      float_fmt = List.mem rel float_format_modules;
      dispatch = in_dispatch_scope rel;
      allows = [];
      out = [];
    }
  in
  let expr it (e : expression) =
    with_allows ctx (allow_attr_rules e.pexp_attributes) (fun () ->
        check_expr ctx e;
        Ast_iterator.default_iterator.expr it e)
  in
  let value_binding it (vb : value_binding) =
    with_allows ctx (allow_attr_rules vb.pvb_attributes) (fun () ->
        Ast_iterator.default_iterator.value_binding it vb)
  in
  let it = { Ast_iterator.default_iterator with expr; value_binding } in
  it.structure it str;
  List.sort_uniq Finding.compare ctx.out
