(** Per-node virtual CPU.

    Work items (message verification, request execution, signing) are
    charged a virtual cost and run to completion on one of [k] virtual
    cores (default 1). Dispatch picks the earliest-free core, lowest
    index on ties, so multi-core schedules are as deterministic as the
    single-core FIFO they generalize. Throughput experiments are
    bottleneck-CPU-bound exactly as on the paper's testbed: when the
    primary's CPU saturates, queueing delay — not network latency —
    dominates.

    With [cores = 1] the model is bit-identical to the historical
    single-core implementation: same float arithmetic, same event times,
    so pinned trace digests survive the generalization. *)

type t

val create : ?cores:int -> Engine.t -> t
(** [cores] defaults to 1; raises [Invalid_argument] if < 1. *)

val cores : t -> int

val execute : t -> cost:float -> (unit -> unit) -> unit
(** [execute t ~cost f] enqueues a work item taking [cost] virtual
    seconds on the earliest-free core; [f] runs when the item completes.
    Zero-cost items still respect dispatch ordering behind queued work. *)

val execute_split : t -> costs:float list -> (unit -> unit) -> unit
(** [execute_split t ~costs f] charges each element of [costs] as an
    independent piece of work — MAC fan-out, per-leaf hashing — dispatched
    greedily across the cores in list order; [f] runs once when the last
    piece finishes. On a single core this is serial execution of the sum;
    on [k] cores the pieces overlap. *)

val busy_until : t -> float
(** Time at which the last currently-queued work item drains (max over
    cores). *)

val utilization : t -> since:float -> float
(** Fraction of [since, now] × cores the CPU spent busy (for experiment
    reports). *)

val queue_length : t -> int

val peak_queue_length : t -> int
(** High-water mark of in-flight work items since creation — the backlog
    depth overload reports surface (receive-buffer pressure, §2.4). *)

val total_busy : t -> float
(** Cumulative busy core-seconds since creation. *)
