lib/relsql/ast.mli: Value
