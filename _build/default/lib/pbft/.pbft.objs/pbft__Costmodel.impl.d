lib/pbft/costmodel.ml: Config
