examples/sql_kvstore.ml: Array Client Cluster Config Pbft Printf Relsql Replica Statemgr String Util
