examples/web_voting.mli:
