open Types

type entry = {
  seq : seqno;
  mutable pp_view : view;
  mutable batch : Message.batch_item list option;
  mutable nondet : string;
  mutable batch_digest : digest;
  mutable prepares : (replica_id, unit) Hashtbl.t;
  mutable commits : (replica_id, unit) Hashtbl.t;
  mutable prepared : bool;
  mutable committed : bool;
  mutable executed : bool;
  mutable tentatively_executed : bool;
  mutable missing_bodies : digest list;
  mutable pending_replies : (Message.request * string * float) list;
      (** pipelined speculation: (request, result, exec timestamp) buffered
          until the commit certificate lands; always [] in serial mode *)
}

type cached_reply = {
  cr_id : int;
  cr_result : string;
  cr_view : view;
  cr_tentative : bool;
  cr_timestamp : float;
  cr_speculative : bool;
      (** cached by a speculative execution whose commit certificate has
          not landed yet — must never be resent to the client until the
          flush at commit flips it off *)
}

type t = {
  slots : (seqno, entry) Hashtbl.t;
  mutable low : seqno;
  replies : (client_id, cached_reply) Hashtbl.t;
}

let create () = { slots = Hashtbl.create 256; low = 0; replies = Hashtbl.create 64 }
let low_watermark t = t.low

let set_low_watermark t mark =
  t.low <- mark;
  List.iter
    (fun seq -> if seq <= mark then Hashtbl.remove t.slots seq)
    (Util.Sorted_tbl.keys t.slots)

let fresh_entry seq =
  {
    seq;
    pp_view = -1;
    batch = None;
    nondet = "";
    batch_digest = "";
    prepares = Hashtbl.create 8;
    commits = Hashtbl.create 8;
    prepared = false;
    committed = false;
    executed = false;
    tentatively_executed = false;
    missing_bodies = [];
    pending_replies = [];
  }

let entry t seq =
  match Hashtbl.find_opt t.slots seq with
  | Some e -> e
  | None ->
    let e = fresh_entry seq in
    Hashtbl.add t.slots seq e;
    e

let find t seq = Hashtbl.find_opt t.slots seq
let record_prepare e r = Hashtbl.replace e.prepares r ()
let record_commit e r = Hashtbl.replace e.commits r ()

(* A batch superseded by a later view's proposal takes its votes with it:
   they certified the old digest. *)
let reset_votes e =
  Hashtbl.reset e.prepares;
  Hashtbl.reset e.commits;
  e.prepared <- false;
  e.committed <- false
let prepare_count e = Hashtbl.length e.prepares
let commit_count e = Hashtbl.length e.commits

let entries_between t ~lo ~hi =
  List.filter_map
    (fun (seq, e) -> if seq > lo && seq <= hi then Some e else None)
    (Util.Sorted_tbl.bindings t.slots)

let prepared_above t seq =
  List.filter_map
    (fun (s, e) -> if s > seq && e.prepared then Some e else None)
    (Util.Sorted_tbl.bindings t.slots)

let cached_reply t c = Hashtbl.find_opt t.replies c
let cache_reply t c r = Hashtbl.replace t.replies c r
let drop_client t c = Hashtbl.remove t.replies c
