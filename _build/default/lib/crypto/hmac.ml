let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 b 0 (String.length key);
  Bytes.to_string b

let xor_with s c = String.map (fun x -> Char.chr (Char.code x lxor c)) s

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_with key 0x36 ^ msg) in
  Sha256.digest (xor_with key 0x5c ^ inner)

let verify ~key msg ~tag =
  let expected = mac ~key msg in
  (* Fold over all bytes rather than early-exit, mirroring constant-time
     comparison discipline. *)
  String.length expected = String.length tag
  &&
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
  !diff = 0
