(** Shamir secret sharing over a prime field, with optional Feldman
    verifiable-secret-sharing commitments.

    §3.3.1 of the paper proposes an (f+1, n) threshold signature scheme
    as the remedy for PBFT's weak support for strong cryptography (a
    Byzantine primary choosing "random" values); this module provides the
    secret-sharing layer under {!Threshold}. *)

type share = { index : int; value : Bignum.Nat.t }
(** Share [f(index)] of the dealt polynomial; indices are 1-based. *)

val split :
  Util.Rng.t -> field:Bignum.Nat.t -> threshold:int -> shares:int -> Bignum.Nat.t -> share list
(** [split rng ~field ~threshold ~shares secret] deals [shares] shares of
    [secret] such that any [threshold] of them reconstruct it and fewer
    reveal nothing. [field] must be a prime larger than [shares] and the
    secret. Raises [Invalid_argument] on bad parameters. *)

val combine : field:Bignum.Nat.t -> share list -> Bignum.Nat.t
(** Lagrange interpolation at zero. The list must contain at least
    [threshold] distinct shares; extra shares are harmless. *)

(** Feldman commitments: the dealer publishes [g^{a_j} mod p] for every
    polynomial coefficient; any holder can then check its share against
    the commitments without learning the polynomial. The group is the
    order-[q] subgroup of [Z_p*] with [p = 2q + 1]. *)
module Feldman : sig
  type group = { p : Bignum.Nat.t; q : Bignum.Nat.t; g : Bignum.Nat.t }

  val generate_group : Util.Rng.t -> bits:int -> group
  (** Finds a Sophie Germain pair (q, p = 2q+1) with [q] of [bits] bits and
      a generator of the order-q subgroup. Intended for modest sizes in
      tests; key generation is offline in the simulated deployment. *)

  type commitments = Bignum.Nat.t list

  val commit : group -> Bignum.Nat.t list -> commitments
  (** Commitments to the polynomial coefficients (constant term first). *)

  val verify_share : group -> commitments -> share -> bool
  (** Check [g^{share} = Π C_j^{index^j}]. *)
end
