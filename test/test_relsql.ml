(* Tests for the embedded relational engine: storage layers, SQL language
   behaviour, transactions and crash recovery. *)

open Relsql

let qcheck = QCheck_alcotest.to_alcotest

let fresh_db ?(acid = true) ?(seed = 1) () = Database.open_db (Vfs.in_memory ~acid ~seed ())

let exec db sql = Database.exec_exn db sql

let rows_as_strings (r : Database.result) =
  List.map (fun row -> String.concat "|" (List.map Value.to_string (Array.to_list row))) r.rows

let check_rows msg db sql expected =
  Alcotest.(check (list string)) msg expected (rows_as_strings (exec db sql))

let expect_error db sql =
  match (Database.exec db sql).Database.res with
  | Ok _ -> Alcotest.failf "expected error for: %s" sql
  | Error e -> e

(* --- lexer --- *)

let test_lexer_basic () =
  let toks = Lexer.tokenize "SELECT a, 'it''s' FROM t WHERE x >= 4.5 -- comment\n" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
  | Lexer.Ident "SELECT" :: Lexer.Ident "a" :: Lexer.Punct "," :: Lexer.String_lit s :: _ ->
    Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "unexpected tokens");
  Alcotest.check_raises "unterminated" (Lexer.Error "unterminated string literal") (fun () ->
      ignore (Lexer.tokenize "'oops"))

let test_lexer_operators () =
  let ops s = List.filter_map (function Lexer.Punct p -> Some p | _ -> None) (Lexer.tokenize s) in
  Alcotest.(check (list string)) "two-char ops" [ "<>"; "<="; ">="; "||"; "<>" ]
    (ops "<> <= >= || !=")

let test_lexer_block_comment () =
  let toks = Lexer.tokenize "SELECT /* a\n   multi-line\n   comment */ 1 /**/ + 2" in
  (* SELECT, 1, +, 2, Eof — both comments skipped. *)
  Alcotest.(check int) "comments skipped" 5 (List.length toks);
  (* '/' alone is still the division operator. *)
  let toks2 = Lexer.tokenize "4 / 2" in
  Alcotest.(check int) "division untouched" 4 (List.length toks2);
  Alcotest.check_raises "unterminated" (Lexer.Error "unterminated block comment") (fun () ->
      ignore (Lexer.tokenize "SELECT /* oops"))

(* --- parser --- *)

let test_parser_select () =
  match Parser.parse_one "SELECT a, b AS bee FROM t WHERE a = 1 ORDER BY b DESC LIMIT 3" with
  | Ast.Select s ->
    Alcotest.(check int) "projections" 2 (List.length s.Ast.sel_exprs);
    Alcotest.(check bool) "has where" true (s.Ast.sel_where <> None);
    Alcotest.(check int) "order items" 1 (List.length s.Ast.sel_order);
    Alcotest.(check (option int)) "limit" (Some 3) s.Ast.sel_limit
  | _ -> Alcotest.fail "not a select"

let test_parser_create () =
  match Parser.parse_one "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL)" with
  | Ast.Create_table { ct_cols; _ } ->
    Alcotest.(check int) "columns" 3 (List.length ct_cols);
    Alcotest.(check bool) "pk flag" true (List.hd ct_cols).Ast.col_pk
  | _ -> Alcotest.fail "not a create"

let test_parser_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error: %s" sql)
    [ "SELEC 1"; "SELECT FROM"; "INSERT t VALUES (1)"; "CREATE TABLE t"; "SELECT 1 WHERE" ]

let test_parser_multi_statement () =
  Alcotest.(check int) "two statements" 2 (List.length (Parser.parse "SELECT 1; SELECT 2;"))

let test_parser_precedence () =
  (* 1 + 2 * 3 = 7 and NOT binds looser than comparison *)
  let db = fresh_db () in
  check_rows "arith precedence" db "SELECT 1 + 2 * 3" [ "7" ];
  check_rows "unary minus" db "SELECT -(2) + 5" [ "3" ];
  check_rows "not" db "SELECT NOT 1 = 2" [ "1" ]

(* --- values --- *)

let test_value_compare () =
  let open Value in
  Alcotest.(check bool) "null smallest" true (compare_sql Null (Int (-100)) < 0);
  Alcotest.(check bool) "int vs real" true (compare_sql (Int 2) (Real 2.5) < 0);
  Alcotest.(check bool) "numeric equal" true (compare_sql (Int 2) (Real 2.0) = 0);
  Alcotest.(check bool) "numbers before text" true (compare_sql (Int 999) (Text "a") < 0)

let prop_key_encode_order =
  QCheck.Test.make ~name:"key_encode preserves int order" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let ka = Value.key_encode (Value.Int a) and kb = Value.key_encode (Value.Int b) in
      compare a b = compare ka kb)

let prop_value_codec_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrip" ~count:500
    QCheck.(oneof [ map (fun i -> Value.Int i) int;
                    map (fun f -> Value.Real f) float;
                    map (fun s -> Value.Text s) string;
                    always Value.Null ])
    (fun v ->
      let v' = Util.Codec.decode Value.decode (Util.Codec.encode Value.encode v) in
      match (v, v') with
      | Value.Real a, Value.Real b -> Float.equal a b
      | _ -> Value.equal v v')

(* --- btree --- *)

let with_tree f =
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let tree = Btree.create pager in
  let r = f pager tree in
  Pager.commit pager;
  r

let test_btree_basic () =
  with_tree (fun _ tree ->
      Btree.insert tree ~key:"b" ~value:"2";
      Btree.insert tree ~key:"a" ~value:"1";
      Btree.insert tree ~key:"c" ~value:"3";
      Alcotest.(check (option string)) "find a" (Some "1") (Btree.find tree "a");
      Alcotest.(check (option string)) "find missing" None (Btree.find tree "zz");
      Btree.insert tree ~key:"a" ~value:"1'";
      Alcotest.(check (option string)) "replace" (Some "1'") (Btree.find tree "a");
      Alcotest.(check bool) "delete" true (Btree.delete tree "b");
      Alcotest.(check bool) "delete missing" false (Btree.delete tree "b");
      Alcotest.(check int) "count" 2 (Btree.count tree))

let test_btree_many_and_order () =
  with_tree (fun _ tree ->
      let n = 2000 in
      for i = n downto 1 do
        Btree.insert tree ~key:(Printf.sprintf "k%06d" i) ~value:(string_of_int i)
      done;
      Alcotest.(check int) "count" n (Btree.count tree);
      let prev = ref "" in
      Btree.iter tree (fun k _ ->
          if String.compare k !prev <= 0 then Alcotest.fail "iteration out of order";
          prev := k;
          true);
      (* Range scan from the middle. *)
      let seen = ref 0 in
      Btree.iter tree ~from:"k001500" (fun _ _ ->
          incr seen;
          true);
      Alcotest.(check int) "range scan" 501 !seen)

let test_btree_iter_upto () =
  with_tree (fun _ tree ->
      for i = 1 to 300 do
        Btree.insert tree ~key:(Printf.sprintf "k%04d" i) ~value:""
      done;
      let seen = ref [] in
      Btree.iter tree ~from:"k0100" ~upto:"k0110" (fun k _ ->
          seen := k :: !seen;
          true);
      Alcotest.(check int) "inclusive window" 11 (List.length !seen);
      (match !seen with
      | last :: _ -> Alcotest.(check string) "upper bound inclusive" "k0110" last
      | [] -> Alcotest.fail "empty window");
      let n = ref 0 in
      Btree.iter tree ~upto:"k0005" (fun _ _ ->
          incr n;
          true);
      Alcotest.(check int) "upto from the start" 5 !n;
      (* A bound below every key visits nothing. *)
      Btree.iter tree ~upto:"a" (fun _ _ -> Alcotest.fail "visited past upto");
      (* Delete a whole leaf's worth of keys: iteration skips the
         lazily-emptied leaves without visiting stale entries. *)
      for i = 50 to 250 do
        ignore (Btree.delete tree (Printf.sprintf "k%04d" i))
      done;
      let m = ref 0 in
      Btree.iter tree ~from:"k0040" ~upto:"k0260" (fun _ _ ->
          incr m;
          true);
      Alcotest.(check int) "emptied range skipped" 20 !m)

let prop_btree_vs_map =
  QCheck.Test.make ~name:"btree matches Map reference" ~count:60
    QCheck.(small_list (pair (string_of_size (Gen.return 6)) (option (string_of_size (Gen.int_bound 200)))))
    (fun ops ->
      with_tree (fun _ tree ->
          let reference = Hashtbl.create 16 in
          List.iter
            (fun (k, op) ->
              match op with
              | Some v ->
                Btree.insert tree ~key:k ~value:v;
                Hashtbl.replace reference k v
              | None ->
                ignore (Btree.delete tree k);
                Hashtbl.remove reference k)
            ops;
          Hashtbl.fold (fun k v acc -> acc && Btree.find tree k = Some v) reference true
          && Btree.count tree = Hashtbl.length reference))

let test_btree_entry_too_large () =
  with_tree (fun _ tree ->
      Alcotest.check_raises "oversized entry"
        (Invalid_argument "Btree.insert: entry too large (no overflow pages)") (fun () ->
          Btree.insert tree ~key:"k" ~value:(String.make 4000 'x')))

let test_btree_persistence () =
  let vfs = Vfs.in_memory ~seed:1 () in
  let root =
    let pager = Pager.open_pager vfs in
    Pager.begin_txn pager;
    let tree = Btree.create pager in
    for i = 1 to 500 do
      Btree.insert tree ~key:(Printf.sprintf "%05d" i) ~value:(string_of_int (i * i))
    done;
    Pager.commit pager;
    Btree.root tree
  in
  (* Reopen through a fresh pager over the same file. *)
  let pager = Pager.open_pager vfs in
  let tree = Btree.open_tree pager ~root in
  Alcotest.(check (option string)) "survives reopen" (Some "144") (Btree.find tree "00012");
  Alcotest.(check int) "count survives" 500 (Btree.count tree)

(* --- pager transactions & crash recovery --- *)

let test_pager_rollback () =
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let page = Pager.allocate_page pager in
  Pager.write_page pager page (String.make Pager.page_size 'A');
  Pager.commit pager;
  Pager.begin_txn pager;
  Pager.write_page pager page (String.make Pager.page_size 'B');
  Alcotest.(check char) "visible in txn" 'B' (Pager.read_page pager page).[0];
  Pager.rollback pager;
  Alcotest.(check char) "rolled back" 'A' (Pager.read_page pager page).[0]

let test_pager_crash_recovery () =
  (* Simulate a crash mid-transaction on a disk-backed VFS: volatile
     writes vanish, the durable journal rolls the rest back. *)
  let disk = Simdisk.Disk.create () in
  let vfs = Vfs.on_disk disk ~name:"db" ~seed:1 in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let page = Pager.allocate_page pager in
  Pager.write_page pager page (String.make Pager.page_size 'A');
  Pager.commit pager;
  (* Start a transaction, modify, sync the journal mid-flight (as commit
     would), then crash before the commit completes. *)
  Pager.begin_txn pager;
  Pager.write_page pager page (String.make Pager.page_size 'B');
  (match vfs.Vfs.journal with Some j -> j.Vfs.sync () | None -> ());
  vfs.Vfs.main.sync ();
  (* CRASH before the journal reset: the commit never happened. *)
  Simdisk.Disk.crash disk;
  let vfs2 = Vfs.on_disk disk ~name:"db" ~seed:1 in
  let pager2 = Pager.open_pager vfs2 in
  Alcotest.(check char) "hot journal rolled back" 'A' (Pager.read_page pager2 page).[0]

let test_pager_freelist_reuse () =
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let a = Pager.allocate_page pager in
  let _b = Pager.allocate_page pager in
  Pager.free_page pager a;
  let c = Pager.allocate_page pager in
  Pager.commit pager;
  Alcotest.(check int) "freed page reused" a c

let journal_entries vfs =
  match vfs.Vfs.journal with
  | None -> 0
  | Some j ->
    if j.Vfs.size () < 4 then 0
    else begin
      let s = j.Vfs.read ~pos:0 ~len:4 in
      Char.code s.[0] lor (Char.code s.[1] lsl 8) lor (Char.code s.[2] lsl 16)
      lor (Char.code s.[3] lsl 24)
    end

let test_pager_touch_accounting () =
  (* Journaling an original image is pager bookkeeping, not an
     application touch: a transaction writing one committed page must
     report exactly that page as touched. *)
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let page = Pager.allocate_page pager in
  Pager.commit pager;
  ignore (Pager.take_pages_touched pager);
  Pager.begin_txn pager;
  Pager.write_page pager page (String.make Pager.page_size 'A');
  Alcotest.(check int) "journaling adds no touches" 1 (Pager.pages_touched pager);
  Pager.commit pager;
  (* No header fields changed, so commit writes no header image either. *)
  Alcotest.(check int) "count unchanged through commit" 1 (Pager.take_pages_touched pager)

let test_pager_header_write_deferred () =
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  Pager.begin_txn pager;
  let a = Pager.allocate_page pager in
  let b = Pager.allocate_page pager in
  Pager.write_page pager a (String.make Pager.page_size 'x');
  Pager.write_page pager b (String.make Pager.page_size 'y');
  (* Mid-transaction only the data pages were journaled: the header image
     is written (and its original journaled) once, at commit. *)
  Alcotest.(check int) "no header image mid-txn" 2 (journal_entries vfs);
  Pager.commit pager;
  let pager2 = Pager.open_pager vfs in
  Alcotest.(check int) "page count persisted at commit" (Pager.page_count pager)
    (Pager.page_count pager2)

let test_pager_rollback_restores_header () =
  (* With the header write deferred, a rollback before commit must still
     recover the pre-transaction header fields (from the untouched
     on-disk header). *)
  let vfs = Vfs.in_memory ~seed:1 () in
  let pager = Pager.open_pager vfs in
  let before = Pager.page_count pager in
  Pager.begin_txn pager;
  ignore (Pager.allocate_page pager);
  ignore (Pager.allocate_page pager);
  Pager.rollback pager;
  Alcotest.(check int) "page_count rolled back" before (Pager.page_count pager)

(* --- database: DDL & DML --- *)

let votes_db () =
  let db = fresh_db () in
  ignore (exec db Pbft_service.vote_schema);
  db

let test_create_insert_select () =
  let db = votes_db () in
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('v1', 'a', 1.0, 42)");
  check_rows "select all" db "SELECT voter, choice FROM votes" [ "v1|a" ];
  check_rows "select expr" db "SELECT nonce + 1 FROM votes" [ "43" ]

let test_insert_multi_row () =
  let db = votes_db () in
  ignore
    (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('a','x',0,0), ('b','y',0,0)");
  check_rows "count" db "SELECT COUNT(*) FROM votes" [ "2" ]

let test_autoincrement_pk () =
  let db = votes_db () in
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('a','x',0,0)");
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('b','y',0,0)");
  check_rows "ids" db "SELECT id FROM votes ORDER BY id" [ "1"; "2" ];
  ignore (exec db "INSERT INTO votes (id, voter, choice, ts, nonce) VALUES (100,'c','z',0,0)");
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('d','w',0,0)");
  check_rows "explicit then continue" db "SELECT MAX(id) FROM votes" [ "101" ]

let test_duplicate_pk_rejected () =
  let db = votes_db () in
  ignore (exec db "INSERT INTO votes (id, voter, choice, ts, nonce) VALUES (7,'a','x',0,0)");
  let e = expect_error db "INSERT INTO votes (id, voter, choice, ts, nonce) VALUES (7,'b','y',0,0)" in
  Alcotest.(check bool) "unique error" true
    (String.length e >= 6 && String.sub e 0 6 = "UNIQUE")

let test_update_delete () =
  let db = votes_db () in
  for i = 1 to 10 do
    ignore
      (exec db
         (Printf.sprintf "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('v%d','%s',0,0)" i
            (if i mod 2 = 0 then "even" else "odd")))
  done;
  let r = exec db "UPDATE votes SET choice = 'EVEN' WHERE choice = 'even'" in
  Alcotest.(check int) "updated" 5 r.Database.affected;
  check_rows "updated values" db "SELECT COUNT(*) FROM votes WHERE choice = 'EVEN'" [ "5" ];
  let r = exec db "DELETE FROM votes WHERE id > 8" in
  Alcotest.(check int) "deleted" 2 r.Database.affected;
  check_rows "remaining" db "SELECT COUNT(*) FROM votes" [ "8" ]

let test_where_plans_agree () =
  (* The pk probe, the index probe and the full scan must return the same
     rows. *)
  let db = votes_db () in
  ignore (exec db "CREATE INDEX by_choice ON votes(choice)");
  for i = 1 to 50 do
    ignore
      (exec db
         (Printf.sprintf "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('v%d','c%d',0,%d)" i
            (i mod 5) i))
  done;
  check_rows "pk probe" db "SELECT voter FROM votes WHERE id = 33" [ "v33" ];
  let via_index = rows_as_strings (exec db "SELECT voter FROM votes WHERE choice = 'c3'") in
  let via_scan = rows_as_strings (exec db "SELECT voter FROM votes WHERE choice || '' = 'c3'") in
  Alcotest.(check (list string)) "index = scan" via_scan via_index;
  Alcotest.(check int) "expected cardinality" 10 (List.length via_index)

let test_index_maintained_on_update_delete () =
  let db = votes_db () in
  ignore (exec db "CREATE INDEX by_choice ON votes(choice)");
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('a','red',0,0)");
  ignore (exec db "UPDATE votes SET choice = 'blue' WHERE voter = 'a'");
  check_rows "old key gone" db "SELECT voter FROM votes WHERE choice = 'red'" [];
  check_rows "new key present" db "SELECT voter FROM votes WHERE choice = 'blue'" [ "a" ];
  ignore (exec db "DELETE FROM votes WHERE voter = 'a'");
  check_rows "deleted from index" db "SELECT voter FROM votes WHERE choice = 'blue'" []

let test_aggregates () =
  let db = votes_db () in
  for i = 1 to 10 do
    ignore
      (exec db
         (Printf.sprintf "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('v','g%d',0,%d)"
            (i mod 2) i))
  done;
  check_rows "count/sum/min/max" db "SELECT COUNT(*), SUM(nonce), MIN(nonce), MAX(nonce) FROM votes"
    [ "10|55|1|10" ];
  check_rows "avg" db "SELECT AVG(nonce) FROM votes" [ "5.5" ];
  check_rows "group by" db
    "SELECT choice, COUNT(*) c, SUM(nonce) s FROM votes GROUP BY choice ORDER BY s"
    [ "g1|5|25"; "g0|5|30" ]

let test_order_limit () =
  let db = votes_db () in
  for i = 1 to 5 do
    ignore
      (exec db (Printf.sprintf "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('v%d','c',0,%d)" i (6 - i)))
  done;
  check_rows "order by expr desc" db "SELECT voter FROM votes ORDER BY nonce DESC LIMIT 2"
    [ "v1"; "v2" ];
  check_rows "order asc" db "SELECT nonce FROM votes ORDER BY nonce LIMIT 3" [ "1"; "2"; "3" ]

let test_join () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE a (id INTEGER PRIMARY KEY, x TEXT)");
  ignore (exec db "CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, y TEXT)");
  ignore (exec db "INSERT INTO a (x) VALUES ('one'), ('two')");
  ignore (exec db "INSERT INTO b (aid, y) VALUES (1, 'b1'), (1, 'b2'), (2, 'b3')");
  check_rows "inner join" db
    "SELECT a.x, b.y FROM a INNER JOIN b ON a.id = b.aid ORDER BY b.y"
    [ "one|b1"; "one|b2"; "two|b3" ];
  check_rows "cross with where" db
    "SELECT a.x, b.y FROM a, b WHERE a.id = b.aid AND b.y = 'b3'" [ "two|b3" ]

let test_like_and_functions () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)");
  ignore (exec db "INSERT INTO t (s) VALUES ('hello'), ('help'), ('world')");
  check_rows "like prefix" db "SELECT s FROM t WHERE s LIKE 'hel%' ORDER BY s" [ "hello"; "help" ];
  check_rows "like single char" db "SELECT s FROM t WHERE s LIKE 'hel_' " [ "help" ];
  check_rows "length" db "SELECT LENGTH(s) FROM t WHERE s = 'hello'" [ "5" ];
  check_rows "upper/lower" db "SELECT UPPER(s), LOWER('ABC') FROM t WHERE s = 'help'" [ "HELP|abc" ];
  check_rows "coalesce" db "SELECT COALESCE(NULL, NULL, 'x')" [ "x" ];
  check_rows "concat" db "SELECT 'a' || 'b' || 1" [ "ab1" ]

let test_null_semantics () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)");
  ignore (exec db "INSERT INTO t (v) VALUES (1), (NULL), (3)");
  (* NULL = NULL is NULL, filtered out. *)
  check_rows "null never equal" db "SELECT COUNT(*) FROM t WHERE v = NULL" [ "0" ];
  check_rows "is null" db "SELECT id FROM t WHERE v IS NULL" [ "2" ];
  check_rows "is not null" db "SELECT COUNT(*) FROM t WHERE v IS NOT NULL" [ "2" ];
  check_rows "aggregate skips null" db "SELECT COUNT(v), SUM(v) FROM t" [ "2|4" ];
  check_rows "null arithmetic" db "SELECT 1 + NULL IS NULL" [ "1" ]

let test_type_coercion () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, r REAL, s TEXT)");
  ignore (exec db "INSERT INTO t (n, r, s) VALUES ('42', '2.5', 99)");
  check_rows "coerced" db "SELECT n + 1, r * 2, s || '!' FROM t" [ "43|5|99!" ]

let test_errors () =
  let db = fresh_db () in
  ignore (expect_error db "SELECT * FROM missing");
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  ignore (expect_error db "SELECT nope FROM t");
  ignore (expect_error db "INSERT INTO t (nope) VALUES (1)");
  ignore (expect_error db "CREATE TABLE t (id INTEGER PRIMARY KEY)");
  ignore (expect_error db "UPDATE t SET id = 5");
  ignore (expect_error db "not sql at all");
  (* The failed statements must not have broken the engine. *)
  ignore (exec db "INSERT INTO t (v) VALUES ('still works')");
  check_rows "alive" db "SELECT v FROM t" [ "still works" ]

let test_drop_table () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY)");
  ignore (exec db "DROP TABLE t");
  ignore (expect_error db "SELECT * FROM t");
  ignore (exec db "DROP TABLE IF EXISTS t");
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY)");
  Alcotest.(check (list string)) "tables" [ "t" ] (Database.table_names db)

(* --- transactions --- *)

let test_txn_commit_rollback () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  ignore (exec db "BEGIN");
  Alcotest.(check bool) "in txn" true (Database.in_transaction db);
  ignore (exec db "INSERT INTO t (v) VALUES ('a')");
  ignore (exec db "COMMIT");
  check_rows "committed" db "SELECT v FROM t" [ "a" ];
  ignore (exec db "BEGIN");
  ignore (exec db "INSERT INTO t (v) VALUES ('b')");
  check_rows "visible inside" db "SELECT COUNT(*) FROM t" [ "2" ];
  ignore (exec db "ROLLBACK");
  check_rows "rolled back" db "SELECT v FROM t" [ "a" ]

let test_txn_error_aborts () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  ignore (exec db "BEGIN");
  ignore (exec db "INSERT INTO t (v) VALUES ('x')");
  ignore (expect_error db "INSERT INTO t (nope) VALUES (1)");
  Alcotest.(check bool) "txn aborted" false (Database.in_transaction db);
  check_rows "nothing persisted" db "SELECT COUNT(*) FROM t" [ "0" ]

let test_crash_recovery_acid () =
  (* A whole database on a simulated disk: commit one row, crash during
     the next transaction, reopen: the committed row survives, the torn
     one does not (§3.2's durability argument for the SQL abstraction). *)
  let disk = Simdisk.Disk.create () in
  let open_db () = Database.open_db (Vfs.on_disk disk ~name:"vote.db" ~seed:1) in
  let db = open_db () in
  ignore (exec db Pbft_service.vote_schema);
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('durable','a',0,0)");
  (* Second transaction: left open (never committed) when the crash hits. *)
  ignore (exec db "BEGIN");
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('torn','b',0,0)");
  Simdisk.Disk.crash disk;
  let db2 = open_db () in
  check_rows "committed row survives, torn row gone" db2 "SELECT voter FROM votes"
    [ "durable" ]

let test_no_acid_mode_no_journal () =
  let db = fresh_db ~acid:false () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  ignore (exec db "INSERT INTO t (v) VALUES ('fast')");
  check_rows "works without journal" db "SELECT v FROM t" [ "fast" ];
  (* Rollback still works in-memory via the journaled-originals table?
     No: without a journal there is no rollback; verify it errors
     gracefully by relying on autocommit semantics instead. *)
  ignore (exec db "BEGIN");
  ignore (exec db "INSERT INTO t (v) VALUES ('second')");
  ignore (exec db "COMMIT");
  check_rows "explicit txn in no-acid" db "SELECT COUNT(*) FROM t" [ "2" ]

let test_nondeterministic_functions_use_env () =
  (* NOW() and RANDOM() come from the VFS environment — the §2.5 seam. *)
  let db = fresh_db ~seed:7 () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, ts REAL, r INTEGER)");
  ignore (exec db "INSERT INTO t (ts, r) VALUES (NOW(), RANDOM())");
  ignore (exec db "INSERT INTO t (ts, r) VALUES (NOW(), RANDOM())");
  let rows = (exec db "SELECT ts, r FROM t ORDER BY id").Database.rows in
  (match rows with
  | [ [| Value.Real t1; Value.Int r1 |]; [| Value.Real t2; Value.Int r2 |] ] ->
    Alcotest.(check bool) "clock advances" true (t2 > t1);
    Alcotest.(check bool) "randoms differ" true (r1 <> r2)
  | _ -> Alcotest.fail "unexpected rows");
  (* Same seed, same history -> identical values (determinism). *)
  let db2 = fresh_db ~seed:7 () in
  ignore (exec db2 "CREATE TABLE t (id INTEGER PRIMARY KEY, ts REAL, r INTEGER)");
  ignore (exec db2 "INSERT INTO t (ts, r) VALUES (NOW(), RANDOM())");
  ignore (exec db2 "INSERT INTO t (ts, r) VALUES (NOW(), RANDOM())");
  let rows2 = (exec db2 "SELECT ts, r FROM t ORDER BY id").Database.rows in
  Alcotest.(check bool) "replica determinism" true (rows = rows2)

let test_exec_reports_cost () =
  let db = fresh_db () in
  let o = Database.exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)" in
  Alcotest.(check bool) "cost positive" true (o.Database.cost > 0.0)

let test_render () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  ignore (exec db "INSERT INTO t (v) VALUES ('x')");
  let s = Database.render (exec db "SELECT id, v FROM t") in
  Alcotest.(check bool) "has header" true (String.length s > 0 && String.sub s 0 6 = "id | v")

(* --- access-path planner, statement cache, index DDL --- *)

let test_create_drop_index () =
  let db = votes_db () in
  ignore (exec db "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('a','x',0,0)");
  (* Backfill: the index is created over the existing row. *)
  ignore (exec db "CREATE INDEX by_choice ON votes(choice)");
  check_rows "backfilled" db "SELECT voter FROM votes WHERE choice = 'x'" [ "a" ];
  ignore (expect_error db "CREATE INDEX by_choice ON votes(choice)");
  ignore (exec db "CREATE INDEX IF NOT EXISTS by_choice ON votes(choice)");
  ignore (exec db "DROP INDEX by_choice");
  ignore (expect_error db "DROP INDEX by_choice");
  ignore (exec db "DROP INDEX IF EXISTS by_choice");
  (* Queries keep working (full scan) once the index is gone. *)
  check_rows "scan after drop" db "SELECT voter FROM votes WHERE choice = 'x'" [ "a" ];
  ignore (exec db "CREATE INDEX by_choice ON votes(choice)");
  check_rows "recreated" db "SELECT voter FROM votes WHERE choice = 'x'" [ "a" ]

let test_stmt_cache () =
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)");
  let h0, m0 = Database.stmt_cache_stats db in
  ignore (exec db "SELECT COUNT(*) FROM t");
  ignore (exec db "SELECT COUNT(*) FROM t");
  let h1, m1 = Database.stmt_cache_stats db in
  Alcotest.(check int) "second exec hits" (h0 + 1) h1;
  Alcotest.(check int) "first exec misses" (m0 + 1) m1;
  (* DDL can change what a cached statement means: the cache is wiped and
     the same text parses again. *)
  ignore (exec db "CREATE INDEX tv ON t(v)");
  ignore (exec db "SELECT COUNT(*) FROM t");
  let h2, m2 = Database.stmt_cache_stats db in
  Alcotest.(check int) "no hit after DDL" h1 h2;
  Alcotest.(check int) "DDL + re-parse both miss" (m1 + 2) m2;
  (* Parse errors are never cached (and don't count as misses): the same
     broken text errors again rather than hitting. *)
  ignore (expect_error db "SELEC nope");
  ignore (expect_error db "SELEC nope");
  let h3, m3 = Database.stmt_cache_stats db in
  Alcotest.(check int) "errors never hit" h2 h3;
  Alcotest.(check int) "errors not cached as misses" m2 m3;
  ignore (exec db "SELECT COUNT(*) FROM t");
  let h4, _ = Database.stmt_cache_stats db in
  Alcotest.(check int) "good statement still cached" (h3 + 1) h4

let test_indexed_probe_page_cost () =
  (* The acceptance criterion behind the sql:indexed_point benchmark: on a
     1600-row table a point probe through the secondary index touches
     O(log n) pages where the forced full scan touches O(n). *)
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, pad TEXT)");
  ignore (exec db "CREATE INDEX t_k ON t(k)");
  let pad = String.make 200 'x' in
  for batch = 0 to 15 do
    let rows =
      List.init 100 (fun i ->
          let id = (batch * 100) + i + 1 in
          Printf.sprintf "(%d, %d, '%s')" id id pad)
    in
    ignore (exec db ("INSERT INTO t (id, k, pad) VALUES " ^ String.concat ", " rows))
  done;
  let probe = Database.exec db "SELECT COUNT(*) FROM t WHERE k = 1234" in
  Database.set_planner_enabled db false;
  let scan = Database.exec db "SELECT COUNT(*) FROM t WHERE k = 1234" in
  Database.set_planner_enabled db true;
  (match (probe.Database.res, scan.Database.res) with
  | Ok a, Ok b -> Alcotest.(check bool) "same answer" true (a.Database.rows = b.Database.rows)
  | _ -> Alcotest.fail "probe or scan errored");
  Alcotest.(check int) "probe evaluates one candidate row" 1 probe.Database.rows_scanned;
  Alcotest.(check bool) "scan evaluates every row" true (scan.Database.rows_scanned >= 1600);
  if probe.Database.pages_read > 20 then
    Alcotest.failf "point probe touched %d pages (want O(log n))" probe.Database.pages_read;
  if scan.Database.pages_read < 5 * probe.Database.pages_read then
    Alcotest.failf "no asymptotic gap: scan %d pages vs probe %d" scan.Database.pages_read
      probe.Database.pages_read

let agree_with_forced_scan db name sql =
  let planned = exec db sql in
  Database.set_planner_enabled db false;
  let scanned = exec db sql in
  Database.set_planner_enabled db true;
  Alcotest.(check (list string)) name (rows_as_strings scanned) (rows_as_strings planned)

let test_planner_huge_int_bounds () =
  (* Regression: bounds on INTEGER columns used to round-trip through
     floats, so WHERE k > 999999999999999999 (a literal that rounds to
     1e18) started the index scan at 1e18 + 1 and silently dropped a
     stored 10^18; a saturation band also clamped bounds past |4e18| to
     the int extremes, dropping storable values beyond the band. Bounds
     are now exact for Int literals; Real literals may widen, never
     shrink. *)
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)");
  ignore (exec db "CREATE INDEX t_k ON t(k)");
  ignore
    (exec db
       "INSERT INTO t (k) VALUES (999999999999999999), (1000000000000000000), \
        (1000000000000000032), (4300000000000000000), (4611686018427387903), \
        (-4500000000000000000)");
  let agree = agree_with_forced_scan db in
  agree "strict lower, float-inexact int literal" "SELECT k FROM t WHERE k > 999999999999999999";
  agree "inclusive lower above the old band" "SELECT k FROM t WHERE k >= 4300000000000000000";
  agree "equality at max_int" "SELECT k FROM t WHERE k = 4611686018427387903";
  agree "upper bound below the old negative band" "SELECT k FROM t WHERE k < -4000000000000000000";
  agree "real equality hits its whole rounding bucket"
    "SELECT k FROM t WHERE k = 1000000000000000000.0";
  agree "real strict lower" "SELECT k FROM t WHERE k > 999999999999999872.0";
  (* The concrete row the float round-trip used to drop: *)
  check_rows "10^18 retained under strict bound" db
    "SELECT k FROM t WHERE k > 999999999999999999 AND k < 1000000000000000001"
    [ "1000000000000000000" ];
  (* Every int of the 1e18 rounding bucket — 10^18 -1, 10^18 and
     10^18 + 32 all convert to exactly 1e18 — compares equal to the Real
     literal and must surface. *)
  check_rows "full bucket for real equality" db
    "SELECT k FROM t WHERE k = 1000000000000000000.0 ORDER BY k"
    [ "999999999999999999"; "1000000000000000000"; "1000000000000000032" ]

let test_index_scan_negative_rowid_order () =
  (* Negative rowids sort after positive ones in the row tree (keys are
     raw big-endian int64), so a full scan yields positives first. The
     index path re-sorts its candidates by those same key bytes — sorting
     by signed rowid instead put negatives first and broke the
     every-path-same-order invariant. *)
  let db = fresh_db () in
  ignore (exec db "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER)");
  ignore (exec db "CREATE INDEX t_a ON t(a)");
  ignore (exec db "INSERT INTO t (id, a) VALUES (-3, 1), (2, 1), (-1, 1), (5, 1)");
  agree_with_forced_scan db "index path order matches scan order" "SELECT id FROM t WHERE a = 1";
  check_rows "positives first, then negatives" db "SELECT id FROM t WHERE a = 1"
    [ "2"; "5"; "-3"; "-1" ]

let prop_planner_matches_scan =
  (* Two databases with identical schema (indexes included) execute the
     same random statement stream; one has the access-path planner
     disabled so every WHERE falls back to the reference full scan. Rows
     (including order: index probes re-sort candidates by rowid),
     affected counts and error-ness must agree statement by statement,
     across interleaved INSERT/UPDATE/DELETE. *)
  let open QCheck in
  (* A few values near the float-exactness and int-range edges, so index
     bounds computed from huge literals get exercised against stored
     huge values (negated literals are sargable too). *)
  let huge = [ "999999999999999999"; "1000000000000000000"; "1000000000000000032";
               "4300000000000000000"; "4611686018427387903"; "-4500000000000000000" ] in
  let small_int_gen = Gen.map string_of_int (Gen.int_range (-20) 20) in
  let int_lit_gen = Gen.frequency [ (4, small_int_gen); (1, Gen.oneofl huge) ] in
  let lit_gen =
    Gen.oneof
      [
        int_lit_gen;
        Gen.map (fun i -> Printf.sprintf "%d.5" i) (Gen.int_range (-20) 20);
        Gen.oneofl [ "1000000000000000000.0"; "999999999999999872.0" ];
        Gen.map (fun i -> Printf.sprintf "'t%d'" i) (Gen.int_range 0 15);
        Gen.return "NULL";
      ]
  in
  let conj_gen =
    Gen.map3
      (fun c o l -> Printf.sprintf "%s %s %s" c o l)
      (Gen.oneofl [ "id"; "a"; "b"; "c" ])
      (Gen.oneofl [ "="; "<"; "<="; ">"; ">="; "<>" ])
      lit_gen
  in
  let where_gen =
    Gen.oneof
      [
        Gen.return "";
        Gen.map (fun c -> " WHERE " ^ c) conj_gen;
        Gen.map2 (fun c1 c2 -> Printf.sprintf " WHERE %s AND %s" c1 c2) conj_gen conj_gen;
        Gen.oneofl [ " WHERE a IS NULL"; " WHERE c IS NOT NULL" ];
      ]
  in
  let stmt_gen =
    Gen.oneof
      [
        Gen.map3
          (fun a b c -> Printf.sprintf "INSERT INTO t (a, b, c) VALUES (%s, %d.25, 't%d')" a b c)
          int_lit_gen (Gen.int_range (-20) 20) (Gen.int_range 0 15);
        Gen.map (fun w -> "SELECT id, a, b, c FROM t" ^ w) where_gen;
        Gen.map2
          (fun a w -> Printf.sprintf "UPDATE t SET a = %s%s" a w)
          int_lit_gen where_gen;
        Gen.map (fun w -> "DELETE FROM t" ^ w) where_gen;
      ]
  in
  QCheck.Test.make ~name:"planner access paths match forced full scan" ~count:60
    (make ~print:(String.concat ";\n") (Gen.list_size (Gen.int_range 5 25) stmt_gen))
    (fun stmts ->
      let planned = fresh_db () in
      let scanned = fresh_db () in
      Database.set_planner_enabled scanned false;
      let schema =
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT); \
         CREATE INDEX t_a ON t(a); CREATE INDEX t_c ON t(c)"
      in
      ignore (exec planned schema);
      ignore (exec scanned schema);
      List.for_all
        (fun sql ->
          let x = Database.exec planned sql in
          let y = Database.exec scanned sql in
          match (x.Database.res, y.Database.res) with
          | Ok rx, Ok ry ->
            rx.Database.rows = ry.Database.rows && rx.Database.affected = ry.Database.affected
          | Error _, Error _ -> true
          | _ -> false)
        stmts)

(* The read-only classifier must be sound (never pass a write or a
   non-deterministic expression: a misclassified op would execute
   unordered at every replica and diverge) and useful (pass the plain
   SELECTs the read-mix workloads actually issue). *)
let test_is_readonly_sql () =
  let ro = Relsql.Pbft_service.is_readonly_sql in
  List.iter
    (fun sql -> Alcotest.(check bool) ("read-only: " ^ sql) true (ro sql))
    [
      "SELECT COUNT(*), SUM(id) FROM lookup WHERE k = 3";
      "SELECT * FROM votes";
      "SELECT voter FROM votes WHERE choice = 'alice' ORDER BY voter LIMIT 5";
      "SELECT k, COUNT(*) FROM lookup GROUP BY k";
      "SELECT UPPER(voter) FROM votes";
      (* batches are fine as long as every statement is a pure SELECT *)
      "SELECT 1; SELECT 2";
    ];
  List.iter
    (fun sql -> Alcotest.(check bool) ("ordered: " ^ sql) false (ro sql))
    [
      "INSERT INTO lookup (id, k, pad) VALUES (1, 2, 'w')";
      "UPDATE votes SET choice = 'bob'";
      "DELETE FROM votes WHERE id = 1";
      "CREATE TABLE t (id INTEGER PRIMARY KEY)";
      "BEGIN";
      (* non-deterministic expressions diverge on the fast path *)
      "SELECT RANDOM()";
      "SELECT NOW()";
      "SELECT * FROM votes WHERE ts < NOW()";
      "SELECT id FROM votes ORDER BY RANDOM()";
      (* a write hiding behind a batch of reads *)
      "SELECT 1; DELETE FROM votes";
      (* unparseable text orders, so the error reply is deterministic *)
      "SELEC whoops";
      "";
    ]

let () =
  Alcotest.run "relsql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basic;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "block comments" `Quick test_lexer_block_comment;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select" `Quick test_parser_select;
          Alcotest.test_case "create table" `Quick test_parser_create;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "multi-statement" `Quick test_parser_multi_statement;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
        ] );
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          qcheck prop_key_encode_order;
          qcheck prop_value_codec_roundtrip;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basics" `Quick test_btree_basic;
          Alcotest.test_case "many keys & order" `Quick test_btree_many_and_order;
          Alcotest.test_case "iter upper bound" `Quick test_btree_iter_upto;
          Alcotest.test_case "entry too large" `Quick test_btree_entry_too_large;
          Alcotest.test_case "persistence" `Quick test_btree_persistence;
          qcheck prop_btree_vs_map;
        ] );
      ( "pager",
        [
          Alcotest.test_case "rollback" `Quick test_pager_rollback;
          Alcotest.test_case "crash recovery (hot journal)" `Quick test_pager_crash_recovery;
          Alcotest.test_case "freelist reuse" `Quick test_pager_freelist_reuse;
          Alcotest.test_case "touch accounting (journal reads free)" `Quick
            test_pager_touch_accounting;
          Alcotest.test_case "header write deferred to commit" `Quick
            test_pager_header_write_deferred;
          Alcotest.test_case "rollback restores deferred header" `Quick
            test_pager_rollback_restores_header;
        ] );
      ( "sql",
        [
          Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
          Alcotest.test_case "multi-row insert" `Quick test_insert_multi_row;
          Alcotest.test_case "autoincrement pk" `Quick test_autoincrement_pk;
          Alcotest.test_case "duplicate pk" `Quick test_duplicate_pk_rejected;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "plans agree" `Quick test_where_plans_agree;
          Alcotest.test_case "index maintenance" `Quick test_index_maintained_on_update_delete;
          Alcotest.test_case "aggregates & group by" `Quick test_aggregates;
          Alcotest.test_case "order/limit" `Quick test_order_limit;
          Alcotest.test_case "joins" `Quick test_join;
          Alcotest.test_case "like & functions" `Quick test_like_and_functions;
          Alcotest.test_case "null three-valued logic" `Quick test_null_semantics;
          Alcotest.test_case "type coercion" `Quick test_type_coercion;
          Alcotest.test_case "errors don't corrupt" `Quick test_errors;
          Alcotest.test_case "drop table" `Quick test_drop_table;
        ] );
      ( "planner",
        [
          Alcotest.test_case "create/drop index DDL" `Quick test_create_drop_index;
          Alcotest.test_case "statement cache" `Quick test_stmt_cache;
          Alcotest.test_case "point probe is O(log n) pages" `Quick test_indexed_probe_page_cost;
          Alcotest.test_case "huge-int bounds stay exact" `Quick test_planner_huge_int_bounds;
          Alcotest.test_case "negative rowid order" `Quick test_index_scan_negative_rowid_order;
          qcheck prop_planner_matches_scan;
        ] );
      ( "classifier",
        [ Alcotest.test_case "planner-proven read-only SQL" `Quick test_is_readonly_sql ] );
      ( "transactions",
        [
          Alcotest.test_case "commit & rollback" `Quick test_txn_commit_rollback;
          Alcotest.test_case "error aborts txn" `Quick test_txn_error_aborts;
          Alcotest.test_case "crash recovery end-to-end" `Quick test_crash_recovery_acid;
          Alcotest.test_case "no-ACID mode" `Quick test_no_acid_mode_no_journal;
          Alcotest.test_case "NOW/RANDOM via env" `Quick test_nondeterministic_functions_use_env;
          Alcotest.test_case "cost reporting" `Quick test_exec_reports_cost;
          Alcotest.test_case "render" `Quick test_render;
        ] );
    ]
