type t = { seq : int; tree : Merkle.t; snap : Pages.snapshot }

let take ~seqno pages tree =
  (* O(pages dirtied since the last snapshot): the snapshot aliases the
     live buffers and the tree copy is an array of shared digest refs;
     page bytes are duplicated lazily, on the next write. *)
  { seq = seqno; tree = Merkle.copy tree; snap = Pages.snapshot pages }

let seqno t = t.seq
let root t = Merkle.root t.tree
let page t i = Pages.snapshot_page t.snap i
let merkle t = t.tree

let divergent_pages ~local t = Merkle.diff local t.tree

let restore t target tree =
  let divergent, _ = Merkle.diff tree t.tree in
  List.iter (fun i -> Pages.restore_page target t.snap i) divergent;
  Merkle.update tree target divergent;
  Pages.clear_dirty target
