(* Byzantine fault scenarios: each adversary behavior runs against an
   otherwise-correct f=1 cluster and must preserve safety (no
   conflicting commits, identical state at identical sequence numbers)
   and liveness (clients keep completing requests with the adversary
   still installed). The per-behavior expectations — view change elects
   a new primary, starved backup demotes, forged votes bounce — live in
   Harness.Faults; a scenario fails if any expectation does. *)

let check_behavior ?speculative behavior () =
  let report, _cluster = Harness.Faults.run_behavior ~seed:11 ?speculative behavior in
  (match report.Harness.Faults.fr_failures with
  | [] -> ()
  | fs -> Alcotest.failf "%s" (String.concat "; " fs));
  Alcotest.(check bool) "safe" true report.Harness.Faults.fr_safe;
  Alcotest.(check bool) "live" true report.Harness.Faults.fr_live

(* The PR 6 regression: a view change that lands while replicas hold
   executed-but-uncommitted batches must roll the speculation back (for
   real — the scenario fails unless rollbacks actually happened) and
   still satisfy every safety and liveness predicate afterwards. *)
let test_vc_mid_speculation () =
  let report, _cluster = Harness.Faults.run_vc_mid_speculation ~seed:11 () in
  (match report.Harness.Faults.fr_failures with
  | [] -> ()
  | fs -> Alcotest.failf "%s" (String.concat "; " fs));
  Alcotest.(check bool) "safe" true report.Harness.Faults.fr_safe;
  Alcotest.(check bool) "live" true report.Harness.Faults.fr_live;
  Alcotest.(check bool) "speculated" true (report.Harness.Faults.fr_spec_execs > 0);
  Alcotest.(check bool) "rolled back" true (report.Harness.Faults.fr_rollbacks > 0)

let test_suite_covers_all_behaviors () =
  (* The suite list is the contract CI runs; a behavior added to the
     adversary but not to the suite would silently go untested. *)
  let names = List.map Pbft.Adversary.behavior_name Harness.Faults.behaviors in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "suite covers %s" expected)
        true (List.mem expected names))
    [
      "equivocate";
      "mute";
      "selective-mute";
      "corrupt-macs";
      "garbage-view-change";
      "mutate-nondet";
    ]

let () =
  Alcotest.run "faults"
    [
      ( "scenarios",
        [
          Alcotest.test_case "suite covers all behaviors" `Quick test_suite_covers_all_behaviors;
          Alcotest.test_case "equivocating primary (safety)" `Slow
            (check_behavior Pbft.Adversary.Equivocate);
          Alcotest.test_case "mute primary (liveness)" `Slow (check_behavior Pbft.Adversary.Mute);
          Alcotest.test_case "selective mute -> demotion (§2.4)" `Slow
            (check_behavior (Pbft.Adversary.Selective_mute [ 2 ]));
          Alcotest.test_case "corrupted authenticators (§2.3)" `Slow
            (check_behavior Pbft.Adversary.Corrupt_macs);
          Alcotest.test_case "garbage view-change votes" `Slow
            (check_behavior Pbft.Adversary.Garbage_view_change);
          Alcotest.test_case "mutated non-determinism (§2.5)" `Slow
            (check_behavior Pbft.Adversary.Mutate_nondet);
          Alcotest.test_case "view change mid-speculation (rollback)" `Slow
            test_vc_mid_speculation;
          Alcotest.test_case "equivocating primary, pipelined" `Slow
            (check_behavior ~speculative:true Pbft.Adversary.Equivocate);
          Alcotest.test_case "mute primary, pipelined" `Slow
            (check_behavior ~speculative:true Pbft.Adversary.Mute);
        ] );
    ]
