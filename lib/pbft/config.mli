(** Protocol and library configuration.

    The boolean triple (MAC authenticators, all-requests-big, batching)
    plus static-vs-dynamic client management spans exactly the
    configuration matrix of the paper's Table 1; the remaining fields are
    the tunables the PBFT code base exposes (checkpoint interval,
    watermark window, congestion window, timers). *)

type nondet_validation =
  | No_validation  (** trust the primary's non-deterministic data *)
  | Delta of float
      (** accept iff |local clock − proposed timestamp| ≤ delta — the
          scheme whose interaction with recovery replay §2.5 dissects *)
  | Delta_skip_on_recovery of float
      (** same, but validation is skipped for requests replayed during
          recovery — the fix §2.5 proposes *)

type t = {
  f : int;  (** tolerated Byzantine faults *)
  n : int;  (** replica count, 3f + 1 *)
  use_macs : bool;  (** MAC authenticators instead of signatures *)
  all_requests_big : bool;  (** big-request threshold forced to 0 (§2.1) *)
  big_request_threshold : int;  (** bytes above which a request is big *)
  batching : bool;
  congestion_window : int;
      (** max requests received-but-not-executed at the primary before it
          withholds pre-prepares to batch (§2.1) *)
  max_batch_bytes : int;  (** datagram budget for one pre-prepare *)
  batch_delay : float;
      (** how long the primary lingers after the window frees before
          issuing the next pre-prepare, gathering straggler requests into
          the batch (models the catch-up-on-execution aggregation of
          §2.1); 0 disables *)
  dynamic_clients : bool;  (** the paper's §3.1 extension *)
  max_clients : int;  (** node-table capacity *)
  session_stale_threshold : float;  (** §3.1 stale-session cleanup *)
  checkpoint_interval : int;  (** executions per checkpoint *)
  log_window : int;  (** high − low watermark distance *)
  client_timeout : float;  (** client retransmission period *)
  join_request_timeout : float;
      (** retransmission period for the two-phase join handshake (§3.1);
          join traffic is signed and pre-agreement, so it runs on its own
          timer rather than [client_timeout] *)
  view_change_timeout : float;
      (** base watchdog delay before a backup starts a view change; the
          effective timeout doubles per consecutive failed view change
          (PBFT's backoff) and resets on execution progress *)
  status_period : float;
      (** period of the status gossip that drives retransmission of lost
          protocol messages; 0 disables (a faithful rendering of a PBFT
          build without its retransmission machinery) *)
  authenticator_rebroadcast : float;
      (** period of the blind session-key rebroadcast that unblocks a
          recovering replica (§2.3) *)
  tentative_execution : bool;
  read_only_optimization : bool;
  fetch_missing_bodies : bool;
      (** remedy for §2.4: a replica missing a big-request body asks its
          peers for it instead of stalling until the next checkpoint.
          Off by default — the paper's PBFT stalls. *)
  fetch_missing_entries : bool;
      (** remedy for §2.5/§2.4: a replica that sees f+1 commits for a
          sequence it has no pre-prepare for fetches the entry (with its
          original non-deterministic data) from a peer — the log-replay
          path whose interaction with delta validation §2.5 dissects.
          Off by default. *)
  nondet : nondet_validation;
  sign_bits : int;  (** Rabin key size when [use_macs] is false *)
  pipeline_depth : int;
      (** how many congestion windows of batches may be in flight through
          the three agreement phases at once. 1 (default) is the paper's
          serial protocol; > 1 lets the primary pre-prepare batch n+1..n+k
          while n is still in prepare/commit, and switches replicas to
          speculative execution: prepared batches run under a COW undo
          snapshot, with replies, checkpoints and the exec journal
          withheld until the commit certificate lands (rolled back on
          view change) *)
  cores : int;
      (** virtual CPU cores per replica (default 1). With more than one,
          MAC generation/verification fan-out and Merkle leaf hashing are
          charged as overlapping per-piece work instead of one serial
          lump *)
  rejoin_key_refresh : bool;
      (** remedy for §2.3: a restarted replica multicasts a signed
          {!Message.Key_request} so peers re-send their session keys
          immediately, instead of recovery stalling until the next blind
          [authenticator_rebroadcast]. Off by default — the paper's PBFT
          stalls. *)
  key_refresh_period : float;
      (** period of proactive session-key refresh on the virtual clock:
          each replica re-derives its outbound MAC keys for a new epoch
          and rebroadcasts them (bounding how long a stolen key is
          useful). 0 (default) disables; the previous epoch's key is kept
          verifiable so in-flight authenticators survive the rollover *)
}

val default : f:int -> t
(** Castro's preferred configuration: MACs, all-big, batching, tentative
    execution — the first row of Table 1. *)

val robust : f:int -> t
(** The "most robust" configuration of §4.1: signatures instead of MACs,
    big-request handling off. *)

val validate : t -> (unit, string) result
(** Check internal consistency (n = 3f+1, positive intervals, ...). *)

val name : t -> string
(** Table 1 style name, e.g. "sta_mac_allbig_batch". *)
