(* Little-endian limbs, base 2^26, normalized: highest limb nonzero. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n land limb_mask) :: limbs (n lsr limb_bits) in
  Array.of_list (limbs n)

let to_int a =
  let r = Array.fold_right (fun limb acc ->
      if acc > max_int lsr limb_bits then failwith "Nat.to_int: overflow";
      (acc lsl limb_bits) lor limb) a 0
  in
  r

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec msb v acc = if v = 0 then acc else msb (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + msb top 0
  end

let get a i = if i < Array.length a then a.(i) else 0

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = get a i + get b i + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let n = Array.length a in
  let r = Array.make n 0 in
  let borrow = ref 0 in
  for i = 0 to n - 1 do
    let d = a.(i) - get b i - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let acc = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- acc land limb_mask;
        carry := acc lsr limb_bits
      done;
      (* Propagate the final carry; it can span several limbs. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let acc = r.(!k) + !carry in
        r.(!k) <- acc land limb_mask;
        carry := acc lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let shift_left a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a k =
  if is_zero a || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let n = la - limbs in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Short division by a single limb. *)
let divmod_limb a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Knuth Algorithm D. *)
let divmod_long u v =
  let n = Array.length v in
  let m = Array.length u - n in
  (* Normalize: shift so that v's top limb has its high bit set. *)
  let rec msb x acc = if x = 0 then acc else msb (x lsr 1) (acc + 1) in
  let shift = limb_bits - msb v.(n - 1) 0 in
  let vn = shift_left v shift in
  let un_arr = shift_left u shift in
  (* Working copy of the dividend with an explicit extra high limb. *)
  let un = Array.make (m + n + 1) 0 in
  Array.blit un_arr 0 un 0 (Array.length un_arr);
  let q = Array.make (m + 1) 0 in
  let vtop = vn.(n - 1) in
  let vsecond = if n >= 2 then vn.(n - 2) else 0 in
  for j = m downto 0 do
    let numer = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (numer / vtop) in
    let rhat = ref (numer mod vtop) in
    (* Correction loop: while the two-limb estimate overshoots, step qhat
       down. Once rhat reaches the base the guard can never hold again. *)
    let overshoots () =
      !rhat < base
      && (!qhat >= base || !qhat * vsecond > ((!rhat lsl limb_bits) lor un.(j + n - 2)))
    in
    while overshoots () do
      decr qhat;
      rhat := !rhat + vtop
    done;
    (* Multiply and subtract qhat * vn from un[j .. j+n]. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * vn.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = un.(i + j) - (p land limb_mask) - !borrow in
      if d < 0 then begin
        un.(i + j) <- d + base;
        borrow := 1
      end
      else begin
        un.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = un.(j + n) - !carry - !borrow in
    if d < 0 then begin
      (* qhat was one too large: add vn back. *)
      un.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let s = un.(i + j) + vn.(i) + !carry2 in
        un.(i + j) <- s land limb_mask;
        carry2 := s lsr limb_bits
      done;
      un.(j + n) <- (un.(j + n) + !carry2) land limb_mask
    end
    else un.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub un 0 n) in
  (normalize q, shift_right r shift)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, of_int r)
  end
  else divmod_long a b

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_add a b m = rem (add a b) m

let mod_sub a b m =
  let a = rem a m and b = rem b m in
  if compare a b >= 0 then sub a b else sub (add a m) b

let mod_mul a b m = rem (mul a b) m

let mod_exp b e m =
  if equal m one then zero
  else begin
    let result = ref one in
    let b = ref (rem b m) in
    let bits = bit_length e in
    for i = 0 to bits - 1 do
      let limb = e.(i / limb_bits) in
      if (limb lsr (i mod limb_bits)) land 1 = 1 then result := mod_mul !result !b m;
      if i < bits - 1 then b := mod_mul !b !b m
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

let mod_inverse a m =
  (* Extended Euclid tracking only the coefficient of [a]; signs are
     carried separately since values are naturals. The invariant is
     r_i ≡ (±s_i) · a (mod m). *)
  let a = rem a m in
  if is_zero a then None
  else begin
    let rec go r0 r1 s0 neg0 s1 neg1 =
      if is_zero r1 then
        if equal r0 one then begin
          let v = rem s0 m in
          Some (if neg0 && not (is_zero v) then sub m v else v)
        end
        else None
      else begin
        let q, r2 = divmod r0 r1 in
        let qs1 = mul q s1 in
        let s2, neg2 =
          if neg0 = neg1 then
            if compare s0 qs1 >= 0 then (sub s0 qs1, neg0) else (sub qs1 s0, not neg0)
          else (add s0 qs1, neg0)
        in
        go r1 r2 s1 neg1 s2 neg2
      end
    in
    go a m one false zero false
  end

let jacobi a n =
  if is_even n then invalid_arg "Nat.jacobi: even modulus";
  let rec go a n acc =
    let a = rem a n in
    if is_zero a then if equal n one then acc else 0
    else begin
      (* Pull out factors of two. *)
      let rec twos a acc =
        if is_even a then begin
          let nmod8 = (if Array.length n > 0 then n.(0) else 0) land 7 in
          let flip = nmod8 = 3 || nmod8 = 5 in
          twos (shift_right a 1) (if flip then -acc else acc)
        end
        else (a, acc)
      in
      let a, acc = twos a acc in
      if equal a one then acc
      else begin
        (* Quadratic reciprocity: flip sign if both ≡ 3 (mod 4). *)
        let amod4 = a.(0) land 3 and nmod4 = n.(0) land 3 in
        let acc = if amod4 = 3 && nmod4 = 3 then -acc else acc in
        go n a acc
      end
    end
  in
  go a n 1

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 8) (of_int (Char.code c))) s;
  !r

let to_bytes_be ?(pad = 0) a =
  let nbytes = max 1 ((bit_length a + 7) / 8) in
  let nbytes = max nbytes pad in
  let b = Bytes.make nbytes '\000' in
  let v = ref a in
  let i = ref (nbytes - 1) in
  while not (is_zero !v) do
    Bytes.set b !i (Char.chr (!v.(0) land 0xff));
    v := shift_right !v 8;
    decr i
  done;
  Bytes.to_string b

let of_hex s = of_bytes_be (Util.Hexdump.to_string (if String.length s mod 2 = 1 then "0" ^ s else s))
let to_hex a = Util.Hexdump.of_string (to_bytes_be a)

let random_bits rng nbits =
  if nbits <= 0 then zero
  else begin
    let nlimbs = (nbits + limb_bits - 1) / limb_bits in
    let r = Array.init nlimbs (fun _ -> Util.Rng.int rng base) in
    let top_bits = nbits - ((nlimbs - 1) * limb_bits) in
    r.(nlimbs - 1) <- r.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    normalize r
  end

let random_below rng bound =
  if is_zero bound then invalid_arg "Nat.random_below: zero bound";
  let nbits = bit_length bound in
  let rec try_draw () =
    let v = random_bits rng nbits in
    if compare v bound < 0 then v else try_draw ()
  in
  try_draw ()

let pp fmt a = Format.pp_print_string fmt (to_hex a)
