(** Walking the tree, parsing, and assembling the report. *)

val lint_source : rel:string -> string -> Finding.t list
(** Parse one compilation unit from a string (fixtures, tests) and lint
    it under the classification its pseudo-path [rel] implies. Raises
    the parser's exceptions on syntax errors. *)

type outcome = {
  files_scanned : int;
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : int;  (** count silenced by the allow file *)
  stale_allows : Allowlist.entry list;
  errors : string list;  (** unparseable files *)
}

val run : ?dirs:string list -> ?allow_file:string -> root:string -> unit -> outcome
(** Lint every [.ml] under [root]/[dirs] (default [["lib"]]), in sorted
    path order. [allow_file] defaults to [root]/detlint.allow and is
    optional on disk; a malformed allow file raises
    {!Allowlist.Malformed}. *)
