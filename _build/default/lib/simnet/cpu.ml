type t = {
  engine : Engine.t;
  mutable free_at : float;
  mutable busy_accum : float;
  mutable queued : int;
}

let create engine = { engine; free_at = 0.0; busy_accum = 0.0; queued = 0 }

let execute t ~cost f =
  let cost = Float.max 0.0 cost in
  let start = Float.max (Engine.now t.engine) t.free_at in
  let finish = start +. cost in
  t.free_at <- finish;
  t.busy_accum <- t.busy_accum +. cost;
  t.queued <- t.queued + 1;
  Engine.schedule_at t.engine ~time:finish (fun () ->
      t.queued <- t.queued - 1;
      f ())

let busy_until t = t.free_at
let queue_length t = t.queued
let total_busy t = t.busy_accum

let utilization t ~since =
  let span = Engine.now t.engine -. since in
  if span <= 0.0 then 0.0 else Float.min 1.0 (t.busy_accum /. span)
