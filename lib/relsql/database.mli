(** The embedded relational engine's public face — the role SQLite plays
    in the paper's state abstraction (§3.2).

    A database is a single file behind a {!Vfs.t}: open it, feed it SQL,
    get rows back. ACID comes from the rollback journal (present on the
    VFS or not); every execution reports the virtual cost of the work it
    did, which the PBFT service charges to the replica's CPU. *)

type t

type row = Value.t array

type result = { columns : string list; rows : row list; affected : int }

type outcome = {
  res : (result, string) Stdlib.result;
  cost : float;
  pages_read : int;  (** B-tree pages touched by this execution *)
  rows_scanned : int;  (** candidate rows materialized and evaluated *)
}

val open_db : Vfs.t -> t
(** Opens the database (running journal recovery if needed, creating the
    schema catalog on first use). *)

val exec : t -> string -> outcome
(** Execute one or more ';'-separated statements (results of the last
    one are returned). Errors never raise: they come back as [Error]
    with the transaction rolled back. *)

val exec_exn : t -> string -> result
(** [exec] or [Failure]. *)

val in_transaction : t -> bool

val table_names : t -> string list

val stmt_cache_stats : t -> int * int
(** (hits, misses) of the per-connection statement cache since open. *)

val set_planner_enabled : t -> bool -> unit
(** Turn access-path planning off (every statement full-scans) — the
    reference executor the planner is property-tested against. On by
    default. *)

val pages_read_total : unit -> int
(** Process-wide page-touch count across every database, for the bench
    harness (same idiom as [Crypto.Sha256.bytes_hashed]). *)

val rows_scanned_total : unit -> int

val render : result -> string
(** Plain-text table rendering for examples and the CLI. *)
