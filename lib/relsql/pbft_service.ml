let vote_schema =
  "CREATE TABLE IF NOT EXISTS votes (id INTEGER PRIMARY KEY, voter TEXT, choice TEXT, ts REAL, \
   nonce INTEGER)"

let insert_vote_sql ~voter ~choice =
  Printf.sprintf "INSERT INTO votes (voter, choice, ts, nonce) VALUES ('%s', '%s', NOW(), RANDOM())"
    voter choice

(* Read-mostly lookup workload for the access-path benchmarks: a table of
   keyed rows, optionally covered by a secondary index, probed with point
   and small-range SELECTs. *)

let lookup_schema = "CREATE TABLE IF NOT EXISTS lookup (id INTEGER PRIMARY KEY, k INTEGER, pad TEXT)"
let lookup_index_sql = "CREATE INDEX IF NOT EXISTS lookup_k ON lookup(k)"

let point_select_sql ~key = Printf.sprintf "SELECT COUNT(*), SUM(id) FROM lookup WHERE k = %d" key

let range_select_sql ~lo ~hi =
  Printf.sprintf "SELECT COUNT(*) FROM lookup WHERE k >= %d AND k < %d" lo hi

(* Planner-proven read-only classification: a statement batch may ride
   the PBFT read-only fast path iff every statement is a SELECT and no
   expression calls a non-deterministic function. NOW()/RANDOM() must be
   excluded even inside SELECTs — on the fast path each replica evaluates
   against its *local* clock and an empty nondet seed, so their results
   would diverge and the client could never collect matching replies. *)
let rec expr_deterministic (e : Ast.expr) =
  match e with
  | Ast.Lit _ | Ast.Col _ | Ast.Star -> true
  | Ast.Binop (_, a, b) | Ast.Like (a, b) -> expr_deterministic a && expr_deterministic b
  | Ast.Unop (_, a) | Ast.Is_null (a, _) -> expr_deterministic a
  | Ast.Call (fn, args) ->
    (match String.uppercase_ascii fn with "RANDOM" | "NOW" -> false | _ -> true)
    && List.for_all expr_deterministic args

let select_deterministic (s : Ast.select) =
  List.for_all (fun (e, _) -> expr_deterministic e) s.Ast.sel_exprs
  && (match s.Ast.sel_where with None -> true | Some e -> expr_deterministic e)
  && List.for_all expr_deterministic s.Ast.sel_group
  && List.for_all (fun (o : Ast.order_item) -> expr_deterministic o.Ast.ord_expr) s.Ast.sel_order

let is_readonly_sql sql =
  match Parser.parse sql with
  | [] -> false
  | stmts ->
    List.for_all
      (function Ast.Select s -> select_deterministic s | _ -> false)
      stmts
  | exception (Parser.Error _ | Lexer.Error _) ->
    (* Unparseable text will produce an error reply either way; ordering
       it keeps the error deterministic and identical across replicas. *)
    false

(* A VFS whose main file is a window onto the replica's PBFT state region:
   reads go straight to the pages, writes notify the state manager first
   (the §3.2 contract), and the commit-time sync is charged as disk cost
   (the paper keeps the db file synchronized with its disk image). *)
let pages_file pages ~first_page ~app_pages ~(disk : Simdisk.Disk.t) ~cost =
  let page_size = Statemgr.Pages.page_size pages in
  let base = first_page * page_size in
  let capacity = app_pages * page_size in
  {
    Vfs.read =
      (fun ~pos ~len ->
        if pos + len > capacity then invalid_arg "pbft vfs: read past region";
        Statemgr.Pages.read pages ~pos:(base + pos) ~len);
    write =
      (fun ~pos s ->
        if pos + String.length s > capacity then invalid_arg "pbft vfs: write past region";
        Statemgr.Pages.notify_modify pages ~pos:(base + pos) ~len:(String.length s);
        Statemgr.Pages.write pages ~pos:(base + pos) s);
    sync = (fun () -> cost := !cost +. Simdisk.Disk.sync_cost disk);
    size = (fun () -> capacity);
    truncate = (fun _ -> ());
  }

let disk_journal disk ~cost =
  let f = Simdisk.Disk.open_file disk "journal" in
  {
    Vfs.read = (fun ~pos ~len -> Simdisk.Disk.read f ~pos ~len);
    write =
      (fun ~pos s ->
        cost := !cost +. Simdisk.Disk.write_cost disk (String.length s);
        Simdisk.Disk.write f ~pos s);
    sync =
      (fun () ->
        cost := !cost +. Simdisk.Disk.sync_cost disk;
        Simdisk.Disk.sync f);
    size = (fun () -> Simdisk.Disk.size f);
    truncate = (fun n -> Simdisk.Disk.truncate f n);
  }

let service ?(acid = true) ?(app_pages = 128) ?(sync_latency = 0.4e-3) ?(schema = vote_schema)
    ?(init = []) () =
  {
    Pbft.Service.name = (if acid then "sql" else "sql-noacid");
    page_size = Pager.page_size;
    app_pages;
    make =
      (fun pages ~first_page ->
        let disk = Simdisk.Disk.create ~sync_latency () in
        let cost = ref 0.0 in
        (* The agreed non-deterministic values for the current request. *)
        let env_time = ref 0.0 in
        let env_random = ref 0L in
        let vfs =
          {
            Vfs.main = pages_file pages ~first_page ~app_pages ~disk ~cost;
            journal = (if acid then Some (disk_journal disk ~cost) else None);
            time = (fun () -> !env_time);
            random =
              (fun () ->
                (* Stream distinct values within one request determin-
                   istically from the agreed seed. *)
                env_random := Int64.add (Int64.mul !env_random 6364136223846793005L) 1442695040888963407L;
                !env_random);
            cost;
          }
        in
        let db = Database.open_db vfs in
        (match (Database.exec db schema).res with
        | Ok _ -> ()
        | Error e -> failwith ("sql service schema: " ^ e));
        (* Deterministic pre-population, identical on every replica; runs
           at boot so it lands in the genesis checkpoint. *)
        List.iter
          (fun sql ->
            match (Database.exec db sql).res with
            | Ok _ -> ()
            | Error e -> failwith ("sql service init: " ^ e))
          init;
        {
          Pbft.Service.execute =
            (fun ~op ~client:_ ~timestamp ~nondet ~readonly:_ ->
              env_time := timestamp;
              (match Pbft.Nondet.random_value nondet with
              | Some r -> env_random := r
              | None -> env_random := Int64.of_float (timestamp *. 1e6));
              let outcome = Database.exec db op in
              let reply =
                match outcome.Database.res with
                | Ok r ->
                  if r.Database.rows = [] && r.columns = [] then
                    Printf.sprintf "ok:%d" r.affected
                  else Database.render r
                | Error e -> "error: " ^ e
              in
              (reply, outcome.Database.cost));
          authorize_join =
            (fun ~idbuf ->
              match String.index_opt idbuf ':' with
              | Some i when i > 0 -> Some (String.sub idbuf 0 i)
              | Some _ | None -> None);
          on_session_end = (fun _ -> ());
        });
    classify_readonly = is_readonly_sql;
  }
