lib/webgate/json.ml: Buffer Char Float List Printf String Util
