lib/statemgr/merkle.mli: Pages
