lib/util/stats.mli:
