(* Tests for the cryptographic substrate: known-answer vectors for the
   primitives, behavioural tests for signatures, secret sharing and the
   threshold scheme. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- SHA-256 (FIPS 180-4 / NIST vectors) --- *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) ("sha " ^ msg) want (Crypto.Sha256.hex msg))
    sha_vectors

let test_sha_million_a () =
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.hex (String.make 1_000_000 'a'))

let prop_sha_streaming_matches_oneshot =
  QCheck.Test.make ~name:"streaming = one-shot for any chunking" ~count:200
    QCheck.(pair string (small_list small_nat))
    (fun (s, cuts) ->
      let ctx = Crypto.Sha256.init () in
      let n = String.length s in
      let rec feed pos = function
        | [] -> Crypto.Sha256.feed ctx (String.sub s pos (n - pos))
        | c :: rest ->
          let len = min (c mod 50) (n - pos) in
          Crypto.Sha256.feed ctx (String.sub s pos len);
          feed (pos + len) rest
      in
      feed 0 cuts;
      Crypto.Sha256.finalize ctx = Crypto.Sha256.digest s)

(* Exercise every split position the unboxed core treats differently:
   empty feeds, sub-block fills, the 55/56/57 padding boundary, exact
   block edges, and multi-block tails read straight from the caller's
   buffer. *)
let test_sha_split_points () =
  let msgs =
    List.map fst sha_vectors
    @ [ String.init 200 (fun i -> Char.chr (i land 0xff)); String.make 1000 'q' ]
  in
  let splits = [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 127; 128; 129 ] in
  List.iter
    (fun msg ->
      let n = String.length msg in
      let want = Crypto.Sha256.digest msg in
      List.iter
        (fun cut ->
          if cut <= n then begin
            let ctx = Crypto.Sha256.init () in
            Crypto.Sha256.feed ctx (String.sub msg 0 cut);
            Crypto.Sha256.feed ctx (String.sub msg cut (n - cut));
            Alcotest.(check string)
              (Printf.sprintf "len %d cut %d" n cut)
              (Util.Hexdump.of_string want)
              (Util.Hexdump.of_string (Crypto.Sha256.finalize ctx))
          end)
        splits)
    msgs

let test_sha_copy_branches () =
  let prefix = String.make 70 'p' in
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx prefix;
  let a = Crypto.Sha256.copy ctx in
  let b = Crypto.Sha256.copy ctx in
  Crypto.Sha256.feed a "left";
  Crypto.Sha256.feed b "right-side suffix";
  Alcotest.(check string) "branch a"
    (Crypto.Sha256.hex (prefix ^ "left"))
    (Util.Hexdump.of_string (Crypto.Sha256.finalize a));
  Alcotest.(check string) "branch b"
    (Crypto.Sha256.hex (prefix ^ "right-side suffix"))
    (Util.Hexdump.of_string (Crypto.Sha256.finalize b));
  (* The original must be unaffected by what its copies hashed. *)
  Crypto.Sha256.feed ctx "tail";
  Alcotest.(check string) "original intact"
    (Crypto.Sha256.hex (prefix ^ "tail"))
    (Util.Hexdump.of_string (Crypto.Sha256.finalize ctx))

let test_sha_bytes_hashed_counter () =
  let before = Crypto.Sha256.bytes_hashed () in
  ignore (Crypto.Sha256.digest (String.make 123 'x'));
  let after = Crypto.Sha256.bytes_hashed () in
  Alcotest.(check bool) "counter advanced by at least the input" true (after - before >= 123)

let test_sha_feed_bytes_bounds () =
  let ctx = Crypto.Sha256.init () in
  Alcotest.check_raises "bad range" (Invalid_argument "Sha256.feed_bytes") (fun () ->
      Crypto.Sha256.feed_bytes ctx (Bytes.create 4) ~pos:2 ~len:3)

(* --- HMAC (RFC 4231) --- *)

let test_hmac_rfc4231 () =
  let check name key msg want =
    Alcotest.(check string) name want (Util.Hexdump.of_string (Crypto.Hmac.mac ~key msg))
  in
  check "case 1" (String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check "case 2" "Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check "case 3" (String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe";
  (* case 6: key longer than the block size *)
  check "case 6" (String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"

let test_hmac_verify () =
  let key = "k" and msg = "m" in
  let tag = Crypto.Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts" true (Crypto.Hmac.verify ~key msg ~tag);
  Alcotest.(check bool) "rejects msg" false (Crypto.Hmac.verify ~key "m2" ~tag);
  Alcotest.(check bool) "rejects key" false (Crypto.Hmac.verify ~key:"k2" msg ~tag);
  Alcotest.(check bool) "rejects short" false (Crypto.Hmac.verify ~key msg ~tag:"short")

(* --- short MACs --- *)

let test_mac_basic () =
  let rng = Util.Rng.create 1 in
  let key = Crypto.Mac.fresh_key rng in
  let tag = Crypto.Mac.compute ~key "payload" in
  Alcotest.(check int) "tag size" Crypto.Mac.tag_size (String.length tag);
  Alcotest.(check bool) "verifies" true (Crypto.Mac.verify ~key "payload" ~tag);
  Alcotest.(check bool) "rejects" false (Crypto.Mac.verify ~key "other" ~tag)

(* The compute memo must be invisible: same (key, message) pair always
   yields the same tag whether served from the cache (physically shared
   message) or recomputed (content-equal copy). *)
let test_mac_memo_transparent () =
  let rng = Util.Rng.create 7 in
  let key = Crypto.Mac.fresh_key rng in
  let key' = Crypto.Mac.fresh_key rng in
  let msg = "the same wire bytes, shared across receivers" in
  let tag = Crypto.Mac.compute ~key msg in
  Alcotest.(check string) "stable on repeat" tag (Crypto.Mac.compute ~key msg);
  let copy = String.sub msg 0 (String.length msg) in
  Alcotest.(check bool) "fresh allocation" true (copy != msg);
  Alcotest.(check string) "content-equal copy matches" tag (Crypto.Mac.compute ~key copy);
  Alcotest.(check bool) "different key differs" (tag <> Crypto.Mac.compute ~key:key' msg) true;
  Alcotest.(check bool) "verify accepts" true (Crypto.Mac.verify ~key msg ~tag);
  Alcotest.(check bool) "verify rejects wrong tag" false
    (Crypto.Mac.verify ~key msg ~tag:(String.make Crypto.Mac.tag_size '\x00'))

(* --- authenticators --- *)

let test_authenticator () =
  let rng = Util.Rng.create 2 in
  let keys = List.init 4 (fun i -> (i, Crypto.Mac.fresh_key rng)) in
  let auth = Crypto.Authenticator.compute ~keys "msg" in
  List.iter
    (fun (i, key) ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d accepts" i)
        true
        (Crypto.Authenticator.check ~key ~replica:i "msg" auth))
    keys;
  let _, k0 = List.hd keys in
  Alcotest.(check bool) "wrong replica entry" false
    (Crypto.Authenticator.check ~key:k0 ~replica:1 "msg" auth);
  Alcotest.(check bool) "missing entry" false
    (Crypto.Authenticator.check ~key:k0 ~replica:9 "msg" auth);
  Alcotest.(check bool) "tampered message" false
    (Crypto.Authenticator.check ~key:k0 ~replica:0 "msG" auth)

let test_authenticator_codec () =
  let rng = Util.Rng.create 3 in
  let keys = List.init 3 (fun i -> (i, Crypto.Mac.fresh_key rng)) in
  let auth = Crypto.Authenticator.compute ~keys "m" in
  let wire = Util.Codec.encode Crypto.Authenticator.encode auth in
  let back = Util.Codec.decode Crypto.Authenticator.decode wire in
  Alcotest.(check int) "wire size accounted" (Crypto.Authenticator.wire_size auth)
    (String.length wire);
  List.iter
    (fun (i, key) ->
      Alcotest.(check bool) "decoded verifies" true
        (Crypto.Authenticator.check ~key ~replica:i "m" back))
    keys

(* --- Rabin signatures --- *)

let rabin_kp = lazy (Crypto.Rabin.generate (Util.Rng.create 11) ~bits:256)

let test_rabin_sign_verify () =
  let kp = Lazy.force rabin_kp in
  let pk = Crypto.Rabin.public kp in
  List.iter
    (fun msg ->
      let s = Crypto.Rabin.sign kp msg in
      Alcotest.(check bool) ("verifies: " ^ msg) true (Crypto.Rabin.verify pk msg s))
    [ ""; "x"; "a longer message with some content"; String.make 5000 'z' ]

let test_rabin_rejects () =
  let kp = Lazy.force rabin_kp in
  let pk = Crypto.Rabin.public kp in
  let s = Crypto.Rabin.sign kp "message" in
  Alcotest.(check bool) "wrong message" false (Crypto.Rabin.verify pk "messagf" s);
  let other = Crypto.Rabin.generate (Util.Rng.create 12) ~bits:256 in
  Alcotest.(check bool) "wrong key" false
    (Crypto.Rabin.verify (Crypto.Rabin.public other) "message" s);
  let tampered = { s with Crypto.Rabin.counter = s.Crypto.Rabin.counter + 1 } in
  Alcotest.(check bool) "tampered counter" false (Crypto.Rabin.verify pk "message" tampered)

let test_rabin_wire () =
  let kp = Lazy.force rabin_kp in
  let pk = Crypto.Rabin.public kp in
  let s = Crypto.Rabin.sign kp "wire" in
  (match Crypto.Rabin.signature_of_string (Crypto.Rabin.signature_to_string s) with
  | Some s' -> Alcotest.(check bool) "sig roundtrip verifies" true (Crypto.Rabin.verify pk "wire" s')
  | None -> Alcotest.fail "sig decode");
  (match Crypto.Rabin.public_of_string (Crypto.Rabin.public_to_string pk) with
  | Some pk' -> Alcotest.(check bool) "pk roundtrip verifies" true (Crypto.Rabin.verify pk' "wire" s)
  | None -> Alcotest.fail "pk decode");
  Alcotest.(check (option pass)) "garbage sig" None
    (Option.map ignore (Crypto.Rabin.signature_of_string "\x01"))

(* --- keychain --- *)

let test_keychain_modes () =
  let rng = Util.Rng.create 21 in
  List.iter
    (fun mode ->
      let signer = Crypto.Keychain.make mode rng ~id:5 in
      let v = Crypto.Keychain.verifier_of signer in
      let s = Crypto.Keychain.sign signer "msg" in
      Alcotest.(check bool) "verifies" true (Crypto.Keychain.verify v "msg" ~signature:s);
      Alcotest.(check bool) "rejects" false (Crypto.Keychain.verify v "other" ~signature:s);
      Alcotest.(check int) "ids" 5 (Crypto.Keychain.verifier_id v);
      match Crypto.Keychain.verifier_of_string (Crypto.Keychain.verifier_to_string v) with
      | Some v' ->
        Alcotest.(check bool) "roundtripped verifier works" true
          (Crypto.Keychain.verify v' "msg" ~signature:s)
      | None -> Alcotest.fail "verifier decode")
    [ Crypto.Keychain.Simulated; Crypto.Keychain.Real 256 ]

(* --- Shamir secret sharing --- *)

let field = lazy (Bignum.Prime.generate (Util.Rng.create 31) ~bits:80)

let test_shamir_reconstruct_subsets () =
  let rng = Util.Rng.create 32 in
  let field = Lazy.force field in
  let secret = Bignum.Nat.random_below rng field in
  let shares = Crypto.Shamir.split rng ~field ~threshold:3 ~shares:6 secret in
  let subset idxs = List.filteri (fun i _ -> List.mem i idxs) shares in
  List.iter
    (fun idxs ->
      let got = Crypto.Shamir.combine ~field (subset idxs) in
      Alcotest.(check string) "reconstructs" (Bignum.Nat.to_hex secret) (Bignum.Nat.to_hex got))
    [ [ 0; 1; 2 ]; [ 3; 4; 5 ]; [ 0; 2; 4 ]; [ 1; 3; 5 ]; [ 0; 1; 2; 3; 4; 5 ] ]

let test_shamir_too_few_shares () =
  let rng = Util.Rng.create 33 in
  let field = Lazy.force field in
  let secret = Bignum.Nat.random_below rng field in
  let shares = Crypto.Shamir.split rng ~field ~threshold:3 ~shares:5 secret in
  let two = List.filteri (fun i _ -> i < 2) shares in
  (* Two shares interpolate to *some* value, almost surely not the
     secret. *)
  let got = Crypto.Shamir.combine ~field two in
  Alcotest.(check bool) "2 shares reveal nothing" false (Bignum.Nat.equal got secret)

let test_shamir_bad_params () =
  let rng = Util.Rng.create 34 in
  let field = Lazy.force field in
  Alcotest.check_raises "bad threshold" (Invalid_argument "Shamir.split: bad threshold")
    (fun () -> ignore (Crypto.Shamir.split rng ~field ~threshold:5 ~shares:3 Bignum.Nat.one))

let test_feldman () =
  let rng = Util.Rng.create 35 in
  let group = Crypto.Shamir.Feldman.generate_group rng ~bits:48 in
  let secret = Bignum.Nat.random_below rng group.Crypto.Shamir.Feldman.q in
  (* Deal manually so we hold the coefficients for the commitments. *)
  let field = group.Crypto.Shamir.Feldman.q in
  let coeffs = [ secret; Bignum.Nat.random_below rng field; Bignum.Nat.random_below rng field ] in
  let commitments = Crypto.Shamir.Feldman.commit group coeffs in
  (* Recreate shares by evaluating the same polynomial via split's logic:
     use split with a rigged rng is not possible, so evaluate directly. *)
  let eval x =
    List.fold_left
      (fun acc c -> Bignum.Nat.mod_add (Bignum.Nat.mod_mul acc x field) c field)
      Bignum.Nat.zero (List.rev coeffs)
  in
  for i = 1 to 5 do
    let share = { Crypto.Shamir.index = i; value = eval (Bignum.Nat.of_int i) } in
    Alcotest.(check bool)
      (Printf.sprintf "share %d verifies" i)
      true
      (Crypto.Shamir.Feldman.verify_share group commitments share);
    let bad = { share with Crypto.Shamir.value = Bignum.Nat.add share.Crypto.Shamir.value Bignum.Nat.one } in
    Alcotest.(check bool) "tampered share rejected" false
      (Crypto.Shamir.Feldman.verify_share group commitments bad)
  done

(* --- threshold RSA --- *)

let threshold_key = lazy (Crypto.Threshold.deal (Util.Rng.create 41) ~bits:160 ~threshold:3 ~parties:5)

let test_threshold_combine_any_subset () =
  let pk, shares = Lazy.force threshold_key in
  let msg = "threshold message" in
  let partials idxs =
    List.filteri (fun i _ -> List.mem i idxs) shares
    |> List.map (fun sh -> Crypto.Threshold.partial_sign pk sh msg)
  in
  List.iter
    (fun idxs ->
      match Crypto.Threshold.combine pk msg (partials idxs) with
      | Some s -> Alcotest.(check bool) "verifies" true (Crypto.Threshold.verify pk msg s)
      | None -> Alcotest.fail "combine failed")
    [ [ 0; 1; 2 ]; [ 2; 3; 4 ]; [ 0; 2; 4 ]; [ 0; 1; 2; 3; 4 ] ]

let test_threshold_too_few () =
  let pk, shares = Lazy.force threshold_key in
  let msg = "m" in
  let partials =
    List.filteri (fun i _ -> i < 2) shares
    |> List.map (fun sh -> Crypto.Threshold.partial_sign pk sh msg)
  in
  Alcotest.(check bool) "2 of 3 insufficient" true (Crypto.Threshold.combine pk msg partials = None)

let test_threshold_corrupt_partial () =
  let pk, shares = Lazy.force threshold_key in
  let msg = "m2" in
  let partials =
    List.filteri (fun i _ -> i < 3) shares
    |> List.map (fun sh -> Crypto.Threshold.partial_sign pk sh msg)
  in
  let corrupted =
    match partials with
    | p :: rest -> { p with Crypto.Threshold.value = Bignum.Nat.add p.Crypto.Threshold.value Bignum.Nat.one } :: rest
    | [] -> []
  in
  Alcotest.(check bool) "corrupt partial detected" true
    (Crypto.Threshold.combine pk msg corrupted = None)

let test_threshold_wrong_message () =
  let pk, shares = Lazy.force threshold_key in
  let partials =
    List.filteri (fun i _ -> i < 3) shares
    |> List.map (fun sh -> Crypto.Threshold.partial_sign pk sh "right")
  in
  match Crypto.Threshold.combine pk "right" partials with
  | Some s -> Alcotest.(check bool) "other message rejected" false (Crypto.Threshold.verify pk "wrong" s)
  | None -> Alcotest.fail "combine failed"

let test_threshold_duplicate_partials () =
  let pk, shares = Lazy.force threshold_key in
  let msg = "dup" in
  let p0 = Crypto.Threshold.partial_sign pk (List.nth shares 0) msg in
  let p1 = Crypto.Threshold.partial_sign pk (List.nth shares 1) msg in
  (* Duplicates of the same party must not count toward the threshold. *)
  Alcotest.(check bool) "duplicates rejected" true
    (Crypto.Threshold.combine pk msg [ p0; p0; p0; p1 ] = None)

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "feed_bytes bounds" `Quick test_sha_feed_bytes_bounds;
          Alcotest.test_case "incremental split points" `Quick test_sha_split_points;
          Alcotest.test_case "copy branches" `Quick test_sha_copy_branches;
          Alcotest.test_case "bytes_hashed counter" `Quick test_sha_bytes_hashed_counter;
          qcheck prop_sha_streaming_matches_oneshot;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "mac",
        [
          Alcotest.test_case "basics" `Quick test_mac_basic;
          Alcotest.test_case "memo transparency" `Quick test_mac_memo_transparent;
        ] );
      ( "authenticator",
        [
          Alcotest.test_case "per-replica tags" `Quick test_authenticator;
          Alcotest.test_case "wire codec" `Quick test_authenticator_codec;
        ] );
      ( "rabin",
        [
          Alcotest.test_case "sign/verify" `Quick test_rabin_sign_verify;
          Alcotest.test_case "rejections" `Quick test_rabin_rejects;
          Alcotest.test_case "wire" `Quick test_rabin_wire;
        ] );
      ("keychain", [ Alcotest.test_case "both modes" `Quick test_keychain_modes ]);
      ( "shamir",
        [
          Alcotest.test_case "reconstruct from any k" `Quick test_shamir_reconstruct_subsets;
          Alcotest.test_case "k-1 shares insufficient" `Quick test_shamir_too_few_shares;
          Alcotest.test_case "bad parameters" `Quick test_shamir_bad_params;
          Alcotest.test_case "Feldman VSS" `Quick test_feldman;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "any k subset combines" `Quick test_threshold_combine_any_subset;
          Alcotest.test_case "k-1 insufficient" `Quick test_threshold_too_few;
          Alcotest.test_case "corrupt partial" `Quick test_threshold_corrupt_partial;
          Alcotest.test_case "wrong message" `Quick test_threshold_wrong_message;
          Alcotest.test_case "duplicate partials" `Quick test_threshold_duplicate_partials;
        ] );
    ]
