(* Dynamic client membership (§3.1): joins with challenge–response,
   single-session-per-identity, leave, and stale-session cleanup when the
   node table fills.

   Run with:  dune exec examples/dynamic_clients.exe *)

open Pbft

let () =
  let cfg =
    {
      (Config.default ~f:1) with
      Config.dynamic_clients = true;
      max_clients = 4;
      session_stale_threshold = 2.0;
    }
  in
  let cluster = Cluster.create ~seed:11 ~num_clients:8 ~service:(Service.null ()) cfg in
  let engine = Cluster.engine cluster in
  let clients = Cluster.clients cluster in

  (* Fill the 4-slot table. *)
  for i = 0 to 3 do
    Client.join clients.(i)
      ~idbuf:(Printf.sprintf "user%d:pw" i)
      (function
        | Some id -> Printf.printf "t=%.2fs user%d joined as client %d\n" (Simnet.Engine.now engine) i id
        | None -> Printf.printf "user%d join denied\n" i)
  done;
  Cluster.run cluster ~seconds:1.0;

  (* The table is full and nobody is stale yet: a 5th join is denied. *)
  Client.join clients.(4) ~idbuf:"user4:pw" (function
    | Some id ->
      Printf.printf "t=%.2fs user4 joined as client %d (a stale-session cleanup made room)\n"
        (Simnet.Engine.now engine) id
    | None ->
      Printf.printf "t=%.2fs user4 join denied (table full, no stale sessions)\n"
        (Simnet.Engine.now engine));
  Cluster.run cluster ~seconds:1.0;

  (* After the staleness threshold passes with no activity, the cleanup
     makes room (the denied user keeps retrying on its join timer, so the
     earlier join eventually succeeds too). *)
  Cluster.run cluster ~seconds:2.5;
  Client.join clients.(5) ~idbuf:"user5:pw" (function
    | Some id ->
      Printf.printf "t=%.2fs user5 joined as client %d (stale sessions cleaned)\n"
        (Simnet.Engine.now engine) id
    | None -> print_endline "user5 join denied (unexpected)");
  Cluster.run cluster ~seconds:3.0;

  (* Re-joining with an identity that already has a session terminates the
     old session: even a DDoS attacker holds at most one session per
     stolen credential. *)
  Client.join clients.(6) ~idbuf:"user5:pw" (function
    | Some id ->
      Printf.printf "t=%.2fs user5 re-joined from a new address as client %d (old session terminated)\n"
        (Simnet.Engine.now engine) id
    | None -> print_endline "re-join denied (unexpected)");
  Cluster.run cluster ~seconds:3.0;

  (* Leave frees the slot explicitly. *)
  Client.leave clients.(6);
  Cluster.run cluster ~seconds:1.0;
  let m = Replica.membership (Cluster.replica cluster 0) in
  Printf.printf "replica 0 member table: %d/%d sessions: %s\n" (Membership.count m)
    (Membership.capacity m)
    (String.concat "," (List.map string_of_int (Membership.clients m)))
