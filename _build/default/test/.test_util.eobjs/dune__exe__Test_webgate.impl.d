test/test_webgate.ml: Alcotest Crypto List Pbft Printf QCheck QCheck_alcotest Simnet Util Webgate
