type t =
  | Null
  | Int of int
  | Real of float
  | Text of string

let type_rank = function Null -> 0 | Int _ | Real _ -> 1 | Text _ -> 2

let compare_sql a b =
  match (a, b) with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> Float.compare (float_of_int x) y
  | Real x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | (Null | Int _ | Real _ | Text _), _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare_sql a b = 0
let is_null = function Null -> true | Int _ | Real _ | Text _ -> false

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  (* %.6g is the service's pinned REAL rendering: deterministic for a
     given IEEE double, and the bit pattern is replicated state. *)
  | Real f -> (Printf.sprintf "%.6g" f [@detlint.allow float_format])
  | Text s -> s

let as_number = function
  | Int i -> Some (float_of_int i)
  | Real f -> Some f
  | Text s -> float_of_string_opt s
  | Null -> None

let as_int = function
  | Int i -> Some i
  | Real f -> Some (int_of_float f)
  | Text s -> int_of_string_opt s
  | Null -> None

let truthy = function
  | Int i -> i <> 0
  | Real f -> f <> 0.0
  | Null | Text _ -> false

let encode w = function
  | Null -> Util.Codec.W.u8 w 0
  | Int i ->
    Util.Codec.W.u8 w 1;
    Util.Codec.W.int_as_u64 w i
  | Real f ->
    Util.Codec.W.u8 w 2;
    Util.Codec.W.f64 w f
  | Text s ->
    Util.Codec.W.u8 w 3;
    Util.Codec.W.lstring w s

let decode r =
  match Util.Codec.R.u8 r with
  | 0 -> Null
  | 1 -> Int (Util.Codec.R.int_of_u64 r)
  | 2 -> Real (Util.Codec.R.f64 r)
  | 3 -> Text (Util.Codec.R.lstring r)
  | _ -> raise Util.Codec.R.Truncated

(* Keys are compared bytewise; within Int the offset keeps ordering across
   the sign boundary. *)
let key_encode = function
  | Null -> "\x00"
  | Int i ->
    let buf = Bytes.create 9 in
    Bytes.set buf 0 '\x01';
    Bytes.set_int64_be buf 1 (Int64.add (Int64.of_int i) Int64.min_int);
    Bytes.to_string buf
  | Real f ->
    let bits = Int64.bits_of_float f in
    let adj = if Int64.compare bits 0L < 0 then Int64.lognot bits else Int64.logxor bits Int64.min_int in
    let buf = Bytes.create 9 in
    Bytes.set buf 0 '\x02';
    Bytes.set_int64_be buf 1 adj;
    Bytes.to_string buf
  | Text s -> "\x03" ^ s
