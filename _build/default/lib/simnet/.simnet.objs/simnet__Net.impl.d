lib/simnet/net.ml: Engine Float Hashtbl List String Trace Util
