(* The gateway front door: a single well-known address that fans many
   lightweight client sessions into a small pool of real PBFT client
   connections.

   Sessions speak a tiny binary frame protocol (far cheaper than the
   browser gateway's JSON seam — this is the datacenter front door, not
   the WAN edge). The door coalesces session operations into batches,
   flushing a batch upstream when it reaches [flush_bytes] (size
   trigger) or when the oldest queued operation has waited
   [flush_deadline] (deadline trigger). Each upstream connection is an
   ordinary {!Pbft.Client} obeying the one-outstanding-request rule, so
   coalescing composes with the primary's own request batching: the
   congestion window packs concurrent connection requests into
   pre-prepare batches exactly as it packs independent clients.

   Flow control is explicit. When the pending queue reaches [max_queue]
   the door does not buffer blindly — it answers immediately with a
   distinguishable shed status so an open-loop generator observes
   backpressure instead of unbounded queueing (§2.4's lesson applied at
   the front door). Session records live in a bounded LRU: under churn,
   the coldest session is evicted; a retransmission from an evicted
   session is simply re-admitted as a fresh record. *)

let frontdoor_addr = 4000

(* Binary frame conversion cost: a fraction of the JSON seam's. *)
let frame_cost bytes = 2e-6 +. (5e-9 *. float_of_int bytes)

(* --- session <-> door frames --- *)

let encode_request ~session ~req_id ~op =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.varint w session;
      Util.Codec.W.varint w req_id;
      Util.Codec.W.lstring w op)
    ()

let decode_request wire =
  match
    Util.Codec.decode
      (fun r ->
        let session = Util.Codec.R.varint r in
        let req_id = Util.Codec.R.varint r in
        let op = Util.Codec.R.lstring r in
        (session, req_id, op))
      wire
  with
  | v -> Some v
  | exception Util.Codec.R.Truncated -> None

type status = Done | Shed

let encode_reply ~status ~session ~req_id ~result =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.u8 w (match status with Done -> 0 | Shed -> 1);
      Util.Codec.W.varint w session;
      Util.Codec.W.varint w req_id;
      Util.Codec.W.lstring w result)
    ()

let decode_reply wire =
  match
    Util.Codec.decode
      (fun r ->
        let status = match Util.Codec.R.u8 r with 0 -> Done | _ -> Shed in
        let session = Util.Codec.R.varint r in
        let req_id = Util.Codec.R.varint r in
        let result = Util.Codec.R.lstring r in
        (status, session, req_id, result))
      wire
  with
  | v -> Some v
  | exception Util.Codec.R.Truncated -> None

(* --- coalesced upstream operations --- *)

(* A coalesced op is a magic-tagged list of (session, op) pairs; the
   service wrapper below unpacks it and runs each element against the
   wrapped service, so any service composes with the door. *)

let coalesce_magic = "GWB1"

let encode_coalesced entries =
  coalesce_magic
  ^ Util.Codec.encode
      (fun w l ->
        Util.Codec.W.list w
          (fun w (session, op) ->
            Util.Codec.W.varint w session;
            Util.Codec.W.lstring w op)
          l)
      entries

let decode_coalesced op =
  let mlen = String.length coalesce_magic in
  if String.length op >= mlen && String.sub op 0 mlen = coalesce_magic then
    match
      Util.Codec.decode
        (fun r ->
          Util.Codec.R.list r (fun r ->
              let session = Util.Codec.R.varint r in
              let o = Util.Codec.R.lstring r in
              (session, o)))
        (String.sub op mlen (String.length op - mlen))
    with
    | l -> Some l
    | exception Util.Codec.R.Truncated -> None
  else None

let encode_results results = Util.Codec.encode (fun w l -> Util.Codec.W.list w Util.Codec.W.lstring l) results

let decode_results s =
  match Util.Codec.decode (fun r -> Util.Codec.R.list r Util.Codec.R.lstring) s with
  | l -> Some l
  | exception Util.Codec.R.Truncated -> None

(* Wrap a service so coalesced ops execute element-wise against it. The
   session id rides along as the [client] of each inner execution, so
   session-scoped services (session_kv) key their state by front-door
   session rather than by upstream connection. Non-coalesced ops pass
   through untouched. *)
let wrap_service (inner : Pbft.Service.t) =
  {
    inner with
    Pbft.Service.name = "gw:" ^ inner.Pbft.Service.name;
    make =
      (fun pages ~first_page ->
        let instance = inner.Pbft.Service.make pages ~first_page in
        {
          instance with
          Pbft.Service.execute =
            (fun ~op ~client ~timestamp ~nondet ~readonly ->
              match decode_coalesced op with
              | None -> instance.Pbft.Service.execute ~op ~client ~timestamp ~nondet ~readonly
              | Some entries ->
                let cost = ref 1e-6 in
                let results =
                  List.map
                    (fun (session, o) ->
                      let result, c =
                        (instance.Pbft.Service.execute ~op:o ~client:session ~timestamp ~nondet
                           ~readonly)
                        [@trustlint.allow
                          "each element is one of this door's own admitted \
                           session frames: the door MAC-authenticated the \
                           coalesced batch as a PBFT client, and \
                           Replica.check_auth plus three-phase ordering ran \
                           before execute (§gateway trust model: the door is \
                           trusted for its sessions)"]
                      in
                      cost := !cost +. c;
                      result)
                    entries
                in
                (encode_results results, !cost));
        });
  }

(* --- the door --- *)

type config = {
  connections : int;  (** upstream PBFT client connections *)
  flush_bytes : int;  (** size trigger: flush once this many op bytes are queued *)
  flush_deadline : float;  (** deadline trigger: max queueing delay before a partial flush *)
  max_queue : int;  (** admission bound: operations queued beyond this are shed *)
  max_sessions : int;  (** LRU bound on live session records *)
}

type pending = {
  pr_session : int;
  pr_id : int;
  pr_op : string;
  pr_addr : int;  (** reply address — survives session eviction *)
  pr_enq : float;
}

type session = { mutable s_last_reply : (int * string) option }

type t = {
  cfg : config;
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  cpu : Simnet.Cpu.t;
  clients : Pbft.Client.t array;
  free : int Queue.t;
  pending : pending Queue.t;
  mutable pending_bytes : int;
  sessions : (int, session) Util.Lru.t;
  mutable deadline_timer : Simnet.Engine.timer option;
  latency : Util.Stats.t;
  mutable n_completed : int;
  mutable n_shed : int;
  mutable n_rejected : int;
  mutable n_cache_hits : int;
  mutable n_flushes_size : int;
  mutable n_flushes_deadline : int;
  mutable queue_peak : int;
  mutable alive : bool;
}

let now t = Simnet.Engine.now t.engine

let send_reply t ~dst ~status ~session ~req_id ~result =
  let frame = encode_reply ~status ~session ~req_id ~result in
  Simnet.Cpu.execute t.cpu ~cost:(frame_cost (String.length frame)) (fun () ->
      Simnet.Net.send t.net ~label:"gw-reply" ~src:frontdoor_addr ~dst frame)

(* Dispatch one coalesced batch on one free connection. *)
let rec dispatch t trigger =
  match Queue.take_opt t.free with
  | None -> ()
  | Some idx ->
    let rec take acc bytes =
      if bytes >= t.cfg.flush_bytes then List.rev acc
      else
        match Queue.take_opt t.pending with
        | None -> List.rev acc
        | Some p ->
          t.pending_bytes <- t.pending_bytes - String.length p.pr_op;
          take (p :: acc) (bytes + String.length p.pr_op)
    in
    let batch = take [] 0 in
    if batch = [] then Queue.push idx t.free
    else begin
      (match trigger with
      | `Size -> t.n_flushes_size <- t.n_flushes_size + 1
      | `Deadline -> t.n_flushes_deadline <- t.n_flushes_deadline + 1);
      let op = encode_coalesced (List.map (fun p -> (p.pr_session, p.pr_op)) batch) in
      Pbft.Client.invoke t.clients.(idx) op (fun encoded ->
          if t.alive then begin
            Queue.push idx t.free;
            let results =
              match decode_results encoded with
              | Some rs when List.length rs = List.length batch -> rs
              | Some _ | None -> List.map (fun _ -> encoded) batch
            in
            List.iter2
              (fun p result ->
                t.n_completed <- t.n_completed + 1;
                Util.Stats.add t.latency (now t -. p.pr_enq);
                (match Util.Lru.find t.sessions p.pr_session with
                | Some s ->
                  (s.s_last_reply <- Some (p.pr_id, result))
                  [@trustlint.allow
                    "the result came through Pbft.Client.invoke, which \
                     surfaces a reply only after f+1 matching replies whose \
                     MACs verify_reply_auth checked"]
                | None -> ());
                send_reply t ~dst:p.pr_addr ~status:Done ~session:p.pr_session ~req_id:p.pr_id
                  ~result)
              batch results;
            (* Keep draining: a freed connection takes another full batch
               if one is already queued; partial remainders wait for the
               deadline timer. *)
            if t.pending_bytes >= t.cfg.flush_bytes then dispatch_all t `Size
          end)
    end

and dispatch_all t trigger =
  let before = Queue.length t.pending in
  dispatch t trigger;
  if Queue.length t.pending < before && t.pending_bytes >= t.cfg.flush_bytes then
    dispatch_all t trigger

let rec arm_deadline t =
  match t.deadline_timer with
  | Some _ -> ()
  | None ->
    if not (Queue.is_empty t.pending) then
      t.deadline_timer <-
        Some
          (Simnet.Engine.timer t.engine ~delay:t.cfg.flush_deadline (fun () ->
               t.deadline_timer <- None;
               if t.alive then begin
                 if not (Queue.is_empty t.pending) then begin
                   dispatch t `Deadline;
                   while t.pending_bytes >= t.cfg.flush_bytes && not (Queue.is_empty t.free) do
                     dispatch t `Size
                   done
                 end;
                 arm_deadline t
               end))

let session_record t session =
  match Util.Lru.find t.sessions session with
  | Some s -> s
  | None ->
    let s = { s_last_reply = None } in
    (Util.Lru.put t.sessions session s)
    [@trustlint.allow
      "admission record for a not-yet-trusted edge session (§gateway trust \
       model): the door never trusts the op itself — replicas MAC-verify \
       every operation before execution — and the LRU bound caps what an \
       unauthenticated peer can pin"];
    s

let on_frame t ~src wire =
  if t.alive then
    Simnet.Cpu.execute t.cpu ~cost:(frame_cost (String.length wire)) (fun () ->
        match decode_request wire with
        | None -> t.n_rejected <- t.n_rejected + 1
        | Some (session, req_id, op) -> begin
          let s = session_record t session in
          match s.s_last_reply with
          | Some (id, result) when id = req_id ->
            (* Retransmission of an answered request: replay the cached
               reply instead of re-executing. *)
            t.n_cache_hits <- t.n_cache_hits + 1;
            send_reply t ~dst:src ~status:Done ~session ~req_id ~result
          | Some _ | None ->
            if Queue.length t.pending >= t.cfg.max_queue then begin
              t.n_shed <- t.n_shed + 1;
              send_reply t ~dst:src ~status:Shed ~session ~req_id ~result:""
            end
            else begin
              Queue.push
                { pr_session = session; pr_id = req_id; pr_op = op; pr_addr = src; pr_enq = now t }
                t.pending;
              (t.pending_bytes <- t.pending_bytes + String.length op)
              [@trustlint.allow
                "flow-control accounting must act before any crypto by \
                 design: the byte count drives batching and shedding at this \
                 door only, never replicated state"];
              t.queue_peak <- Int.max t.queue_peak (Queue.length t.pending);
              if t.pending_bytes >= t.cfg.flush_bytes then dispatch_all t `Size;
              arm_deadline t
            end
        end)

let create ~cfg ~engine ~net ~clients () =
  if Array.length clients < 1 then invalid_arg "Frontdoor.create: no upstream connections";
  let t =
    {
      cfg;
      engine;
      net;
      cpu = Simnet.Cpu.create engine;
      clients;
      free = Queue.create ();
      pending = Queue.create ();
      pending_bytes = 0;
      sessions = Util.Lru.create ~capacity:cfg.max_sessions;
      deadline_timer = None;
      latency = Util.Stats.create ();
      n_completed = 0;
      n_shed = 0;
      n_rejected = 0;
      n_cache_hits = 0;
      n_flushes_size = 0;
      n_flushes_deadline = 0;
      queue_peak = 0;
      alive = true;
    }
  in
  Array.iteri (fun i _ -> Queue.push i t.free) clients;
  Simnet.Net.register net frontdoor_addr (fun ~src wire -> on_frame t ~src wire);
  Simnet.Net.set_backlog_probe net frontdoor_addr (fun () -> Queue.length t.pending);
  t

let completed t = t.n_completed
let shed t = t.n_shed
let rejected t = t.n_rejected
let reply_cache_hits t = t.n_cache_hits
let flushes_size t = t.n_flushes_size
let flushes_deadline t = t.n_flushes_deadline
let queue_peak t = t.queue_peak
let queue_depth t = Queue.length t.pending
let session_evictions t = Util.Lru.evictions t.sessions
let live_sessions t = Util.Lru.length t.sessions
let latency_stats t = t.latency

let shutdown t =
  t.alive <- false;
  (match t.deadline_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
  t.deadline_timer <- None;
  Simnet.Net.unregister t.net frontdoor_addr
