(* The paper's motivating application: an Internet e-voting service with
   no centralized component (§1).

   Voters join the replicated service dynamically (§3.1), cast exactly one
   ballot each — enforced inside the replicated database — and tallies are
   read through the read-only optimization.

   Run with:  dune exec examples/evoting_demo.exe *)

open Pbft

let () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  (* threshold_replies: every ballot gets a receipt — a threshold signature
     no single (possibly Byzantine) replica could forge (§3.3.1). *)
  let cluster =
    Cluster.create ~seed:7 ~num_clients:6 ~service:(Evoting.service ()) ~threshold_replies:true cfg
  in
  let engine = Cluster.engine cluster in

  (* Everyone (officials and voters) joins with credentials; the service's
     authorize_join upcall maps them to identities. *)
  let joined = ref 0 in
  Array.iteri
    (fun i cl ->
      Client.join cl
        ~idbuf:(Printf.sprintf "citizen%d:pw%d" i i)
        (function
          | Some id ->
            incr joined;
            Printf.printf "citizen%d joined as client %d\n" i id
          | None -> Printf.printf "citizen%d join DENIED\n" i))
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:3.0;
  assert (!joined = 6);

  let official = Cluster.client cluster 0 in
  let election = 1 in

  (* Set up the election, then everyone votes. *)
  Client.invoke official (Evoting.create_election_sql ~name:"city mayor 2012") (fun r ->
      Printf.printf "create election -> %s\n" (String.trim r));
  Cluster.run cluster ~seconds:0.5;
  List.iter
    (fun choice ->
      Client.invoke official (Evoting.add_choice_sql ~election ~choice) (fun _ -> ());
      Cluster.run cluster ~seconds:0.5)
    [ "castro"; "liskov" ];

  let service_pk = Option.get (Cluster.threshold_public cluster) in
  Array.iteri
    (fun i cl ->
      if i > 0 then begin
        let choice = if i mod 2 = 0 then "castro" else "liskov" in
        Simnet.Engine.schedule engine ~delay:(0.1 *. float_of_int i) (fun () ->
            Client.invoke_certified cl
              (Evoting.cast_vote_sql ~election ~voter:(Printf.sprintf "citizen%d" i) ~choice)
              (fun r cert ->
                let receipt =
                  match cert with
                  | Some c
                    when Certificate.verify service_pk
                           ~client:(Option.get (Client.client_id cl))
                           ~rq_id:1 ~result:r c ->
                    "receipt verified (threshold-signed by the service)"
                  | Some _ -> "receipt INVALID"
                  | None -> "no receipt"
                in
                Printf.printf "citizen%d votes %-7s -> %s; %s\n" i choice
                  (if Evoting.vote_accepted r then "accepted" else "rejected: " ^ String.trim r)
                  receipt))
      end)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:2.0;

  (* Voting twice is rejected deterministically by every replica. *)
  Client.invoke (Cluster.client cluster 1)
    (Evoting.cast_vote_sql ~election ~voter:"citizen1" ~choice:"castro")
    (fun r ->
      Printf.printf "citizen1 votes again   -> %s\n"
        (if Evoting.vote_accepted r then "accepted (BUG!)" else "rejected (duplicate ballot)"));
  Cluster.run cluster ~seconds:1.0;

  (* Read the tally through the read-only path. *)
  Client.invoke official ~readonly:true (Evoting.tally_sql ~election) (fun r ->
      print_endline "--- tally ---";
      print_string r);
  Client.invoke (Cluster.client cluster 2) ~readonly:true (Evoting.turnout_sql ~election)
    (fun r ->
      print_endline "--- turnout ---";
      print_string r);
  Cluster.run cluster ~seconds:1.0
