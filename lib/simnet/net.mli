(** Unreliable datagram network — the simulation's UDP.

    Models the paper's testbed: point-to-point datagrams (IP multicast is
    off, §4), per-host NIC serialization at a configured bandwidth,
    propagation latency with jitter, Bernoulli packet loss, bounded
    receive buffers that drop under overload (the loop-back congestion
    loss of §2.4), targeted drop injection for the fault experiments, and
    partitions. Delivery is at-most-once, unordered under jitter — every
    PBFT robustness pathology in the paper stems from exactly these
    semantics.

    {b Fault plans.} Beyond the ambient profile, experiments can script
    faults against the deterministic engine clock: timed loss windows and
    auto-healing partitions ({!schedule_loss_window},
    {!schedule_partition}), per-link byte corruption / duplication /
    selective drops ({!set_link_corrupt}, {!set_link_duplicate},
    {!set_link_drop}), and expiring one-shot drop predicates
    ({!drop_next_matching}). All hooks are consulted with point lookups
    and draw from the engine RNG only when installed, so a benign run's
    trace digest is bit-identical with the fault machinery compiled in. *)

type addr = int

val any_addr : addr
(** Wildcard for one side of a link fault: [set_link_drop t ~src:3
    ~dst:any_addr] mutes everything replica 3 sends. An exact (src, dst)
    entry takes precedence over a sender wildcard, which takes precedence
    over a receiver wildcard. *)

type profile = {
  latency : float; (** mean one-way propagation delay, seconds *)
  jitter : float; (** stdev of the latency gaussian, seconds *)
  bandwidth : float; (** NIC egress bytes/second *)
  loss : float; (** Bernoulli datagram loss probability *)
  recv_buffer : int; (** datagrams queued at a receiver before overflow drops; 0 = unbounded *)
}

val lan_profile : profile
(** The paper's cluster: 1 GbE, ~150 µs RTT ping. *)

val wan_profile : profile
(** Wide-area deployment of §3.3.3: tens of ms latency. *)

type t

val create : Engine.t -> ?name:string -> ?trace:Trace.t -> profile -> t
(** Several nets may share one engine — a sharded deployment gives each
    replica group its own address space plus an edge net for sessions.
    [name] labels the net in multi-net trace dumps (default [""]). *)

val engine : t -> Engine.t
val name : t -> string
val trace : t -> Trace.t

val register : t -> addr -> (src:addr -> string -> unit) -> unit
(** Bind a receive handler; re-registering replaces the handler (a node
    restart re-binds its port). *)

val unregister : t -> addr -> unit
(** Datagrams to an unbound address are dropped silently, like UDP. *)

val send : t -> ?label:string -> ?detail:(unit -> string) -> src:addr -> dst:addr -> string -> unit
(** Fire-and-forget datagram. [detail] is forced only when the trace is
    enabled, so hot-path senders pay nothing for rich trace lines. *)

val set_loss : t -> float -> unit
val loss : t -> float

(** {2 One-shot targeted drops} *)

type drop_handle

val drop_next_matching :
  t -> ?expires_at:float -> (src:addr -> dst:addr -> label:string -> bool) -> drop_handle
(** One-shot targeted fault: the next datagram matching the predicate is
    silently dropped (the §2.4 experiments drop one specific packet).
    [expires_at] bounds the predicate's lifetime in absolute engine time
    (default: never) — a predicate that never fires would otherwise stay
    armed forever and eat an unrelated datagram in a later experiment
    phase. The returned handle can disarm it early via {!cancel_drop}. *)

val cancel_drop : drop_handle -> unit
(** Disarm a pending drop; no-op if it already matched or expired. *)

val drop_armed : drop_handle -> bool
(** True while the drop has neither matched nor been cancelled. *)

val pending_drops : t -> int
(** Armed, unexpired one-shot drops still waiting to match. *)

val drain_drops : t -> int
(** Disarm and discard every pending one-shot drop (scenario teardown);
    returns how many were still live. *)

(** {2 Partitions} *)

val partition : t -> addr list -> addr list -> unit
(** Drop everything between the two groups until {!heal}. *)

val heal : t -> unit

(** {2 Scripted fault plans}

    Timed faults driven off the engine clock; each call schedules its
    begin/end events immediately, so plans are laid out before [run] and
    replay deterministically. *)

val schedule_loss_window : t -> start:float -> duration:float -> float -> unit
(** [schedule_loss_window t ~start ~duration p] sets Bernoulli loss to
    [p] at engine time [start] and restores the previous value at
    [start +. duration]. Windows must not overlap. *)

val schedule_partition : t -> start:float -> duration:float -> addr list -> addr list -> unit
(** Partition the two groups at [start]; auto-heal at [start +.
    duration]. Overlapping scheduled partitions are not supported (the
    heal is unconditional). *)

(** {2 Per-link Byzantine fault hooks}

    Keyed by (src, dst) with {!any_addr} wildcards; consulted with point
    lookups on the send path. These model an adversarial sender or a
    misbehaving router on one link: selective muting, bit corruption,
    datagram duplication. *)

val set_link_drop : t -> src:addr -> dst:addr -> (label:string -> bool) -> unit
(** Drop every datagram on the link whose label satisfies the predicate
    (e.g. mute only ["pre-prepare"] while still voting). *)

val set_link_corrupt : t -> src:addr -> dst:addr -> (dst:addr -> label:string -> string -> string) -> unit
(** Rewrite the payload bytes on the link. The hook sees the concrete
    destination (useful under a wildcard [dst]) and the label; what it
    returns is what crosses the wire — and what gets charged for
    serialization. *)

val set_link_duplicate : t -> src:addr -> dst:addr -> int -> unit
(** Deliver [n] extra copies of every datagram on the link, each with an
    independent propagation sample (at-least-twice delivery). *)

val clear_link : t -> src:addr -> dst:addr -> unit
val clear_link_faults : t -> unit

(** {2 Counters for experiment reports} *)

val sent_count : t -> int
val delivered_count : t -> int
val dropped_count : t -> int
val bytes_sent : t -> int

val set_backlog_probe : t -> addr -> (unit -> int) -> unit
(** A node that processes datagrams on its virtual CPU exposes its queue
    length here; when [recv_buffer > 0] and the backlog at delivery time
    is at or above it, the datagram is dropped — kernel socket-buffer
    overflow, the loss mode the paper hit on the loop-back interface. *)
