test/test_util.ml: Alcotest Array Float Fun Int64 List Printf QCheck QCheck_alcotest String Util
