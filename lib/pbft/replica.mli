(** A PBFT replica: the complete server-side state machine.

    Implements normal-case three-phase agreement with request batching
    under the congestion window, the big-request and read-only
    optimizations, tentative execution, checkpointing with Merkle-tree
    state snapshots, state transfer for lagging replicas, view changes,
    MAC-authenticator session management (with the transient-key recovery
    stall of §2.3), the non-determinism upcalls of §2.5, and the paper's
    dynamic client membership extension (§3.1).

    A replica is driven entirely by the simulation: datagrams arrive via
    the network, work is charged to the replica's virtual CPU, and timers
    run on the engine. Restarting a replica (for the recovery
    experiments) discards all transient state — agreement log, session
    keys, memory state region — and keeps only what the deployment's
    service made durable. *)

open Types

(** A-priori deployment knowledge every node ships with: replica
    verifiers, the replica-group secret used for stateless join
    challenges, and (in static mode) the client table. *)
type registry = {
  reg_verifiers : Crypto.Keychain.verifier array;
  reg_group_secret : string;
  reg_static_clients : (client_id * int * string) list;  (** (client, addr, pubkey) *)
}

type t

val create :
  cfg:Config.t ->
  costs:Costmodel.t ->
  engine:Simnet.Engine.t ->
  net:Simnet.Net.t ->
  id:replica_id ->
  signer:Crypto.Keychain.signer ->
  registry:registry ->
  service:Service.t ->
  ?threshold:Crypto.Threshold.public * Crypto.Threshold.share ->
  unit ->
  t
(** Construct and register the replica on the network. When a threshold
    share is supplied, every reply carries a partial signature that
    clients combine into a reply certificate (§3.3.1, {!Certificate}). *)

val id : t -> replica_id
val view : t -> view
val is_primary : t -> bool
val last_executed : t -> seqno
val stable_checkpoint : t -> seqno
val executed_requests : t -> int
val view_changes : t -> int

val state_transfers : t -> int
(** All state transfers started, demotion and rejoin alike (the sum of
    {!demotion_transfers} and {!rejoin_transfers}). *)

val demotion_transfers : t -> int
(** Transfers started because this (running) replica fell behind a
    stable checkpoint (§2.4). *)

val rejoin_transfers : t -> int
(** Transfers started by the crash/restart rejoin path, including ring
    rotations past peers that were not ahead of the disk image. *)

val transfer_pages_fetched : t -> int
(** Distinct pages actually pulled over the wire by completed transfers —
    the Merkle-diff cost. *)

val transfer_pages_full : t -> int
(** Pages a full (every-leaf) transfer would have pulled for the same
    completed transfers — the baseline the Merkle diff is saving
    against. *)

val auth_failures : t -> int
(** Messages dropped for failed/unavailable authentication — nonzero on a
    recovering replica before the key rebroadcast arrives (§2.3). *)

val nondet_rejects : t -> int
(** Pre-prepares / replayed entries rejected by non-determinism
    validation (§2.5). *)

val checkpoints_taken : t -> int
(** Checkpoint snapshots taken so far, including the genesis checkpoint
    and the snapshot installed after a completed state transfer. *)

val undo_snapshots : t -> int
(** Copy-on-write undo snapshots taken to guard tentative execution. *)

val demotions : t -> int
(** Times this replica fell behind a stable checkpoint and had to demote
    itself into a state transfer to rejoin (the §2.4 packet-loss
    pathology: a lagging replica is effectively out of the group until
    the next checkpoint). *)

val ro_reply_evictions : t -> int
(** Read-only reply-cache entries displaced by LRU capacity pressure
    (the cache is bounded at [Config.max_clients]; session termination
    drops entries without counting here). *)

val speculative_execs : t -> int
(** Batches executed before their commit certificate landed: tentative
    executions in serial mode, pipelined speculation when
    [Config.pipeline_depth > 1]. *)

val rollbacks : t -> int
(** Rollbacks that actually undid speculative executions (a view change
    or new-view installation struck while [last_executed] was ahead of
    the committed prefix). *)

val view_change_attempts : t -> int
(** Consecutive view changes started without execution progress — the
    exponent of the current view-change timeout backoff; 0 after any
    request commits. *)

val signer : t -> Crypto.Keychain.signer
(** This replica's signing key. Exposed for the fault-injection harness:
    a Byzantine wrapper forges protocol messages that carry the replica's
    legitimate authentication ({!Adversary}). *)

val session_key_for : t -> replica_id -> Crypto.Mac.key option
(** The MAC session key this replica chose for authenticating messages
    it sends to [peer], once established. Exposed for {!Adversary}, which
    must re-authenticate messages it rewrites in flight. *)

val set_record_journal : t -> bool -> unit
(** Enable the committed-execution journal (off by default — benign runs
    pay nothing for it). *)

val exec_journal : t -> (seqno * Types.digest) list
(** Committed executions in sequence order, as [(seq, batch_digest)]
    pairs. Entries skipped over by a state transfer leave gaps. The fault
    harness compares journals pairwise across correct replicas: agreement
    on every common sequence number is the safety property. *)

val cpu : t -> Simnet.Cpu.t
val pages : t -> Statemgr.Pages.t
val membership : t -> Membership.t

val install_session_key : t -> addr:int -> Crypto.Mac.key -> unit
(** Out-of-band session-key installation used by static-mode setup; the
    in-band path is the Session_key message. *)

val shutdown : t -> unit
(** Stop the replica: unregister from the network and cancel timers. The
    object becomes inert (messages to its address vanish, like UDP). *)

val crash : t -> unit
(** Crash the replica: shut it down, persisting only the newest stable
    checkpoint as the simulated disk image. All volatile state — log,
    quorum tallies, session keys, caches, speculative state — is lost;
    a later {!restart} reloads the disk image. *)

val restart : t -> t
(** Build a fresh replica with the same identity and configuration but
    empty transient state, re-registered on the network — the paper's
    stop-and-restart recovery experiment (§2.3). State reloads from the
    disk checkpoint persisted by {!crash} (if any) and catches the rest
    up with a Merkle-diff state transfer that fetches only pages that
    diverged after the crash; with [Config.rejoin_key_refresh] the
    replica also re-establishes session keys immediately instead of
    stalling on the lost authenticator vector. *)

val key_epoch : t -> int
(** Current proactive key-refresh epoch (0 until the first refresh). *)

val is_recovering : t -> bool
val recovery_completed_at : t -> float option
(** Virtual time at which the post-restart state transfer finished and
    normal execution resumed; [None] if never restarted / not yet done. *)
