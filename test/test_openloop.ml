(* Open-loop generator + gateway front door: flush triggers, determinism,
   admission control, session churn and the reply cache. *)

open Webgate

(* --- frame & coalescing codecs --- *)

let test_frame_roundtrips () =
  let wire = Frontdoor.encode_request ~session:123456 ~req_id:42 ~op:"payload" in
  Alcotest.(check (option (triple int int string)))
    "request" (Some (123456, 42, "payload"))
    (Frontdoor.decode_request wire);
  Alcotest.(check (option (triple int int string))) "truncated request" None
    (Frontdoor.decode_request (String.sub wire 0 (String.length wire - 2)));
  (match Frontdoor.decode_reply (Frontdoor.encode_reply ~status:Frontdoor.Shed ~session:7 ~req_id:9 ~result:"") with
  | Some (Frontdoor.Shed, 7, 9, "") -> ()
  | Some _ | None -> Alcotest.fail "shed reply should roundtrip");
  (match Frontdoor.decode_reply (Frontdoor.encode_reply ~status:Frontdoor.Done ~session:7 ~req_id:9 ~result:"ok") with
  | Some (Frontdoor.Done, 7, 9, "ok") -> ()
  | Some _ | None -> Alcotest.fail "done reply should roundtrip")

let test_coalesced_roundtrip () =
  let entries = [ (1, "alpha"); (99, ""); (100000, "gamma") ] in
  Alcotest.(check (option (list (pair int string))))
    "coalesced" (Some entries)
    (Frontdoor.decode_coalesced (Frontdoor.encode_coalesced entries));
  (* A plain operation must not parse as a batch. *)
  Alcotest.(check (option (list (pair int string)))) "plain op passes through" None
    (Frontdoor.decode_coalesced "ordinary-operation");
  Alcotest.(check (option (list string)))
    "results" (Some [ "a"; ""; "c" ])
    (Frontdoor.decode_results (Frontdoor.encode_results [ "a"; ""; "c" ]))

(* --- arrival processes --- *)

let test_arrival_rates () =
  Alcotest.(check (float 1e-9)) "poisson flat" 500.0
    (Harness.Openloop.rate_at (Harness.Openloop.Poisson 500.0) 12.34);
  let b = Harness.Openloop.Bursty { base = 100.0; burst = 900.0; period = 1.0; duty = 0.25 } in
  Alcotest.(check (float 1e-9)) "burst phase" 900.0 (Harness.Openloop.rate_at b 0.1);
  Alcotest.(check (float 1e-9)) "base phase" 100.0 (Harness.Openloop.rate_at b 0.5);
  Alcotest.(check (float 1e-9)) "bursty mean" 300.0 (Harness.Openloop.mean_rate b);
  let d = Harness.Openloop.Diurnal { mean = 200.0; amplitude = 0.5; period = 1.0 } in
  Alcotest.(check (float 1e-9)) "diurnal mean" 200.0 (Harness.Openloop.mean_rate d);
  Alcotest.(check (float 1e-6)) "diurnal peak" 300.0 (Harness.Openloop.rate_at d 0.25)

(* --- deterministic flush boundaries --- *)

(* A bursty arrival process exercises both flush triggers: the burst
   phase accumulates [flush_bytes] quickly (size flush), the quiet phase
   leaves partial batches to the deadline timer. Two runs of the same
   spec must produce bit-identical message traces — the size/deadline
   race is resolved by the virtual clock, never by host state. *)
let small_spec () =
  let cfg = Pbft.Config.default ~f:1 in
  {
    (Harness.Openloop.default_spec cfg) with
    Harness.Openloop.sessions = 200;
    arrival = Harness.Openloop.Bursty { base = 150.0; burst = 4000.0; period = 0.1; duty = 0.3 };
    warmup = 0.05;
    duration = 0.35;
    op_bytes = 128;
    gen_conns = 8;
    gateway =
      {
        Frontdoor.connections = 4;
        flush_bytes = 1024;
        flush_deadline = 0.003;
        max_queue = 4096;
        max_sessions = 256;
      };
  }

let trace_digest cluster =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Simnet.Trace.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f|%d|%d|%s|%d|%s\n" e.time e.src e.dst e.label e.size e.detail))
    (Simnet.Trace.entries (Pbft.Cluster.trace cluster));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_flush_triggers_deterministic () =
  let run () =
    let o, cluster, door, gen = Harness.Openloop.run (small_spec ()) in
    Harness.Openloop.stop_generator gen;
    let d = trace_digest cluster in
    Frontdoor.shutdown door;
    (o, d)
  in
  let o1, d1 = run () in
  let o2, d2 = run () in
  Alcotest.(check bool) "size flushes occur" true (o1.Harness.Openloop.flushes_size > 0);
  Alcotest.(check bool) "deadline flushes occur" true (o1.Harness.Openloop.flushes_deadline > 0);
  Alcotest.(check bool) "requests complete" true (o1.Harness.Openloop.base.Harness.Scenario.completed > 0);
  Alcotest.(check string) "bit-identical trace" d1 d2;
  Alcotest.(check int) "same completions"
    o1.Harness.Openloop.base.Harness.Scenario.completed
    o2.Harness.Openloop.base.Harness.Scenario.completed;
  Alcotest.(check int) "same size flushes" o1.Harness.Openloop.flushes_size
    o2.Harness.Openloop.flushes_size;
  Alcotest.(check int) "same deadline flushes" o1.Harness.Openloop.flushes_deadline
    o2.Harness.Openloop.flushes_deadline

(* --- admission control --- *)

let test_shed_is_distinguishable () =
  (* A queue bound far below the offered load forces shedding; the
     generator must observe the distinct Shed status (not timeouts, not
     garbled results) and the counts must reconcile with the door's. *)
  let spec =
    {
      (small_spec ()) with
      Harness.Openloop.arrival = Harness.Openloop.Poisson 20000.0;
      duration = 0.3;
      gateway =
        {
          (small_spec ()).Harness.Openloop.gateway with
          Frontdoor.connections = 2;
          max_queue = 32;
        };
      sessions = 300;
    }
  in
  let o, _cluster, door, gen = Harness.Openloop.run spec in
  Harness.Openloop.stop_generator gen;
  Alcotest.(check bool) "door sheds" true (Frontdoor.shed door > 0);
  Alcotest.(check bool) "generator sees shed replies" true (o.Harness.Openloop.gen_shed > 0);
  Alcotest.(check bool) "still completes under overload" true
    (o.Harness.Openloop.base.Harness.Scenario.completed > 0);
  Alcotest.(check int) "no malformed frames" 0 (Frontdoor.rejected door);
  Alcotest.(check bool) "shed observed <= shed sent" true
    (o.Harness.Openloop.gen_shed <= Frontdoor.shed door);
  Frontdoor.shutdown door

(* --- session churn --- *)

let test_eviction_readmission () =
  (* Far more sessions than LRU slots: records churn out constantly. A
     retransmission from an evicted session must be re-admitted as a
     fresh record and answered — eviction loses the reply cache, never
     the ability to make progress. *)
  let spec =
    {
      (small_spec ()) with
      Harness.Openloop.arrival = Harness.Openloop.Poisson 1200.0;
      sessions = 256;
      duration = 0.5;
      retransmit = Some 0.06;
      gateway = { (small_spec ()).Harness.Openloop.gateway with Frontdoor.max_sessions = 32 };
    }
  in
  let o, _cluster, door, gen = Harness.Openloop.run spec in
  Harness.Openloop.stop_generator gen;
  Alcotest.(check bool) "sessions evicted" true (Frontdoor.session_evictions door > 0);
  Alcotest.(check int) "live sessions bounded" 32 (Frontdoor.live_sessions door);
  Alcotest.(check bool) "progress continues under churn" true
    (o.Harness.Openloop.base.Harness.Scenario.completed > 200);
  Alcotest.(check int) "evicted retransmissions accepted, not rejected" 0
    (Frontdoor.rejected door);
  Frontdoor.shutdown door

(* --- reply cache --- *)

let test_reply_cache_replays () =
  let cfg = Pbft.Config.default ~f:1 in
  let cluster =
    Pbft.Cluster.create ~seed:42 ~num_clients:2
      ~service:(Frontdoor.wrap_service (Pbft.Service.counter ())) cfg
  in
  Simnet.Trace.set_enabled (Pbft.Cluster.trace cluster) false;
  let net = Pbft.Cluster.net cluster in
  let door =
    Frontdoor.create
      ~cfg:
        {
          Frontdoor.connections = 2;
          flush_bytes = 64;
          flush_deadline = 0.002;
          max_queue = 64;
          max_sessions = 16;
        }
      ~engine:(Pbft.Cluster.engine cluster) ~net ~clients:(Pbft.Cluster.clients cluster) ()
  in
  let session_addr = 7777 in
  let replies = ref [] in
  Simnet.Net.register net session_addr (fun ~src:_ wire -> replies := wire :: !replies);
  let frame = Frontdoor.encode_request ~session:5 ~req_id:1 ~op:"incr" in
  Simnet.Net.send net ~src:session_addr ~dst:Frontdoor.frontdoor_addr frame;
  Pbft.Cluster.run cluster ~seconds:1.0;
  Alcotest.(check int) "executed once" 1 (Frontdoor.completed door);
  Alcotest.(check int) "one reply" 1 (List.length !replies);
  (* The identical frame again: answered from the session's last-reply
     cache without re-executing. *)
  Simnet.Net.send net ~src:session_addr ~dst:Frontdoor.frontdoor_addr frame;
  Pbft.Cluster.run cluster ~seconds:0.5;
  Alcotest.(check int) "cache hit" 1 (Frontdoor.reply_cache_hits door);
  Alcotest.(check int) "not re-executed" 1 (Frontdoor.completed door);
  match List.rev_map Frontdoor.decode_reply !replies with
  | [ Some (Frontdoor.Done, 5, 1, r1); Some (Frontdoor.Done, 5, 1, r2) ] ->
    Alcotest.(check string) "replayed result identical" r1 r2
  | _ -> Alcotest.fail "expected two well-formed Done replies for req 1"

let () =
  Alcotest.run "openloop"
    [
      ( "codec",
        [
          Alcotest.test_case "frames roundtrip" `Quick test_frame_roundtrips;
          Alcotest.test_case "coalescing roundtrip" `Quick test_coalesced_roundtrip;
        ] );
      ("arrivals", [ Alcotest.test_case "rates & means" `Quick test_arrival_rates ]);
      ( "gateway",
        [
          Alcotest.test_case "flush triggers deterministic" `Slow
            test_flush_triggers_deterministic;
          Alcotest.test_case "shed is distinguishable" `Slow test_shed_is_distinguishable;
          Alcotest.test_case "eviction & readmission" `Slow test_eviction_readmission;
          Alcotest.test_case "reply cache replays" `Quick test_reply_cache_replays;
        ] );
    ]
