lib/simnet/cpu.ml: Engine Float
