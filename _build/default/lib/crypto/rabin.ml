open Bignum

type keypair = {
  p : Nat.t;
  q : Nat.t;
  n : Nat.t;
  (* CRT precomputation: c_p = q·(q⁻¹ mod p), c_q = p·(p⁻¹ mod q). *)
  c_p : Nat.t;
  c_q : Nat.t;
  exp_p : Nat.t; (* (p+1)/4 *)
  exp_q : Nat.t; (* (q+1)/4 *)
}

type public_key = { pk_n : Nat.t }
type signature = { counter : int; root : Nat.t }

let generate rng ~bits =
  let half = bits / 2 in
  let p = Prime.generate_blum rng ~bits:half in
  let rec distinct_q () =
    let q = Prime.generate_blum rng ~bits:half in
    if Nat.equal p q then distinct_q () else q
  in
  let q = distinct_q () in
  let n = Nat.mul p q in
  let inv_q_mod_p =
    match Nat.mod_inverse q p with Some v -> v | None -> assert false
  in
  let inv_p_mod_q =
    match Nat.mod_inverse p q with Some v -> v | None -> assert false
  in
  let four = Nat.of_int 4 in
  {
    p;
    q;
    n;
    c_p = Nat.mul q inv_q_mod_p;
    c_q = Nat.mul p inv_p_mod_q;
    exp_p = Nat.div (Nat.add p Nat.one) four;
    exp_q = Nat.div (Nat.add q Nat.one) four;
  }

let public kp = { pk_n = kp.n }
let modulus pk = pk.pk_n

(* Map (message, counter) to an element of Z_n by hashing with domain
   separation and reducing. *)
let hash_to_nat n msg counter =
  let h1 = Sha256.digest (Printf.sprintf "rabin-1|%d|%s" counter msg) in
  let h2 = Sha256.digest (Printf.sprintf "rabin-2|%d|%s" counter msg) in
  Nat.rem (Nat.of_bytes_be (h1 ^ h2)) n

(* Euler criterion: m is a QR mod prime p iff m^((p-1)/2) ≡ 1. *)
let is_qr m p =
  if Nat.is_zero (Nat.rem m p) then false
  else Nat.equal (Nat.mod_exp m (Nat.shift_right (Nat.sub p Nat.one) 1) p) Nat.one

let sign kp msg =
  let rec attempt counter =
    if counter > 1000 then failwith "Rabin.sign: no quadratic residue found";
    let m = hash_to_nat kp.n msg counter in
    if is_qr m kp.p && is_qr m kp.q then begin
      let rp = Nat.mod_exp m kp.exp_p kp.p in
      let rq = Nat.mod_exp m kp.exp_q kp.q in
      let root = Nat.rem (Nat.add (Nat.mod_mul rp kp.c_p kp.n) (Nat.mod_mul rq kp.c_q kp.n)) kp.n in
      { counter; root }
    end
    else attempt (counter + 1)
  in
  attempt 0

let verify pk msg s =
  Nat.compare s.root pk.pk_n < 0
  &&
  let m = hash_to_nat pk.pk_n msg s.counter in
  Nat.equal (Nat.mod_mul s.root s.root pk.pk_n) m

let signature_to_string s =
  Util.Codec.encode
    (fun w (c, root) ->
      Util.Codec.W.varint w c;
      Util.Codec.W.lstring w (Nat.to_bytes_be root))
    (s.counter, s.root)

let signature_of_string str =
  match
    Util.Codec.decode
      (fun r ->
        let counter = Util.Codec.R.varint r in
        let root = Nat.of_bytes_be (Util.Codec.R.lstring r) in
        { counter; root })
      str
  with
  | s -> Some s
  | exception Util.Codec.R.Truncated -> None

let public_to_string pk = Util.Codec.encode (fun w n -> Util.Codec.W.lstring w (Nat.to_bytes_be n)) pk.pk_n

let public_of_string str =
  match Util.Codec.decode (fun r -> Nat.of_bytes_be (Util.Codec.R.lstring r)) str with
  | n -> Some { pk_n = n }
  | exception Util.Codec.R.Truncated -> None
