type t = {
  engine : Engine.t;
  free_at : float array; (* one slot per virtual core *)
  mutable busy_accum : float;
  mutable queued : int;
  mutable peak_queued : int;
}

let create ?(cores = 1) engine =
  if cores < 1 then invalid_arg "Cpu.create: cores must be at least 1";
  { engine; free_at = Array.make cores 0.0; busy_accum = 0.0; queued = 0; peak_queued = 0 }

let cores t = Array.length t.free_at

(* Earliest-free core, lowest index on ties — a strict order so dispatch
   is deterministic. With one core this degenerates to index 0 and the
   arithmetic below is the exact float expression the single-core model
   used, keeping pinned trace digests bit-identical. *)
let pick t =
  let best = ref 0 in
  for i = 1 to Array.length t.free_at - 1 do
    if t.free_at.(i) < t.free_at.(!best) then best := i
  done;
  !best

let dispatch t cost =
  let cost = Float.max 0.0 cost in
  let core = pick t in
  let start = Float.max (Engine.now t.engine) t.free_at.(core) in
  let finish = start +. cost in
  t.free_at.(core) <- finish;
  t.busy_accum <- t.busy_accum +. cost;
  finish

let note_queued t =
  t.queued <- t.queued + 1;
  if t.queued > t.peak_queued then t.peak_queued <- t.queued

let execute t ~cost f =
  let finish = dispatch t cost in
  note_queued t;
  Engine.schedule_at t.engine ~time:finish (fun () ->
      t.queued <- t.queued - 1;
      f ())

let execute_split t ~costs f =
  match costs with
  | [] -> execute t ~cost:0.0 f
  | costs ->
      let finish = List.fold_left (fun acc c -> Float.max acc (dispatch t c)) 0.0 costs in
      note_queued t;
      Engine.schedule_at t.engine ~time:finish (fun () ->
          t.queued <- t.queued - 1;
          f ())

let busy_until t = Array.fold_left Float.max t.free_at.(0) t.free_at
let queue_length t = t.queued
let peak_queue_length t = t.peak_queued
let total_busy t = t.busy_accum

let utilization t ~since =
  let span = Engine.now t.engine -. since in
  if span <= 0.0 then 0.0
  else Float.min 1.0 (t.busy_accum /. (span *. float_of_int (Array.length t.free_at)))
