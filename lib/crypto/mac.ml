type key = string

let tag_size = 8

(* In the simulator, sender and receiver live in one process, and the
   wire/payload sharing in the message layer makes the receiver verify a
   MAC over the *physically same* string the sender just tagged. A small
   direct-mapped memo therefore turns almost every verification into a
   lookup of the sender's computation — halving the HMAC work of a run
   without changing a single verdict (the memo is keyed on the exact
   (key, message) pair and stores a pure function's result). *)
type slot = { sl_key : key; sl_msg : string; sl_tag : string }

let slots = 8192
let cache : slot option array = Array.make slots None

(* Cheap fingerprint: length plus a few probe bytes of message and key.
   Collisions just overwrite; correctness comes from the equality checks
   on lookup. *)
let slot_index ~key msg =
  let n = String.length msg in
  let h = ref (n * 0x9e3779b1) in
  if n > 0 then begin
    h := (!h * 31) lxor Char.code (String.unsafe_get msg 0);
    h := (!h * 31) lxor Char.code (String.unsafe_get msg (n - 1));
    h := (!h * 31) lxor Char.code (String.unsafe_get msg (n / 2))
  end;
  let kn = String.length key in
  if kn > 0 then begin
    h := (!h * 31) lxor Char.code (String.unsafe_get key 0);
    h := (!h * 31) lxor Char.code (String.unsafe_get key (kn - 1))
  end;
  !h land (slots - 1)

let compute ~key msg =
  let idx = slot_index ~key msg in
  match Array.unsafe_get cache idx with
  (* Pointer equality on purpose: the cache is a best-effort memo and a
     miss on an equal-but-distinct string only costs a recompute. *)
  | Some s when ((s.sl_msg == msg) [@detlint.allow physical_eq]) && String.equal s.sl_key key ->
    s.sl_tag
  | _ ->
    let tag = String.sub (Hmac.mac ~key msg) 0 tag_size in
    Array.unsafe_set cache idx (Some { sl_key = key; sl_msg = msg; sl_tag = tag });
    tag

let verify ~key msg ~tag =
  String.length tag = tag_size
  &&
  let expected = compute ~key msg in
  let diff = ref 0 in
  String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
  !diff = 0

let fresh_key rng = Bytes.to_string (Util.Rng.bytes rng 16)
