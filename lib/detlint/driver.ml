let read_file path = In_channel.with_open_bin path In_channel.input_all

let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  Parse.implementation lexbuf

let lint_source ~rel src =
  let str = parse_string ~filename:rel src in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  Rules.lint_structure ~rel ~lines str

(* Deterministic directory walk: sorted entries, dotfiles and build
   artefacts skipped. *)
let rec walk dir acc =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || String.equal name "_build" then acc
      else
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk path acc
        else if Filename.check_suffix name ".ml" then path :: acc
        else acc)
    acc entries

type outcome = {
  files_scanned : int;
  findings : Finding.t list;
  suppressed : int;
  stale_allows : Allowlist.entry list;
  errors : string list;
}

let relativize ~root path =
  let root = if Filename.check_suffix root "/" then root else root ^ "/" in
  let rel =
    if String.length path > String.length root && String.starts_with ~prefix:root path then
      String.sub path (String.length root) (String.length path - String.length root)
    else path
  in
  String.concat "/" (String.split_on_char Filename.dir_sep.[0] rel)

let run ?(dirs = [ "lib" ]) ?allow_file ~root () =
  let allow_path =
    match allow_file with Some f -> f | None -> Filename.concat root "detlint.allow"
  in
  let allow = if Sys.file_exists allow_path then Allowlist.load allow_path else Allowlist.empty in
  let files =
    List.concat_map
      (fun d ->
        let dir = Filename.concat root d in
        if Sys.file_exists dir && Sys.is_directory dir then List.rev (walk dir []) else [])
      dirs
    |> List.sort String.compare
  in
  let findings = ref [] in
  let errors = ref [] in
  let suppressed = ref 0 in
  List.iter
    (fun path ->
      let rel = relativize ~root path in
      match lint_source ~rel (read_file path) with
      | fs ->
        List.iter
          (fun f -> if Allowlist.suppresses allow f then incr suppressed else findings := f :: !findings)
          fs
      | exception exn -> (
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
          errors := Format.asprintf "%s: %a" rel Location.print_report report :: !errors
        | Some `Already_displayed | None -> raise exn))
    files;
  {
    files_scanned = List.length files;
    findings = List.sort Finding.compare !findings;
    suppressed = !suppressed;
    stale_allows = Allowlist.stale allow;
    errors = List.rev !errors;
  }
