(* Command-line front end: regenerate any table, figure or robustness
   experiment from the paper. *)

open Cmdliner

let seed =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration =
  let doc = "Measured virtual seconds per configuration." in
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS" ~doc)

let print_report r = print_string (Harness.Report.render r)

let run_table1 seed duration = print_report (Harness.Experiments.table1 ~seed ~duration ())
let run_figure4 seed duration = print_report (Harness.Experiments.figure4 ~seed ~duration ())
let run_figure5 seed duration = print_report (Harness.Experiments.figure5 ~seed ~duration ())
let run_acid seed duration = print_report (Harness.Experiments.acid_comparison ~seed ~duration ())
let run_figure1 seed = print_string (Harness.Experiments.figure1 ~seed ())
let run_figure2 seed = print_string (Harness.Experiments.figure2 ~seed ())
let run_figure3 seed = print_string (Harness.Experiments.figure3 ~seed ())
let run_recovery seed = print_report (Harness.Experiments.recovery ~seed ())
let run_packet_loss seed = print_report (Harness.Experiments.packet_loss ~seed ())
let run_nondet seed = print_report (Harness.Experiments.nondet_validation ~seed ())
let run_wan seed duration = print_report (Harness.Experiments.wan ~seed ~duration ())
let run_ablation seed duration = print_report (Harness.Experiments.batching_ablation ~seed ~duration ())
let run_sizes seed duration = print_report (Harness.Experiments.payload_sweep ~seed ~duration ())
let run_loss seed = print_report (Harness.Experiments.loss_sweep ~seed ())

let run_all seed duration =
  print_string (Harness.Experiments.figure1 ~seed ());
  print_newline ();
  print_string (Harness.Experiments.figure2 ~seed ());
  print_newline ();
  print_string (Harness.Experiments.figure3 ~seed ());
  print_newline ();
  run_table1 seed duration;
  print_newline ();
  run_figure5 seed duration;
  print_newline ();
  run_acid seed duration;
  print_newline ();
  run_recovery seed;
  print_newline ();
  run_packet_loss seed;
  print_newline ();
  run_nondet seed;
  print_newline ();
  run_wan seed duration;
  print_newline ();
  run_ablation seed duration

let cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ seed $ duration)

let cmd_seed_only name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ seed)

let () =
  let info =
    Cmd.info "pbftrepro" ~version:"1.0"
      ~doc:
        "Reproduction of 'On the Practicality of Practical Byzantine Fault Tolerance' \
         (MIDDLEWARE 2012): PBFT middleware, dynamic client membership, SQL state abstraction, \
         and every table/figure of the evaluation, on a deterministic simulator."
  in
  let cmds =
    [
      cmd "table1" "Table 1: null-op throughput across the ten configurations" run_table1;
      cmd "figure4" "Figure 4: the Table 1 series" run_figure4;
      cmd "figure5" "Figure 5: PBFT + SQL insert throughput" run_figure5;
      cmd "acid" "ACID vs No-ACID comparison (§4.2)" run_acid;
      cmd_seed_only "figure1" "Figure 1: normal-case message flow trace" run_figure1;
      cmd_seed_only "figure2" "Figure 2: dynamic client join trace" run_figure2;
      cmd_seed_only "figure3" "Figure 3: the VFS seam, standalone and replicated" run_figure3;
      cmd_seed_only "recovery" "Replica restart vs authenticator rebroadcast (§2.3)" run_recovery;
      cmd_seed_only "packet-loss" "Single-datagram loss experiments (§2.4)" run_packet_loss;
      cmd_seed_only "nondet" "Non-determinism validation vs log replay (§2.5)" run_nondet;
      cmd "wan" "Wide-area deployment (§3.3.3)" run_wan;
      cmd "ablation" "Batching knob sensitivity" run_ablation;
      cmd "sizes" "Payload size sweep (§4.1)" run_sizes;
      cmd_seed_only "loss" "Loss sweep: optimization vs robustness" run_loss;
      cmd "all" "Run every experiment" run_all;
    ]
  in
  exit (Cmd.eval (Cmd.group info cmds))
