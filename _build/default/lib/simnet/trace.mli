(** Global message log.

    §2.2: the paper's authors modified PBFT to run on one host and logged
    every inter-replica message against the common clock in order to
    reason about the system at all. This module is that instrumentation,
    built in: every datagram (and, optionally, application events) is
    recorded with its virtual timestamp. Figures 1 and 2 are rendered
    directly from these records. *)

type entry = {
  time : float;
  src : int;
  dst : int;
  label : string; (** message kind, e.g. "pre-prepare" *)
  detail : string; (** free-form: view/sequence numbers etc. *)
  size : int; (** wire bytes; 0 for application events *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds retained entries (oldest dropped); default 100_000. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> entry -> unit
val entries : t -> entry list
(** Oldest first. *)

val clear : t -> unit
val count : t -> int

val filter : t -> (entry -> bool) -> entry list

val render : ?limit:int -> t -> (entry -> bool) -> string
(** Human-readable sequence rendering used by the figure regenerators. *)
