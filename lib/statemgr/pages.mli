(** The PBFT state region: a single contiguous memory area divided into
    equal pages (§2.1, §3.2).

    The application has free read access but must call {!notify_modify}
    before changing any byte — exactly the contract the paper criticizes
    as havoc-prone. [strict] mode enforces the contract: a write to a
    page that was not notified raises {!Unnotified_write}, which is how
    our tests demonstrate the failure mode §3.2 warns about. The region
    is sparse: pages are allocated on first touch, so a "large enough"
    region can be declared up front the way the authors used a sparse
    file (§3.2).

    Snapshots are copy-on-write, the way Castro–Liskov's middleware kept
    checkpointing off the critical path: {!snapshot} is O(num_pages)
    pointer work, and page bytes are duplicated only when the live region
    first writes a page a snapshot still references. *)

exception Unnotified_write of int
(** Page index written without a prior notification (strict mode only). *)

type t

val create : ?strict:bool -> page_size:int -> num_pages:int -> unit -> t
val page_size : t -> int
val num_pages : t -> int
val total_size : t -> int

val read : t -> pos:int -> len:int -> string
(** Free read access anywhere in the region; unallocated pages read as
    zeros. Raises [Invalid_argument] out of bounds. *)

val notify_modify : t -> pos:int -> len:int -> unit
(** Declare intent to modify the byte range, marking its pages dirty
    (the copy-on-write hook). *)

val write : t -> pos:int -> string -> unit
(** Write through; in strict mode every touched page must have been
    notified since the last {!clear_dirty}. Writing a page still shared
    with a snapshot first duplicates that one page. *)

val page : t -> int -> string
(** Contents of one page (zero page if untouched), as a fresh string. *)

val page_bytes : t -> int -> Bytes.t option
(** The page's backing buffer ([None] = untouched zero page), without
    copying. The buffer MUST NOT be mutated by the caller — it may be
    shared with live snapshots. Intended for zero-copy hashing. *)

val load_page : t -> int -> string -> unit
[@@trust.sink "wholesale page install into the replicated state region"]
(** Install page contents wholesale (state transfer); marks it dirty. *)

val dirty : t -> int list
(** Ascending indices of pages notified/written since the last clear. *)

val clear_dirty : t -> unit

val allocated_pages : t -> int
(** Pages actually backed by memory (sparseness metric). *)

val generation : t -> int
(** Monotone counter bumped on every wholesale page install
    ({!load_page}, {!restore_page}) — state transfer, checkpoint restore
    and speculation rollback. In-process caches of decoded region
    contents (e.g. the session-state store) compare it to decide whether
    the region changed under them; ordinary {!write}s do not bump it,
    because those flow through the cache's own store path. *)

(** {2 Copy-on-write snapshots} *)

type snapshot
(** An immutable view of the region as of {!snapshot} time. Shares page
    buffers with the live region; never observes later writes. *)

val snapshot : t -> snapshot
(** O(num_pages) pointer work; no page bytes are copied. Subsequent
    writes to the region duplicate only the pages they touch. *)

val snapshot_page : snapshot -> int -> string
(** Contents of one page at snapshot time, as a fresh string. *)

val snapshot_page_bytes : snapshot -> int -> Bytes.t option
(** Zero-copy view of one snapshot page ([None] = zero page). The buffer
    MUST NOT be mutated by the caller. *)

val restore_page : t -> snapshot -> int -> unit
(** Overwrite one live page with the snapshot's version, adopting the
    snapshot's buffer by reference (still copy-on-write); marks the page
    dirty like {!load_page} does. *)

val copy : t -> t
(** Logical deep copy with lazy materialization: both regions share
    buffers until either writes. *)

(** {2 Instrumentation} *)

val bytes_copied : unit -> int
(** Process-wide total of page bytes physically duplicated by the
    copy-on-write machinery since startup. Monotone; sample before/after
    a workload and subtract (compare a deep-copy checkpointer, which
    would copy every allocated page per snapshot). *)

val snapshots_taken : unit -> int
(** Process-wide count of {!snapshot} calls since startup. *)
