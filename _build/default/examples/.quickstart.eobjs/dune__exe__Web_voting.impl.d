examples/web_voting.ml: Client Cluster Config Costmodel Crypto Evoting List Pbft Printf Replica String Util Webgate
