(** Byzantine fault scenario suite.

    Runs each {!Pbft.Adversary} behavior against an otherwise-correct
    f=1 cluster and checks the two BFT properties the paper's robustness
    analysis turns on:

    - {b safety} — correct replicas never commit conflicting batches for
      the same sequence number (pairwise comparison of their
      committed-execution journals) and replicas at the same sequence
      number hold identical state (Merkle root comparison);
    - {b liveness} — client requests keep completing with the adversary
      still installed: the view change votes out a faulty primary, a
      starved backup demotes itself into a state transfer, and forged
      votes are rejected without disturbing a healthy view.

    Every scenario runs a healthy phase first (session keys, progress
    baseline), arms the adversary, and measures progress again in a
    trailing recovery window. All runs are seeded and deterministic. *)

type report = {
  fr_behavior : string;
  fr_mutations : int;
  fr_view_changes : int;
  fr_state_transfers : int;
  fr_demotions : int;
  fr_rollbacks : int;
  fr_spec_execs : int;
  fr_auth_failures : int;
  fr_nondet_rejects : int;
  fr_final_view : int;
  fr_baseline : int;
  fr_recovered : int;
  fr_safe : bool;
  fr_live : bool;
  fr_failures : string list;
}

val behaviors : Pbft.Adversary.behavior list
(** The five Byzantine behaviors (selective mute is parameterized) in
    suite order. *)

val run_behavior :
  ?seed:int -> ?trace:bool -> ?speculative:bool -> Pbft.Adversary.behavior -> report * Pbft.Cluster.t
(** Run one scenario; the cluster is returned for post-hoc inspection
    (counters, trace dump on failure). [trace] keeps the message trace
    enabled during the run (default off, for speed) — used when
    re-running a failed scenario to produce the CI artifact.
    [speculative] re-runs the scenario with the execution pipeline on
    ([pipeline_depth = 4], [cores = 2]), so the adversary also faces
    replicas holding executed-but-uncommitted state. *)

val gateway_behaviors : Pbft.Adversary.behavior list
(** Behaviors re-run behind a loaded gateway front door (mute and
    equivocating primary). *)

val run_gateway_behavior :
  ?seed:int -> ?trace:bool -> Pbft.Adversary.behavior -> report * Pbft.Cluster.t
(** Run one behavior with the cluster behind the {!Webgate.Frontdoor}:
    open-loop sessions through the door's coalescing/admission-control
    path instead of direct closed-loop clients. Progress (baseline,
    recovery) is measured at the door — the view change must still vote
    the faulty primary out and requests must keep completing through the
    gateway. Reported as ["gateway-<behavior>"]. *)

val run_vc_mid_speculation : ?seed:int -> ?trace:bool -> unit -> report * Pbft.Cluster.t
(** The speculation-specific scenario: commit datagrams are dropped on
    every link for a window, so pipelined replicas speculatively execute
    batches they cannot commit; the resulting view change must roll the
    speculated suffix back ([fr_rollbacks > 0]) and, once the drop heals,
    the re-proposed batches must commit with journals and states still in
    agreement. *)

val run_all : ?seed:int -> ?speculative:bool -> unit -> (report * Pbft.Cluster.t) list
(** The behavior suite; with [speculative] the pipelined variants plus
    {!run_vc_mid_speculation} appended. *)

val render : report -> string
(** One status line per scenario, with failure reasons appended. *)

val failure_trace : Pbft.Cluster.t -> string
(** Human-readable dump of the cluster's message trace — written to an
    artifact when a scenario fails in CI (pair with
    [run_behavior ~trace:true]). *)
