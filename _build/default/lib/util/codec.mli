(** Binary wire codec.

    All PBFT protocol messages, database pages and journal records are
    serialized through this module so that message sizes — which feed the
    network bandwidth model — are concrete and stable. Integers are
    little-endian fixed width except where [varint] is used. *)

(** {1 Writer} *)

module W : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val int_as_u64 : t -> int -> unit
  val f64 : t -> float -> unit
  val varint : t -> int -> unit
  val bool : t -> bool -> unit

  val bytes : t -> bytes -> unit
  (** Raw bytes, no length prefix. *)

  val string : t -> string -> unit
  (** Raw string contents, no length prefix. *)

  val lbytes : t -> bytes -> unit
  (** Varint length prefix followed by the bytes. *)

  val lstring : t -> string -> unit

  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** Varint count followed by each element. *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val contents : t -> string
end

(** {1 Reader} *)

module R : sig
  type t

  exception Truncated
  (** Raised when a read runs past the end of the buffer; a malformed or
      maliciously short message surfaces as this exception and is treated
      by receivers as an authentication failure. *)

  val of_string : string -> t
  val remaining : t -> int
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val int_of_u64 : t -> int
  val f64 : t -> float
  val varint : t -> int
  val bool : t -> bool
  val bytes : t -> int -> bytes
  val string : t -> int -> string
  val lbytes : t -> bytes
  val lstring : t -> string
  val list : t -> (t -> 'a) -> 'a list
  val option : t -> (t -> 'a) -> 'a option
  val expect_end : t -> unit
end

val encode : (W.t -> 'a -> unit) -> 'a -> string
(** [encode enc v] runs [enc] on a fresh writer and returns the buffer. *)

val decode : (R.t -> 'a) -> string -> 'a
(** [decode dec s] decodes the full string, raising [R.Truncated] if the
    value does not consume the buffer exactly. *)
