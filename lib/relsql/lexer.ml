type token =
  | Ident of string
  | Int_lit of int
  | Real_lit of float
  | String_lit of string
  | Punct of string
  | Eof

exception Error of string

let keyword_eq a b = String.lowercase_ascii a = String.lowercase_ascii b

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let toks = ref [] in
  let push tk = toks := tk :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && !pos + 1 < n && src.[!pos + 1] = '-' then begin
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      (* block comment; no nesting, same as SQLite *)
      pos := !pos + 2;
      let closed = ref false in
      while not !closed do
        if !pos + 1 >= n then raise (Error "unterminated block comment")
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          pos := !pos + 2;
          closed := true
        end
        else incr pos
      done
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      push (Ident (String.sub src start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      if !pos < n && src.[!pos] = '.' then begin
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
        push (Real_lit (float_of_string (String.sub src start (!pos - start))))
      end
      else push (Int_lit (int_of_string (String.sub src start (!pos - start))))
    end
    else if c = '\'' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !pos >= n then raise (Error "unterminated string literal");
        let c = src.[!pos] in
        if c = '\'' then
          if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2
          end
          else begin
            closed := true;
            incr pos
          end
        else begin
          Buffer.add_char buf c;
          incr pos
        end
      done;
      push (String_lit (Buffer.contents buf))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "||" | "!=" ->
        push (Punct (if String.equal two "!=" then "<>" else two));
        pos := !pos + 2
      | _ -> begin
        match c with
        | '(' | ')' | ',' | ';' | '*' | '=' | '<' | '>' | '+' | '-' | '/' | '.' | '%' ->
          push (Punct (String.make 1 c));
          incr pos
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c))
      end
    end
  done;
  List.rev (Eof :: !toks)
