lib/pbft/replica.ml: Array Certificate Char Config Costmodel Crypto Float Hashtbl List Log Membership Message Nondet Option Printf Queue Service Simnet Statemgr String Types Util
