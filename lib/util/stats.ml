type t = {
  mutable samples : float list;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable sorted : float array option;
}

let create () =
  { samples = []; n = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity; sorted = None }

let add t x =
  t.samples <- x :: t.samples;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stdev t =
  if t.n < 2 then 0.0
  else begin
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var < 0.0 then 0.0 else sqrt var
  end

let min t = t.mn
let max t = t.mx

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.n = 0 then invalid_arg "Stats.percentile: empty";
  let a = sorted t in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
  let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
  a.(idx)

let median t = percentile t 50.0
let pct_or_zero t p = if t.n = 0 then 0.0 else percentile t p
let p50 t = pct_or_zero t 50.0
let p95 t = pct_or_zero t 95.0
let p99 t = pct_or_zero t 99.0

let summary t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.3f stdev=%.3f min=%.3f p50=%.3f max=%.3f" t.n (mean t) (stdev t)
      t.mn (median t) t.mx
