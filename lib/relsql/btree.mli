(** B+-tree over pager pages: ordered map from byte-string keys to
    byte-string values.

    Keys compare bytewise ({!Value.key_encode} makes that order meaningful
    for SQL values; row ids use fixed-width big-endian encoding). Leaves
    are chained for range scans. Deletion is lazy (no rebalancing) — pages
    freed only when a leaf empties — which is plenty for the workloads the
    evaluation runs and keeps the structure auditable.

    An entry must fit in a page: keys+values above ~3.8 KB raise
    [Invalid_argument] (no overflow chains; DESIGN.md notes the
    limitation). *)

type t

val create : Pager.t -> t
(** Allocate an empty tree (one leaf page). Must be inside a transaction. *)

val open_tree : Pager.t -> root:int -> t

val root : t -> int
(** Current root page; the owner must re-persist it after mutations (root
    splits change it). *)

val find : t -> string -> string option
val insert : t -> key:string -> value:string -> unit
(** Inserts or replaces. *)

val delete : t -> string -> bool
(** True if the key existed. *)

val iter : t -> ?from:string -> ?upto:string -> (string -> string -> bool) -> unit
(** In-order traversal starting at the first key ≥ [from] (or the
    smallest); stops when the callback returns false or the next key
    exceeds the inclusive upper bound [upto]. Lazily-emptied leaves on
    the chain are stepped over without charging a page touch. *)

val count : t -> int
val drop : t -> unit
(** Free every page of the tree. *)
