lib/relsql/lexer.mli:
