lib/harness/report.ml: Buffer Float List Printf String
