(* Implicit perfect binary tree over [2^k >= num_pages] leaves stored in a
   flat array: node i has children 2i+1, 2i+2; leaves occupy the last
   [width] slots. Missing leaves (beyond num_pages) hash a fixed filler.

   Hashing is zero-copy: page bytes are fed straight into a streaming
   SHA-256 context after the "leaf|" framing prefix, so the preimages are
   exactly the historical ["leaf|" ^ contents] / ["node|" ^ l ^ r]
   strings but no intermediate concatenations are allocated. *)

type t = { width : int; leaves : int; nodes : string array }

let leaf_prefix = "leaf|"
let node_prefix = "node|"

let hash_page contents =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx leaf_prefix;
  Crypto.Sha256.feed ctx contents;
  Crypto.Sha256.finalize ctx

let hash_page_bytes b =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx leaf_prefix;
  Crypto.Sha256.feed_bytes ctx b ~pos:0 ~len:(Bytes.length b);
  Crypto.Sha256.finalize ctx

(* The digest of an all-zero page depends only on the page size; untouched
   pages of a sparse region all share it, so hash it once per size. *)
let zero_leaf_cache : (int, string) Hashtbl.t = Hashtbl.create 4

let zero_leaf page_size =
  match Hashtbl.find_opt zero_leaf_cache page_size with
  | Some d -> d
  | None ->
    let d = hash_page (String.make page_size '\000') in
    Hashtbl.add zero_leaf_cache page_size d;
    d

let leaf_digest_of_page pages i =
  match Pages.page_bytes pages i with
  | None -> zero_leaf (Pages.page_size pages)
  | Some b -> hash_page_bytes b

let hash_children l r =
  let ctx = Crypto.Sha256.init () in
  Crypto.Sha256.feed ctx node_prefix;
  Crypto.Sha256.feed ctx l;
  Crypto.Sha256.feed ctx r;
  Crypto.Sha256.finalize ctx

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let empty_leaf = Crypto.Sha256.digest "empty-leaf"

let leaf_index t i = t.width - 1 + i

let build pages =
  let leaves = Pages.num_pages pages in
  let width = pow2_at_least leaves 1 in
  let nodes = Array.make ((2 * width) - 1) "" in
  for i = 0 to width - 1 do
    nodes.(width - 1 + i) <-
      (if i < leaves then leaf_digest_of_page pages i else empty_leaf)
  done;
  for i = width - 2 downto 0 do
    nodes.(i) <- hash_children nodes.((2 * i) + 1) nodes.((2 * i) + 2)
  done;
  { width; leaves; nodes }

let update t pages dirty =
  let touched = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if i < 0 || i >= t.leaves then invalid_arg "Merkle.update";
      t.nodes.(leaf_index t i) <- leaf_digest_of_page pages i;
      (* Record every ancestor for recomputation. *)
      let rec mark j =
        if j > 0 then begin
          let parent = (j - 1) / 2 in
          Hashtbl.replace touched parent ();
          mark parent
        end
      in
      mark (leaf_index t i))
    dirty;
  (* Recompute ancestors bottom-up: iterate indices descending. *)
  let idxs = List.rev (Util.Sorted_tbl.keys touched) in
  List.iter (fun i -> t.nodes.(i) <- hash_children t.nodes.((2 * i) + 1) t.nodes.((2 * i) + 2)) idxs

let root t = t.nodes.(0)

let leaf t i =
  if i < 0 || i >= t.leaves then invalid_arg "Merkle.leaf";
  t.nodes.(leaf_index t i)

let num_leaves t = t.leaves

let diff a b =
  if a.width <> b.width then invalid_arg "Merkle.diff: shape mismatch";
  let visited = ref 0 in
  let divergent = ref [] in
  let rec walk i =
    incr visited;
    if not (String.equal a.nodes.(i) b.nodes.(i)) then begin
      if i >= a.width - 1 then begin
        let li = i - (a.width - 1) in
        if li < a.leaves then divergent := li :: !divergent
      end
      else begin
        walk ((2 * i) + 1);
        walk ((2 * i) + 2)
      end
    end
  in
  walk 0;
  (List.rev !divergent, !visited)

let root_of_leaves leaves =
  let n = List.length leaves in
  let width = pow2_at_least (Int.max n 1) 1 in
  let level = Array.make width empty_leaf in
  List.iteri (fun i l -> level.(i) <- l) leaves;
  let rec reduce level =
    if Array.length level = 1 then level.(0)
    else begin
      let next = Array.init (Array.length level / 2) (fun i ->
          hash_children level.(2 * i) level.((2 * i) + 1))
      in
      reduce next
    end
  in
  reduce level

let page_digest contents = hash_page contents

let copy t = { t with nodes = Array.copy t.nodes }
