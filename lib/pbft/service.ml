open Types

type instance = {
  execute :
    op:string ->
    client:client_id ->
    timestamp:float ->
    nondet:string ->
    readonly:bool ->
    string * float;
  authorize_join : idbuf:string -> string option;
  on_session_end : client_id -> unit;
}

let no_session_end (_ : client_id) = ()

type t = {
  name : string;
  page_size : int;
  app_pages : int;
  make : Statemgr.Pages.t -> first_page:int -> instance;
  classify_readonly : string -> bool;
}

let never_readonly (_ : string) = false

(* Joins are authorized when the identification buffer parses as
   "user:password" with a non-empty user; the identity is the user. Real
   deployments would check credentials — the shape is what matters. *)
let default_authorize ~idbuf =
  match String.index_opt idbuf ':' with
  | Some i when i > 0 -> Some (String.sub idbuf 0 i)
  | Some _ | None -> None

let null ?(reply_size = 1024) () =
  {
    name = "null";
    page_size = 4096;
    app_pages = 16;
    make =
      (fun _pages ~first_page:_ ->
        let reply = String.make reply_size 'r' in
        {
          execute = (fun ~op:_ ~client:_ ~timestamp:_ ~nondet:_ ~readonly:_ -> (reply, 0.5e-6));
          authorize_join = default_authorize;
          on_session_end = no_session_end;
        });
    classify_readonly = never_readonly;
  }

let counter () =
  {
    name = "counter";
    page_size = 4096;
    app_pages = 1;
    make =
      (fun pages ~first_page ->
        let base = first_page * Statemgr.Pages.page_size pages in
        let read_counter () =
          match int_of_string_opt (String.trim (Statemgr.Pages.read pages ~pos:base ~len:20)) with
          | Some v -> v
          | None -> 0
        in
        let write_counter v =
          let s = Printf.sprintf "%019d " v in
          Statemgr.Pages.notify_modify pages ~pos:base ~len:20;
          Statemgr.Pages.write pages ~pos:base s
        in
        {
          execute =
            (fun ~op ~client:_ ~timestamp:_ ~nondet:_ ~readonly:_ ->
              match String.trim op with
              | "incr" ->
                let v = read_counter () + 1 in
                write_counter v;
                (string_of_int v, 1e-6)
              | "get" -> (string_of_int (read_counter ()), 1e-6)
              | other -> ("error: unknown op " ^ other, 1e-6));
          authorize_join = default_authorize;
          on_session_end = no_session_end;
        });
    classify_readonly = never_readonly;
  }

(* The KV table lives in the region as a sorted association list rendered
   with a tiny length-prefixed encoding; small and simple, but it means
   every page it occupies participates in checkpoint digests and state
   transfer like real application state. *)
let kv_store () =
  let page_size = 4096 in
  let app_pages = 64 in
  {
    name = "kv";
    page_size;
    app_pages;
    make =
      (fun pages ~first_page ->
        let base = first_page * page_size in
        let capacity = app_pages * page_size in
        let load () =
          let hdr = Statemgr.Pages.read pages ~pos:base ~len:8 in
          let len = int_of_string_opt (String.trim hdr) |> Option.value ~default:0 in
          if len = 0 then []
          else begin
            let body = Statemgr.Pages.read pages ~pos:(base + 8) ~len in
            match Util.Codec.decode (fun r -> Util.Codec.R.list r (fun r ->
                let k = Util.Codec.R.lstring r in
                let v = Util.Codec.R.lstring r in
                (k, v))) body
            with
            | l -> l
            | exception Util.Codec.R.Truncated -> []
          end
        in
        let store assoc =
          let body =
            Util.Codec.encode
              (fun w l ->
                Util.Codec.W.list w
                  (fun w (k, v) ->
                    Util.Codec.W.lstring w k;
                    Util.Codec.W.lstring w v)
                  l)
              assoc
          in
          let total = 8 + String.length body in
          if total > capacity then failwith "kv_store: state region full";
          Statemgr.Pages.notify_modify pages ~pos:base ~len:total;
          Statemgr.Pages.write pages ~pos:base (Printf.sprintf "%07d " (String.length body));
          Statemgr.Pages.write pages ~pos:(base + 8) body
        in
        let split_op op =
          match String.split_on_char ' ' op with
          | cmd :: rest -> (cmd, rest)
          | [] -> ("", [])
        in
        {
          execute =
            (fun ~op ~client:_ ~timestamp:_ ~nondet:_ ~readonly:_ ->
              match split_op op with
              | "put", k :: vs ->
                let v = String.concat " " vs in
                let assoc = List.remove_assoc k (load ()) in
                let cmp (k1, v1) (k2, v2) =
                  let c = String.compare k1 k2 in
                  if c <> 0 then c else String.compare v1 v2
                in
                store (List.sort cmp ((k, v) :: assoc));
                ("ok", 8e-6)
              | "get", [ k ] ->
                ((match List.assoc_opt k (load ()) with Some v -> v | None -> "(nil)"), 8e-6)
              | "del", [ k ] ->
                let assoc = load () in
                if List.mem_assoc k assoc then begin
                  store (List.remove_assoc k assoc);
                  ("ok", 8e-6)
                end
                else ("(nil)", 8e-6)
              | "keys", _ -> (String.concat "," (List.map fst (load ())), 8e-6)
              | _ -> ("error: bad op", 2e-6));
          authorize_join = default_authorize;
          on_session_end = no_session_end;
        });
    classify_readonly = never_readonly;
  }

(* A per-session private KV: the §3.3.2 subsystem in action. *)
let session_kv () =
  let page_size = 4096 in
  let app_pages = Session_state.pages_needed in
  {
    name = "session-kv";
    page_size;
    app_pages;
    make =
      (fun pages ~first_page ->
        let store = Session_state.create pages ~first_page ~pages:app_pages in
        let split_op op =
          match String.split_on_char ' ' op with cmd :: rest -> (cmd, rest) | [] -> ("", [])
        in
        {
          execute =
            (fun ~op ~client ~timestamp:_ ~nondet:_ ~readonly:_ ->
              match split_op op with
              | "sput", k :: vs ->
                Session_state.set store ~client ~key:k (String.concat " " vs);
                ("ok", 6e-6)
              | "sget", [ k ] ->
                ( (match Session_state.get store ~client ~key:k with
                  | Some v -> v
                  | None -> "(nil)"),
                  6e-6 )
              | "skeys", _ ->
                (String.concat "," (Session_state.session_keys store ~client), 6e-6)
              | _ -> ("error: bad op", 2e-6));
          authorize_join = default_authorize;
          on_session_end = (fun client -> Session_state.end_session store ~client);
        });
    classify_readonly = never_readonly;
  }
