lib/relsql/database.ml: Array Ast Btree Buffer Bytes Catalog Expr Hashtbl Int64 Lexer List Option Pager Parser Printf Stdlib String Util Value Vfs
