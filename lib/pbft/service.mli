(** The application side of the middleware: the upcall interface a service
    implements to run replicated (§2.1, §3.2).

    A service declares the geometry of its partition of the PBFT state
    region; the replica constructs the region and hands the service an
    instance bound to it. During [execute] the service reads the region
    freely and must use {!Statemgr.Pages.notify_modify} before writing —
    the contract whose violation [strict] pages turn into an exception.

    [execute] reports the virtual seconds its execution and durability
    work cost; the null service reports (almost) zero and the SQL service
    reports parse/plan/step plus journal-write and fsync charges, which
    is precisely the difference the paper's Figure 5 measures. *)

open Types

type instance = {
  execute :
    (op:string ->
    client:client_id ->
    timestamp:float ->
    nondet:string ->
    readonly:bool ->
    string * float)
    [@trust.sink "service execution against the replicated state region"];
      (** run one operation; returns the reply body and the virtual cost
          (CPU plus durability work) the execution incurred *)
  authorize_join : idbuf:string -> string option;
      (** §3.1 application-level authorization of a Join: map the
          identification buffer to an application identity, or reject *)
  on_session_end : client_id -> unit;
      (** §3.3.2: invoked (deterministically, during request execution)
          when the middleware terminates a session — leave, takeover by
          the same identity, or stale cleanup — so session-mapped state
          can be reclaimed *)
}

type t = {
  name : string;
  page_size : int;
  app_pages : int;  (** pages of the state region given to the service *)
  make : Statemgr.Pages.t -> first_page:int -> instance;
      (** bind an instance to the region; the service owns pages
          [first_page ..  first_page + app_pages - 1] *)
  classify_readonly : string -> bool;
      (** service-level proof that an operation cannot modify state (and
          contains no non-deterministic functions), so callers — the
          harness, gateways — may send it with [rq_readonly = true] and
          ride the read-only fast path without opting in per call. Must
          be sound: a misclassified write would execute unordered at
          every replica. [never_readonly] is the safe default. *)
}

val never_readonly : string -> bool
(** Classifier that opts nothing in — the default for services without a
    statically analyzable operation language. *)

val null : ?reply_size:int -> unit -> t
(** The benchmarking service of §4.1: does nothing, replies with
    [reply_size] bytes (default 1024, the paper's representative size). *)

val counter : unit -> t
(** Minimal stateful service: ops "incr"/"get" maintain a counter in the
    state region — used by quickstart and the state-transfer tests. *)

val kv_store : unit -> t
(** An ordered key-value service storing its table in the state region;
    ops are "put k v" / "get k" / "del k". *)

val session_kv : unit -> t
(** A stateful service built on the §3.3.2 session-state subsystem: each
    client gets a private key-value area ("sput k v" / "sget k" /
    "skeys"), wiped automatically when its session ends. *)
