type t = { seq : int; tree : Merkle.t; pages : Pages.t }

let take ~seqno pages tree = { seq = seqno; tree = Merkle.copy tree; pages = Pages.copy pages }

let seqno t = t.seq
let root t = Merkle.root t.tree
let page t i = Pages.page t.pages i
let merkle t = t.tree

let divergent_pages ~local t = Merkle.diff local t.tree

let restore t target tree =
  let divergent, _ = Merkle.diff tree t.tree in
  List.iter (fun i -> Pages.load_page target i (Pages.page t.pages i)) divergent;
  Merkle.update tree target divergent;
  Pages.clear_dirty target
