module W = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create ?(capacity = 256) () = { buf = Bytes.create (max capacity 16); len = 0 }
  let length t = t.len

  let ensure t extra =
    let need = t.len + extra in
    let cap = Bytes.length t.buf in
    if need > cap then begin
      let cap' = ref (cap * 2) in
      while need > !cap' do
        cap' := !cap' * 2
      done;
      let bigger = Bytes.create !cap' in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end

  let u8 t v =
    ensure t 1;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set t.buf (t.len + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
    Bytes.unsafe_set t.buf (t.len + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
    Bytes.unsafe_set t.buf (t.len + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
    t.len <- t.len + 4

  let u64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.len v;
    t.len <- t.len + 8

  let int_as_u64 t v = u64 t (Int64.of_int v)
  let f64 t v = u64 t (Int64.bits_of_float v)

  (* A varint is at most 9 bytes (63-bit non-negative int, 7 bits per
     byte); reserve once and loop — no recursion, one bounds check. *)
  let varint t v =
    if v < 0 then invalid_arg "Codec.W.varint: negative";
    ensure t 9;
    let v = ref v in
    while !v >= 0x80 do
      Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
      t.len <- t.len + 1;
      v := !v lsr 7
    done;
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr !v);
    t.len <- t.len + 1

  let bool t v = u8 t (if v then 1 else 0)

  let bytes t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let string t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let lbytes t b =
    varint t (Bytes.length b);
    bytes t b

  let lstring t s =
    varint t (String.length s);
    string t s

  let list t enc l =
    varint t (List.length l);
    List.iter (enc t) l

  let option t enc = function
    | None -> bool t false
    | Some v ->
      bool t true;
      enc t v

  let contents t = Bytes.sub_string t.buf 0 t.len
end

module R = struct
  type t = { src : string; mutable pos : int }

  exception Truncated

  let of_string src = { src; pos = 0 }
  let remaining t = String.length t.src - t.pos

  let u8 t =
    if t.pos >= String.length t.src then raise Truncated;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let a = u8 t in
    let b = u8 t in
    a lor (b lsl 8)

  let u32 t =
    let a = u16 t in
    let b = u16 t in
    a lor (b lsl 16)

  let u64 t =
    if remaining t < 8 then raise Truncated;
    let v = String.get_int64_le t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let int_of_u64 t = Int64.to_int (u64 t)
  let f64 t = Int64.float_of_bits (u64 t)

  (* Defensive decode (Byzantine path): a well-formed varint is at most 9
     bytes, and the 9th byte may carry only the top 7 bits of a 63-bit
     int, i.e. must be <= max_int lsr 56 = 0x3f. Anything longer or
     larger would wrap into the sign bit, so a malformed wire can neither
     loop nor produce a negative length. *)
  let varint t =
    let rec go shift acc =
      if shift > 56 then raise Truncated;
      let b = u8 t in
      if shift = 56 && b > 0x3f then raise Truncated;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let bool t = u8 t <> 0

  let string t n =
    if n < 0 || remaining t < n then raise Truncated;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t n = Bytes.of_string (string t n)
  let lbytes t = bytes t (varint t)
  let lstring t = string t (varint t)

  let list t dec =
    let n = varint t in
    List.init n (fun _ -> dec t)

  let option t dec = if bool t then Some (dec t) else None
  let expect_end t = if remaining t <> 0 then raise Truncated
end

let encode enc v =
  let w = W.create () in
  enc w v;
  W.contents w

let decode dec s =
  let r = R.of_string s in
  let v = dec r in
  R.expect_end r;
  v
