(** Web-application support (§3.3.3).

    The paper's end goal is a browser-hosted client: "this communication
    cannot be carried over UDP... higher level protocols, such as
    WebSocket, and structures like JSON or XML need to be used. Support
    for these technologies needs to be incorporated in the middleware."
    This library incorporates them, with no centralized component:

    - every replica hosts a {!Bridge} — a WebSocket/JSON endpoint
      co-located with the replica that translates JSON frames into
      native protocol datagrams (and exists per replica, unlike Thema's
      centralized agent, which the authors reject);
    - {!Browser} is the browser-hosted client library: it speaks only
      JSON, signs with a public-key signer (the browser-available
      cryptosystem the paper asks for instead of Rabin), joins
      dynamically, and collects reply quorums exactly like the native
      client.

    Simulation note: the browser→replica direction crosses the wire as
    JSON frames addressed to the bridge; the replica→browser direction is
    delivered to the browser's network address and converted to JSON at
    the browser boundary, charging the same conversion cost the bridge
    would (DESIGN.md lists this as a modelling shortcut). *)

open Pbft.Types

val bridge_addr : replica_id -> int
(** Network address of the JSON endpoint co-located with a replica. *)

module Bridge : sig
  type t

  val attach :
    cfg:Pbft.Config.t ->
    costs:Pbft.Costmodel.t ->
    engine:Simnet.Engine.t ->
    net:Simnet.Net.t ->
    replica:replica_id ->
    t
  (** Listen on [bridge_addr replica] and forward translated frames to the
      co-located replica. *)

  val frames_translated : t -> int
  val rejected : t -> int
  (** Frames dropped as malformed JSON or unknown shape. *)

  val detach : t -> unit
end

module Browser : sig
  type t

  val create :
    cfg:Pbft.Config.t ->
    costs:Pbft.Costmodel.t ->
    engine:Simnet.Engine.t ->
    net:Simnet.Net.t ->
    addr:int ->
    signer:Crypto.Keychain.signer ->
    registry:Pbft.Replica.registry ->
    ?client_id:client_id ->
    ?classify_readonly:(string -> bool) ->
    unit ->
    t
  (** [classify_readonly] (default {!Pbft.Service.never_readonly}) is the
      service's proof that an operation is read-only — e.g.
      [Relsql.Pbft_service.is_readonly_sql] for the SQL service — letting
      browser SELECTs ride the read-only fast path automatically. *)

  val join : t -> idbuf:string -> (client_id option -> unit) -> unit
  (** The §3.1 two-phase join, carried over JSON frames. *)

  val invoke : t -> ?readonly:bool -> string -> (string -> unit) -> unit
  (** Ops accepted by [classify_readonly] are sent read-only even when
      the caller does not pass [~readonly:true]. *)

  val client_id : t -> client_id option
  val completed : t -> int
  val shutdown : t -> unit
end
