(** Threshold reply certificates — the middleware-level threshold
    cryptography §3.3.1 calls for.

    At deployment a (f+1, n) threshold RSA key is dealt to the replicas
    (the service key never exists at any single replica). When enabled,
    each replica attaches a partial signature over its reply; a client
    combines f+1 matching partials into one standalone RSA signature.
    The resulting certificate proves to ANY third party — with only the
    service public key — that the replicated service produced this reply
    for this request: a Byzantine replica (even a primary) cannot forge
    it, and in the e-voting application it acts as a vote receipt. *)

open Types

val signed_payload : client:client_id -> rq_id:int -> result:string -> string
(** Canonical byte string the partials sign. *)

val partial : Crypto.Threshold.public -> Crypto.Threshold.share ->
  client:client_id -> rq_id:int -> result:string -> string
(** A replica's partial signature, wire-encoded for the Reply message. *)

val combine :
  Crypto.Threshold.public ->
  client:client_id ->
  rq_id:int ->
  result:string ->
  string list ->
  string option
(** Combine wire-encoded partials into a wire-encoded certificate;
    [None] if fewer than the threshold survive decoding/verification. *)

val verify :
  Crypto.Threshold.public -> client:client_id -> rq_id:int -> result:string -> string -> bool
[@@trust.sanitizer
  "reply-certificate check: true vouches that f+1 replicas signed this (client, rq_id, result)"]
(** Third-party verification of a certificate. *)
