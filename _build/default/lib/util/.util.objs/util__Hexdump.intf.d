lib/util/hexdump.mli:
