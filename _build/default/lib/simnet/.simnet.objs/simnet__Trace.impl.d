lib/simnet/trace.ml: Buffer List Printf
