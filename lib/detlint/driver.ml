let read_file path = In_channel.with_open_bin path In_channel.input_all

let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  Parse.implementation lexbuf

let lint_source ~rel src =
  let str = parse_string ~filename:rel src in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  Rules.lint_structure ~rel ~lines str

let lint_trust_source ?(interfaces = []) ~rel src =
  let harvested =
    List.concat_map
      (fun (irel, isrc) ->
        Trust.harvest_interface ~rel:irel (Trust.parse_interface ~filename:irel isrc))
      interfaces
  in
  let str = parse_string ~filename:rel src in
  let lines = Array.of_list (String.split_on_char '\n' src) in
  Taint.lint_structure ~rel ~lines ~specs:(harvested @ Trust.conventions) str

(* Deterministic directory walk: sorted entries, dotfiles and build
   artefacts skipped. *)
let rec walk ~ext dir acc =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || String.equal name "_build" then acc
      else
        let path = Filename.concat dir name in
        if Sys.is_directory path then walk ~ext path acc
        else if Filename.check_suffix name ext then path :: acc
        else acc)
    acc entries

type pass = Determinism | Trust

type outcome = {
  files_scanned : int;
  findings : Finding.t list;
  suppressed : int;
  stale_allows : Allowlist.entry list;
  errors : string list;
}

let relativize ~root path =
  let root = if Filename.check_suffix root "/" then root else root ^ "/" in
  let rel =
    if String.length path > String.length root && String.starts_with ~prefix:root path then
      String.sub path (String.length root) (String.length path - String.length root)
    else path
  in
  String.concat "/" (String.split_on_char Filename.dir_sep.[0] rel)

let collect ~ext ~root dirs =
  List.concat_map
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then List.rev (walk ~ext dir []) else [])
    dirs
  |> List.sort String.compare

(* The trust pass's declaration layer: [@@trust.*] attributes harvested
   off every interface under the scanned dirs, plus the convention
   table. Interfaces that fail to parse are reported like sources. *)
let harvest_specs ~root ~errors dirs =
  let specs =
    List.concat_map
      (fun path ->
        let rel = relativize ~root path in
        match Trust.parse_interface ~filename:rel (read_file path) with
        | sg -> Trust.harvest_interface ~rel sg
        | exception exn -> (
          match Location.error_of_exn exn with
          | Some (`Ok report) ->
            errors := Format.asprintf "%s: %a" rel Location.print_report report :: !errors;
            []
          | Some `Already_displayed | None -> raise exn))
      (collect ~ext:".mli" ~root dirs)
  in
  specs @ Trust.conventions

(* Which pass can produce a given rule — an allow entry is only stale
   with respect to runs that could have matched it. *)
let pass_of_rule = function
  | Finding.Tainted_sink -> Trust
  | _ -> Determinism

let run ?(passes = [ Determinism ]) ?(dirs = [ "lib" ]) ?allow_file ~root () =
  let allow_path =
    match allow_file with Some f -> f | None -> Filename.concat root "detlint.allow"
  in
  let allow = if Sys.file_exists allow_path then Allowlist.load allow_path else Allowlist.empty in
  let files = collect ~ext:".ml" ~root dirs in
  let findings = ref [] in
  let errors = ref [] in
  let suppressed = ref 0 in
  let specs =
    if List.mem Trust passes then harvest_specs ~root ~errors dirs else Trust.conventions
  in
  List.iter
    (fun path ->
      let rel = relativize ~root path in
      match
        let src = read_file path in
        let str = parse_string ~filename:rel src in
        let lines = Array.of_list (String.split_on_char '\n' src) in
        List.concat_map
          (function
            | Determinism -> Rules.lint_structure ~rel ~lines str
            | Trust -> Taint.lint_structure ~rel ~lines ~specs str)
          passes
      with
      | fs ->
        List.iter
          (fun f -> if Allowlist.suppresses allow f then incr suppressed else findings := f :: !findings)
          fs
      | exception exn -> (
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
          errors := Format.asprintf "%s: %a" rel Location.print_report report :: !errors
        | Some `Already_displayed | None -> raise exn))
    files;
  {
    files_scanned = List.length files;
    findings = List.sort Finding.compare !findings;
    suppressed = !suppressed;
    stale_allows =
      List.filter
        (fun (e : Allowlist.entry) ->
          match Finding.rule_of_name e.al_rule with
          | Some r -> List.mem (pass_of_rule r) passes
          | None -> true)
        (Allowlist.stale allow);
    errors = List.rev !errors;
  }
