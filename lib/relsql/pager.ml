exception Corrupt of string

let page_size = 4096
let magic = "RELSQL01"

type t = {
  vfs : Vfs.t;
  mutable journaled : (int, string) Hashtbl.t;  (** original images this txn *)
  mutable txn : bool;
  mutable page_count : int;
  mutable freelist : int;
  mutable catalog_root : int;
  mutable header_dirty : bool;  (** header fields changed this txn; image written at commit *)
  mutable touched : (int, unit) Hashtbl.t;
}

(* --- header --- *)

let header_image t =
  let w = Util.Codec.W.create () in
  Util.Codec.W.string w magic;
  Util.Codec.W.u32 w t.page_count;
  Util.Codec.W.u32 w t.freelist;
  Util.Codec.W.u32 w t.catalog_root;
  let s = Util.Codec.W.contents w in
  s ^ String.make (page_size - String.length s) '\000'

let parse_header t image =
  let r = Util.Codec.R.of_string image in
  let m = Util.Codec.R.string r 8 in
  if m <> magic then raise (Corrupt "bad magic");
  t.page_count <- Util.Codec.R.u32 r;
  t.freelist <- Util.Codec.R.u32 r;
  t.catalog_root <- Util.Codec.R.u32 r

(* --- journal file format: u32 count, then (u32 page, page image)* --- *)

let journal_reset jf =
  jf.Vfs.truncate 0;
  jf.Vfs.write ~pos:0 "\000\000\000\000";
  jf.Vfs.sync ()

let journal_count jf =
  if jf.Vfs.size () < 4 then 0
  else begin
    let s = jf.Vfs.read ~pos:0 ~len:4 in
    Char.code s.[0] lor (Char.code s.[1] lsl 8) lor (Char.code s.[2] lsl 16)
    lor (Char.code s.[3] lsl 24)
  end

let journal_append jf index page image =
  let pos = 4 + (index * (4 + page_size)) in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int page);
  jf.Vfs.write ~pos (Bytes.to_string hdr);
  jf.Vfs.write ~pos:(pos + 4) image;
  let cnt = Bytes.create 4 in
  Bytes.set_int32_le cnt 0 (Int32.of_int (index + 1));
  jf.Vfs.write ~pos:0 (Bytes.to_string cnt)

let journal_record jf index =
  let pos = 4 + (index * (4 + page_size)) in
  let hdr = jf.Vfs.read ~pos ~len:4 in
  let page =
    Char.code hdr.[0] lor (Char.code hdr.[1] lsl 8) lor (Char.code hdr.[2] lsl 16)
    lor (Char.code hdr.[3] lsl 24)
  in
  (page, jf.Vfs.read ~pos:(pos + 4) ~len:page_size)

(* --- page access --- *)

let touch t page = Hashtbl.replace t.touched page ()

let raw_read t page =
  let pos = page * page_size in
  if pos + page_size <= t.vfs.Vfs.main.size () then t.vfs.Vfs.main.read ~pos ~len:page_size
  else String.make page_size '\000'

let read_page t page =
  touch t page;
  raw_read t page

(* For callers that may decide after looking at the content that no real
   work happened (e.g. the B-tree skipping a lazily-emptied leaf): read
   without recording an application page touch, and charge it explicitly
   with [touch_page] if warranted. *)
let read_page_quiet = raw_read
let touch_page = touch

let write_page t page image =
  if not t.txn then invalid_arg "Pager.write_page: no transaction";
  if String.length image <> page_size then invalid_arg "Pager.write_page: bad size";
  touch t page;
  (* The in-memory undo table always records originals (so ROLLBACK works
     even in no-ACID mode); the on-disk journal record is what makes the
     undo crash-safe and is written only when a journal is configured. *)
  if not (Hashtbl.mem t.journaled page) then begin
    (* raw_read, not read_page: journaling the original image is pager
       bookkeeping, and must not count as an application page touch. *)
    let original = raw_read t page in
    (match t.vfs.Vfs.journal with
    | Some jf -> journal_append jf (Hashtbl.length t.journaled) page original
    | None -> ());
    Hashtbl.replace t.journaled page original
  end;
  (* Write-through: the region is memory (or a heap file); there is no
     separate cache to go stale when PBFT state transfer rewrites the
     pages underneath the engine. *)
  t.vfs.Vfs.main.write ~pos:(page * page_size) image

let pad s = s ^ String.make (page_size - String.length s) '\000'

let write_header t =
  if not t.txn then invalid_arg "Pager.write_header: no transaction";
  write_page t 0 (header_image t);
  t.header_dirty <- false

(* Header mutations only mark the header dirty; the image is written once
   at commit. Crash safety is unchanged: the on-disk header stays at its
   pre-txn value until the commit-time write_page journals it, so a crash
   any time before the journal reset rolls the whole transaction back. *)
let mark_header_dirty t =
  if not t.txn then invalid_arg "Pager: header change outside transaction";
  t.header_dirty <- true

let allocate_page t =
  if not t.txn then invalid_arg "Pager.allocate_page: no transaction";
  let page =
    if t.freelist <> 0 then begin
      let p = t.freelist in
      let img = read_page t p in
      let r = Util.Codec.R.of_string img in
      t.freelist <- Util.Codec.R.u32 r;
      p
    end
    else begin
      let p = t.page_count in
      t.page_count <- t.page_count + 1;
      p
    end
  in
  write_page t page (pad "");
  mark_header_dirty t;
  page

let free_page t page =
  if not t.txn then invalid_arg "Pager.free_page: no transaction";
  let w = Util.Codec.W.create () in
  Util.Codec.W.u32 w t.freelist;
  write_page t page (pad (Util.Codec.W.contents w));
  t.freelist <- page;
  mark_header_dirty t

let page_count t = t.page_count
let catalog_root t = t.catalog_root

let set_catalog_root t root =
  t.catalog_root <- root;
  mark_header_dirty t

(* --- transactions --- *)

let begin_txn t =
  if t.txn then invalid_arg "Pager.begin_txn: nested transaction";
  t.txn <- true;
  t.header_dirty <- false;
  t.journaled <- Hashtbl.create 16

let in_txn t = t.txn

let commit t =
  if not t.txn then invalid_arg "Pager.commit: no transaction";
  (* One header image per transaction, deferred from allocate/free/
     set_catalog_root; write_page journals the original header first. *)
  if t.header_dirty then write_header t;
  (match t.vfs.Vfs.journal with
  | Some jf ->
    (* Barrier 1: the undo log was durable before the database changed
       (writes are write-through, so the ordering guarantee comes from
       journaling originals before the first write of each page). *)
    jf.Vfs.sync ();
    (* Barrier 2: the new contents are durable. *)
    t.vfs.Vfs.main.sync ();
    (* Barrier 3: resetting the journal is the commit point. *)
    journal_reset jf
  | None -> ());
  t.journaled <- Hashtbl.create 16;
  t.txn <- false

let rollback t =
  if not t.txn then invalid_arg "Pager.rollback: no transaction";
  (* Write the journaled original images back. *)
  Hashtbl.iter
    (fun page original -> t.vfs.Vfs.main.write ~pos:(page * page_size) original)
    t.journaled;
  (match t.vfs.Vfs.journal with Some jf -> journal_reset jf | None -> ());
  t.journaled <- Hashtbl.create 16;
  t.txn <- false;
  t.header_dirty <- false;
  (* The header may have been rolled back too; re-read it. *)
  parse_header t (read_page t 0)

let refresh t =
  if t.txn then invalid_arg "Pager.refresh: inside a transaction";
  let img = raw_read t 0 in
  if String.length img >= 8 && String.sub img 0 8 = magic then parse_header t img

let pages_touched t = Hashtbl.length t.touched

let take_pages_touched t =
  let n = Hashtbl.length t.touched in
  t.touched <- Hashtbl.create 64;
  n

(* --- open & crash recovery --- *)

let open_pager vfs =
  let t =
    {
      vfs;
      journaled = Hashtbl.create 16;
      txn = false;
      page_count = 1;
      freelist = 0;
      catalog_root = 0;
      header_dirty = false;
      touched = Hashtbl.create 64;
    }
  in
  (* Hot-journal recovery: roll uncommitted changes back before reading
     anything else. *)
  (match vfs.Vfs.journal with
  | Some jf ->
    let count = journal_count jf in
    if count > 0 then begin
      for i = 0 to count - 1 do
        let page, image = journal_record jf i in
        vfs.Vfs.main.write ~pos:(page * page_size) image
      done;
      vfs.Vfs.main.sync ();
      journal_reset jf
    end
  | None -> ());
  (* A database is fresh if the file is empty or — for a sparse region
     declared "large enough" up front (§3.2) — page 0 carries no magic. *)
  let fresh =
    vfs.Vfs.main.size () = 0
    || (let img = raw_read t 0 in
        String.length img < 8 || String.sub img 0 8 <> magic)
  in
  if fresh then begin
    vfs.Vfs.main.write ~pos:0 (header_image t);
    vfs.Vfs.main.sync ()
  end
  else parse_header t (raw_read t 0);
  t
