(** Probabilistic primality testing and prime generation for Rabin keys. *)

val is_probable_prime : ?rounds:int -> Util.Rng.t -> Nat.t -> bool
(** Miller–Rabin with trial division by small primes first. The error
    probability is at most 4^-rounds (default 25 rounds). *)

val generate : Util.Rng.t -> bits:int -> Nat.t
(** Random probable prime of exactly [bits] bits. *)

val generate_blum : Util.Rng.t -> bits:int -> Nat.t
(** Random probable prime ≡ 3 (mod 4) — the form required by Rabin
    signing, where square roots are computed as [m^((p+1)/4) mod p]. *)
