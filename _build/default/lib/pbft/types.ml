type replica_id = int
type client_id = int
type view = int
type seqno = int
type digest = string

let client_addr_base = 1000
let addr_of_client c = client_addr_base + c
let primary_of_view ~n v = v mod n
let quorum_2f1 ~f = (2 * f) + 1
let quorum_f1 ~f = f + 1
