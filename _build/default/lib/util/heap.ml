type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t e =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap e in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let push t prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while !i > 0 && less t.data.(!i) t.data.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = t.data.(p) in
    t.data.(p) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := p
  done

let peek t = if t.len = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let clear t =
  t.data <- [||];
  t.len <- 0
