(** The gateway front door: open-loop session fan-in, request coalescing,
    and explicit flow control in front of a PBFT cluster.

    Many lightweight client sessions (tens of thousands) send small
    binary frames to one well-known address. The door coalesces queued
    operations into batched upstream requests — flushed when
    [flush_bytes] of operations accumulate (size trigger) or when the
    oldest waits [flush_deadline] (deadline trigger) — and multiplexes
    them over a small pool of real {!Pbft.Client} connections, composing
    with the primary's own request batching. Admission control sheds
    load with a distinguishable status instead of queueing without
    bound, and session records live in a bounded LRU so the door's
    memory is O(max_sessions) regardless of how many sessions ever
    connect. *)

val frontdoor_addr : int
(** The door's network address (4000). *)

val frame_cost : int -> float
(** CPU seconds charged to convert one binary frame of the given size. *)

(** {1 Session frames} *)

val encode_request : session:int -> req_id:int -> op:string -> string

val decode_request : string -> (int * int * string) option
[@@trust.source "edge-session frame decoded off the wire (unauthenticated until the replicas' MAC check)"]

type status = Done | Shed  (** [Shed] marks an admission-control rejection. *)

val encode_reply : status:status -> session:int -> req_id:int -> result:string -> string

val decode_reply : string -> (status * int * int * string) option
[@@trust.source "gateway reply frame decoded off the wire"]

(** {1 Coalesced upstream operations} *)

val encode_coalesced : (int * string) list -> string
(** Pack [(session, op)] pairs into one upstream operation. *)

val decode_coalesced : string -> (int * string) list option
[@@trust.source "coalesced batch unpacked from an ordered operation"]
(** [None] when the operation is not a coalesced batch. *)

val encode_results : string list -> string

val decode_results : string -> string list option
[@@trust.source "per-session results unpacked from an upstream reply"]

val wrap_service : Pbft.Service.t -> Pbft.Service.t
(** Wrap a service so coalesced operations execute element-wise against
    it (each element runs with its front-door session id as the service
    [client], so session-scoped state keys by session). Ordinary
    operations pass through unchanged. *)

(** {1 The door} *)

type config = {
  connections : int;  (** upstream PBFT client connections *)
  flush_bytes : int;  (** size trigger: flush once this many op bytes are queued *)
  flush_deadline : float;  (** deadline trigger: max queueing delay before a partial flush *)
  max_queue : int;  (** admission bound: operations queued beyond this are shed *)
  max_sessions : int;  (** LRU bound on live session records *)
}

type t

val create :
  cfg:config ->
  engine:Simnet.Engine.t ->
  net:Simnet.Net.t ->
  clients:Pbft.Client.t array ->
  unit ->
  t
(** Register the door at {!frontdoor_addr}. [clients] are the upstream
    connections (already created and keyed); the cluster's service must
    be wrapped with {!wrap_service} for coalesced batches to execute.
    Raises [Invalid_argument] if [clients] is empty. *)

val completed : t -> int
(** Operations answered with a quorum-accepted result. *)

val shed : t -> int
(** Operations rejected by admission control. *)

val rejected : t -> int
(** Malformed frames dropped. *)

val reply_cache_hits : t -> int
(** Retransmissions answered from the per-session last-reply cache. *)

val flushes_size : t -> int
val flushes_deadline : t -> int
(** Upstream batches dispatched by each trigger. *)

val queue_peak : t -> int
(** High-water mark of the pending queue. *)

val queue_depth : t -> int
val session_evictions : t -> int
(** Session records displaced by LRU capacity pressure ([max_sessions]). *)

val live_sessions : t -> int

val latency_stats : t -> Util.Stats.t
(** Enqueue-to-reply latency of completed operations (virtual seconds);
    shed operations are not recorded. *)

val shutdown : t -> unit
