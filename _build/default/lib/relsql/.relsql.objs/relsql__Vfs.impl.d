lib/relsql/vfs.ml: Bytes Simdisk String Util
