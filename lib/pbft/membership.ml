open Types

type entry = {
  me_client : client_id;
  me_addr : int;
  me_pubkey : string;
  mutable me_last_active : float;
  me_identity : string option;
}

(* Last-active order, oldest first. Client id breaks timestamp ties so
   the order — and therefore the stale-eviction sequence every replica
   executes — is total and deterministic. *)
module Agenda = Set.Make (struct
  type t = float * client_id

  let compare (t1, c1) (t2, c2) =
    let c = Float.compare t1 t2 in
    if c <> 0 then c else Int.compare c1 c2
end)

type t = {
  max : int;
  dynamic : bool;
  mutable next_id : int;
  table : (client_id, entry) Hashtbl.t;
  by_addr : (int, client_id) Hashtbl.t;
  by_identity : (string, client_id) Hashtbl.t;
  mutable agenda : Agenda.t;
      (* entries ordered by me_last_active; kept in lockstep with [table]
         so stale cleanup pops the oldest sessions in O(stale . log n)
         instead of folding over the whole table *)
}

let create ~max_clients ~dynamic =
  {
    max = max_clients;
    dynamic;
    next_id = 1;
    table = Hashtbl.create 64;
    by_addr = Hashtbl.create 64;
    by_identity = Hashtbl.create 64;
    agenda = Agenda.empty;
  }

let add_entry t e =
  (match Hashtbl.find_opt t.table e.me_client with
  | Some old -> t.agenda <- Agenda.remove (old.me_last_active, old.me_client) t.agenda
  | None -> ());
  Hashtbl.replace t.table e.me_client e;
  Hashtbl.replace t.by_addr e.me_addr e.me_client;
  t.agenda <- Agenda.add (e.me_last_active, e.me_client) t.agenda;
  match e.me_identity with
  | Some id -> Hashtbl.replace t.by_identity id e.me_client
  | None -> ()

let remove_entry t c =
  match Hashtbl.find_opt t.table c with
  | None -> false
  | Some e ->
    Hashtbl.remove t.table c;
    Hashtbl.remove t.by_addr e.me_addr;
    t.agenda <- Agenda.remove (e.me_last_active, c) t.agenda;
    (match e.me_identity with
    | Some id -> if Hashtbl.find_opt t.by_identity id = Some c then Hashtbl.remove t.by_identity id
    | None -> ());
    true

let populate_static t l =
  List.iter
    (fun (client, addr, pubkey) ->
      add_entry t
        { me_client = client; me_addr = addr; me_pubkey = pubkey; me_last_active = 0.0; me_identity = None };
      if client >= t.next_id then t.next_id <- client + 1)
    l

let lookup t c = Hashtbl.find_opt t.table c
let lookup_addr t a = Hashtbl.find_opt t.by_addr a

type join_outcome =
  | Joined of { client : client_id; terminated : client_id list }
  | Table_full

let cleanup_stale t ~now ~stale_threshold =
  (* The agenda is ordered oldest-first, so this pops exactly the stale
     prefix: O(stale . log n) where the old full-table fold was O(n). *)
  let rec pop acc =
    match Agenda.min_elt_opt t.agenda with
    | Some (last, c) when now -. last > stale_threshold ->
      ignore (remove_entry t c);
      pop (c :: acc)
    | Some _ | None -> acc
  in
  (* Ascending client order, as the old sorted fold produced: the list
     reaches Join replies (terminated sessions), so its order must stay
     canonical. *)
  List.sort Int.compare (pop [])

let join t ~addr ~pubkey ~identity ~now ~stale_threshold =
  (* A live session for this identity is terminated: the attacker-facing
     guarantee is one session per credential. Likewise an old session
     bound to this address. *)
  let terminated = ref [] in
  (match Hashtbl.find_opt t.by_identity identity with
  | Some old ->
    if remove_entry t old then terminated := old :: !terminated
  | None -> ());
  (match Hashtbl.find_opt t.by_addr addr with
  | Some old -> if remove_entry t old then terminated := old :: !terminated
  | None -> ());
  let room () = Hashtbl.length t.table < t.max in
  let made_room =
    if room () then true
    else begin
      let cleared = cleanup_stale t ~now ~stale_threshold in
      terminated := cleared @ !terminated;
      room ()
    end
  in
  if not made_room then Table_full
  else begin
    let client = t.next_id in
    t.next_id <- t.next_id + 1;
    add_entry t
      {
        me_client = client;
        me_addr = addr;
        me_pubkey = pubkey;
        me_last_active = now;
        me_identity = Some identity;
      };
    Joined { client; terminated = List.rev !terminated }
  end

let leave t c = remove_entry t c

let touch t c now =
  match Hashtbl.find_opt t.table c with
  | Some e ->
    if not (Float.equal e.me_last_active now) then begin
      t.agenda <- Agenda.remove (e.me_last_active, c) t.agenda;
      e.me_last_active <- now;
      t.agenda <- Agenda.add (now, c) t.agenda
    end
  | None -> ()

let count t = Hashtbl.length t.table
let capacity t = t.max
let is_dynamic t = t.dynamic
let clients t = Util.Sorted_tbl.keys t.table

let serialize t =
  (* Keyed by me_client, so key order here is the entry order the old
     sort-by-record produced: serialization stays byte-identical. *)
  let sorted = List.map snd (Util.Sorted_tbl.bindings t.table) in
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.varint w t.next_id;
      Util.Codec.W.list w
        (fun w e ->
          Util.Codec.W.varint w e.me_client;
          Util.Codec.W.varint w e.me_addr;
          Util.Codec.W.lstring w e.me_pubkey;
          Util.Codec.W.f64 w e.me_last_active;
          Util.Codec.W.option w Util.Codec.W.lstring e.me_identity)
        sorted)
    ()

let load t s =
  Hashtbl.reset t.table;
  Hashtbl.reset t.by_addr;
  Hashtbl.reset t.by_identity;
  t.agenda <- Agenda.empty;
  match
    Util.Codec.decode
      (fun r ->
        let next_id = Util.Codec.R.varint r in
        let entries =
          Util.Codec.R.list r (fun r ->
              let me_client = Util.Codec.R.varint r in
              let me_addr = Util.Codec.R.varint r in
              let me_pubkey = Util.Codec.R.lstring r in
              let me_last_active = Util.Codec.R.f64 r in
              let me_identity = Util.Codec.R.option r Util.Codec.R.lstring in
              { me_client; me_addr; me_pubkey; me_last_active; me_identity })
        in
        (next_id, entries))
      s
  with
  | next_id, entries ->
    t.next_id <- next_id;
    List.iter (add_entry t) entries
  | exception Util.Codec.R.Truncated -> ()
