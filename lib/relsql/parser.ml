open Ast

exception Error of string

type state = { toks : Lexer.token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let reserved =
  [ "select"; "from"; "where"; "group"; "order"; "limit"; "insert"; "into"; "update"; "delete";
    "values"; "set"; "and"; "or"; "not"; "join"; "on"; "inner"; "by"; "as"; "create"; "drop";
    "table"; "index"; "begin"; "commit"; "rollback"; "like"; "is"; "asc"; "desc"; "primary";
    "key"; "if"; "exists" ]

let is_reserved name = List.exists (Lexer.keyword_eq name) reserved

let fail st what =
  let tok =
    match peek st with
    | Lexer.Ident s -> Printf.sprintf "identifier %S" s
    | Lexer.Int_lit i -> Printf.sprintf "integer %d" i
    | Lexer.Real_lit f -> Printf.sprintf "real %g" f
    | Lexer.String_lit s -> Printf.sprintf "string %S" s
    | Lexer.Punct p -> Printf.sprintf "%S" p
    | Lexer.Eof -> "end of input"
  in
  raise (Error (Printf.sprintf "expected %s but found %s" what tok))

let is_kw st kw = match peek st with Lexer.Ident s -> Lexer.keyword_eq s kw | _ -> false

let eat_kw st kw = if is_kw st kw then advance st else fail st (String.uppercase_ascii kw)

let try_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let is_punct st p = match peek st with Lexer.Punct q -> p = q | _ -> false

let eat_punct st p = if is_punct st p then advance st else fail st (Printf.sprintf "%S" p)

let try_punct st p =
  if is_punct st p then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Lexer.Ident s ->
    advance st;
    s
  | _ -> fail st "identifier"

(* --- expressions (precedence climbing) --- *)

let rec expr st = or_expr st

and or_expr st =
  let left = ref (and_expr st) in
  while is_kw st "or" do
    advance st;
    left := Binop ("OR", !left, and_expr st)
  done;
  !left

and and_expr st =
  let left = ref (not_expr st) in
  while is_kw st "and" do
    advance st;
    left := Binop ("AND", !left, not_expr st)
  done;
  !left

and not_expr st = if try_kw st "not" then Unop ("NOT", not_expr st) else comparison st

and comparison st =
  let left = concat_expr st in
  if try_kw st "is" then begin
    let negated = try_kw st "not" in
    eat_kw st "null";
    Is_null (left, not negated)
  end
  else if try_kw st "like" then Like (left, concat_expr st)
  else begin
    match peek st with
    | Lexer.Punct (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      Binop (op, left, concat_expr st)
    | _ -> left
  end

and concat_expr st =
  let left = ref (additive st) in
  while is_punct st "||" do
    advance st;
    left := Binop ("||", !left, additive st)
  done;
  !left

and additive st =
  let left = ref (multiplicative st) in
  let continue = ref true in
  while !continue do
    if is_punct st "+" then begin
      advance st;
      left := Binop ("+", !left, multiplicative st)
    end
    else if is_punct st "-" then begin
      advance st;
      left := Binop ("-", !left, multiplicative st)
    end
    else continue := false
  done;
  !left

and multiplicative st =
  let left = ref (unary st) in
  let continue = ref true in
  while !continue do
    if is_punct st "*" then begin
      advance st;
      left := Binop ("*", !left, unary st)
    end
    else if is_punct st "/" then begin
      advance st;
      left := Binop ("/", !left, unary st)
    end
    else if is_punct st "%" then begin
      advance st;
      left := Binop ("%", !left, unary st)
    end
    else continue := false
  done;
  !left

and unary st =
  if is_punct st "-" then begin
    advance st;
    Unop ("-", unary st)
  end
  else primary st

and primary st =
  match peek st with
  | Lexer.Int_lit i ->
    advance st;
    Lit (Value.Int i)
  | Lexer.Real_lit f ->
    advance st;
    Lit (Value.Real f)
  | Lexer.String_lit s ->
    advance st;
    Lit (Value.Text s)
  | Lexer.Punct "(" ->
    advance st;
    let e = expr st in
    eat_punct st ")";
    e
  | Lexer.Punct "*" ->
    advance st;
    Star
  | Lexer.Ident name when Lexer.keyword_eq name "null" ->
    advance st;
    Lit Value.Null
  | Lexer.Ident name when is_reserved name -> fail st "expression"
  | Lexer.Ident name -> begin
    advance st;
    if is_punct st "(" then begin
      advance st;
      let args =
        if try_punct st ")" then []
        else begin
          let rec loop acc =
            let a = expr st in
            if try_punct st "," then loop (a :: acc)
            else begin
              eat_punct st ")";
              List.rev (a :: acc)
            end
          in
          loop []
        end
      in
      Call (String.uppercase_ascii name, args)
    end
    else if is_punct st "." then begin
      advance st;
      let col = ident st in
      Col (Some name, col)
    end
    else Col (None, name)
  end
  | _ -> fail st "expression"

(* --- statements --- *)

let column_type st =
  let name = ident st in
  if Lexer.keyword_eq name "integer" || Lexer.keyword_eq name "int" then T_integer
  else if Lexer.keyword_eq name "real" || Lexer.keyword_eq name "float" then T_real
  else if Lexer.keyword_eq name "text" || Lexer.keyword_eq name "varchar" then begin
    (* Optional length annotation, ignored: VARCHAR(80). *)
    if try_punct st "(" then begin
      (match peek st with Lexer.Int_lit _ -> advance st | _ -> fail st "length");
      eat_punct st ")"
    end;
    T_text
  end
  else raise (Error (Printf.sprintf "unknown column type %S" name))

let column_def st =
  let col_name = ident st in
  let col_type = column_type st in
  let col_pk =
    if try_kw st "primary" then begin
      eat_kw st "key";
      true
    end
    else false
  in
  { col_name; col_type; col_pk }

let create_stmt st =
  eat_kw st "create";
  if try_kw st "table" then begin
    let ct_if_not_exists =
      if try_kw st "if" then begin
        eat_kw st "not";
        eat_kw st "exists";
        true
      end
      else false
    in
    let ct_name = ident st in
    eat_punct st "(";
    let rec cols acc =
      let c = column_def st in
      if try_punct st "," then cols (c :: acc)
      else begin
        eat_punct st ")";
        List.rev (c :: acc)
      end
    in
    Create_table { ct_name; ct_cols = cols []; ct_if_not_exists }
  end
  else if try_kw st "index" then begin
    let ci_if_not_exists =
      if try_kw st "if" then begin
        eat_kw st "not";
        eat_kw st "exists";
        true
      end
      else false
    in
    let ci_name = ident st in
    eat_kw st "on";
    let ci_table = ident st in
    eat_punct st "(";
    let ci_col = ident st in
    eat_punct st ")";
    Create_index { ci_name; ci_table; ci_col; ci_if_not_exists }
  end
  else fail st "TABLE or INDEX"

let insert_stmt st =
  eat_kw st "insert";
  eat_kw st "into";
  let ins_table = ident st in
  let ins_cols =
    if try_punct st "(" then begin
      let rec loop acc =
        let c = ident st in
        if try_punct st "," then loop (c :: acc)
        else begin
          eat_punct st ")";
          List.rev (c :: acc)
        end
      in
      loop []
    end
    else []
  in
  eat_kw st "values";
  let row () =
    eat_punct st "(";
    let rec loop acc =
      let e = expr st in
      if try_punct st "," then loop (e :: acc)
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  in
  let rec rows acc =
    let r = row () in
    if try_punct st "," then rows (r :: acc) else List.rev (r :: acc)
  in
  Insert { ins_table; ins_cols; ins_rows = rows [] }

let select_stmt st =
  eat_kw st "select";
  let projection () =
    let e = expr st in
    let alias =
      if try_kw st "as" then Some (ident st)
      else begin
        match peek st with
        | Lexer.Ident s
          when not
                 (List.exists (Lexer.keyword_eq s)
                    [ "from"; "where"; "group"; "order"; "limit" ]) ->
          advance st;
          Some s
        | _ -> None
      end
    in
    (e, alias)
  in
  let rec projections acc =
    let p = projection () in
    if try_punct st "," then projections (p :: acc) else List.rev (p :: acc)
  in
  let sel_exprs = projections [] in
  let sel_from =
    if try_kw st "from" then begin
      let table () =
        let name = ident st in
        let alias =
          match peek st with
          | Lexer.Ident s
            when not
                   (List.exists (Lexer.keyword_eq s)
                      [ "where"; "group"; "order"; "limit"; "join"; "on"; "inner" ]) ->
            advance st;
            Some s
          | _ -> None
        in
        (name, alias)
      in
      let first = table () in
      let rec more acc =
        if try_punct st "," then more (table () :: acc)
        else if is_kw st "inner" || is_kw st "join" then begin
          ignore (try_kw st "inner");
          eat_kw st "join";
          let tbl = table () in
          (* JOIN ... ON <expr> is folded into WHERE below via [joins]. *)
          eat_kw st "on";
          let cond = expr st in
          join_conds := cond :: !join_conds;
          more (tbl :: acc)
        end
        else List.rev acc
      and join_conds = ref [] in
      let tables = more [ first ] in
      (tables, !join_conds)
    end
    else ([], [])
  in
  let tables, join_conds = sel_from in
  let where = if try_kw st "where" then Some (expr st) else None in
  let sel_where =
    List.fold_left
      (fun acc cond -> match acc with None -> Some cond | Some w -> Some (Binop ("AND", w, cond)))
      where join_conds
  in
  let sel_group =
    if try_kw st "group" then begin
      eat_kw st "by";
      let rec loop acc =
        let e = expr st in
        if try_punct st "," then loop (e :: acc) else List.rev (e :: acc)
      in
      loop []
    end
    else []
  in
  let sel_order =
    if try_kw st "order" then begin
      eat_kw st "by";
      let item () =
        let e = expr st in
        let desc = if try_kw st "desc" then true else (ignore (try_kw st "asc"); false) in
        { ord_expr = e; ord_desc = desc }
      in
      let rec loop acc =
        let i = item () in
        if try_punct st "," then loop (i :: acc) else List.rev (i :: acc)
      in
      loop []
    end
    else []
  in
  let sel_limit =
    if try_kw st "limit" then begin
      match peek st with
      | Lexer.Int_lit i ->
        advance st;
        Some i
      | _ -> fail st "limit count"
    end
    else None
  in
  Select { sel_exprs; sel_from = tables; sel_where; sel_group; sel_order; sel_limit }

let update_stmt st =
  eat_kw st "update";
  let upd_table = ident st in
  eat_kw st "set";
  let assignment () =
    let c = ident st in
    eat_punct st "=";
    (c, expr st)
  in
  let rec loop acc =
    let a = assignment () in
    if try_punct st "," then loop (a :: acc) else List.rev (a :: acc)
  in
  let upd_set = loop [] in
  let upd_where = if try_kw st "where" then Some (expr st) else None in
  Update { upd_table; upd_set; upd_where }

let delete_stmt st =
  eat_kw st "delete";
  eat_kw st "from";
  let del_table = ident st in
  let del_where = if try_kw st "where" then Some (expr st) else None in
  Delete { del_table; del_where }

let drop_stmt st =
  eat_kw st "drop";
  if try_kw st "table" then begin
    let dt_if_exists =
      if try_kw st "if" then begin
        eat_kw st "exists";
        true
      end
      else false
    in
    Drop_table { dt_name = ident st; dt_if_exists }
  end
  else if try_kw st "index" then begin
    let di_if_exists =
      if try_kw st "if" then begin
        eat_kw st "exists";
        true
      end
      else false
    in
    Drop_index { di_name = ident st; di_if_exists }
  end
  else fail st "TABLE or INDEX"

let statement st =
  if is_kw st "create" then create_stmt st
  else if is_kw st "insert" then insert_stmt st
  else if is_kw st "select" then select_stmt st
  else if is_kw st "update" then update_stmt st
  else if is_kw st "delete" then delete_stmt st
  else if is_kw st "drop" then drop_stmt st
  else if try_kw st "begin" then begin
    ignore (try_kw st "transaction");
    Begin_txn
  end
  else if try_kw st "commit" then Commit_txn
  else if try_kw st "rollback" then Rollback_txn
  else fail st "statement"

let parse src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec loop acc =
    if peek st = Lexer.Eof then List.rev acc
    else begin
      let s = statement st in
      while try_punct st ";" do
        ()
      done;
      loop (s :: acc)
    end
  in
  loop []

let parse_one src =
  match parse src with
  | [ s ] -> s
  | [] -> raise (Error "empty statement")
  | _ -> raise (Error "expected a single statement")
