lib/util/rng.ml: Array Bytes Char Float Int64
