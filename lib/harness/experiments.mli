(** One regenerator per table and figure of the paper (see DESIGN.md's
    experiment index). Each returns a {!Report.t}; [duration] trades
    precision for wall-clock time. *)

val with_flags :
  dynamic:bool -> macs:bool -> allbig:bool -> batching:bool -> Pbft.Config.t -> Pbft.Config.t
(** Apply one Table-1 library-configuration row's flags to a base config. *)

val table1_rows : (string * float * (bool * bool * bool * bool)) list
(** The ten rows of Table 1: name, paper TPS, and
    (dynamic, macs, allbig, batching) flags. *)

val sql_spec : ?seed:int -> ?duration:float -> acid:bool -> Pbft.Config.t -> Scenario.spec
(** The Figure-5 workload: single-row SQL INSERTs against the replicated
    relational engine. *)

val sql_large_state_spec :
  ?seed:int -> ?duration:float -> ?app_pages:int -> Pbft.Config.t -> Scenario.spec
(** The checkpoint-cost workload: the same INSERT stream, but the
    database is pre-populated (at boot, into the genesis checkpoint) with
    bulky filler rows so the allocated page count is roughly 16x the
    per-checkpoint working set. Deep-copy checkpointing is O(allocated)
    here; copy-on-write is O(working set). *)

val lookup_fill_sql : ?rows:int -> ?row_bytes:int -> unit -> string list
(** INSERT batches pre-populating the lookup table ([rows] rows whose key
    column cycles through 256 values, [row_bytes] of pad each; defaults 6400 rows). *)

val indexed_sql_spec :
  ?seed:int ->
  ?duration:float ->
  ?app_pages:int ->
  indexed:bool ->
  range:bool ->
  Pbft.Config.t ->
  Scenario.spec
(** Read-mostly access-path workload: point ([range:false]) or
    small-range ([range:true]) aggregate SELECTs over the pre-filled
    lookup table. [indexed] controls only whether the boot-time init
    creates the secondary index — the operation stream is identical, so
    indexed-vs-scan comparisons isolate the access path. *)

val pipeline_cfg : depth:int -> cores:int -> unit -> Pbft.Config.t
(** The Table-1 default configuration with the given agreement-pipeline
    depth and virtual core count; depth 1 / 1 core is the serial
    baseline. *)

val pipeline_spec :
  ?seed:int -> ?duration:float -> ?num_clients:int -> Pbft.Config.t -> Scenario.spec
(** The pipelining workload: 1024-byte null operations from enough
    closed-loop clients (default 64) to keep a deep pipeline fed. *)

val pipeline_sweep : ?seed:int -> ?duration:float -> unit -> Report.t
(** Throughput versus pipeline depth x cores (the EXPERIMENTS.md
    pipelining table); each row notes speculative executions and
    rollbacks. *)

val read_mix_spec : ?seed:int -> ?duration:float -> ?app_pages:int -> Pbft.Config.t -> Scenario.spec
(** 95/5 read/write SQL mix over the indexed lookup table. The SELECTs
    are planner-proven read-only ({!Relsql.Pbft_service.is_readonly_sql})
    and ride the fast path as tentative replies; the INSERTs order
    through agreement. *)

val table1 : ?seed:int -> ?duration:float -> unit -> Report.t
(** Table 1: the ten library configurations under 1024-byte null
    operations, 12 clients / 4 replicas. *)

val figure4 : ?seed:int -> ?duration:float -> unit -> Report.t
(** Figure 4 is Table 1's throughput rendered per configuration; the
    report carries the same series. *)

val figure5 : ?seed:int -> ?duration:float -> unit -> Report.t
(** Figure 5: single-row INSERT throughput (ACID, rollback journal) with
    batching on, varying MACs × big-request handling × dynamic clients. *)

val acid_comparison : ?seed:int -> ?duration:float -> unit -> Report.t
(** §4.2: the most robust configuration with dynamic clients, ACID
    versus No-ACID. *)

val figure1 : ?seed:int -> unit -> string
(** Normal-case message flow: the Figure 1 sequence, rendered from the
    message trace of one request through the default configuration. *)

val figure2 : ?seed:int -> unit -> string
(** Dynamic client Join (Figure 2): the two-phase challenge–response and
    ordered system request, rendered from the trace. *)

val figure3 : ?seed:int -> unit -> string
(** The SQLite-VFS-inside-PBFT architecture (Figure 3): a replicated SQL
    transaction's trace, showing the pre-prepare carrying agreed
    non-deterministic data and the resulting replies. *)

val recovery : ?seed:int -> ?periods:float list -> unit -> Report.t
(** §2.3: stop-and-restart a replica under MAC authenticators; measured
    stall until the session-key rebroadcast unblocks recovery, as a
    function of the rebroadcast period, plus the message-load cost of
    shortening it. *)

val packet_loss : ?seed:int -> unit -> Report.t
(** §2.4: a single lost datagram. Case A: a big-request body dropped on
    its way to one replica — that replica stalls until the next stable
    checkpoint triggers a state transfer. Case B: a non-big request
    dropped on its way to the primary — the client retransmits and no
    replica stalls. Case C: case A with the body-fetch remedy enabled. *)

val nondet_validation : ?seed:int -> unit -> Report.t
(** §2.5: log replay during recovery under the three validation policies
    (none, delta, delta-with-recovery-skip); delta validation rejects
    the replayed requests' stale timestamps and impedes recovery. *)

val wan : ?seed:int -> ?duration:float -> unit -> Report.t
(** §3.3.3: the same service at WAN latencies for f = 1 and f = 2;
    latency inflation from quadratic message complexity. *)

val payload_sweep : ?seed:int -> ?duration:float -> unit -> Report.t
(** §4.1: the paper varied request/response sizes over 256–4096 bytes and
    found "the results ... are similar"; this sweep checks the same. *)

val loss_sweep : ?seed:int -> ?duration:float -> unit -> Report.t
(** The paper's summary claim quantified: "the high performance numbers
    come at the cost of decreased robustness" — throughput of the default
    (optimized) versus robust configuration as background UDP loss rises.
    The optimized configuration leans on big-request handling, so every
    lost client→replica body costs a replica a checkpoint-recovery cycle;
    the robust configuration degrades gracefully. *)

val batching_ablation : ?seed:int -> ?duration:float -> unit -> Report.t
(** Design ablation: congestion-window / aggregation-delay sensitivity of
    the default configuration (DESIGN.md design-choice index). *)
