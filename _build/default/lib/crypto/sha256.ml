(* FIPS 180-4 SHA-256 on Int32 words. *)

let digest_size = 32

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l; 0x923f82a4l;
     0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel;
     0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl;
     0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l;
     0xc6e00bf3l; 0xd5a79147l; 0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
     0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l;
     0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl; 0x682e6ff3l;
     0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l; 0x90befffal; 0xa4506cebl; 0xbef9a3f7l;
     0xc67178f2l |]

type ctx = {
  mutable h0 : int32;
  mutable h1 : int32;
  mutable h2 : int32;
  mutable h3 : int32;
  mutable h4 : int32;
  mutable h5 : int32;
  mutable h6 : int32;
  mutable h7 : int32;
  block : bytes; (* 64-byte working block *)
  mutable fill : int; (* bytes currently buffered in [block] *)
  mutable total : int64; (* total message bytes fed *)
  w : int32 array; (* 64-entry message schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x6a09e667l;
    h1 = 0xbb67ae85l;
    h2 = 0x3c6ef372l;
    h3 = 0xa54ff53al;
    h4 = 0x510e527fl;
    h5 = 0x9b05688cl;
    h6 = 0x1f83d9abl;
    h7 = 0x5be0cd19l;
    block = Bytes.create 64;
    fill = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let compress ctx =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- Bytes.get_int32_be ctx.block (i * 4)
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18 ^% Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19 ^% Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4
  and f = ref ctx.h5
  and g = ref ctx.h6
  and h = ref ctx.h7 in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let temp1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  ctx.h0 <- ctx.h0 +% !a;
  ctx.h1 <- ctx.h1 +% !b;
  ctx.h2 <- ctx.h2 +% !c;
  ctx.h3 <- ctx.h3 +% !d;
  ctx.h4 <- ctx.h4 +% !e;
  ctx.h5 <- ctx.h5 +% !f;
  ctx.h6 <- ctx.h6 +% !g;
  ctx.h7 <- ctx.h7 +% !h

let feed_bytes ctx b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Sha256.feed_bytes";
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let remaining = ref len and src = ref pos in
  while !remaining > 0 do
    let space = 64 - ctx.fill in
    let n = min space !remaining in
    Bytes.blit b !src ctx.block ctx.fill n;
    ctx.fill <- ctx.fill + n;
    src := !src + n;
    remaining := !remaining - n;
    if ctx.fill = 64 then begin
      compress ctx;
      ctx.fill <- 0
    end
  done

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_block () =
    while ctx.fill < 64 do
      Bytes.set ctx.block ctx.fill '\000';
      ctx.fill <- ctx.fill + 1
    done;
    compress ctx;
    ctx.fill <- 0
  in
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then pad_block ();
  while ctx.fill < 56 do
    Bytes.set ctx.block ctx.fill '\000';
    ctx.fill <- ctx.fill + 1
  done;
  Bytes.set_int64_be ctx.block 56 bitlen;
  ctx.fill <- 64;
  compress ctx;
  ctx.fill <- 0;
  let out = Bytes.create 32 in
  List.iteri
    (fun i h -> Bytes.set_int32_be out (i * 4) h)
    [ ctx.h0; ctx.h1; ctx.h2; ctx.h3; ctx.h4; ctx.h5; ctx.h6; ctx.h7 ];
  Bytes.to_string out

let digest msg =
  let ctx = init () in
  feed ctx msg;
  finalize ctx

let hex msg = Util.Hexdump.of_string (digest msg)
