lib/relsql/expr.ml: Array Ast Char Float Hashtbl Int64 List Printf String Value
