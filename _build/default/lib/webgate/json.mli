(** JSON, from scratch — the browser-friendly wire format §3.3.3 says the
    middleware must learn to speak ("binary messages are highly
    inconvenient in this context... structures like JSON or XML need to
    be used"). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error} on malformed input. Numbers are parsed as
    floats; strings support the standard escapes plus \uXXXX (decoded to
    UTF-8). *)

val print : t -> string
(** Compact rendering with minimal escaping. *)

val pretty : t -> string
(** Indented rendering for logs and examples. *)

(** {2 Accessors} (raise [Not_found] / [Parse_error] on shape mismatch) *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_string_exn : t -> string
val to_float_exn : t -> float
val to_int_exn : t -> int
val to_bool_exn : t -> bool

(** {2 Binary-safe helpers} *)

val of_bytes : string -> t
(** Hex-armours arbitrary bytes into a [Str]. *)

val bytes_exn : t -> string
(** Inverse of {!of_bytes}. *)
