type spec = {
  shards : int;
  cfg : Pbft.Config.t;
  seed : int;
  sessions : int;
  pool : int;
  rows : int;
  warmup : float;
  duration : float;
  cross_fraction : float;
  read_fraction : float;
  certs : bool;
  profile : Simnet.Net.profile;
  flush_bytes : int;
  flush_deadline : float;
  max_queue : int;
  prepare_timeout : float;
  tx_ttl : float;
}

let default_spec ?(shards = 1) () =
  {
    shards;
    cfg = Pbft.Config.default ~f:1;
    seed = 1;
    sessions = 96;
    pool = 8;
    rows = 512;
    warmup = 0.5;
    duration = 2.0;
    cross_fraction = 0.0;
    read_fraction = 0.7;
    certs = false;
    profile = Simnet.Net.lan_profile;
    flush_bytes = 2048;
    flush_deadline = 0.5e-3;
    max_queue = 512;
    prepare_timeout = 0.4;
    tx_ttl = 2.0;
  }

(* The replica reserves this many pages of middleware state ahead of the
   service region (see Replica.create); the service's partition starts
   right after it. *)
let service_first_page = 4
let service_app_pages = 128

let accounts_schema =
  "CREATE TABLE IF NOT EXISTS accounts (id INTEGER PRIMARY KEY, bal INTEGER, pad TEXT)"

let session_addr_base = 100_000
let rpc_addr = 99_990

let accounts_topology ~shards =
  Relsql.Shard.topology ~shards [ { Relsql.Shard.sr_table = "accounts"; sr_column = "id" } ]

(* Deterministic pre-population: the same total row set regardless of the
   shard count, each shard holding exactly the ids it owns — so the 1-,
   2- and 4-shard deployments answer identical queries identically. *)
let init_sql topo ~shard ~rows =
  let owned =
    List.filter
      (fun id -> Int.equal (Relsql.Shard.shard_of_int topo id) shard)
      (List.init rows (fun i -> i + 1))
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | l ->
      let rec take n l = if n = 0 then ([], l) else
        match l with [] -> ([], []) | x :: tl -> let (a, b) = take (n - 1) tl in (x :: a, b)
      in
      let batch, rest = take 32 l in
      chunks (batch :: acc) rest
  in
  List.map
    (fun batch ->
      "INSERT INTO accounts (id, bal, pad) VALUES "
      ^ String.concat ", "
          (List.map (fun id -> Printf.sprintf "(%d, 100, 'p%d')" id id) batch))
    (chunks [] owned)

type deployment = {
  d_spec : spec;
  d_engine : Simnet.Engine.t;
  d_edge : Simnet.Net.t;
  d_clusters : Pbft.Cluster.t array;
  d_router : Webgate.Router.t;
  d_topology : Relsql.Shard.topology;
  mutable d_rpc_seq : int;
}

let engine d = d.d_engine
let edge d = d.d_edge
let router d = d.d_router
let cluster d s = d.d_clusters.(s)
let topology d = d.d_topology

let key_on_shard d s =
  let rec find id =
    if id > d.d_spec.rows then invalid_arg "Shards.key_on_shard: shard owns no row"
    else if Int.equal (Relsql.Shard.shard_of_int d.d_topology id) s then id
    else find (id + 1)
  in
  find 1

let build spec =
  let engine = Simnet.Engine.create ~seed:spec.seed in
  let edge = Simnet.Net.create engine ~name:"edge" spec.profile in
  let topo = accounts_topology ~shards:spec.shards in
  (* The per-group threshold publics land here once the clusters exist;
     the 2PC wrappers capture the array and read it at execute time. *)
  let publics = Array.make spec.shards None in
  let verify ~shard ~client ~rq_id ~result ~cert =
    if not spec.certs then true
    else
      match publics.(shard) with
      | Some pk -> Pbft.Certificate.verify pk ~client ~rq_id ~result cert
      | None -> false
  in
  let service shard =
    Webgate.Frontdoor.wrap_service
      (Relsql.Twopc.wrap ~verify
         (Relsql.Pbft_service.service ~app_pages:service_app_pages ~schema:accounts_schema
            ~init:(init_sql topo ~shard ~rows:spec.rows) ()))
  in
  let clusters =
    Array.init spec.shards (fun s ->
        let net = Simnet.Net.create engine ~name:(Printf.sprintf "shard%d" s) spec.profile in
        let c =
          Pbft.Cluster.create ~num_clients:(spec.pool + 1) ~service:(service s)
            ~threshold_replies:spec.certs ~engine ~net spec.cfg
        in
        Simnet.Trace.set_enabled (Pbft.Cluster.trace c) false;
        publics.(s) <- Pbft.Cluster.threshold_public c;
        c)
  in
  let lanes =
    Array.map
      (fun c ->
        ( Array.init spec.pool (fun j -> Pbft.Cluster.client c (j + 1)),
          Pbft.Cluster.client c 0 ))
      clusters
  in
  let rcfg =
    {
      Webgate.Router.topology = topo;
      flush_bytes = spec.flush_bytes;
      flush_deadline = spec.flush_deadline;
      max_queue = spec.max_queue;
      max_sessions = spec.sessions + 64;
      prepare_timeout = spec.prepare_timeout;
      tx_ttl = spec.tx_ttl;
    }
  in
  let classify = (service 0).Pbft.Service.classify_readonly in
  let router = Webgate.Router.create ~cfg:rcfg ~engine ~net:edge ~classify ~lanes () in
  {
    d_spec = spec;
    d_engine = engine;
    d_edge = edge;
    d_clusters = clusters;
    d_router = router;
    d_topology = topo;
    d_rpc_seq = 0;
  }

let run_for d seconds =
  Simnet.Engine.run ~until:(Simnet.Engine.now d.d_engine +. seconds) d.d_engine

let rpc ?(timeout = 30.0) d op =
  d.d_rpc_seq <- d.d_rpc_seq + 1;
  let rq_id = d.d_rpc_seq in
  let result = ref None in
  Simnet.Net.register d.d_edge rpc_addr (fun ~src:_ wire ->
      match Webgate.Frontdoor.decode_reply wire with
      | Some (Webgate.Frontdoor.Done, s, rid, res)
        when Int.equal s rpc_addr && Int.equal rid rq_id ->
        (result := Some res)
        [@trustlint.allow
          "harness-side convenience RPC: the result was agreed by the shard's \
           PBFT quorum (the router's Pbft.Client accepts f+1 MAC-verified \
           matching replies) and is only handed back to the test"]
      | Some _ | None -> ());
  let frame = Webgate.Frontdoor.encode_request ~session:rpc_addr ~req_id:rq_id ~op in
  let send () =
    Simnet.Net.send d.d_edge ~label:"rpc" ~src:rpc_addr ~dst:Webgate.Frontdoor.frontdoor_addr
      frame
  in
  send ();
  let deadline = Simnet.Engine.now d.d_engine +. timeout in
  let last_send = ref (Simnet.Engine.now d.d_engine) in
  while Option.is_none !result && Simnet.Engine.now d.d_engine < deadline do
    run_for d 0.05;
    if Option.is_none !result && Simnet.Engine.now d.d_engine -. !last_send > 0.5 then begin
      send ();
      last_send := Simnet.Engine.now d.d_engine
    end
  done;
  Simnet.Net.unregister d.d_edge rpc_addr;
  match !result with Some r -> r | None -> "error:rpc-timeout"

let pages_region_root pages =
  Statemgr.Merkle.root_of_leaves
    (List.init service_app_pages (fun i ->
         Statemgr.Merkle.page_digest (Statemgr.Pages.page pages (service_first_page + i))))

let region_root d ~shard ~replica =
  pages_region_root (Pbft.Replica.pages (Pbft.Cluster.replica d.d_clusters.(shard) replica))

(* --- the closed-loop session workload --- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Smallest id after [k] (cyclically) owned by a different shard. *)
let partner_key d k =
  let rows = d.d_spec.rows in
  let home = Relsql.Shard.shard_of_int d.d_topology k in
  let rec scan step =
    if step > rows then k
    else
      let id = 1 + ((k - 1 + step) mod rows) in
      if Int.equal (Relsql.Shard.shard_of_int d.d_topology id) home then scan (step + 1) else id
  in
  scan 1

(* Deterministic operation mix: no RNG — the stream is a pure function of
   (session, seq), so a given spec replays bit-identically. *)
let op_for d ~session ~seq =
  let spec = d.d_spec in
  let mix = ((session * 7919) + (seq * 104729)) mod 1000 in
  let key = 1 + (((session * 613) + (seq * 769)) mod spec.rows) in
  if spec.shards > 1 && float_of_int mix < spec.cross_fraction *. 1000.0 then
    let k2 = partner_key d key in
    Printf.sprintf
      "UPDATE accounts SET bal = bal - 1 WHERE id = %d; UPDATE accounts SET bal = bal + 1 WHERE \
       id = %d"
      key k2
  else if
    ((session * 131) + (seq * 524287)) mod 1000 < int_of_float (spec.read_fraction *. 1000.0)
  then Printf.sprintf "SELECT bal FROM accounts WHERE id = %d" key
  else Printf.sprintf "UPDATE accounts SET bal = bal + 1 WHERE id = %d" key

type sess = {
  sd_id : int;
  sd_addr : int;
  mutable sd_seq : int;
  mutable sd_op : string;
  mutable sd_timer : Simnet.Engine.timer option;
  mutable sd_completed : int;
  mutable sd_errors : int;
}

let start_sessions d =
  let spec = d.d_spec in
  let stopped = ref false in
  let sessions =
    Array.init spec.sessions (fun i ->
        {
          sd_id = i + 1;
          sd_addr = session_addr_base + i;
          sd_seq = 0;
          sd_op = "";
          sd_timer = None;
          sd_completed = 0;
          sd_errors = 0;
        })
  in
  let cancel s =
    (match s.sd_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
    s.sd_timer <- None
  in
  let rec send ?(delay = 0.0) s =
    cancel s;
    let fire () =
      if not !stopped then begin
        let frame =
          Webgate.Frontdoor.encode_request ~session:s.sd_id ~req_id:s.sd_seq ~op:s.sd_op
        in
        Simnet.Net.send d.d_edge ~label:"sess" ~src:s.sd_addr
          ~dst:Webgate.Frontdoor.frontdoor_addr frame;
        (* Retransmit until answered: datagrams (and shed retries whose
           backoff frame was lost) must not wedge a closed-loop session. *)
        s.sd_timer <- Some (Simnet.Engine.timer d.d_engine ~delay:0.25 (fun () ->
            s.sd_timer <- None;
            send s))
      end
    in
    if delay > 0.0 then
      s.sd_timer <- Some (Simnet.Engine.timer d.d_engine ~delay (fun () ->
          s.sd_timer <- None;
          fire ()))
    else fire ()
  in
  let submit s =
    if not !stopped then begin
      s.sd_seq <- s.sd_seq + 1;
      s.sd_op <- op_for d ~session:s.sd_id ~seq:s.sd_seq;
      send s
    end
  in
  Array.iter
    (fun s ->
      Simnet.Net.register d.d_edge s.sd_addr (fun ~src:_ wire ->
          match Webgate.Frontdoor.decode_reply wire with
          | Some (status, sid, rid, result)
            when Int.equal sid s.sd_id && Int.equal rid s.sd_seq -> (
            match status with
            | Webgate.Frontdoor.Done ->
              cancel s;
              s.sd_completed <- s.sd_completed + 1;
              if has_prefix ~prefix:"error:" result then s.sd_errors <- s.sd_errors + 1;
              submit s
            | Webgate.Frontdoor.Shed ->
              (* Backpressure: retry the same request after a beat. *)
              send ~delay:2e-3 s)
          | Some _ | None -> ()))
    sessions;
  Array.iter submit sessions;
  let stop () =
    stopped := true;
    Array.iter cancel sessions
  in
  (sessions, stop)

type outcome = {
  so_vtps : float;
  so_completed : int;
  so_shard_tps : float array;
  so_shard_queue_peak : int array;
  so_cross_commits : int;
  so_cross_aborts : int;
  so_cross_timeouts : int;
  so_p50 : float;
  so_p95 : float;
  so_p99 : float;
  so_shed : int;
  so_cache_hits : int;
  so_errors : int;
}

let run spec =
  let d = build spec in
  let sessions, stop = start_sessions d in
  run_for d spec.warmup;
  let r = d.d_router in
  let c0 = Webgate.Router.completed r in
  let sc0 = Webgate.Router.shard_completed r in
  let xc0 = Webgate.Router.cross_commits r in
  let xa0 = Webgate.Router.cross_aborts r in
  let xt0 = Webgate.Router.cross_timeouts r in
  let shed0 = Webgate.Router.shed r in
  let hits0 = Webgate.Router.reply_cache_hits r in
  let err0 = Array.fold_left (fun acc s -> acc + s.sd_errors) 0 sessions in
  let t0 = Simnet.Engine.now d.d_engine in
  run_for d spec.duration;
  let span = Simnet.Engine.now d.d_engine -. t0 in
  stop ();
  let sc1 = Webgate.Router.shard_completed r in
  let lat = Webgate.Router.latency_stats r in
  let pct p = if Util.Stats.count lat > 0 then Util.Stats.percentile lat p else 0.0 in
  let outcome =
    {
      so_vtps =
        (if span > 0.0 then float_of_int (Webgate.Router.completed r - c0) /. span else 0.0);
      so_completed = Webgate.Router.completed r - c0;
      so_shard_tps =
        Array.init spec.shards (fun s ->
            if span > 0.0 then float_of_int (sc1.(s) - sc0.(s)) /. span else 0.0);
      so_shard_queue_peak = Webgate.Router.queue_peaks r;
      so_cross_commits = Webgate.Router.cross_commits r - xc0;
      so_cross_aborts = Webgate.Router.cross_aborts r - xa0;
      so_cross_timeouts = Webgate.Router.cross_timeouts r - xt0;
      so_p50 = pct 50.0;
      so_p95 = pct 95.0;
      so_p99 = pct 99.0;
      so_shed = Webgate.Router.shed r - shed0;
      so_cache_hits = Webgate.Router.reply_cache_hits r - hits0;
      so_errors = Array.fold_left (fun acc s -> acc + s.sd_errors) 0 sessions - err0;
    }
  in
  (outcome, d)

(* --- the Byzantine-coordinator fault scenario --- *)

type byz_report = {
  bz_abort_reply : string;
  bz_cross_commits : int;
  bz_cross_aborts : int;
  bz_cross_timeouts : int;
  bz_undo_restores : int;
  bz_view_changes : int;
  bz_balances_held : bool;
  bz_states_agree : bool;
  bz_recovery_reply : string;
  bz_failures : string list;
}

let transfer ~amount k0 k1 =
  Printf.sprintf
    "UPDATE accounts SET bal = bal - %d WHERE id = %d; UPDATE accounts SET bal = bal + %d WHERE \
     id = %d"
    amount k0 amount k1

let balance_sql k = Printf.sprintf "SELECT bal FROM accounts WHERE id = %d" k

(* Replicas at the group's frontier must agree on the service region; a
   straggler still catching up after the fault window is not a safety
   violation, so compare only replicas at the maximum executed seq. *)
let group_states_agree d ~shard =
  let c = d.d_clusters.(shard) in
  let n = (Pbft.Cluster.config c).Pbft.Config.n in
  let frontier =
    Array.fold_left
      (fun acc r -> Int.max acc (Pbft.Replica.last_executed r))
      0 (Pbft.Cluster.replicas c)
  in
  let roots =
    List.filter_map
      (fun i ->
        let r = Pbft.Cluster.replica c i in
        if Int.equal (Pbft.Replica.last_executed r) frontier then
          Some (region_root d ~shard ~replica:i)
        else None)
      (List.init n Fun.id)
  in
  match roots with
  | [] -> false
  | first :: rest -> List.length roots >= 2 && List.for_all (String.equal first) rest

let byzantine_coordinator ?spec () =
  let spec =
    match spec with
    | Some s -> s
    | None ->
      {
        (default_spec ~shards:2 ()) with
        certs = true;
        rows = 64;
        cfg = { (Pbft.Config.default ~f:1) with view_change_timeout = 1.0 };
        prepare_timeout = 0.4;
        tx_ttl = 2.0;
      }
  in
  let d = build spec in
  let failures = ref [] in
  let expect cond msg = if not cond then failures := msg :: !failures in
  run_for d 0.2;
  let k0 = key_on_shard d 0 and k1 = key_on_shard d 1 in
  (* A healthy cross-shard transfer first: the protocol must work before
     we break it. *)
  let healthy = rpc d (transfer ~amount:10 k0 k1) in
  expect
    (has_prefix ~prefix:"s0=" healthy)
    (Printf.sprintf "healthy cross-shard transfer failed: %s" healthy);
  let b0 = rpc d (balance_sql k0) and b1 = rpc d (balance_sql k1) in
  let r = d.d_router in
  let commits0 = Webgate.Router.cross_commits r in
  let aborts0 = Webgate.Router.cross_aborts r in
  let timeouts0 = Webgate.Router.cross_timeouts r in
  let undo0 = Relsql.Twopc.aborts () in
  let group1 = d.d_clusters.(1) in
  let vc0 =
    Array.fold_left (fun acc rp -> acc + Pbft.Replica.view_changes rp) 0
      (Pbft.Cluster.replicas group1)
  in
  (* Mute the view-0 primary of shard 1's group mid-2PC: shard 0 will
     prepare and hold its undo snapshot; shard 1 stalls until its view
     change. *)
  let adv =
    Pbft.Adversary.install ~net:(Pbft.Cluster.net group1) ~cfg:spec.cfg
      (Pbft.Cluster.replica group1 0) Pbft.Adversary.Mute
  in
  let abort_reply = rpc d (transfer ~amount:7 k0 k1) in
  expect
    (has_prefix ~prefix:"error:2pc-aborted" abort_reply)
    (Printf.sprintf "doomed transfer did not abort: %s" abort_reply);
  (* Let shard 1's group view-change past the mute primary; the late
     prepare then completes and the router's deferred abort lands. *)
  run_for d 6.0;
  Pbft.Adversary.uninstall adv;
  run_for d 1.0;
  let commits_fault = Webgate.Router.cross_commits r - commits0 in
  let aborts_fault = Webgate.Router.cross_aborts r - aborts0 in
  let timeouts_fault = Webgate.Router.cross_timeouts r - timeouts0 in
  let undo_fault = Relsql.Twopc.aborts () - undo0 in
  let vc_fault =
    Array.fold_left (fun acc rp -> acc + Pbft.Replica.view_changes rp) 0
      (Pbft.Cluster.replicas group1)
    - vc0
  in
  expect (Int.equal commits_fault 0)
    (Printf.sprintf "a shard committed the doomed transfer (%d commits)" commits_fault);
  expect (aborts_fault >= 1) "coordinator recorded no abort";
  expect (timeouts_fault >= 1) "abort was not timeout-triggered";
  expect (undo_fault >= 1) "no copy-on-write undo restore happened";
  expect (vc_fault >= 1) "shard 1 never view-changed past its mute primary";
  let b0' = rpc d (balance_sql k0) and b1' = rpc d (balance_sql k1) in
  let balances_held = String.equal b0 b0' && String.equal b1 b1' in
  expect balances_held
    (Printf.sprintf "balances moved across the abort: (%s,%s) -> (%s,%s)" b0 b1 b0' b1');
  let states_agree = group_states_agree d ~shard:0 && group_states_agree d ~shard:1 in
  expect states_agree "replica service regions diverged within a group";
  (* Liveness: with the adversary gone and a correct primary in place, a
     fresh transfer must commit on both shards. *)
  let recovery = rpc d (transfer ~amount:3 k0 k1) in
  expect
    (has_prefix ~prefix:"s0=" recovery)
    (Printf.sprintf "post-fault transfer did not commit: %s" recovery);
  {
    bz_abort_reply = abort_reply;
    bz_cross_commits = commits_fault;
    bz_cross_aborts = aborts_fault;
    bz_cross_timeouts = timeouts_fault;
    bz_undo_restores = undo_fault;
    bz_view_changes = vc_fault;
    bz_balances_held = balances_held;
    bz_states_agree = states_agree;
    bz_recovery_reply = recovery;
    bz_failures = List.rev !failures;
  }

let render_byz r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "byzantine-coordinator-mid-2pc:\n";
  Buffer.add_string buf (Printf.sprintf "  doomed transfer reply   %s\n" r.bz_abort_reply);
  Buffer.add_string buf
    (Printf.sprintf "  cross commits/aborts    %d/%d (timeout-triggered %d)\n" r.bz_cross_commits
       r.bz_cross_aborts r.bz_cross_timeouts);
  Buffer.add_string buf (Printf.sprintf "  COW undo restores       %d\n" r.bz_undo_restores);
  Buffer.add_string buf (Printf.sprintf "  shard-1 view changes    %d\n" r.bz_view_changes);
  Buffer.add_string buf
    (Printf.sprintf "  balances held           %b\n" r.bz_balances_held);
  Buffer.add_string buf (Printf.sprintf "  group states agree      %b\n" r.bz_states_agree);
  Buffer.add_string buf (Printf.sprintf "  recovery transfer       %s\n" r.bz_recovery_reply);
  (match r.bz_failures with
  | [] -> Buffer.add_string buf "  PASS\n"
  | fs ->
    List.iter (fun f -> Buffer.add_string buf (Printf.sprintf "  FAIL %s\n" f)) fs);
  Buffer.contents buf
