lib/pbft/costmodel.mli: Config
