(* Quickstart: replicate a counter over PBFT in ~30 lines.

   Run with:  dune exec examples/quickstart.exe *)

open Pbft

let () =
  (* A 4-replica cluster (tolerating f = 1 Byzantine fault) with two
     clients, running the built-in counter service on a simulated LAN. *)
  let cfg = Config.default ~f:1 in
  let cluster = Cluster.create ~seed:42 ~num_clients:2 ~service:(Service.counter ()) cfg in

  (* Ask the service to increment three times, then read. Invocations are
     asynchronous: the callback fires once a quorum of replicas agrees on
     the reply. *)
  let alice = Cluster.client cluster 0 in
  let log_result label result = Printf.printf "%-10s -> %s\n" label result in
  Client.invoke alice "incr" (fun r ->
      log_result "incr" r;
      Client.invoke alice "incr" (fun r ->
          log_result "incr" r;
          Client.invoke alice "incr" (fun r ->
              log_result "incr" r;
              (* Reads can use the read-only optimization: they execute
                 immediately at every replica, and the client waits for
                 2f+1 matching replies. *)
              Client.invoke alice ~readonly:true "get" (fun r -> log_result "get (ro)" r))));

  (* Drive the simulation. *)
  Cluster.run cluster ~seconds:1.0;

  (* Every replica executed the same operations in the same order. *)
  Array.iter
    (fun r ->
      Printf.printf "replica %d: executed=%d view=%d\n" (Replica.id r)
        (Replica.executed_requests r) (Replica.view r))
    (Cluster.replicas cluster)
