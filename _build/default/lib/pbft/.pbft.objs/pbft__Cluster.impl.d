lib/pbft/cluster.ml: Array Bytes Client Config Costmodel Crypto List Option Replica Service Simnet Types Util
