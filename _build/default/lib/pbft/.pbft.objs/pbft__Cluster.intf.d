lib/pbft/cluster.mli: Client Config Costmodel Crypto Replica Service Simnet Types
