(** Deterministic discrete-event engine over virtual time.

    Everything in the reproduction — network delays, CPU costs, disk
    syncs, protocol timers — is an event on this queue. Virtual time is in
    seconds. Two events scheduled for the same instant fire in scheduling
    order, which (together with the explicit {!Util.Rng}) makes every run
    bit-for-bit reproducible: the paper's authors had to retrofit a
    common-clock message log to reason about PBFT (§2.2); here the whole
    world shares one clock by construction. *)

type t

val create : seed:int -> t

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Util.Rng.t
(** The engine's root generator; components should [Util.Rng.split] it. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] fires [f] at [now t +. delay]; negative delays
    are clamped to zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

type timer

val timer : t -> delay:float -> (unit -> unit) -> timer
(** Cancellable variant of {!schedule}. *)

val cancel : timer -> unit

val periodic : t -> interval:float -> (unit -> unit) -> timer
(** Fires every [interval] until cancelled. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue, stopping when empty, when virtual time would exceed
    [until], or after [max_events] events. *)

val step : t -> bool
(** Process one event; false if the queue is empty. *)

val pending : t -> int

val events : t -> int
(** Total events executed since [create] — a host-side throughput
    denominator; does not affect virtual time. *)
