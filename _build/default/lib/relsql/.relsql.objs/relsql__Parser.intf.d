lib/relsql/parser.mli: Ast
