lib/crypto/shamir.mli: Bignum Util
