examples/evoting_demo.ml: Array Certificate Client Cluster Config Evoting List Option Pbft Printf Simnet String
