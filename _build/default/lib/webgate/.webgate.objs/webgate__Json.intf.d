lib/webgate/json.mli:
