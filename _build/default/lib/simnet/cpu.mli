(** Per-node virtual CPU.

    Work items (message verification, request execution, signing) are
    charged a virtual cost and run to completion in FIFO order on the
    node's single core. Throughput experiments are bottleneck-CPU-bound
    exactly as on the paper's testbed: when the primary's CPU saturates,
    queueing delay — not network latency — dominates. *)

type t

val create : Engine.t -> t

val execute : t -> cost:float -> (unit -> unit) -> unit
(** [execute t ~cost f] enqueues a work item taking [cost] virtual
    seconds; [f] runs when the item completes. Zero-cost items still
    respect FIFO ordering behind queued work. *)

val busy_until : t -> float
(** Time at which currently queued work drains. *)

val utilization : t -> since:float -> float
(** Fraction of [since, now] the CPU spent busy (for experiment reports). *)

val queue_length : t -> int

val total_busy : t -> float
(** Cumulative busy seconds since creation. *)
