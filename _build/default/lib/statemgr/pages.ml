exception Unnotified_write of int

type t = {
  page_size : int;
  num_pages : int;
  strict : bool;
  slots : Bytes.t option array; (* None = untouched zero page *)
  mutable dirty_set : (int, unit) Hashtbl.t;
}

let create ?(strict = false) ~page_size ~num_pages () =
  if page_size <= 0 || num_pages <= 0 then invalid_arg "Pages.create";
  { page_size; num_pages; strict; slots = Array.make num_pages None; dirty_set = Hashtbl.create 64 }

let page_size t = t.page_size
let num_pages t = t.num_pages
let total_size t = t.page_size * t.num_pages

let check_range t pos len =
  if pos < 0 || len < 0 || pos + len > total_size t then invalid_arg "Pages: out of bounds"

let zero_page t = Bytes.make t.page_size '\000'

let slot t i =
  match t.slots.(i) with
  | Some b -> b
  | None ->
    let b = zero_page t in
    t.slots.(i) <- Some b;
    b

let read t ~pos ~len =
  check_range t pos len;
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let abs = pos + !copied in
    let pg = abs / t.page_size and off = abs mod t.page_size in
    let n = min (len - !copied) (t.page_size - off) in
    (match t.slots.(pg) with
    | None -> Bytes.fill out !copied n '\000'
    | Some b -> Bytes.blit b off out !copied n);
    copied := !copied + n
  done;
  Bytes.to_string out

let pages_of_range t pos len =
  if len = 0 then []
  else begin
    let first = pos / t.page_size and last = (pos + len - 1) / t.page_size in
    List.init (last - first + 1) (fun i -> first + i)
  end

let notify_modify t ~pos ~len =
  check_range t pos len;
  List.iter (fun pg -> Hashtbl.replace t.dirty_set pg ()) (pages_of_range t pos len)

let write t ~pos s =
  let len = String.length s in
  check_range t pos len;
  List.iter
    (fun pg -> if t.strict && not (Hashtbl.mem t.dirty_set pg) then raise (Unnotified_write pg))
    (pages_of_range t pos len);
  if not t.strict then List.iter (fun pg -> Hashtbl.replace t.dirty_set pg ()) (pages_of_range t pos len);
  let copied = ref 0 in
  while !copied < len do
    let abs = pos + !copied in
    let pg = abs / t.page_size and off = abs mod t.page_size in
    let n = min (len - !copied) (t.page_size - off) in
    Bytes.blit_string s !copied (slot t pg) off n;
    copied := !copied + n
  done

let page t i =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.page";
  match t.slots.(i) with None -> String.make t.page_size '\000' | Some b -> Bytes.to_string b

let load_page t i contents =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.load_page";
  if String.length contents <> t.page_size then invalid_arg "Pages.load_page: size mismatch";
  t.slots.(i) <- Some (Bytes.of_string contents);
  Hashtbl.replace t.dirty_set i ()

let dirty t = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.dirty_set [])
let clear_dirty t = t.dirty_set <- Hashtbl.create 64

let allocated_pages t =
  Array.fold_left (fun acc s -> match s with Some _ -> acc + 1 | None -> acc) 0 t.slots

let copy t =
  {
    t with
    slots = Array.map (Option.map Bytes.copy) t.slots;
    dirty_set = Hashtbl.copy t.dirty_set;
  }
