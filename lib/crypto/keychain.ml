type mode =
  | Real of int
  | Simulated

(* Simulated signatures are HMAC tags under a key derived from the node id
   and a per-run secret, padded to the nominal signature size so the
   network byte accounting matches the Real mode. *)
let simulated_signature_size = 68 (* ≈ 512-bit Rabin root + counter byte overhead *)

type signer =
  | Real_signer of int * Rabin.keypair
  | Sim_signer of int * string

type verifier =
  | Real_verifier of int * Rabin.public_key
  | Sim_verifier of int * string

let derive_sim_key rng id =
  let seed = Bytes.to_string (Util.Rng.bytes rng 16) in
  Sha256.digest (Printf.sprintf "simkey|%d|%s" id seed)

let make mode rng ~id =
  match mode with
  | Real bits -> Real_signer (id, Rabin.generate rng ~bits)
  | Simulated -> Sim_signer (id, derive_sim_key rng id)

let verifier_of = function
  | Real_signer (id, kp) -> Real_verifier (id, Rabin.public kp)
  | Sim_signer (id, key) -> Sim_verifier (id, key)

let pad_to size s = if String.length s >= size then s else s ^ String.make (size - String.length s) '\000'

let sign signer msg =
  match signer with
  | Real_signer (_, kp) -> Rabin.signature_to_string (Rabin.sign kp msg)
  | Sim_signer (_, key) -> pad_to simulated_signature_size (Hmac.mac ~key msg)

let verify verifier msg ~signature =
  match verifier with
  | Real_verifier (_, pk) -> begin
    match Rabin.signature_of_string signature with
    | None -> false
    | Some s -> Rabin.verify pk msg s
  end
  | Sim_verifier (_, key) ->
    String.length signature = simulated_signature_size
    && Hmac.verify ~key msg ~tag:(String.sub signature 0 32)

let signature_size = function
  | Real_verifier (_, pk) ->
    (* counter varint + length prefix + root bytes *)
    4 + String.length (Bignum.Nat.to_bytes_be (Rabin.modulus pk))
  | Sim_verifier _ -> simulated_signature_size

let verifier_to_string = function
  | Real_verifier (id, pk) ->
    Util.Codec.encode
      (fun w () ->
        Util.Codec.W.u8 w 0;
        Util.Codec.W.varint w id;
        Util.Codec.W.lstring w (Rabin.public_to_string pk))
      ()
  | Sim_verifier (id, key) ->
    Util.Codec.encode
      (fun w () ->
        Util.Codec.W.u8 w 1;
        Util.Codec.W.varint w id;
        Util.Codec.W.lstring w key)
      ()

let verifier_of_string s =
  match
    Util.Codec.decode
      (fun r ->
        let tag = Util.Codec.R.u8 r in
        let id = Util.Codec.R.varint r in
        let body = Util.Codec.R.lstring r in
        (tag, id, body))
      s
  with
  | exception Util.Codec.R.Truncated -> None
  | 0, id, body -> Option.map (fun pk -> Real_verifier (id, pk)) (Rabin.public_of_string body)
  | 1, id, body -> Some (Sim_verifier (id, body))
  | _ -> None

(* Proactive session-key refresh (epoch rollover) must not disturb the
   deterministic RNG stream that every replica shares with the rest of
   the simulation, so epoch keys are *derived*, not drawn: a keyed hash
   of the signer's own deterministic signature over the (peer, epoch)
   label. Same signer + peer + epoch → same key, and nobody without the
   signing secret can predict it. *)
let derive_session_key signer ~peer ~epoch =
  let tag = sign signer (Printf.sprintf "session-key|%d|%d" peer epoch) in
  String.sub (Sha256.digest ("sk|" ^ tag)) 0 16

let signer_id = function Real_signer (id, _) | Sim_signer (id, _) -> id
let verifier_id = function Real_verifier (id, _) | Sim_verifier (id, _) -> id
