lib/pbft/log.mli: Hashtbl Message Types
