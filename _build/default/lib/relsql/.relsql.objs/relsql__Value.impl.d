lib/relsql/value.ml: Bytes Int64 Printf Util
