(* FIPS 180-4 SHA-256.

   The compression function runs on untagged native [int]s holding 32-bit
   words (OCaml ints are 63-bit, so every intermediate fits), masking back
   to 32 bits where overflow matters. This avoids the per-operation boxing
   of an [Int32] implementation — the digest path under MAC authenticators
   is the hottest host-side loop in the simulator. *)

let digest_size = 32

(* Host-side instrumentation: total message bytes fed through the
   compression function, across all contexts. Single-domain only. *)
let hashed = ref 0

let bytes_hashed () = !hashed

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1; 0x923f82a4;
     0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe;
     0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc; 0x2de92c6f;
     0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7;
     0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
     0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116;
     0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
     0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208; 0x90befffa; 0xa4506ceb; 0xbef9a3f7;
     0xc67178f2 |]

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable h5 : int;
  mutable h6 : int;
  mutable h7 : int;
  block : bytes; (* 64-byte working block *)
  mutable fill : int; (* bytes currently buffered in [block] *)
  mutable total : int; (* total message bytes fed *)
  w : int array; (* 64-entry message schedule, reused across blocks *)
}

let init () =
  {
    h0 = 0x6a09e667;
    h1 = 0xbb67ae85;
    h2 = 0x3c6ef372;
    h3 = 0xa54ff53a;
    h4 = 0x510e527f;
    h5 = 0x9b05688c;
    h6 = 0x1f83d9ab;
    h7 = 0x5be0cd19;
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    w = Array.make 64 0;
  }

(* The message schedule [w] is scratch within one [compress] call (fully
   written before it is read), so copies may share it — single-domain. *)
let copy ctx =
  {
    ctx with
    block = Bytes.copy ctx.block;
  }

let reset ctx =
  ctx.h0 <- 0x6a09e667;
  ctx.h1 <- 0xbb67ae85;
  ctx.h2 <- 0x3c6ef372;
  ctx.h3 <- 0xa54ff53a;
  ctx.h4 <- 0x510e527f;
  ctx.h5 <- 0x9b05688c;
  ctx.h6 <- 0x1f83d9ab;
  ctx.h7 <- 0x5be0cd19;
  ctx.fill <- 0;
  ctx.total <- 0

let mask = 0xffffffff
let[@inline] rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx buf off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    w.(i) <-
      (Char.code (Bytes.unsafe_get buf j) lsl 24)
      lor (Char.code (Bytes.unsafe_get buf (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get buf (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get buf (j + 3))
  done;
  for i = 16 to 63 do
    let x15 = Array.unsafe_get w (i - 15) and x2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr x15 7 lxor rotr x15 18 lxor (x15 lsr 3) in
    let s1 = rotr x2 17 lxor rotr x2 19 lxor (x2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1) land mask)
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4
  and f = ref ctx.h5
  and g = ref ctx.h6
  and h = ref ctx.h7 in
  for i = 0 to 63 do
    let e' = !e in
    let s1 = rotr e' 6 lxor rotr e' 11 lxor rotr e' 25 in
    let ch = (e' land !f) lxor (lnot e' land mask land !g) in
    let temp1 = (!h + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask in
    let a' = !a in
    let s0 = rotr a' 2 lxor rotr a' 13 lxor rotr a' 22 in
    let maj = (a' land !b) lxor (a' land !c) lxor (!b land !c) in
    let temp2 = s0 + maj in
    h := !g;
    g := !f;
    f := e';
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := a';
    a := (temp1 + temp2) land mask
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask;
  ctx.h5 <- (ctx.h5 + !f) land mask;
  ctx.h6 <- (ctx.h6 + !g) land mask;
  ctx.h7 <- (ctx.h7 + !h) land mask

let feed_bytes ctx b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  hashed := !hashed + len;
  let remaining = ref len and src = ref pos in
  (* Fast path: if the block buffer is empty, compress 64-byte chunks
     straight out of the caller's buffer without the intermediate blit. *)
  if ctx.fill > 0 then begin
    let space = 64 - ctx.fill in
    let n = Int.min space !remaining in
    Bytes.blit b !src ctx.block ctx.fill n;
    ctx.fill <- ctx.fill + n;
    src := !src + n;
    remaining := !remaining - n;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  if ctx.fill = 0 then begin
    while !remaining >= 64 do
      compress ctx b !src;
      src := !src + 64;
      remaining := !remaining - 64
    done;
    if !remaining > 0 then begin
      Bytes.blit b !src ctx.block 0 !remaining;
      ctx.fill <- !remaining
    end
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let finalize ctx =
  let bitlen = Int64.of_int (ctx.total * 8) in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_block () =
    while ctx.fill < 64 do
      Bytes.set ctx.block ctx.fill '\000';
      ctx.fill <- ctx.fill + 1
    done;
    compress ctx ctx.block 0;
    ctx.fill <- 0
  in
  Bytes.set ctx.block ctx.fill '\x80';
  ctx.fill <- ctx.fill + 1;
  if ctx.fill > 56 then pad_block ();
  while ctx.fill < 56 do
    Bytes.set ctx.block ctx.fill '\000';
    ctx.fill <- ctx.fill + 1
  done;
  Bytes.set_int64_be ctx.block 56 bitlen;
  ctx.fill <- 64;
  compress ctx ctx.block 0;
  ctx.fill <- 0;
  let out = Bytes.create 32 in
  List.iteri
    (fun i h -> Bytes.set_int32_be out (i * 4) (Int32.of_int h))
    [ ctx.h0; ctx.h1; ctx.h2; ctx.h3; ctx.h4; ctx.h5; ctx.h6; ctx.h7 ];
  Bytes.to_string out

(* One-shot digests reuse a scratch context instead of allocating a fresh
   block + schedule per call. Single-domain only, like [hashed]. *)
let scratch = init ()

let digest msg =
  reset scratch;
  feed scratch msg;
  finalize scratch

let hex msg = Util.Hexdump.of_string (digest msg)
