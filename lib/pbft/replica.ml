open Types

type registry = {
  reg_verifiers : Crypto.Keychain.verifier array;
  reg_group_secret : string;
  reg_static_clients : (client_id * int * string) list;
}

(* State-transfer progress: which checkpoint we are pulling, from whom,
   and which pages are still outstanding. *)
type transfer_kind =
  | Demotion  (** a running replica fell behind the stable checkpoint (§2.4) *)
  | Rejoin  (** a restarted replica catching up from its disk checkpoint *)

type transfer = {
  tr_kind : transfer_kind;
  tr_attempt : int;  (** rejoin ring-rotation attempt (which peer we asked) *)
  tr_seq : seqno;
  tr_peer : replica_id;
  tr_digest : digest option;
      (** the quorum-certified checkpoint root; pages and metadata from
          the serving peer are verified against it *)
  mutable tr_leaves : digest array;
  mutable tr_wanted : int list;
  mutable tr_received : (int * string) list;
}

type t = {
  cfg : Config.t;
  costs : Costmodel.t;
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  cpu : Simnet.Cpu.t;
  id : replica_id;
  rng : Util.Rng.t;
  signer : Crypto.Keychain.signer;
  registry : registry;
  threshold : (Crypto.Threshold.public * Crypto.Threshold.share) option;
  service_spec : Service.t;
  service : Service.instance;
  mid_pages : int;  (** middleware partition size, pages *)
  pages : Statemgr.Pages.t;
  merkle : Statemgr.Merkle.t;
  membership : Membership.t;
  log : Log.t;
  (* Transient MAC session keys — lost on restart (§2.3). *)
  keys_i_chose : (int, Crypto.Mac.key) Hashtbl.t;
  keys_peers_chose : (int, Crypto.Mac.key) Hashtbl.t;
  keys_peers_prev : (int, Crypto.Mac.key) Hashtbl.t;
      (** previous-epoch key per sender, kept verifiable across a proactive
          refresh so in-flight authenticators survive the rollover *)
  bodies : (digest, Message.request) Hashtbl.t;
  pending : Message.request Queue.t;
  in_flight : (client_id * int, seqno) Hashtbl.t;  (** 0 until a pre-prepare assigns a sequence *)
  ro_replies : (client_id, int * string) Util.Lru.t;
      (** last read-only fast-path reply per client, resent on
          retransmission instead of re-executing the read. Bounded LRU
          (capacity [max_clients]) so churning clients cannot grow it
          without limit; entries also die with their session. *)
  waiting : (client_id * int, float) Hashtbl.t;  (** backup-side requests awaiting execution *)
  body_requests : (digest, unit) Hashtbl.t;
  entry_requests : (seqno, unit) Hashtbl.t;
  checkpoints : (seqno, Statemgr.Checkpoint.t) Hashtbl.t;
  pending_ckpts : (seqno, Statemgr.Checkpoint.t) Hashtbl.t;
      (** pipelined mode: snapshots taken at a checkpoint boundary during
          speculative execution, announced only when the boundary commits
          and discarded on rollback — a speculative state root must never
          enter the checkpoint vote *)
  ckpt_votes : (seqno, (replica_id, digest) Hashtbl.t) Hashtbl.t;
  vc_msgs : (view, (replica_id, Message.payload) Hashtbl.t) Hashtbl.t;
  mutable view : view;
  mutable seq_counter : seqno;
  mutable last_executed : seqno;
  mutable last_committed_exec : seqno;
  mutable undo : Statemgr.Checkpoint.t option;
  mutable stable_ckpt : seqno;
  mutable in_view_change : bool;
  mutable vc_target : view;
  mutable watchdog : Simnet.Engine.timer option;
  mutable rebroadcast : Simnet.Engine.timer option;
  mutable status_timer : Simnet.Engine.timer option;
  mutable refresh_timer : Simnet.Engine.timer option;
  mutable key_epoch : int;  (** proactive-refresh epoch for keys I chose *)
  mutable transfer : transfer option;
  mutable disk : Statemgr.Checkpoint.t option;
      (** simulated persistent storage: the newest stable checkpoint,
          written at crash time and reloaded by [restart] so rejoin only
          fetches pages that diverged after the crash *)
  mutable last_new_view : Message.payload option;
      (** the New_view this replica emitted as primary of the current
          view, replayed to peers whose status gossip shows an older view
          (a rejoined replica cannot otherwise enter the current view) *)
  peer_views : int array;
      (** newest installed view each peer has advertised in status
          gossip. A replica adopts view [v] once f+1 distinct peers
          advertise [>= v]: at least one of them is honest, and jumping
          forward only affects liveness (safety lives in the quorum
          certificates). Without this a rejoined replica restarts at the
          view in its disk checkpoint era and has to climb to the
          cluster's view one watchdog timeout at a time, dragging the
          group through spurious view changes at every rejoin. *)
  mutable pp_scheduled : bool;
  mutable recovering : bool;
  mutable recovery_done : float option;
  mutable alive : bool;
  mutable n_exec : int;
  mutable n_vc : int;
  mutable n_transfers : int;
  mutable n_auth_fail : int;
  mutable n_nondet_reject : int;
  mutable n_ckpt : int;  (** checkpoint snapshots taken (incl. genesis & post-transfer) *)
  mutable n_undo : int;  (** undo snapshots taken for tentative execution *)
  mutable vc_attempts : int;  (** consecutive view changes without execution progress *)
  mutable n_demotions : int;  (** checkpoint-lag demotions into state transfer (§2.4) *)
  mutable n_demotion_transfers : int;  (** transfers started because we fell behind while running *)
  mutable n_rejoin_transfers : int;  (** transfers started by the crash/restart rejoin path *)
  mutable n_pages_fetched : int;  (** pages actually pulled over the wire by finished transfers *)
  mutable n_pages_full : int;  (** pages a full (non-diff) transfer would have pulled *)
  mutable n_spec_exec : int;  (** batches executed before their commit certificate landed *)
  mutable n_rollbacks : int;  (** rollbacks that actually undid speculative executions *)
  mutable record_journal : bool;
  mutable exec_journal : (seqno * digest) list;  (** newest first; committed executions only *)
}

let id t = t.id
let view t = t.view
let is_primary t = primary_of_view ~n:t.cfg.n t.view = t.id
let last_executed t = t.last_executed
let stable_checkpoint t = t.stable_ckpt
let executed_requests t = t.n_exec
let view_changes t = t.n_vc
let state_transfers t = t.n_transfers
let auth_failures t = t.n_auth_fail
let nondet_rejects t = t.n_nondet_reject
let checkpoints_taken t = t.n_ckpt
let undo_snapshots t = t.n_undo
let demotions t = t.n_demotions
let ro_reply_evictions t = Util.Lru.evictions t.ro_replies
let speculative_execs t = t.n_spec_exec
let rollbacks t = t.n_rollbacks
let view_change_attempts t = t.vc_attempts
let demotion_transfers t = t.n_demotion_transfers
let rejoin_transfers t = t.n_rejoin_transfers
let transfer_pages_fetched t = t.n_pages_fetched
let transfer_pages_full t = t.n_pages_full
let key_epoch t = t.key_epoch
let signer t = t.signer
let session_key_for t peer = Hashtbl.find_opt t.keys_i_chose peer
let set_record_journal t v = t.record_journal <- v
let exec_journal t = List.rev t.exec_journal

let journal_commit t seq digest =
  if t.record_journal then t.exec_journal <- (seq, digest) :: t.exec_journal
let cpu t = t.cpu
let pages t = t.pages
let membership t = t.membership
let is_recovering t = t.recovering
let recovery_completed_at t = t.recovery_done
let now t = Simnet.Engine.now t.engine

(* ------------------------------------------------------------------ *)
(* Middleware partition: page 0 holds the serialized membership table.  *)

let sync_membership_to_pages t =
  let image = Membership.serialize t.membership in
  let cap = t.mid_pages * Statemgr.Pages.page_size t.pages in
  if String.length image + 8 > cap then failwith "middleware partition full";
  Statemgr.Pages.notify_modify t.pages ~pos:0 ~len:(8 + String.length image);
  Statemgr.Pages.write t.pages ~pos:0 (Printf.sprintf "%07d " (String.length image));
  Statemgr.Pages.write t.pages ~pos:8 image

let load_membership_from_pages t =
  let hdr = Statemgr.Pages.read t.pages ~pos:0 ~len:8 in
  match int_of_string_opt (String.trim hdr) with
  | Some len when len > 0 ->
    Membership.load t.membership (Statemgr.Pages.read t.pages ~pos:8 ~len)
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Cost accounting helpers.                                             *)

let send_cost t bytes = Costmodel.send t.costs bytes
let recv_cost t bytes = Costmodel.recv t.costs bytes
let charge t cost k = Simnet.Cpu.execute t.cpu ~cost k

(* Pipelined mode: prepared-but-uncommitted batches execute speculatively
   and consecutive batches overlap across the agreement phases. *)
let pipelined t = t.cfg.pipeline_depth > 1

(* [n] independent pieces of [unit_cost] work. On one core this must be
   the exact historical float expression (a single multiply), so pinned
   trace digests are unchanged; on several cores the pieces are dispatched
   as overlapping work items. *)
let charge_fanout t ~n ~unit_cost k =
  if Simnet.Cpu.cores t.cpu > 1 && n > 1 then
    Simnet.Cpu.execute_split t.cpu ~costs:(List.init n (fun _ -> unit_cost)) k
  else charge t (float_of_int n *. unit_cost) k

(* ------------------------------------------------------------------ *)
(* Authentication.                                                      *)

let replica_addrs t = List.init t.cfg.n (fun i -> i)

let make_auth_multicast t payload_bytes =
  if t.cfg.use_macs then begin
    let keys =
      List.filter_map
        (fun peer ->
          if peer = t.id then None
          else
            Option.map (fun k -> (peer, k)) (Hashtbl.find_opt t.keys_i_chose peer))
        (replica_addrs t)
    in
    Message.Authenticated (Crypto.Authenticator.compute ~keys payload_bytes)
  end
  else Message.Signed (Crypto.Keychain.sign t.signer payload_bytes)

let make_auth_to t payload_bytes dst =
  if t.cfg.use_macs then begin
    match Hashtbl.find_opt t.keys_i_chose dst with
    | Some k ->
      Message.Authenticated (Crypto.Authenticator.compute ~keys:[ (dst, k) ] payload_bytes)
    | None -> Message.Signed (Crypto.Keychain.sign t.signer payload_bytes)
  end
  else Message.Signed (Crypto.Keychain.sign t.signer payload_bytes)

let verifier_for_addr t addr =
  if addr < t.cfg.n then Some t.registry.reg_verifiers.(addr)
  else begin
    match Membership.lookup_addr t.membership addr with
    | None -> None
    | Some client -> begin
      match Membership.lookup t.membership client with
      | None -> None
      | Some e -> Crypto.Keychain.verifier_of_string e.me_pubkey
    end
  end

(* Verify an incoming message's authentication; returns the CPU cost to
   charge along with the verdict. Missing MAC session keys are the §2.3
   recovery stall: the message cannot be validated at all. *)
let check_auth t ~src (msg : Message.t) =
  let pb = Message.payload_bytes msg.payload in
  match msg.auth with
  | Message.No_auth -> (0.0, false)
  | Message.Signed s -> begin
    (* Pre-join messages are self-certified by an embedded public key. *)
    let v =
      match msg.payload with
      | Message.Join_request { j_pubkey; _ } -> Crypto.Keychain.verifier_of_string j_pubkey
      | Message.Join_response { jr_pubkey; _ } -> Crypto.Keychain.verifier_of_string jr_pubkey
      | _ -> verifier_for_addr t src
    in
    match v with
    | None -> (t.costs.sig_verify, false)
    | Some v -> (t.costs.sig_verify, Crypto.Keychain.verify v pb ~signature:s)
  end
  | Message.Authenticated a -> begin
    let check key = Crypto.Authenticator.check ~key ~replica:t.id pb a in
    match Hashtbl.find_opt t.keys_peers_chose src with
    | Some key when check key -> (t.costs.mac_verify, true)
    | Some _ -> begin
      (* Proactive-refresh rollover window: messages in flight across the
         epoch boundary still carry the previous key's tag. *)
      match Hashtbl.find_opt t.keys_peers_prev src with
      | Some key -> (t.costs.mac_verify, check key)
      | None -> (t.costs.mac_verify, false)
    end
    | None -> (0.0, false)
  end

(* ------------------------------------------------------------------ *)
(* Sending.                                                             *)

(* Encode-once: the wire bytes are built by the caller (serializing the
   payload a single time even for a multicast) and only the send cost and
   trace metadata are handled here. *)
let send_wire t ~dst ~already_charged ~label ~detail wire =
  let go () = Simnet.Net.send t.net ~label ~detail ~src:t.id ~dst wire in
  if already_charged then go () else charge t (send_cost t (String.length wire)) go

let send_to t ?(already_charged = false) ~dst payload =
  let pb = Message.payload_bytes payload in
  let auth = make_auth_to t pb dst in
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  let label = Message.label payload in
  let detail () = Message.describe payload in
  let auth_cost = if already_charged then 0.0 else Costmodel.auth_gen t.costs t.cfg in
  if already_charged then send_wire t ~dst ~already_charged:true ~label ~detail wire
  else charge t auth_cost (fun () -> send_wire t ~dst ~already_charged:false ~label ~detail wire)

let multicast_replicas t ?(already_charged = false) payload =
  let pb = Message.payload_bytes payload in
  let auth = make_auth_multicast t pb in
  (* One authenticator covers every destination (it carries all n−1 MAC
     tags), so the whole wire string is shared across peers; receivers'
     decode collapses to a cache hit on the same physical string. *)
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  let label = Message.label payload in
  let detail () = Message.describe payload in
  let auth_cost = if already_charged then 0.0 else Costmodel.auth_gen t.costs t.cfg in
  let go () =
    List.iter
      (fun peer ->
        if peer <> t.id then send_wire t ~dst:peer ~already_charged ~label ~detail wire)
      (replica_addrs t)
  in
  if already_charged then go ()
  else if Simnet.Cpu.cores t.cpu > 1 then
    (* The n−1 MAC tags are independent work; fan them across cores. *)
    Simnet.Cpu.execute_split t.cpu ~costs:(Costmodel.auth_gen_costs t.costs t.cfg) go
  else charge t auth_cost go

(* ------------------------------------------------------------------ *)
(* Session keys.                                                        *)

let install_session_key t ~addr key =
  (match Hashtbl.find_opt t.keys_peers_chose addr with
  | Some old when not (String.equal old key) ->
    (* Epoch rollover: keep the outgoing key verifiable until traffic
       MACed under it drains. *)
    Hashtbl.replace t.keys_peers_prev addr old
  | Some _ | None -> ());
  Hashtbl.replace t.keys_peers_chose addr key

let send_session_key t peer =
  let key =
    match Hashtbl.find_opt t.keys_i_chose peer with
    | Some k -> k
    | None ->
      (* Epoch 0 keys are drawn from the deterministic RNG stream exactly
         as they always were; refreshed epochs are derived from signer
         material instead, so enabling refresh consumes no randomness. *)
      let k =
        if t.key_epoch > 0 then
          Crypto.Keychain.derive_session_key t.signer ~peer ~epoch:t.key_epoch
        else Crypto.Mac.fresh_key t.rng
      in
      Hashtbl.replace t.keys_i_chose peer k;
      k
  in
  let payload = Message.Session_key { sk_sender = t.id; sk_target = peer; sk_key_box = key } in
  (* Key establishment always uses signatures (the MAC keys are what
     is being distributed). *)
  let pb = Message.payload_bytes payload in
  let auth = Message.Signed (Crypto.Keychain.sign t.signer pb) in
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  let label = Message.label payload in
  let detail () = Message.describe payload in
  charge t (t.costs.sign +. send_cost t (String.length pb + 80)) (fun () ->
      send_wire t ~dst:peer ~already_charged:true ~label ~detail wire)

let broadcast_session_keys t =
  List.iter (fun peer -> if peer <> t.id then send_session_key t peer) (replica_addrs t)

(* Proactive key refresh (on the virtual clock): advance the epoch,
   re-derive every outbound session key, and rebroadcast. Bounds the
   useful lifetime of a stolen authenticator key without perturbing the
   RNG stream (epoch keys are derived, not drawn). *)
let refresh_session_keys t =
  t.key_epoch <- t.key_epoch + 1;
  List.iter
    (fun peer ->
      if peer <> t.id then
        Hashtbl.replace t.keys_i_chose peer
          (Crypto.Keychain.derive_session_key t.signer ~peer ~epoch:t.key_epoch))
    (replica_addrs t);
  broadcast_session_keys t

(* §2.3 remedy (gated by [rejoin_key_refresh]): a restarted replica lost
   every key its peers chose for it, so it multicasts a signed
   Key_request; each peer answers with its Session_key immediately
   instead of recovery stalling until the next blind rebroadcast. *)
let request_session_keys t =
  let payload = Message.Key_request { kq_replica = t.id } in
  let pb = Message.payload_bytes payload in
  let auth = Message.Signed (Crypto.Keychain.sign t.signer pb) in
  let wire = Message.encode_wire ~payload_bytes:pb auth in
  let label = Message.label payload in
  let detail () = Message.describe payload in
  charge t
    (t.costs.sign +. send_cost t ((String.length pb + 80) * Int.max 1 (t.cfg.n - 1)))
    (fun () ->
      List.iter
        (fun peer ->
          if peer <> t.id then send_wire t ~dst:peer ~already_charged:true ~label ~detail wire)
        (replica_addrs t))

(* ------------------------------------------------------------------ *)
(* Watchdog (view-change timer).                                        *)

(* PBFT's exponential backoff: the effective timeout doubles for every
   consecutive view change that produced no execution progress and
   resets once a request commits. Without it, back-to-back faulty
   primaries livelock the group — each view change fires on the same
   fixed timer before the previous one can complete. *)
let vc_timeout t = t.cfg.view_change_timeout *. float_of_int (1 lsl Int.min t.vc_attempts 16)

let rec arm_watchdog t =
  match t.watchdog with
  | Some _ -> ()
  | None ->
    if Hashtbl.length t.waiting > 0 && not t.in_view_change then begin
      let timer =
        Simnet.Engine.timer t.engine ~delay:(vc_timeout t) (fun () ->
            t.watchdog <- None;
            if t.alive then check_watchdog t)
      in
      t.watchdog <- Some timer
    end

and check_watchdog t =
  (* Order-free: Float.min is commutative and the timestamps carry no NaN. *)
  let[@detlint.allow hashtbl_order] oldest =
    Hashtbl.fold (fun _ ts acc -> Float.min ts acc) t.waiting infinity
  in
  if t.recovering then
    (* A replaying replica cannot tell starvation from its own lag: its
       waiting ledger fills with requests the group already served while
       it was down. Keep the timer ticking but leave escalation to the
       2f+1 healthy replicas; we adopt whatever view they install. *)
    arm_watchdog t
  else if oldest +. vc_timeout t <= now t +. 1e-9 && not t.in_view_change then
    start_view_change t (t.view + 1)
  else arm_watchdog t

(* ------------------------------------------------------------------ *)
(* Execution.                                                           *)

and client_addr_of t client =
  match Membership.lookup t.membership client with
  | Some e -> Some e.me_addr
  | None -> None

and resolve_item t (item : Message.batch_item) =
  match item with
  | Message.Full rq -> Some rq
  | Message.Digest_of d -> Hashtbl.find_opt t.bodies d.bd_digest

(* Execute one request within a batch. Returns the reply payload and the
   virtual cost of the execution itself. *)
and execute_request t rq ~nondet ~tentative ~speculative =
  let ts = Option.value ~default:(now t) (Nondet.timestamp nondet) in
  let result, cost =
    if String.length rq.Message.rq_op > 0 && rq.Message.rq_op.[0] = '\x01' then
      (execute_system_op t rq ~ts, t.costs.exec_null)
    else
      t.service.execute ~op:rq.rq_op ~client:rq.rq_client ~timestamp:ts ~nondet
        ~readonly:rq.rq_readonly
  in
  Membership.touch t.membership rq.rq_client ts;
  Log.cache_reply t.log rq.rq_client
    { cr_id = rq.rq_id; cr_result = result; cr_view = t.view; cr_tentative = tentative;
      cr_timestamp = ts; cr_speculative = speculative };
  Hashtbl.remove t.in_flight (rq.rq_client, rq.rq_id);
  (* A speculative execution has not satisfied the client — its reply is
     withheld until the commit certificate lands — so the request stays on
     the view-change watchdog's ledger until then (advance_committed
     clears it). Otherwise a primary that starves commits while feeding
     prepares would never be voted out. *)
  if not speculative then Hashtbl.remove t.waiting (rq.rq_client, rq.rq_id);
  (result, cost, ts)

(* System operations ordered through the normal request path (§3.1):
   "\x01J..." = join, "\x01L..." = leave. *)
and execute_system_op t rq ~ts =
  let body = String.sub rq.rq_op 1 (String.length rq.rq_op - 1) in
  match execute_system_op_body t ~ts body with
  | result -> result
  | exception Util.Codec.R.Truncated -> "error: bad system op"

and execute_system_op_body t ~ts body =
  begin
    let r = Util.Codec.R.of_string body in
    let kind = Util.Codec.R.u8 r in
    if kind = Char.code 'J' then begin
      let addr = Util.Codec.R.varint r in
      let pubkey = Util.Codec.R.lstring r in
      let idbuf = Util.Codec.R.lstring r in
      match t.service.authorize_join ~idbuf with
      | None ->
        send_join_reply t ~addr ~client:0 ~ok:false;
        "join-denied"
      | Some identity -> begin
        match
          (Membership.join t.membership ~addr ~pubkey ~identity ~now:ts
             ~stale_threshold:t.cfg.session_stale_threshold)
          [@trustlint.allow
            "the join executes only as an agreed, ordered system operation: \
             check_auth verified the Join_request's session-key MAC at intake \
             and authorize_join vouched for the identification buffer"]
        with
        | Membership.Table_full ->
          send_join_reply t ~addr ~client:0 ~ok:false;
          "join-full"
        | Membership.Joined { client; terminated } ->
          List.iter
            (fun c ->
              Log.drop_client t.log c;
              Util.Lru.remove t.ro_replies c;
              t.service.on_session_end c)
            terminated;
          sync_membership_to_pages t;
          send_join_reply t ~addr ~client ~ok:true;
          Printf.sprintf "joined:%d" client
      end
    end
    else if kind = Char.code 'L' then begin
      let client = Util.Codec.R.varint r in
      let ok =
        (Membership.leave t.membership client)
        [@trustlint.allow
          "the leave executes only as an agreed, ordered system operation: \
           check_auth verified the departing client's own MAC at intake, so \
           only the session owner can order its removal"]
      in
      if ok then begin
        (Log.drop_client t.log client)
        [@trustlint.allow
          "part of the same agreed leave: dropping the departing client's \
           reply-cache entry is the ordered session teardown"];
        Util.Lru.remove t.ro_replies client;
        t.service.on_session_end client;
        sync_membership_to_pages t
      end;
      if ok then "left" else "error: unknown client"
    end
    else "error: unknown system op"
  end

and send_join_reply t ~addr ~client ~ok =
  send_to t ~dst:addr (Message.Join_reply { jl_replica = t.id; jl_client = client; jl_ok = ok })

and send_reply t rq ~result ~tentative ~already_charged =
  match client_addr_of t rq.Message.rq_client with
  | None -> ()
  | Some addr ->
    let r_partial =
      match t.threshold with
      | None -> None
      | Some (pk, share) ->
        Some
          (Certificate.partial pk share ~client:rq.Message.rq_client ~rq_id:rq.rq_id ~result)
    in
    send_to t ~already_charged ~dst:addr
      (Message.Reply
         {
           r_view = t.view;
           r_client = rq.rq_client;
           r_id = rq.rq_id;
           r_replica = t.id;
           r_result = result;
           r_tentative = tentative;
           r_partial;
         })

and snapshot_state t =
  (* In pipelined or multi-core mode the Merkle leaf rehash is charged as
     per-page work occupying the cores; the serial protocol keeps its
     historical zero-CPU checkpoints so pinned trace digests survive. *)
  let dirty = Statemgr.Pages.dirty t.pages in
  if (pipelined t || Simnet.Cpu.cores t.cpu > 1) && dirty <> [] then
    Simnet.Cpu.execute_split t.cpu
      ~costs:(List.map (fun _ -> t.costs.merkle_leaf) dirty)
      (fun () -> ());
  Statemgr.Merkle.update t.merkle t.pages dirty;
  Statemgr.Pages.clear_dirty t.pages;
  Statemgr.Checkpoint.take ~seqno:t.last_executed t.pages t.merkle

and announce_checkpoint t ~seq ck =
  t.n_ckpt <- t.n_ckpt + 1;
  Hashtbl.replace t.checkpoints seq ck;
  let root = Statemgr.Checkpoint.root ck in
  record_ckpt_vote t ~seq ~replica:t.id ~digest:root;
  multicast_replicas t (Message.Checkpoint_msg { ck_seq = seq; ck_digest = root; ck_replica = t.id });
  check_ckpt_stable t seq

and take_checkpoint t = announce_checkpoint t ~seq:t.last_executed (snapshot_state t)

(* Pipelined mode hits checkpoint boundaries while the boundary sequence
   is still speculative: snapshot now (COW, near-free), announce only when
   the commit certificate lands — a speculative root must never be voted. *)
and take_pending_checkpoint t =
  Hashtbl.replace t.pending_ckpts t.last_executed (snapshot_state t)

and record_ckpt_vote t ~seq ~replica ~digest =
  let votes =
    match Hashtbl.find_opt t.ckpt_votes seq with
    | Some v -> v
    | None ->
      let v = Hashtbl.create 8 in
      Hashtbl.add t.ckpt_votes seq v;
      v
  in
  Hashtbl.replace votes replica digest

and check_ckpt_stable t seq =
  match Hashtbl.find_opt t.ckpt_votes seq with
  | None -> ()
  | Some votes ->
    (* Majority digest among votes. Counting is order-free; the winner
       pick is not (count ties), so it traverses in digest order. *)
    let counts = Hashtbl.create 4 in
    (Hashtbl.iter
       (fun _ d ->
         Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
       votes
     [@detlint.allow hashtbl_order]);
    let best =
      Util.Sorted_tbl.fold (fun d c acc ->
          match acc with Some (_, c') when c' >= c -> acc | _ -> Some (d, c)) counts None
    in
    (match best with
    | Some (digest, count) when count >= quorum_2f1 ~f:t.cfg.f ->
      if seq > t.stable_ckpt then begin
        t.stable_ckpt <- seq;
        Log.set_low_watermark t.log seq;
        (* Drop older snapshots and vote sets. *)
        List.iter
          (fun s -> if s < seq then Hashtbl.remove t.checkpoints s)
          (Util.Sorted_tbl.keys t.checkpoints);
        List.iter
          (fun s -> if s < seq then Hashtbl.remove t.ckpt_votes s)
          (Util.Sorted_tbl.keys t.ckpt_votes);
        (* The high-water mark just moved: a primary that stalled its
           pipeline against it can propose again. *)
        if is_primary t then try_emit_pre_prepare t
      end;
      (* Recovery ends when the group certifies state we executed
         ourselves: our checkpoint digest sits inside a 2f+1 quorum at
         or beyond the rejoin point. Until then the replica stays in
         recovery mode (§2.5 lenient replay validation, body fetching
         for the replay region). The flag is volatile and set only by
         [restart], so healthy replicas never enter here. *)
      if
        t.recovering && t.last_executed >= seq
        && match Hashtbl.find_opt votes t.id with
           | Some d -> String.equal d digest
           | None -> false
      then t.recovering <- false;
      (* The quorum is a commit proof for the whole prefix. A replica
         that executed through [seq] tentatively while its committed
         prefix is stuck below — the commit certificates for a gap the
         log has since truncated can never arrive — would otherwise
         speculate unboundedly far ahead of a frozen [last_committed_exec]
         and lose the entire span to the next view change's rollback. If
         our state at the boundary matches the certified digest, the
         tentative prefix IS the committed history: finalize it. If it
         does not match, we diverged — discard the speculation and let
         the demotion branch below transfer the certified state. *)
      if t.last_committed_exec < seq && t.last_executed >= seq then begin
        let mine =
          match Hashtbl.find_opt t.pending_ckpts seq with
          | Some ck -> Some ck
          | None -> Hashtbl.find_opt t.checkpoints seq
        in
        match mine with
        | Some ck when String.equal (Statemgr.Checkpoint.root ck) digest ->
          let lo = t.last_committed_exec in
          t.last_committed_exec <- seq;
          List.iter
            (fun (e : Log.entry) ->
              if e.seq > lo && e.seq <= seq && (e.executed || e.tentatively_executed) then begin
                if not e.executed then journal_commit t e.seq e.batch_digest;
                e.executed <- true;
                (match e.batch with
                | Some items ->
                  List.iter
                    (fun it ->
                      let ((client, id) as key) = Message.batch_item_client_id it in
                      Hashtbl.remove t.waiting key;
                      match Log.cached_reply t.log client with
                      | Some cr when cr.cr_id = id && cr.cr_tentative && not cr.cr_speculative ->
                        Log.cache_reply t.log client { cr with cr_tentative = false }
                      | Some _ | None -> ())
                    items
                | None -> ());
                flush_speculative t e
              end)
            (Log.entries_between t.log ~lo ~hi:seq);
          (match Hashtbl.find_opt t.pending_ckpts seq with
          | Some pck ->
            Hashtbl.remove t.pending_ckpts seq;
            announce_checkpoint t ~seq pck
          | None -> ());
          advance_committed t;
          (* The undo snapshot predates the finalized prefix; a later
             rollback restoring it would drag committed state backwards.
             The certified checkpoint is the new rollback floor for
             whatever speculation still runs ahead of it. *)
          if t.last_committed_exec < t.last_executed then t.undo <- Some ck
        | Some _ ->
          rollback_tentative t
        | None -> ()
      end;
      (* A replica that is behind this stable checkpoint — because it
         lagged or is stuck on a missing big-request body (§2.4) — now
         recovers by state transfer. *)
      if t.last_executed < seq && t.transfer = None then begin
        let holder =
          Util.Sorted_tbl.fold
            (fun r d acc -> if String.equal d digest && r <> t.id then Some r else acc)
            votes None
        in
        match holder with
        | Some peer ->
          t.n_demotions <- t.n_demotions + 1;
          start_state_transfer t ~kind:Demotion ~seq ~peer ~digest:(Some digest) ()
        | None -> ()
      end
    | Some _ | None -> ())

and start_state_transfer t ~kind ?(attempt = 0) ~seq ~peer ~digest () =
  t.transfer <-
    Some
      { tr_kind = kind; tr_attempt = attempt; tr_seq = seq; tr_peer = peer; tr_digest = digest;
        tr_leaves = [||]; tr_wanted = []; tr_received = [] };
  t.n_transfers <- t.n_transfers + 1;
  (match kind with
  | Demotion -> t.n_demotion_transfers <- t.n_demotion_transfers + 1
  | Rejoin -> t.n_rejoin_transfers <- t.n_rejoin_transfers + 1);
  (* fm_seq = 0 asks for the peer's latest stable checkpoint (the rejoin
     path, which does not know how far the group has advanced). *)
  send_to t ~dst:peer (Message.Fetch_meta { fm_seq = Int.max 0 seq; fm_replica = t.id });
  arm_transfer_retry t

(* Rejoin after restart: pull the latest stable checkpoint from peers in
   ring order, starting just after ourselves and rotating on a peer that
   turns out to be no further along than our disk image. *)
and start_rejoin_transfer t ~attempt =
  if t.alive && t.transfer = None then begin
    let peer = (t.id + 1 + attempt) mod t.cfg.n in
    if peer <> t.id then
      start_state_transfer t ~kind:Rejoin ~attempt ~seq:(-1) ~peer ~digest:None ()
  end

(* Fetches are plain datagrams; when they or their replies are lost — or
   cannot be authenticated yet, the §2.3 stall — the transfer must be
   re-driven periodically. *)
and arm_transfer_retry t =
  let _ =
    Simnet.Engine.timer t.engine ~delay:0.5 (fun () ->
        if t.alive then begin
          match t.transfer with
          | None -> ()
          | Some tr ->
            (if tr.tr_wanted = [] then
               send_to t ~dst:tr.tr_peer
                 (Message.Fetch_meta { fm_seq = Int.max 0 tr.tr_seq; fm_replica = t.id })
             else begin
               let have = List.map fst tr.tr_received in
               let missing = List.filter (fun w -> not (List.mem w have)) tr.tr_wanted in
               List.iter
                 (fun page ->
                   send_to t ~dst:tr.tr_peer
                     (Message.Fetch_pages { fp_seq = tr.tr_seq; fp_pages = [ page ]; fp_replica = t.id }))
                 missing
             end);
            arm_transfer_retry t
        end)
  in
  ()

(* Finalize committed prefixes of the tentative executions: entries at or
   below last_executed that have since committed become stable, and once
   nothing speculative remains the undo snapshot is dropped. *)
and advance_committed t =
  let progress = ref true in
  while !progress do
    progress := false;
    let next = t.last_committed_exec + 1 in
    if next <= t.last_executed then begin
      match Log.find t.log next with
      | Some e when e.committed && (e.executed || e.tentatively_executed) ->
        if not e.executed then journal_commit t next e.batch_digest;
        e.executed <- true;
        t.last_committed_exec <- next;
        (match e.batch with
        | Some items ->
          List.iter
            (fun it ->
              let ((client, id) as key) = Message.batch_item_client_id it in
              Hashtbl.remove t.waiting key;
              (* Serial tentative execution already sent the reply marked
                 tentative and cached it that way; now that the commit
                 certificate landed the cached copy is stable, so
                 retransmissions must be answered with a stable reply —
                 otherwise a client facing f mute replicas can collect
                 2f tentative + 1 stale-stable replies forever and reach
                 neither quorum. (The pipelined path is upgraded by
                 [flush_speculative] below.) *)
              match Log.cached_reply t.log client with
              | Some cr when cr.cr_id = id && cr.cr_tentative && not cr.cr_speculative ->
                Log.cache_reply t.log client { cr with cr_tentative = false }
              | Some _ | None -> ())
            items
        | None -> ());
        flush_speculative t e;
        (match Hashtbl.find_opt t.pending_ckpts next with
        | Some ck ->
          Hashtbl.remove t.pending_ckpts next;
          announce_checkpoint t ~seq:next ck
        | None -> ());
        progress := true
      | Some _ | None -> ()
    end
  done;
  if t.last_committed_exec >= t.last_executed then t.undo <- None

(* The commit certificate landed for a speculatively executed batch:
   release its buffered replies (now stable, tentative = false) and flip
   the reply-cache entries so client retransmissions can be answered. *)
and flush_speculative t (e : Log.entry) =
  match e.pending_replies with
  | [] -> ()
  | pending ->
    e.pending_replies <- [];
    let total_cost = ref 0.0 in
    let partial_cost = match t.threshold with Some _ -> t.costs.sign | None -> 0.0 in
    List.iter
      (fun ((rq : Message.request), result, ts) ->
        Log.cache_reply t.log rq.rq_client
          { cr_id = rq.rq_id; cr_result = result; cr_view = t.view; cr_tentative = false;
            cr_timestamp = ts; cr_speculative = false };
        total_cost :=
          !total_cost +. partial_cost
          +. Costmodel.auth_gen t.costs t.cfg
          +. send_cost t (String.length result + 64))
      pending;
    charge t !total_cost (fun () ->
        List.iter
          (fun (rq, result, _) ->
            send_reply t rq ~result ~tentative:false ~already_charged:true)
          pending)

(* Try to execute everything executable in sequence order. *)
and try_execute t =
  let progress = ref true in
  while !progress do
    progress := false;
    let next = t.last_executed + 1 in
    match Log.find t.log next with
    | None -> ()
    | Some entry ->
      let can_stable = entry.committed in
      let can_tentative =
        t.cfg.tentative_execution && entry.prepared && not t.in_view_change
      in
      if (can_stable || can_tentative) && not entry.executed then begin
        match entry.batch with
        | None -> ()
        | Some items ->
          (* All big-request bodies must be present (§2.4). *)
          let resolved = List.map (fun it -> (it, resolve_item t it)) items in
          let missing =
            List.filter_map
              (fun (it, r) -> if r = None then Some (Message.batch_item_digest it) else None)
              resolved
          in
          if missing <> [] then begin
            entry.missing_bodies <- missing;
            (* §2.4 remedy, off by default: ask peers for the bodies
               instead of stalling until the next checkpoint. A
               recovering replica fetches regardless of the gate — its
               bodies table died with the old incarnation and the
               clients that multicast those bodies were answered long
               ago and will never retransmit, so for the replay region
               between the rejoin checkpoint and the live head the
               stall is not a lag, it is a permanent wedge. *)
            if t.cfg.fetch_missing_bodies || t.recovering then
              List.iter
                (fun d ->
                  if not (Hashtbl.mem t.body_requests d) then begin
                    Hashtbl.replace t.body_requests d ();
                    List.iter
                      (fun peer ->
                        if peer <> t.id then
                          send_to t ~dst:peer
                            (Message.Fetch_body { fb_digest = d; fb_replica = t.id }))
                      (replica_addrs t)
                  end)
                missing
          end
          else begin
            entry.missing_bodies <- [];
            let tentative = (not can_stable) && can_tentative in
            let speculative = tentative && pipelined t in
            begin
              if tentative && t.undo = None then begin
                (* Snapshot for rollback before speculative execution. *)
                Statemgr.Merkle.update t.merkle t.pages (Statemgr.Pages.dirty t.pages);
                t.n_undo <- t.n_undo + 1;
                t.undo <- Some (Statemgr.Checkpoint.take ~seqno:t.last_committed_exec t.pages t.merkle)
              end;
              let total_cost = ref t.costs.log_bookkeeping in
              if speculative then total_cost := !total_cost +. t.costs.spec_overhead;
              let replies = ref [] in
              List.iter
                (fun (_, r) ->
                  match r with
                  | None -> ()
                  | Some rq ->
                    let result, cost, ts =
                      execute_request t rq ~nondet:entry.nondet ~tentative ~speculative
                    in
                    total_cost := !total_cost +. cost;
                    if rq.Message.rq_client > 0 then replies := (rq, result, ts) :: !replies)
                resolved;
              if speculative then begin
                (* Replies are withheld until the commit certificate lands
                   (flush_speculative); only the execution is charged now. *)
                entry.pending_replies <- List.rev !replies;
                charge t !total_cost (fun () -> ())
              end
              else begin
                (* Reply I/O and authentication, charged as one block. *)
                let partial_cost = match t.threshold with Some _ -> t.costs.sign | None -> 0.0 in
                List.iter
                  (fun (_, result, _) ->
                    total_cost :=
                      !total_cost +. partial_cost
                      +. Costmodel.auth_gen t.costs t.cfg
                      +. send_cost t (String.length result + 64))
                  !replies;
                let replies_now = List.rev !replies in
                charge t !total_cost (fun () ->
                    List.iter
                      (fun (rq, result, _) ->
                        send_reply t rq ~result ~tentative ~already_charged:true)
                      replies_now)
              end;
              if tentative then begin
                entry.tentatively_executed <- true;
                t.n_spec_exec <- t.n_spec_exec + 1
              end
              else begin
                entry.executed <- true;
                journal_commit t next entry.batch_digest;
                if t.last_committed_exec = next - 1 then t.last_committed_exec <- next
              end;
              t.last_executed <- next;
              t.n_exec <- t.n_exec + List.length items;
              t.vc_attempts <- 0;
              if t.recovering && t.recovery_done = None then t.recovery_done <- Some (now t);
              if t.last_executed mod t.cfg.checkpoint_interval = 0 then begin
                (* A boundary whose state still contains uncommitted
                   speculation must not be voted; snapshot and defer. *)
                if pipelined t && t.last_committed_exec < t.last_executed then
                  take_pending_checkpoint t
                else take_checkpoint t
              end;
              progress := true
            end
          end
      end
  done;
  advance_committed t;
  if Hashtbl.length t.waiting = 0 then begin
    (match t.watchdog with
    | Some timer ->
      Simnet.Engine.cancel timer;
      t.watchdog <- None
    | None -> ());
    (* A view change we started alone (no quorum joined) is abandoned once
       everything we were waiting for has executed in the current view. *)
    if t.in_view_change && primary_of_view ~n:t.cfg.n t.vc_target <> t.id then begin
      t.in_view_change <- false;
      t.vc_target <- t.view
    end
  end;
  if is_primary t then try_emit_pre_prepare t

(* ------------------------------------------------------------------ *)
(* Primary: ordering.                                                   *)

and try_emit_pre_prepare t =
  if (not t.in_view_change) && is_primary t then begin
    if t.cfg.batching && t.cfg.batch_delay > 0.0 then begin
      (* Linger briefly once the window frees so straggling requests make
         this batch instead of riding a singleton agreement round. *)
      if
        (not t.pp_scheduled)
        && t.seq_counter - t.last_executed < t.cfg.congestion_window * t.cfg.pipeline_depth
        && not (Queue.is_empty t.pending)
      then begin
        t.pp_scheduled <- true;
        Simnet.Engine.schedule t.engine ~delay:t.cfg.batch_delay (fun () ->
            t.pp_scheduled <- false;
            if t.alive then emit_pre_prepares t)
      end
    end
    else emit_pre_prepares t
  end

and emit_pre_prepares t =
  if (not t.in_view_change) && is_primary t then begin
    let continue = ref true in
    while !continue do
      continue := false;
      (* The pipeline widens the agreement window: with depth k the
         primary keeps k congestion windows of batches in flight across
         the three phases instead of serializing on execution. *)
      let outstanding = t.seq_counter - t.last_executed in
      if
        outstanding < t.cfg.congestion_window * t.cfg.pipeline_depth
        (* Never propose past the high-water mark: backups drop such
           pre-prepares outright (§2.4 log window), so a deep pipeline
           whose checkpoint votes are still in flight must stall here
           until the boundary stabilizes, not spray doomed proposals. *)
        && t.seq_counter < Log.low_watermark t.log + t.cfg.log_window
        && not (Queue.is_empty t.pending)
      then begin
        let batch = ref [] in
        let bytes = ref 0 in
        let take_one () =
          let rq = Queue.pop t.pending in
          let item =
            let size = String.length rq.Message.rq_op in
            let big = t.cfg.all_requests_big || size > t.cfg.big_request_threshold in
            if big then begin
              Hashtbl.replace t.bodies (Message.request_digest rq) rq;
              Message.Digest_of
                {
                  bd_client = rq.rq_client;
                  bd_id = rq.rq_id;
                  bd_digest = Message.request_digest rq;
                  bd_readonly = rq.rq_readonly;
                }
            end
            else Message.Full rq
          in
          let item_bytes =
            match item with Message.Digest_of _ -> 80 | Message.Full _ -> String.length rq.Message.rq_op + 64
          in
          bytes := !bytes + item_bytes;
          batch := item :: !batch
        in
        take_one ();
        if t.cfg.batching then begin
          while (not (Queue.is_empty t.pending)) && !bytes < t.cfg.max_batch_bytes do
            take_one ()
          done
        end;
        let items = List.rev !batch in
        t.seq_counter <- t.seq_counter + 1;
        let seq = t.seq_counter in
        let nondet = Nondet.produce ~now:(now t) t.rng in
        let entry = Log.entry t.log seq in
        entry.pp_view <- t.view;
        entry.batch <- Some items;
        entry.nondet <- nondet;
        entry.batch_digest <- Message.batch_digest items;
        List.iter
          (fun item -> Hashtbl.replace t.in_flight (Message.batch_item_client_id item) seq)
          items;
        Log.record_prepare entry t.id;
        let payload =
          Message.Pre_prepare { pp_view = t.view; pp_seq = seq; pp_batch = items; pp_nondet = nondet }
        in
        let digest_costs =
          List.map
            (fun it ->
              Costmodel.digest t.costs
                (match it with
                | Message.Full rq -> String.length rq.rq_op
                | Message.Digest_of _ -> 32))
            items
        in
        (if Simnet.Cpu.cores t.cpu > 1 then
           (* Per-item digests are independent: fan them across cores. *)
           Simnet.Cpu.execute_split t.cpu ~costs:digest_costs (fun () ->
               multicast_replicas t payload)
         else
           charge t
             (List.fold_left (fun acc c -> acc +. c) 0.0 digest_costs)
             (fun () -> multicast_replicas t payload));
        continue := true
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Request intake.                                                      *)

and handle_request t ~src rq =
  let client = rq.Message.rq_client in
  (* Redirection-table check: unknown identifiers are dismissed before any
     signature work (§3.1). System client 0 is reserved. *)
  match Membership.lookup t.membership client with
  | None -> t.n_auth_fail <- t.n_auth_fail + 1
  | Some entry ->
    ignore entry;
    ignore src;
    let size = String.length rq.rq_op in
    let big = t.cfg.all_requests_big || size > t.cfg.big_request_threshold in
    if big then begin
      let d = Message.request_digest rq in
      Hashtbl.replace t.bodies d rq;
      Hashtbl.remove t.body_requests d;
      (* A stalled entry may have been waiting for exactly this body. *)
      (match Log.find t.log (t.last_executed + 1) with
      | Some e when List.mem d e.missing_bodies -> try_execute t
      | Some _ | None -> ())
    end;
    (* Retransmission of an executed request: resend the cached reply. *)
    (match Log.cached_reply t.log client with
    | Some cr when cr.cr_id = rq.rq_id && not cr.cr_speculative ->
      send_reply t rq ~result:cr.cr_result ~tentative:cr.cr_tentative ~already_charged:false
    | Some cr when cr.cr_id >= rq.rq_id ->
      (* [cr_id = rq_id] but speculative: the execution has not committed;
         saying nothing (rather than leaking the speculative result) keeps
         the client retransmitting until the flush answers it. *)
      ()
    | Some _ | None ->
      if rq.rq_readonly && t.cfg.read_only_optimization then begin
        (* Read-only path: execute immediately against the current state.
           Retransmissions must not re-execute the read — for expensive
           reads that turns one slow reply into a storm of duplicate work.
           A duplicate arriving while the first copy is still queued
           behind the CPU is dropped (the pending reply will answer it);
           one arriving after completion is answered from the per-client
           read-only reply cache. *)
        match Util.Lru.find t.ro_replies client with
        | Some (id, result) when id = rq.rq_id ->
          send_reply t rq ~result ~tentative:true ~already_charged:false
        | Some _ | None ->
          if not (Hashtbl.mem t.in_flight (client, rq.rq_id)) then begin
            Hashtbl.replace t.in_flight (client, rq.rq_id) 0;
            let result, cost =
              t.service.execute ~op:rq.rq_op ~client ~timestamp:(now t) ~nondet:"" ~readonly:true
            in
            charge t cost (fun () ->
                Hashtbl.remove t.in_flight (client, rq.rq_id);
                Util.Lru.put t.ro_replies client (rq.rq_id, result);
                send_reply t rq ~result ~tentative:true ~already_charged:false)
          end
      end
      else if Hashtbl.mem t.in_flight (client, rq.rq_id) then begin
        (* Already being ordered. A retransmission means the client is not
           getting replies: re-drive the agreement by re-multicasting the
           pre-prepare (PBFT's lost-message recovery). *)
        match Hashtbl.find_opt t.in_flight (client, rq.rq_id) with
        | Some seq when seq > 0 && is_primary t -> begin
          match Log.find t.log seq with
          | Some entry when (not entry.executed) && entry.batch <> None ->
            multicast_replicas t
              (Message.Pre_prepare
                 {
                   pp_view = entry.pp_view;
                   pp_seq = seq;
                   pp_batch = Option.value ~default:[] entry.batch;
                   pp_nondet = entry.nondet;
                 })
          | Some _ | None -> ()
        end
        | Some _ | None -> ()
      end
      else if is_primary t then begin
        Hashtbl.replace t.in_flight (client, rq.rq_id) 0;
        Queue.push rq t.pending;
        try_emit_pre_prepare t
      end
      else begin
        (* Backup. First copy: just remember it for the view-change
           watchdog (for big requests the client multicast included the
           primary). A second copy is a client retransmission — the
           client timed out — so relay it to the primary, which is the
           PBFT trigger for suspecting the primary. *)
        if not (Hashtbl.mem t.waiting (client, rq.rq_id)) then begin
          Hashtbl.replace t.waiting (client, rq.rq_id) (now t);
          arm_watchdog t
        end
        else begin
          let primary = primary_of_view ~n:t.cfg.n t.view in
          send_to t ~dst:primary (Message.Request_msg rq)
        end
      end)

(* ------------------------------------------------------------------ *)
(* Agreement message handlers.                                          *)

and handle_pre_prepare t ~src (pp_view, pp_seq, pp_batch, pp_nondet) =
  let primary = primary_of_view ~n:t.cfg.n t.view in
  if
    pp_view = t.view && src = primary && (not (is_primary t)) && (not t.in_view_change)
    && pp_seq > Log.low_watermark t.log
    && pp_seq <= Log.low_watermark t.log + t.cfg.log_window
  then begin
    if not (Nondet.validate t.cfg.nondet ~now:(now t) ~recovering:t.recovering pp_nondet) then
      t.n_nondet_reject <- t.n_nondet_reject + 1
    else begin
      let entry = Log.entry t.log pp_seq in
      let digest = Message.batch_digest pp_batch in
      (* A batch accepted in an older view but never prepared is
         superseded by the new view's proposal for this sequence — the
         new-view certificate proved nothing prepared here, and the stale
         votes certified the old digest. A locally *prepared* entry is
         never superseded: its certificate survives the view change
         (quorum intersection), so a conflicting re-proposal can only come
         from a Byzantine primary and must be refused. *)
      if
        entry.batch <> None && entry.pp_view < pp_view && (not entry.prepared)
        && not (String.equal entry.batch_digest digest)
      then begin
        Log.reset_votes entry;
        entry.batch <- None;
        entry.batch_digest <- ""
      end;
      let conflicting = entry.batch <> None && not (String.equal entry.batch_digest digest) in
      if not conflicting then begin
        (* In MAC mode the embedded client requests must be validated; a
           replica that lost its session keys (restart, §2.3) cannot and
           must reject the pre-prepare. *)
        let clients_ok =
          List.for_all
            (fun item ->
              let client, _ = Message.batch_item_client_id item in
              client = 0
              ||
              match Membership.lookup t.membership client with
              | None -> false
              | Some e ->
                if not t.cfg.use_macs then true
                else Hashtbl.mem t.keys_peers_chose e.me_addr)
            pp_batch
        in
        if not clients_ok then t.n_auth_fail <- t.n_auth_fail + 1
        else begin
          entry.pp_view <- pp_view;
          entry.batch <- Some pp_batch;
          entry.nondet <- pp_nondet;
          entry.batch_digest <- digest;
          Log.record_prepare entry src;
          Log.record_prepare entry t.id;
          (* Track pending work for the watchdog. *)
          List.iter
            (fun item ->
              let client, rid = Message.batch_item_client_id item in
              if client > 0 && not (Hashtbl.mem t.waiting (client, rid)) then
                Hashtbl.replace t.waiting (client, rid) (now t))
            pp_batch;
          arm_watchdog t;
          maybe_fill_gap t ~src ~seen_seq:pp_seq;
          charge_fanout t ~n:(List.length pp_batch)
            ~unit_cost:(Costmodel.auth_verify t.costs t.cfg) (fun () ->
              multicast_replicas t
                (Message.Prepare
                   { p_view = pp_view; p_seq = pp_seq; p_digest = digest; p_replica = t.id }));
          (* If this was a retransmitted pre-prepare and we are already
             prepared, our commit may have been lost too — resend it. *)
          if entry.prepared then
            multicast_replicas t
              (Message.Commit
                 { c_view = entry.pp_view; c_seq = pp_seq; c_digest = digest; c_replica = t.id });
          check_prepared t entry
        end
      end
    end
  end

and check_prepared t entry =
  if (not entry.prepared) && entry.batch <> None
     && Log.prepare_count entry >= quorum_2f1 ~f:t.cfg.f
  then begin
    entry.prepared <- true;
    Log.record_commit entry t.id;
    multicast_replicas t
      (Message.Commit
         { c_view = entry.pp_view; c_seq = entry.seq; c_digest = entry.batch_digest;
           c_replica = t.id });
    check_committed t entry;
    try_execute t
  end

and check_committed t entry =
  if (not entry.committed) && entry.prepared && Log.commit_count entry >= quorum_2f1 ~f:t.cfg.f
  then begin
    entry.committed <- true;
    advance_committed t;
    try_execute t
  end

and handle_prepare t ~src (p_view, p_seq, p_digest) =
  if p_view <= t.view && not t.in_view_change then begin
    let entry = Log.entry t.log p_seq in
    if entry.batch = None || String.equal entry.batch_digest p_digest then begin
      Log.record_prepare entry src;
      check_prepared t entry
    end
  end

and handle_commit t ~src (c_view, c_seq, c_digest) =
  if c_view <= t.view then begin
    let entry = Log.entry t.log c_seq in
    if entry.batch = None || String.equal entry.batch_digest c_digest then begin
      Log.record_commit entry src;
      (* §2.5 log replay, off by default: a quorum is committing a
         sequence we never saw the pre-prepare for; fetch it. *)
      if
        t.cfg.fetch_missing_entries && entry.batch = None
        && Log.commit_count entry >= quorum_f1 ~f:t.cfg.f
        && not (Hashtbl.mem t.entry_requests c_seq)
      then begin
        Hashtbl.replace t.entry_requests c_seq ();
        send_to t ~dst:src (Message.Fetch_entry { fe_seq = c_seq; fe_replica = t.id })
      end;
      maybe_fill_gap t ~src ~seen_seq:c_seq;
      check_committed t entry
    end
  end

and maybe_fill_gap t ~src ~seen_seq =
  if t.cfg.fetch_missing_entries then begin
    let lo = Int.max (t.last_executed + 1) (Log.low_watermark t.log + 1) in
    let hi = Int.min (seen_seq - 1) (lo + 512) in
    for seq = lo to hi do
      let entry = Log.entry t.log seq in
      if entry.batch = None && not (Hashtbl.mem t.entry_requests seq) then begin
        Hashtbl.replace t.entry_requests seq ();
        send_to t ~dst:src (Message.Fetch_entry { fe_seq = seq; fe_replica = t.id })
      end
    done
  end

and handle_status t ~src (st_view, st_last_exec) =
  (* A rejoined replica stuck in an old view cannot accept the current
     view's traffic. If we are the primary that installed this view,
     replay our New_view so it can catch up (benign runs never take this
     branch: views always match). *)
  (if st_view < t.view then
     match t.last_new_view with
     | Some (Message.New_view nv as p) when nv.nv_view = t.view && is_primary t ->
       send_to t ~dst:src p
     | Some _ | None -> ());
  (* The decentralized converse: adopt the cluster's view once f+1
     distinct peers advertise an installed view above ours. The
     New_view replay above only works while the installing primary is
     alive and still holds the certificate (it is volatile state, gone
     if that primary has itself restarted since); without a fallback a
     rejoined replica climbs from its pre-crash view one watchdog
     backoff at a time, pushing View_changes at the group all the way
     up. Any f+1 set contains an honest replica, so the advertised
     view is real; jumping forward is a liveness action only. *)
  if src >= 0 && src < Array.length t.peer_views && src <> t.id then begin
    if st_view > t.peer_views.(src) then t.peer_views.(src) <- st_view;
    let supported =
      (* Largest view at least f+1 peers advertise: the (f+1)-th
         highest entry of the per-peer maxima. *)
      let vs = Array.copy t.peer_views in
      vs.(t.id) <- 0;
      Array.sort (fun a b -> Int.compare b a) vs;
      vs.(quorum_f1 ~f:t.cfg.f - 1)
    in
    if supported > t.view then begin
      (* Same precaution as installing a New_view: tentative executions
         from the old view may be re-ordered by the new primary's
         re-proposals, so fall back to the committed prefix first. *)
      if t.last_executed > t.last_committed_exec then rollback_tentative t;
      t.view <- supported;
      t.in_view_change <- false;
      t.vc_target <- supported;
      t.vc_attempts <- 0;
      (match t.watchdog with
      | Some timer ->
        Simnet.Engine.cancel timer;
        t.watchdog <- None
      | None -> ());
      arm_watchdog t
    end
  end;
  if st_last_exec < t.last_executed then begin
    if st_last_exec < t.stable_ckpt then
      (* The gap starts below our stable checkpoint: the log is gone, so
         re-vote the checkpoint to drive the peer's state transfer. *)
      (match Hashtbl.find_opt t.checkpoints t.stable_ckpt with
      | Some ck ->
        send_to t ~dst:src
          (Message.Checkpoint_msg
             { ck_seq = t.stable_ckpt; ck_digest = Statemgr.Checkpoint.root ck; ck_replica = t.id })
      | None -> ());
    let hi = Int.min t.last_executed (st_last_exec + 64) in
    for seq = st_last_exec + 1 to hi do
      match Log.find t.log seq with
      | Some e when e.batch <> None ->
        send_to t ~dst:src
          (Message.Entry
             {
               en_seq = seq;
               en_view = e.pp_view;
               en_batch = Option.value ~default:[] e.batch;
               en_nondet = e.nondet;
             });
        send_to t ~dst:src
          (Message.Prepare
             { p_view = e.pp_view; p_seq = seq; p_digest = e.batch_digest; p_replica = t.id });
        send_to t ~dst:src
          (Message.Commit
             { c_view = e.pp_view; c_seq = seq; c_digest = e.batch_digest; c_replica = t.id })
      | Some _ | None -> ()
    done
  end

and handle_fetch_entry t ~src seq =
  match Log.find t.log seq with
  | Some e when e.batch <> None ->
    send_to t ~dst:src
      (Message.Entry
         {
           en_seq = seq;
           en_view = e.pp_view;
           en_batch = Option.value ~default:[] e.batch;
           en_nondet = e.nondet;
         })
  | Some _ | None -> ()

and handle_entry t ~src:_ (en_seq, en_view, en_batch, en_nondet) =
  let entry = Log.entry t.log en_seq in
  if entry.batch = None && en_seq > Log.low_watermark t.log then begin
    (* A replayed request: the §2.5 validation trap. With plain delta
       validation the original (stale) timestamp fails and recovery is
       impeded; the skip-on-recovery policy accepts it. *)
    if not (Nondet.validate t.cfg.nondet ~now:(now t) ~recovering:true en_nondet) then
      t.n_nondet_reject <- t.n_nondet_reject + 1
    else begin
      entry.pp_view <- en_view;
      entry.batch <- Some en_batch;
      entry.nondet <- en_nondet;
      entry.batch_digest <- Message.batch_digest en_batch;
      Log.record_prepare entry t.id;
      Hashtbl.remove t.entry_requests en_seq;
      multicast_replicas t
        (Message.Prepare
           { p_view = en_view; p_seq = en_seq; p_digest = entry.batch_digest; p_replica = t.id });
      check_prepared t entry;
      check_committed t entry;
      try_execute t
    end
  end

(* ------------------------------------------------------------------ *)
(* View changes.                                                        *)

and rollback_tentative t =
  let undoing = t.last_executed > t.last_committed_exec in
  (match t.undo with
  | None -> ()
  | Some snap ->
    let dirty_pages = List.length (Statemgr.Pages.dirty t.pages) in
    Statemgr.Merkle.update t.merkle t.pages (Statemgr.Pages.dirty t.pages);
    Statemgr.Checkpoint.restore snap t.pages t.merkle;
    load_membership_from_pages t;
    t.undo <- None;
    if pipelined t then
      (* Restoring the COW snapshot costs CPU in pipelined mode; serial
         tentative rollback keeps its historical zero charge. *)
      charge t
        (t.costs.rollback_fixed
        +. (t.costs.rollback_per_page *. float_of_int dirty_pages))
        (fun () -> ()));
  (* Speculative executions above the committed prefix are undone: their
     flags must clear too, or a re-proposal would skip re-execution. Any
     buffered replies and speculative reply-cache entries die with them —
     the results they carry may never commit. *)
  List.iter
    (fun (e : Log.entry) ->
      e.tentatively_executed <- false;
      List.iter
        (fun ((rq : Message.request), _, _) ->
          match Log.cached_reply t.log rq.rq_client with
          | Some cr when cr.cr_id = rq.rq_id && cr.cr_speculative ->
            Log.drop_client t.log rq.rq_client
          | Some _ | None -> ())
        e.pending_replies;
      e.pending_replies <- [])
    (Log.entries_between t.log ~lo:t.last_committed_exec ~hi:(t.last_committed_exec + t.cfg.log_window));
  (* Deferred checkpoint snapshots above the committed prefix are for
     states that no longer exist. *)
  Hashtbl.reset t.pending_ckpts;
  if undoing then t.n_rollbacks <- t.n_rollbacks + 1;
  t.last_executed <- t.last_committed_exec

and start_view_change t v =
  (* §2.3: a recovering replica abstains from view changes — it counts
     against f until recovery completes. Its log died with the crash, so
     a View_change it sent now would carry an amnesiac (empty) prepared
     set; a new-view certificate built from 2f+1 votes that include it
     no longer intersects every commit quorum in an honest replica that
     prepared the batch, and a committed — client-visible — request can
     be silently re-proposed as null. The healthy 2f+1 replicas carry
     the view change alone; we adopt the outcome from the New_view
     message or from f+1 status gossip. *)
  if t.recovering then ()
  else if v > t.vc_target then begin
    t.vc_target <- v;
    t.in_view_change <- true;
    t.n_vc <- t.n_vc + 1;
    t.vc_attempts <- t.vc_attempts + 1;
    rollback_tentative t;
    (match t.watchdog with
    | Some timer ->
      Simnet.Engine.cancel timer;
      t.watchdog <- None
    | None -> ());
    let stable_digest =
      match Hashtbl.find_opt t.checkpoints t.stable_ckpt with
      | Some ck -> Statemgr.Checkpoint.root ck
      | None -> ""
    in
    let prepared =
      List.map
        (fun (e : Log.entry) ->
          {
            Message.pi_view = e.pp_view;
            pi_seq = e.seq;
            pi_digest = e.batch_digest;
            pi_batch = Option.value ~default:[] e.batch;
          })
        (Log.prepared_above t.log t.stable_ckpt)
    in
    let payload =
      Message.View_change
        {
          vc_new_view = v;
          vc_stable_seq = t.stable_ckpt;
          vc_stable_digest = stable_digest;
          vc_prepared = prepared;
          vc_replica = t.id;
        }
    in
    record_view_change t ~src:t.id payload;
    multicast_replicas t payload;
    (* If the new primary is unresponsive too, move further — on the
       backed-off timer, so cascading view changes decelerate. *)
    let _ =
      Simnet.Engine.timer t.engine ~delay:(vc_timeout t *. 2.0) (fun () ->
          if t.alive && t.in_view_change && t.view < v then start_view_change t (v + 1))
    in
    check_new_view t v
  end

and record_view_change t ~src payload =
  match payload with
  | Message.View_change vc ->
    (* A replica targets one view at a time, so its newest View_change
       supersedes any vote it cast for another view. Without this,
       votes from an old incident (a rejoined replica escalating while
       it caught up, or a previous incarnation entirely) linger in
       these tables and later combine with one fresh timeout to fake an
       f+1 join quorum — the group then cascades through every view the
       stale voter ever named. *)
    List.iter
      (fun v ->
        if v <> vc.vc_new_view then
          match Hashtbl.find_opt t.vc_msgs v with
          | Some tbl -> Hashtbl.remove tbl src
          | None -> ())
      (Util.Sorted_tbl.keys t.vc_msgs);
    let tbl =
      match Hashtbl.find_opt t.vc_msgs vc.vc_new_view with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.add t.vc_msgs vc.vc_new_view tbl;
        tbl
    in
    Hashtbl.replace tbl src payload
  | _ -> ()

(* Sanity-check a remote view-change vote before it can influence the
   new primary's re-proposal set. A Byzantine voter could otherwise claim
   a "prepared" batch whose digest does not match its contents — the new
   primary would re-propose it under [check_new_view] and correct
   replicas would install a forged digest/batch pair. Self-consistency is
   checkable without certificates: the claimed digest must be the hash of
   the carried batch, the prepared view must precede the vote's target
   view, and prepared entries must lie above the claimed checkpoint. *)
and view_change_well_formed ~new_view ~stable_seq ~stable_digest prepared =
  let digest_ok d = String.length d = 0 || String.length d = 32 in
  stable_seq >= 0
  && digest_ok stable_digest
  && List.for_all
       (fun (pi : Message.prepared_info) ->
         pi.pi_view < new_view
         && pi.pi_seq > stable_seq
         && String.equal pi.pi_digest (Message.batch_digest pi.pi_batch))
       prepared

and handle_view_change t ~src payload =
  match payload with
  | Message.View_change vc
    when vc.vc_new_view > t.view
         && not
              (view_change_well_formed ~new_view:vc.vc_new_view ~stable_seq:vc.vc_stable_seq
                 ~stable_digest:vc.vc_stable_digest vc.vc_prepared) ->
    (* Garbage vote: count it with the other authentication rejects and
       drop it before it reaches the vote table. *)
    t.n_auth_fail <- t.n_auth_fail + 1
  | Message.View_change vc when vc.vc_new_view > t.view ->
    record_view_change t ~src payload;
    let count v = match Hashtbl.find_opt t.vc_msgs v with Some tbl -> Hashtbl.length tbl | None -> 0 in
    (* Liveness: join a view change supported by f+1 others. *)
    if (not t.in_view_change) && count vc.vc_new_view >= quorum_f1 ~f:t.cfg.f then
      start_view_change t vc.vc_new_view;
    check_new_view t vc.vc_new_view
  | Message.View_change _ | _ -> ()

and check_new_view t v =
  (* Same abstention while recovering: do not step up as the new view's
     primary mid-replay — proposals would issue from a state the group
     has moved past. The healthy replicas' escalation timers carry them
     to v+1 if we stay silent. *)
  if primary_of_view ~n:t.cfg.n v = t.id && t.vc_target <= v && not t.recovering then begin
    match Hashtbl.find_opt t.vc_msgs v with
    | Some tbl when Hashtbl.length tbl >= quorum_2f1 ~f:t.cfg.f && t.view < v ->
      (* Compute the re-proposal set O from the 2f+1 view-change messages.
         Sorted traversal: msgs order reaches the New_view digest list. *)
      let msgs = Util.Sorted_tbl.bindings tbl in
      let min_s =
        List.fold_left
          (fun acc (_, p) ->
            match p with Message.View_change vc -> Int.max acc vc.vc_stable_seq | _ -> acc)
          0 msgs
      in
      let by_seq : (seqno, Message.prepared_info) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (_, p) ->
          match p with
          | Message.View_change vc ->
            List.iter
              (fun (pi : Message.prepared_info) ->
                if pi.pi_seq > min_s then begin
                  match Hashtbl.find_opt by_seq pi.pi_seq with
                  | Some existing when existing.pi_view >= pi.pi_view -> ()
                  | Some _ | None -> Hashtbl.replace by_seq pi.pi_seq pi
                end)
              vc.vc_prepared
          | _ -> ())
        msgs;
      (* Order-free: Int.max is commutative and associative. *)
      let[@detlint.allow hashtbl_order] max_s =
        Hashtbl.fold (fun s _ acc -> Int.max s acc) by_seq min_s
      in
      let reproposals =
        List.filter_map
          (fun seq ->
            if seq <= min_s then None
            else
              match Hashtbl.find_opt by_seq seq with
              | Some pi -> Some (seq, pi.pi_batch)
              | None -> Some (seq, []) (* null request fills the gap *))
          (List.init (max_s - min_s) (fun i -> min_s + 1 + i))
      in
      let vc_digests =
        List.map (fun (src, p) -> (src, Message.digest_of_payload p)) msgs
      in
      t.view <- v;
      t.in_view_change <- false;
      t.vc_target <- v;
      t.seq_counter <- Int.max max_s t.seq_counter;
      if t.last_executed < min_s then begin
        (* We are behind the quorum's stable checkpoint; fetch it. *)
        match
          Util.Sorted_tbl.fold (fun src p acc ->
              match p with
              | Message.View_change vc when vc.vc_stable_seq = min_s && src <> t.id ->
                Some (src, vc.vc_stable_digest)
              | _ -> acc)
            tbl None
        with
        | Some (peer, d) ->
          start_state_transfer t ~kind:Demotion ~seq:min_s ~peer
            ~digest:(if String.equal d "" then None else Some d) ()
        | None -> ()
      end;
      (* Install the re-proposed batches locally. The prepared predicate
         is per-view (§2.2): agreement re-runs in the new view, so stale
         votes — and a stale prepared/committed flag that would suppress
         the fresh commit round — are discarded first. *)
      List.iter
        (fun (seq, batch) ->
          let entry = Log.entry t.log seq in
          Log.reset_votes entry;
          entry.pp_view <- v;
          entry.batch <- Some batch;
          entry.nondet <- Nondet.produce ~now:(now t) t.rng;
          entry.batch_digest <- Message.batch_digest batch;
          Log.record_prepare entry t.id)
        reproposals;
      let nv_payload =
        Message.New_view
          { nv_view = v; nv_view_change_digests = vc_digests; nv_pre_prepares = reproposals }
      in
      t.last_new_view <- Some nv_payload;
      multicast_replicas t nv_payload;
      try_emit_pre_prepare t;
      (* PBFT restarts the view-change timer when a view is installed: the
         starved requests are already on the waiting ledger (so client
         retransmissions will not re-arm), and if this view also fails to
         commit them someone must escalate. *)
      arm_watchdog t
    | Some _ | None -> ()
  end

and handle_new_view t ~src (nv_view, nv_pre_prepares) =
  if src = primary_of_view ~n:t.cfg.n nv_view && nv_view >= t.view then begin
    (* A replica that never timed out still holds speculative executions
       from the old view; the new primary's re-proposals may order those
       sequences differently (divergent commit). Roll back to the
       committed prefix before installing, so re-proposals re-execute
       against committed state. *)
    if t.last_executed > t.last_committed_exec then rollback_tentative t;
    t.view <- nv_view;
    t.in_view_change <- false;
    t.vc_target <- nv_view;
    List.iter
      (fun (seq, batch) ->
        (* Re-run agreement for every re-proposal above the stable
           checkpoint — including sequences this replica already executed.
           The new primary may be behind us (its checkpoint never went
           stable), and it can only commit and catch up if the replicas
           that did execute re-certify those sequences in the new view;
           [try_execute] skips re-execution of anything at or below
           [last_executed]. *)
        if seq > t.stable_ckpt then begin
          let entry = Log.entry t.log seq in
          (* Agreement is per-view: votes gathered in the old view (and a
             stale prepared flag that would suppress the commit round
             here) do not certify the re-proposal. *)
          Log.reset_votes entry;
          entry.pp_view <- nv_view;
          entry.batch <- Some batch;
          entry.batch_digest <- Message.batch_digest batch;
          Log.record_prepare entry src;
          Log.record_prepare entry t.id;
          multicast_replicas t
            (Message.Prepare
               { p_view = nv_view; p_seq = seq; p_digest = entry.batch_digest; p_replica = t.id });
          check_prepared t entry
        end)
      nv_pre_prepares;
    try_execute t;
    (* Restart the view-change timer for requests still on the waiting
       ledger — if the new view is also commit-starved, escalate. *)
    arm_watchdog t
  end

(* ------------------------------------------------------------------ *)
(* State transfer handlers.                                             *)

and handle_fetch_meta t ~src seq =
  let seq = if seq <= 0 then t.stable_ckpt else seq in
  match Hashtbl.find_opt t.checkpoints seq with
  | None -> ()
  | Some ck ->
    let tree = Statemgr.Checkpoint.merkle ck in
    let leaves = List.init (Statemgr.Merkle.num_leaves tree) (Statemgr.Merkle.leaf tree) in
    send_to t ~dst:src (Message.State_meta { sm_seq = seq; sm_replica = t.id; sm_leaves = leaves })

and handle_state_meta t ~src (seq, leaves) =
  match t.transfer with
  | Some tr when tr.tr_seq < 0 && tr.tr_peer = src && seq <= t.last_executed ->
    (* The serving peer's newest stable checkpoint is no further along
       than the state we reloaded from disk. Installing it would rewind a
       checkpoint registration onto newer state — corruption — so abandon
       this peer and rotate; if a full rotation finds nobody ahead, we
       are current and the checkpoint gossip will demote us later if that
       ever changes. *)
    t.transfer <- None;
    if tr.tr_attempt < t.cfg.n - 2 then start_rejoin_transfer t ~attempt:(tr.tr_attempt + 1)
    else begin
      if t.recovering && t.recovery_done = None then t.recovery_done <- Some (now t);
      try_execute t
    end
  | Some tr when (tr.tr_seq = seq || tr.tr_seq < 0) && tr.tr_peer = src ->
    (* A Byzantine peer must not be able to poison the transfer: when the
       target digest is quorum-certified, the claimed page digests must
       reproduce it. *)
    let meta_ok =
      match tr.tr_digest with
      | None -> true
      | Some d -> String.equal d (Statemgr.Merkle.root_of_leaves leaves)
    in
    if not meta_ok then t.n_auth_fail <- t.n_auth_fail + 1
    else begin
    Statemgr.Merkle.update t.merkle t.pages (Statemgr.Pages.dirty t.pages);
    let wanted = ref [] in
    List.iteri
      (fun i leaf ->
        if i < Statemgr.Merkle.num_leaves t.merkle && leaf <> Statemgr.Merkle.leaf t.merkle i then
          wanted := i :: !wanted)
      leaves;
    let tr =
      { tr with tr_seq = seq; tr_leaves = Array.of_list leaves; tr_wanted = List.rev !wanted }
    in
    t.transfer <- Some tr;
    if tr.tr_wanted = [] then finish_transfer t tr
    else begin
      (* Fetch in chunks of 8 pages. *)
      let rec chunks = function
        | [] -> []
        | l ->
          let rec take n = function
            | [] -> ([], [])
            | x :: rest when n > 0 ->
              let a, b = take (n - 1) rest in
              (x :: a, b)
            | rest -> ([], rest)
          in
          let chunk, rest = take 8 l in
          chunk :: chunks rest
      in
      List.iter
        (fun chunk ->
          send_to t ~dst:src
            (Message.Fetch_pages { fp_seq = seq; fp_pages = chunk; fp_replica = t.id }))
        (chunks tr.tr_wanted)
    end
    end
  | Some _ | None -> ()

and handle_fetch_pages t ~src (seq, wanted) =
  match Hashtbl.find_opt t.checkpoints seq with
  | None -> ()
  | Some ck ->
    let pages = List.map (fun i -> (i, Statemgr.Checkpoint.page ck i)) wanted in
    send_to t ~dst:src (Message.State_pages { sp_seq = seq; sp_replica = t.id; sp_pages = pages })

and handle_state_pages t ~src (seq, got) =
  match t.transfer with
  | Some tr when tr.tr_seq = seq && tr.tr_peer = src ->
    (* Each page must hash to the (already root-checked) claimed leaf. *)
    let got =
      List.filter
        (fun (i, contents) ->
          i < Array.length tr.tr_leaves
          && String.equal (Statemgr.Merkle.page_digest contents) tr.tr_leaves.(i))
        got
    in
    if got = [] then t.n_auth_fail <- t.n_auth_fail + 1;
    tr.tr_received <- got @ tr.tr_received;
    let have = List.map fst tr.tr_received in
    if List.for_all (fun w -> List.mem w have) tr.tr_wanted then finish_transfer t tr
  | Some _ | None -> ()

and finish_transfer t tr =
  List.iter (fun (i, contents) -> Statemgr.Pages.load_page t.pages i contents) tr.tr_received;
  Statemgr.Merkle.update t.merkle t.pages (List.map fst tr.tr_received);
  Statemgr.Pages.clear_dirty t.pages;
  load_membership_from_pages t;
  (* Merkle-diff accounting: what crossed the wire vs what a full (every
     leaf) transfer would have pulled. Retries can deliver duplicates, so
     count distinct pages. *)
  t.n_pages_fetched <-
    t.n_pages_fetched
    + List.length (List.sort_uniq Int.compare (List.map fst tr.tr_received));
  t.n_pages_full <- t.n_pages_full + Array.length tr.tr_leaves;
  t.transfer <- None;
  t.undo <- None;
  if tr.tr_seq > t.last_executed then begin
    t.last_executed <- tr.tr_seq;
    t.last_committed_exec <- tr.tr_seq;
    t.seq_counter <- Int.max t.seq_counter tr.tr_seq
  end;
  t.stable_ckpt <- Int.max t.stable_ckpt tr.tr_seq;
  Log.set_low_watermark t.log tr.tr_seq;
  (* The transferred state already reflects every request ordered at or
     below [tr_seq], but we never walked those batches — entries on the
     waiting ledger that they satisfied would sit there forever with
     their pre-transfer timestamps and fire the view-change watchdog on
     every re-arm, even while the view is healthy. The ledger is
     starvation bookkeeping, not protocol state: drop it wholesale; any
     request that is genuinely still unserved is re-added with a fresh
     timestamp by the client's next retransmission. *)
  Hashtbl.reset t.waiting;
  (* Snapshot the transferred state as our own checkpoint so we can serve
     transfers and votes for it. *)
  Statemgr.Merkle.update t.merkle t.pages (Statemgr.Pages.dirty t.pages);
  Statemgr.Pages.clear_dirty t.pages;
  let ck = Statemgr.Checkpoint.take ~seqno:tr.tr_seq t.pages t.merkle in
  t.n_ckpt <- t.n_ckpt + 1;
  Hashtbl.replace t.checkpoints tr.tr_seq ck;
  (* Catching up by transfer is execution progress: reset the view-change
     backoff so the next watchdog arming starts from the base timeout —
     without this a rejoined replica inherits pre-crash-style escalation
     and times out its healthy primary. *)
  t.vc_attempts <- 0;
  if t.recovering && t.recovery_done = None then t.recovery_done <- Some (now t);
  try_execute t

(* ------------------------------------------------------------------ *)
(* Join phase 1/2 (protocol level, before ordering).                    *)

and join_challenge_value t ~addr ~pubkey ~nonce =
  Crypto.Mac.compute ~key:t.registry.reg_group_secret
    (Printf.sprintf "join|%d|%s|%s" addr pubkey nonce)

and handle_join_request t ~src:_ (j_addr, j_pubkey, j_nonce) =
  if t.cfg.dynamic_clients then begin
    let challenge = join_challenge_value t ~addr:j_addr ~pubkey:j_pubkey ~nonce:j_nonce in
    send_to t ~dst:j_addr
      (Message.Join_challenge { jc_replica = t.id; jc_addr = j_addr; jc_nonce = challenge })
  end

and handle_join_response t ~src:_ (jr_addr, jr_proof, jr_pubkey, jr_idbuf) =
  if t.cfg.dynamic_clients then begin
    (* The proof must be the challenge we (deterministically) issued; any
       replica can recompute it. The nonce is embedded in the proof check
       by construction: proof = MAC(secret, addr|pubkey|nonce). We accept
       any nonce the client chose, since the proof demonstrates it
       received the challenge at its claimed address. *)
    let valid =
      (* The client sends back (nonce, proof) packed in jr_proof. *)
      match String.index_opt jr_proof '|' with
      | None -> false
      | Some i ->
        let nonce = String.sub jr_proof 0 i in
        let proof = String.sub jr_proof (i + 1) (String.length jr_proof - i - 1) in
        String.equal proof (join_challenge_value t ~addr:jr_addr ~pubkey:jr_pubkey ~nonce)
    in
    if valid then begin
      let op =
        "\x01"
        ^ Util.Codec.encode
            (fun w () ->
              Util.Codec.W.u8 w (Char.code 'J');
              Util.Codec.W.varint w jr_addr;
              Util.Codec.W.lstring w jr_pubkey;
              Util.Codec.W.lstring w jr_idbuf)
            ()
      in
      let rq_id =
        (* Deterministic id so all replicas deduplicate identically. *)
        Char.code (Crypto.Sha256.digest op).[0]
        lor (Char.code (Crypto.Sha256.digest op).[1] lsl 8)
        lor (jr_addr lsl 16)
      in
      (* The system request must be bit-identical at every replica (its
         digest is what the pre-prepare references), so its timestamp
         field is fixed at zero; ordering time comes from the agreed
         non-deterministic data instead. *)
      let rq =
        { Message.rq_client = 0; rq_id; rq_op = op; rq_readonly = false; rq_timestamp = 0.0 }
      in
      let d = Message.request_digest rq in
      Hashtbl.replace t.bodies d rq;
      (* The ordered batch may already be committed and waiting for
         exactly this body (the copies fan out to replicas at different
         times). *)
      (match Log.find t.log (t.last_executed + 1) with
      | Some e when List.mem d e.missing_bodies -> try_execute t
      | Some _ | None -> ());
      if is_primary t then begin
        if not (Hashtbl.mem t.in_flight (0, rq_id)) then begin
          Hashtbl.replace t.in_flight (0, rq_id) 0;
          Queue.push rq t.pending;
          try_emit_pre_prepare t
        end
      end
      else begin
        if not (Hashtbl.mem t.waiting (0, rq_id)) then begin
          Hashtbl.replace t.waiting (0, rq_id) (now t);
          arm_watchdog t
        end
      end
    end
  end

and handle_leave t ~src (lv_client : client_id) =
  match Membership.lookup t.membership lv_client with
  | Some e when e.me_addr = src && t.cfg.dynamic_clients ->
    let op =
      "\x01"
      ^ Util.Codec.encode
          (fun w () ->
            Util.Codec.W.u8 w (Char.code 'L');
            Util.Codec.W.varint w lv_client)
          ()
    in
    let rq_id = 0x4c000000 lor lv_client in
    let rq =
      { Message.rq_client = 0; rq_id; rq_op = op; rq_readonly = false; rq_timestamp = 0.0 }
    in
    let d = Message.request_digest rq in
    Hashtbl.replace t.bodies d rq;
    (match Log.find t.log (t.last_executed + 1) with
    | Some e when List.mem d e.missing_bodies -> try_execute t
    | Some _ | None -> ());
    if is_primary t then begin
      if not (Hashtbl.mem t.in_flight (0, rq_id)) then begin
        Hashtbl.replace t.in_flight (0, rq_id) 0;
        Queue.push rq t.pending;
        try_emit_pre_prepare t
      end
    end
    else begin
      if not (Hashtbl.mem t.waiting (0, rq_id)) then begin
        Hashtbl.replace t.waiting (0, rq_id) (now t);
        arm_watchdog t
      end
    end
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                            *)

and dispatch t ~src (msg : Message.t) =
  match msg.payload with
  | Message.Request_msg rq ->
    let extra = if t.cfg.dynamic_clients then t.costs.log_bookkeeping else 0.0 in
    charge t extra (fun () -> handle_request t ~src rq)
  | Message.Body { b_request } -> handle_request t ~src b_request
  | Message.Pre_prepare pp -> handle_pre_prepare t ~src (pp.pp_view, pp.pp_seq, pp.pp_batch, pp.pp_nondet)
  | Message.Prepare p -> handle_prepare t ~src (p.p_view, p.p_seq, p.p_digest)
  | Message.Commit c -> handle_commit t ~src (c.c_view, c.c_seq, c.c_digest)
  | Message.Checkpoint_msg c ->
    record_ckpt_vote t ~seq:c.ck_seq ~replica:c.ck_replica ~digest:c.ck_digest;
    check_ckpt_stable t c.ck_seq
  | Message.View_change _ -> handle_view_change t ~src msg.payload
  | Message.New_view nv -> handle_new_view t ~src (nv.nv_view, nv.nv_pre_prepares)
  | Message.Session_key sk ->
    if sk.sk_target = t.id then install_session_key t ~addr:sk.sk_sender sk.sk_key_box
  | Message.Key_request kq ->
    (* A restarted peer lost the key we chose for it; re-send immediately
       (the signed request was verified by check_auth). *)
    if kq.kq_replica = src && src < t.cfg.n && src <> t.id then send_session_key t src
  | Message.Join_request j -> handle_join_request t ~src (j.j_addr, j.j_pubkey, j.j_nonce)
  | Message.Join_response jr ->
    handle_join_response t ~src (jr.jr_addr, jr.jr_proof, jr.jr_pubkey, jr.jr_idbuf)
  | Message.Leave_msg l -> handle_leave t ~src l.lv_client
  | Message.Fetch_meta f -> handle_fetch_meta t ~src f.fm_seq
  | Message.State_meta s -> handle_state_meta t ~src (s.sm_seq, s.sm_leaves)
  | Message.Fetch_pages f -> handle_fetch_pages t ~src (f.fp_seq, f.fp_pages)
  | Message.State_pages s -> handle_state_pages t ~src (s.sp_seq, s.sp_pages)
  | Message.Fetch_body f -> begin
    match Hashtbl.find_opt t.bodies f.fb_digest with
    | Some rq -> send_to t ~dst:src (Message.Body { b_request = rq })
    | None -> ()
  end
  | Message.Fetch_entry f -> handle_fetch_entry t ~src f.fe_seq
  | Message.Entry e -> handle_entry t ~src (e.en_seq, e.en_view, e.en_batch, e.en_nondet)
  | Message.Status st -> handle_status t ~src (st.st_view, st.st_last_exec)
  | Message.Reply _ | Message.Join_challenge _ | Message.Join_reply _ ->
    (* Client-bound messages; a replica ignores them. *)
    ()

and on_datagram t ~src wire =
  if t.alive then begin
    charge t (recv_cost t (String.length wire)) (fun () ->
        match Message.decode wire with
        | None -> t.n_auth_fail <- t.n_auth_fail + 1
        | Some msg ->
          let cost, ok = check_auth t ~src msg in
          charge t cost (fun () ->
              if ok then dispatch t ~src msg
              else t.n_auth_fail <- t.n_auth_fail + 1))
  end

(* ------------------------------------------------------------------ *)
(* Construction.                                                        *)

let mid_partition_pages = 4

let create ~cfg ~costs ~engine ~net ~id ~signer ~registry ~service:service_spec ?threshold () =
  let rng = Util.Rng.split (Simnet.Engine.rng engine) in
  let mid_pages = mid_partition_pages in
  let num_pages = mid_pages + service_spec.Service.app_pages in
  let pages =
    Statemgr.Pages.create ~page_size:service_spec.Service.page_size ~num_pages ()
  in
  let merkle = Statemgr.Merkle.build pages in
  let membership = Membership.create ~max_clients:cfg.Config.max_clients ~dynamic:cfg.dynamic_clients in
  if not cfg.dynamic_clients then Membership.populate_static membership registry.reg_static_clients;
  let service = service_spec.Service.make pages ~first_page:mid_pages in
  let t =
    {
      cfg;
      costs;
      engine;
      net;
      cpu = Simnet.Cpu.create ~cores:cfg.Config.cores engine;
      id;
      rng;
      signer;
      registry;
      threshold;
      service_spec;
      service;
      mid_pages;
      pages;
      merkle;
      membership;
      log = Log.create ();
      keys_i_chose = Hashtbl.create 16;
      keys_peers_chose = Hashtbl.create 16;
      keys_peers_prev = Hashtbl.create 16;
      bodies = Hashtbl.create 256;
      pending = Queue.create ();
      in_flight = Hashtbl.create 64;
      ro_replies = Util.Lru.create ~capacity:(Int.max 1 cfg.max_clients);
      waiting = Hashtbl.create 64;
      body_requests = Hashtbl.create 16;
      entry_requests = Hashtbl.create 16;
      checkpoints = Hashtbl.create 8;
      pending_ckpts = Hashtbl.create 4;
      ckpt_votes = Hashtbl.create 8;
      vc_msgs = Hashtbl.create 4;
      view = 0;
      seq_counter = 0;
      last_executed = 0;
      last_committed_exec = 0;
      undo = None;
      stable_ckpt = 0;
      in_view_change = false;
      vc_target = 0;
      watchdog = None;
      rebroadcast = None;
      status_timer = None;
      refresh_timer = None;
      key_epoch = 0;
      transfer = None;
      disk = None;
      last_new_view = None;
      peer_views = Array.make cfg.Config.n 0;
      pp_scheduled = false;
      recovering = false;
      recovery_done = None;
      alive = true;
      n_exec = 0;
      n_vc = 0;
      n_transfers = 0;
      n_auth_fail = 0;
      n_nondet_reject = 0;
      n_ckpt = 0;
      n_undo = 0;
      vc_attempts = 0;
      n_demotions = 0;
      n_demotion_transfers = 0;
      n_rejoin_transfers = 0;
      n_pages_fetched = 0;
      n_pages_full = 0;
      n_spec_exec = 0;
      n_rollbacks = 0;
      record_journal = false;
      exec_journal = [];
    }
  in
  sync_membership_to_pages t;
  Statemgr.Merkle.update t.merkle t.pages (Statemgr.Pages.dirty t.pages);
  Statemgr.Pages.clear_dirty t.pages;
  (* Sequence 0 is the genesis checkpoint. *)
  t.n_ckpt <- t.n_ckpt + 1;
  Hashtbl.replace t.checkpoints 0 (Statemgr.Checkpoint.take ~seqno:0 t.pages t.merkle);
  Simnet.Net.register net id (fun ~src wire -> on_datagram t ~src wire);
  Simnet.Net.set_backlog_probe net id (fun () -> Simnet.Cpu.queue_length t.cpu);
  if cfg.status_period > 0.0 then
    t.status_timer <-
      Some
        (Simnet.Engine.periodic engine ~interval:cfg.status_period (fun () ->
             if t.alive then
               multicast_replicas t
                 (Message.Status
                    { st_replica = t.id; st_view = t.view; st_last_exec = t.last_executed })));
  if cfg.use_macs then begin
    Simnet.Engine.schedule engine ~delay:0.0 (fun () -> broadcast_session_keys t);
    t.rebroadcast <-
      Some
        (Simnet.Engine.periodic engine ~interval:cfg.authenticator_rebroadcast (fun () ->
             if t.alive then broadcast_session_keys t))
  end;
  if cfg.use_macs && cfg.key_refresh_period > 0.0 then
    t.refresh_timer <-
      Some
        (Simnet.Engine.periodic engine ~interval:cfg.key_refresh_period (fun () ->
             if t.alive then refresh_session_keys t));
  t

let shutdown t =
  t.alive <- false;
  Simnet.Net.unregister t.net t.id;
  (match t.watchdog with Some timer -> Simnet.Engine.cancel timer | None -> ());
  (match t.rebroadcast with Some timer -> Simnet.Engine.cancel timer | None -> ());
  (match t.status_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
  (match t.refresh_timer with Some timer -> Simnet.Engine.cancel timer | None -> ())

(* Crash: kill the process, keeping only what survives on disk — the
   newest checkpoint at or below the stable point. Everything else (log,
   votes, session keys, caches, tallies, speculative state) is volatile
   and dies here. *)
let crash t =
  (match
     List.fold_left
       (fun acc s -> if s > 0 && s <= t.stable_ckpt then Some s else acc)
       None
       (Util.Sorted_tbl.keys t.checkpoints)
   with
  | Some seq -> (
    match Hashtbl.find_opt t.checkpoints seq with
    | Some ck -> t.disk <- Some ck
    | None -> ())
  | None -> ());
  if t.alive then shutdown t

let restart t =
  crash t;
  let fresh =
    create ~cfg:t.cfg ~costs:t.costs ~engine:t.engine ~net:t.net ~id:t.id ~signer:t.signer
      ~registry:t.registry ~service:t.service_spec ?threshold:t.threshold ()
  in
  fresh.recovering <- true;
  fresh.disk <- t.disk;
  (match t.disk with
  | Some ck when Statemgr.Checkpoint.seqno ck > 0 ->
    (* Reload the persisted checkpoint in place: only pages that differ
       from the genesis image are restored, the Merkle tree follows, and
       the rejoin transfer below then diffs against *this* state —
       fetching only pages that diverged after the crash. *)
    let seq = Statemgr.Checkpoint.seqno ck in
    Statemgr.Merkle.update fresh.merkle fresh.pages (Statemgr.Pages.dirty fresh.pages);
    Statemgr.Checkpoint.restore ck fresh.pages fresh.merkle;
    load_membership_from_pages fresh;
    fresh.last_executed <- seq;
    fresh.last_committed_exec <- seq;
    fresh.seq_counter <- seq;
    fresh.stable_ckpt <- seq;
    Log.set_low_watermark fresh.log seq;
    (* Re-register the reloaded state as our own checkpoint so we can
       vote for it and serve transfers from it. *)
    let own = Statemgr.Checkpoint.take ~seqno:seq fresh.pages fresh.merkle in
    fresh.n_ckpt <- fresh.n_ckpt + 1;
    Hashtbl.replace fresh.checkpoints seq own
  | Some _ | None -> ());
  (* §2.3: without the gated remedy, recovery stalls until the peers'
     periodic key rebroadcast; with it, a signed Key_request makes them
     re-send their session keys immediately. *)
  if t.cfg.use_macs && t.cfg.rejoin_key_refresh then
    Simnet.Engine.schedule t.engine ~delay:0.0 (fun () ->
        if fresh.alive then request_session_keys fresh);
  (* Catch up from peers in ring order (Merkle-diff against the reloaded
     disk state). *)
  Simnet.Engine.schedule t.engine ~delay:0.001 (fun () ->
      if fresh.alive && fresh.transfer = None then start_rejoin_transfer fresh ~attempt:0);
  fresh
