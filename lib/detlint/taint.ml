(* trustlint: an intraprocedural taint pass over the Parsetree.

   The invariant being checked (PAPER.md §2.3–§2.5): nothing decoded off
   the wire may influence replica state, quorum tallies, or reply caches
   until it has passed a cryptographic check. Values returned by a
   *source* (see {!Trust}) carry a taint origin; a *sanitizer* call
   returns a boolean whose truth vouches for the origins of the values
   it inspected; a *sink* reached by an origin that no dominating
   sanitizer verdict has vouched for is a finding.

   The analysis is deliberately modest — a lint, not a verifier:

   - abstract values carry a taint set, a verdict set ("if this bool is
     true, these origins were checked"), tuple structure, and local
     function values;
   - taint propagates through lets, tuples/records/constructors,
     pattern matches, pipelines, and closures;
   - [if]/[when] on a verdict-carrying condition kills the vouched
     origins in the guarded branch ([not], [&&], [||] handled);
   - calls to functions bound in the same compilation unit are inlined
     (bounded depth, recursion guard), which is what tracks the repo's
     dominant idiom — [let cost, ok = check_auth t ~src msg in ... if ok
     then ...] returning the verdict inside a tuple;
   - function arguments of unknown calls (combinators, schedulers) are
     invoked once with their parameters bound to the sibling arguments'
     taint, so sinks inside [List.iter]/[Engine.schedule] callbacks are
     still seen, and a sanitizing predicate's verdict escapes through
     [List.for_all]. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Origins and abstract values.                                         *)

module Origin = struct
  type t = { o_line : int; o_col : int; o_desc : string }

  let compare a b =
    match Int.compare a.o_line b.o_line with
    | 0 -> (
      match Int.compare a.o_col b.o_col with
      | 0 -> String.compare a.o_desc b.o_desc
      | c -> c)
    | c -> c
end

module Oset = Set.Make (Origin)
module Smap = Map.Make (String)

type fnbody = Fn_expr of expression | Fn_cases of case list

type fninfo = {
  fn_params : (Asttypes.arg_label * pattern) list;
  fn_body : fnbody;
  fn_id : string;  (* location-derived identity for the recursion guard *)
}

type absval = {
  taint : Oset.t;
  verdict : Oset.t;  (* origins vouched-for when this boolean is true *)
  verdict_neg : Oset.t;  (* origins vouched-for when it is false *)
  parts : absval list option;  (* tuple / constructor-argument structure *)
  fn : fninfo option;
  const_bool : bool option;  (* literal true/false, for precise joins *)
}

let clean =
  {
    taint = Oset.empty;
    verdict = Oset.empty;
    verdict_neg = Oset.empty;
    parts = None;
    fn = None;
    const_bool = None;
  }

(* Every origin reachable through a value, tuple structure included. *)
let rec deep_taint v =
  match v.parts with
  | None -> v.taint
  | Some ps -> List.fold_left (fun acc p -> Oset.union acc (deep_taint p)) v.taint ps

let rec deep_verdict v =
  match v.parts with
  | None -> v.verdict
  | Some ps -> List.fold_left (fun acc p -> Oset.union acc (deep_verdict p)) v.verdict ps

(* Join two branch results. Taint unions. Verdicts intersect — a joined
   boolean only vouches for what every way of being true vouches for —
   except that a literal [false] branch vouches vacuously (it is never
   true), so it defers to the other side; dually for [verdict_neg]. *)
let rec join a b =
  let verdict =
    if a.const_bool = Some false then b.verdict
    else if b.const_bool = Some false then a.verdict
    else Oset.inter a.verdict b.verdict
  in
  let verdict_neg =
    if a.const_bool = Some true then b.verdict_neg
    else if b.const_bool = Some true then a.verdict_neg
    else Oset.inter a.verdict_neg b.verdict_neg
  in
  let parts =
    match (a.parts, b.parts) with
    | Some xs, Some ys when List.length xs = List.length ys -> Some (List.map2 join xs ys)
    | Some xs, None when Oset.is_empty b.taint -> Some xs
    | None, Some ys when Oset.is_empty a.taint -> Some ys
    | _ -> None
  in
  {
    taint = Oset.union a.taint b.taint;
    verdict;
    verdict_neg;
    parts;
    fn = (match a.fn with Some _ -> a.fn | None -> b.fn);
    const_bool = (if a.const_bool = b.const_bool then a.const_bool else None);
  }

let join_all = function [] -> clean | v :: vs -> List.fold_left join v vs

(* A data-flavoured copy: what a value contributes when absorbed into a
   larger structure (drops verdict/fn/parts). *)
let as_data v = { clean with taint = deep_taint v }

(* ------------------------------------------------------------------ *)
(* Analysis context.                                                    *)

type ctx = {
  rel : string;
  lines : string array;
  specs : Trust.spec list;
  mutable out : Finding.t list;
  mutable allows : string list list;  (* active suppression-attribute stack *)
  mutable stack : string list;  (* function ids currently being inlined *)
  mutable depth : int;
}

type env = { vars : absval Smap.t; killed : Oset.t }

let max_inline_depth = 6

let snippet_at ctx line =
  if line >= 1 && line <= Array.length ctx.lines then String.trim ctx.lines.(line - 1) else ""

(* Suppression attributes: [@trustlint.allow] (optionally with a
   justification string) suppresses tainted_sink; [@detlint.allow rule]
   keeps working for any rule, trustlint's included. *)
let allow_attr_rules (attrs : attributes) =
  List.concat_map
    (fun (a : attribute) ->
      let payload_names () =
        match a.attr_payload with
        | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] ->
          let rec names e =
            match e.pexp_desc with
            | Pexp_ident { txt = Longident.Lident s; _ } -> [ s ]
            | Pexp_constant (Pconst_string (s, _, _)) -> [ s ]
            | Pexp_apply (f, args) -> names f @ List.concat_map (fun (_, a) -> names a) args
            | Pexp_tuple es -> List.concat_map names es
            | _ -> []
          in
          names e
        | _ -> []
      in
      match a.attr_name.txt with
      | "detlint.allow" -> payload_names ()
      | "trustlint.allow" ->
        (* The payload, if any, is the justification naming the covering
           check — documentation, not a rule selector. *)
        [ Finding.rule_name Finding.Tainted_sink ]
      | _ -> [])
    attrs

let with_allows ctx rules f =
  if rules = [] then f ()
  else begin
    ctx.allows <- rules :: ctx.allows;
    Fun.protect ~finally:(fun () -> ctx.allows <- List.tl ctx.allows) f
  end

let emit ctx (loc : Location.t) ~(origin : Origin.t) ~sink_desc =
  let name = Finding.rule_name Finding.Tainted_sink in
  if not (List.exists (List.mem name) ctx.allows) then begin
    let p = loc.loc_start in
    let line = p.pos_lnum and col = p.pos_cnum - p.pos_bol in
    ctx.out <-
      {
        Finding.rule = Finding.Tainted_sink;
        file = ctx.rel;
        line;
        col;
        snippet = snippet_at ctx line;
        message =
          Printf.sprintf
            "wire-tainted value (%s, line %d) reaches %s without crossing a sanitizer; verify \
             it first, or annotate the covering check with [@trustlint.allow \"...\"]"
            origin.Origin.o_desc origin.Origin.o_line sink_desc;
        origin = Some (origin.Origin.o_line, origin.Origin.o_col);
      }
      :: ctx.out
  end

let check_sink ctx env (loc : Location.t) ~sink_desc v =
  let live = Oset.diff (deep_taint v) env.killed in
  Oset.iter (fun origin -> emit ctx loc ~origin ~sink_desc) live

(* ------------------------------------------------------------------ *)
(* Patterns.                                                            *)

let rec bind_pat env (p : pattern) (v : absval) =
  match p.ppat_desc with
  | Ppat_var s -> { env with vars = Smap.add s.txt v env.vars }
  | Ppat_alias (p, s) -> bind_pat { env with vars = Smap.add s.txt v env.vars } p v
  | Ppat_tuple ps -> (
    match v.parts with
    | Some parts when List.length parts = List.length ps ->
      List.fold_left2 bind_pat env ps parts
    | _ -> List.fold_left (fun env p -> bind_pat env p (as_data v)) env ps)
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) -> (
    match v.parts with
    | Some [ inner ] -> bind_pat env p inner
    | _ -> bind_pat env p (as_data v))
  | Ppat_record (fields, _) ->
    List.fold_left (fun env (_, p) -> bind_pat env p (as_data v)) env fields
  | Ppat_or (a, b) -> bind_pat (bind_pat env a v) b v
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_exception p | Ppat_open (_, p) -> bind_pat env p v
  | Ppat_array ps -> List.fold_left (fun env p -> bind_pat env p (as_data v)) env ps
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Small syntactic helpers.                                             *)

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply (a, b) -> flatten_lid a @ flatten_lid b

let rec collect_params acc (e : expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, _, pat, body) -> collect_params ((lbl, pat) :: acc) body
  | Pexp_newtype (_, body) -> collect_params acc body
  | _ -> (List.rev acc, e)

let fn_id_of (e : expression) =
  let p = e.pexp_loc.loc_start in
  Printf.sprintf "%s:%d:%d" p.pos_fname p.pos_lnum p.pos_cnum

let fninfo_of (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ ->
    let params, body = collect_params [] e in
    Some { fn_params = params; fn_body = Fn_expr body; fn_id = fn_id_of e }
  | Pexp_function cases ->
    Some
      {
        fn_params = [ (Asttypes.Nolabel, { ppat_desc = Ppat_any; ppat_loc = e.pexp_loc;
                                           ppat_loc_stack = []; ppat_attributes = [] }) ];
        fn_body = Fn_cases cases;
        fn_id = fn_id_of e;
      }
  | _ -> None

(* Combinators whose result is the kept subset of their input: a
   sanitizing predicate discharges the element taint of what survives. *)
let filtering_combinators = [ "filter"; "find"; "find_opt"; "filter_map"; "partition" ]

(* ------------------------------------------------------------------ *)
(* Expressions.                                                         *)

let rec eval ctx env (e : expression) : absval =
  with_allows_v ctx (allow_attr_rules e.pexp_attributes) (fun () -> eval_desc ctx env e)

and with_allows_v ctx rules f =
  if rules = [] then f ()
  else begin
    ctx.allows <- rules :: ctx.allows;
    Fun.protect ~finally:(fun () -> ctx.allows <- List.tl ctx.allows) f
  end

and eval_desc ctx env (e : expression) : absval =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident s; _ } -> (
    match Smap.find_opt s env.vars with Some v -> v | None -> clean)
  | Pexp_ident _ -> clean
  | Pexp_constant _ -> clean
  | Pexp_construct ({ txt = Longident.Lident "true"; _ }, None) ->
    { clean with const_bool = Some true }
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
    { clean with const_bool = Some false }
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> clean
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) ->
    let v = eval ctx env arg in
    analyze_if_fn ctx env v;
    { clean with taint = v.taint; parts = Some [ v ] }
  | Pexp_tuple es ->
    let vs = List.map (eval ctx env) es in
    { clean with parts = Some vs }
  | Pexp_record (fields, base) ->
    (* A function stored in a record field (a service's [execute], a
       codec's hook) escapes this analysis — give its body one pass with
       clean parameters so sources *inside* it still reach sinks. *)
    let vs = List.map (fun (_, fe) -> eval ctx env fe) fields in
    List.iter (analyze_if_fn ctx env) vs;
    let bv = match base with Some b -> [ eval ctx env b ] | None -> [] in
    { clean with taint = List.fold_left (fun acc v -> Oset.union acc (deep_taint v)) Oset.empty (vs @ bv) }
  | Pexp_field (r, _) ->
    let v = eval ctx env r in
    { clean with taint = deep_taint v }
  | Pexp_setfield (r, fld, value) ->
    ignore (eval ctx env r);
    let v = eval ctx env value in
    check_sink ctx env e.pexp_loc
      ~sink_desc:(Printf.sprintf "a state write (%s <- ...)" (String.concat "." (flatten_lid fld.txt)))
      v;
    clean
  | Pexp_array es ->
    let vs = List.map (eval ctx env) es in
    { clean with taint = List.fold_left (fun acc v -> Oset.union acc (deep_taint v)) Oset.empty vs }
  | Pexp_let (_, vbs, body) ->
    let env' =
      List.fold_left
        (fun acc vb ->
          let v =
            with_allows_v ctx (allow_attr_rules vb.pvb_attributes) (fun () ->
                eval ctx env vb.pvb_expr)
          in
          bind_pat acc vb.pvb_pat v)
        env vbs
    in
    eval ctx env' body
  | Pexp_fun _ | Pexp_function _ -> { clean with fn = fninfo_of e }
  | Pexp_apply (f, args) -> eval_apply ctx env e f args
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let sv = eval ctx env scrut in
    let results =
      List.map
        (fun (c : case) ->
          let env' = bind_pat env c.pc_lhs sv in
          let env' =
            match c.pc_guard with
            | None -> env'
            | Some g ->
              let gv = eval ctx env' g in
              { env' with killed = Oset.union env'.killed gv.verdict }
          in
          with_allows_v ctx (allow_attr_rules c.pc_rhs.pexp_attributes) (fun () ->
              eval ctx env' c.pc_rhs))
        cases
    in
    join_all results
  | Pexp_ifthenelse (c, t, f) ->
    let cv = eval ctx env c in
    let tv = eval ctx { env with killed = Oset.union env.killed cv.verdict } t in
    let fv =
      match f with
      | Some f -> eval ctx { env with killed = Oset.union env.killed cv.verdict_neg } f
      | None -> clean
    in
    join tv fv
  | Pexp_sequence (a, b) ->
    ignore (eval ctx env a);
    eval ctx env b
  | Pexp_while (c, body) ->
    ignore (eval ctx env c);
    ignore (eval ctx env body);
    clean
  | Pexp_for (pat, lo, hi, _, body) ->
    ignore (eval ctx env lo);
    ignore (eval ctx env hi);
    ignore (eval ctx (bind_pat env pat clean) body);
    clean
  | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) | Pexp_assert inner
  | Pexp_lazy inner | Pexp_newtype (_, inner) | Pexp_open (_, inner) ->
    eval ctx env inner
  | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) -> eval ctx env body
  | _ -> clean

(* Invoke a function value: bind parameters to argument values and
   evaluate the body, under the caller's env (free variables and killed
   origins are the caller's — inlining, not a summary). *)
and invoke ctx env (fi : fninfo) (args : (Asttypes.arg_label * absval) list) : absval =
  if List.mem fi.fn_id ctx.stack || ctx.depth >= max_inline_depth then clean
  else begin
    ctx.stack <- fi.fn_id :: ctx.stack;
    ctx.depth <- ctx.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        ctx.stack <- List.tl ctx.stack;
        ctx.depth <- ctx.depth - 1)
      (fun () ->
        (* Match labelled arguments to labelled parameters; the rest
           positionally. *)
        let labelled, positional =
          List.partition (fun (l, _) -> l <> Asttypes.Nolabel) args
        in
        let label_name = function
          | Asttypes.Labelled s | Asttypes.Optional s -> Some s
          | Asttypes.Nolabel -> None
        in
        let remaining = ref positional in
        let env' =
          List.fold_left
            (fun acc (plbl, pat) ->
              let v =
                match label_name plbl with
                | Some name -> (
                  match
                    List.find_opt
                      (fun (albl, _) -> label_name albl = Some name)
                      labelled
                  with
                  | Some (_, v) -> v
                  | None -> clean)
                | None -> (
                  match !remaining with
                  | (_, v) :: rest ->
                    remaining := rest;
                    v
                  | [] -> clean)
              in
              bind_pat acc pat v)
            env fi.fn_params
        in
        match fi.fn_body with
        | Fn_expr body -> eval ctx env' body
        | Fn_cases cases ->
          (* [function] — the single implicit argument is the scrutinee. *)
          let sv = match args with (_, v) :: _ -> v | [] -> clean in
          join_all
            (List.map
               (fun (c : case) ->
                 let env'' = bind_pat env' c.pc_lhs sv in
                 let env'' =
                   match c.pc_guard with
                   | None -> env''
                   | Some g ->
                     let gv = eval ctx env'' g in
                     { env'' with killed = Oset.union env''.killed gv.verdict }
                 in
                 eval ctx env'' c.pc_rhs)
               cases))
  end

(* Give a function value that is about to escape the analysis (stored in
   a record field or constructor) one pass with clean parameters, so a
   source→sink flow wholly inside its body is still reported. Bounded
   unrolling handles staged constructors that return further closures. *)
and analyze_if_fn ctx env v =
  let rec go n v =
    match v.fn with
    | Some fi when n < 4 -> go (n + 1) (invoke ctx env fi [])
    | _ -> ()
  in
  go 0 v

and eval_apply ctx env (e : expression) (f : expression) args : absval =
  let eval_args () = List.map (fun (l, a) -> (l, eval ctx env a)) args in
  match f.pexp_desc with
  | Pexp_ident { txt = Longident.Lident "|>"; _ } -> (
    match args with
    | [ (_, x); (_, g) ] -> eval_apply ctx env e g [ (Asttypes.Nolabel, x) ]
    | _ -> generic_apply ctx env e (flatten_lid (Longident.Lident "|>")) (eval_args ()))
  | Pexp_ident { txt = Longident.Lident "@@"; _ } -> (
    match args with
    | [ (_, g); (_, x) ] -> eval_apply ctx env e g [ (Asttypes.Nolabel, x) ]
    | _ -> generic_apply ctx env e [ "@@" ] (eval_args ()))
  | Pexp_ident { txt = Longident.Lident "not"; _ } -> (
    match eval_args () with
    | [ (_, v) ] ->
      { clean with verdict = v.verdict_neg; verdict_neg = v.verdict;
        const_bool = (match v.const_bool with Some b -> Some (not b) | None -> None) }
    | vs -> join_all (List.map snd vs))
  | Pexp_ident { txt = Longident.Lident "&&"; _ } -> (
    match eval_args () with
    | [ (_, a); (_, b) ] ->
      { clean with verdict = Oset.union a.verdict b.verdict }
    | vs -> join_all (List.map snd vs))
  | Pexp_ident { txt = Longident.Lident "||"; _ } -> (
    match eval_args () with
    | [ (_, a); (_, b) ] ->
      { clean with verdict_neg = Oset.union a.verdict_neg b.verdict_neg }
    | vs -> join_all (List.map snd vs))
  | Pexp_ident { txt = Longident.Lident ":="; _ } -> (
    let vs = eval_args () in
    match vs with
    | [ _; (_, v) ] ->
      check_sink ctx env e.pexp_loc ~sink_desc:"a reference-cell state write (:=)" v;
      clean
    | _ -> join_all (List.map snd vs))
  | Pexp_ident lid -> dispatch_call ctx env e (flatten_lid lid.txt) args
  | Pexp_field (r, fld) ->
    (* A function stored in a record field, e.g. [instance.Service.execute
       ~op] — a declarable sink via an attribute on the label. *)
    ignore (eval ctx env r);
    dispatch_call ctx env e (flatten_lid fld.txt) args
  | Pexp_fun _ | Pexp_function _ -> (
    match fninfo_of f with
    | Some fi -> invoke ctx env fi (List.map (fun (l, a) -> (l, eval ctx env a)) args)
    | None -> join_all (List.map snd (eval_args ())))
  | _ ->
    let fv = eval ctx env f in
    let vs = eval_args () in
    (match fv.fn with
    | Some fi -> invoke ctx env fi vs
    | None -> join_all (List.map snd vs))

and dispatch_call ctx env (e : expression) path args : absval =
  let argvals = List.map (fun (l, a) -> (l, eval ctx env a)) args in
  let arg_taint =
    List.fold_left (fun acc (_, v) -> Oset.union acc (deep_taint v)) Oset.empty argvals
  in
  match Trust.find_spec ctx.specs ~rel:ctx.rel ~role:Trust.Source path with
  | Some spec ->
    let p = e.pexp_loc.loc_start in
    let origin =
      { Origin.o_line = p.pos_lnum; o_col = p.pos_cnum - p.pos_bol; o_desc = spec.Trust.sp_desc }
    in
    { clean with taint = Oset.add origin arg_taint }
  | None -> (
    match Trust.find_spec ctx.specs ~rel:ctx.rel ~role:Trust.Sanitizer path with
    | Some _ ->
      let checked =
        List.fold_left
          (fun acc (_, v) -> Oset.union acc (Oset.union (deep_taint v) (deep_verdict v)))
          Oset.empty argvals
      in
      (* A locally-defined function shadowing a sanitizer name still gets
         inlined so tuple-shaped verdicts (cost, ok) keep their
         structure; the spec verdict is layered on top. *)
      let inlined = try_inline ctx env path argvals in
      let base = match inlined with Some v -> v | None -> clean in
      let add_verdict v = { v with verdict = Oset.union v.verdict checked } in
      (match base.parts with
      | Some ps ->
        (* Vouch through the boolean component(s) of a returned tuple. *)
        { base with parts = Some (List.map add_verdict ps) ; verdict = Oset.union base.verdict checked }
      | None -> add_verdict base)
    | None -> (
      match Trust.find_spec ctx.specs ~rel:ctx.rel ~role:Trust.Sink path with
      | Some spec ->
        List.iter
          (fun (_, v) ->
            check_sink ctx env e.pexp_loc
              ~sink_desc:(Printf.sprintf "%s (%s)" spec.Trust.sp_desc
                            (String.concat "." spec.Trust.sp_path))
              v)
          argvals;
        clean
      | None -> (
        match try_inline ctx env path argvals with
        | Some v -> v
        | None -> generic_apply ctx env e path argvals)))

(* Calls to functions bound in this compilation unit are inlined. *)
and try_inline ctx env path argvals =
  match path with
  | [ name ] -> (
    match Smap.find_opt name env.vars with
    | Some { fn = Some fi; _ } -> Some (invoke ctx env fi argvals)
    | _ -> None)
  | _ -> None

(* Unknown callee: join argument taints/verdicts; invoke any function
   arguments once with parameters bound to the siblings' taint, so
   callback bodies are analyzed and a predicate's verdict escapes. *)
and generic_apply ctx env (_e : expression) path argvals =
  let data_args = List.filter (fun (_, v) -> v.fn = None) argvals in
  let sibling_taint =
    List.fold_left (fun acc (_, v) -> Oset.union acc (deep_taint v)) Oset.empty data_args
  in
  let element = { clean with taint = sibling_taint } in
  let callback_results =
    List.filter_map
      (fun (_, v) ->
        match v.fn with
        | Some fi ->
          Some (invoke ctx env fi [ (Asttypes.Nolabel, element); (Asttypes.Nolabel, element) ])
        | None -> None)
      argvals
  in
  let cb = join_all callback_results in
  let filtering =
    match List.rev path with last :: _ -> List.mem last filtering_combinators | [] -> false
  in
  let taint =
    if filtering then Oset.diff sibling_taint cb.verdict else Oset.union sibling_taint cb.taint
  in
  {
    clean with
    taint;
    verdict =
      List.fold_left (fun acc (_, v) -> Oset.union acc v.verdict) cb.verdict data_args;
  }

(* ------------------------------------------------------------------ *)
(* Structures.                                                          *)

let rec process_structure ctx env (str : structure) =
  (* First pass: build the module-level environment (function values are
     captured unanalyzed), then analyze every function body directly with
     clean parameters. Handlers called with pre-decoded parameters are
     covered by inlining from the functions that decode. *)
  let env =
    List.fold_left
      (fun env (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc vb ->
              let v =
                match fninfo_of vb.pvb_expr with
                | Some fi -> { clean with fn = Some fi }
                | None -> clean  (* module-level data: analyzed below *)
              in
              bind_pat acc vb.pvb_pat v)
            env vbs
        | _ -> env)
      env str
  in
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            with_allows ctx (allow_attr_rules vb.pvb_attributes) (fun () ->
                match fninfo_of vb.pvb_expr with
                | Some fi -> ignore (invoke ctx env fi [])
                | None -> ignore (eval ctx env vb.pvb_expr)))
          vbs
      | Pstr_eval (e, attrs) ->
        with_allows ctx (allow_attr_rules attrs) (fun () -> ignore (eval ctx env e))
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
        process_structure ctx env sub
      | _ -> ())
    str

let lint_structure ~rel ~lines ~specs (str : structure) =
  let ctx = { rel; lines; specs; out = []; allows = []; stack = []; depth = 0 } in
  process_structure ctx { vars = Smap.empty; killed = Oset.empty } str;
  List.sort_uniq Finding.compare ctx.out
