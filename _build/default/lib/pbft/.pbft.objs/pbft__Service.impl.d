lib/pbft/service.ml: List Option Printf Session_state Statemgr String Types Util
