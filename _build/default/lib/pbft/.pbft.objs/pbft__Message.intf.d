lib/pbft/message.mli: Crypto Types
