(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** 32-byte authentication tag. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-shape comparison of the expected tag against [tag]. *)
