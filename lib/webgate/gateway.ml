open Pbft.Types

let bridge_addr replica = 5000 + replica

(* JSON conversion costs: parsing/printing text is pricier than the
   binary codec; charged wherever a frame crosses the seam. *)
let json_cost bytes = 15e-6 +. (40e-9 *. float_of_int bytes)

(* --- JSON <-> native payloads --- *)

let request_of_json j =
  {
    Pbft.Message.rq_client = Json.to_int_exn (Json.member "client" j);
    rq_id = Json.to_int_exn (Json.member "id" j);
    rq_op = Json.bytes_exn (Json.member "op" j);
    rq_readonly = Json.to_bool_exn (Json.member "readonly" j);
    rq_timestamp = Json.to_float_exn (Json.member "ts" j);
  }

let json_of_request (rq : Pbft.Message.request) =
  Json.Obj
    [
      ("type", Json.Str "request");
      ("client", Json.Num (float_of_int rq.rq_client));
      ("id", Json.Num (float_of_int rq.rq_id));
      ("op", Json.of_bytes rq.rq_op);
      ("readonly", Json.Bool rq.rq_readonly);
      ("ts", Json.Num rq.rq_timestamp);
    ]

(* Decode one browser JSON frame into a native payload. *)
let payload_of_frame j =
  match Json.to_string_exn (Json.member "type" j) with
  | "request" -> Pbft.Message.Request_msg (request_of_json j)
  | "join-request" ->
    Pbft.Message.Join_request
      {
        j_addr = Json.to_int_exn (Json.member "addr" j);
        j_pubkey = Json.bytes_exn (Json.member "pubkey" j);
        j_nonce = Json.to_string_exn (Json.member "nonce" j);
      }
  | "join-response" ->
    Pbft.Message.Join_response
      {
        jr_addr = Json.to_int_exn (Json.member "addr" j);
        jr_proof = Json.bytes_exn (Json.member "proof" j);
        jr_pubkey = Json.bytes_exn (Json.member "pubkey" j);
        jr_idbuf = Json.bytes_exn (Json.member "idbuf" j);
      }
  | "leave" -> Pbft.Message.Leave_msg { lv_client = Json.to_int_exn (Json.member "client" j) }
  | "session-key" ->
    Pbft.Message.Session_key
      {
        sk_sender = Json.to_int_exn (Json.member "sender" j);
        sk_target = Json.to_int_exn (Json.member "target" j);
        sk_key_box = Json.bytes_exn (Json.member "key" j);
      }
  | other -> raise (Json.Parse_error ("unknown frame type " ^ other))

(* Encode a native replica->client payload as the JSON the browser sees. *)
let frame_of_payload (p : Pbft.Message.payload) =
  match p with
  | Pbft.Message.Reply r ->
    Some
      (Json.Obj
         [
           ("type", Json.Str "reply");
           ("view", Json.Num (float_of_int r.r_view));
           ("client", Json.Num (float_of_int r.r_client));
           ("id", Json.Num (float_of_int r.r_id));
           ("replica", Json.Num (float_of_int r.r_replica));
           ("result", Json.of_bytes r.r_result);
           ("tentative", Json.Bool r.r_tentative);
         ])
  | Pbft.Message.Join_challenge jc ->
    Some
      (Json.Obj
         [
           ("type", Json.Str "join-challenge");
           ("replica", Json.Num (float_of_int jc.jc_replica));
           ("addr", Json.Num (float_of_int jc.jc_addr));
           ("nonce", Json.of_bytes jc.jc_nonce);
         ])
  | Pbft.Message.Join_reply jl ->
    Some
      (Json.Obj
         [
           ("type", Json.Str "join-reply");
           ("replica", Json.Num (float_of_int jl.jl_replica));
           ("client", Json.Num (float_of_int jl.jl_client));
           ("ok", Json.Bool jl.jl_ok);
         ])
  | _ -> None

(* --- bridge --- *)

module Bridge = struct
  type t = {
    net : Simnet.Net.t;
    cpu : Simnet.Cpu.t;
    replica : replica_id;
    mutable translated : int;
    mutable n_rejected : int;
    mutable alive : bool;
  }

  let attach ~cfg ~costs ~engine ~net ~replica =
    ignore cfg;
    ignore costs;
    let t =
      {
        net;
        cpu = Simnet.Cpu.create engine;
        replica;
        translated = 0;
        n_rejected = 0;
        alive = true;
      }
    in
    Simnet.Net.register net (bridge_addr replica) (fun ~src frame ->
        if t.alive then begin
          Simnet.Cpu.execute t.cpu ~cost:(json_cost (String.length frame)) (fun () ->
              match Json.parse frame with
              | exception Json.Parse_error _ -> t.n_rejected <- t.n_rejected + 1
              | j -> begin
                match
                  let payload = payload_of_frame j in
                  let auth =
                    match Json.member_opt "sig" j with
                    | Some s -> Pbft.Message.Signed (Json.bytes_exn s)
                    | None -> Pbft.Message.No_auth
                  in
                  Pbft.Message.encode { Pbft.Message.payload; auth }
                with
                | exception Json.Parse_error _ -> t.n_rejected <- t.n_rejected + 1
                | exception Not_found -> t.n_rejected <- t.n_rejected + 1
                | wire ->
                  t.translated <- t.translated + 1;
                  (* Local hop into the co-located replica, preserving the
                     browser as the datagram source. *)
                  Simnet.Net.send t.net ~label:"ws-bridged" ~src ~dst:t.replica wire
              end)
        end);
    t

  let frames_translated t = t.translated
  let rejected t = t.n_rejected

  let detach t =
    t.alive <- false;
    Simnet.Net.unregister t.net (bridge_addr t.replica)
end

(* --- browser --- *)

module Browser = struct
  type outstanding = {
    o_id : int;
    o_replies : (replica_id, string * bool) Hashtbl.t;
    o_counts : (string * bool, int) Hashtbl.t;
        (** per-(result, tentative) vote counts, maintained incrementally
            so each reply checks one key instead of recounting all *)
    o_callback : string -> unit;
    mutable o_timer : Simnet.Engine.timer option;
    o_frame : Json.t;  (** retransmitted on timeout *)
  }

  type join_state = {
    j_nonce : string;
    j_idbuf : string;
    j_challenges : (replica_id, string) Hashtbl.t;
    j_replies : (replica_id, client_id) Hashtbl.t;
    j_callback : client_id option -> unit;
    mutable j_responded : bool;
    mutable j_timer : Simnet.Engine.timer option;
  }

  type t = {
    cfg : Pbft.Config.t;
    costs : Pbft.Costmodel.t;
    engine : Simnet.Engine.t;
    net : Simnet.Net.t;
    cpu : Simnet.Cpu.t;
    rng : Util.Rng.t;
    baddr : int;
    signer : Crypto.Keychain.signer;
    registry : Pbft.Replica.registry;
    classify : string -> bool;
        (** service-proven read-only classifier: ops it accepts ride the
            read-only fast path without the caller opting in *)
    mutable cid : client_id option;
    mutable next_id : int;
    mutable out : outstanding option;
    mutable joining : join_state option;
    mutable n_completed : int;
    mutable alive : bool;
  }

  let client_id t = t.cid
  let completed t = t.n_completed
  let now t = Simnet.Engine.now t.engine
  let replica_ids t = List.init t.cfg.Pbft.Config.n (fun i -> i)

  let verifier_string t =
    Crypto.Keychain.verifier_to_string (Crypto.Keychain.verifier_of t.signer)

  (* Sign the canonical native payload bytes (the bridge reconstructs the
     same bytes, so replicas verify exactly what the browser signed). *)
  let signed_frame t payload json_fields =
    let pb = Pbft.Message.payload_bytes payload in
    let signature = Crypto.Keychain.sign t.signer pb in
    Json.Obj (json_fields @ [ ("sig", Json.of_bytes signature) ])

  let send_frame t ~replica frame =
    let text = Json.print frame in
    Simnet.Cpu.execute t.cpu
      ~cost:(t.costs.Pbft.Costmodel.sign +. json_cost (String.length text))
      (fun () ->
        Simnet.Net.send t.net ~label:"ws-frame" ~src:t.baddr ~dst:(bridge_addr replica) text)

  let multicast_frame t frame = List.iter (fun r -> send_frame t ~replica:r frame) (replica_ids t)

  (* --- join --- *)

  let join_request_frame t js =
    let payload =
      Pbft.Message.Join_request
        { j_addr = t.baddr; j_pubkey = verifier_string t; j_nonce = js.j_nonce }
    in
    signed_frame t payload
      [
        ("type", Json.Str "join-request");
        ("addr", Json.Num (float_of_int t.baddr));
        ("pubkey", Json.of_bytes (verifier_string t));
        ("nonce", Json.Str js.j_nonce);
      ]

  let join_response_frame t js challenge =
    let proof = js.j_nonce ^ "|" ^ challenge in
    let payload =
      Pbft.Message.Join_response
        { jr_addr = t.baddr; jr_proof = proof; jr_pubkey = verifier_string t; jr_idbuf = js.j_idbuf }
    in
    signed_frame t payload
      [
        ("type", Json.Str "join-response");
        ("addr", Json.Num (float_of_int t.baddr));
        ("proof", Json.of_bytes proof);
        ("pubkey", Json.of_bytes (verifier_string t));
        ("idbuf", Json.of_bytes js.j_idbuf);
      ]

  let rec join_phase1 t js =
    multicast_frame t (join_request_frame t js);
    js.j_timer <-
      Some
        (Simnet.Engine.timer t.engine ~delay:1.0 (fun () ->
             let[@detlint.allow physical_eq] active =
               match t.joining with Some js' -> js' == js | None -> false
             in
             if t.alive && active && t.cid = None then
               if js.j_responded then join_phase2 t js else join_phase1 t js))

  and join_phase2 t js =
    match Hashtbl.fold (fun _ c _ -> Some c) js.j_challenges None with
    | None -> join_phase1 t js
    | Some challenge ->
      js.j_responded <- true;
      multicast_frame t (join_response_frame t js challenge);
      js.j_timer <-
        Some
          (Simnet.Engine.timer t.engine ~delay:1.0 (fun () ->
               let[@detlint.allow physical_eq] active =
               match t.joining with Some js' -> js' == js | None -> false
             in
               if t.alive && active && t.cid = None then join_phase2 t js))

  let join t ~idbuf callback =
    let js =
      {
        j_nonce = Util.Hexdump.of_string (Bytes.to_string (Util.Rng.bytes t.rng 16));
        j_idbuf = idbuf;
        j_challenges = Hashtbl.create 8;
        j_replies = Hashtbl.create 8;
        j_callback = callback;
        j_responded = false;
        j_timer = None;
      }
    in
    t.joining <- Some js;
    join_phase1 t js

  (* In MAC-mode deployments the replicas expect a session key from every
     client; browsers distribute theirs as JSON frames through the
     bridges. *)
  let announce_session_keys t =
    List.iter
      (fun replica ->
        let key = Crypto.Mac.fresh_key t.rng in
        let payload =
          Pbft.Message.Session_key { sk_sender = t.baddr; sk_target = replica; sk_key_box = key }
        in
        let frame =
          signed_frame t payload
            [
              ("type", Json.Str "session-key");
              ("sender", Json.Num (float_of_int t.baddr));
              ("target", Json.Num (float_of_int replica));
              ("key", Json.of_bytes key);
            ]
        in
        send_frame t ~replica frame)
      (replica_ids t)

  (* --- requests --- *)

  let rec arm_retransmit t o =
    o.o_timer <-
      Some
        (Simnet.Engine.timer t.engine ~delay:t.cfg.Pbft.Config.client_timeout (fun () ->
             let[@detlint.allow physical_eq] still =
               match t.out with Some o' -> o' == o | None -> false
             in
             if t.alive && still then begin
               multicast_frame t o.o_frame;
               arm_retransmit t o
             end))

  let invoke t ?(readonly = false) op callback =
    (match t.out with Some _ -> failwith "Browser.invoke: request outstanding" | None -> ());
    let cid = match t.cid with Some c -> c | None -> failwith "Browser.invoke: not joined" in
    let readonly = readonly || t.classify op in
    t.next_id <- t.next_id + 1;
    let rq =
      {
        Pbft.Message.rq_client = cid;
        rq_id = t.next_id;
        rq_op = op;
        rq_readonly = readonly;
        rq_timestamp = now t;
      }
    in
    let frame =
      match signed_frame t (Pbft.Message.Request_msg rq) [] with
      | Json.Obj [ sig_field ] -> (
        match json_of_request rq with
        | Json.Obj fields -> Json.Obj (fields @ [ sig_field ])
        | _ -> assert false)
      | _ -> assert false
    in
    let o =
      { o_id = t.next_id; o_replies = Hashtbl.create 8; o_counts = Hashtbl.create 8;
        o_callback = callback; o_timer = None; o_frame = frame }
    in
    t.out <- Some o;
    multicast_frame t frame;
    arm_retransmit t o

  let bump o key delta =
    match Option.value ~default:0 (Hashtbl.find_opt o.o_counts key) + delta with
    | 0 -> Hashtbl.remove o.o_counts key
    | n ->
      (Hashtbl.replace o.o_counts key n)
      [@trustlint.allow
        "per-replica vote tally at the keyless browser seam: a result is \
         released only once check_quorum sees f+1 (stable) or 2f+1 \
         (tentative) matching replies from distinct replicas"]

  (* A stable reply also votes in the tentative tally — committed implies
     prepared — or 2f tentative + 1 stable matching replies (all that f
     mute replicas leave) would reach neither threshold. *)
  let record_vote o ((result, tentative) as key) =
    bump o key 1;
    if not tentative then bump o (result, true) 1

  let retract_vote o ((result, tentative) as key) =
    bump o key (-1);
    if not tentative then bump o (result, true) (-1)

  let count o key = Option.value ~default:0 (Hashtbl.find_opt o.o_counts key)

  (* Only the keys the newest reply voted for can newly reach quorum, so
     the check is O(1) per reply. *)
  let check_quorum t o ~key:(result, tentative) =
    if (not tentative) && count o (result, false) >= quorum_f1 ~f:t.cfg.Pbft.Config.f then
      Some result
    else if count o (result, true) >= quorum_2f1 ~f:t.cfg.Pbft.Config.f then Some result
    else None

  (* --- incoming (replica -> browser boundary) --- *)

  let handle_json t ~src j =
    match Json.to_string_exn (Json.member "type" j) with
    | "reply" -> begin
      match t.out with
      | None -> ()
      | Some o ->
        if Json.to_int_exn (Json.member "id" j) = o.o_id then begin
          let result = Json.bytes_exn (Json.member "result" j) in
          let tentative = Json.to_bool_exn (Json.member "tentative" j) in
          (match Hashtbl.find_opt o.o_replies src with
          | Some (_, false) -> ()
          | Some ((_, true) as old) ->
            retract_vote o old;
            (Hashtbl.replace o.o_replies src (result, tentative))
            [@trustlint.allow
              "records this replica's latest vote, keyed by its link-level \
               source; votes only become a result through check_quorum's \
               f+1/2f+1 matching-reply thresholds"];
            record_vote o (result, tentative)
          | None ->
            (Hashtbl.replace o.o_replies src (result, tentative))
            [@trustlint.allow
              "records this replica's first vote, keyed by its link-level \
               source; votes only become a result through check_quorum's \
               f+1/2f+1 matching-reply thresholds"];
            record_vote o (result, tentative));
          match check_quorum t o ~key:(result, tentative) with
          | None -> ()
          | Some result ->
            (match o.o_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
            t.out <- None;
            t.n_completed <- t.n_completed + 1;
            o.o_callback result
        end
    end
    | "join-challenge" -> begin
      match t.joining with
      | None -> ()
      | Some js ->
        (Hashtbl.replace js.j_challenges src (Json.bytes_exn (Json.member "nonce" j)))
        [@trustlint.allow
          "join-challenge nonce tally: phase 2 starts only after f+1 \
           distinct replicas report the same nonce, and the join itself is \
           finalized by f+1 matching join-replies"];
        let counts = Hashtbl.create 4 in
        Hashtbl.iter
          (fun _ c ->
            Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
          js.j_challenges;
        let confirmed =
          Hashtbl.fold (fun _ c acc -> acc || c >= quorum_f1 ~f:t.cfg.Pbft.Config.f) counts false
        in
        if confirmed && not js.j_responded then join_phase2 t js
    end
    | "join-reply" -> begin
      match t.joining with
      | None -> ()
      | Some js ->
        if Json.to_bool_exn (Json.member "ok" j) then begin
          (Hashtbl.replace js.j_replies src (Json.to_int_exn (Json.member "client" j)))
          [@trustlint.allow
            "join-reply tally: the client id is adopted only when f+1 \
             distinct replicas report the same id"];
          let counts = Hashtbl.create 4 in
          Hashtbl.iter
            (fun _ c ->
              Hashtbl.replace counts c (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
            js.j_replies;
          match
            Hashtbl.fold
              (fun c n acc -> if n >= quorum_f1 ~f:t.cfg.Pbft.Config.f then Some c else acc)
              counts None
          with
          | None -> ()
          | Some client ->
            (match js.j_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
            t.joining <- None;
            t.cid <- Some client;
            if t.cfg.Pbft.Config.use_macs then announce_session_keys t;
            js.j_callback (Some client)
        end
        else begin
          (match js.j_timer with Some timer -> Simnet.Engine.cancel timer | None -> ());
          t.joining <- None;
          js.j_callback None
        end
    end
    | _ -> ()

  let on_datagram t ~src wire =
    if t.alive then begin
      (* The reverse bridge: the native reply is translated to JSON here,
         charging the conversion the replica-side endpoint would pay. *)
      match Pbft.Message.decode wire with
      | None -> ()
      | Some msg -> begin
        match frame_of_payload msg.Pbft.Message.payload with
        | None -> ()
        | Some j ->
          let text = Json.print j in
          Simnet.Cpu.execute t.cpu ~cost:(json_cost (String.length text)) (fun () ->
              match Json.parse text with
              | exception Json.Parse_error _ -> ()
              | j -> handle_json t ~src j)
      end
    end

  let create ~cfg ~costs ~engine ~net ~addr ~signer ~registry ?client_id
      ?(classify_readonly = Pbft.Service.never_readonly) () =
    let t =
      {
        cfg;
        costs;
        engine;
        net;
        cpu = Simnet.Cpu.create engine;
        rng = Util.Rng.split (Simnet.Engine.rng engine);
        baddr = addr;
        signer;
        registry;
        classify = classify_readonly;
        cid = client_id;
        next_id = 0;
        out = None;
        joining = None;
        n_completed = 0;
        alive = true;
      }
    in
    Simnet.Net.register net addr (fun ~src wire -> on_datagram t ~src wire);
    t

  let shutdown t =
    t.alive <- false;
    Simnet.Net.unregister t.net t.baddr
end
