(** Walking the tree, parsing, and assembling the report for both
    passes: the syntactic determinism rules ({!Rules}) and the
    trustlint taint analysis ({!Taint}). *)

val lint_source : rel:string -> string -> Finding.t list
(** Parse one compilation unit from a string (fixtures, tests) and run
    the determinism rules under the classification its pseudo-path
    [rel] implies. Raises the parser's exceptions on syntax errors. *)

val lint_trust_source :
  ?interfaces:(string * string) list -> rel:string -> string -> Finding.t list
(** Same, for the trust pass: [interfaces] is a list of
    [(pseudo-path, .mli source)] pairs whose [@@trust.*] attributes are
    harvested and layered over the convention table. *)

type pass = Determinism | Trust

type outcome = {
  files_scanned : int;
  findings : Finding.t list;  (** unsuppressed, sorted *)
  suppressed : int;  (** count silenced by the allow file *)
  stale_allows : Allowlist.entry list;
  errors : string list;  (** unparseable files *)
}

val run :
  ?passes:pass list -> ?dirs:string list -> ?allow_file:string -> root:string -> unit -> outcome
(** Lint every [.ml] under [root]/[dirs] (default [["lib"]]), in sorted
    path order, with the requested passes (default
    [[Determinism]]). When the trust pass runs, every [.mli] under the
    same dirs is harvested for [@@trust.*] declarations first.
    [allow_file] defaults to [root]/detlint.allow and is optional on
    disk; a malformed allow file raises {!Allowlist.Malformed}. *)
