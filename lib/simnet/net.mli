(** Unreliable datagram network — the simulation's UDP.

    Models the paper's testbed: point-to-point datagrams (IP multicast is
    off, §4), per-host NIC serialization at a configured bandwidth,
    propagation latency with jitter, Bernoulli packet loss, bounded
    receive buffers that drop under overload (the loop-back congestion
    loss of §2.4), targeted drop injection for the fault experiments, and
    partitions. Delivery is at-most-once, unordered under jitter — every
    PBFT robustness pathology in the paper stems from exactly these
    semantics. *)

type addr = int

type profile = {
  latency : float; (** mean one-way propagation delay, seconds *)
  jitter : float; (** stdev of the latency gaussian, seconds *)
  bandwidth : float; (** NIC egress bytes/second *)
  loss : float; (** Bernoulli datagram loss probability *)
  recv_buffer : int; (** datagrams queued at a receiver before overflow drops; 0 = unbounded *)
}

val lan_profile : profile
(** The paper's cluster: 1 GbE, ~150 µs RTT ping. *)

val wan_profile : profile
(** Wide-area deployment of §3.3.3: tens of ms latency. *)

type t

val create : Engine.t -> ?trace:Trace.t -> profile -> t
val engine : t -> Engine.t
val trace : t -> Trace.t

val register : t -> addr -> (src:addr -> string -> unit) -> unit
(** Bind a receive handler; re-registering replaces the handler (a node
    restart re-binds its port). *)

val unregister : t -> addr -> unit
(** Datagrams to an unbound address are dropped silently, like UDP. *)

val send : t -> ?label:string -> ?detail:(unit -> string) -> src:addr -> dst:addr -> string -> unit
(** Fire-and-forget datagram. [detail] is forced only when the trace is
    enabled, so hot-path senders pay nothing for rich trace lines. *)

val set_loss : t -> float -> unit
val loss : t -> float

val drop_next_matching : t -> (src:addr -> dst:addr -> label:string -> bool) -> unit
(** One-shot targeted fault: the next datagram matching the predicate is
    silently dropped (the §2.4 experiments drop one specific packet). *)

val partition : t -> addr list -> addr list -> unit
(** Drop everything between the two groups until {!heal}. *)

val heal : t -> unit

(** {2 Counters for experiment reports} *)

val sent_count : t -> int
val delivered_count : t -> int
val dropped_count : t -> int
val bytes_sent : t -> int

val set_backlog_probe : t -> addr -> (unit -> int) -> unit
(** A node that processes datagrams on its virtual CPU exposes its queue
    length here; when [recv_buffer > 0] and the backlog at delivery time
    is at or above it, the datagram is dropped — kernel socket-buffer
    overflow, the loss mode the paper hit on the loop-back interface. *)
