(* detlint: determinism & trust-boundary lint over the middleware.

   Exit codes: 0 clean, 1 unsuppressed findings or stale allow entries,
   2 configuration or parse errors. *)

let usage () =
  prerr_endline
    "usage: detlint [--trust | --all] [--json] [-o FILE] [--root DIR] [--allow FILE] \
     [--list-rules] [DIR...]\n\n\
     Lints every .ml under DIR... (default: lib). The default pass checks\n\
     determinism and replay-safety; --trust runs the taint pass proving\n\
     every wire-decode -> state-write flow crosses a cryptographic\n\
     sanitizer; --all runs both. --json emits one JSON object per finding.\n\
     Exemptions: [@detlint.allow <rule>] / [@trustlint.allow \"why\"]\n\
     attributes in source, or entries in <root>/detlint.allow (override\n\
     with --allow). Stale allow entries fail the run.";
  exit 2

let () =
  let json = ref false in
  let out_file = ref None in
  let root = ref "." in
  let allow = ref None in
  let dirs = ref [] in
  let passes = ref [ Detlint.Driver.Determinism ] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--trust" :: rest ->
      passes := [ Detlint.Driver.Trust ];
      parse rest
    | "--all" :: rest ->
      passes := [ Detlint.Driver.Determinism; Detlint.Driver.Trust ];
      parse rest
    | "-o" :: f :: rest ->
      out_file := Some f;
      parse rest
    | "--root" :: d :: rest ->
      root := d;
      parse rest
    | "--allow" :: f :: rest ->
      allow := Some f;
      parse rest
    | "--list-rules" :: _ ->
      List.iter (fun r -> print_endline (Detlint.Finding.rule_name r)) Detlint.Finding.all_rules;
      exit 0
    | ("--help" | "-h" | "-o" | "--root" | "--allow") :: _ -> usage ()
    | d :: rest when String.length d > 0 && d.[0] <> '-' ->
      dirs := d :: !dirs;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let dirs = match List.rev !dirs with [] -> None | ds -> Some ds in
  let outcome =
    try Detlint.Driver.run ~passes:!passes ?dirs ?allow_file:!allow ~root:!root ()
    with Detlint.Allowlist.Malformed msg ->
      prerr_endline msg;
      exit 2
  in
  let oc = match !out_file with Some f -> open_out f | None -> stdout in
  List.iter
    (fun f ->
      output_string oc
        ((if !json then Detlint.Finding.to_json f else Detlint.Finding.to_human f) ^ "\n"))
    outcome.findings;
  if !out_file <> None then close_out oc;
  List.iter (fun e -> Printf.eprintf "detlint: error: %s\n" e) outcome.errors;
  List.iter
    (fun (e : Detlint.Allowlist.entry) ->
      Printf.eprintf "detlint: stale allow entry (line %d): %s %s — %s\n" e.al_line e.al_rule
        e.al_path e.al_why)
    outcome.stale_allows;
  if outcome.errors <> [] then exit 2;
  if outcome.findings <> [] || outcome.stale_allows <> [] then begin
    Printf.eprintf
      "detlint: %d finding(s), %d stale allow entr(ies) in %d file(s) scanned (%d suppressed)\n"
      (List.length outcome.findings)
      (List.length outcome.stale_allows)
      outcome.files_scanned outcome.suppressed;
    exit 1
  end;
  if not !json then
    Printf.eprintf "detlint: clean — %d file(s) scanned, %d finding(s) suppressed by allow file\n"
      outcome.files_scanned outcome.suppressed
