(* The determinism linter, tested the way any analyzer should be: one
   positive and one negative fixture per rule, the suppression
   mechanisms, and an end-to-end run proving the repo itself is clean. *)

open Detlint

let rules_of findings = List.map (fun (f : Finding.t) -> f.Finding.rule) findings

(* Fixtures are linted under a pseudo-path inside lib/pbft so the
   replay-critical and strict-module classifications apply. *)
let lint ?(rel = "lib/pbft/fixture.ml") src = Driver.lint_source ~rel src

let has rule findings = List.mem rule (rules_of findings)

let check_rule name rule ~positive ~negative () =
  let pos = lint positive in
  Alcotest.(check bool) (name ^ ": positive fixture flagged") true (has rule pos);
  let neg = lint negative in
  Alcotest.(check bool) (name ^ ": negative fixture clean") false (has rule neg)

(* --- one positive + one negative fixture per rule --- *)

let test_hashtbl_order =
  check_rule "hashtbl_order" Finding.Hashtbl_order
    ~positive:"let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl"
    ~negative:"let f tbl = Util.Sorted_tbl.iter (fun k _ -> print_int k) tbl"

let test_hashtbl_order_scope () =
  (* Outside the replay-critical set the same traversal is fine. *)
  let fs = lint ~rel:"lib/harness/fixture.ml" "let f tbl = Hashtbl.iter (fun k _ -> print_int k) tbl" in
  Alcotest.(check bool) "harness Hashtbl.iter unflagged" false (has Finding.Hashtbl_order fs)

let test_poly_compare =
  check_rule "poly_compare" Finding.Poly_compare
    ~positive:"type r = { t : float }\nlet f (a : r) (b : r) = compare a b"
    ~negative:"type r = { t : float }\nlet f (a : r) (b : r) = Float.compare a.t b.t"

let test_poly_equal () =
  let fs = lint "let check digest expected = digest = expected" in
  Alcotest.(check bool) "= on digest flagged" true (has Finding.Poly_compare fs);
  let fs = lint "let check digest expected = String.equal digest expected" in
  Alcotest.(check bool) "String.equal clean" false (has Finding.Poly_compare fs);
  (* Length comparisons are ints no matter what the operand is called. *)
  let fs = lint "let check signature = String.length signature = 32" in
  Alcotest.(check bool) "String.length _ = n clean" false (has Finding.Poly_compare fs)

let test_physical_eq =
  check_rule "physical_eq" Finding.Physical_eq
    ~positive:"let f a b = a == b"
    ~negative:"let f (a : int) (b : int) = a = b"

let test_wall_clock =
  check_rule "wall_clock" Finding.Wall_clock
    ~positive:"let now () = Unix.gettimeofday ()"
    ~negative:"let now engine = Simnet.Engine.now engine"

let test_ambient_rng =
  check_rule "ambient_rng" Finding.Ambient_rng
    ~positive:"let roll () = Random.int 6"
    ~negative:"let roll rng = Util.Rng.int rng 6"

let test_marshal_obj =
  check_rule "marshal_obj" Finding.Marshal_obj
    ~positive:"let save x = Marshal.to_string x []"
    ~negative:"let save x = Util.Codec.encode enc x"

let test_float_format () =
  (* Flagged only in digest/trace/wire modules. *)
  let src = "let render t = Printf.sprintf \"%f\" t" in
  let fs = lint ~rel:"lib/simnet/trace.ml" src in
  Alcotest.(check bool) "%f in trace module flagged" true (has Finding.Float_format fs);
  let fs = lint ~rel:"lib/simnet/trace.ml" "let render t = Printf.sprintf \"%d\" t" in
  Alcotest.(check bool) "%d clean" false (has Finding.Float_format fs);
  let fs = lint ~rel:"lib/pbft/replica.ml" src in
  Alcotest.(check bool) "%f outside digest modules unflagged" false (has Finding.Float_format fs);
  let fs = lint ~rel:"lib/simnet/trace.ml" "let render t = string_of_float t" in
  Alcotest.(check bool) "string_of_float flagged" true (has Finding.Float_format fs)

let test_catch_all =
  check_rule "catch_all" Finding.Catch_all
    ~positive:"let f g = try g () with _ -> ()"
    ~negative:"let f g = try g () with Not_found -> ()"

(* --- suppression mechanisms --- *)

let test_attribute_suppression () =
  let fs = lint "let[@detlint.allow hashtbl_order] f tbl = Hashtbl.iter ignore tbl" in
  Alcotest.(check int) "binding attribute suppresses" 0 (List.length fs);
  let fs = lint "let f a b = ((a == b) [@detlint.allow physical_eq])" in
  Alcotest.(check int) "expression attribute suppresses" 0 (List.length fs);
  (* The attribute names a rule; an unrelated rule still fires. *)
  let fs = lint "let[@detlint.allow physical_eq] f tbl = Hashtbl.iter ignore tbl" in
  Alcotest.(check bool) "wrong rule does not suppress" true (has Finding.Hashtbl_order fs)

let test_allow_file () =
  let allows =
    Allowlist.of_string
      "# comment\nhashtbl_order lib/pbft/fixture.ml iteration is order-free here\n"
  in
  let fs = lint "let f tbl = Hashtbl.iter ignore tbl" in
  let f = List.hd (List.filter (fun (x : Finding.t) -> x.rule = Finding.Hashtbl_order) fs) in
  Alcotest.(check bool) "entry suppresses matching finding" true (Allowlist.suppresses allows f);
  Alcotest.(check int) "used entry is not stale" 0 (List.length (Allowlist.stale allows));
  let stale = Allowlist.of_string "wall_clock lib/pbft/fixture.ml never matches\n" in
  Alcotest.(check bool) "non-matching entry ignored" false (Allowlist.suppresses stale f);
  Alcotest.(check int) "unused entry reported stale" 1 (List.length (Allowlist.stale stale));
  Alcotest.check_raises "justification is mandatory"
    (Allowlist.Malformed
       "detlint.allow:1: entry for hashtbl_order lib/pbft/fixture.ml has no justification")
    (fun () -> ignore (Allowlist.of_string "hashtbl_order lib/pbft/fixture.ml\n"));
  Alcotest.check_raises "unknown rule rejected"
    (Allowlist.Malformed "detlint.allow:1: unknown rule \"no_such_rule\"")
    (fun () -> ignore (Allowlist.of_string "no_such_rule lib/x.ml because\n"))

let test_json_shape () =
  let fs = lint "let f a b = a == b" in
  let f = List.hd fs in
  let j = Finding.to_json f in
  (* Self-contained object with the documented keys; parseable by the
     repo's own JSON reader. *)
  match Webgate.Json.parse j with
  | Webgate.Json.Obj kvs ->
    List.iter
      (fun k -> Alcotest.(check bool) ("key " ^ k) true (List.mem_assoc k kvs))
      [ "rule"; "file"; "line"; "col"; "snippet"; "message" ]
  | _ -> Alcotest.fail "finding JSON did not parse as an object"
  | exception Webgate.Json.Parse_error e -> Alcotest.fail ("finding JSON unparseable: " ^ e)

(* --- trustlint: the taint pass, fixture per verdict --- *)

(* A minimal trust vocabulary declared the same way the repo declares
   its own: [@@trust.*] attributes on a pseudo-interface. *)
let wire_mli =
  ( "lib/pbft/wire.mli",
    "val decode : string -> string\n\
     [@@trust.source \"frame decoded off the wire\"]\n\
     val verify : string -> bool\n\
     [@@trust.sanitizer \"MAC check over the frame\"]\n\
     val store : string -> unit\n\
     [@@trust.sink \"state write\"]\n" )

let tlint ?(interfaces = [ wire_mli ]) ?(rel = "lib/pbft/fixture.ml") src =
  Driver.lint_trust_source ~interfaces ~rel src

let tainted fs = List.filter (fun (f : Finding.t) -> f.Finding.rule = Finding.Tainted_sink) fs

let test_trust_self_test () =
  (* The analyzer's acceptance fixture: one unverified decode -> state
     write, reported exactly once, with source and sink spans intact. *)
  let fs =
    tainted (tlint "let f s =\n  let m = Wire.decode s in\n  Wire.store m\n")
  in
  Alcotest.(check int) "exactly one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check int) "sink line" 3 f.Finding.line;
  Alcotest.(check int) "sink col" 2 f.Finding.col;
  Alcotest.(check (option (pair int int))) "source span" (Some (2, 10)) f.Finding.origin;
  (* ... and the JSON carries the source span for tooling. *)
  match Webgate.Json.parse (Finding.to_json f) with
  | Webgate.Json.Obj kvs ->
    Alcotest.(check bool) "src_line key" true (List.mem_assoc "src_line" kvs);
    Alcotest.(check bool) "src_col key" true (List.mem_assoc "src_col" kvs)
  | _ -> Alcotest.fail "finding JSON did not parse as an object"

let test_trust_sanitizer_kills () =
  let fs =
    tainted
      (tlint
         "let f s =\n  let m = Wire.decode s in\n  if Wire.verify m then Wire.store m\n")
  in
  Alcotest.(check int) "guarded flow clean" 0 (List.length fs);
  (* The verdict only vouches on the branch where the check held. *)
  let fs =
    tainted
      (tlint
         "let f s =\n\
         \  let m = Wire.decode s in\n\
         \  if Wire.verify m then () else Wire.store m\n")
  in
  Alcotest.(check int) "else-branch still tainted" 1 (List.length fs);
  (* [not] swaps the polarity back. *)
  let fs =
    tainted
      (tlint
         "let f s =\n\
         \  let m = Wire.decode s in\n\
         \  if not (Wire.verify m) then () else Wire.store m\n")
  in
  Alcotest.(check int) "negated guard, else branch vouched" 0 (List.length fs)

let test_trust_propagation () =
  (* Tuples. *)
  let fs = tainted (tlint "let f s = let m, _n = (Wire.decode s, 0) in Wire.store m") in
  Alcotest.(check int) "through tuples" 1 (List.length fs);
  (* Records, construction and projection. *)
  let fs =
    tainted
      (tlint "type r = { v : string }\nlet f s = let r = { v = Wire.decode s } in Wire.store r.v")
  in
  Alcotest.(check int) "through records" 1 (List.length fs);
  (* Pattern matches. *)
  let fs =
    tainted (tlint "let f s = match Wire.decode s with \"\" -> () | m -> Wire.store m")
  in
  Alcotest.(check int) "through match arms" 1 (List.length fs);
  (* Pipelines. *)
  let fs = tainted (tlint "let f s = s |> Wire.decode |> Wire.store") in
  Alcotest.(check int) "through |>" 1 (List.length fs);
  (* Helper calls: the source is inside a local function, the sink in
     its caller — the summary layer inlines the definition. *)
  let fs =
    tainted (tlint "let parse s = Wire.decode s\nlet f s = Wire.store (parse s)")
  in
  Alcotest.(check int) "through local helpers" 1 (List.length fs);
  (* A clean value through the same shapes stays clean. *)
  let fs = tainted (tlint "let f s = Wire.store s") in
  Alcotest.(check int) "undecoded input unflagged" 0 (List.length fs)

let test_trust_conventions () =
  (* The convention table scopes raw codec reads to wire-decoding
     files: the same source text is a finding in the replica... *)
  let src = "let f t wire =\n  let r = Util.Codec.R.of_string wire in\n  Hashtbl.replace t r ()\n" in
  let fs = tainted (tlint ~interfaces:[] ~rel:"lib/pbft/replica.ml" src) in
  Alcotest.(check int) "codec read in replica flagged" 1 (List.length fs);
  (* ... and silent where codec reads parse trusted local images. *)
  let fs = tainted (tlint ~interfaces:[] ~rel:"lib/relsql/pager.ml" src) in
  Alcotest.(check int) "codec read in pager unflagged" 0 (List.length fs);
  (* The replica's intake idiom: check_auth's verdict covers the sink. *)
  let fs =
    tainted
      (tlint ~interfaces:[] ~rel:"lib/pbft/replica.ml"
         "let f t wire =\n\
         \  let r = Util.Codec.R.of_string wire in\n\
         \  if check_auth t r then Hashtbl.replace t r ()\n")
  in
  Alcotest.(check int) "check_auth covers the write" 0 (List.length fs)

let test_trust_suppression () =
  let fs =
    tainted
      (tlint
         "let f s =\n\
         \  let m = Wire.decode s in\n\
         \  (Wire.store m) [@trustlint.allow \"covered by the upstream MAC check\"]\n")
  in
  Alcotest.(check int) "[@trustlint.allow] suppresses" 0 (List.length fs);
  (* The allow file speaks trustlint too, and entries are pass-aware:
     a tainted_sink entry is only stale for runs that include Trust. *)
  let allows =
    Allowlist.of_string "tainted_sink lib/pbft/fixture.ml covered by Mac.verify at intake\n"
  in
  let fs = tainted (tlint "let f s = let m = Wire.decode s in Wire.store m") in
  Alcotest.(check bool) "allow-file entry suppresses" true
    (Allowlist.suppresses allows (List.hd fs))

let test_dispatch_catch_all () =
  let positive =
    "let route = function\n\
    \  | Prepare p -> ignore p\n\
    \  | Commit c -> ignore c\n\
    \  | Reply r -> ignore r\n\
    \  | _ -> ()\n"
  in
  let fs = lint positive in
  Alcotest.(check bool) "wildcard in dispatch flagged" true (has Finding.Dispatch_catch_all fs);
  (* Two protocol heads don't make a dispatch. *)
  let fs = lint "let f = function Some x -> x | _ -> 0" in
  Alcotest.(check bool) "ordinary match unflagged" false (has Finding.Dispatch_catch_all fs);
  (* Enumerating the ignored constructors is the fix. *)
  let fs =
    lint
      "let route = function\n\
      \  | Prepare p -> ignore p\n\
      \  | Commit c -> ignore c\n\
      \  | Reply _ | Status _ -> ()\n"
  in
  Alcotest.(check bool) "enumerated remainder clean" false (has Finding.Dispatch_catch_all fs);
  (* Outside the protocol layers the rule stays quiet. *)
  let fs = lint ~rel:"lib/harness/fixture.ml" positive in
  Alcotest.(check bool) "non-protocol dir unflagged" false (has Finding.Dispatch_catch_all fs)

(* --- adversary cross-check (static finding <-> dynamic defense) --- *)

let test_adversary_cross_check () =
  (* Statically: a replica intake that skips check_auth is exactly the
     shape trustlint exists to flag. *)
  let fs =
    tainted
      (tlint ~interfaces:[] ~rel:"lib/pbft/replica.ml"
         "let on_datagram t wire =\n\
         \  let r = Util.Codec.R.of_string wire in\n\
         \  Hashtbl.replace t r ()\n")
  in
  Alcotest.(check int) "unverified intake flagged" 1 (List.length fs);
  (* Dynamically: the real replica keeps check_auth on that path, so an
     adversary corrupting MACs is rejected at intake (auth_failures)
     while the cluster stays safe and live. *)
  let report, _cluster = Harness.Faults.run_behavior Pbft.Adversary.Corrupt_macs in
  Alcotest.(check bool) "corrupted MACs rejected at intake" true
    (report.Harness.Faults.fr_auth_failures > 0);
  Alcotest.(check (list string)) "scenario failures" [] report.Harness.Faults.fr_failures;
  Alcotest.(check bool) "safety held" true report.Harness.Faults.fr_safe;
  Alcotest.(check bool) "liveness held" true report.Harness.Faults.fr_live

(* --- end to end: the repository itself lints clean --- *)

let test_repo_clean () =
  (* Under `dune runtest` the cwd is _build/default/test and the
     (source_tree ../lib) dependency materialises the sources next to
     it; under `dune exec` from the checkout the root is ".". *)
  let root = if Sys.file_exists "lib" then "." else ".." in
  let outcome = Driver.run ~passes:[ Driver.Determinism; Driver.Trust ] ~root () in
  Alcotest.(check bool) "scanned a real tree" true (outcome.Driver.files_scanned > 40);
  Alcotest.(check (list string)) "no parse errors" [] outcome.Driver.errors;
  List.iter (fun f -> Printf.eprintf "unexpected: %s\n" (Finding.to_human f)) outcome.Driver.findings;
  Alcotest.(check int) "no unsuppressed findings" 0 (List.length outcome.Driver.findings);
  Alcotest.(check int) "no stale allow entries" 0 (List.length outcome.Driver.stale_allows)

let () =
  Alcotest.run "detlint"
    [
      ( "rules",
        [
          Alcotest.test_case "hashtbl order" `Quick test_hashtbl_order;
          Alcotest.test_case "hashtbl order scope" `Quick test_hashtbl_order_scope;
          Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "poly equal on digests" `Quick test_poly_equal;
          Alcotest.test_case "physical eq" `Quick test_physical_eq;
          Alcotest.test_case "wall clock" `Quick test_wall_clock;
          Alcotest.test_case "ambient rng" `Quick test_ambient_rng;
          Alcotest.test_case "marshal & obj" `Quick test_marshal_obj;
          Alcotest.test_case "float format" `Quick test_float_format;
          Alcotest.test_case "catch all" `Quick test_catch_all;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_attribute_suppression;
          Alcotest.test_case "allow file" `Quick test_allow_file;
          Alcotest.test_case "json findings" `Quick test_json_shape;
        ] );
      ( "trustlint",
        [
          Alcotest.test_case "analyzer self-test" `Quick test_trust_self_test;
          Alcotest.test_case "sanitizer verdicts" `Quick test_trust_sanitizer_kills;
          Alcotest.test_case "taint propagation" `Quick test_trust_propagation;
          Alcotest.test_case "convention scoping" `Quick test_trust_conventions;
          Alcotest.test_case "suppression" `Quick test_trust_suppression;
          Alcotest.test_case "dispatch catch-all" `Quick test_dispatch_catch_all;
          Alcotest.test_case "adversary cross-check" `Quick test_adversary_cross_check;
        ] );
      ("repo", [ Alcotest.test_case "repository lints clean" `Quick test_repo_clean ]);
    ]
