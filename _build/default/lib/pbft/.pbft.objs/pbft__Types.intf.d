lib/pbft/types.mli:
