(** Shared identifiers and small helpers for the PBFT protocol suite. *)

type replica_id = int
(** Replicas are numbered [0 .. n-1]; the primary of view [v] is
    [v mod n]. *)

type client_id = int
(** Client identifiers. In static-membership mode these are assigned at
    configuration time; in dynamic mode they are arbitrary identifiers
    issued at Join and translated through the redirection table (§3.1). *)

type view = int
type seqno = int

type digest = string
(** 32-byte SHA-256 digest. *)

val client_addr_base : int
(** Network addresses: replicas occupy [0 .. n-1]; client network
    addresses start here. *)

val addr_of_client : client_id -> int
val primary_of_view : n:int -> view -> replica_id
val quorum_2f1 : f:int -> int
(** 2f + 1. *)

val quorum_f1 : f:int -> int
(** f + 1. *)
