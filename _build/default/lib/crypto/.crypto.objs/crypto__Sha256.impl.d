lib/crypto/sha256.ml: Array Bytes Int32 Int64 List String Util
