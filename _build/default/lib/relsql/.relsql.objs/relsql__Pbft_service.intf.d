lib/relsql/pbft_service.mli: Pbft
