(** Non-determinism handling (§2.5).

    The primary attaches application-specific non-deterministic data (here:
    its clock and a pseudo-random value) to each pre-prepare; replicas
    execute with that shared data so results stay deterministic. BASE
    added a validation upcall; the paper shows the obvious implementation
    — accept iff the proposed timestamp is within a delta of the local
    clock — breaks recovery, because requests replayed from the log
    carry timestamps that are arbitrarily stale. [validate] reproduces
    both the broken and the fixed (skip-during-recovery) policies. *)

val produce : now:float -> Util.Rng.t -> string
(** Primary upcall: encode (timestamp, random64) for a pre-prepare. *)

val timestamp : string -> float option
(** Decode the proposed timestamp; [None] on malformed data. *)

val random_value : string -> int64 option

val validate : Config.nondet_validation -> now:float -> recovering:bool -> string -> bool
(** Replica upcall: is the primary's proposed data acceptable? *)
