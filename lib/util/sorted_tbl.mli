(** Key-sorted traversal over [Hashtbl.t].

    [Hashtbl]'s own [iter]/[fold] visit bindings in bucket order, which
    depends on the hash function, the table's growth history, and the
    insertion sequence. That order is deterministic for one build of one
    program, but it is an implementation detail: adding a field, changing
    a hash seed, or inserting in a different order silently reorders the
    traversal. Anywhere the visit order can reach a message, a digest, or
    the simulation trace, that is a replay hazard (the failure mode the
    paper's non-determinism validation exists to catch), so such call
    sites must traverse in key order instead — [detlint]'s
    [hashtbl_order] rule enforces this.

    All functions snapshot the table's bindings and sort them by key
    before visiting, so they cost O(n log n) and tolerate the callback
    mutating the table. [cmp] defaults to the polymorphic [compare]:
    fine for the [int] and [string] keys used across this repo, but pass
    an explicit comparator for keys containing floats, abstract types,
    or functional values. If a key has several bindings (repeated
    [Hashtbl.add]), they are visited most-recent-first, matching
    [Hashtbl.find_all]. *)

val bindings : ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings sorted by key (ascending). *)

val keys : ?cmp:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** All keys sorted ascending; a key appears once per binding. *)

val iter : ?cmp:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter f tbl] is [Hashtbl.iter f tbl] in ascending key order. *)

val fold : ?cmp:('a -> 'a -> int) -> ('a -> 'b -> 'c -> 'c) -> ('a, 'b) Hashtbl.t -> 'c -> 'c
(** [fold f tbl init] is [Hashtbl.fold f tbl init] in ascending key
    order: [f kmin v (... (f kmax v' init))] is {e not} the evaluation
    order — like [Hashtbl.fold], [f] is applied to each binding with the
    accumulator so far, starting from the smallest key. *)
