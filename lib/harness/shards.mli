(** Sharded deployments: N independent PBFT replica groups on one
    engine, each owning a hash partition of the `accounts` table, fronted
    by the {!Webgate.Router} and driven by closed-loop edge sessions.

    This is the ROADMAP's horizontal-scaling experiment: the per-group
    protocol work that caps a single group's vTPS is divided across
    groups, so a shardable workload (single-shard point reads and
    updates) should scale near-linearly with the shard count at a fixed
    cost model — the curve `bench -- shards` gates. Cross-shard
    transactions pay the 2PC premium and serialize through the
    coordinator; the [cross_fraction] knob measures how quickly that tax
    erodes the scaling. *)

type spec = {
  shards : int;
  cfg : Pbft.Config.t;  (** per-group configuration (the groups are identical) *)
  seed : int;
  sessions : int;
  pool : int;  (** upstream data connections per shard lane *)
  rows : int;  (** pre-populated accounts, spread across shards by id hash *)
  warmup : float;
  duration : float;
  cross_fraction : float;  (** fraction of operations that are cross-shard transfers *)
  read_fraction : float;  (** of single-shard operations, fraction that are point SELECTs *)
  certs : bool;  (** deal per-group threshold keys; 2PC votes carry real certificates *)
  profile : Simnet.Net.profile;
  flush_bytes : int;
  flush_deadline : float;
  max_queue : int;
  prepare_timeout : float;
  tx_ttl : float;
}

val default_spec : ?shards:int -> unit -> spec
(** f=1 groups, 32 sessions over 8 data connections per shard, 512 rows,
    0.5 s warmup / 2 s measurement, pure single-shard 70/30 read/update
    mix, certs off, LAN profile. *)

type deployment

val build : spec -> deployment
(** Construct engine, per-group nets and clusters, router and topology —
    without starting any workload (scenarios drive it by hand). *)

val engine : deployment -> Simnet.Engine.t
val edge : deployment -> Simnet.Net.t
val router : deployment -> Webgate.Router.t
val cluster : deployment -> int -> Pbft.Cluster.t
val topology : deployment -> Relsql.Shard.topology

val service_first_page : int
(** First page of the service region on a replica (the middleware keeps
    the pages before it). *)

val service_app_pages : int
(** Pages the accounts service asks for. *)

val accounts_schema : string

val init_sql : Relsql.Shard.topology -> shard:int -> rows:int -> string list
(** Batched INSERTs pre-populating exactly the ids the shard owns; the
    reference executions in tests use it to seed identical state. *)

val key_on_shard : deployment -> int -> int
(** Smallest pre-populated account id owned by the given shard. *)

val rpc : ?timeout:float -> deployment -> string -> string
(** One-shot edge session: send the SQL through the router, drive the
    engine until the reply lands (or [timeout] virtual seconds pass —
    then ["error:rpc-timeout"]). *)

val run_for : deployment -> float -> unit
(** Advance the shared engine. *)

val region_root : deployment -> shard:int -> replica:int -> string
(** Merkle root of the service's page region on one replica — the
    per-shard state digest the qcheck property and the fault scenario
    compare. *)

val pages_region_root : Statemgr.Pages.t -> string
(** The same digest over a bare page set laid out like a replica's
    (service region at {!service_first_page}) — for reference
    executions. *)

type outcome = {
  so_vtps : float;  (** router-completed operations per virtual second *)
  so_completed : int;
  so_shard_tps : float array;
  so_shard_queue_peak : int array;
  so_cross_commits : int;
  so_cross_aborts : int;
  so_cross_timeouts : int;
  so_p50 : float;
  so_p95 : float;
  so_p99 : float;
  so_shed : int;
  so_cache_hits : int;
  so_errors : int;  (** session replies carrying an error body *)
}

val run : spec -> outcome * deployment
(** Build, start the closed-loop sessions, warm up, measure. *)

(** {2 The Byzantine-coordinator fault scenario}

    One shard's primary goes mute mid-2PC: the healthy shard prepares
    (holding its copy-on-write undo snapshot), the faulty group stalls,
    the coordinator times out and aborts — no shard commits, every
    prepared shard rolls back, balances are untouched, and after the
    faulty group's view change the deferred abort completes and a fresh
    cross-shard transfer commits. *)

type byz_report = {
  bz_abort_reply : string;  (** session-visible reply of the doomed transfer *)
  bz_cross_commits : int;  (** router commits during the fault window (want 0) *)
  bz_cross_aborts : int;
  bz_cross_timeouts : int;
  bz_undo_restores : int;  (** {!Relsql.Twopc.aborts} delta — COW roll-backs *)
  bz_view_changes : int;  (** on the Byzantine shard's group *)
  bz_balances_held : bool;  (** both balances read back unchanged after the abort *)
  bz_states_agree : bool;  (** per-group replica region roots all match *)
  bz_recovery_reply : string;  (** post-view-change transfer (must commit) *)
  bz_failures : string list;  (** empty = scenario passed *)
}

val byzantine_coordinator : ?spec:spec -> unit -> byz_report
val render_byz : byz_report -> string
