open Types
module W = Util.Codec.W
module R = Util.Codec.R

type auth =
  | No_auth
  | Signed of string
  | Authenticated of Crypto.Authenticator.t

type request = {
  rq_client : client_id;
  rq_id : int;
  rq_op : string;
  rq_readonly : bool;
  rq_timestamp : float;
}

type batch_item =
  | Full of request
  | Digest_of of { bd_client : client_id; bd_id : int; bd_digest : digest; bd_readonly : bool }

type prepared_info = {
  pi_view : view;
  pi_seq : seqno;
  pi_digest : digest;
  pi_batch : batch_item list;
}

type payload =
  | Request_msg of request
  | Pre_prepare of { pp_view : view; pp_seq : seqno; pp_batch : batch_item list; pp_nondet : string }
  | Prepare of { p_view : view; p_seq : seqno; p_digest : digest; p_replica : replica_id }
  | Commit of { c_view : view; c_seq : seqno; c_digest : digest; c_replica : replica_id }
  | Reply of {
      r_view : view;
      r_client : client_id;
      r_id : int;
      r_replica : replica_id;
      r_result : string;
      r_tentative : bool;
      r_partial : string option;
    }
  | Checkpoint_msg of { ck_seq : seqno; ck_digest : digest; ck_replica : replica_id }
  | View_change of {
      vc_new_view : view;
      vc_stable_seq : seqno;
      vc_stable_digest : digest;
      vc_prepared : prepared_info list;
      vc_replica : replica_id;
    }
  | New_view of {
      nv_view : view;
      nv_view_change_digests : (replica_id * digest) list;
      nv_pre_prepares : (seqno * batch_item list) list;
    }
  | Session_key of { sk_sender : int; sk_target : replica_id; sk_key_box : string }
  | Join_request of { j_addr : int; j_pubkey : string; j_nonce : string }
  | Join_challenge of { jc_replica : replica_id; jc_addr : int; jc_nonce : string }
  | Join_response of { jr_addr : int; jr_proof : string; jr_pubkey : string; jr_idbuf : string }
  | Join_reply of { jl_replica : replica_id; jl_client : client_id; jl_ok : bool }
  | Leave_msg of { lv_client : client_id }
  | Fetch_meta of { fm_seq : seqno; fm_replica : replica_id }
  | State_meta of { sm_seq : seqno; sm_replica : replica_id; sm_leaves : digest list }
  | Fetch_pages of { fp_seq : seqno; fp_pages : int list; fp_replica : replica_id }
  | State_pages of { sp_seq : seqno; sp_replica : replica_id; sp_pages : (int * string) list }
  | Fetch_body of { fb_digest : digest; fb_replica : replica_id }
  | Body of { b_request : request }
  | Fetch_entry of { fe_seq : seqno; fe_replica : replica_id }
  | Entry of { en_seq : seqno; en_view : view; en_batch : batch_item list; en_nondet : string }
  | Status of { st_replica : replica_id; st_view : view; st_last_exec : seqno }
  | Key_request of { kq_replica : replica_id }

type t = { payload : payload; auth : auth }

(* --- request --- *)

let enc_request w r =
  W.varint w r.rq_client;
  W.varint w r.rq_id;
  W.lstring w r.rq_op;
  W.bool w r.rq_readonly;
  W.f64 w r.rq_timestamp

let dec_request r =
  let rq_client = R.varint r in
  let rq_id = R.varint r in
  let rq_op = R.lstring r in
  let rq_readonly = R.bool r in
  let rq_timestamp = R.f64 r in
  { rq_client; rq_id; rq_op; rq_readonly; rq_timestamp }

let enc_batch_item w = function
  | Full rq ->
    W.u8 w 0;
    enc_request w rq
  | Digest_of d ->
    W.u8 w 1;
    W.varint w d.bd_client;
    W.varint w d.bd_id;
    W.lstring w d.bd_digest;
    W.bool w d.bd_readonly

let dec_batch_item r =
  match R.u8 r with
  | 0 -> Full (dec_request r)
  | 1 ->
    let bd_client = R.varint r in
    let bd_id = R.varint r in
    let bd_digest = R.lstring r in
    let bd_readonly = R.bool r in
    Digest_of { bd_client; bd_id; bd_digest; bd_readonly }
  | _ -> raise R.Truncated

let enc_prepared_info w pi =
  W.varint w pi.pi_view;
  W.varint w pi.pi_seq;
  W.lstring w pi.pi_digest;
  W.list w enc_batch_item pi.pi_batch

let dec_prepared_info r =
  let pi_view = R.varint r in
  let pi_seq = R.varint r in
  let pi_digest = R.lstring r in
  let pi_batch = R.list r dec_batch_item in
  { pi_view; pi_seq; pi_digest; pi_batch }

(* --- payload --- *)

let enc_payload w = function
  | Request_msg rq ->
    W.u8 w 1;
    enc_request w rq
  | Pre_prepare p ->
    W.u8 w 2;
    W.varint w p.pp_view;
    W.varint w p.pp_seq;
    W.list w enc_batch_item p.pp_batch;
    W.lstring w p.pp_nondet
  | Prepare p ->
    W.u8 w 3;
    W.varint w p.p_view;
    W.varint w p.p_seq;
    W.lstring w p.p_digest;
    W.varint w p.p_replica
  | Commit c ->
    W.u8 w 4;
    W.varint w c.c_view;
    W.varint w c.c_seq;
    W.lstring w c.c_digest;
    W.varint w c.c_replica
  | Reply rp ->
    W.u8 w 5;
    W.varint w rp.r_view;
    W.varint w rp.r_client;
    W.varint w rp.r_id;
    W.varint w rp.r_replica;
    W.lstring w rp.r_result;
    W.bool w rp.r_tentative;
    W.option w W.lstring rp.r_partial
  | Checkpoint_msg c ->
    W.u8 w 6;
    W.varint w c.ck_seq;
    W.lstring w c.ck_digest;
    W.varint w c.ck_replica
  | View_change vc ->
    W.u8 w 7;
    W.varint w vc.vc_new_view;
    W.varint w vc.vc_stable_seq;
    W.lstring w vc.vc_stable_digest;
    W.list w enc_prepared_info vc.vc_prepared;
    W.varint w vc.vc_replica
  | New_view nv ->
    W.u8 w 8;
    W.varint w nv.nv_view;
    W.list w
      (fun w (id, d) ->
        W.varint w id;
        W.lstring w d)
      nv.nv_view_change_digests;
    W.list w
      (fun w (seq, batch) ->
        W.varint w seq;
        W.list w enc_batch_item batch)
      nv.nv_pre_prepares
  | Session_key sk ->
    W.u8 w 9;
    W.varint w sk.sk_sender;
    W.varint w sk.sk_target;
    W.lstring w sk.sk_key_box
  | Join_request j ->
    W.u8 w 10;
    W.varint w j.j_addr;
    W.lstring w j.j_pubkey;
    W.lstring w j.j_nonce
  | Join_challenge jc ->
    W.u8 w 11;
    W.varint w jc.jc_replica;
    W.varint w jc.jc_addr;
    W.lstring w jc.jc_nonce
  | Join_response jr ->
    W.u8 w 12;
    W.varint w jr.jr_addr;
    W.lstring w jr.jr_proof;
    W.lstring w jr.jr_pubkey;
    W.lstring w jr.jr_idbuf
  | Join_reply jl ->
    W.u8 w 13;
    W.varint w jl.jl_replica;
    W.varint w jl.jl_client;
    W.bool w jl.jl_ok
  | Leave_msg l ->
    W.u8 w 14;
    W.varint w l.lv_client
  | Fetch_meta f ->
    W.u8 w 15;
    W.varint w f.fm_seq;
    W.varint w f.fm_replica
  | State_meta s ->
    W.u8 w 16;
    W.varint w s.sm_seq;
    W.varint w s.sm_replica;
    W.list w W.lstring s.sm_leaves
  | Fetch_pages f ->
    W.u8 w 17;
    W.varint w f.fp_seq;
    W.list w W.varint f.fp_pages;
    W.varint w f.fp_replica
  | State_pages s ->
    W.u8 w 18;
    W.varint w s.sp_seq;
    W.varint w s.sp_replica;
    W.list w
      (fun w (i, p) ->
        W.varint w i;
        W.lstring w p)
      s.sp_pages
  | Fetch_body f ->
    W.u8 w 19;
    W.lstring w f.fb_digest;
    W.varint w f.fb_replica
  | Body b ->
    W.u8 w 20;
    enc_request w b.b_request
  | Fetch_entry f ->
    W.u8 w 21;
    W.varint w f.fe_seq;
    W.varint w f.fe_replica
  | Entry e ->
    W.u8 w 22;
    W.varint w e.en_seq;
    W.varint w e.en_view;
    W.list w enc_batch_item e.en_batch;
    W.lstring w e.en_nondet
  | Status st ->
    W.u8 w 23;
    W.varint w st.st_replica;
    W.varint w st.st_view;
    W.varint w st.st_last_exec
  | Key_request kq ->
    W.u8 w 24;
    W.varint w kq.kq_replica

let dec_payload r =
  match R.u8 r with
  | 1 -> Request_msg (dec_request r)
  | 2 ->
    let pp_view = R.varint r in
    let pp_seq = R.varint r in
    let pp_batch = R.list r dec_batch_item in
    let pp_nondet = R.lstring r in
    Pre_prepare { pp_view; pp_seq; pp_batch; pp_nondet }
  | 3 ->
    let p_view = R.varint r in
    let p_seq = R.varint r in
    let p_digest = R.lstring r in
    let p_replica = R.varint r in
    Prepare { p_view; p_seq; p_digest; p_replica }
  | 4 ->
    let c_view = R.varint r in
    let c_seq = R.varint r in
    let c_digest = R.lstring r in
    let c_replica = R.varint r in
    Commit { c_view; c_seq; c_digest; c_replica }
  | 5 ->
    let r_view = R.varint r in
    let r_client = R.varint r in
    let r_id = R.varint r in
    let r_replica = R.varint r in
    let r_result = R.lstring r in
    let r_tentative = R.bool r in
    let r_partial = R.option r R.lstring in
    Reply { r_view; r_client; r_id; r_replica; r_result; r_tentative; r_partial }
  | 6 ->
    let ck_seq = R.varint r in
    let ck_digest = R.lstring r in
    let ck_replica = R.varint r in
    Checkpoint_msg { ck_seq; ck_digest; ck_replica }
  | 7 ->
    let vc_new_view = R.varint r in
    let vc_stable_seq = R.varint r in
    let vc_stable_digest = R.lstring r in
    let vc_prepared = R.list r dec_prepared_info in
    let vc_replica = R.varint r in
    View_change { vc_new_view; vc_stable_seq; vc_stable_digest; vc_prepared; vc_replica }
  | 8 ->
    let nv_view = R.varint r in
    let nv_view_change_digests =
      R.list r (fun r ->
          let id = R.varint r in
          let d = R.lstring r in
          (id, d))
    in
    let nv_pre_prepares =
      R.list r (fun r ->
          let seq = R.varint r in
          let batch = R.list r dec_batch_item in
          (seq, batch))
    in
    New_view { nv_view; nv_view_change_digests; nv_pre_prepares }
  | 9 ->
    let sk_sender = R.varint r in
    let sk_target = R.varint r in
    let sk_key_box = R.lstring r in
    Session_key { sk_sender; sk_target; sk_key_box }
  | 10 ->
    let j_addr = R.varint r in
    let j_pubkey = R.lstring r in
    let j_nonce = R.lstring r in
    Join_request { j_addr; j_pubkey; j_nonce }
  | 11 ->
    let jc_replica = R.varint r in
    let jc_addr = R.varint r in
    let jc_nonce = R.lstring r in
    Join_challenge { jc_replica; jc_addr; jc_nonce }
  | 12 ->
    let jr_addr = R.varint r in
    let jr_proof = R.lstring r in
    let jr_pubkey = R.lstring r in
    let jr_idbuf = R.lstring r in
    Join_response { jr_addr; jr_proof; jr_pubkey; jr_idbuf }
  | 13 ->
    let jl_replica = R.varint r in
    let jl_client = R.varint r in
    let jl_ok = R.bool r in
    Join_reply { jl_replica; jl_client; jl_ok }
  | 14 -> Leave_msg { lv_client = R.varint r }
  | 15 ->
    let fm_seq = R.varint r in
    let fm_replica = R.varint r in
    Fetch_meta { fm_seq; fm_replica }
  | 16 ->
    let sm_seq = R.varint r in
    let sm_replica = R.varint r in
    let sm_leaves = R.list r R.lstring in
    State_meta { sm_seq; sm_replica; sm_leaves }
  | 17 ->
    let fp_seq = R.varint r in
    let fp_pages = R.list r R.varint in
    let fp_replica = R.varint r in
    Fetch_pages { fp_seq; fp_pages; fp_replica }
  | 18 ->
    let sp_seq = R.varint r in
    let sp_replica = R.varint r in
    let sp_pages =
      R.list r (fun r ->
          let i = R.varint r in
          let p = R.lstring r in
          (i, p))
    in
    State_pages { sp_seq; sp_replica; sp_pages }
  | 19 ->
    let fb_digest = R.lstring r in
    let fb_replica = R.varint r in
    Fetch_body { fb_digest; fb_replica }
  | 20 -> Body { b_request = dec_request r }
  | 21 ->
    let fe_seq = R.varint r in
    let fe_replica = R.varint r in
    Fetch_entry { fe_seq; fe_replica }
  | 22 ->
    let en_seq = R.varint r in
    let en_view = R.varint r in
    let en_batch = R.list r dec_batch_item in
    let en_nondet = R.lstring r in
    Entry { en_seq; en_view; en_batch; en_nondet }
  | 23 ->
    let st_replica = R.varint r in
    let st_view = R.varint r in
    let st_last_exec = R.varint r in
    Status { st_replica; st_view; st_last_exec }
  | 24 -> Key_request { kq_replica = R.varint r }
  | _ -> raise R.Truncated

let enc_auth w = function
  | No_auth -> W.u8 w 0
  | Signed s ->
    W.u8 w 1;
    W.lstring w s
  | Authenticated a ->
    W.u8 w 2;
    Crypto.Authenticator.encode w a

let dec_auth r =
  match R.u8 r with
  | 0 -> No_auth
  | 1 -> Signed (R.lstring r)
  | 2 -> Authenticated (Crypto.Authenticator.decode r)
  | _ -> raise R.Truncated

(* --- hot-path memo caches ---

   Every cache below memoizes a *pure* function of an immutable value,
   probed by physical equality, so a hit returns exactly what a fresh
   computation would. They change host time only: virtual costs are
   charged by the replica/client layers regardless of whether the host
   recomputed the bytes. Single-domain, like the simulator itself. *)

(* Bounded ring of the most recent [n] key→value pairs, probed newest
   first by physical equality. *)
module Ring = struct
  type ('k, 'v) t = { slots : ('k * 'v) option array; mutable next : int }

  let create n = { slots = Array.make n None; next = 0 }

  let find t key =
    let n = Array.length t.slots in
    let rec probe i remaining =
      if remaining = 0 then None
      else
        match t.slots.(i) with
        (* Pointer equality on purpose: best-effort memo keyed by the
           exact wire string instance. *)
        | Some (k, v) when ((k == key) [@detlint.allow physical_eq]) -> Some v
        | _ -> probe (if i = 0 then n - 1 else i - 1) (remaining - 1)
    in
    probe ((t.next + n - 1) mod n) n

  let add t key v =
    t.slots.(t.next) <- Some (key, v);
    t.next <- (t.next + 1) mod Array.length t.slots
end

(* payload → canonical bytes. Seeded at decode time (the wire carries the
   payload bytes verbatim), so a receiver's MAC check never re-encodes
   the payload it just parsed. *)
let pb_cache : (payload, string) Ring.t = Ring.create 64

let payload_bytes p =
  match Ring.find pb_cache p with
  | Some s -> s
  | None ->
    let s = Util.Codec.encode enc_payload p in
    Ring.add pb_cache p s;
    s

(* wire → the payload-bytes string it was built from. Receivers that
   decode a wire we sent in-process recover the sender's *physical* pb
   string, so downstream memo caches (MAC tags, digests) hit across the
   sender/receiver boundary. *)
let wire_pb : (string, string) Ring.t = Ring.create 64

let encode_wire ~payload_bytes:pb auth =
  let w = W.create ~capacity:(String.length pb + 96) () in
  W.lstring w pb;
  enc_auth w auth;
  let wire = W.contents w in
  Ring.add wire_pb wire pb;
  wire

let encode t = encode_wire ~payload_bytes:(payload_bytes t.payload) t.auth

(* wire string → decoded message. A multicast delivers the same physical
   string to every receiver (encode-once in Replica/Client), so the n−1
   redundant parses collapse into ring hits; receivers share the decoded
   message, which is safe because messages are immutable. *)
let decode_ring : (string, t option) Ring.t = Ring.create 64

let decode_fresh s =
  match
    Util.Codec.decode
      (fun r ->
        let pb = R.lstring r in
        let pb =
          (* Prefer the sender's physical pb string when this wire was
             encoded in-process (guarded by content equality, so a forged
             lookalike wire cannot alias). *)
          match Ring.find wire_pb s with
          | Some pb0 when String.equal pb0 pb -> pb0
          | _ -> pb
        in
        let auth = dec_auth r in
        let payload = Util.Codec.decode dec_payload pb in
        Ring.add pb_cache payload pb;
        { payload; auth })
      s
  with
  | t -> Some t
  | exception R.Truncated -> None

let decode s =
  match Ring.find decode_ring s with
  | Some r -> r
  | None ->
    let r = decode_fresh s in
    Ring.add decode_ring s r;
    r

let digest_of_payload p = Crypto.Sha256.digest (payload_bytes p)

(* request → digest, direct-mapped on (client, id) and confirmed by
   physical equality. The same request body is digested at ≥6 sites per
   request lifetime (batching, pre-prepare handling, entry replay); the
   decode ring makes all replicas share one physical copy, so each body
   is hashed once per node instead. *)
let rq_digest_slots = 4096
let rq_digest_cache : (request * digest) option array = Array.make rq_digest_slots None

let request_digest rq =
  let idx = ((rq.rq_client * 0x9e3779b1) lxor rq.rq_id) land (rq_digest_slots - 1) in
  match Array.unsafe_get rq_digest_cache idx with
  (* Pointer equality on purpose: a miss on an equal-but-distinct request
     record only costs a recompute of the same digest. *)
  | Some (r, d) when ((r == rq) [@detlint.allow physical_eq]) -> d
  | _ ->
    let d = Crypto.Sha256.digest ("req|" ^ Util.Codec.encode enc_request rq) in
    Array.unsafe_set rq_digest_cache idx (Some (rq, d));
    d

let batch_item_digest = function
  | Full rq -> request_digest rq
  | Digest_of d -> d.bd_digest

let batch_item_client_id = function
  | Full rq -> (rq.rq_client, rq.rq_id)
  | Digest_of d -> (d.bd_client, d.bd_id)

let batch_cache : (batch_item list, digest) Ring.t = Ring.create 32

let batch_digest items =
  match Ring.find batch_cache items with
  | Some d -> d
  | None ->
    let d =
      Crypto.Sha256.digest ("batch|" ^ String.concat "" (List.map batch_item_digest items))
    in
    Ring.add batch_cache items d;
    d

let label = function
  | Request_msg _ -> "request"
  | Pre_prepare _ -> "pre-prepare"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Reply _ -> "reply"
  | Checkpoint_msg _ -> "checkpoint"
  | View_change _ -> "view-change"
  | New_view _ -> "new-view"
  | Session_key _ -> "session-key"
  | Join_request _ -> "join-request"
  | Join_challenge _ -> "join-challenge"
  | Join_response _ -> "join-response"
  | Join_reply _ -> "join-reply"
  | Leave_msg _ -> "leave"
  | Fetch_meta _ -> "fetch-meta"
  | State_meta _ -> "state-meta"
  | Fetch_pages _ -> "fetch-pages"
  | State_pages _ -> "state-pages"
  | Fetch_body _ -> "fetch-body"
  | Body _ -> "body"
  | Fetch_entry _ -> "fetch-entry"
  | Entry _ -> "entry"
  | Status _ -> "status"
  | Key_request _ -> "key-request"

let describe = function
  | Request_msg rq -> Printf.sprintf "client=%d id=%d%s" rq.rq_client rq.rq_id
                        (if rq.rq_readonly then " ro" else "")
  | Pre_prepare p -> Printf.sprintf "v=%d n=%d batch=%d" p.pp_view p.pp_seq (List.length p.pp_batch)
  | Prepare p -> Printf.sprintf "v=%d n=%d from=%d" p.p_view p.p_seq p.p_replica
  | Commit c -> Printf.sprintf "v=%d n=%d from=%d" c.c_view c.c_seq c.c_replica
  | Reply rp ->
    Printf.sprintf "client=%d id=%d from=%d%s" rp.r_client rp.r_id rp.r_replica
      (if rp.r_tentative then " tentative" else "")
  | Checkpoint_msg c -> Printf.sprintf "n=%d from=%d" c.ck_seq c.ck_replica
  | View_change vc -> Printf.sprintf "to-view=%d stable=%d from=%d" vc.vc_new_view vc.vc_stable_seq vc.vc_replica
  | New_view nv -> Printf.sprintf "v=%d repropose=%d" nv.nv_view (List.length nv.nv_pre_prepares)
  | Session_key sk -> Printf.sprintf "sender=%d target=%d" sk.sk_sender sk.sk_target
  | Join_request j -> Printf.sprintf "addr=%d" j.j_addr
  | Join_challenge jc -> Printf.sprintf "from=%d addr=%d" jc.jc_replica jc.jc_addr
  | Join_response jr -> Printf.sprintf "addr=%d" jr.jr_addr
  | Join_reply jl -> Printf.sprintf "from=%d client=%d ok=%b" jl.jl_replica jl.jl_client jl.jl_ok
  | Leave_msg l -> Printf.sprintf "client=%d" l.lv_client
  | Fetch_meta f -> Printf.sprintf "n=%d from=%d" f.fm_seq f.fm_replica
  | State_meta s -> Printf.sprintf "n=%d leaves=%d" s.sm_seq (List.length s.sm_leaves)
  | Fetch_pages f -> Printf.sprintf "n=%d pages=%d" f.fp_seq (List.length f.fp_pages)
  | State_pages s -> Printf.sprintf "n=%d pages=%d" s.sp_seq (List.length s.sp_pages)
  | Fetch_body f -> Printf.sprintf "digest=%s from=%d" (Util.Hexdump.short f.fb_digest) f.fb_replica
  | Body b -> Printf.sprintf "client=%d id=%d" b.b_request.rq_client b.b_request.rq_id
  | Fetch_entry f -> Printf.sprintf "n=%d from=%d" f.fe_seq f.fe_replica
  | Entry e -> Printf.sprintf "n=%d v=%d batch=%d" e.en_seq e.en_view (List.length e.en_batch)
  | Status st -> Printf.sprintf "from=%d v=%d le=%d" st.st_replica st.st_view st.st_last_exec
  | Key_request kq -> Printf.sprintf "from=%d" kq.kq_replica
