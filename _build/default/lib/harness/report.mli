(** Uniform experiment reports: paper value vs measured value per row,
    rendered as aligned text tables for EXPERIMENTS.md and the CLI. *)

type row = {
  name : string;
  paper : float option;  (** the paper's reported number, if it gives one *)
  measured : float;
  unit_ : string;
  note : string;
}

type t = { title : string; rows : row list; commentary : string list }

val row : ?paper:float -> ?note:string -> ?unit_:string -> string -> float -> row
val render : t -> string
