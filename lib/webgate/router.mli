(** The sharded front door: one well-known edge address that routes
    session operations across N independent PBFT replica groups.

    Single-shard operations take the {!Frontdoor} path per shard — a
    private lane with its own coalescing queue, size/deadline flush
    triggers and upstream connection pool — dispatched untouched to the
    owning group's ordered or read-only fast path (a lane batch rides
    the fast path only when every operation in it is provably
    read-only). Cross-shard operations run the {!Relsql.Twopc} protocol
    with the router as the *untrusted* coordinator: involved lanes are
    blocked and drained (so a shard is single-occupancy before its
    prepare arrives), each group prepares its slice of the transaction
    as an ordered op whose agreed reply — with its f+1 threshold
    certificate when the deployment deals service keys — is the shard's
    vote, and the commit sent to every group carries all votes for the
    groups themselves to verify. On a vote-abort, a prepare timeout, or
    a Byzantine participant the router aborts everywhere; each shard's
    copy-on-write undo snapshot makes that roll-back cheap, and the
    agreed prepare deadline bounds the damage a crashed or malicious
    coordinator (including this router, were it compromised) can do.

    Cross-shard transactions serialize through the router one at a
    time: with blocked, quiesced lanes there is nothing to overlap
    them with, and single-shard traffic on uninvolved lanes keeps
    flowing — the scaling story the sharded bench measures.

    A session's cached last reply is keyed on (route, request id), not
    the request id alone: a single-shard retransmission must never
    match a stale cross-shard reply that happened to reuse the id. *)

type config = {
  topology : Relsql.Shard.topology;
  flush_bytes : int;
  flush_deadline : float;
  max_queue : int;  (** per-lane (and cross-queue) admission bound *)
  max_sessions : int;
  prepare_timeout : float;  (** coordinator patience before aborting a 2PC round *)
  tx_ttl : float;  (** agreed prepare deadline delta carried in the prepare op *)
}

type t

val create :
  cfg:config ->
  engine:Simnet.Engine.t ->
  net:Simnet.Net.t ->
  classify:(string -> bool) ->
  lanes:(Pbft.Client.t array * Pbft.Client.t) array ->
  unit ->
  t
(** [net] is the edge net sessions reach the router on (bound at
    {!Frontdoor.frontdoor_addr}, same frame codec). [lanes.(s)] is shard
    [s]'s upstream pool: (data connections, control connection) — all
    clients of group [s] on that group's own net. [classify] is the
    service's read-only proof. Raises [Invalid_argument] if the lane
    count differs from the topology's shard count. *)

val completed : t -> int
val shard_completed : t -> int array
(** Session operations completed per shard; a cross-shard commit counts
    once for every participant. *)

val cross_commits : t -> int
val cross_aborts : t -> int
val cross_timeouts : t -> int
(** Of {!cross_aborts}, those triggered by the coordinator's prepare
    timer rather than a participant's vote. *)

val shed : t -> int
val rejected : t -> int
val reply_cache_hits : t -> int
val queue_peaks : t -> int array
(** Per-lane pending-queue high-water marks. *)

val cross_queue_peak : t -> int
val session_evictions : t -> int
val latency_stats : t -> Util.Stats.t
val shutdown : t -> unit
