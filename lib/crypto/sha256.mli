(** SHA-256, implemented from scratch (FIPS 180-4).

    The paper's PBFT code base uses MD5 for digests; we substitute SHA-256
    (see DESIGN.md) — the digest's role (request identity, Merkle hashing,
    checkpoint digests) only needs collision resistance. *)

val digest_size : int
(** 32 bytes. *)

val digest : string -> string
(** [digest msg] is the 32-byte SHA-256 of [msg]. *)

val hex : string -> string
(** Convenience: lowercase hex of [digest msg]. *)

type ctx
(** Streaming interface for hashing large state pages without copying. *)

val init : unit -> ctx

val copy : ctx -> ctx
(** Snapshot of the running state — lets a caller cache a midstate (e.g.
    HMAC's key pads) and branch many messages off it. *)

val feed : ctx -> string -> unit
val feed_bytes : ctx -> bytes -> pos:int -> len:int -> unit
val finalize : ctx -> string

val bytes_hashed : unit -> int
(** Host-side instrumentation: total message bytes hashed process-wide
    since startup (across all contexts). Monotone; sample before/after a
    workload and subtract. *)
