(* End-to-end integration: the SQL state abstraction under PBFT, the
   e-voting application, and the experiment harness itself. *)

open Pbft

let state_digest r = Statemgr.Merkle.root (Statemgr.Merkle.build (Replica.pages r))

(* --- replicated SQL --- *)

let test_sql_service_basic () =
  let cluster =
    Cluster.create ~seed:1 ~num_clients:2 ~service:(Relsql.Pbft_service.service ())
      (Config.default ~f:1)
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c = Cluster.client cluster 0 in
  let count = ref "" in
  Client.invoke c (Relsql.Pbft_service.insert_vote_sql ~voter:"v1" ~choice:"a") (fun r ->
      Alcotest.(check string) "insert ok" "ok:1" r;
      Client.invoke c "SELECT COUNT(*) FROM votes" (fun r -> count := String.trim r));
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check bool) "count is 1" true
    (String.length !count >= 1 && !count.[String.length !count - 1] = '1')

let test_sql_replicas_converge_with_nondeterminism () =
  (* NOW() and RANDOM() appear in every insert; replicas stay identical
     because the values come from the agreed pre-prepare data (§2.5). *)
  let cluster =
    Cluster.create ~seed:2 ~num_clients:4 ~service:(Relsql.Pbft_service.service ())
      (Config.default ~f:1)
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  Array.iteri
    (fun i cl ->
      let rec go n =
        if n <= 10 then
          Client.invoke cl
            (Relsql.Pbft_service.insert_vote_sql
               ~voter:(Printf.sprintf "v%d-%d" i n)
               ~choice:"x")
            (fun _ -> go (n + 1))
      in
      go 1)
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:20.0;
  let digests = Array.map state_digest (Cluster.replicas cluster) in
  Array.iter (fun d -> Alcotest.(check string) "replicas identical" digests.(0) d) digests;
  Alcotest.(check int) "all executed" 40 (Replica.executed_requests (Cluster.replica cluster 0))

let test_sql_error_replies_consistent () =
  let cluster =
    Cluster.create ~seed:3 ~num_clients:1 ~service:(Relsql.Pbft_service.service ())
      (Config.default ~f:1)
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let c = Cluster.client cluster 0 in
  let reply = ref "" in
  Client.invoke c "INSERT INTO nonexistent (x) VALUES (1)" (fun r -> reply := r);
  Cluster.run cluster ~seconds:5.0;
  (* The reply completed, meaning f+1 replicas produced the *same* error. *)
  Alcotest.(check bool) "error reply" true
    (String.length !reply >= 6 && String.sub !reply 0 6 = "error:")

let test_sql_state_transfer_repairs_engine () =
  (* A replica misses a batch (lost body), recovers via state transfer,
     and its SQL engine — whose pager reads through the transferred
     region — serves the right data afterwards. *)
  let cluster =
    Cluster.create ~seed:4 ~num_clients:4 ~service:(Relsql.Pbft_service.service ())
      (Config.default ~f:1)
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let stop = ref false in
  Array.iteri
    (fun i cl ->
      let n = ref 0 in
      let rec loop _ =
        if not !stop then begin
          incr n;
          Client.invoke cl
            (Relsql.Pbft_service.insert_vote_sql ~voter:(Printf.sprintf "v%d-%d" i !n) ~choice:"c")
            loop
        end
      in
      loop "")
    (Cluster.clients cluster);
  Simnet.Engine.schedule (Cluster.engine cluster) ~delay:0.3 (fun () ->
      ignore
        (Simnet.Net.drop_next_matching (Cluster.net cluster) (fun ~src ~dst ~label ->
             src >= Types.client_addr_base && dst = 2 && label = "request")));
  Cluster.run cluster ~seconds:8.0;
  stop := true;
  Cluster.run cluster ~seconds:2.0;
  let r2 = Cluster.replica cluster 2 in
  Alcotest.(check bool) "transfer happened" true (Replica.state_transfers r2 >= 1);
  (* Ask the recovered replica (read-only executes locally at every
     replica, so matching replies require the victim to be consistent). *)
  let count = ref "" in
  Client.invoke (Cluster.client cluster 0) ~readonly:true "SELECT COUNT(*) FROM votes" (fun r ->
      count := r);
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check bool) "read-only quorum reached after recovery" true (!count <> "")

(* --- e-voting --- *)

let voting_cluster () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let cluster = Cluster.create ~seed:5 ~num_clients:4 ~service:(Evoting.service ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let joined = ref 0 in
  Array.iteri
    (fun i cl ->
      Client.join cl
        ~idbuf:(Printf.sprintf "voter%d:pw" i)
        (function Some _ -> incr joined | None -> ()))
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:5.0;
  Alcotest.(check int) "everyone joined" 4 !joined;
  cluster

let test_evoting_end_to_end () =
  let cluster = voting_cluster () in
  let official = Cluster.client cluster 0 in
  let accepted = ref 0 and rejected = ref 0 in
  Client.invoke official (Evoting.create_election_sql ~name:"test") (fun _ -> ());
  Cluster.run cluster ~seconds:2.0;
  Array.iteri
    (fun i cl ->
      Client.invoke cl
        (Evoting.cast_vote_sql ~election:1 ~voter:(Printf.sprintf "voter%d" i)
           ~choice:(if i < 3 then "yes" else "no"))
        (fun r -> if Evoting.vote_accepted r then incr accepted else incr rejected))
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:3.0;
  Alcotest.(check int) "all ballots accepted" 4 !accepted;
  (* Duplicate ballot rejected deterministically. *)
  Client.invoke (Cluster.client cluster 1)
    (Evoting.cast_vote_sql ~election:1 ~voter:"voter1" ~choice:"no")
    (fun r -> if Evoting.vote_accepted r then incr accepted else incr rejected);
  Cluster.run cluster ~seconds:3.0;
  Alcotest.(check int) "duplicate rejected" 1 !rejected;
  (* Tally through the read-only path. *)
  let tally = ref "" in
  Client.invoke official ~readonly:true (Evoting.tally_sql ~election:1) (fun r -> tally := r);
  Cluster.run cluster ~seconds:3.0;
  let has_yes3 = ref false in
  String.split_on_char '\n' !tally
  |> List.iter (fun line -> if String.trim line = "yes | 3" then has_yes3 := true);
  Alcotest.(check bool) ("tally correct: " ^ !tally) true !has_yes3

let test_evoting_ballot_id_stability () =
  (* The ballot id is what makes double voting detectable across
     replicas; it must be a pure function of (election, voter). *)
  let a = Evoting.cast_vote_sql ~election:1 ~voter:"alice" ~choice:"x" in
  let b = Evoting.cast_vote_sql ~election:1 ~voter:"alice" ~choice:"y" in
  let id_of sql = List.hd (String.split_on_char ',' (List.nth (String.split_on_char '(' sql) 2)) in
  Alcotest.(check string) "same voter same id" (id_of a) (id_of b);
  let c = Evoting.cast_vote_sql ~election:2 ~voter:"alice" ~choice:"x" in
  Alcotest.(check bool) "different election different id" false (id_of a = id_of c)

(* --- threshold reply certificates (§3.3.1) --- *)

let test_certified_replies () =
  let cluster =
    Cluster.create ~seed:9 ~num_clients:2 ~service:(Service.counter ()) ~threshold_replies:true
      (Config.default ~f:1)
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let pk = Option.get (Cluster.threshold_public cluster) in
  let c = Cluster.client cluster 0 in
  let got = ref None in
  Client.invoke_certified c "incr" (fun result cert -> got := Some (result, cert));
  Cluster.run cluster ~seconds:5.0;
  match !got with
  | Some (result, Some cert) ->
    Alcotest.(check string) "result" "1" result;
    Alcotest.(check bool) "certificate verifies offline" true
      (Certificate.verify pk ~client:1 ~rq_id:1 ~result cert);
    Alcotest.(check bool) "wrong result rejected" false
      (Certificate.verify pk ~client:1 ~rq_id:1 ~result:"2" cert);
    Alcotest.(check bool) "wrong request rejected" false
      (Certificate.verify pk ~client:1 ~rq_id:2 ~result cert);
    Alcotest.(check bool) "wrong client rejected" false
      (Certificate.verify pk ~client:2 ~rq_id:1 ~result cert)
  | Some (_, None) -> Alcotest.fail "no certificate combined"
  | None -> Alcotest.fail "request did not complete"

let test_certificates_absent_without_key () =
  let cluster = Cluster.create ~seed:10 ~num_clients:1 ~service:(Service.counter ()) (Config.default ~f:1) in
  Simnet.Trace.set_enabled (Cluster.trace cluster) false;
  let got = ref None in
  Client.invoke_certified (Cluster.client cluster 0) "incr" (fun r c -> got := Some (r, c));
  Cluster.run cluster ~seconds:5.0;
  match !got with
  | Some (_, None) -> ()
  | Some (_, Some _) -> Alcotest.fail "unexpected certificate"
  | None -> Alcotest.fail "request did not complete"

(* --- harness smoke --- *)

let test_scenario_runs_and_measures () =
  let spec =
    { (Harness.Scenario.default_spec (Config.default ~f:1)) with
      Harness.Scenario.duration = 0.3; warmup = 0.1 }
  in
  let o = Harness.Scenario.run spec in
  Alcotest.(check bool) "throughput positive" true (o.Harness.Scenario.tps > 1000.0);
  Alcotest.(check bool) "latency sane" true
    (o.Harness.Scenario.mean_latency > 0.0 && o.Harness.Scenario.mean_latency < 0.1);
  Alcotest.(check int) "no view changes" 0 o.Harness.Scenario.view_changes

let test_scenario_dynamic_mode () =
  let cfg = { (Config.default ~f:1) with Config.dynamic_clients = true } in
  let spec =
    { (Harness.Scenario.default_spec cfg) with
      Harness.Scenario.duration = 0.3; warmup = 0.1; num_clients = 4 }
  in
  let o = Harness.Scenario.run spec in
  Alcotest.(check bool) "dynamic workload runs" true (o.Harness.Scenario.tps > 100.0)

(* Substring containment without extra libraries. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_report_rendering () =
  let r =
    {
      Harness.Report.title = "t";
      rows = [ Harness.Report.row ~paper:100.0 ~note:"n" "cfg" 42.0 ];
      commentary = [ "c" ];
    }
  in
  let s = Harness.Report.render r in
  List.iter
    (fun frag -> Alcotest.(check bool) ("contains " ^ frag) true (contains s frag))
    [ "t"; "cfg"; "100"; "42"; "n"; "c" ]

let test_figure_traces_nonempty () =
  let f1 = Harness.Experiments.figure1 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("figure1 has " ^ needle) true (contains f1 needle))
    [ "request"; "pre-prepare"; "prepare"; "commit"; "reply" ];
  let f2 = Harness.Experiments.figure2 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("figure2 has " ^ needle) true (contains f2 needle))
    [ "join-request"; "join-challenge"; "join-response"; "join-reply" ]

(* --- host-time benchmark harness --- *)

(* The perf caches (wire sharing, digest memos, MAC memo) must not leak
   into simulation semantics: the same seed must yield the same
   virtual-time trace, entry for entry. *)
let test_trace_digest_deterministic () =
  let d1 = Harness.Hostbench.trace_digest ~seed:11 ~seconds:0.15 () in
  let d2 = Harness.Hostbench.trace_digest ~seed:11 ~seconds:0.15 () in
  Alcotest.(check string) "same seed, same trace" d1 d2;
  let d3 = Harness.Hostbench.trace_digest ~seed:12 ~seconds:0.15 () in
  Alcotest.(check bool) "different seed, different trace" true (d1 <> d3)

let test_hostbench_measure_and_json () =
  let m =
    { (Harness.Hostbench.table1_default ~seed:3 ~duration:0.2 ()) with Harness.Hostbench.name = "smoke" }
  in
  Alcotest.(check bool) "events counted" true (m.Harness.Hostbench.events > 0);
  Alcotest.(check bool) "bytes hashed" true (m.Harness.Hostbench.bytes_hashed > 0);
  Alcotest.(check bool) "virtual tps positive" true (m.Harness.Hostbench.virtual_tps > 0.0);
  Alcotest.(check bool) "host time sane" true (m.Harness.Hostbench.host_seconds >= 0.0);
  let json = Webgate.Json.parse (Harness.Hostbench.to_json ~now:"test" [ m ]) in
  Alcotest.(check string) "schema tag" "pbft-repro/bench/v7"
    (Webgate.Json.to_string_exn (Webgate.Json.member "schema" json));
  Alcotest.(check bool) "checkpoints counted" true (m.Harness.Hostbench.checkpoint_count > 0);
  match Webgate.Json.member "workloads" json with
  | Webgate.Json.Arr [ w ] ->
    Alcotest.(check string) "workload name" "smoke"
      (Webgate.Json.to_string_exn (Webgate.Json.member "name" w));
    List.iter
      (fun field ->
        match Webgate.Json.member field w with
        | Webgate.Json.Num _ -> ()
        | _ -> Alcotest.fail (field ^ " should be a number"))
      [
        "checkpoint_count";
        "undo_snapshots";
        "bytes_copied";
        "bytes_copied_per_checkpoint";
        "pages_read";
        "rows_scanned";
        "speculative_executions";
        "rollbacks";
        "tentative_completed";
        "stable_completed";
        "core_utilization";
        "p50_latency";
        "p95_latency";
        "p99_latency";
        "shed";
        "gw_evictions";
        "gw_queue_peak";
        "replica_queue_peak";
        "ro_cache_evictions";
        "sessions";
        "arrivals";
        "offered_load";
        "flushes_size";
        "flushes_deadline";
        "reply_cache_hits";
        "events_per_request";
        "alloc_per_request";
      ]
  | _ -> Alcotest.fail "workloads should hold the one measurement"

let () =
  Alcotest.run "integration"
    [
      ( "replicated-sql",
        [
          Alcotest.test_case "insert & count" `Quick test_sql_service_basic;
          Alcotest.test_case "nondeterminism converges (§2.5)" `Slow
            test_sql_replicas_converge_with_nondeterminism;
          Alcotest.test_case "error replies consistent" `Quick test_sql_error_replies_consistent;
          Alcotest.test_case "state transfer repairs engine" `Slow
            test_sql_state_transfer_repairs_engine;
        ] );
      ( "evoting",
        [
          Alcotest.test_case "end to end" `Slow test_evoting_end_to_end;
          Alcotest.test_case "ballot id stability" `Quick test_evoting_ballot_id_stability;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "threshold reply certificate (§3.3.1)" `Slow test_certified_replies;
          Alcotest.test_case "absent without service key" `Quick
            test_certificates_absent_without_key;
        ] );
      ( "harness",
        [
          Alcotest.test_case "scenario measures" `Slow test_scenario_runs_and_measures;
          Alcotest.test_case "dynamic scenario" `Slow test_scenario_dynamic_mode;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "figure traces" `Slow test_figure_traces_nonempty;
        ] );
      ( "hostbench",
        [
          Alcotest.test_case "trace digest deterministic" `Slow test_trace_digest_deterministic;
          Alcotest.test_case "measure & BENCH.json shape" `Slow test_hostbench_measure_and_json;
        ] );
    ]
