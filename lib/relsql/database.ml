type t = {
  vfs : Vfs.t;
  pager : Pager.t;
  cat : Catalog.t;
  mutable explicit_txn : bool;
  mutable rows_scanned : int;
  stmt_cache : (string, Ast.stmt list) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable planner_enabled : bool;
}

type row = Value.t array
type result = { columns : string list; rows : row list; affected : int }

type outcome = {
  res : (result, string) Stdlib.result;
  cost : float;
  pages_read : int;
  rows_scanned : int;
}

exception Sql_error of string

let sql_fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

(* Process-wide execution counters, in the style of
   [Crypto.Sha256.bytes_hashed]: the bench harness samples them around a
   run to report page/row traffic per workload. *)
let pages_read_acc = ref 0
let rows_scanned_acc = ref 0
let pages_read_total () = !pages_read_acc
let rows_scanned_total () = !rows_scanned_acc

let stmt_cache_capacity = 512

let open_db vfs =
  let pager = Pager.open_pager vfs in
  let cat = Catalog.attach pager in
  ignore (Vfs.take_cost vfs);
  ignore (Pager.take_pages_touched pager);
  {
    vfs;
    pager;
    cat;
    explicit_txn = false;
    rows_scanned = 0;
    stmt_cache = Hashtbl.create 64;
    cache_hits = 0;
    cache_misses = 0;
    planner_enabled = true;
  }

let in_transaction t = t.explicit_txn
let table_names t = Catalog.table_names t.cat
let stmt_cache_stats t = (t.cache_hits, t.cache_misses)
let set_planner_enabled t on = t.planner_enabled <- on

(* --- row & key encodings --- *)

let rowid_key rowid =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int rowid);
  Bytes.to_string b

let rowid_of_key key = Int64.to_int (String.get_int64_be key 0)

let encode_row (r : row) =
  Util.Codec.encode (fun w () -> Util.Codec.W.list w Value.encode (Array.to_list r)) ()

let decode_row s : row = Array.of_list (Util.Codec.decode (fun r -> Util.Codec.R.list r Value.decode) s)

let index_key v rowid = Value.key_encode v ^ "\x00" ^ rowid_key rowid

(* --- helpers --- *)

let env_of t bindings =
  { Expr.bindings; env_time = t.vfs.Vfs.time; env_random = t.vfs.Vfs.random }

let const_env t = env_of t []

let table_or_fail t name =
  match Catalog.find_table t.cat name with
  | Some tbl -> tbl
  | None -> sql_fail "no such table: %s" name

let tree_of t (tbl : Catalog.table) = Btree.open_tree t.pager ~root:tbl.tbl_root

let persist_tree t (tbl : Catalog.table) tree =
  if not (Int.equal (Btree.root tree) tbl.tbl_root) then begin
    let tbl = { tbl with tbl_root = Btree.root tree } in
    Catalog.update_table t.cat tbl;
    tbl
  end
  else tbl

let col_names = Plan.col_names
let pk_column = Plan.pk_column
let coerce = Plan.coerce

let scan t (tbl : Catalog.table) f =
  let tree = tree_of t tbl in
  Btree.iter tree (fun k v ->
      t.rows_scanned <- t.rows_scanned + 1;
      f (rowid_of_key k) (decode_row v))

(* --- index maintenance --- *)

let index_insert t (tbl : Catalog.table) rowid (r : row) =
  let cols = col_names tbl in
  List.fold_left
    (fun tbl (idx : Catalog.index_def) ->
      match List.find_index (String.equal (String.lowercase_ascii idx.idx_col)) cols with
      | None -> tbl
      | Some ci ->
        let tree = Btree.open_tree t.pager ~root:idx.Catalog.idx_root in
        Btree.insert tree ~key:(index_key r.(ci) rowid) ~value:"";
        if not (Int.equal (Btree.root tree) idx.idx_root) then begin
          let idxs =
            List.map
              (fun (i : Catalog.index_def) ->
                if i.idx_name = idx.idx_name then { i with Catalog.idx_root = Btree.root tree }
                else i)
              tbl.Catalog.tbl_indexes
          in
          let tbl = { tbl with Catalog.tbl_indexes = idxs } in
          Catalog.update_table t.cat tbl;
          tbl
        end
        else tbl)
    tbl tbl.Catalog.tbl_indexes

let index_delete t (tbl : Catalog.table) rowid (r : row) =
  let cols = col_names tbl in
  List.iter
    (fun (idx : Catalog.index_def) ->
      match List.find_index (String.equal (String.lowercase_ascii idx.idx_col)) cols with
      | None -> ()
      | Some ci ->
        let tree = Btree.open_tree t.pager ~root:idx.Catalog.idx_root in
        ignore (Btree.delete tree (index_key r.(ci) rowid)))
    tbl.Catalog.tbl_indexes

(* --- DDL --- *)

let do_create_table t name cols if_not_exists =
  match Catalog.find_table t.cat name with
  | Some _ ->
    if if_not_exists then { columns = []; rows = []; affected = 0 }
    else sql_fail "table %s already exists" name
  | None ->
    if cols = [] then sql_fail "table needs at least one column";
    let pk_count = List.length (List.filter (fun (c : Ast.column_def) -> c.col_pk) cols) in
    if pk_count > 1 then sql_fail "only one PRIMARY KEY column is supported";
    let tree = Btree.create t.pager in
    Catalog.create_table t.cat
      {
        Catalog.tbl_name = name;
        tbl_cols = cols;
        tbl_root = Btree.root tree;
        tbl_next_rowid = 1;
        tbl_indexes = [];
      };
    { columns = []; rows = []; affected = 0 }

let do_drop_table t name if_exists =
  match Catalog.find_table t.cat name with
  | None ->
    if if_exists then { columns = []; rows = []; affected = 0 }
    else sql_fail "no such table: %s" name
  | Some tbl ->
    Btree.drop (tree_of t tbl);
    List.iter
      (fun (idx : Catalog.index_def) -> Btree.drop (Btree.open_tree t.pager ~root:idx.idx_root))
      tbl.tbl_indexes;
    Catalog.drop_table t.cat name;
    { columns = []; rows = []; affected = 0 }

let do_create_index t name table col if_not_exists =
  (* Index names live in one namespace (DROP INDEX takes no table), so
     uniqueness is checked catalog-wide, not per table. *)
  match Catalog.find_index t.cat name with
  | Some _ ->
    if if_not_exists then { columns = []; rows = []; affected = 0 }
    else sql_fail "index %s already exists" name
  | None ->
  let tbl = table_or_fail t table in
  let cols = col_names tbl in
  let ci =
    match List.find_index (String.equal (String.lowercase_ascii col)) cols with
    | Some i -> i
    | None -> sql_fail "no such column: %s" col
  in
  let tree = Btree.create t.pager in
  (* Backfill from existing rows. *)
  let entries = ref [] in
  scan t tbl (fun rowid r ->
      entries := (index_key r.(ci) rowid, "") :: !entries;
      true);
  List.iter (fun (k, v) -> Btree.insert tree ~key:k ~value:v) !entries;
  let idx = { Catalog.idx_name = name; idx_col = col; idx_root = Btree.root tree } in
  Catalog.update_table t.cat { tbl with Catalog.tbl_indexes = idx :: tbl.tbl_indexes };
  { columns = []; rows = []; affected = 0 }

let do_drop_index t name if_exists =
  match Catalog.find_index t.cat name with
  | None ->
    if if_exists then { columns = []; rows = []; affected = 0 }
    else sql_fail "no such index: %s" name
  | Some (tbl, idx) ->
    Btree.drop (Btree.open_tree t.pager ~root:idx.Catalog.idx_root);
    Catalog.update_table t.cat
      {
        tbl with
        Catalog.tbl_indexes =
          List.filter
            (fun (i : Catalog.index_def) -> i.idx_name <> idx.Catalog.idx_name)
            tbl.Catalog.tbl_indexes;
      };
    { columns = []; rows = []; affected = 0 }

(* --- INSERT --- *)

let do_insert t table cols rows_exprs =
  let tbl = ref (table_or_fail t table) in
  let names = col_names !tbl in
  let positions =
    match cols with
    | [] -> List.mapi (fun i _ -> i) names
    | _ ->
      List.map
        (fun c ->
          match List.find_index (String.equal (String.lowercase_ascii c)) names with
          | Some i -> i
          | None -> sql_fail "no such column: %s" c)
        cols
  in
  let count = ref 0 in
  List.iter
    (fun exprs ->
      if List.length exprs <> List.length positions then sql_fail "value count mismatch";
      let r = Array.make (List.length names) Value.Null in
      List.iteri
        (fun i e ->
          let pos = List.nth positions i in
          let cdef = List.nth !tbl.Catalog.tbl_cols pos in
          r.(pos) <- coerce cdef (Expr.eval (const_env t) e))
        exprs;
      let rowid =
        match pk_column !tbl with
        | Some pki -> begin
          match r.(pki) with
          | Value.Int v -> v
          | Value.Null ->
            let v = !tbl.Catalog.tbl_next_rowid in
            r.(pki) <- Value.Int v;
            v
          | Value.Real _ | Value.Text _ -> sql_fail "PRIMARY KEY must be an integer"
        end
        | None -> !tbl.Catalog.tbl_next_rowid
      in
      let tree = tree_of t !tbl in
      if Option.is_some (Btree.find tree (rowid_key rowid)) then
        sql_fail "UNIQUE constraint failed: rowid %d" rowid;
      Btree.insert tree ~key:(rowid_key rowid) ~value:(encode_row r);
      tbl := persist_tree t !tbl tree;
      tbl := { !tbl with Catalog.tbl_next_rowid = Int.max !tbl.Catalog.tbl_next_rowid (rowid + 1) };
      Catalog.update_table t.cat !tbl;
      tbl := index_insert t !tbl rowid r;
      incr count)
    rows_exprs;
  { columns = []; rows = []; affected = !count }

(* --- SELECT --- *)

let expr_name i (e : Ast.expr) alias =
  match alias with
  | Some a -> a
  | None -> begin
    match e with
    | Ast.Col (_, name) -> name
    | Ast.Call (f, _) -> String.lowercase_ascii f
    | _ -> Printf.sprintf "col%d" (i + 1)
  end

(* Candidate rows for a single table via the planner's access path. The
   WHERE clause is NOT applied here — paths are supersets; callers filter
   through [matching_rows]. Rows always come back in [rowid_key] byte
   order — numeric rowid order except that negative rowids sort after
   positive ones (the key is a raw big-endian int64) — so the result is
   independent of which path the planner picked. *)
let candidate_rows t (tbl : Catalog.table) (where : Ast.expr option) =
  let full_scan () =
    let acc = ref [] in
    scan t tbl (fun rowid r ->
        acc := (rowid, r) :: !acc;
        true);
    List.rev !acc
  in
  let access = if t.planner_enabled then Plan.choose tbl where else Plan.Full_scan in
  match access with
  | Plan.Full_scan -> full_scan ()
  | Plan.No_rows -> []
  | Plan.Pk_probe rowid -> begin
    t.rows_scanned <- t.rows_scanned + 1;
    match Btree.find (tree_of t tbl) (rowid_key rowid) with
    | Some rv -> [ (rowid, decode_row rv) ]
    | None -> []
  end
  | Plan.Index_scan { idx; lo; hi } ->
    let tree = Btree.open_tree t.pager ~root:idx.Catalog.idx_root in
    let row_keys = ref [] in
    Btree.iter tree ?from:lo ?upto:hi (fun k _ ->
        row_keys := String.sub k (String.length k - 8) 8 :: !row_keys;
        true);
    let main = tree_of t tbl in
    (* Sort the raw keys, not decoded rowids: byte order is what a full
       scan of the row tree yields, and signed order differs from it for
       negative rowids. *)
    List.filter_map
      (fun rk ->
        t.rows_scanned <- t.rows_scanned + 1;
        Option.map (fun rv -> (rowid_of_key rk, decode_row rv)) (Btree.find main rk))
      (List.sort_uniq String.compare !row_keys)

(* Candidate rows with the predicate evaluated exactly once per row; the
   surviving environment is returned so SELECT/UPDATE/DELETE never pay a
   second evaluation. *)
let matching_rows t (tbl : Catalog.table) ~bname (where : Ast.expr option) =
  let names = col_names tbl in
  List.filter_map
    (fun (rowid, r) ->
      let env = env_of t [ { Expr.b_table = bname; b_cols = names; b_row = r } ] in
      let keep =
        match where with
        | None -> true
        | Some w ->
          let v = Expr.eval env w in
          (not (Value.is_null v)) && Value.truthy v
      in
      if keep then Some (rowid, r, env) else None)
    (candidate_rows t tbl where)

let eval_aggregate t groups_rows (e : Ast.expr) =
  (* Evaluate an aggregate-containing projection over a group of rows. *)
  let rec go (e : Ast.expr) =
    match e with
    | Ast.Call ("COUNT", [ Ast.Star ]) -> Value.Int (List.length groups_rows)
    | Ast.Call ("COUNT", [ arg ]) ->
      Value.Int
        (List.length
           (List.filter (fun env -> not (Value.is_null (Expr.eval env arg))) groups_rows))
    | Ast.Call (("SUM" | "AVG" | "MIN" | "MAX") as f, [ arg ]) ->
      let vals =
        List.filter_map
          (fun env ->
            let v = Expr.eval env arg in
            if Value.is_null v then None else Some v)
          groups_rows
      in
      if vals = [] then Value.Null
      else begin
        match f with
        | "MIN" -> List.fold_left (fun a v -> if Value.compare_sql v a < 0 then v else a) (List.hd vals) vals
        | "MAX" -> List.fold_left (fun a v -> if Value.compare_sql v a > 0 then v else a) (List.hd vals) vals
        | "SUM" | "AVG" ->
          let nums = List.filter_map Value.as_number vals in
          let sum = List.fold_left ( +. ) 0.0 nums in
          let all_int =
            List.for_all (fun v -> match v with Value.Int _ -> true | _ -> false) vals
          in
          if String.equal f "SUM" then
            if all_int then Value.Int (int_of_float sum) else Value.Real sum
          else Value.Real (sum /. float_of_int (List.length nums))
        | _ -> assert false
      end
    | Ast.Binop (op, a, b) -> begin
      let env1 = match groups_rows with e :: _ -> e | [] -> env_of t [] in
      ignore env1;
      (* Mixed aggregate expressions: evaluate subexpressions then combine. *)
      let va = go a and vb = go b in
      Expr.eval (env_of t []) (Ast.Binop (op, Ast.Lit va, Ast.Lit vb))
    end
    | Ast.Unop (op, a) -> Expr.eval (env_of t []) (Ast.Unop (op, Ast.Lit (go a)))
    | other -> begin
      (* Non-aggregate part: evaluate against the first row of the group
         (SQL's bare-column semantics). *)
      match groups_rows with
      | env :: _ -> Expr.eval env other
      | [] -> Value.Null
    end
  in
  go e

(* Static check: every column reference must resolve (uniquely) against
   the FROM tables — SQLite reports these at prepare time, and so do we,
   even when a table is empty. *)
let rec collect_cols acc (e : Ast.expr) =
  match e with
  | Ast.Col (q, n) -> (q, n) :: acc
  | Ast.Binop (_, a, b) | Ast.Like (a, b) -> collect_cols (collect_cols acc a) b
  | Ast.Unop (_, a) | Ast.Is_null (a, _) -> collect_cols acc a
  | Ast.Call (_, args) -> List.fold_left collect_cols acc args
  | Ast.Lit _ | Ast.Star -> acc

let validate_columns tables exprs =
  let refs = List.fold_left collect_cols [] exprs in
  List.iter
    (fun (q, n) ->
      let n = String.lowercase_ascii n in
      let hits =
        List.filter
          (fun (tbl, bname) ->
            (match q with Some q -> String.lowercase_ascii q = bname | None -> true)
            && List.mem n (col_names tbl))
          tables
      in
      match hits with
      | [ _ ] -> ()
      | [] -> sql_fail "no such column: %s" n
      | _ :: _ -> sql_fail "ambiguous column: %s" n)
    refs

let do_select t (s : Ast.select) =
  (* Bind FROM tables; expression-only selects get one empty binding set. *)
  let tables =
    List.map
      (fun (name, alias) ->
        let tbl = table_or_fail t name in
        let bname =
          String.lowercase_ascii (match alias with Some a -> a | None -> tbl.Catalog.tbl_name)
        in
        (tbl, bname))
      s.Ast.sel_from
  in
  validate_columns tables
    (List.filter (fun e -> e <> Ast.Star) (List.map fst s.Ast.sel_exprs)
    @ Option.to_list s.sel_where @ s.sel_group);
  let envs =
    match tables with
    | [ (tbl, bname) ] ->
      (* Single table: planner access path, predicate evaluated once. *)
      List.map (fun (_, _, env) -> env) (matching_rows t tbl ~bname s.sel_where)
    | _ ->
      (* Expression-only select ([]) or nested-loop cross product; the
         WHERE filter applies to the joined binding sets. *)
      let row_sets =
        match tables with
        | [] -> [ [] ]
        | _ ->
          List.fold_left
            (fun acc (tbl, bname) ->
              let rows = candidate_rows t tbl None in
              List.concat_map
                (fun partial ->
                  List.map
                    (fun (_, r) ->
                      partial @ [ { Expr.b_table = bname; b_cols = col_names tbl; b_row = r } ])
                    rows)
                acc)
            [ [] ] tables
      in
      List.filter_map
        (fun bindings ->
          let env = env_of t bindings in
          match s.sel_where with
          | None -> Some env
          | Some w ->
            let v = Expr.eval env w in
            if (not (Value.is_null v)) && Value.truthy v then Some env else None)
        row_sets
  in
  (* Expand * projections. *)
  let projections =
    List.concat_map
      (fun (e, alias) ->
        match e with
        | Ast.Star ->
          List.concat_map
            (fun (tbl, bname) ->
              List.map
                (fun c -> (Ast.Col (Some bname, c), Some c))
                (col_names tbl))
            tables
        | _ -> [ (e, alias) ])
      s.sel_exprs
  in
  let columns = List.mapi (fun i (e, alias) -> expr_name i e alias) projections in
  let has_aggregate = List.exists (fun (e, _) -> Expr.is_aggregate e) projections in
  let rows =
    if has_aggregate || s.sel_group <> [] then begin
      let groups =
        if s.sel_group = [] then (match envs with [] -> [ [] ] | _ -> [ envs ])
        else begin
          let tblg = Hashtbl.create 16 in
          let order = ref [] in
          List.iter
            (fun env ->
              let key =
                String.concat "\x01"
                  (List.map (fun g -> Value.key_encode (Expr.eval env g)) s.sel_group)
              in
              if not (Hashtbl.mem tblg key) then order := key :: !order;
              Hashtbl.replace tblg key (env :: Option.value ~default:[] (Hashtbl.find_opt tblg key)))
            envs;
          List.rev_map (fun k -> List.rev (Hashtbl.find tblg k)) !order |> List.rev
        end
      in
      List.map
        (fun group -> Array.of_list (List.map (fun (e, _) -> eval_aggregate t group e) projections))
        groups
    end
    else
      List.map
        (fun env -> Array.of_list (List.map (fun (e, _) -> Expr.eval env e) projections))
        envs
  in
  (* ORDER BY: sort keys computed against the projected row when the
     expression names an output column, else against the source env. *)
  let rows =
    match s.sel_order with
    | [] -> rows
    | order_items when has_aggregate || s.sel_group <> [] ->
      (* Order by output columns only in aggregate mode. *)
      let key_of row =
        List.map
          (fun (it : Ast.order_item) ->
            match it.ord_expr with
            | Ast.Col (None, name) -> begin
              match List.find_index (String.equal (String.lowercase_ascii name))
                      (List.map String.lowercase_ascii columns)
              with
              | Some i -> (row : row).(i)
              | None -> Value.Null
            end
            | _ -> Value.Null)
          order_items
      in
      let cmp a b =
        let rec go ks1 ks2 its =
          match (ks1, ks2, its) with
          | k1 :: r1, k2 :: r2, (it : Ast.order_item) :: ri ->
            let c = Value.compare_sql k1 k2 in
            if c <> 0 then if it.ord_desc then -c else c else go r1 r2 ri
          | _ -> 0
        in
        go (key_of a) (key_of b) order_items
      in
      List.stable_sort cmp rows
    | order_items ->
      let keyed =
        List.map2
          (fun env row ->
            (List.map (fun (it : Ast.order_item) -> Expr.eval env it.ord_expr) order_items, row))
          envs rows
      in
      let cmp (ka, _) (kb, _) =
        let rec go ks1 ks2 its =
          match (ks1, ks2, its) with
          | k1 :: r1, k2 :: r2, (it : Ast.order_item) :: ri ->
            let c = Value.compare_sql k1 k2 in
            if c <> 0 then if it.ord_desc then -c else c else go r1 r2 ri
          | _ -> 0
        in
        go ka kb order_items
      in
      List.map snd (List.stable_sort cmp keyed)
  in
  let rows =
    match s.sel_limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  { columns; rows; affected = 0 }

(* --- UPDATE / DELETE --- *)

let do_update t table assignments where =
  let tbl = ref (table_or_fail t table) in
  let names = col_names !tbl in
  let targets =
    List.map
      (fun (c, e) ->
        match List.find_index (String.equal (String.lowercase_ascii c)) names with
        | Some i -> (i, e)
        | None -> sql_fail "no such column: %s" c)
      assignments
  in
  (match pk_column !tbl with
  | Some pki when List.exists (fun (i, _) -> i = pki) targets ->
    sql_fail "updating the INTEGER PRIMARY KEY is not supported"
  | Some _ | None -> ());
  let bname = String.lowercase_ascii !tbl.Catalog.tbl_name in
  let matches = matching_rows t !tbl ~bname where in
  let count = ref 0 in
  List.iter
    (fun (rowid, r, env) ->
      index_delete t !tbl rowid r;
      let r' = Array.copy r in
      List.iter
        (fun (i, e) -> r'.(i) <- coerce (List.nth !tbl.Catalog.tbl_cols i) (Expr.eval env e))
        targets;
      let tree = tree_of t !tbl in
      Btree.insert tree ~key:(rowid_key rowid) ~value:(encode_row r');
      tbl := persist_tree t !tbl tree;
      tbl := index_insert t !tbl rowid r';
      incr count)
    matches;
  { columns = []; rows = []; affected = !count }

let do_delete t table where =
  let tbl = ref (table_or_fail t table) in
  let bname = String.lowercase_ascii !tbl.Catalog.tbl_name in
  let matches = matching_rows t !tbl ~bname where in
  let count = ref 0 in
  List.iter
    (fun (rowid, r, _env) ->
      let tree = tree_of t !tbl in
      ignore (Btree.delete tree (rowid_key rowid));
      tbl := persist_tree t !tbl tree;
      index_delete t !tbl rowid r;
      incr count)
    matches;
  { columns = []; rows = []; affected = !count }

(* --- top level --- *)

let run_stmt t (stmt : Ast.stmt) =
  match stmt with
  | Ast.Create_table { ct_name; ct_cols; ct_if_not_exists } ->
    do_create_table t ct_name ct_cols ct_if_not_exists
  | Ast.Drop_table { dt_name; dt_if_exists } -> do_drop_table t dt_name dt_if_exists
  | Ast.Create_index { ci_name; ci_table; ci_col; ci_if_not_exists } ->
    do_create_index t ci_name ci_table ci_col ci_if_not_exists
  | Ast.Drop_index { di_name; di_if_exists } -> do_drop_index t di_name di_if_exists
  | Ast.Insert { ins_table; ins_cols; ins_rows } -> do_insert t ins_table ins_cols ins_rows
  | Ast.Select s -> do_select t s
  | Ast.Update { upd_table; upd_set; upd_where } -> do_update t upd_table upd_set upd_where
  | Ast.Delete { del_table; del_where } -> do_delete t del_table del_where
  | Ast.Begin_txn | Ast.Commit_txn | Ast.Rollback_txn -> assert false

(* Statement cost model: parsing (or a statement-cache lookup) plus
   B-tree page traffic plus per-row evaluation, all in virtual seconds;
   disk costs accumulate in the VFS. Knobs live in {!Pbft.Costmodel} with
   the protocol constants. *)
let sql_costs = Pbft.Costmodel.sql_default

let cpu_cost ~cached ~sql_len ~pages ~rows =
  sql_costs.Pbft.Costmodel.stmt_fixed
  +. (if cached then sql_costs.Pbft.Costmodel.cache_lookup
      else sql_costs.Pbft.Costmodel.parse_per_byte *. float_of_int sql_len)
  +. (sql_costs.Pbft.Costmodel.page_io *. float_of_int pages)
  +. (sql_costs.Pbft.Costmodel.row_eval *. float_of_int rows)

(* Parse through the per-connection statement cache. Parse errors are not
   cached; the cache is wiped wholesale when it fills (it holds distinct
   statement *texts*, which real workloads keep small) and on DDL, which
   can change what a statement means. *)
let parse_cached t sql =
  match Hashtbl.find_opt t.stmt_cache sql with
  | Some stmts ->
    t.cache_hits <- t.cache_hits + 1;
    (stmts, true)
  | None ->
    let stmts = Parser.parse sql in
    t.cache_misses <- t.cache_misses + 1;
    if Hashtbl.length t.stmt_cache >= stmt_cache_capacity then Hashtbl.reset t.stmt_cache;
    Hashtbl.add t.stmt_cache sql stmts;
    (stmts, false)

let exec t sql =
  if not (Pager.in_txn t.pager) then Pager.refresh t.pager;
  ignore (Vfs.take_cost t.vfs);
  ignore (Pager.take_pages_touched t.pager);
  t.rows_scanned <- 0;
  let finish ~cached res =
    let pages = Pager.take_pages_touched t.pager in
    let disk = Vfs.take_cost t.vfs in
    let rows = t.rows_scanned in
    let cost = cpu_cost ~cached ~sql_len:(String.length sql) ~pages ~rows +. disk in
    pages_read_acc := !pages_read_acc + pages;
    rows_scanned_acc := !rows_scanned_acc + rows;
    { res; cost; pages_read = pages; rows_scanned = rows }
  in
  match parse_cached t sql with
  | exception Lexer.Error e -> finish ~cached:false (Error ("syntax error: " ^ e))
  | exception Parser.Error e -> finish ~cached:false (Error ("syntax error: " ^ e))
  | stmts, cached ->
    let run_all () =
      let last = ref { columns = []; rows = []; affected = 0 } in
      List.iter
        (fun stmt ->
          match stmt with
          | Ast.Begin_txn ->
            if t.explicit_txn then sql_fail "transaction already open";
            Pager.begin_txn t.pager;
            t.explicit_txn <- true
          | Ast.Commit_txn ->
            if not t.explicit_txn then sql_fail "no open transaction";
            Pager.commit t.pager;
            t.explicit_txn <- false
          | Ast.Rollback_txn ->
            if not t.explicit_txn then sql_fail "no open transaction";
            Pager.rollback t.pager;
            t.explicit_txn <- false
          | _ ->
            let auto = not t.explicit_txn in
            if auto then Pager.begin_txn t.pager;
            (match run_stmt t stmt with
            | r ->
              if auto then Pager.commit t.pager;
              (* DDL can change what a cached plan means. *)
              (match stmt with
              | Ast.Create_table _ | Ast.Drop_table _ | Ast.Create_index _ | Ast.Drop_index _ ->
                Hashtbl.reset t.stmt_cache
              | _ -> ());
              last := r
            | exception e ->
              if Pager.in_txn t.pager then Pager.rollback t.pager;
              t.explicit_txn <- false;
              raise e))
        stmts;
      !last
    in
    (match run_all () with
    | r -> finish ~cached (Ok r)
    | exception Sql_error e -> finish ~cached (Error e)
    | exception Expr.Eval_error e -> finish ~cached (Error e)
    | exception Invalid_argument e -> finish ~cached (Error e))

let exec_exn t sql =
  match (exec t sql).res with
  | Ok r -> r
  | Error e -> failwith ("SQL error: " ^ e)

let render (r : result) =
  let buf = Buffer.create 256 in
  if r.columns <> [] then begin
    Buffer.add_string buf (String.concat " | " r.columns);
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (String.make (Int.max 8 (String.length (String.concat " | " r.columns))) '-');
    Buffer.add_char buf '\n'
  end;
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat " | " (List.map Value.to_string (Array.to_list row)));
      Buffer.add_char buf '\n')
    r.rows;
  if r.affected > 0 then Buffer.add_string buf (Printf.sprintf "(%d row(s) affected)\n" r.affected);
  Buffer.contents buf
