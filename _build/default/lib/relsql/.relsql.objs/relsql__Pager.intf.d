lib/relsql/pager.mli: Vfs
