(** Deployment wiring: build a full PBFT cluster (replicas + clients) on a
    simulated network, mirroring the paper's testbed of 4 replicas and 12
    clients on 8 hosts behind a 1 GbE switch (§4). *)

open Types

type t

val create :
  ?seed:int ->
  ?profile:Simnet.Net.profile ->
  ?costs:Costmodel.t ->
  ?num_clients:int ->
  ?service:Service.t ->
  ?threshold_replies:bool ->
  ?engine:Simnet.Engine.t ->
  ?net:Simnet.Net.t ->
  Config.t ->
  t
(** Build engine, network, registry, [cfg.n] replicas and [num_clients]
    clients (default 12). In static mode the clients are pre-registered
    and their MAC session keys installed out of band (the a-priori key
    distribution PBFT assumes); in dynamic mode clients start outside the
    membership and must {!Client.join}.

    [engine]/[net] let a multi-group (sharded) deployment place several
    clusters on one shared engine, each in its own network address
    space; when [net] is given its engine wins, when only [engine] is
    given a fresh net is created on it, and [seed] only matters when the
    cluster creates the engine itself. *)

val engine : t -> Simnet.Engine.t
val net : t -> Simnet.Net.t
val trace : t -> Simnet.Trace.t
val config : t -> Config.t
val replicas : t -> Replica.t array
val replica : t -> replica_id -> Replica.t
val clients : t -> Client.t array
val client : t -> int -> Client.t

val run : t -> seconds:float -> unit
(** Advance virtual time. *)

val run_until_quiet : ?max_seconds:float -> t -> unit
(** Drain events until the simulation is idle or the horizon passes. *)

val restart_replica : t -> replica_id -> unit
(** Stop-and-restart the given replica (§2.3); the array entry is
    replaced with the recovering instance. If the replica was previously
    {!crash_replica}ed (or had a stable checkpoint), the new instance
    reloads the disk image and rejoins via Merkle-diff transfer. *)

val crash_replica : t -> replica_id -> unit
(** Crash the given replica in place: it goes silent and loses all
    volatile state, keeping only its disk checkpoint. The array entry is
    unchanged (still addressable for counters) until {!restart_replica}
    revives it. *)

val total_completed : t -> int
(** Sum of completed requests across clients. *)

val threshold_public : t -> Crypto.Threshold.public option
(** The service's threshold verification key, when [threshold_replies]
    was enabled at creation (§3.3.1). *)
