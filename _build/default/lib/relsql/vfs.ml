type file = {
  read : pos:int -> len:int -> string;
  write : pos:int -> string -> unit;
  sync : unit -> unit;
  size : unit -> int;
  truncate : int -> unit;
}

type t = {
  main : file;
  journal : file option;
  time : unit -> float;
  random : unit -> int64;
  cost : float ref;
}

let take_cost t =
  let c = !(t.cost) in
  t.cost := 0.0;
  c

let heap_file () =
  let buf = ref (Bytes.create 0) in
  let size () = Bytes.length !buf in
  let ensure n =
    if n > size () then begin
      let grown = Bytes.make n '\000' in
      Bytes.blit !buf 0 grown 0 (size ());
      buf := grown
    end
  in
  {
    read =
      (fun ~pos ~len ->
        if pos < 0 || len < 0 || pos + len > size () then invalid_arg "heap_file.read";
        Bytes.sub_string !buf pos len);
    write =
      (fun ~pos s ->
        ensure (pos + String.length s);
        Bytes.blit_string s 0 !buf pos (String.length s));
    sync = (fun () -> ());
    size;
    truncate =
      (fun n ->
        if n < size () then buf := Bytes.sub !buf 0 n else ensure n);
  }

let env_of_seed seed =
  let rng = Util.Rng.create seed in
  let clock = ref 0.0 in
  let time () =
    (* A deterministic, monotonically advancing stand-in clock. *)
    clock := !clock +. 1e-3;
    !clock
  in
  let random () = Util.Rng.next_int64 rng in
  (time, random)

let in_memory ?(acid = true) ~seed () =
  let time, random = env_of_seed seed in
  {
    main = heap_file ();
    journal = (if acid then Some (heap_file ()) else None);
    time;
    random;
    cost = ref 0.0;
  }

let disk_file disk cost name =
  let f = Simdisk.Disk.open_file disk name in
  {
    read = (fun ~pos ~len -> Simdisk.Disk.read f ~pos ~len);
    write =
      (fun ~pos s ->
        cost := !cost +. Simdisk.Disk.write_cost disk (String.length s);
        Simdisk.Disk.write f ~pos s);
    sync =
      (fun () ->
        cost := !cost +. Simdisk.Disk.sync_cost disk;
        Simdisk.Disk.sync f);
    size = (fun () -> Simdisk.Disk.size f);
    truncate = (fun n -> Simdisk.Disk.truncate f n);
  }

let on_disk ?(acid = true) disk ~name ~seed =
  let time, random = env_of_seed seed in
  let cost = ref 0.0 in
  {
    main = disk_file disk cost name;
    journal = (if acid then Some (disk_file disk cost (name ^ "-journal")) else None);
    time;
    random;
    cost;
  }
