(** Node signing identities, in two interchangeable flavours.

    [Real] runs the actual Rabin arithmetic: tests and small examples use
    it to exercise the true code path. [Simulated] produces
    structurally identical, correctly-sized signatures from a keyed hash;
    large throughput experiments use it so that host CPU time is not spent
    on bignum arithmetic that the *virtual* cost model already accounts
    for (DESIGN.md, "Substitutions"). The two modes are indistinguishable
    to the protocol layer. *)

type mode =
  | Real of int (** key size in bits *)
  | Simulated

type signer
type verifier

val make : mode -> Util.Rng.t -> id:int -> signer
(** Create a signing identity for node [id]. *)

val verifier_of : signer -> verifier
(** The public half, distributable to other nodes. *)

val sign : signer -> string -> string
(** Signature bytes over the message. *)

val verify : verifier -> string -> signature:string -> bool
[@@trust.sanitizer "public-key signature check: true vouches for the signed bytes"]

val signature_size : verifier -> int
(** Nominal wire size of one signature (for the network size model). *)

val verifier_to_string : verifier -> string
(** Wire encoding of the public half, e.g. for Join requests and the
    membership table. *)

val verifier_of_string : string -> verifier option

val derive_session_key : signer -> peer:int -> epoch:int -> string
(** Deterministic per-epoch MAC session key for the channel this signer
    shares with [peer]: a keyed hash of the signer's signature over the
    (peer, epoch) label, truncated to MAC-key size. Proactive key refresh
    derives epoch [e+1] keys without consuming any simulation randomness,
    keeping refresh-free runs bit-identical. *)

val signer_id : signer -> int
val verifier_id : verifier -> int
