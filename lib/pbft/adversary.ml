open Types

type behavior =
  | Equivocate
  | Mute
  | Selective_mute of replica_id list
  | Corrupt_macs
  | Garbage_view_change
  | Mutate_nondet

let behavior_name = function
  | Equivocate -> "equivocate"
  | Mute -> "mute"
  | Selective_mute _ -> "selective-mute"
  | Corrupt_macs -> "corrupt-macs"
  | Garbage_view_change -> "garbage-view-change"
  | Mutate_nondet -> "mutate-nondet"

type t = {
  behavior : behavior;
  replica : Replica.t;
  net : Simnet.Net.t;
  cfg : Config.t;
  mutable injector : Simnet.Engine.timer option;
  mutable n_mutations : int;
}

let replica t = t.replica
let replica_id t = Replica.id t.replica
let mutations t = t.n_mutations

(* Authentication for forged / rewritten messages. The adversary is a
   real group member, so it holds a legitimate signing key and (in MAC
   mode) the per-peer session keys it chose — its lies verify. *)
let reauth t ~dst pb =
  if t.cfg.use_macs then begin
    match Replica.session_key_for t.replica dst with
    | Some k -> Message.Authenticated (Crypto.Authenticator.compute ~keys:[ (dst, k) ] pb)
    | None -> Message.Signed (Crypto.Keychain.sign (Replica.signer t.replica) pb)
  end
  else Message.Signed (Crypto.Keychain.sign (Replica.signer t.replica) pb)

(* Decode a wire, rewrite its payload through [f], re-encode with fresh
   (valid) authentication for the concrete destination. [f] returning
   None leaves the datagram untouched. *)
let rewrite t ~dst wire f =
  match Message.decode wire with
  | None -> wire
  | Some msg -> begin
    match f msg.Message.payload with
    | None -> wire
    | Some payload' ->
      t.n_mutations <- t.n_mutations + 1;
      let pb = Message.payload_bytes payload' in
      Message.encode_wire ~payload_bytes:pb (reauth t ~dst pb)
  end

(* Equivocation payload: swap the first two batch items. Item order is
   part of the batch digest — what prepares and commits certify — so the
   two cohorts hold conflicting certificates for the same sequence
   number, yet every request body stays resolvable whichever order
   eventually commits. Single-item batches offer nothing to reorder and
   pass through untouched. *)
let swap_first_two = function
  | a :: b :: rest -> Some (b :: a :: rest)
  | _ -> None

(* A syntactically valid 16-byte non-determinism blob whose timestamp is
   absurdly far in the future — §2.5: without validation backups would
   execute with the primary's lie; with delta validation they reject the
   pre-prepare and the primary gets demoted by view change. *)
let poisoned_nondet () =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.f64 w 1.0e9;
      Util.Codec.W.u64 w 0L)
    ()

let corrupt_tail wire =
  let n = String.length wire in
  if n = 0 then wire
  else begin
    let b = Bytes.of_string wire in
    Bytes.set b (n - 1) (Char.chr (Char.code (Bytes.get b (n - 1)) lxor 0x55));
    Bytes.to_string b
  end

let replica_addrs t = List.init t.cfg.n (fun i -> i)

(* Forge a view-change vote for the next view carrying a fabricated
   prepared entry: the claimed digest matches no batch and the claimed
   view is ahead of the vote's own target. If the receiver trusted it,
   the forged digest could poison the new primary's re-proposal set. *)
let inject_garbage_view_change t =
  t.n_mutations <- t.n_mutations + 1;
  let id = replica_id t in
  let garbage = String.make 32 'z' in
  let payload =
    Message.View_change
      {
        vc_new_view = Replica.view t.replica + 1;
        vc_stable_seq = 0;
        vc_stable_digest = garbage;
        vc_prepared =
          [
            {
              Message.pi_view = Replica.view t.replica + 8;
              pi_seq = 1;
              pi_digest = garbage;
              pi_batch = [];
            };
          ];
        vc_replica = id;
      }
  in
  let pb = Message.payload_bytes payload in
  let label = Message.label payload in
  List.iter
    (fun peer ->
      if peer <> id then begin
        let wire = Message.encode_wire ~payload_bytes:pb (reauth t ~dst:peer pb) in
        Simnet.Net.send t.net ~label ~src:id ~dst:peer wire
      end)
    (replica_addrs t)

let install ~net ~cfg replica behavior =
  let t = { behavior; replica; net; cfg; injector = None; n_mutations = 0 } in
  let src = Replica.id replica in
  (match behavior with
  | Mute ->
    (* Drop everything the replica sends — to peers and clients alike. *)
    Simnet.Net.set_link_drop net ~src ~dst:Simnet.Net.any_addr (fun ~label:_ ->
        t.n_mutations <- t.n_mutations + 1;
        true)
  | Selective_mute peers ->
    (* Withhold only the primary's leadership traffic from the listed
       peers. Prepares, commits and checkpoint votes still flow, so the
       starved backup watches a stable checkpoint form past it and takes
       the §2.4 demotion path (full mute would also starve it of the
       2f+1 checkpoint votes that trigger the demotion). *)
    List.iter
      (fun peer ->
        Simnet.Net.set_link_drop net ~src ~dst:peer (fun ~label ->
            let muted = String.equal label "pre-prepare" || String.equal label "new-view" in
            if muted then t.n_mutations <- t.n_mutations + 1;
            muted))
      peers
  | Corrupt_macs ->
    (* Flip a payload byte while keeping the stale authenticator: every
       MAC in the vector (and any signature) covers the payload bytes, so
       no receiver can validate anything this replica sends — the §2.3
       pathology, by malice rather than lost session keys. (Corrupting
       the trailer instead would only break the last peer's MAC entry.) *)
    Simnet.Net.set_link_corrupt net ~src ~dst:Simnet.Net.any_addr (fun ~dst:_ ~label:_ wire ->
        match Message.decode wire with
        | None -> wire
        | Some msg ->
          t.n_mutations <- t.n_mutations + 1;
          let pb = Message.payload_bytes msg.Message.payload in
          Message.encode_wire ~payload_bytes:(corrupt_tail pb) msg.Message.auth)
  | Equivocate ->
    (* Odd-numbered peers get a conflicting pre-prepare; even peers the
       original. Neither cohort alone can assemble a 2f+1 certificate. *)
    Simnet.Net.set_link_corrupt net ~src ~dst:Simnet.Net.any_addr (fun ~dst ~label wire ->
        if dst < cfg.n && dst mod 2 = 1 && String.equal label "pre-prepare" then
          rewrite t ~dst wire (function
            | Message.Pre_prepare pp ->
              Option.map
                (fun batch -> Message.Pre_prepare { pp with pp_batch = batch })
                (swap_first_two pp.pp_batch)
            | _ -> None)
        else wire)
  | Mutate_nondet ->
    Simnet.Net.set_link_corrupt net ~src ~dst:Simnet.Net.any_addr (fun ~dst ~label wire ->
        if dst < cfg.n && String.equal label "pre-prepare" then
          rewrite t ~dst wire (function
            | Message.Pre_prepare pp ->
              Some (Message.Pre_prepare { pp with pp_nondet = poisoned_nondet () })
            | _ -> None)
        else wire)
  | Garbage_view_change ->
    t.injector <-
      Some
        (Simnet.Engine.periodic (Simnet.Net.engine net) ~interval:0.25 (fun () ->
             inject_garbage_view_change t)));
  t

let uninstall t =
  (match t.injector with
  | Some timer ->
    Simnet.Engine.cancel timer;
    t.injector <- None
  | None -> ());
  let src = replica_id t in
  Simnet.Net.clear_link t.net ~src ~dst:Simnet.Net.any_addr;
  List.iter (fun peer -> Simnet.Net.clear_link t.net ~src ~dst:peer) (replica_addrs t)
