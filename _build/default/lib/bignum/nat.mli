(** Arbitrary-precision natural numbers.

    Little-endian limb arrays in base 2^26 so that limb products and the
    intermediate quantities of Knuth's Algorithm D stay comfortably inside
    OCaml's 63-bit native integers. Values are immutable and kept
    normalized (no high zero limbs); the zero value has no limbs.

    This is the arithmetic substrate for the Rabin–Williams signature
    scheme in {!Crypto.Rabin} — the paper's PBFT implementation uses the
    Rabin cryptosystem for its asymmetric operations. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] for [n >= 0]. Raises [Invalid_argument] on negatives. *)

val to_int : t -> int
(** Raises [Failure] if the value exceeds [max_int]. *)

val of_bytes_be : string -> t
(** Big-endian byte-string interpretation (leading zeros allowed). *)

val to_bytes_be : ?pad:int -> t -> string
(** Minimal big-endian bytes, left-padded with zeros to [pad] if given. *)

val of_hex : string -> t
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val bit_length : t -> int

val add : t -> t -> t
val sub : t -> t -> t
(** Raises [Invalid_argument] if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r], [0 <= r < b].
    Raises [Division_by_zero] if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val mod_add : t -> t -> t -> t
val mod_sub : t -> t -> t -> t
val mod_mul : t -> t -> t -> t
val mod_exp : t -> t -> t -> t
(** [mod_exp b e m] is [b^e mod m] by square-and-multiply. *)

val gcd : t -> t -> t
val mod_inverse : t -> t -> t option
(** Multiplicative inverse, if the argument is coprime to the modulus. *)

val jacobi : t -> t -> int
(** [jacobi a n] for odd [n]: the Jacobi symbol (a/n) in {-1, 0, 1}. *)

val random_bits : Util.Rng.t -> int -> t
(** Uniform value of at most the given number of bits. *)

val random_below : Util.Rng.t -> t -> t
(** Uniform in [0, bound); [bound] must be nonzero. *)

val pp : Format.formatter -> t -> unit
