examples/fault_injection.mli:
