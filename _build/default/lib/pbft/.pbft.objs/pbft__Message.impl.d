lib/pbft/message.ml: Crypto List Printf String Types Util
