lib/pbft/certificate.mli: Crypto Types
