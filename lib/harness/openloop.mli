(** Open-loop workload generation against the gateway front door.

    Unlike the closed-loop {!Scenario} driver — whose offered load
    self-limits to the completion rate — the open-loop generator draws
    arrivals from a stochastic process on the virtual clock regardless
    of outstanding work, so it can push the deployment past saturation
    and measure what overload actually does: queue growth, deadline
    flushes, admission-control shedding, and the latency tail.

    Sessions are lightweight records (a sequence counter and an
    outstanding-request table entry) multiplexed over a few shared
    virtual connections; 10k–100k of them are cheap. The gateway's
    upstream connection pool does the real protocol work. *)

type arrival =
  | Poisson of float  (** constant mean arrival rate, requests/s *)
  | Bursty of { base : float; burst : float; period : float; duty : float }
      (** square wave: [burst] req/s for [duty]·[period] of each period,
          [base] req/s for the rest *)
  | Diurnal of { mean : float; amplitude : float; period : float }
      (** sinusoid: mean·(1 + amplitude·sin(2πt/period)) *)

val rate_at : arrival -> float -> float
(** Instantaneous rate at virtual time [t]. *)

val mean_rate : arrival -> float
(** Long-run mean of the process, for offered-load reporting. *)

type spec = {
  cfg : Pbft.Config.t;
  seed : int;
  sessions : int;
  arrival : arrival;
  service : Pbft.Service.t;
  profile : Simnet.Net.profile;
  warmup : float;
  duration : float;
  op_bytes : int;
  gen_conns : int;  (** shared virtual connections the sessions multiplex over *)
  gateway : Webgate.Frontdoor.config;
  retransmit : float option;
      (** per-request retransmit interval; [None] = fire and forget *)
}

val session_addr_base : int
(** Generator connection addresses are [session_addr_base + i]. *)

val default_spec : Pbft.Config.t -> spec
(** 10k sessions over 64 connections at 2000 req/s Poisson, 256-byte
    ops, null service, a 16-connection gateway with 8 KiB / 5 ms flush
    triggers, seed 1. *)

type gen
(** The running generator. *)

val generator_arrivals : gen -> int
val generator_completed : gen -> int
val generator_shed : gen -> int
(** Shed replies the generator observed — matches the gateway's
    {!Webgate.Frontdoor.shed} count (plus any lost on the wire). *)

val generator_retransmissions : gen -> int
val generator_outstanding : gen -> int
val generator_latency : gen -> Util.Stats.t
val stop_generator : gen -> unit

val create_gen : engine:Simnet.Engine.t -> net:Simnet.Net.t -> spec -> gen
(** Attach a generator to an existing deployment (the fault harness uses
    this to load a cluster it wired itself); arrivals start immediately. *)

type outcome = {
  base : Scenario.outcome;  (** gateway fields filled in *)
  offered : float;  (** mean offered load, requests/s *)
  arrivals : int;  (** arrivals in the measured window *)
  sessions : int;
  gen_shed : int;  (** shed replies observed by the generator (whole run) *)
  gen_retransmissions : int;
  reply_cache_hits : int;
  flushes_size : int;
  flushes_deadline : int;
  live_sessions : int;
  events_per_request : float;  (** simulation events per completed request *)
  alloc_per_request : float;  (** heap bytes allocated per completed request *)
}

val run :
  ?hook:(Pbft.Cluster.t -> Webgate.Frontdoor.t -> unit) ->
  spec ->
  outcome * Pbft.Cluster.t * Webgate.Frontdoor.t * gen
(** Build the cluster (its service wrapped with
    {!Webgate.Frontdoor.wrap_service}), put the front door and generator
    in front of it, run warmup + measured window, and aggregate. [hook]
    runs after construction, before load. *)
