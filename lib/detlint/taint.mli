(** trustlint: the taint pass proving every wire-decode → state-write
    flow crosses a cryptographic sanitizer.

    Sources, sanitizers, and sinks come from {!Trust} (interface
    attributes + convention table). Taint propagates intraprocedurally
    through lets, tuples/records/constructors, pattern matches,
    pipelines, and closures; calls to functions bound in the same
    compilation unit are inlined (bounded depth, recursion guard) so the
    repo's [let cost, ok = check_auth ... in ... if ok then ...] idiom
    carries the verdict. A sanitizer's boolean vouches for the origins
    it inspected; testing it ([if]/[when], through [not]/[&&]/[||])
    kills those origins in the guarded branch. Any sink reached by a
    live origin is a {!Finding.Tainted_sink}.

    Suppression: [[@trustlint.allow "covering check ..."]] on the
    enclosing expression or binding (the payload string should name the
    cryptographic check that discharges the flow), or
    [[@detlint.allow tainted_sink]], or a [tainted_sink] entry in the
    checked-in allow file. *)

val lint_structure :
  rel:string ->
  lines:string array ->
  specs:Trust.spec list ->
  Parsetree.structure ->
  Finding.t list
(** Findings for one parsed [.ml], sorted and de-duplicated, attribute
    suppression already applied. *)
