type rule =
  | Hashtbl_order
  | Poly_compare
  | Physical_eq
  | Wall_clock
  | Ambient_rng
  | Marshal_obj
  | Float_format
  | Catch_all
  | Dispatch_catch_all
  | Tainted_sink

let rule_name = function
  | Hashtbl_order -> "hashtbl_order"
  | Poly_compare -> "poly_compare"
  | Physical_eq -> "physical_eq"
  | Wall_clock -> "wall_clock"
  | Ambient_rng -> "ambient_rng"
  | Marshal_obj -> "marshal_obj"
  | Float_format -> "float_format"
  | Catch_all -> "catch_all"
  | Dispatch_catch_all -> "dispatch_catch_all"
  | Tainted_sink -> "tainted_sink"

let all_rules =
  [
    Hashtbl_order;
    Poly_compare;
    Physical_eq;
    Wall_clock;
    Ambient_rng;
    Marshal_obj;
    Float_format;
    Catch_all;
    Dispatch_catch_all;
    Tainted_sink;
  ]

let rule_of_name s = List.find_opt (fun r -> String.equal (rule_name r) s) all_rules

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  snippet : string;
  message : string;
  origin : (int * int) option;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare (rule_name a.rule) (rule_name b.rule)
      | c -> c)
    | c -> c)
  | c -> c

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let origin =
    match f.origin with
    | Some (l, c) -> Printf.sprintf {|,"src_line":%d,"src_col":%d|} l c
    | None -> ""
  in
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"snippet":"%s","message":"%s"%s}|}
    (rule_name f.rule) (json_escape f.file) f.line f.col (json_escape f.snippet)
    (json_escape f.message) origin

let to_human f =
  let origin =
    match f.origin with
    | Some (l, c) -> Printf.sprintf " (tainted at %s:%d:%d)" f.file l c
    | None -> ""
  in
  Printf.sprintf "%s:%d:%d: [%s] %s%s\n    %s" f.file f.line f.col (rule_name f.rule) f.message
    origin f.snippet
