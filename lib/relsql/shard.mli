(** Deterministic hash partitioning of the relational state across
    independent PBFT replica groups.

    A {!topology} declares, per table, which column's value owns a row;
    every party — the untrusted front-door router, each replica group's
    2PC wrapper, and the test reference executor — evaluates the same
    pure classification over the same SQL text, so they always agree on
    which shards a statement touches without exchanging any metadata.

    Routing is static (no catalog access): a statement is pinned to one
    shard when its WHERE clause carries a top-level [AND] equality
    conjunct on the partition column with a literal value (the same
    sargable shape the PR 3 planner extracts), and INSERT rows are pinned
    by the literal they supply for the partition column. Anything that
    cannot be pinned scatters: SELECT/UPDATE/DELETE run on every shard
    against its own partition (scatter-gather), DDL and transaction
    control replicate to all shards, and tables without a rule live
    wholly on shard 0. Two deliberate non-features: an INSERT whose
    partition value is absent or non-literal hashes as SQL NULL (one
    deterministic owner, not a broadcast duplicate), and updating the
    partition column itself does not move the row between shards. *)

type rule = { sr_table : string; sr_column : string }

type topology

val topology : shards:int -> rule list -> topology
(** Raises [Invalid_argument] unless [shards >= 1]. *)

val shards : topology -> int
val rules : topology -> rule list

val shard_of_value : topology -> Value.t -> int
(** Owning shard of a partition-column value (FNV-1a over the value's
    canonical key encoding; integral REALs coerce to INTEGER first so
    [id = 5] and [id = 5.0] agree). *)

val shard_of_int : topology -> int -> int
(** [shard_of_value] on an INTEGER key — the harness's row-placement
    helper. *)

val split_statements : string -> string list
(** Split a multi-statement SQL string on top-level [';'] boundaries
    (quoted strings and [--]/[/*] comments respected), trimmed, empty
    pieces dropped. Purely textual — never raises. *)

type route =
  | Single of int  (** every statement touches exactly this shard *)
  | Cross of int list  (** distinct ascending shards, length >= 2 *)

val statement_shards : topology -> Ast.stmt -> int list
(** Distinct ascending shards one parsed statement touches. *)

val classify : topology -> string -> route
(** Route a whole operation: the union of its statements' shards.
    Unparseable text routes [Single 0] — it will produce the same
    deterministic error reply there that any single group would give. *)

val plan : topology -> string -> (int * string) list
(** Per involved shard (ascending), the ['; ']-joined script of exactly
    the statements routed to it — what each shard executes under 2PC
    prepare. Statements touching several shards appear in each script. *)

val route_key : route -> string
(** Canonical text of a route (["2"], ["0,3"]) — the reply-cache key
    component that keeps a single-shard retransmission from matching a
    stale cross-shard reply. *)
