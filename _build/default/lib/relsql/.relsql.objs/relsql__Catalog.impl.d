lib/relsql/catalog.ml: Ast Btree List Pager String Util
