lib/util/hexdump.ml: Buffer Char String
