lib/crypto/rabin.mli: Bignum Util
