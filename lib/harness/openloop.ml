(* Open-loop load at scale (§4-style overload study).

   A closed-loop driver — N clients, each waiting for its reply before
   sending again — can never push the system past saturation: offered
   load self-limits to completion rate. The open-loop generator breaks
   that feedback. Arrivals come from a stochastic process on the virtual
   clock (Poisson, bursty square-wave, or diurnal sinusoid) regardless
   of how many requests are still in flight, so overload is real:
   queues grow, deadlines pass, and the gateway's admission control has
   something to do.

   Sessions are deliberately lightweight: a record and a sequence
   number, multiplexed over a small set of shared virtual connections
   (source addresses) — tens of thousands of sessions cost what their
   in-flight requests cost, not a NIC and a keypair each. The real PBFT
   protocol work happens in the front door's upstream connection pool. *)

type arrival =
  | Poisson of float  (** constant mean arrival rate, requests/s *)
  | Bursty of { base : float; burst : float; period : float; duty : float }
      (** square wave: [burst] req/s for [duty]·[period] seconds, then
          [base] req/s for the rest of each period *)
  | Diurnal of { mean : float; amplitude : float; period : float }
      (** sinusoid: mean·(1 + amplitude·sin(2πt/period)) *)

let rate_at arrival t =
  match arrival with
  | Poisson r -> r
  | Bursty { base; burst; period; duty } ->
    if Float.rem t period < duty *. period then burst else base
  | Diurnal { mean; amplitude; period } ->
    mean *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period)))

(* Mean offered rate over a window, for reporting. *)
let mean_rate arrival =
  match arrival with
  | Poisson r -> r
  | Bursty { base; burst; duty; _ } -> (burst *. duty) +. (base *. (1.0 -. duty))
  | Diurnal { mean; _ } -> mean

type spec = {
  cfg : Pbft.Config.t;
  seed : int;
  sessions : int;
  arrival : arrival;
  service : Pbft.Service.t;
  profile : Simnet.Net.profile;
  warmup : float;
  duration : float;
  op_bytes : int;
  gen_conns : int;  (** shared virtual connections the sessions multiplex over *)
  gateway : Webgate.Frontdoor.config;
  retransmit : float option;
      (** per-request retransmit interval; [None] = fire and forget (the
          open-loop default — lost work shows up as incompletions) *)
}

let session_addr_base = 100_000

let default_spec cfg =
  {
    cfg;
    seed = 1;
    sessions = 10_000;
    arrival = Poisson 2_000.0;
    service = Pbft.Service.null ();
    profile = Simnet.Net.lan_profile;
    warmup = 0.5;
    duration = 2.0;
    op_bytes = 256;
    gen_conns = 64;
    gateway =
      {
        Webgate.Frontdoor.connections = 16;
        flush_bytes = 8 * 1024;
        flush_deadline = 0.005;
        max_queue = 4096;
        max_sessions = 10_000;
      };
    retransmit = None;
  }

(* --- the generator --- *)

type gen = {
  engine : Simnet.Engine.t;
  net : Simnet.Net.t;
  rng : Util.Rng.t;
  spec : spec;
  outstanding : (int * int, float) Hashtbl.t;  (** (session, req_id) -> send time *)
  next_req : int array;  (** per-session request-id counter *)
  latency : Util.Stats.t;
  mutable record : bool;  (** false during warmup *)
  mutable stopped : bool;
  mutable n_arrivals : int;
  mutable n_completed : int;
  mutable n_shed : int;
  mutable n_retransmissions : int;
  mutable next_session : int;
}

let conn_addr g i = session_addr_base + (i mod g.spec.gen_conns)

let on_reply g wire =
  match Webgate.Frontdoor.decode_reply wire with
  | None -> ()
  | Some (status, session, req_id, _result) -> (
    match Hashtbl.find_opt g.outstanding (session, req_id) with
    | None -> ()  (* duplicate reply (retransmit race) *)
    | Some sent ->
      Hashtbl.remove g.outstanding (session, req_id);
      (match status with
      | Webgate.Frontdoor.Done ->
        g.n_completed <- g.n_completed + 1;
        if g.record then Util.Stats.add g.latency (Simnet.Engine.now g.engine -. sent)
      | Webgate.Frontdoor.Shed -> g.n_shed <- g.n_shed + 1))

let send_request g ~session ~req_id ~op =
  let frame = Webgate.Frontdoor.encode_request ~session ~req_id ~op in
  Simnet.Net.send g.net ~label:"gw-request" ~src:(conn_addr g session)
    ~dst:Webgate.Frontdoor.frontdoor_addr frame

let rec arm_retransmit g ~session ~req_id ~op delay =
  ignore
    (Simnet.Engine.timer g.engine ~delay (fun () ->
         if (not g.stopped) && Hashtbl.mem g.outstanding (session, req_id) then begin
           g.n_retransmissions <- g.n_retransmissions + 1;
           send_request g ~session ~req_id ~op;
           arm_retransmit g ~session ~req_id ~op delay
         end))

let fire g =
  let session = g.next_session in
  g.next_session <- (g.next_session + 1) mod g.spec.sessions;
  g.next_req.(session) <- g.next_req.(session) + 1;
  let req_id = g.next_req.(session) in
  let op = String.make g.spec.op_bytes (Char.chr (65 + (session mod 26))) in
  g.n_arrivals <- g.n_arrivals + 1;
  Hashtbl.replace g.outstanding (session, req_id) (Simnet.Engine.now g.engine);
  send_request g ~session ~req_id ~op;
  match g.spec.retransmit with
  | Some delay -> arm_retransmit g ~session ~req_id ~op delay
  | None -> ()

(* Inter-arrival draw from the instantaneous rate: a piecewise
   approximation of the non-homogeneous process that is exact for
   Poisson and faithful to the shape for bursty/diurnal. *)
let rec schedule_next g =
  if not g.stopped then begin
    let rate = Float.max 1e-6 (rate_at g.spec.arrival (Simnet.Engine.now g.engine)) in
    let dt = Util.Rng.exponential g.rng ~mean:(1.0 /. rate) in
    Simnet.Engine.schedule g.engine ~delay:dt (fun () ->
        if not g.stopped then begin
          fire g;
          schedule_next g
        end)
  end

let create_gen ~engine ~net spec =
  let g =
    {
      engine;
      net;
      rng = Util.Rng.split (Simnet.Engine.rng engine);
      spec;
      outstanding = Hashtbl.create 4096;
      next_req = Array.make spec.sessions 0;
      latency = Util.Stats.create ();
      record = false;
      stopped = false;
      n_arrivals = 0;
      n_completed = 0;
      n_shed = 0;
      n_retransmissions = 0;
      next_session = 0;
    }
  in
  for i = 0 to spec.gen_conns - 1 do
    Simnet.Net.register net (session_addr_base + i) (fun ~src:_ wire -> on_reply g wire)
  done;
  schedule_next g;
  g

(* --- outcome --- *)

type outcome = {
  base : Scenario.outcome;
  offered : float;  (** mean offered load, requests/s *)
  arrivals : int;
  sessions : int;
  gen_shed : int;  (** shed replies observed by the generator *)
  gen_retransmissions : int;
  reply_cache_hits : int;
  flushes_size : int;
  flushes_deadline : int;
  live_sessions : int;
  events_per_request : float;  (** simulation events per completed request *)
  alloc_per_request : float;  (** heap bytes allocated per completed request *)
}

let run ?hook spec =
  let cluster =
    Pbft.Cluster.create ~seed:spec.seed ~profile:spec.profile
      ~num_clients:spec.gateway.Webgate.Frontdoor.connections
      ~service:(Webgate.Frontdoor.wrap_service spec.service)
      spec.cfg
  in
  Simnet.Trace.set_enabled (Pbft.Cluster.trace cluster) false;
  let engine = Pbft.Cluster.engine cluster in
  let net = Pbft.Cluster.net cluster in
  let door =
    Webgate.Frontdoor.create ~cfg:spec.gateway ~engine ~net
      ~clients:(Pbft.Cluster.clients cluster) ()
  in
  (match hook with Some h -> h cluster door | None -> ());
  let g = create_gen ~engine ~net spec in
  Pbft.Cluster.run cluster ~seconds:spec.warmup;
  g.record <- true;
  let base_completed = g.n_completed in
  let base_arrivals = g.n_arrivals in
  let base_events = Simnet.Engine.events engine in
  let base_alloc = Gc.allocated_bytes () in
  let measure_start = Simnet.Engine.now engine in
  Pbft.Cluster.run cluster ~seconds:spec.duration;
  g.stopped <- true;
  let span = Simnet.Engine.now engine -. measure_start in
  let completed = g.n_completed - base_completed in
  let arrivals = g.n_arrivals - base_arrivals in
  let events = Simnet.Engine.events engine - base_events in
  let alloc = Gc.allocated_bytes () -. base_alloc in
  let reps = Pbft.Cluster.replicas cluster in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let pct p = if Util.Stats.count g.latency > 0 then Util.Stats.percentile g.latency p else 0.0 in
  let tps_value = if span > 0.0 then float_of_int completed /. span else 0.0 in
  let base =
    {
      Scenario.tps = tps_value;
      completed;
      mean_latency = (if Util.Stats.count g.latency > 0 then Util.Stats.mean g.latency else 0.0);
      p50_latency = pct 50.0;
      p95_latency = pct 95.0;
      p99_latency = pct 99.0;
      retransmissions =
        Array.fold_left
          (fun acc cl -> acc + Pbft.Client.retransmissions cl)
          0 (Pbft.Cluster.clients cluster);
      view_changes = sum Pbft.Replica.view_changes;
      demotion_transfers = sum Pbft.Replica.demotion_transfers;
      rejoin_transfers = sum Pbft.Replica.rejoin_transfers;
      transfer_pages_fetched = sum Pbft.Replica.transfer_pages_fetched;
      transfer_pages_full = sum Pbft.Replica.transfer_pages_full;
      demotions = sum Pbft.Replica.demotions;
      rollbacks = sum Pbft.Replica.rollbacks;
      speculative_execs = sum Pbft.Replica.speculative_execs;
      tentative_completed = 0;
      auth_failures = sum Pbft.Replica.auth_failures;
      nondet_rejects = sum Pbft.Replica.nondet_rejects;
      shed = Webgate.Frontdoor.shed door;
      gw_evictions = Webgate.Frontdoor.session_evictions door;
      gw_queue_peak = Webgate.Frontdoor.queue_peak door;
      replica_queue_peak =
        Array.fold_left
          (fun acc r -> Int.max acc (Simnet.Cpu.peak_queue_length (Pbft.Replica.cpu r)))
          0 reps;
      ro_cache_evictions = sum Pbft.Replica.ro_reply_evictions;
      shards = 1;
      shard_tps = [| tps_value |];
      shard_queue_peak = [| Webgate.Frontdoor.queue_peak door |];
      cross_shard_commits = 0;
      cross_shard_aborts = 0;
    }
  in
  let outcome =
    {
      base;
      offered = mean_rate spec.arrival;
      arrivals;
      sessions = spec.sessions;
      gen_shed = g.n_shed;
      gen_retransmissions = g.n_retransmissions;
      reply_cache_hits = Webgate.Frontdoor.reply_cache_hits door;
      flushes_size = Webgate.Frontdoor.flushes_size door;
      flushes_deadline = Webgate.Frontdoor.flushes_deadline door;
      live_sessions = Webgate.Frontdoor.live_sessions door;
      events_per_request =
        (if completed > 0 then float_of_int events /. float_of_int completed else 0.0);
      alloc_per_request = (if completed > 0 then alloc /. float_of_int completed else 0.0);
    }
  in
  ignore (Simnet.Net.drain_drops net);
  (outcome, cluster, door, g)

let generator_arrivals g = g.n_arrivals
let generator_completed g = g.n_completed
let generator_shed g = g.n_shed
let generator_retransmissions g = g.n_retransmissions
let generator_outstanding g = Hashtbl.length g.outstanding
let generator_latency g = g.latency
let stop_generator g = g.stopped <- true
