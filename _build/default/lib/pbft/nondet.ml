let produce ~now rng =
  Util.Codec.encode
    (fun w () ->
      Util.Codec.W.f64 w now;
      Util.Codec.W.u64 w (Util.Rng.next_int64 rng))
    ()

let decode_fields s =
  match
    Util.Codec.decode
      (fun r ->
        let ts = Util.Codec.R.f64 r in
        let rnd = Util.Codec.R.u64 r in
        (ts, rnd))
      s
  with
  | v -> Some v
  | exception Util.Codec.R.Truncated -> None

let timestamp s = Option.map fst (decode_fields s)
let random_value s = Option.map snd (decode_fields s)

let validate policy ~now ~recovering s =
  match decode_fields s with
  | None -> false
  | Some (ts, _) -> begin
    match policy with
    | Config.No_validation -> true
    | Config.Delta delta -> Float.abs (now -. ts) <= delta
    | Config.Delta_skip_on_recovery delta -> recovering || Float.abs (now -. ts) <= delta
  end
