test/test_pbft.mli:
