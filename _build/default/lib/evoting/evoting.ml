(* The schema runs exactly once per replica boot on a fresh region, so no
   IF NOT EXISTS qualifiers are needed. *)
let schema =
  String.concat ";\n"
    [
      "CREATE TABLE IF NOT EXISTS elections (eid INTEGER PRIMARY KEY, name TEXT, open_flag INTEGER)";
      "CREATE TABLE IF NOT EXISTS choices (cid INTEGER PRIMARY KEY, eid INTEGER, label TEXT)";
      "CREATE TABLE IF NOT EXISTS ballots (bid INTEGER PRIMARY KEY, eid INTEGER, voter TEXT, \
       choice TEXT, ts REAL, nonce INTEGER)";
      "CREATE INDEX idx_ballots_eid ON ballots(eid)";
    ]

let service ?(acid = true) () = Relsql.Pbft_service.service ~acid ~schema ()

let create_election_sql ~name =
  Printf.sprintf "INSERT INTO elections (name, open_flag) VALUES ('%s', 1)" name

let add_choice_sql ~election ~choice =
  Printf.sprintf "INSERT INTO choices (eid, label) VALUES (%d, '%s')" election choice

(* One ballot per (election, voter): the ballot's INTEGER PRIMARY KEY is a
   stable hash of the pair, so a second cast trips the UNIQUE constraint
   identically on every replica. *)
let ballot_id ~election ~voter =
  let d = Crypto.Sha256.digest (Printf.sprintf "ballot|%d|%s" election voter) in
  let v = ref 0 in
  for i = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[i]
  done;
  !v

let cast_vote_sql ~election ~voter ~choice =
  Printf.sprintf
    "INSERT INTO ballots (bid, eid, voter, choice, ts, nonce) VALUES (%d, %d, '%s', '%s', NOW(), \
     RANDOM())"
    (ballot_id ~election ~voter) election voter choice

let tally_sql ~election =
  Printf.sprintf
    "SELECT choice, COUNT(*) votes FROM ballots WHERE eid = %d GROUP BY choice ORDER BY votes DESC"
    election

let turnout_sql ~election = Printf.sprintf "SELECT COUNT(*) turnout FROM ballots WHERE eid = %d" election

let vote_accepted reply = String.length reply >= 3 && String.sub reply 0 3 = "ok:"
