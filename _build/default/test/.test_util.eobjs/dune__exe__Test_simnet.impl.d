test/test_simnet.ml: Alcotest Float List Simdisk Simnet String
