lib/util/rng.mli:
