open Pbft

(* Per-behavior scenario report. [safe]/[live] are the two properties
   every Byzantine scenario must preserve: safety — correct replicas
   never commit conflicting batches for the same sequence number and
   their states agree — and liveness — the cluster keeps completing
   client requests with the adversary still installed (that is the whole
   point of tolerating f faults). *)
type report = {
  fr_behavior : string;
  fr_mutations : int;  (** adversary activity: datagrams rewritten/dropped, votes injected *)
  fr_view_changes : int;
  fr_demotion_transfers : int;  (** transfers by running replicas that fell behind (§2.4) *)
  fr_rejoin_transfers : int;  (** transfers by the crash/restart rejoin path *)
  fr_pages_fetched : int;  (** distinct pages pulled by completed transfers (Merkle diff) *)
  fr_pages_full : int;  (** pages the same transfers would pull without the diff *)
  fr_demotions : int;
  fr_rollbacks : int;  (** speculative executions undone by a view change *)
  fr_spec_execs : int;  (** batches executed before their commit certificate *)
  fr_auth_failures : int;
  fr_nondet_rejects : int;
  fr_final_view : int;  (** max view reached by a correct replica *)
  fr_baseline : int;  (** requests completed before the fault was armed *)
  fr_recovered : int;  (** requests completed in the post-recovery window *)
  fr_safe : bool;
  fr_live : bool;
  fr_failures : string list;  (** human-readable reasons when !safe or !live *)
}

let adversary_id behavior =
  match behavior with
  (* Vote forgery must come from a non-primary, or there is nothing to
     disrupt: the claim under test is that garbage votes cannot drag a
     healthy view down. Every other behavior wants the view-0 primary. *)
  | Adversary.Garbage_view_change -> 3
  | _ -> 0

let base_cfg ?(speculative = false) behavior =
  let cfg = Config.default ~f:1 in
  let cfg = { cfg with Config.view_change_timeout = 0.25 } in
  let cfg =
    (* Speculative variant: the whole suite re-runs with the execution
       pipeline on, so every Byzantine behavior is also exercised against
       replicas holding executed-but-uncommitted state. *)
    if speculative then { cfg with Config.pipeline_depth = 4; cores = 2 } else cfg
  in
  match behavior with
  | Adversary.Mutate_nondet ->
    (* §2.5: only a validation policy stands between the backups and the
       primary's poisoned non-determinism. *)
    { cfg with Config.nondet = Config.Delta 0.5 }
  | Adversary.Selective_mute _ ->
    (* Status gossip replays missed entries and would heal the starved
       backup before it ever falls a checkpoint behind; the §2.4
       demotion pathology needs it off (a faithful rendering of PBFT
       without its retransmission machinery). *)
    { cfg with Config.status_period = 0.0; checkpoint_interval = 64 }
  | _ -> cfg

let behaviors =
  [
    Adversary.Equivocate;
    Adversary.Mute;
    Adversary.Selective_mute [ 2 ];
    Adversary.Corrupt_macs;
    Adversary.Garbage_view_change;
    Adversary.Mutate_nondet;
  ]

let state_digest r = Statemgr.Merkle.root (Statemgr.Merkle.build (Replica.pages r))

(* Safety predicate 1: pairwise journal agreement. Journals list
   committed (seq, batch_digest) pairs; replicas that state-transferred
   past a stretch leave gaps, so only common sequence numbers are
   compared — disagreement there is a conflicting commit. *)
let journals_agree correct =
  let conflicts = ref [] in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      let tbl = Hashtbl.create 1024 in
      List.iter (fun (s, d) -> Hashtbl.replace tbl s d) (Replica.exec_journal a);
      List.iter
        (fun b ->
          List.iter
            (fun (s, d) ->
              match Hashtbl.find_opt tbl s with
              | Some d' when not (String.equal d d') ->
                conflicts :=
                  Printf.sprintf "replicas %d/%d committed different batches at seq %d"
                    (Replica.id a) (Replica.id b) s
                  :: !conflicts
              | Some _ | None -> ())
            (Replica.exec_journal b))
        rest;
      pairs rest
  in
  pairs correct;
  !conflicts

(* Safety predicate 2: replicas that executed the same prefix hold the
   same state. (Replicas at different sequence numbers legitimately
   differ; the journal check above covers their common prefix.) *)
let states_agree correct =
  let mismatches = ref [] in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if
            Replica.last_executed a = Replica.last_executed b
            && not (String.equal (state_digest a) (state_digest b))
          then
            mismatches :=
              Printf.sprintf "replicas %d/%d at seq %d have diverged state"
                (Replica.id a) (Replica.id b) (Replica.last_executed a)
              :: !mismatches)
        rest;
      pairs rest
  in
  pairs correct;
  !mismatches

let run_behavior ?(seed = 11) ?(trace = false) ?(speculative = false) behavior =
  let cfg = base_cfg ~speculative behavior in
  let adv_id = adversary_id behavior in
  let cluster = Cluster.create ~seed ~num_clients:8 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) trace;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  (* Closed-loop clients, as in the Table-1 workloads. *)
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 512 'f') loop in
      loop "")
    (Cluster.clients cluster);
  (* Healthy phase: establishes session keys and a progress baseline. *)
  Cluster.run cluster ~seconds:0.3;
  let baseline = Cluster.total_completed cluster in
  let adv = Adversary.install ~net:(Cluster.net cluster) ~cfg (Cluster.replica cluster adv_id) behavior in
  (* Fault phase: view changes / demotions happen in here. The backed-off
     watchdog needs a couple of timeouts' worth of room. *)
  Cluster.run cluster ~seconds:2.2;
  let before_recovery = Cluster.total_completed cluster in
  (* Recovery window: the adversary stays installed — a BFT group must
     make progress with f Byzantine members present, not merely after
     they stop. *)
  Cluster.run cluster ~seconds:1.0;
  stop := true;
  Cluster.run cluster ~seconds:0.2;
  let recovered = Cluster.total_completed cluster - before_recovery in
  let reps = Cluster.replicas cluster in
  let correct = List.filter (fun r -> Replica.id r <> adv_id) (Array.to_list reps) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 correct in
  let final_view = List.fold_left (fun acc r -> Int.max acc (Replica.view r)) 0 correct in
  let safety_failures = journals_agree correct @ states_agree correct in
  let failures = ref safety_failures in
  let expect what cond = if not cond then failures := what :: !failures in
  expect "adversary never fired a mutation" (Adversary.mutations adv > 0);
  expect "no progress before the fault" (baseline > 0);
  let live_progress = recovered > 0 in
  expect "no progress in the recovery window" live_progress;
  (match behavior with
  | Adversary.Equivocate | Adversary.Mute | Adversary.Corrupt_macs | Adversary.Mutate_nondet ->
    (* The faulty primary must be voted out. *)
    expect "no view change elected a new primary" (final_view > 0)
  | Adversary.Selective_mute _ ->
    (* The starved backup must demote itself into a state transfer. *)
    expect "starved replica was never demoted" (sum Replica.demotions > 0)
  | Adversary.Garbage_view_change ->
    (* Forged votes must be rejected, and must not drag the view up. *)
    expect "garbage votes were not rejected" (sum Replica.auth_failures > 0);
    expect "garbage votes disturbed the view" (final_view = 0));
  (match behavior with
  | Adversary.Mutate_nondet ->
    expect "poisoned nondet was never rejected" (sum Replica.nondet_rejects > 0)
  | Adversary.Corrupt_macs ->
    expect "corrupted authenticators were never rejected" (sum Replica.auth_failures > 0)
  | _ -> ());
  Adversary.uninstall adv;
  let report =
    {
      fr_behavior = Adversary.behavior_name behavior;
      fr_mutations = Adversary.mutations adv;
      fr_view_changes = sum Replica.view_changes;
      fr_demotion_transfers = sum Replica.demotion_transfers;
      fr_rejoin_transfers = sum Replica.rejoin_transfers;
      fr_pages_fetched = sum Replica.transfer_pages_fetched;
      fr_pages_full = sum Replica.transfer_pages_full;
      fr_demotions = sum Replica.demotions;
      fr_rollbacks = sum Replica.rollbacks;
      fr_spec_execs = sum Replica.speculative_execs;
      fr_auth_failures = sum Replica.auth_failures;
      fr_nondet_rejects = sum Replica.nondet_rejects;
      fr_final_view = final_view;
      fr_baseline = baseline;
      fr_recovered = recovered;
      fr_safe = safety_failures = [];
      fr_live = live_progress;
      fr_failures = List.rev !failures;
    }
  in
  (report, cluster)

(* View change mid-speculation: the one scenario PR 6's speculation
   machinery exists to survive. Commit datagrams are dropped on every
   link, so pipelined replicas prepare — and speculatively execute —
   batches they can never commit; replies stay buffered, clients time out
   and multicast, the watchdogs fire, and the view change must roll the
   speculated suffix back before the new primary re-proposes it. The drop
   then heals and the re-proposed batches commit for real, which is what
   makes the post-rollback journal/state agreement checks meaningful. *)
let run_vc_mid_speculation ?(seed = 11) ?(trace = false) () =
  let cfg = Config.default ~f:1 in
  let cfg =
    {
      cfg with
      Config.view_change_timeout = 0.25;
      pipeline_depth = 4;
      cores = 2;
      (* Status gossip replays missing certificates and would let a
         backup commit around the dropped datagrams; off, as in the
         selective-mute scenario. *)
      status_period = 0.0;
    }
  in
  let cluster = Cluster.create ~seed ~num_clients:8 cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) trace;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  let stop = ref false in
  Array.iter
    (fun cl ->
      let rec loop _ = if not !stop then Client.invoke cl (String.make 512 'f') loop in
      loop "")
    (Cluster.clients cluster);
  Cluster.run cluster ~seconds:0.3;
  let baseline = Cluster.total_completed cluster in
  let net = Cluster.net cluster in
  let engine = Cluster.engine cluster in
  (* One sender-wildcard entry per replica: an exact (src, dst) or
     (src, any) entry is what the link-fault lookup consults — there is
     deliberately no (any, any) catch-all. *)
  let replica_addrs = List.init cfg.Config.n (fun i -> i) in
  List.iter
    (fun src ->
      Simnet.Net.set_link_drop net ~src ~dst:Simnet.Net.any_addr (fun ~label ->
          String.equal label "commit"))
    replica_addrs;
  (* Heal after the watchdogs have had time to elect view 1 (client
     timeout 0.15 s + view-change timeout 0.25 s, plus slack), so the
     re-proposed batches can commit and the liveness check has teeth. *)
  Simnet.Engine.schedule engine ~delay:0.8 (fun () ->
      List.iter
        (fun src -> Simnet.Net.clear_link net ~src ~dst:Simnet.Net.any_addr)
        replica_addrs);
  Cluster.run cluster ~seconds:2.2;
  let before_recovery = Cluster.total_completed cluster in
  Cluster.run cluster ~seconds:1.0;
  stop := true;
  Cluster.run cluster ~seconds:0.2;
  let recovered = Cluster.total_completed cluster - before_recovery in
  let correct = Array.to_list (Cluster.replicas cluster) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 correct in
  let final_view = List.fold_left (fun acc r -> Int.max acc (Replica.view r)) 0 correct in
  let safety_failures = journals_agree correct @ states_agree correct in
  let failures = ref safety_failures in
  let expect what cond = if not cond then failures := what :: !failures in
  expect "no progress before the fault" (baseline > 0);
  let live_progress = recovered > 0 in
  expect "no progress in the recovery window" live_progress;
  expect "commit starvation never forced a view change" (final_view > 0);
  expect "no batch was executed speculatively" (sum Replica.speculative_execs > 0);
  expect "the view change never rolled back a speculated batch" (sum Replica.rollbacks > 0);
  let report =
    {
      fr_behavior = "vc-mid-speculation";
      fr_mutations = 0;
      fr_view_changes = sum Replica.view_changes;
      fr_demotion_transfers = sum Replica.demotion_transfers;
      fr_rejoin_transfers = sum Replica.rejoin_transfers;
      fr_pages_fetched = sum Replica.transfer_pages_fetched;
      fr_pages_full = sum Replica.transfer_pages_full;
      fr_demotions = sum Replica.demotions;
      fr_rollbacks = sum Replica.rollbacks;
      fr_spec_execs = sum Replica.speculative_execs;
      fr_auth_failures = sum Replica.auth_failures;
      fr_nondet_rejects = sum Replica.nondet_rejects;
      fr_final_view = final_view;
      fr_baseline = baseline;
      fr_recovered = recovered;
      fr_safe = safety_failures = [];
      fr_live = live_progress;
      fr_failures = List.rev !failures;
    }
  in
  (report, cluster)

(* Crash/restart: the view-0 primary loses all volatile state mid-run,
   the survivors elect view 1 and keep committing, and the restarted
   instance must reload its disk checkpoint, re-key (§2.3 Key_request),
   rejoin via Merkle-diff state transfer — fetching strictly fewer pages
   than a full transfer would — and catch up to the working view. No
   adversary is installed: the crash itself is the fault, and all four
   replicas are correct for the safety predicates. *)
let run_crash_restart ?(seed = 11) ?(trace = false) ?(speculative = false) () =
  let cfg = Config.default ~f:1 in
  let cfg = { cfg with Config.view_change_timeout = 0.25; rejoin_key_refresh = true } in
  let cfg = if speculative then { cfg with Config.pipeline_depth = 4; cores = 2 } else cfg in
  let victim = 0 in
  (* A state-writing service, so the post-crash suffix actually dirties
     pages and the Merkle diff has something to prune: the restarted
     replica must fetch the pages written while it was down, and only
     those. *)
  let cluster = Cluster.create ~seed ~num_clients:8 ~service:(Service.kv_store ()) cfg in
  Simnet.Trace.set_enabled (Cluster.trace cluster) trace;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  let stop = ref false in
  Array.iteri
    (fun i cl ->
      let seq = ref 0 in
      let rec loop _ =
        if not !stop then begin
          incr seq;
          (* The value must change every write — rewriting a key with
             identical bytes would leave the pages (and the Merkle diff)
             unchanged once every key has been touched. *)
          Client.invoke cl
            (Printf.sprintf "put c%d-%d v%d.%s" i (!seq mod 128) !seq (String.make 56 'v'))
            loop
        end
      in
      loop "")
    (Cluster.clients cluster);
  (* Healthy phase: session keys, a progress baseline, and — crucially —
     at least one stable checkpoint on the victim's disk. *)
  Cluster.run cluster ~seconds:0.3;
  let baseline = Cluster.total_completed cluster in
  let disk_ckpt = Replica.stable_checkpoint (Cluster.replica cluster victim) in
  Cluster.crash_replica cluster victim;
  (* Downtime: the survivors must vote the dead primary out and keep
     committing with only 2f+1 replicas up. *)
  Cluster.run cluster ~seconds:1.0;
  let during_downtime = Cluster.total_completed cluster - baseline in
  Cluster.restart_replica cluster victim;
  let restarted = Cluster.replica cluster victim in
  Replica.set_record_journal restarted true;
  (* Recovery window: the restarted instance re-keys, state-transfers and
     rejoins while the workload continues. *)
  Cluster.run cluster ~seconds:2.2;
  let before_recovery = Cluster.total_completed cluster in
  Cluster.run cluster ~seconds:1.0;
  stop := true;
  Cluster.run cluster ~seconds:0.2;
  let recovered = Cluster.total_completed cluster - before_recovery in
  let correct = Array.to_list (Cluster.replicas cluster) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 correct in
  let final_view = List.fold_left (fun acc r -> Int.max acc (Replica.view r)) 0 correct in
  let safety_failures = journals_agree correct @ states_agree correct in
  let failures = ref safety_failures in
  let expect what cond = if not cond then failures := what :: !failures in
  expect "no progress before the crash" (baseline > 0);
  expect "victim had no stable checkpoint to persist" (disk_ckpt > 0);
  expect "no progress while the victim was down" (during_downtime > 0);
  let live_progress = recovered > 0 in
  expect "no progress in the recovery window" live_progress;
  expect "crash of the primary never forced a view change" (final_view > 0);
  expect "restarted replica never started a rejoin transfer"
    (Replica.rejoin_transfers restarted > 0);
  expect "rejoin transfer never completed"
    (Replica.recovery_completed_at restarted <> None);
  (* The acceptance criterion: the Merkle diff must have pruned the
     fetch — some pages moved (the kv suffix written during downtime),
     but strictly fewer than a full transfer of every leaf. *)
  expect "rejoin moved no pages despite a written suffix"
    (Replica.transfer_pages_fetched restarted > 0);
  expect "rejoin fetched as many pages as a full transfer"
    (Replica.transfer_pages_full restarted > 0
    && Replica.transfer_pages_fetched restarted < Replica.transfer_pages_full restarted);
  expect "restarted replica never caught up to the working view"
    (Replica.view restarted = final_view);
  (* Satellite regression: rejoin must reset the view-change watchdog
     backoff, or the revived replica re-enters agreement with a stale
     exponential timeout. *)
  expect "restarted replica kept stale view-change backoff"
    (Replica.view_change_attempts restarted = 0);
  let report =
    {
      fr_behavior = (if speculative then "crash-restart-spec" else "crash-restart");
      fr_mutations = 0;
      fr_view_changes = sum Replica.view_changes;
      fr_demotion_transfers = sum Replica.demotion_transfers;
      fr_rejoin_transfers = sum Replica.rejoin_transfers;
      fr_pages_fetched = sum Replica.transfer_pages_fetched;
      fr_pages_full = sum Replica.transfer_pages_full;
      fr_demotions = sum Replica.demotions;
      fr_rollbacks = sum Replica.rollbacks;
      fr_spec_execs = sum Replica.speculative_execs;
      fr_auth_failures = sum Replica.auth_failures;
      fr_nondet_rejects = sum Replica.nondet_rejects;
      fr_final_view = final_view;
      fr_baseline = baseline;
      fr_recovered = recovered;
      fr_safe = safety_failures = [];
      fr_live = live_progress;
      fr_failures = List.rev !failures;
    }
  in
  (report, cluster)

(* Gateway-fronted variants: the same faulty primary, but the load now
   arrives open-loop through the front door — sessions multiplexed over
   a handful of upstream connections, coalesced batches, admission
   control live. The point under test: a mute or equivocating primary
   behind a loaded gateway is still voted out, the door keeps shedding
   rather than wedging while agreement stalls, and progress resumes
   through the same door afterwards. *)
let gateway_behaviors = [ Adversary.Mute; Adversary.Equivocate ]

let run_gateway_behavior ?(seed = 11) ?(trace = false) behavior =
  let cfg = base_cfg behavior in
  (* Enough connections and offered load that the primary's pre-prepare
     batches regularly hold several coalesced requests — the equivocation
     rewrite needs a batch it can reorder. *)
  let cluster =
    Cluster.create ~seed ~num_clients:8
      ~service:(Webgate.Frontdoor.wrap_service (Service.null ()))
      cfg
  in
  Simnet.Trace.set_enabled (Cluster.trace cluster) trace;
  Array.iter (fun r -> Replica.set_record_journal r true) (Cluster.replicas cluster);
  let engine = Cluster.engine cluster in
  let net = Cluster.net cluster in
  let gw_cfg =
    {
      Webgate.Frontdoor.connections = 8;
      flush_bytes = 2 * 1024;
      flush_deadline = 0.002;
      max_queue = 4096;
      max_sessions = 512;
    }
  in
  let door =
    Webgate.Frontdoor.create ~cfg:gw_cfg ~engine ~net ~clients:(Cluster.clients cluster) ()
  in
  let ol_spec =
    {
      (Openloop.default_spec cfg) with
      Openloop.seed;
      sessions = 400;
      arrival = Openloop.Poisson 4_000.0;
      op_bytes = 256;
      gen_conns = 8;
      gateway = gw_cfg;
    }
  in
  let gen = Openloop.create_gen ~engine ~net ol_spec in
  Cluster.run cluster ~seconds:0.3;
  let baseline = Webgate.Frontdoor.completed door in
  let adv_id = adversary_id behavior in
  let adv =
    Adversary.install ~net ~cfg (Cluster.replica cluster adv_id) behavior
  in
  Cluster.run cluster ~seconds:2.2;
  let before_recovery = Webgate.Frontdoor.completed door in
  Cluster.run cluster ~seconds:1.0;
  Openloop.stop_generator gen;
  Cluster.run cluster ~seconds:0.2;
  let recovered = Webgate.Frontdoor.completed door - before_recovery in
  let reps = Cluster.replicas cluster in
  let correct = List.filter (fun r -> Replica.id r <> adv_id) (Array.to_list reps) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 correct in
  let final_view = List.fold_left (fun acc r -> Int.max acc (Replica.view r)) 0 correct in
  let safety_failures = journals_agree correct @ states_agree correct in
  let failures = ref safety_failures in
  let expect what cond = if not cond then failures := what :: !failures in
  expect "adversary never fired a mutation" (Adversary.mutations adv > 0);
  expect "no gateway progress before the fault" (baseline > 0);
  let live_progress = recovered > 0 in
  expect "no gateway progress in the recovery window" live_progress;
  expect "no view change elected a new primary" (final_view > 0);
  Adversary.uninstall adv;
  let report =
    {
      fr_behavior = "gateway-" ^ Adversary.behavior_name behavior;
      fr_mutations = Adversary.mutations adv;
      fr_view_changes = sum Replica.view_changes;
      fr_demotion_transfers = sum Replica.demotion_transfers;
      fr_rejoin_transfers = sum Replica.rejoin_transfers;
      fr_pages_fetched = sum Replica.transfer_pages_fetched;
      fr_pages_full = sum Replica.transfer_pages_full;
      fr_demotions = sum Replica.demotions;
      fr_rollbacks = sum Replica.rollbacks;
      fr_spec_execs = sum Replica.speculative_execs;
      fr_auth_failures = sum Replica.auth_failures;
      fr_nondet_rejects = sum Replica.nondet_rejects;
      fr_final_view = final_view;
      fr_baseline = baseline;
      fr_recovered = recovered;
      fr_safe = safety_failures = [];
      fr_live = live_progress;
      fr_failures = List.rev !failures;
    }
  in
  (report, cluster)

let run_all ?(seed = 11) ?(speculative = false) () =
  List.map (fun b -> run_behavior ~seed ~speculative b) behaviors
  @ [ run_crash_restart ~seed ~speculative () ]
  @
  if speculative then [ run_vc_mid_speculation ~seed () ]
  else List.map (fun b -> run_gateway_behavior ~seed b) gateway_behaviors

let render r =
  Printf.sprintf
    "%-20s %-4s mutations=%-5d vc=%-3d dem_tr=%-2d rejoin_tr=%-2d pages=%d/%-4d demotions=%-2d \
     spec=%-5d rollbacks=%-2d auth_fail=%-4d nondet_rej=%-4d view=%-2d baseline=%-5d \
     recovered=%-5d%s"
    r.fr_behavior
    (if r.fr_safe && r.fr_live && r.fr_failures = [] then "ok" else "FAIL")
    r.fr_mutations r.fr_view_changes r.fr_demotion_transfers r.fr_rejoin_transfers
    r.fr_pages_fetched r.fr_pages_full r.fr_demotions r.fr_spec_execs
    r.fr_rollbacks r.fr_auth_failures r.fr_nondet_rejects r.fr_final_view r.fr_baseline
    r.fr_recovered
    (match r.fr_failures with
    | [] -> ""
    | fs -> "\n    " ^ String.concat "\n    " fs)

let failure_trace cluster =
  Simnet.Trace.render ~limit:5000 (Cluster.trace cluster) (fun _ -> true)
