lib/crypto/shamir.ml: Bignum List Nat Prime
