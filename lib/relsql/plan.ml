(* Access-path selection for single-table statements.

   The planner inspects the top-level AND conjuncts of a WHERE clause for
   sargable comparisons (column op literal) and picks the cheapest access
   path: a direct rowid probe when the INTEGER PRIMARY KEY is pinned, a
   bounded secondary-index scan when an indexed column is constrained, a
   full table scan otherwise. Chosen paths are *supersets*: the caller
   re-evaluates the WHERE clause once per candidate row, so a bound may
   safely overshoot (inclusive where the predicate is strict) but must
   never exclude a matching row.

   Index keys are [Value.key_encode v ^ "\x00" ^ rowid] and sort bytewise,
   which segregates values by type tag (Null < Int < Real < Text) while
   [Value.compare_sql] — the comparison the predicate actually uses —
   interleaves Int and Real numerically. Bounds therefore have to be
   computed against the *declared* column type, leaning on the storage
   invariants enforced by [coerce] at INSERT/UPDATE time: an INTEGER
   column holds Int, Null, or *unparseable* Text (never Real); a REAL
   column holds Real, Null, or unparseable Text (never Int); a TEXT
   column holds only Text or Null. Numeric bounds stay safe for the
   stray Text entries because Text sorts above every number in both
   [key_encode] byte order and [compare_sql]: a numeric upper bound
   excludes them exactly when the predicate rejects them, and a numeric
   lower bound with no upper bound scans through to them and lets the
   re-evaluated WHERE decide. *)

type access =
  | Full_scan
  | No_rows  (** a conjunct is provably unsatisfiable, e.g. [col = NULL] *)
  | Pk_probe of int  (** direct rowid lookup in the row tree *)
  | Index_scan of { idx : Catalog.index_def; lo : string option; hi : string option }
      (** bounded scan of a secondary index; [lo]/[hi] are inclusive
          entry-key bounds *)

let col_names (tbl : Catalog.table) =
  List.map (fun (c : Ast.column_def) -> String.lowercase_ascii c.col_name) tbl.tbl_cols

let pk_column (tbl : Catalog.table) =
  List.find_index (fun (c : Ast.column_def) -> c.col_pk && c.col_type = Ast.T_integer) tbl.tbl_cols

(* Coerce a value to a column's declared affinity — the same function the
   write path applies, which is what makes the storage invariants above
   hold. *)
let coerce (c : Ast.column_def) v =
  match (c.col_type, v) with
  | _, Value.Null -> Value.Null
  | Ast.T_integer, Value.Int _ -> v
  | Ast.T_integer, Value.Real f -> Value.Int (int_of_float f)
  | Ast.T_integer, Value.Text s -> (
    match int_of_string_opt s with Some i -> Value.Int i | None -> v)
  | Ast.T_real, Value.Real _ -> v
  | Ast.T_real, Value.Int i -> Value.Real (float_of_int i)
  | Ast.T_real, Value.Text s -> (
    match float_of_string_opt s with Some f -> Value.Real f | None -> v)
  | Ast.T_text, Value.Text _ -> v
  | Ast.T_text, (Value.Int _ | Value.Real _) -> Value.Text (Value.to_string v)

(* Entry-key bounds bracketing every index entry for value [v]: the entry
   key is the encoded value, a NUL separator, then an 8-byte rowid. *)
let key_floor v = Value.key_encode v ^ "\x00"
let key_ceil v = Value.key_encode v ^ "\x00" ^ String.make 8 '\xff'

(* First entry key carrying a non-Null value (Null encodes as "\x00"). *)
let above_null = "\x01"

(* --- constraint extraction --- *)

type constr =
  | C_eq of Value.t
  | C_lower of Value.t * bool  (** bound, inclusive *)
  | C_upper of Value.t * bool
  | C_is_null
  | C_not_null

let flip_op = function "<" -> ">" | "<=" -> ">=" | ">" -> "<" | ">=" -> "<=" | op -> op

let rec conjuncts (e : Ast.expr) acc =
  match e with Ast.Binop ("AND", a, b) -> conjuncts a (conjuncts b acc) | e -> e :: acc

(* NaN is poison: the predicate compares through OCaml's polymorphic
   [compare] (NaN below every float) while [key_encode] sorts NaN above —
   constraints carrying one are simply not used for planning. *)
let usable_lit = function Value.Real f when Float.is_nan f -> false | _ -> true

let constraints_of (where : Ast.expr option) =
  let of_cmp c op v =
    let col = String.lowercase_ascii c in
    match op with
    | "=" -> Some (col, C_eq v)
    | ">" -> Some (col, C_lower (v, false))
    | ">=" -> Some (col, C_lower (v, true))
    | "<" -> Some (col, C_upper (v, false))
    | "<=" -> Some (col, C_upper (v, true))
    | _ -> None
  in
  (* Negative numbers parse as [Unop ("-", Lit _)]; fold them here so
     they are as sargable as positive literals. An Int literal is at most
     [max_int], so the negation cannot overflow. *)
  let lit_of = function
    | Ast.Lit v -> Some v
    | Ast.Unop ("-", Ast.Lit (Value.Int i)) -> Some (Value.Int (-i))
    | Ast.Unop ("-", Ast.Lit (Value.Real f)) -> Some (Value.Real (-.f))
    | _ -> None
  in
  match where with
  | None -> []
  | Some w ->
    List.filter_map
      (fun (e : Ast.expr) ->
        match e with
        | Ast.Binop (op, Ast.Col (_, c), rhs) -> (
          match lit_of rhs with Some v when usable_lit v -> of_cmp c op v | _ -> None)
        | Ast.Binop (op, lhs, Ast.Col (_, c)) -> (
          match lit_of lhs with Some v when usable_lit v -> of_cmp c (flip_op op) v | _ -> None)
        | Ast.Is_null (Ast.Col (_, c), positive) ->
          Some (String.lowercase_ascii c, if positive then C_is_null else C_not_null)
        | _ -> None)
      (conjuncts w [])

(* --- bound encoding --- *)

type bound =
  | B_key of string
  | B_empty  (** the constraint excludes every storable value *)

let number_of v = match Value.as_number v with Some f -> f | None -> 0.0

(* Integer bounds for a float constraint on an INTEGER column. The
   predicate compares [float_of_int i] with the literal [x], so a stored
   int within half an ulp of [x] satisfies a non-strict bound (or an
   equality) even though it differs from [x] as an integer. Inside
   (-2^53, 2^53) the conversion is exact and bounds can be tight;
   outside, widen by one ulp before truncating so the bound can only
   overshoot — the WHERE clause filters the excess. A widened endpoint
   past the int range saturates to the matching extreme, which is safe
   there: [float_of_int max_int] rounds up to 2^62, so no int converts
   above it (resp. below [float_of_int min_int] = -2^62 exactly). *)
let int_exact = 9007199254740992.0 (* 2^53 *)

let int_lower_of_float x incl =
  if Float.abs x < int_exact then begin
    let fl = Float.floor x in
    if incl && fl = x then int_of_float x else int_of_float fl + 1
  end
  else begin
    let y = Float.pred x in
    if y >= float_of_int max_int then max_int
    else if y <= float_of_int min_int then min_int
    else int_of_float (Float.floor y)
  end

let int_upper_of_float x incl =
  if Float.abs x < int_exact then begin
    let fl = Float.floor x in
    if incl || fl <> x then int_of_float fl else int_of_float x - 1
  end
  else begin
    let y = Float.succ x in
    if y >= float_of_int max_int then max_int
    else if y <= float_of_int min_int then min_int
    else int_of_float (Float.ceil y)
  end

(* Smallest entry key an index entry of a row satisfying [col >(=) v] can
   have, given the column's declared type. Int literals use exact integer
   arithmetic; only Real literals take the float path above. *)
let lower_key (def : Ast.column_def) v incl =
  match v with
  | Value.Null -> B_empty
  | Value.Text s -> B_key (key_floor (Value.Text s))
  | Value.Int _ | Value.Real _ -> (
    match def.col_type with
    | Ast.T_integer ->
      let m =
        match v with
        | Value.Int i -> if incl || i = max_int then i else i + 1
        | Value.Real x -> int_lower_of_float x incl
        | Value.Null | Value.Text _ -> assert false
      in
      B_key (key_floor (Value.Int m))
    | Ast.T_real ->
      (* The predicate converts an Int literal with [float_of_int] too,
         so the rounded float is the exact comparison point. *)
      B_key (key_floor (Value.Real (number_of v)))
    | Ast.T_text ->
      (* Text sorts above every number, so all non-Null rows qualify. *)
      B_key above_null)

let upper_key (def : Ast.column_def) v incl =
  match v with
  | Value.Null -> B_empty
  | Value.Text s -> B_key (key_ceil (Value.Text s))
  | Value.Int _ | Value.Real _ -> (
    match def.col_type with
    | Ast.T_integer ->
      let m =
        match v with
        | Value.Int i -> if incl || i = min_int then i else i - 1
        | Value.Real x -> int_upper_of_float x incl
        | Value.Null | Value.Text _ -> assert false
      in
      B_key (key_ceil (Value.Int m))
    | Ast.T_real -> B_key (key_ceil (Value.Real (number_of v)))
    | Ast.T_text ->
      (* A TEXT column stores only Text/Null, and neither sorts below a
         number: the conjunct is unsatisfiable. *)
      B_empty)

(* --- path selection --- *)

type range_plan =
  | R_empty
  | R_none  (** no usable constraint on this column *)
  | R_range of int * string option * string option  (** score, lo, hi *)

(* Combine every constraint on one column into a single scan range.
   Equality (including IS NULL) dominates; otherwise lower bounds max
   together and upper bounds min together. Any comparison rejects NULL,
   so a range always starts at [above_null] at worst. *)
(* Entry-key range bracketing every index entry an equality constraint
   can match. Usually a single-value range, but a Real literal against an
   INTEGER column needs the whole bucket of ints that [float_of_int]
   rounds onto the literal — outside the exact band that is more than one
   int (and none of them need equal [int_of_float x]). *)
let eq_range (def : Ast.column_def) v =
  match (def.col_type, v) with
  | Ast.T_integer, Value.Real x ->
    let lo = int_lower_of_float x true and hi = int_upper_of_float x true in
    if lo > hi then
      (* Possible only when no int float-compares equal to [x] (a
         non-integral literal in the exact band), so emptiness is proven:
         an INTEGER column's other inhabitants — Null and unparseable
         Text — never compare equal to a number either. *)
      R_empty
    else R_range (3, Some (key_floor (Value.Int lo)), Some (key_ceil (Value.Int hi)))
  | _ -> (
    match coerce def v with
    | Value.Null -> R_empty
    | c ->
      let lo = key_floor c in
      (* [lo] is a key_floor; the matching ceiling shares its value
         prefix. *)
      R_range (3, Some lo, Some (lo ^ String.make 8 '\xff')))

let range_for (def : Ast.column_def) (cs : constr list) =
  let eq =
    List.find_map
      (function
        | C_eq v -> Some (eq_range def v)
        | C_is_null ->
          let lo = key_floor Value.Null in
          Some (R_range (3, Some lo, Some (lo ^ String.make 8 '\xff')))
        | _ -> None)
      cs
  in
  match eq with
  | Some plan -> plan
  | None ->
    let lo = ref None and hi = ref None and empty = ref false in
    List.iter
      (fun c ->
        match c with
        | C_lower (v, incl) -> (
          match lower_key def v incl with
          | B_empty -> empty := true
          | B_key k -> lo := Some (match !lo with Some p when p >= k -> p | _ -> k))
        | C_upper (v, incl) -> (
          match upper_key def v incl with
          | B_empty -> empty := true
          | B_key k -> hi := Some (match !hi with Some p when p <= k -> p | _ -> k))
        | C_not_null -> lo := Some (match !lo with Some p when p >= above_null -> p | _ -> above_null)
        | C_eq _ | C_is_null -> ())
      cs;
    if !empty then R_empty
    else begin
      match (!lo, !hi) with
      | None, None -> R_none
      | Some _, Some _ -> R_range (2, !lo, !hi)
      | Some _, None -> R_range (1, !lo, None)
      | None, Some h ->
        (* One-sided upper bound: any comparison still rejects NULLs, so
           start the scan just past them. *)
        R_range (1, Some above_null, Some h)
    end

let choose (tbl : Catalog.table) (where : Ast.expr option) =
  let names = col_names tbl in
  let defs = Array.of_list tbl.tbl_cols in
  let cs =
    (* Keep constraints whose column exists in this table; unknown columns
       are someone else's error to report. *)
    List.filter_map
      (fun (col, c) ->
        match List.find_index (String.equal col) names with
        | Some i -> Some (i, c)
        | None -> None)
      (constraints_of where)
  in
  let provably_empty =
    List.exists
      (fun (_, c) ->
        match c with
        | C_eq Value.Null | C_lower (Value.Null, _) | C_upper (Value.Null, _) -> true
        | _ -> false)
      cs
  in
  if provably_empty then No_rows
  else begin
    let pk_lit =
      match pk_column tbl with
      | None -> None
      | Some pki ->
        List.find_map (fun (i, c) -> match c with C_eq v when i = pki -> Some v | _ -> None) cs
    in
    let pk_access =
      match pk_lit with
      | None -> None
      | Some (Value.Int rowid) -> Some (Pk_probe rowid)
      | Some (Value.Real x) ->
        if Float.abs x >= int_exact then
          (* Outside the exact band several rowids can [float_of_int]-
             compare equal to one float; a single probe could miss
             matches, so defer to the index/scan paths below. *)
          None
        else if Float.floor x = x then Some (Pk_probe (int_of_float x))
        else Some No_rows
      | Some (Value.Text _ | Value.Null) ->
        (* The PK column stores only Int, which never compares equal to
           Text ([col = NULL] was already caught above). *)
        Some No_rows
    in
    match pk_access with
    | Some access -> access
    | None ->
      let best =
        List.fold_left
          (fun best (idx : Catalog.index_def) ->
            match List.find_index (String.equal (String.lowercase_ascii idx.idx_col)) names with
            | None -> best
            | Some ci -> (
              let on_col = List.filter_map (fun (i, c) -> if i = ci then Some c else None) cs in
              match range_for defs.(ci) on_col with
              | R_none -> best
              | R_empty -> Some (max_int, No_rows)
              | R_range (score, lo, hi) -> (
                match best with
                | Some (s, _) when s >= score -> best
                | _ -> Some (score, Index_scan { idx; lo; hi }))))
          None tbl.Catalog.tbl_indexes
      in
      (match best with Some (_, access) -> access | None -> Full_scan)
  end

let describe = function
  | Full_scan -> "full-scan"
  | No_rows -> "no-rows"
  | Pk_probe rowid -> Printf.sprintf "pk-probe(%d)" rowid
  | Index_scan { idx; lo; hi } ->
    Printf.sprintf "index-scan(%s%s%s)" idx.Catalog.idx_name
      (match lo with Some _ -> ",lo" | None -> "")
      (match hi with Some _ -> ",hi" | None -> "")
