(** Page cache and transaction manager over the VFS.

    The database file is an array of 4096-byte pages. Page 0 is the
    header (magic, page count, freelist head, catalog root). All reads
    and writes go through the cache; the first modification of a page
    inside a transaction journals its original image, giving SQLite-style
    rollback-journal ACID (§3.2). Without a journal (no-ACID mode) writes
    land directly and only crash consistency is lost — the configuration
    the paper's §4.2 compares against. *)

type t

exception Corrupt of string

val page_size : int
(** 4096 bytes. *)

val open_pager : Vfs.t -> t
(** Opens (creating/initializing if empty) and — if a hot journal is
    present — runs crash recovery by rolling the journal back. *)

val read_page : t -> int -> string

val read_page_quiet : t -> int -> string
(** Like {!read_page} but without recording an application page touch —
    for callers that inspect a page and only sometimes do real work with
    it (charge it explicitly with {!touch_page} when they do). *)

val touch_page : t -> int -> unit
(** Record an application page touch for accounting (idempotent within a
    counter window). *)

val write_page : t -> int -> string -> unit
(** Must be inside a transaction. *)

val allocate_page : t -> int
(** Fresh page number (reuses freed pages). Must be inside a transaction.
    Header changes (page count / freelist / catalog root) are deferred:
    one header image is written at {!commit}, not per allocation. *)

val free_page : t -> int -> unit
val page_count : t -> int

val catalog_root : t -> int
val set_catalog_root : t -> int -> unit

val begin_txn : t -> unit
val in_txn : t -> bool
val commit : t -> unit
(** Deferred header write (if any), journal sync, page write-back, main
    sync, journal reset. *)

val rollback : t -> unit

val refresh : t -> unit
(** Re-read the header from the file — required after an external agent
    (PBFT state transfer) rewrites the underlying region. Must be called
    outside any transaction. *)

val pages_touched : t -> int
(** Distinct pages read or written since the counter was last taken. *)

val take_pages_touched : t -> int
