(* Trust-boundary declarations for the trustlint pass.

   The taint analysis in {!Taint} needs to know three sets of functions:
   *sources* that turn untrusted wire bytes into values, *sanitizers*
   whose boolean verdict vouches for the values they inspected, and
   *sinks* that fold a value into replica/gateway state. Two declaration
   channels feed those sets:

   - [@@trust.source] / [@@trust.sanitizer] / [@@trust.sink] attributes
     on [val] declarations (and record labels) in the repo's own [.mli]
     files — the preferred channel, because the declaration lives next
     to the contract it encodes;
   - the convention table below, for names that have no interface to
     annotate: locally-defined helpers ([view_change_well_formed]),
     closure parameters ([verify] in [Relsql.Twopc]), and stdlib calls
     that only act as a boundary in specific files. *)

open Parsetree

type role = Source | Sanitizer | Sink

let role_name = function Source -> "source" | Sanitizer -> "sanitizer" | Sink -> "sink"

type spec = {
  sp_path : string list;
      (* suffix of the flattened applied identifier, e.g. ["Mac"; "verify"]
         matches both [Mac.verify] and [Crypto.Mac.verify] *)
  sp_role : role;
  sp_scope : string list;
      (* repo-relative file paths (or directory prefixes ending in '/')
         this spec applies in; [] = everywhere *)
  sp_desc : string;
}

let in_scope spec ~rel =
  spec.sp_scope = []
  || List.exists
       (fun s ->
         if String.length s > 0 && s.[String.length s - 1] = '/' then
           String.starts_with ~prefix:s rel
         else String.equal s rel)
       spec.sp_scope

(* Does the flattened identifier [path] end with the spec's components? *)
let path_matches spec path =
  let want = List.length spec.sp_path and got = List.length path in
  got >= want
  && (let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
      List.for_all2 String.equal spec.sp_path (drop (got - want) path))

let find_spec specs ~rel ~role path =
  List.find_opt (fun s -> s.sp_role = role && in_scope s ~rel && path_matches s path) specs

(* ------------------------------------------------------------------ *)
(* Convention table.                                                    *)

(* Files whose [Util.Codec] reads really do consume bytes that arrived
   off the (simulated) wire. Deliberately *not* lib/relsql/pager.ml or
   btree.ml: those decode their own disk images, written by the same
   code under the pager's checksums, and treating them as wire input
   would drown the signal. *)
let wire_codec_files =
  [
    "lib/pbft/replica.ml";
    "lib/pbft/session_state.ml";
    "lib/webgate/frontdoor.ml";
    "lib/webgate/router.ml";
    "lib/relsql/twopc.ml";
  ]

let conventions =
  [
    (* --- sources ------------------------------------------------- *)
    {
      sp_path = [ "Util"; "Codec"; "R"; "of_string" ];
      sp_role = Source;
      sp_scope = wire_codec_files;
      sp_desc = "raw codec reader over wire bytes";
    };
    {
      sp_path = [ "Util"; "Codec"; "decode" ];
      sp_role = Source;
      sp_scope = wire_codec_files;
      sp_desc = "codec decode of wire bytes";
    };
    {
      sp_path = [ "Json"; "parse" ];
      sp_role = Source;
      sp_scope = [ "lib/webgate/gateway.ml" ];
      sp_desc = "browser-frame JSON parse";
    };
    (* --- sanitizers ---------------------------------------------- *)
    {
      sp_path = [ "view_change_well_formed" ];
      sp_role = Sanitizer;
      sp_scope = [ "lib/pbft/replica.ml" ];
      sp_desc = "view-change well-formedness check (PR 5)";
    };
    {
      sp_path = [ "check_auth" ];
      sp_role = Sanitizer;
      sp_scope = [ "lib/pbft/replica.ml" ];
      sp_desc = "per-message MAC/signature verification at intake";
    };
    {
      sp_path = [ "verify_reply_auth" ];
      sp_role = Sanitizer;
      sp_scope = [ "lib/pbft/client.ml" ];
      sp_desc = "per-reply MAC/signature verification at intake";
    };
    {
      sp_path = [ "verify" ];
      sp_role = Sanitizer;
      sp_scope = [ "lib/relsql/twopc.ml" ];
      sp_desc = "vote-certificate re-verification closure (threshold publics)";
    };
    {
      (* Comparing a decoded value against an already-trusted digest
         (quorum-certified Merkle root, recomputed join proof) is this
         repo's idiom for content checks; scoped to the replica, where
         every such String.equal is one of those checks. *)
      sp_path = [ "String"; "equal" ];
      sp_role = Sanitizer;
      sp_scope = [ "lib/pbft/replica.ml" ];
      sp_desc = "digest equality against a trusted value";
    };
    (* --- sinks ---------------------------------------------------- *)
    {
      sp_path = [ "Hashtbl"; "replace" ];
      sp_role = Sink;
      sp_scope = [];
      sp_desc = "table insert (quorum tallies, caches, ledgers)";
    };
    {
      sp_path = [ "Hashtbl"; "add" ];
      sp_role = Sink;
      sp_scope = [];
      sp_desc = "table insert";
    };
  ]

(* ------------------------------------------------------------------ *)
(* Interface harvesting.                                                *)

let trust_attr_role (a : attribute) =
  match a.attr_name.txt with
  | "trust.source" -> Some Source
  | "trust.sanitizer" -> Some Sanitizer
  | "trust.sink" -> Some Sink
  | _ -> None

let attr_desc (a : attribute) ~default =
  match a.attr_payload with
  | PStr [ { pstr_desc = Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _); _ } ]
    ->
    s
  | _ -> default

(* "lib/pbft/session_state.mli" -> "Session_state" *)
let module_of_mli rel =
  let base = Filename.remove_extension (Filename.basename rel) in
  String.capitalize_ascii base

let specs_of_attrs ~modname ~name attrs =
  List.filter_map
    (fun a ->
      match trust_attr_role a with
      | None -> None
      | Some role ->
        Some
          {
            sp_path = [ modname; name ];
            sp_role = role;
            sp_scope = [];
            sp_desc = attr_desc a ~default:(Printf.sprintf "%s.%s (declared)" modname name);
          })
    attrs

(* Harvest [@@trust.*] markers from one parsed [.mli]: [val]
   declarations, and record labels (so a function-typed field like
   [Service.execute] can be a declared sink). Nested module signatures
   contribute under [Module.Sub.name] — matching is suffix-based, so the
   last two components are what call sites see. *)
let harvest_interface ~rel (sg : signature) =
  let modname = module_of_mli rel in
  let out = ref [] in
  let rec walk_sig prefix items =
    List.iter
      (fun (item : signature_item) ->
        match item.psig_desc with
        | Psig_value vd ->
          out := specs_of_attrs ~modname:prefix ~name:vd.pval_name.txt vd.pval_attributes @ !out
        | Psig_type (_, decls) ->
          List.iter
            (fun (d : type_declaration) ->
              match d.ptype_kind with
              | Ptype_record labels ->
                List.iter
                  (fun (l : label_declaration) ->
                    (* the attribute may parse onto the label or its type *)
                    let attrs = l.pld_attributes @ l.pld_type.ptyp_attributes in
                    out := specs_of_attrs ~modname:prefix ~name:l.pld_name.txt attrs @ !out)
                  labels
              | _ -> ())
            decls
        | Psig_module { pmd_name = { txt = Some sub; _ }; pmd_type; _ } -> walk_modtype sub pmd_type
        | _ -> ())
      items
  and walk_modtype sub (mt : module_type) =
    match mt.pmty_desc with
    | Pmty_signature items -> walk_sig sub items
    | _ -> ()
  in
  walk_sig modname sg;
  List.rev !out

let parse_interface ~filename src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf filename;
  Parse.interface lexbuf
