lib/pbft/config.ml: Printf
