(** Access-path selection for single-table statements.

    The planner reads the top-level AND conjuncts of a WHERE clause for
    sargable comparisons (column op literal, IS \[NOT\] NULL) and picks a
    rowid probe, a bounded secondary-index scan, or a full scan. Chosen
    paths are supersets of the matching rows — the executor re-evaluates
    the predicate once per candidate — so bounds may overshoot but never
    exclude a match. *)

type access =
  | Full_scan
  | No_rows  (** a conjunct is provably unsatisfiable, e.g. [col = NULL] *)
  | Pk_probe of int  (** direct rowid lookup in the row tree *)
  | Index_scan of { idx : Catalog.index_def; lo : string option; hi : string option }
      (** bounded scan of a secondary index; [lo]/[hi] are inclusive
          entry-key bounds for {!Btree.iter}'s [from]/[upto] *)

val choose : Catalog.table -> Ast.expr option -> access
(** Pick the access path for one table under an optional WHERE clause.
    Precedence: proven emptiness, then a primary-key equality probe, then
    the best-scored index range (equality > two-sided > one-sided; ties
    break towards the index declared first), then a full scan. *)

val coerce : Ast.column_def -> Value.t -> Value.t
(** Coerce a value to a column's declared affinity — shared with the
    write path, whose use of it establishes the storage invariants the
    planner's bounds rely on. *)

val describe : access -> string
(** One-line rendering for tests and debugging. *)

val col_names : Catalog.table -> string list
(** Lower-cased column names, in declaration order. *)

val pk_column : Catalog.table -> int option
(** Position of the INTEGER PRIMARY KEY column, if any. *)
