lib/pbft/membership.ml: Hashtbl List Types Util
