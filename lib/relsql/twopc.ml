type vote = {
  v_shard : int;
  v_client : int;
  v_rq_id : int;
  v_result : string;
  v_cert : string;
}

type op =
  | Prepare of { tx : int; deadline : float; shards : int list; script : string }
  | Commit of { tx : int; votes : vote list }
  | Abort of { tx : int; reason : string }

let magic = "X2P1"

let encode_op o =
  magic
  ^ Util.Codec.encode
      (fun w o ->
        match o with
        | Prepare { tx; deadline; shards; script } ->
          Util.Codec.W.u8 w 0;
          Util.Codec.W.varint w tx;
          Util.Codec.W.f64 w deadline;
          Util.Codec.W.list w Util.Codec.W.varint shards;
          Util.Codec.W.lstring w script
        | Commit { tx; votes } ->
          Util.Codec.W.u8 w 1;
          Util.Codec.W.varint w tx;
          Util.Codec.W.list w
            (fun w v ->
              Util.Codec.W.varint w v.v_shard;
              Util.Codec.W.varint w v.v_client;
              Util.Codec.W.varint w v.v_rq_id;
              Util.Codec.W.lstring w v.v_result;
              Util.Codec.W.lstring w v.v_cert)
            votes
        | Abort { tx; reason } ->
          Util.Codec.W.u8 w 2;
          Util.Codec.W.varint w tx;
          Util.Codec.W.lstring w reason)
      o

let is_twopc_op s =
  String.length s >= 4 && String.equal (String.sub s 0 4) magic

let decode_op s =
  if not (is_twopc_op s) then None
  else
    match
      Util.Codec.decode
        (fun r ->
          match Util.Codec.R.u8 r with
          | 0 ->
            let tx = Util.Codec.R.varint r in
            let deadline = Util.Codec.R.f64 r in
            let shards = Util.Codec.R.list r Util.Codec.R.varint in
            let script = Util.Codec.R.lstring r in
            Prepare { tx; deadline; shards; script }
          | 1 ->
            let tx = Util.Codec.R.varint r in
            let votes =
              Util.Codec.R.list r (fun r ->
                  let v_shard = Util.Codec.R.varint r in
                  let v_client = Util.Codec.R.varint r in
                  let v_rq_id = Util.Codec.R.varint r in
                  let v_result = Util.Codec.R.lstring r in
                  let v_cert = Util.Codec.R.lstring r in
                  { v_shard; v_client; v_rq_id; v_result; v_cert })
            in
            Commit { tx; votes }
          | _ ->
            let tx = Util.Codec.R.varint r in
            let reason = Util.Codec.R.lstring r in
            Abort { tx; reason })
        (String.sub s 4 (String.length s - 4))
    with
    | op -> Some op
    | exception Util.Codec.R.Truncated -> None

let prepared_prefix tx = Printf.sprintf "2pc-prepared:%d:" tx

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Process-wide counters, the Pages.bytes_copied idiom. *)
let n_prepares = ref 0
let n_commits = ref 0
let n_aborts = ref 0
let n_expired = ref 0
let n_vote_rejections = ref 0

let prepares () = !n_prepares
let commits () = !n_commits
let aborts () = !n_aborts
let expired () = !n_expired
let vote_rejections () = !n_vote_rejections

type prep = {
  p_tx : int;
  p_deadline : float;
  p_shards : int list;
  p_snapshot : Statemgr.Pages.snapshot;
  p_reply : string;
}

let tiny_cost = 1e-6

let wrap ~verify ?(vote_verify_cost = 1e-4) ?(max_recent_aborts = 512) (inner : Pbft.Service.t) =
  {
    inner with
    Pbft.Service.name = "x2:" ^ inner.Pbft.Service.name;
    make =
      (fun pages ~first_page ->
        let instance = inner.Pbft.Service.make pages ~first_page in
        let prepared = ref None in
        (* Recently aborted transaction ids: point lookups only, FIFO
           eviction — a reordered prepare for an aborted transaction must
           vote abort, not lock the shard. *)
        let aborted : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        let aborted_fifo : int Queue.t = Queue.create () in
        let remember_abort tx =
          if not (Hashtbl.mem aborted tx) then begin
            (Hashtbl.replace aborted tx ())
            [@trustlint.allow
              "2PC ops reach execute only as agreed, ordered requests whose \
               MAC Replica.check_auth verified at intake; the abort set is \
               deterministic replicated bookkeeping, FIFO-bounded by \
               max_recent_aborts"];
            Queue.push tx aborted_fifo;
            if Queue.length aborted_fifo > max_recent_aborts then
              Hashtbl.remove aborted (Queue.pop aborted_fifo)
          end
        in
        let restore p =
          for i = first_page to first_page + inner.Pbft.Service.app_pages - 1 do
            Statemgr.Pages.restore_page pages p.p_snapshot i
          done;
          incr n_aborts
        in
        let abort_reply tx = Printf.sprintf "2pc-aborted:%d" tx in
        (* The deadline is judged only against *agreed* timestamps of
           ordered operations — never a local clock — so all replicas of
           the group expire a transaction at the same sequence number. *)
        let expire_if_due ~timestamp =
          match !prepared with
          | Some p when timestamp > p.p_deadline ->
            restore p;
            incr n_expired;
            remember_abort p.p_tx;
            prepared := None
          | Some _ | None -> ()
        in
        let do_prepare ~tx ~deadline ~shards ~script ~client ~timestamp ~nondet =
          match !prepared with
          | Some p when Int.equal p.p_tx tx -> (p.p_reply, tiny_cost)
          | Some p -> (Printf.sprintf "error:2pc-busy:%d" p.p_tx, tiny_cost)
          | None ->
            if Hashtbl.mem aborted tx then (abort_reply tx, tiny_cost)
            else if timestamp > deadline then begin
              remember_abort tx;
              (Printf.sprintf "2pc-abort:%d:expired" tx, tiny_cost)
            end
            else begin
              incr n_prepares;
              let snapshot = Statemgr.Pages.snapshot pages in
              let reply, cost =
                (instance.Pbft.Service.execute ~op:script ~client ~timestamp ~nondet
                   ~readonly:false)
                [@trustlint.allow
                  "the prepare script is the body of an agreed request: \
                   Replica.check_auth verified its MAC and three-phase \
                   agreement fixed its order before execute ran; the page \
                   snapshot keeps it abortable"]
              in
              if has_prefix ~prefix:"error:" reply then begin
                (* The script failed; the database rolled its own
                   statements back, but restore anyway so the page region
                   is bit-identical to never having prepared. *)
                let p =
                  { p_tx = tx; p_deadline = deadline; p_shards = shards;
                    p_snapshot = snapshot; p_reply = "" }
                in
                restore p;
                remember_abort tx;
                (Printf.sprintf "2pc-abort:%d:%s" tx reply, cost)
              end
              else begin
                let p_reply = prepared_prefix tx ^ reply in
                (prepared :=
                   Some
                     { p_tx = tx; p_deadline = deadline; p_shards = shards;
                       p_snapshot = snapshot; p_reply })
                [@trustlint.allow
                  "records the prepare lock for an agreed, MAC-verified \
                   request; released only by an agreed commit (vote \
                   certificates re-checked by [verify]), an agreed abort, or \
                   the agreed deadline"];
                (p_reply, cost)
              end
            end
        in
        let do_commit ~tx ~votes =
          match !prepared with
          | Some p when Int.equal p.p_tx tx ->
            let vote_for s = List.find_opt (fun v -> Int.equal v.v_shard s) votes in
            let vote_ok v =
              has_prefix ~prefix:(prepared_prefix tx) v.v_result
              && verify ~shard:v.v_shard ~client:v.v_client ~rq_id:v.v_rq_id
                   ~result:v.v_result ~cert:v.v_cert
            in
            let all_ok =
              List.for_all
                (fun s -> match vote_for s with Some v -> vote_ok v | None -> false)
                p.p_shards
            in
            let cost = float_of_int (List.length p.p_shards) *. vote_verify_cost in
            if all_ok then begin
              prepared := None;
              incr n_commits;
              (Printf.sprintf "2pc-committed:%d" tx, cost)
            end
            else begin
              (* Byzantine or confused coordinator: refuse, stay
                 prepared — the agreed deadline bounds the lock. *)
              incr n_vote_rejections;
              (Printf.sprintf "error:2pc-bad-certificate:%d" tx, cost)
            end
          | Some _ | None ->
            if Hashtbl.mem aborted tx then (Printf.sprintf "error:2pc-aborted:%d" tx, tiny_cost)
            else (Printf.sprintf "error:2pc-unknown-tx:%d" tx, tiny_cost)
        in
        let do_abort ~tx =
          (match !prepared with
          | Some p when Int.equal p.p_tx tx ->
            restore p;
            prepared := None
          | Some _ | None -> ());
          (* Remember even never-seen ids: an abort ordered before its
             prepare must still win. *)
          remember_abort tx;
          (abort_reply tx, tiny_cost)
        in
        {
          instance with
          Pbft.Service.execute =
            (fun ~op ~client ~timestamp ~nondet ~readonly ->
              match decode_op op with
              | Some _ when readonly ->
                (* Phase transitions must be agreed; a fast-path 2PC op
                   would run at each replica independently. *)
                ("error:2pc-requires-ordering", tiny_cost)
              | Some (Prepare { tx; deadline; shards; script }) ->
                expire_if_due ~timestamp;
                do_prepare ~tx ~deadline ~shards ~script ~client ~timestamp ~nondet
              | Some (Commit { tx; votes }) ->
                expire_if_due ~timestamp;
                do_commit ~tx ~votes
              | Some (Abort { tx; reason = _ }) ->
                expire_if_due ~timestamp;
                do_abort ~tx
              | None ->
                if not readonly then expire_if_due ~timestamp;
                (match !prepared with
                | Some _ -> ("error:shard-busy", tiny_cost)
                | None ->
                  instance.Pbft.Service.execute ~op ~client ~timestamp ~nondet ~readonly));
        });
    classify_readonly =
      (fun op -> (not (is_twopc_op op)) && inner.Pbft.Service.classify_readonly op);
  }
