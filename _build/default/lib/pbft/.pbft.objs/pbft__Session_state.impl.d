lib/pbft/session_state.ml: List Printf Statemgr String Types Util
