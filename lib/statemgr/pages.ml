exception Unnotified_write of int

(* Process-wide instrumentation: bytes physically copied by the
   copy-on-write machinery (lazy page duplication on the first write
   after a snapshot) and snapshots taken. Sampled by the host benchmark
   the same way Crypto.Sha256.bytes_hashed is. *)
let cow_bytes_total = ref 0
let snapshots_total = ref 0
let bytes_copied () = !cow_bytes_total
let snapshots_taken () = !snapshots_total

type t = {
  page_size : int;
  num_pages : int;
  strict : bool;
  slots : Bytes.t option array; (* None = untouched zero page *)
  shared : bool array; (* slot aliased by a snapshot: copy before writing *)
  mutable dirty_set : (int, unit) Hashtbl.t;
  mutable generation : int;
      (* bumped on every wholesale page install (load_page/restore_page):
         state transfer, checkpoint restore, speculation rollback. Caches
         of decoded region contents compare it to skip re-decoding. *)
}

type snapshot = {
  snap_page_size : int;
  snap_slots : Bytes.t option array;
      (* aliases of the region's buffers at snapshot time; never mutated
         (any later write to the live region copies the page first) *)
}

let create ?(strict = false) ~page_size ~num_pages () =
  if page_size <= 0 || num_pages <= 0 then invalid_arg "Pages.create";
  {
    page_size;
    num_pages;
    strict;
    slots = Array.make num_pages None;
    shared = Array.make num_pages false;
    dirty_set = Hashtbl.create 64;
    generation = 0;
  }

let generation t = t.generation

let page_size t = t.page_size
let num_pages t = t.num_pages
let total_size t = t.page_size * t.num_pages

let check_range t pos len =
  if pos < 0 || len < 0 || pos + len > total_size t then invalid_arg "Pages: out of bounds"

let zero_page t = Bytes.make t.page_size '\000'

(* The page buffer it is safe to mutate: materializes zero pages and
   un-shares buffers still referenced by a snapshot. *)
let writable_slot t i =
  match t.slots.(i) with
  | Some b when not t.shared.(i) -> b
  | Some b ->
    let c = Bytes.copy b in
    t.slots.(i) <- Some c;
    t.shared.(i) <- false;
    cow_bytes_total := !cow_bytes_total + t.page_size;
    c
  | None ->
    let b = zero_page t in
    t.slots.(i) <- Some b;
    t.shared.(i) <- false;
    b

let read t ~pos ~len =
  check_range t pos len;
  let out = Bytes.create len in
  let copied = ref 0 in
  while !copied < len do
    let abs = pos + !copied in
    let pg = abs / t.page_size and off = abs mod t.page_size in
    let n = Int.min (len - !copied) (t.page_size - off) in
    (match t.slots.(pg) with
    | None -> Bytes.fill out !copied n '\000'
    | Some b -> Bytes.blit b off out !copied n);
    copied := !copied + n
  done;
  Bytes.to_string out

let pages_of_range t pos len =
  if len = 0 then []
  else begin
    let first = pos / t.page_size and last = (pos + len - 1) / t.page_size in
    List.init (last - first + 1) (fun i -> first + i)
  end

let notify_modify t ~pos ~len =
  check_range t pos len;
  List.iter (fun pg -> Hashtbl.replace t.dirty_set pg ()) (pages_of_range t pos len)

let write t ~pos s =
  let len = String.length s in
  check_range t pos len;
  List.iter
    (fun pg -> if t.strict && not (Hashtbl.mem t.dirty_set pg) then raise (Unnotified_write pg))
    (pages_of_range t pos len);
  if not t.strict then List.iter (fun pg -> Hashtbl.replace t.dirty_set pg ()) (pages_of_range t pos len);
  let copied = ref 0 in
  while !copied < len do
    let abs = pos + !copied in
    let pg = abs / t.page_size and off = abs mod t.page_size in
    let n = Int.min (len - !copied) (t.page_size - off) in
    Bytes.blit_string s !copied (writable_slot t pg) off n;
    copied := !copied + n
  done

let page t i =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.page";
  match t.slots.(i) with None -> String.make t.page_size '\000' | Some b -> Bytes.to_string b

let page_bytes t i =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.page_bytes";
  t.slots.(i)

let load_page t i contents =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.load_page";
  if String.length contents <> t.page_size then invalid_arg "Pages.load_page: size mismatch";
  t.slots.(i) <- Some (Bytes.of_string contents);
  t.shared.(i) <- false;
  t.generation <- t.generation + 1;
  Hashtbl.replace t.dirty_set i ()

let dirty t = Util.Sorted_tbl.keys t.dirty_set
let clear_dirty t = t.dirty_set <- Hashtbl.create 64

let allocated_pages t =
  Array.fold_left (fun acc s -> match s with Some _ -> acc + 1 | None -> acc) 0 t.slots

(* --- snapshots --- *)

let snapshot t =
  incr snapshots_total;
  (* O(num_pages) pointer work: alias every buffer and mark it shared so
     the next write to any page duplicates just that page. *)
  Array.fill t.shared 0 t.num_pages true;
  { snap_page_size = t.page_size; snap_slots = Array.copy t.slots }

let snapshot_page s i =
  if i < 0 || i >= Array.length s.snap_slots then invalid_arg "Pages.snapshot_page";
  match s.snap_slots.(i) with
  | None -> String.make s.snap_page_size '\000'
  | Some b -> Bytes.to_string b

let snapshot_page_bytes s i =
  if i < 0 || i >= Array.length s.snap_slots then invalid_arg "Pages.snapshot_page_bytes";
  s.snap_slots.(i)

let restore_page t snap i =
  if i < 0 || i >= t.num_pages then invalid_arg "Pages.restore_page";
  (match snap.snap_slots.(i) with
  | None ->
    t.slots.(i) <- None;
    t.shared.(i) <- false
  | Some b ->
    (* Adopt the snapshot's buffer by reference; it stays shared so a
       later write copies it rather than corrupting the snapshot. *)
    t.slots.(i) <- Some b;
    t.shared.(i) <- true);
  t.generation <- t.generation + 1;
  Hashtbl.replace t.dirty_set i ()

let copy t =
  (* A full logical copy, still O(num_pages) pointer work: both regions
     alias the same buffers and un-share lazily on write. *)
  Array.fill t.shared 0 t.num_pages true;
  {
    t with
    slots = Array.copy t.slots;
    shared = Array.make t.num_pages true;
    dirty_set = Hashtbl.copy t.dirty_set;
  }
