lib/util/stats.ml: Array Printf Stdlib
