(** SQL tokenizer. *)

type token =
  | Ident of string  (** unquoted identifier, upper-cased keywords preserved as-is *)
  | Int_lit of int
  | Real_lit of float
  | String_lit of string  (** single-quoted, with '' escaping *)
  | Punct of string  (** operators and punctuation: ( ) , ; * = <> <= >= < > + - / || . *)
  | Eof

exception Error of string

val tokenize : string -> token list
(** Raises {!Error} on malformed input (unterminated string, bad char). *)

val keyword_eq : string -> string -> bool
(** Case-insensitive identifier/keyword comparison. *)
