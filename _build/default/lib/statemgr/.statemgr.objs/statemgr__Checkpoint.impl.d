lib/statemgr/checkpoint.ml: List Merkle Pages
