(** The determinism rules: a syntactic pass over one parsed compilation
    unit. Path-based classification decides which rules apply where:

    - {b replay-critical} libraries ([lib/pbft], [lib/simnet],
      [lib/simdisk], [lib/statemgr], [lib/relsql], [lib/crypto]) get the
      [hashtbl_order] and [poly_compare] rules — these are the modules
      whose behaviour replays must reproduce bit-for-bit;
    - modules on the {b digest/trace/wire} list get [float_format];
    - everything gets [physical_eq], [wall_clock], [ambient_rng],
      [marshal_obj], and [catch_all].

    [poly_compare] fires on bare [compare]/[min]/[max]/[Hashtbl.hash]
    only in "strict" modules — ones whose own type declarations contain
    [float], [bytes], or functional components (where polymorphic
    comparison is unstable or raises), plus an explicit list — and on
    [=]/[<>] whose operands name digest/key/MAC-like values or string
    literals (operands that are [*.length] applications are exempt).

    Findings are suppressed by a [[@detlint.allow <rule> ...]] attribute
    on the enclosing expression or [let]-binding; file-level exemptions
    go through the checked-in [detlint.allow] file (see {!Allowlist}). *)

val is_replay_critical : string -> bool
(** On the repo-root-relative path, e.g. ["lib/pbft/replica.ml"]. *)

val lint_structure :
  rel:string -> lines:string array -> Parsetree.structure -> Finding.t list
(** Findings for one parsed [.ml], sorted, attribute suppression already
    applied. [lines] provides the snippet text (0-based array of source
    lines). *)
