(** Virtual CPU cost model.

    Calibrated so that the simulated cluster reproduces the *shape* of the
    paper's Table 1 / Figures 4–5 on the authors' hardware (2.4 GHz Xeon
    E5620 / Core 2 Duo, 1 GbE): MAC operations are a few microseconds,
    Rabin signing is hundreds of microseconds while Rabin verification is
    one modular multiplication, per-datagram UDP stack traversal costs tens
    of microseconds plus a per-byte copy charge. EXPERIMENTS.md records the
    calibration against the paper's reported numbers. *)

type t = {
  mac_gen : float;  (** generate one 8-byte MAC tag *)
  mac_verify : float;
  sign : float;  (** Rabin signature generation (two modexps) *)
  sig_verify : float;  (** Rabin verification (one modular multiply) *)
  digest_base : float;  (** fixed cost of one SHA digest *)
  digest_per_byte : float;
  msg_fixed : float;  (** per-datagram send or receive stack cost *)
  msg_per_byte : float;  (** per-byte copy cost on send and receive *)
  exec_null : float;  (** executing a null operation *)
  log_bookkeeping : float;  (** per-protocol-message log maintenance *)
  merkle_leaf : float;
      (** hashing one dirty page into the state Merkle tree when a
          pipelined replica snapshots at a checkpoint boundary; charged
          per leaf (and fanned across cores) only in pipelined mode —
          the serial protocol keeps its historical zero-CPU checkpoints *)
  spec_overhead : float;
      (** per-batch bookkeeping to set up speculative execution under an
          undo snapshot (pipelined mode only) *)
  rollback_fixed : float;  (** fixed cost of restoring the undo snapshot on rollback *)
  rollback_per_page : float;  (** per-page cost of the undo restore *)
}

val default : t

val auth_gen : t -> Config.t -> float
(** Cost of authenticating one outgoing protocol message: [n − 1] MAC
    tags in MAC mode, one signature otherwise. *)

val auth_verify : t -> Config.t -> float
(** Cost of checking one incoming message's authentication. *)

val auth_gen_costs : t -> Config.t -> float list
(** [auth_gen] decomposed into independent pieces (one per MAC tag, or
    the single signature) for multi-core fan-out via
    [Simnet.Cpu.execute_split]. Callers must use the lump-sum
    {!auth_gen} when running on one core so the historical float
    arithmetic — and with it the pinned trace digest — is preserved. *)

val digest : t -> int -> float
(** Cost of digesting [n] bytes. *)

val send : t -> int -> float
(** CPU cost of pushing an [n]-byte datagram into the stack. *)

val recv : t -> int -> float

type sql = {
  stmt_fixed : float;  (** per-exec dispatch overhead *)
  parse_per_byte : float;  (** lexing + parsing, charged per SQL byte on a cache miss *)
  cache_lookup : float;  (** statement-cache hit: hash probe + AST reuse *)
  page_io : float;  (** per B-tree page touched *)
  row_eval : float;  (** per candidate row materialized and evaluated *)
}

val sql_default : sql
(** Knobs for the relational engine's statement cost
    ([Relsql.Database.exec]); kept beside the protocol constants so the
    whole virtual-time calibration lives in one module. *)
