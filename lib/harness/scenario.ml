type spec = {
  cfg : Pbft.Config.t;
  seed : int;
  num_clients : int;
  service : Pbft.Service.t;
  profile : Simnet.Net.profile;
  warmup : float;
  duration : float;
  op : client:int -> seq:int -> string;
  readonly : bool;
  think_time : float;
}

let default_spec cfg =
  {
    cfg;
    seed = 1;
    num_clients = 12;
    service = Pbft.Service.null ();
    profile = Simnet.Net.lan_profile;
    warmup = 0.5;
    duration = 2.0;
    op = (fun ~client:_ ~seq:_ -> String.make 1024 'q');
    readonly = false;
    think_time = 0.0;
  }

type outcome = {
  tps : float;
  completed : int;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  retransmissions : int;
  view_changes : int;
  demotion_transfers : int;
  rejoin_transfers : int;
  transfer_pages_fetched : int;
  transfer_pages_full : int;
  demotions : int;
  rollbacks : int;
  speculative_execs : int;
  tentative_completed : int;
  auth_failures : int;
  nondet_rejects : int;
  shed : int;
  gw_evictions : int;
  gw_queue_peak : int;
  replica_queue_peak : int;
  ro_cache_evictions : int;
  (* Sharded-deployment telemetry (PR 8): single-group drivers report
     themselves as one shard with no cross-shard traffic. *)
  shards : int;
  shard_tps : float array;
  shard_queue_peak : int array;
  cross_shard_commits : int;
  cross_shard_aborts : int;
}

let join_all cluster =
  (* Dynamic mode: every client performs the two-phase join before the
     workload begins. *)
  let clients = Pbft.Cluster.clients cluster in
  let joined = ref 0 in
  Array.iteri
    (fun i cl ->
      Pbft.Client.join cl
        ~idbuf:(Printf.sprintf "user%d:password%d" (i + 1) (i + 1))
        (function
          | Some _ -> incr joined
          | None -> ()))
    clients;
  let deadline = Simnet.Engine.now (Pbft.Cluster.engine cluster) +. 30.0 in
  while
    !joined < Array.length clients && Simnet.Engine.now (Pbft.Cluster.engine cluster) < deadline
  do
    Simnet.Engine.run
      ~until:(Simnet.Engine.now (Pbft.Cluster.engine cluster) +. 0.1)
      (Pbft.Cluster.engine cluster)
  done;
  if !joined < Array.length clients then failwith "Scenario: dynamic join did not complete"

let run_cluster ?hook spec =
  let cluster =
    Pbft.Cluster.create ~seed:spec.seed ~profile:spec.profile ~num_clients:spec.num_clients
      ~service:spec.service spec.cfg
  in
  Simnet.Trace.set_enabled (Pbft.Cluster.trace cluster) false;
  (match hook with Some h -> h cluster | None -> ());
  if spec.cfg.Pbft.Config.dynamic_clients then join_all cluster;
  let engine = Pbft.Cluster.engine cluster in
  let stop = ref false in
  let classify = spec.service.Pbft.Service.classify_readonly in
  let drive i cl =
    let seq = ref 0 in
    let rec next () =
      if not !stop then begin
        incr seq;
        let op = spec.op ~client:i ~seq:!seq in
        (* Per-operation auto-classification: ops the service proves
           read-only (e.g. planner-classified SELECTs) ride the fast path
           even in a mixed workload where [spec.readonly] must stay
           false. *)
        let readonly = spec.readonly || classify op in
        Pbft.Client.invoke cl ~readonly op (fun _ ->
            if spec.think_time > 0.0 then Simnet.Engine.schedule engine ~delay:spec.think_time next
            else next ())
      end
    in
    next ()
  in
  Array.iteri drive (Pbft.Cluster.clients cluster);
  Pbft.Cluster.run cluster ~seconds:spec.warmup;
  let base_completed = Pbft.Cluster.total_completed cluster in
  let sum_tentative () =
    Array.fold_left
      (fun acc cl -> acc + Pbft.Client.tentative_completed cl)
      0 (Pbft.Cluster.clients cluster)
  in
  let base_tentative = sum_tentative () in
  let measure_start = Simnet.Engine.now engine in
  Pbft.Cluster.run cluster ~seconds:spec.duration;
  let measured = Pbft.Cluster.total_completed cluster - base_completed in
  stop := true;
  (* Latency sample: per-client means over the whole run (warmup
     included); at steady state the distributions coincide. *)
  let all = Util.Stats.create () in
  Array.iter
    (fun cl ->
      let s = Pbft.Client.latency_stats cl in
      if Util.Stats.count s > 0 then Util.Stats.add all (Util.Stats.mean s))
    (Pbft.Cluster.clients cluster);
  let span = Simnet.Engine.now engine -. measure_start in
  let reps = Pbft.Cluster.replicas cluster in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reps in
  let tps_value = if span > 0.0 then float_of_int measured /. span else 0.0 in
  let outcome =
    {
      tps = tps_value;
      completed = measured;
      mean_latency = (if Util.Stats.count all > 0 then Util.Stats.mean all else 0.0);
      p50_latency =
        (let s = Pbft.Client.latency_stats (Pbft.Cluster.client cluster 0) in
         if Util.Stats.count s > 0 then Util.Stats.percentile s 50.0 else 0.0);
      p95_latency =
        (let s = Pbft.Client.latency_stats (Pbft.Cluster.client cluster 0) in
         if Util.Stats.count s > 0 then Util.Stats.percentile s 95.0 else 0.0);
      p99_latency =
        (let s = Pbft.Client.latency_stats (Pbft.Cluster.client cluster 0) in
         if Util.Stats.count s > 0 then Util.Stats.percentile s 99.0 else 0.0);
      retransmissions =
        Array.fold_left
          (fun acc cl -> acc + Pbft.Client.retransmissions cl)
          0 (Pbft.Cluster.clients cluster);
      view_changes = sum Pbft.Replica.view_changes;
      demotion_transfers = sum Pbft.Replica.demotion_transfers;
      rejoin_transfers = sum Pbft.Replica.rejoin_transfers;
      transfer_pages_fetched = sum Pbft.Replica.transfer_pages_fetched;
      transfer_pages_full = sum Pbft.Replica.transfer_pages_full;
      demotions = sum Pbft.Replica.demotions;
      rollbacks = sum Pbft.Replica.rollbacks;
      speculative_execs = sum Pbft.Replica.speculative_execs;
      tentative_completed = sum_tentative () - base_tentative;
      auth_failures = sum Pbft.Replica.auth_failures;
      nondet_rejects = sum Pbft.Replica.nondet_rejects;
      (* Gateway counters are zero in a direct closed-loop run; the
         open-loop front-door runner fills them in. *)
      shed = 0;
      gw_evictions = 0;
      gw_queue_peak = 0;
      replica_queue_peak =
        Array.fold_left
          (fun acc r -> Int.max acc (Simnet.Cpu.peak_queue_length (Pbft.Replica.cpu r)))
          0 reps;
      ro_cache_evictions = sum Pbft.Replica.ro_reply_evictions;
      shards = 1;
      shard_tps = [| tps_value |];
      shard_queue_peak = [| 0 |];
      cross_shard_commits = 0;
      cross_shard_aborts = 0;
    }
  in
  (* Teardown: one-shot drop predicates armed by the hook but never
     matched must not leak into whatever runs on this cluster next. *)
  ignore (Simnet.Net.drain_drops (Pbft.Cluster.net cluster));
  (outcome, cluster)

let run ?hook spec = fst (run_cluster ?hook spec)
