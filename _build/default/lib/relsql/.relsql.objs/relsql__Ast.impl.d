lib/relsql/ast.ml: Value
